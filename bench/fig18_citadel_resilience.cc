/**
 * @file
 * Figure 18: the full Citadel stack (3DP + DDS, TSV-Swap on) against
 * the 8-bit symbol code striped across channels, over the 7-year
 * lifetime. The paper's headline: ~700x better reliability, with DDS
 * removing >99.99% of faults before they can accumulate.
 */

#include <iostream>

#include "bench_util.h"

using namespace citadel;
using namespace citadel::bench;

int
main()
{
    const u64 n = trials(300000);
    printBanner(std::cout, "Figure 18: Citadel (3DP+DDS) resilience (" +
                               std::to_string(n) + " trials, TSV FIT "
                               "1430, TSV-Swap on)");

    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    MonteCarlo mc(cfg);

    auto full = makeCitadel();          // TSV-Swap + DDS + 3DP
    auto parity = makeParityOnly(3, true); // 3DP without DDS
    auto ssc = makeSymbolBaseline(StripingMode::AcrossChannels, true);

    const McResult rf = mc.run(*full, n, 81);
    const McResult rp = mc.run(*parity, n, 81);
    const McResult rs = mc.run(*ssc, n, 81);

    Table t({"year", "3DP+DDS (Citadel)", "3DP only",
             "8-bit symbol (across-ch)"});
    for (u32 y = 1; y <= 7; ++y)
        t.addRow({std::to_string(y), probCell(rf.probFailByYear(y)),
                  probCell(rp.probFailByYear(y)),
                  probCell(rs.probFailByYear(y))});
    t.print(std::cout);

    const double pf = rf.probFail().estimate;
    const double ps = rs.probFail().estimate;
    const double pf_bound =
        pf > 0.0 ? pf : rf.probFail().hi95; // conservative when 0 fails
    printBanner(std::cout, "Failure attribution (class of the fault "
                           "completing the fatal pattern)");
    Table a({"scheme", "attribution"});
    auto attrib = [](const McResult &r) {
        std::string out;
        for (const auto &[cls, count] : r.failuresByClass)
            out += std::string(faultClassName(cls)) + ":" +
                   std::to_string(count) + " ";
        return out.empty() ? std::string("(no failures)") : out;
    };
    a.addRow({"Citadel", attrib(rf)});
    a.addRow({"3DP only", attrib(rp)});
    a.addRow({"SSC across-ch", attrib(rs)});
    a.print(std::cout);

    std::cout << "\nAt year 7: Citadel vs striped symbol code = "
              << (pf > 0.0 ? factorCell(ps, pf)
                           : ">" + Table::num(ps / pf_bound, 1) + "x")
              << "  (paper: ~700x)\n"
              << "Citadel failures: " << rf.failures << "/" << n
              << ", symbol-code failures: " << rs.failures << "/" << n
              << "\n";
    return 0;
}
