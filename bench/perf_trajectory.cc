/**
 * @file
 * Perf-trajectory harness: times the three hot paths this repo's
 * throughput hangs on and emits machine-readable BENCH_mc.json so
 * future PRs have a baseline to compare against.
 *
 *  1. Monte Carlo trials/s, serial (1 thread) vs parallel
 *     (CITADEL_THREADS / hardware_concurrency), full Citadel scheme at
 *     the pessimistic TSV rate. The two runs must be bit-identical —
 *     this binary exits non-zero on any mismatch, which is what the
 *     perf-smoke CI job asserts.
 *  2. CRC-32 MB/s: slice-by-8 production path vs the one-table
 *     byte-at-a-time baseline.
 *  3. Parity-fold MB/s: word-wide xorFold vs a byte-loop oracle.
 *  4. Dispatched kernels (schema v4): the SIMD xorFold/xorFoldN paths
 *     and the hardware CRC path vs their scalar proofs, at an
 *     L1-resident size (where the kernel dominates) and a streaming
 *     size (where DRAM bandwidth does), plus batched vs unbatched
 *     trial execution in Ktrials/s. Every variant is byte-compared
 *     against its scalar oracle before being timed.
 *  5. Timing simulator: cycles simulated/s under cycle vs event
 *     stepping (low-MPKI and high-MPKI profiles), and suite wall time
 *     serial (runSuite) vs parallel (runSuiteParallel). Every pair
 *     must be bit-identical; any divergence makes this binary exit
 *     non-zero, which is what the perf-smoke CI job asserts.
 *  6. Fleet serving hot path (schema v5): campaign Kops/s over the
 *     Direct per-request baseline, the batched loopback wire path,
 *     and real socketpairs, at a production-shaped arrival rate, plus
 *     acked-completion latency percentiles in virtual ticks. All
 *     three transports must land on the same campaign fingerprint;
 *     any divergence makes this binary exit non-zero.
 *  7. Fleet elasticity (schema v6): an elastic chaos campaign —
 *     crashes and stall-evictions followed by derived restarts, warm
 *     fills, CRC-checked admissions, and load-driven hot-shard
 *     migration under zipf skew — reporting warm-fill throughput
 *     (records/s), join and rebalance counts, and the
 *     checkpoint/resume proof: the campaign is cut mid-run,
 *     checkpointed, resumed into a fresh instance, and must land on
 *     the uninterrupted run's exact fingerprint. Any resume
 *     divergence makes this binary exit non-zero.
 *
 * The parallel-scaling check is enforced only when the machine
 * actually has the cores the run requested; on constrained runners
 * (hardware_concurrency < requested threads) it downgrades to a
 * warning while still emitting the fields, so CI does not gate on
 * oversubscription noise.
 *
 * Knobs: CITADEL_TRIALS (default 20000), CITADEL_INSNS (default
 * 100000), CITADEL_THREADS, CITADEL_BENCH_JSON (output path, default
 * ./BENCH_mc.json).
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/kernels.h"
#include "fleet_bench_util.h"
#include "common/thread_pool.h"
#include "common/xor_fold.h"
#include "ecc/crc32.h"
#include "faults/fault_arena.h"

using namespace citadel;
using namespace citadel::bench;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bool
identical(const McResult &a, const McResult &b)
{
    return a.trials == b.trials && a.failures == b.failures &&
           a.failuresByYear == b.failuresByYear &&
           a.failuresByClass == b.failuresByClass &&
           a.meanFaultsPerTrial == b.meanFaultsPerTrial;
}

/** Throughput of one CRC kernel over `buf`, in MB/s. */
template <typename Kernel>
double
crcMbPerS(const std::vector<u8> &buf, u64 passes, Kernel kernel)
{
    u32 sink = Crc32::begin();
    const double mbps = benchKernel(passes, buf.size(), [&] {
        sink = kernel(sink, buf);
        asm volatile("" : "+r"(sink));
    });
    return mbps;
}

/**
 * The byte-at-a-time fold baseline. Kept out of line with
 * auto-vectorization disabled: inlined into the timing loop the
 * optimizer either SIMD-vectorizes it (measuring the compiler, not the
 * kernel) or collapses the repeated self-inverse passes outright.
 */
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize")))
#endif
__attribute__((noinline)) void
foldBytewise(u8 *dst, const u8 *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<u8>(dst[i] ^ src[i]);
}

/** Out-of-line wrapper so both fold kernels are timed the same way. */
__attribute__((noinline)) void
foldWordwise(u8 *dst, const u8 *src, std::size_t n)
{
    xorFold(dst, src, n);
}

/** MB/s of one fold kernel; a barrier keeps every pass observable. */
double
foldMbPerS(std::vector<u8> &acc, const std::vector<u8> &src, u64 passes,
           void (*kernel)(u8 *, const u8 *, std::size_t))
{
    return benchKernel(passes, src.size(), [&] {
        kernel(acc.data(), src.data(), src.size());
    });
}

std::vector<u8>
randomBuf(std::size_t n, Rng &rng)
{
    std::vector<u8> buf(n);
    for (auto &b : buf)
        b = static_cast<u8>(rng.next());
    return buf;
}

} // namespace

int
main()
{
    const u64 n = trials(20000);
    const unsigned nthreads = citadelThreads();
    printBanner(std::cout,
                "Perf trajectory (" + std::to_string(n) + " trials, " +
                    std::to_string(nthreads) + " threads)");

    // ---- 1. Monte Carlo throughput, serial vs parallel -------------
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    MonteCarlo mc(cfg);
    auto scheme = makeCitadel();

    auto t0 = std::chrono::steady_clock::now();
    const McResult serial = mc.run(*scheme, n, 7, 1);
    const double serial_s = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    const McResult parallel = mc.run(*scheme, n, 7, nthreads);
    const double parallel_s = secondsSince(t0);

    const bool match = identical(serial, parallel);
    const double serial_tps = static_cast<double>(n) / serial_s;
    const double parallel_tps = static_cast<double>(n) / parallel_s;

    Table mc_table({"engine", "trials/s", "speedup", "P(fail)"});
    mc_table.addRow({"serial (1 thread)", Table::num(serial_tps, 0),
                     "1.0x", probCell(serial.probFail())});
    mc_table.addRow({"parallel (" + std::to_string(nthreads) + " threads)",
                     Table::num(parallel_tps, 0),
                     Table::num(parallel_tps / serial_tps, 2) + "x",
                     probCell(parallel.probFail())});
    mc_table.print(std::cout);
    const double mc_speedup = parallel_tps / serial_tps;
    const double mc_efficiency =
        mc_speedup / static_cast<double>(nthreads);
    // The efficiency gate only means something when the machine has
    // the cores the run asked for; oversubscribed runners measure
    // scheduler noise, not scaling.
    const unsigned hw_threads = std::thread::hardware_concurrency();
    const bool scaling_enforced = hw_threads >= nthreads;
    constexpr double kMinEfficiency = 0.35;
    const bool scaling_ok =
        nthreads <= 1 || mc_efficiency >= kMinEfficiency;
    std::cout << "bit-identical: " << (match ? "yes" : "NO — BUG")
              << " | scaling efficiency "
              << Table::num(mc_efficiency * 100.0, 0) << "% of linear on "
              << nthreads << " threads\n";
    if (!scaling_enforced)
        std::cout << "note: scaling check downgraded to warning ("
                  << hw_threads << " hardware threads < " << nthreads
                  << " requested)\n";
    else if (!scaling_ok)
        std::cout << "WARNING: scaling efficiency below "
                  << Table::num(kMinEfficiency * 100.0, 0)
                  << "% floor — will fail\n";
    std::cout << "\n";

    // ---- 2. CRC-32 MB/s: slice-by-8 vs byte-at-a-time --------------
    Rng rng(99);
    std::vector<u8> buf(1 << 20);
    for (auto &b : buf)
        b = static_cast<u8>(rng.next());
    const u64 passes = std::max<u64>(1, envU64("CITADEL_CRC_PASSES", 64));

    // Explicitly the slice8 kernel: the production Crc32::update now
    // dispatches to the hardware path, which section 4 reports.
    const double crc_slice8 =
        crcMbPerS(buf, passes, [](u32 s, const std::vector<u8> &d) {
            return Crc32::updateSlice8(s, d);
        });
    const double crc_byte =
        crcMbPerS(buf, passes, [](u32 s, const std::vector<u8> &d) {
            return Crc32::updateBytewise(s, d);
        });

    Table crc_table({"CRC-32 kernel", "MB/s", "speedup"});
    crc_table.addRow({"slice-by-8", Table::num(crc_slice8, 0),
                      Table::num(crc_slice8 / crc_byte, 2) + "x"});
    crc_table.addRow({"byte-at-a-time", Table::num(crc_byte, 0), "1.0x"});
    crc_table.print(std::cout);
    std::cout << "\n";

    // ---- 3. Parity fold MB/s: word-wide vs byte loop ---------------
    std::vector<u8> acc(1 << 20);
    for (auto &b : acc)
        b = static_cast<u8>(rng.next());
    const u64 fold_passes =
        std::max<u64>(1, envU64("CITADEL_FOLD_PASSES", 256));

    const double fold_word =
        foldMbPerS(acc, buf, fold_passes, foldWordwise);
    const double fold_byte =
        foldMbPerS(acc, buf, fold_passes, foldBytewise);

    Table fold_table({"parity XOR kernel", "MB/s", "speedup"});
    fold_table.addRow({"word-wide (u64)", Table::num(fold_word, 0),
                       Table::num(fold_word / fold_byte, 2) + "x"});
    fold_table.addRow({"byte loop", Table::num(fold_byte, 0), "1.0x"});
    fold_table.print(std::cout);
    std::cout << "\n";

    // ---- 4. Dispatched kernels: SIMD fold + hw CRC + batching ------
    // L1-resident buffers isolate the kernel (the streaming numbers
    // above are DRAM-bandwidth-bound, where every fold implementation
    // converges); each dispatched variant is byte-compared against
    // its scalar proof before it is timed.
    constexpr std::size_t kL1Bytes = 16384;
    constexpr std::size_t kFoldK = 8;
    const u64 l1_passes =
        std::max<u64>(1, envU64("CITADEL_L1_PASSES", 1 << 16));
    bool kernels_identical = true;
    // Best of three reps: L1-resident measurements finish in tens of
    // ms, where one descheduling on a shared runner can halve a
    // single-rep number.
    const auto bestOf3 = [](auto &&measure) {
        double best = 0.0;
        for (int rep = 0; rep < 3; ++rep)
            best = std::max(best, measure());
        return best;
    };

    std::vector<u8> l1_src = randomBuf(kL1Bytes, rng);
    std::vector<u8> l1_acc_a = randomBuf(kL1Bytes, rng);
    std::vector<u8> l1_acc_b = l1_acc_a;

    // xorFold: scalar proof vs dispatched path.
    xorFoldScalar(l1_acc_a.data(), l1_src.data(), kL1Bytes);
    xorKernelOps().fold(l1_acc_b.data(), l1_src.data(), kL1Bytes);
    kernels_identical = kernels_identical && l1_acc_a == l1_acc_b;

    const double xf_scalar_l1 = bestOf3([&] {
        return benchKernel(l1_passes, kL1Bytes, [&] {
            xorFoldScalar(l1_acc_a.data(), l1_src.data(), kL1Bytes);
        });
    });
    const double xf_disp_l1 = bestOf3([&] {
        return benchKernel(l1_passes, kL1Bytes, [&] {
            xorKernelOps().fold(l1_acc_b.data(), l1_src.data(),
                                kL1Bytes);
        });
    });
    const double xf_disp_stream =
        foldMbPerS(acc, buf, fold_passes, [](u8 *d, const u8 *s,
                                             std::size_t n) {
            xorKernelOps().fold(d, s, n);
        });

    // xorFoldN: k lines folded in one pass vs k scalar passes.
    std::vector<std::vector<u8>> fold_lines;
    std::vector<const u8 *> fold_srcs;
    for (std::size_t i = 0; i < kFoldK; ++i) {
        fold_lines.push_back(randomBuf(kL1Bytes, rng));
        fold_srcs.push_back(fold_lines.back().data());
    }
    l1_acc_b = l1_acc_a;
    xorFoldNScalar(l1_acc_a.data(), fold_srcs.data(), kFoldK, kL1Bytes);
    xorKernelOps().foldN(l1_acc_b.data(), fold_srcs.data(), kFoldK,
                         kL1Bytes);
    kernels_identical = kernels_identical && l1_acc_a == l1_acc_b;

    const u64 foldn_passes = std::max<u64>(1, l1_passes / kFoldK);
    const double xfn_scalar = bestOf3([&] {
        return benchKernel(foldn_passes, kL1Bytes * kFoldK, [&] {
            xorFoldNScalar(l1_acc_a.data(), fold_srcs.data(), kFoldK,
                           kL1Bytes);
        });
    });
    const double xfn_disp = bestOf3([&] {
        return benchKernel(foldn_passes, kL1Bytes * kFoldK, [&] {
            xorKernelOps().foldN(l1_acc_b.data(), fold_srcs.data(),
                                 kFoldK, kL1Bytes);
        });
    });

    // CRC-32: hardware folding vs slice8, same L1/stream split.
    kernels_identical =
        kernels_identical &&
        Crc32::updateHw(Crc32::begin(), l1_src) ==
            Crc32::updateSlice8(Crc32::begin(), l1_src) &&
        Crc32::updateHw(Crc32::begin(), buf) ==
            Crc32::updateSlice8(Crc32::begin(), buf);

    const double crc_slice8_l1 = bestOf3([&] {
        return crcMbPerS(l1_src, l1_passes,
                         [](u32 s, const std::vector<u8> &d) {
                             return Crc32::updateSlice8(s, d);
                         });
    });
    const double crc_hw_l1 = bestOf3([&] {
        return crcMbPerS(l1_src, l1_passes,
                         [](u32 s, const std::vector<u8> &d) {
                             return Crc32::updateHw(s, d);
                         });
    });
    const double crc_hw_stream =
        crcMbPerS(buf, passes, [](u32 s, const std::vector<u8> &d) {
            return Crc32::updateHw(s, d);
        });

    Table kern_table({"kernel", "path", "L1 MB/s", "stream MB/s",
                      "speedup"});
    kern_table.addRow({"xorFold scalar", "scalar-u64",
                       Table::num(xf_scalar_l1, 0),
                       Table::num(fold_word, 0), "1.0x"});
    kern_table.addRow({"xorFold dispatched", xorKernelOps().path,
                       Table::num(xf_disp_l1, 0),
                       Table::num(xf_disp_stream, 0),
                       Table::num(xf_disp_l1 / xf_scalar_l1, 2) + "x"});
    kern_table.addRow({"xorFoldN k=8 scalar", "scalar-u64",
                       Table::num(xfn_scalar, 0), "-", "1.0x"});
    kern_table.addRow({"xorFoldN k=8 dispatched", xorKernelOps().path,
                       Table::num(xfn_disp, 0), "-",
                       Table::num(xfn_disp / xfn_scalar, 2) + "x"});
    kern_table.addRow({"crc32 slice8", "slice8",
                       Table::num(crc_slice8_l1, 0),
                       Table::num(crc_slice8, 0), "1.0x"});
    kern_table.addRow({"crc32 hw", Crc32::activePathName(),
                       Table::num(crc_hw_l1, 0),
                       Table::num(crc_hw_stream, 0),
                       Table::num(crc_hw_l1 / crc_slice8_l1, 2) + "x"});
    kern_table.print(std::cout);
    std::cout << "kernel outputs bit-identical to scalar proofs: "
              << (kernels_identical ? "yes" : "NO — BUG") << "\n\n";

    // Batched (FaultArena two-phase) vs unbatched (legacy per-trial
    // sample+execute) trial throughput, in Ktrials/s, timed
    // back-to-back so both run with warm caches (section 1's serial
    // number is a cold first run and would bias this comparison). The
    // unbatched loop replays the exact legacy control flow, so its
    // failure count doubles as an end-to-end batching-equivalence
    // check against the batched rerun.
    const u64 kSeedMix = 0xA24BAED4963EE407ull;
    FaultInjector inj(cfg);
    auto scheme_ub = makeCitadel();
    std::vector<Fault> ub_events;
    std::vector<Fault> ub_active;
    u64 ub_failures = 0;
    double unbatched_s = 1e300;
    double batched_s = 1e300;
    McResult batched_rerun;
    // Best of two reps per variant: a single rep on a shared runner is
    // scheduler-noise-dominated at these (tens of ms) durations.
    for (int rep = 0; rep < 2; ++rep) {
        ub_failures = 0;
        t0 = std::chrono::steady_clock::now();
        for (u64 t = 0; t < n; ++t) {
            Rng trial_rng(7 ^ (kSeedMix * (t + 1)));
            inj.sampleLifetime(trial_rng, ub_events);
            FaultClass trig = FaultClass::Bit;
            if (mc.runTrial(*scheme_ub, ub_events, &trig, ub_active) >=
                0.0)
                ++ub_failures;
        }
        unbatched_s = std::min(unbatched_s, secondsSince(t0));

        t0 = std::chrono::steady_clock::now();
        batched_rerun = mc.run(*scheme, n, 7, 1);
        batched_s = std::min(batched_s, secondsSince(t0));
    }

    const double unbatched_ktps =
        static_cast<double>(n) / unbatched_s / 1e3;
    const double batched_ktps = static_cast<double>(n) / batched_s / 1e3;
    const bool batch_identical = ub_failures == batched_rerun.failures &&
                                 identical(batched_rerun, serial);
    kernels_identical = kernels_identical && batch_identical;

    Table trial_table({"trial execution", "Ktrials/s", "speedup",
                       "identical"});
    trial_table.addRow({"unbatched (legacy)",
                        Table::num(unbatched_ktps, 1), "1.0x", "-"});
    trial_table.addRow({"batched (FaultArena)",
                        Table::num(batched_ktps, 1),
                        Table::num(batched_ktps / unbatched_ktps, 2) +
                            "x",
                        batch_identical ? "yes" : "NO — BUG"});
    trial_table.print(std::cout);
    std::cout << "\n";

    // ---- 5. Timing simulator: stepping + suite parallelism ---------
    const u64 sim_insns = insns(100000);
    bool sim_identical = true;

    // Cycle vs event stepping on a low-MPKI (idle-heavy, where the
    // skipping pays off) and a high-MPKI (memory-bound floor) profile.
    // Only run() is timed -- LLC warm-up in the constructor is common
    // to both modes and would wash the ratio out at small budgets.
    struct SteppingPoint
    {
        const char *bench;
        RasTraffic ras;
        double cycle_cps = 0;
        double event_cps = 0;
        bool identical = false;
    };
    std::vector<SteppingPoint> points = {
        {"povray", RasTraffic::None},        // idle-heavy
        {"mcf", RasTraffic::ThreeDPCached},  // memory-bound
    };
    for (SteppingPoint &p : points) {
        const BenchmarkProfile &prof = findBenchmark(p.bench);
        SimResult rc, re;
        for (const SimStepping stepping :
             {SimStepping::Cycle, SimStepping::Event}) {
            SimConfig cfg;
            cfg.ras = p.ras;
            cfg.insnsPerCore = sim_insns;
            cfg.stepping = stepping;
            SystemSim sim(cfg, prof);
            t0 = std::chrono::steady_clock::now();
            const SimResult r = sim.run();
            const double dt = secondsSince(t0);
            if (stepping == SimStepping::Cycle) {
                rc = r;
                p.cycle_cps = static_cast<double>(r.cycles) / dt;
            } else {
                re = r;
                p.event_cps = static_cast<double>(r.cycles) / dt;
            }
        }
        p.identical = identicalResults(rc, re);
        sim_identical = sim_identical && p.identical;
    }

    Table step_table(
        {"benchmark", "cycle cps", "event cps", "speedup", "identical"});
    for (const SteppingPoint &p : points)
        step_table.addRow({p.bench, Table::num(p.cycle_cps, 0),
                           Table::num(p.event_cps, 0),
                           Table::num(p.event_cps / p.cycle_cps, 2) + "x",
                           p.identical ? "yes" : "NO — BUG"});
    step_table.print(std::cout);
    std::cout << "\n";

    // Suite wall time, serial vs parallel, same thread budget as MC.
    t0 = std::chrono::steady_clock::now();
    const auto suite_serial =
        runSuite(StripingMode::SameBank, RasTraffic::ThreeDPCached,
                 sim_insns, /*verbose=*/false);
    const double suite_serial_s = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    const auto suite_parallel = runSuiteParallel(
        StripingMode::SameBank, RasTraffic::ThreeDPCached, sim_insns,
        nthreads);
    const double suite_parallel_s = secondsSince(t0);

    bool suite_identical = suite_serial.size() == suite_parallel.size();
    for (const auto &[name, r] : suite_serial)
        suite_identical = suite_identical &&
                          suite_parallel.count(name) &&
                          identicalResults(r, suite_parallel.at(name));
    sim_identical = sim_identical && suite_identical;

    Table suite_table({"suite runner", "wall s", "speedup", "identical"});
    suite_table.addRow({"serial", Table::num(suite_serial_s, 2), "1.0x",
                        "-"});
    suite_table.addRow(
        {"parallel (" + std::to_string(nthreads) + " threads)",
         Table::num(suite_parallel_s, 2),
         Table::num(suite_serial_s / suite_parallel_s, 2) + "x",
         suite_identical ? "yes" : "NO — BUG"});
    suite_table.print(std::cout);

    std::cout << "\n";

    // ---- 6. Fleet serving hot path: wire batching ------------------
    // Production-shaped load (the per-request machinery dominates, not
    // the datapath step or the SystemSim calibration slice), min-wall
    // of two reps per transport. The batched loopback path is the
    // serving default; Direct is the unbatched baseline it must beat,
    // and the socket cell prices the real-descriptor transport. All
    // three must land on the same campaign fingerprint.
    fleet::FleetConfig fleet_cfg = fleet::FleetConfig::demo();
    fleet_cfg.ticks = 256;
    fleet_cfg.keySpace = 4096;
    fleet_cfg.arrivalsPerTick = 256;
    fleet_cfg.server.calibrationInsns = 0;
    fleet_cfg.threads = 1;

    struct FleetPoint
    {
        const char *name;
        fleet::TransportMode mode;
        u32 batch;
        fleet::TimedRun run;
    };
    std::vector<FleetPoint> fleet_points = {
        {"direct (unbatched)", fleet::TransportMode::Direct, 1, {}},
        {"loopback b=32", fleet::TransportMode::Loopback, 32, {}},
        {"socket b=32", fleet::TransportMode::Socket, 32, {}},
    };
    for (FleetPoint &p : fleet_points) {
        fleet::FleetConfig cell = fleet_cfg;
        cell.transport = p.mode;
        cell.batch = p.batch;
        p.run = fleet::timedCampaign(cell);
        for (int rep = 1; rep < 2; ++rep) {
            const fleet::TimedRun again = fleet::timedCampaign(cell);
            if (again.seconds < p.run.seconds)
                p.run = again;
        }
    }
    const fleet::TimedRun &fl_direct = fleet_points[0].run;
    const fleet::TimedRun &fl_batched = fleet_points[1].run;
    const fleet::TimedRun &fl_socket = fleet_points[2].run;
    bool fleet_identical = true;
    for (const FleetPoint &p : fleet_points)
        fleet_identical =
            fleet_identical && fleet::auditClean(p.run.res) &&
            p.run.res.fingerprint == fl_direct.res.fingerprint;
    const double fl_direct_kops =
        fleet::kopsPerSec(fl_direct.res, fl_direct.seconds);
    const double fl_batched_kops =
        fleet::kopsPerSec(fl_batched.res, fl_batched.seconds);
    const double fl_socket_kops =
        fleet::kopsPerSec(fl_socket.res, fl_socket.seconds);
    const double fleet_speedup =
        fl_direct_kops > 0.0 ? fl_batched_kops / fl_direct_kops : 0.0;

    Table fleet_table({"fleet transport", "Kops/s", "speedup",
                       "identical"});
    fleet_table.addRow({"direct (unbatched)",
                        Table::num(fl_direct_kops, 1), "1.0x", "-"});
    fleet_table.addRow({"loopback b=32",
                        Table::num(fl_batched_kops, 1),
                        Table::num(fleet_speedup, 2) + "x",
                        fleet_identical ? "yes" : "NO — BUG"});
    fleet_table.addRow(
        {"socket b=32", Table::num(fl_socket_kops, 1),
         Table::num(fl_socket_kops / fl_direct_kops, 2) + "x",
         fleet_identical ? "yes" : "NO — BUG"});
    fleet_table.print(std::cout);
    std::cout << "latency p50/p99: " << fl_batched.res.p50LatencyTicks
              << "/" << fl_batched.res.p99LatencyTicks
              << " virtual ticks\n";

    std::cout << "\n";

    // ---- 7. Fleet elasticity: join + rebalance + resume ------------
    // Full elastic chaos: crashes/stalls with derived restarts, warm
    // fills into rejoining servers, rebalance under zipf skew — then
    // the resume proof: cut mid-run, checkpoint, resume fresh, and
    // demand the uninterrupted run's exact fingerprint.
    fleet::FleetConfig el_cfg = fleet::FleetConfig::demo();
    el_cfg.traffic = "ticks=256,rate=8,write=0.5,zipf=1.2";
    el_cfg.chaos.restartAfterTicks = 64;
    el_cfg.coord.rebalanceEnabled = true;
    el_cfg.coord.minRoundLoad = 4;
    el_cfg.coord.overloadFactor = 1.25;
    el_cfg.server.calibrationInsns = 0;
    el_cfg.threads = 1;

    const fleet::TimedRun el_run = fleet::timedCampaign(el_cfg);
    const fleet::FleetCounters &el_tot = el_run.res.totals;
    const double warm_fill_per_s =
        el_run.seconds > 0.0
            ? static_cast<double>(el_tot.warmFills) / el_run.seconds
            : 0.0;
    bool all_serving = true;
    for (const fleet::ServerReport &r : el_run.res.servers)
        all_serving = all_serving && fleet::serverStateServing(r.state);

    fleet::FleetCampaign el_first(el_cfg);
    el_first.advanceTo(97);
    ByteSink el_sink;
    el_first.saveState(el_sink);
    fleet::FleetCampaign el_second(el_cfg);
    ByteSource el_src(el_sink.bytes());
    el_second.loadState(el_src);
    const fleet::FleetResult el_resumed = el_second.finish();
    const bool resume_match =
        el_resumed.fingerprint == el_run.res.fingerprint;
    const bool elastic_ok = resume_match &&
                            fleet::auditClean(el_run.res) &&
                            el_tot.serverJoins >= 1 && all_serving;

    Table elastic_table(
        {"fleet elasticity", "count", "rate", "check"});
    elastic_table.addRow(
        {"joins (warm-fill admissions)",
         Table::num(static_cast<double>(el_tot.serverJoins), 0), "-",
         el_tot.serverJoins >= 1 && all_serving ? "all serving"
                                                : "NO — BUG"});
    elastic_table.addRow(
        {"warm-fill records",
         Table::num(static_cast<double>(el_tot.warmFills), 0),
         Table::num(warm_fill_per_s / 1000.0, 1) + " Krec/s", "-"});
    elastic_table.addRow(
        {"load migrations",
         Table::num(static_cast<double>(el_tot.loadMigrations), 0),
         "-", "-"});
    elastic_table.addRow(
        {"resume fingerprint", "-", "-",
         resume_match ? "match" : "NO — BUG"});
    elastic_table.print(std::cout);

    // ---- JSON emission ---------------------------------------------
    const char *path_env = std::getenv("CITADEL_BENCH_JSON");
    const std::string path =
        path_env && *path_env ? path_env : "BENCH_mc.json";
    std::ofstream json(path);
    json << "{\n"
         << "  \"schema\": \"citadel-perf-trajectory-v6\",\n"
         << "  \"trials\": " << n << ",\n"
         << "  \"threads\": " << nthreads << ",\n"
         << "  \"hardware_concurrency\": " << hw_threads << ",\n"
         << "  \"mc\": {\n"
         << "    \"serial_trials_per_s\": " << serial_tps << ",\n"
         << "    \"parallel_trials_per_s\": " << parallel_tps << ",\n"
         << "    \"speedup\": " << mc_speedup << ",\n"
         << "    \"scaling_efficiency\": " << mc_efficiency << ",\n"
         << "    \"scaling_check\": \""
         << (scaling_enforced ? "enforced" : "warning") << "\",\n"
         << "    \"bit_identical\": " << (match ? "true" : "false")
         << "\n  },\n"
         << "  \"crc32\": {\n"
         << "    \"slice8_mb_per_s\": " << crc_slice8 << ",\n"
         << "    \"bytewise_mb_per_s\": " << crc_byte << ",\n"
         << "    \"speedup\": " << crc_slice8 / crc_byte << "\n  },\n"
         << "  \"parity_xor\": {\n"
         << "    \"word_mb_per_s\": " << fold_word << ",\n"
         << "    \"byte_mb_per_s\": " << fold_byte << ",\n"
         << "    \"speedup\": " << fold_word / fold_byte << "\n  },\n"
         << "  \"kernels\": {\n"
         << "    \"l1_bytes\": " << kL1Bytes << ",\n"
         << "    \"stream_bytes\": " << buf.size() << ",\n"
         << "    \"bit_identical\": "
         << (kernels_identical ? "true" : "false") << ",\n"
         << "    \"xor_fold\": {\n"
         << "      \"dispatch_path\": \"" << xorKernelOps().path
         << "\",\n"
         << "      \"scalar_l1_mb_per_s\": " << xf_scalar_l1 << ",\n"
         << "      \"dispatched_l1_mb_per_s\": " << xf_disp_l1 << ",\n"
         << "      \"scalar_stream_mb_per_s\": " << fold_word << ",\n"
         << "      \"dispatched_stream_mb_per_s\": " << xf_disp_stream
         << ",\n"
         << "      \"l1_speedup\": " << xf_disp_l1 / xf_scalar_l1
         << "\n    },\n"
         << "    \"xor_fold_n\": {\n"
         << "      \"dispatch_path\": \"" << xorKernelOps().path
         << "\",\n"
         << "      \"k\": " << kFoldK << ",\n"
         << "      \"scalar_mb_per_s\": " << xfn_scalar << ",\n"
         << "      \"dispatched_mb_per_s\": " << xfn_disp << ",\n"
         << "      \"speedup\": " << xfn_disp / xfn_scalar << "\n    },\n"
         << "    \"crc32\": {\n"
         << "      \"hw_path\": \"" << Crc32::activePathName() << "\",\n"
         << "      \"hw_available\": "
         << (Crc32::hwAvailable() ? "true" : "false") << ",\n"
         << "      \"slice8_l1_mb_per_s\": " << crc_slice8_l1 << ",\n"
         << "      \"hw_l1_mb_per_s\": " << crc_hw_l1 << ",\n"
         << "      \"slice8_stream_mb_per_s\": " << crc_slice8 << ",\n"
         << "      \"hw_stream_mb_per_s\": " << crc_hw_stream << ",\n"
         << "      \"l1_speedup\": " << crc_hw_l1 / crc_slice8_l1
         << "\n    },\n"
         << "    \"trial_exec\": {\n"
         << "      \"batched_ktrials_per_s\": " << batched_ktps << ",\n"
         << "      \"unbatched_ktrials_per_s\": " << unbatched_ktps
         << ",\n"
         << "      \"speedup\": " << batched_ktps / unbatched_ktps
         << ",\n"
         << "      \"bit_identical\": "
         << (batch_identical ? "true" : "false") << "\n    }\n  },\n"
         << "  \"timing\": {\n"
         << "    \"insns_per_core\": " << sim_insns << ",\n"
         << "    \"stepping\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SteppingPoint &p = points[i];
        json << "      {\"benchmark\": \"" << p.bench
             << "\", \"cycle_cps\": " << p.cycle_cps
             << ", \"event_cps\": " << p.event_cps
             << ", \"speedup\": " << p.event_cps / p.cycle_cps
             << ", \"identical\": " << (p.identical ? "true" : "false")
             << "}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "    ],\n"
         << "    \"suite_serial_s\": " << suite_serial_s << ",\n"
         << "    \"suite_parallel_s\": " << suite_parallel_s << ",\n"
         << "    \"suite_speedup\": " << suite_serial_s / suite_parallel_s
         << ",\n"
         << "    \"suite_scaling_efficiency\": "
         << suite_serial_s / suite_parallel_s /
                static_cast<double>(nthreads)
         << ",\n"
         << "    \"suite_identical\": "
         << (suite_identical ? "true" : "false") << "\n  },\n"
         << "  \"fleet\": {\n"
         << "    \"ticks\": " << fleet_cfg.ticks << ",\n"
         << "    \"arrivals_per_tick\": " << fleet_cfg.arrivalsPerTick
         << ",\n"
         << "    \"batch\": " << fleet_points[1].batch << ",\n"
         << "    \"unbatched_kops_per_s\": " << fl_direct_kops << ",\n"
         << "    \"batched_kops_per_s\": " << fl_batched_kops << ",\n"
         << "    \"socket_kops_per_s\": " << fl_socket_kops << ",\n"
         << "    \"batched_speedup\": " << fleet_speedup << ",\n"
         << "    \"p50_latency_ticks\": "
         << fl_batched.res.p50LatencyTicks << ",\n"
         << "    \"p99_latency_ticks\": "
         << fl_batched.res.p99LatencyTicks << ",\n"
         << "    \"fingerprint_invariant\": "
         << (fleet_identical ? "true" : "false") << "\n  },\n"
         << "  \"fleet_elasticity\": {\n"
         << "    \"server_joins\": " << el_tot.serverJoins << ",\n"
         << "    \"warm_fill_records\": " << el_tot.warmFills << ",\n"
         << "    \"warm_fill_records_per_s\": " << warm_fill_per_s
         << ",\n"
         << "    \"warm_restarts\": " << el_tot.warmRestarts << ",\n"
         << "    \"load_migrations\": " << el_tot.loadMigrations
         << ",\n"
         << "    \"all_servers_serving\": "
         << (all_serving ? "true" : "false") << ",\n"
         << "    \"resume_fingerprint_match\": "
         << (resume_match ? "true" : "false") << "\n  }\n"
         << "}\n";
    json.close();
    std::cout << "\nwrote " << path << "\n";

    if (!match) {
        std::cerr << "FATAL: parallel Monte Carlo diverged from the "
                     "serial path\n";
        return 1;
    }
    if (!kernels_identical) {
        std::cerr << "FATAL: a dispatched kernel diverged from its "
                     "scalar proof\n";
        return 1;
    }
    if (!sim_identical) {
        std::cerr << "FATAL: timing simulator diverged (event stepping "
                     "or parallel suite runner)\n";
        return 1;
    }
    if (!fleet_identical) {
        std::cerr << "FATAL: a fleet wire transport diverged from the "
                     "Direct baseline (fingerprint or audit)\n";
        return 1;
    }
    if (!elastic_ok) {
        std::cerr << "FATAL: fleet elasticity gate failed (checkpoint "
                     "resume divergence, unclean audit, or crashed "
                     "servers not restored to Serving)\n";
        return 1;
    }
    if (scaling_enforced && !scaling_ok) {
        std::cerr << "FATAL: parallel scaling efficiency "
                  << mc_efficiency << " below the " << kMinEfficiency
                  << " floor with " << hw_threads
                  << " hardware threads available\n";
        return 1;
    }
    return 0;
}
