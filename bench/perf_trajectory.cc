/**
 * @file
 * Perf-trajectory harness: times the three hot paths this repo's
 * throughput hangs on and emits machine-readable BENCH_mc.json so
 * future PRs have a baseline to compare against.
 *
 *  1. Monte Carlo trials/s, serial (1 thread) vs parallel
 *     (CITADEL_THREADS / hardware_concurrency), full Citadel scheme at
 *     the pessimistic TSV rate. The two runs must be bit-identical —
 *     this binary exits non-zero on any mismatch, which is what the
 *     perf-smoke CI job asserts.
 *  2. CRC-32 MB/s: slice-by-8 production path vs the one-table
 *     byte-at-a-time baseline.
 *  3. Parity-fold MB/s: word-wide xorFold vs a byte-loop oracle.
 *  4. Timing simulator: cycles simulated/s under cycle vs event
 *     stepping (low-MPKI and high-MPKI profiles), and suite wall time
 *     serial (runSuite) vs parallel (runSuiteParallel). Every pair
 *     must be bit-identical; any divergence makes this binary exit
 *     non-zero, which is what the perf-smoke CI job asserts.
 *
 * Knobs: CITADEL_TRIALS (default 20000), CITADEL_INSNS (default
 * 100000), CITADEL_THREADS, CITADEL_BENCH_JSON (output path, default
 * ./BENCH_mc.json).
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "common/xor_fold.h"
#include "ecc/crc32.h"

using namespace citadel;
using namespace citadel::bench;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bool
identical(const McResult &a, const McResult &b)
{
    return a.trials == b.trials && a.failures == b.failures &&
           a.failuresByYear == b.failuresByYear &&
           a.failuresByClass == b.failuresByClass &&
           a.meanFaultsPerTrial == b.meanFaultsPerTrial;
}

/** Throughput of one CRC kernel over `buf`, in MB/s. */
template <typename Kernel>
double
crcMbPerS(const std::vector<u8> &buf, u64 passes, Kernel kernel)
{
    u32 sink = Crc32::begin();
    const auto t0 = std::chrono::steady_clock::now();
    for (u64 i = 0; i < passes; ++i)
        sink = kernel(sink, buf);
    const double dt = secondsSince(t0);
    // Fold the sink into stderr noise so the loop cannot be elided.
    if (sink == 0xDEADBEEFu)
        std::cerr << "";
    const double bytes = static_cast<double>(buf.size()) *
                         static_cast<double>(passes);
    return bytes / dt / 1e6;
}

/**
 * The byte-at-a-time fold baseline. Kept out of line with
 * auto-vectorization disabled: inlined into the timing loop the
 * optimizer either SIMD-vectorizes it (measuring the compiler, not the
 * kernel) or collapses the repeated self-inverse passes outright.
 */
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize")))
#endif
__attribute__((noinline)) void
foldBytewise(u8 *dst, const u8 *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<u8>(dst[i] ^ src[i]);
}

/** Out-of-line wrapper so both fold kernels are timed the same way. */
__attribute__((noinline)) void
foldWordwise(u8 *dst, const u8 *src, std::size_t n)
{
    xorFold(dst, src, n);
}

/** MB/s of one fold kernel; a barrier keeps every pass observable. */
double
foldMbPerS(std::vector<u8> &acc, const std::vector<u8> &src, u64 passes,
           void (*kernel)(u8 *, const u8 *, std::size_t))
{
    const auto t0 = std::chrono::steady_clock::now();
    for (u64 i = 0; i < passes; ++i) {
        kernel(acc.data(), src.data(), src.size());
        asm volatile("" ::: "memory");
    }
    const double dt = secondsSince(t0);
    const double bytes = static_cast<double>(src.size()) *
                         static_cast<double>(passes);
    return bytes / dt / 1e6;
}

} // namespace

int
main()
{
    const u64 n = trials(20000);
    const unsigned nthreads = citadelThreads();
    printBanner(std::cout,
                "Perf trajectory (" + std::to_string(n) + " trials, " +
                    std::to_string(nthreads) + " threads)");

    // ---- 1. Monte Carlo throughput, serial vs parallel -------------
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    MonteCarlo mc(cfg);
    auto scheme = makeCitadel();

    auto t0 = std::chrono::steady_clock::now();
    const McResult serial = mc.run(*scheme, n, 7, 1);
    const double serial_s = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    const McResult parallel = mc.run(*scheme, n, 7, nthreads);
    const double parallel_s = secondsSince(t0);

    const bool match = identical(serial, parallel);
    const double serial_tps = static_cast<double>(n) / serial_s;
    const double parallel_tps = static_cast<double>(n) / parallel_s;

    Table mc_table({"engine", "trials/s", "speedup", "P(fail)"});
    mc_table.addRow({"serial (1 thread)", Table::num(serial_tps, 0),
                     "1.0x", probCell(serial.probFail())});
    mc_table.addRow({"parallel (" + std::to_string(nthreads) + " threads)",
                     Table::num(parallel_tps, 0),
                     Table::num(parallel_tps / serial_tps, 2) + "x",
                     probCell(parallel.probFail())});
    mc_table.print(std::cout);
    const double mc_speedup = parallel_tps / serial_tps;
    const double mc_efficiency =
        mc_speedup / static_cast<double>(nthreads);
    std::cout << "bit-identical: " << (match ? "yes" : "NO — BUG")
              << " | scaling efficiency "
              << Table::num(mc_efficiency * 100.0, 0) << "% of linear on "
              << nthreads << " threads\n\n";

    // ---- 2. CRC-32 MB/s: slice-by-8 vs byte-at-a-time --------------
    Rng rng(99);
    std::vector<u8> buf(1 << 20);
    for (auto &b : buf)
        b = static_cast<u8>(rng.next());
    const u64 passes = std::max<u64>(1, envU64("CITADEL_CRC_PASSES", 64));

    const double crc_slice8 =
        crcMbPerS(buf, passes, [](u32 s, const std::vector<u8> &d) {
            return Crc32::update(s, d);
        });
    const double crc_byte =
        crcMbPerS(buf, passes, [](u32 s, const std::vector<u8> &d) {
            return Crc32::updateBytewise(s, d);
        });

    Table crc_table({"CRC-32 kernel", "MB/s", "speedup"});
    crc_table.addRow({"slice-by-8", Table::num(crc_slice8, 0),
                      Table::num(crc_slice8 / crc_byte, 2) + "x"});
    crc_table.addRow({"byte-at-a-time", Table::num(crc_byte, 0), "1.0x"});
    crc_table.print(std::cout);
    std::cout << "\n";

    // ---- 3. Parity fold MB/s: word-wide vs byte loop ---------------
    std::vector<u8> acc(1 << 20);
    for (auto &b : acc)
        b = static_cast<u8>(rng.next());
    const u64 fold_passes =
        std::max<u64>(1, envU64("CITADEL_FOLD_PASSES", 256));

    const double fold_word =
        foldMbPerS(acc, buf, fold_passes, foldWordwise);
    const double fold_byte =
        foldMbPerS(acc, buf, fold_passes, foldBytewise);

    Table fold_table({"parity XOR kernel", "MB/s", "speedup"});
    fold_table.addRow({"word-wide (u64)", Table::num(fold_word, 0),
                       Table::num(fold_word / fold_byte, 2) + "x"});
    fold_table.addRow({"byte loop", Table::num(fold_byte, 0), "1.0x"});
    fold_table.print(std::cout);
    std::cout << "\n";

    // ---- 4. Timing simulator: stepping + suite parallelism ---------
    const u64 sim_insns = insns(100000);
    bool sim_identical = true;

    // Cycle vs event stepping on a low-MPKI (idle-heavy, where the
    // skipping pays off) and a high-MPKI (memory-bound floor) profile.
    // Only run() is timed -- LLC warm-up in the constructor is common
    // to both modes and would wash the ratio out at small budgets.
    struct SteppingPoint
    {
        const char *bench;
        RasTraffic ras;
        double cycle_cps = 0;
        double event_cps = 0;
        bool identical = false;
    };
    std::vector<SteppingPoint> points = {
        {"povray", RasTraffic::None},        // idle-heavy
        {"mcf", RasTraffic::ThreeDPCached},  // memory-bound
    };
    for (SteppingPoint &p : points) {
        const BenchmarkProfile &prof = findBenchmark(p.bench);
        SimResult rc, re;
        for (const SimStepping stepping :
             {SimStepping::Cycle, SimStepping::Event}) {
            SimConfig cfg;
            cfg.ras = p.ras;
            cfg.insnsPerCore = sim_insns;
            cfg.stepping = stepping;
            SystemSim sim(cfg, prof);
            t0 = std::chrono::steady_clock::now();
            const SimResult r = sim.run();
            const double dt = secondsSince(t0);
            if (stepping == SimStepping::Cycle) {
                rc = r;
                p.cycle_cps = static_cast<double>(r.cycles) / dt;
            } else {
                re = r;
                p.event_cps = static_cast<double>(r.cycles) / dt;
            }
        }
        p.identical = identicalResults(rc, re);
        sim_identical = sim_identical && p.identical;
    }

    Table step_table(
        {"benchmark", "cycle cps", "event cps", "speedup", "identical"});
    for (const SteppingPoint &p : points)
        step_table.addRow({p.bench, Table::num(p.cycle_cps, 0),
                           Table::num(p.event_cps, 0),
                           Table::num(p.event_cps / p.cycle_cps, 2) + "x",
                           p.identical ? "yes" : "NO — BUG"});
    step_table.print(std::cout);
    std::cout << "\n";

    // Suite wall time, serial vs parallel, same thread budget as MC.
    t0 = std::chrono::steady_clock::now();
    const auto suite_serial =
        runSuite(StripingMode::SameBank, RasTraffic::ThreeDPCached,
                 sim_insns, /*verbose=*/false);
    const double suite_serial_s = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    const auto suite_parallel = runSuiteParallel(
        StripingMode::SameBank, RasTraffic::ThreeDPCached, sim_insns,
        nthreads);
    const double suite_parallel_s = secondsSince(t0);

    bool suite_identical = suite_serial.size() == suite_parallel.size();
    for (const auto &[name, r] : suite_serial)
        suite_identical = suite_identical &&
                          suite_parallel.count(name) &&
                          identicalResults(r, suite_parallel.at(name));
    sim_identical = sim_identical && suite_identical;

    Table suite_table({"suite runner", "wall s", "speedup", "identical"});
    suite_table.addRow({"serial", Table::num(suite_serial_s, 2), "1.0x",
                        "-"});
    suite_table.addRow(
        {"parallel (" + std::to_string(nthreads) + " threads)",
         Table::num(suite_parallel_s, 2),
         Table::num(suite_serial_s / suite_parallel_s, 2) + "x",
         suite_identical ? "yes" : "NO — BUG"});
    suite_table.print(std::cout);

    // ---- JSON emission ---------------------------------------------
    const char *path_env = std::getenv("CITADEL_BENCH_JSON");
    const std::string path =
        path_env && *path_env ? path_env : "BENCH_mc.json";
    std::ofstream json(path);
    json << "{\n"
         << "  \"schema\": \"citadel-perf-trajectory-v3\",\n"
         << "  \"trials\": " << n << ",\n"
         << "  \"threads\": " << nthreads << ",\n"
         << "  \"hardware_concurrency\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"mc\": {\n"
         << "    \"serial_trials_per_s\": " << serial_tps << ",\n"
         << "    \"parallel_trials_per_s\": " << parallel_tps << ",\n"
         << "    \"speedup\": " << mc_speedup << ",\n"
         << "    \"scaling_efficiency\": " << mc_efficiency << ",\n"
         << "    \"bit_identical\": " << (match ? "true" : "false")
         << "\n  },\n"
         << "  \"crc32\": {\n"
         << "    \"slice8_mb_per_s\": " << crc_slice8 << ",\n"
         << "    \"bytewise_mb_per_s\": " << crc_byte << ",\n"
         << "    \"speedup\": " << crc_slice8 / crc_byte << "\n  },\n"
         << "  \"parity_xor\": {\n"
         << "    \"word_mb_per_s\": " << fold_word << ",\n"
         << "    \"byte_mb_per_s\": " << fold_byte << ",\n"
         << "    \"speedup\": " << fold_word / fold_byte << "\n  },\n"
         << "  \"timing\": {\n"
         << "    \"insns_per_core\": " << sim_insns << ",\n"
         << "    \"stepping\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SteppingPoint &p = points[i];
        json << "      {\"benchmark\": \"" << p.bench
             << "\", \"cycle_cps\": " << p.cycle_cps
             << ", \"event_cps\": " << p.event_cps
             << ", \"speedup\": " << p.event_cps / p.cycle_cps
             << ", \"identical\": " << (p.identical ? "true" : "false")
             << "}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "    ],\n"
         << "    \"suite_serial_s\": " << suite_serial_s << ",\n"
         << "    \"suite_parallel_s\": " << suite_parallel_s << ",\n"
         << "    \"suite_speedup\": " << suite_serial_s / suite_parallel_s
         << ",\n"
         << "    \"suite_scaling_efficiency\": "
         << suite_serial_s / suite_parallel_s /
                static_cast<double>(nthreads)
         << ",\n"
         << "    \"suite_identical\": "
         << (suite_identical ? "true" : "false") << "\n  }\n"
         << "}\n";
    json.close();
    std::cout << "\nwrote " << path << "\n";

    if (!match) {
        std::cerr << "FATAL: parallel Monte Carlo diverged from the "
                     "serial path\n";
        return 1;
    }
    if (!sim_identical) {
        std::cerr << "FATAL: timing simulator diverged (event stepping "
                     "or parallel suite runner)\n";
        return 1;
    }
    return 0;
}
