/**
 * @file
 * Table III: among systems with at least one failed bank (a bank
 * needing more than 4 spare rows), how many banks failed? This sizes
 * the BRT: two spare banks cover nearly every affected system.
 */

#include <iostream>

#include "bench_util.h"
#include "faults/analysis.h"

using namespace citadel;
using namespace citadel::bench;

int
main()
{
    const u64 n = trials(100000);
    printBanner(std::cout, "Table III: failed banks per system (" +
                               std::to_string(n) + " lifetimes)");

    SystemConfig cfg;
    SparingAnalysis ana(cfg);
    const FailedBankDistribution d = ana.failedBanks(n, 4, 73);

    const double total = static_cast<double>(d.systemsWithFailedBank);
    Table t({"num faulty banks", "measured", "paper Table III"});
    t.addRow({"1", Table::pct(static_cast<double>(d.one) / total), "66.98%"});
    t.addRow({"2", Table::pct(static_cast<double>(d.two) / total), "32.98%"});
    t.addRow({"3+", Table::pct(static_cast<double>(d.threePlus) / total), "0.04%"});
    t.print(std::cout);

    std::cout << "\nSystems with >= 1 failed bank: "
              << d.systemsWithFailedBank << " of " << n << " ("
              << Table::pct(total / static_cast<double>(n)) << ")\n"
              << "\nNote: with independent per-die Poisson bank "
                 "failures at Table I rates, two-bank\nsystems are "
                 "rarer than the paper's 32.98% (their field data "
                 "includes correlated\nmulti-bank events); 2 spare "
                 "banks still cover >99.9% of affected systems.\n"
              << "Covered by 2 spare banks: "
              << Table::pct(static_cast<double>(d.one + d.two) / total) << "\n";
    return 0;
}
