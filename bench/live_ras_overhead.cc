/**
 * @file
 * Overhead of the live RAS datapath: run the same workload slice with
 * (a) no datapath, (b) the datapath attached but fault-free, (c) a
 * demand-corrected row fault, (d) an unspared bank fault that
 * re-corrects on every access (DDS disabled — worst case), and (e) an
 * uncorrectable triple-bank pattern. Reports cycles, slowdown vs (a),
 * RAS-purposed reads and the CE/DUE totals, quantifying what
 * demand-time correction costs the running system (Section VI-B).
 */

#include <iostream>

#include "bench_util.h"
#include "ras/live_datapath.h"

using namespace citadel;
using namespace citadel::bench;

namespace {

SimConfig
baseConfig(u64 insns_per_core)
{
    SimConfig cfg;
    cfg.geom = StackGeometry::tiny();
    cfg.llcBytes = 1 << 14;
    cfg.cores = 2;
    cfg.insnsPerCore = insns_per_core;
    cfg.ras = RasTraffic::ThreeDPCached;
    cfg.seed = 9;
    return cfg;
}

Fault
makeBankFault(u32 ch, u32 bank)
{
    Fault f;
    f.cls = FaultClass::Bank;
    f.stack = DimSpec::exact(0);
    f.channel = DimSpec::exact(ch);
    f.bank = DimSpec::exact(bank);
    return f;
}

Fault
makeRowFault(u32 ch, u32 bank, u32 row)
{
    Fault f;
    f.cls = FaultClass::Row;
    f.stack = DimSpec::exact(0);
    f.channel = DimSpec::exact(ch);
    f.bank = DimSpec::exact(bank);
    f.row = DimSpec::exact(row);
    return f;
}

} // namespace

int
main()
{
    const u64 n = insns(30'000);
    printBanner(std::cout,
                "Live RAS datapath overhead (tiny geometry, " +
                    std::to_string(n) + " insns/core)");

    const SimConfig cfg = baseConfig(n);
    const BenchmarkProfile &wl = findBenchmark("mcf");

    struct Scenario
    {
        const char *name;
        bool attach;
        bool dds;
        std::vector<Fault> faults;
    };
    const Scenario scenarios[] = {
        {"no datapath", false, true, {}},
        {"attached, fault-free", true, true, {}},
        {"row fault (CE + spare)", true, true, {makeRowFault(0, 0, 5)}},
        {"bank fault, no DDS (re-correct)",
         true,
         false,
         {makeBankFault(0, 0)}},
        {"triple-bank (DUE)",
         true,
         true,
         {makeBankFault(0, 0), makeBankFault(0, 1), makeBankFault(1, 0)}},
    };

    u64 base_cycles = 0;
    Table t({"scenario", "cycles", "slowdown", "rasReads", "CE", "DUE",
             "groupReads"});
    for (const Scenario &s : scenarios) {
        LiveRasOptions opts;
        opts.scheme.enableDds = s.dds;
        LiveRasDatapath dp(cfg, opts);
        for (const Fault &f : s.faults)
            dp.scheduleFault(f, 500);

        SystemSim sim(cfg, wl);
        if (s.attach)
            sim.attachRas(&dp);
        const SimResult res = sim.run();
        if (base_cycles == 0)
            base_cycles = res.cycles;

        const RasCounters &c = dp.counters();
        t.addRow({s.name, Table::num(static_cast<double>(res.cycles), 0),
                  Table::num(static_cast<double>(res.cycles) /
                                 static_cast<double>(base_cycles),
                             3) +
                      "x",
                  Table::num(static_cast<double>(res.mem.rasReads), 0),
                  Table::num(static_cast<double>(c.ce), 0),
                  Table::num(static_cast<double>(c.due), 0),
                  Table::num(static_cast<double>(c.parityGroupReads), 0)});
    }
    t.print(std::cout);

    std::cout << "\nExpectation: the fault-free datapath is ~free; the "
                 "unspared bank fault pays\nthe full demand-time "
                 "correction latency on every hit (what DDS exists to "
                 "remove);\nDUEs cost a retry but never block "
                 "completion.\n";
    return 0;
}
