/**
 * @file
 * Fleet load driver: runs the memory-pool service campaign — client
 * retry engine, coordinator failover, N bit-true stack-server shards —
 * under deterministic chaos, and proves on every run that the result
 * is thread-count invariant: the campaign is executed a second time on
 * a single worker thread and the two fingerprints must match bit for
 * bit.
 *
 * All knobs go through the range-validated env parser; a typo'd value
 * is rejected (with a warning) rather than silently wedging a run:
 *
 *   CITADEL_FLEET_SERVERS      stack servers          [2, 64]
 *   CITADEL_FLEET_TICKS        campaign ticks         [64, 1e6]
 *   CITADEL_FLEET_USERS        distinct clients       [1, 1e9]
 *   CITADEL_FLEET_KEYSPACE     distinct keys          [1, 1e6]
 *   CITADEL_FLEET_ARRIVALS     operations per tick    [1, 1024]
 *   CITADEL_FLEET_WRITE_FRAC   write fraction         [0, 1]
 *   CITADEL_FLEET_REPLICATION  copies per key         [1, 8]
 *   CITADEL_FLEET_QUORUM       write-ack quorum       [1, 8]
 *   CITADEL_FLEET_QUEUE_CAP    per-server inbox cap   [1, 65536]
 *   CITADEL_FLEET_CHAOS        chaos on/off           [0, 1]
 *   CITADEL_FLEET_CRASHES      scheduled crashes      [0, 64]
 *   CITADEL_FLEET_DROP_PROB    request loss prob      [0, 1]
 *   CITADEL_FLEET_CALIB_INSNS  SystemSim calibration
 *                              slice, 0 = skip        [0, 1e7]
 *   CITADEL_FLEET_FIT_SCALE    device FIT multiplier  [0, 1e6]
 *   CITADEL_SEED               campaign seed
 *   CITADEL_THREADS            worker threads (the fingerprint is
 *                              identical for any value)
 *
 * Exit status is non-zero if any acknowledged write is lost or
 * corrupt, if any datapath's differential model diverges, or if the
 * two runs' fingerprints differ.
 */

#include <iomanip>
#include <iostream>

#include "common/env.h"
#include "fleet/fleet_sim.h"

using namespace citadel;
using namespace citadel::fleet;

namespace {

FleetConfig
configFromEnv()
{
    FleetConfig cfg = FleetConfig::demo();
    cfg.servers = static_cast<u32>(
        envU64InRange("CITADEL_FLEET_SERVERS", 8, 2, 64));
    cfg.ticks = envU64InRange("CITADEL_FLEET_TICKS", 2048, 64, 1'000'000);
    cfg.users =
        envU64InRange("CITADEL_FLEET_USERS", 1'000'000, 1, 1'000'000'000);
    cfg.keySpace =
        envU64InRange("CITADEL_FLEET_KEYSPACE", 512, 1, 1'000'000);
    cfg.arrivalsPerTick = static_cast<u32>(
        envU64InRange("CITADEL_FLEET_ARRIVALS", 4, 1, 1024));
    cfg.writeFraction =
        envDoubleInRange("CITADEL_FLEET_WRITE_FRAC", 0.5, 0.0, 1.0);
    cfg.replication = static_cast<u32>(
        envU64InRange("CITADEL_FLEET_REPLICATION", 2, 1, 8));
    cfg.ackQuorum =
        static_cast<u32>(envU64InRange("CITADEL_FLEET_QUORUM", 2, 1, 8));
    cfg.server.queueCap = static_cast<u32>(
        envU64InRange("CITADEL_FLEET_QUEUE_CAP", 256, 1, 65536));
    cfg.chaos.enabled =
        envU64InRange("CITADEL_FLEET_CHAOS", 1, 0, 1) != 0;
    cfg.chaos.crashes = static_cast<u32>(
        envU64InRange("CITADEL_FLEET_CRASHES", 1, 0, 64));
    cfg.chaos.dropProb =
        envDoubleInRange("CITADEL_FLEET_DROP_PROB", 0.01, 0.0, 1.0);
    cfg.server.calibrationInsns =
        envU64InRange("CITADEL_FLEET_CALIB_INSNS", 20'000, 0, 10'000'000);

    // Rebuild the FIT table from nominal so the env knob is an
    // absolute multiplier, not a multiplier on demo()'s default.
    const double fit_scale =
        envDoubleInRange("CITADEL_FLEET_FIT_SCALE", 2000.0, 0.0, 1e6);
    FitTable t = FitTable::paper8Gb();
    const auto scale = [&](FitPair p) {
        p.transientFit *= fit_scale;
        p.permanentFit *= fit_scale;
        return p;
    };
    t.bit = scale(t.bit);
    t.word = scale(t.word);
    t.column = scale(t.column);
    t.row = scale(t.row);
    t.bank = scale(t.bank);
    cfg.server.faults.rates = t;

    cfg.seed = envU64("CITADEL_SEED", 1);
    return cfg;
}

void
printServers(const FleetResult &res)
{
    std::cout << "  srv state    served  rejected  DUE  CE    keys  "
                 "units/tick  capacity\n";
    for (std::size_t s = 0; s < res.servers.size(); ++s) {
        const ServerReport &r = res.servers[s];
        std::cout << "  " << std::setw(3) << s << " " << std::left
                  << std::setw(8) << serverStateName(r.state)
                  << std::right << std::setw(9) << r.served
                  << std::setw(9) << r.rejected << std::setw(5)
                  << r.dueReads << std::setw(5) << r.corrected
                  << std::setw(7) << r.kvKeys << std::setw(11)
                  << r.serviceUnits << std::setw(9) << std::fixed
                  << std::setprecision(3) << r.capacityFraction
                  << "\n";
    }
}

} // namespace

int
main()
{
    FleetConfig cfg = configFromEnv();

    std::cout << "fleet load driver: " << cfg.servers << " servers, "
              << cfg.ticks << " ticks, replication " << cfg.replication
              << "/quorum " << cfg.ackQuorum << ", chaos "
              << (cfg.chaos.enabled ? "on" : "off") << "\n";

    FleetCampaign campaign(cfg);
    std::cout << "chaos schedule: " << campaign.chaosSchedule().size()
              << " events\n";
    const FleetResult res = campaign.run();
    std::cout << res.summary() << "\n";
    printServers(res);

    // Thread-invariance proof: the same campaign on one worker thread
    // must land on the same fingerprint bit for bit.
    FleetConfig single = cfg;
    single.threads = 1;
    FleetCampaign control(single);
    const FleetResult ref = control.run();
    std::cout << "single-thread control fingerprint " << std::hex
              << ref.fingerprint << std::dec << "\n";

    bool ok = true;
    if (res.fingerprint != ref.fingerprint) {
        std::cout << "FAIL: fingerprint differs across thread counts\n";
        ok = false;
    }
    if (res.lostAckedWrites != 0 || res.corruptAckedWrites != 0) {
        std::cout << "FAIL: durability audit lost "
                  << res.lostAckedWrites << " / corrupt "
                  << res.corruptAckedWrites << " acked writes\n";
        ok = false;
    }
    if (res.divergences != 0) {
        std::cout << "FAIL: no-overclaim divergences detected\n";
        ok = false;
    }
    if (res.totals.opsAcked == 0) {
        std::cout << "FAIL: service acknowledged nothing\n";
        ok = false;
    }
    if (ok)
        std::cout << "OK: deterministic chaos campaign survivable "
                     "(fingerprint 0x"
                  << std::hex << res.fingerprint << std::dec << ")\n";
    return ok ? 0 : 1;
}
