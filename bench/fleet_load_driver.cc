/**
 * @file
 * Fleet load driver: runs the memory-pool service campaign — client
 * retry engine, coordinator failover, N bit-true stack-server shards —
 * under deterministic chaos at production-shaped load, and proves on
 * every run that the result is invariant across everything that must
 * not matter: worker thread count, transport (direct / loopback /
 * socket), and wire batch size. A reduced copy of the campaign is
 * executed across the full {transport} x {batch} x {threads} grid and
 * every cell must land on the same durability-audit fingerprint.
 *
 * The serving hot path is also measured: the batched loopback wire
 * path is timed against the per-request Direct baseline and the run
 * reports Kops/s, the batched-vs-unbatched speedup, and acked-
 * completion latency percentiles in virtual ticks.
 *
 * All knobs go through the range-validated env parser; a typo'd value
 * is rejected (with a warning) rather than silently wedging a run:
 *
 *   CITADEL_FLEET_SERVERS      stack servers          [2, 64]
 *   CITADEL_FLEET_TICKS        campaign ticks         [64, 1e6]
 *   CITADEL_FLEET_USERS        distinct clients       [1, 1e9]
 *   CITADEL_FLEET_KEYSPACE     distinct keys          [1, 1e6]
 *   CITADEL_FLEET_ARRIVALS     operations per tick    [1, 1024]
 *   CITADEL_FLEET_WRITE_FRAC   write fraction         [0, 1]
 *   CITADEL_FLEET_REPLICATION  copies per key         [1, 8]
 *   CITADEL_FLEET_QUORUM       write-ack quorum       [1, 8]
 *   CITADEL_FLEET_QUEUE_CAP    per-server inbox cap   [1, 65536]
 *   CITADEL_FLEET_BATCH        wire records/frame     [1, 4096]
 *   CITADEL_FLEET_TRANSPORT    direct|loopback|socket (loopback)
 *   CITADEL_FLEET_TRACE        trace-replay spec (fleet/traffic.h
 *                              grammar); empty = uniform arrivals
 *   CITADEL_FLEET_CHAOS        chaos on/off           [0, 1]
 *   CITADEL_FLEET_CRASHES      scheduled crashes      [0, 64]
 *   CITADEL_FLEET_DROP_PROB    request loss prob      [0, 1]
 *   CITADEL_FLEET_JOIN         crashed/stalled-out servers restart
 *                              and rejoin (warm fill) [0, 1]
 *   CITADEL_FLEET_REBALANCE    load-driven hot-shard
 *                              migration              [0, 1]
 *   CITADEL_FLEET_CHECKPOINT   checkpoint/resume proof: save at this
 *                              tick, resume in a fresh campaign, and
 *                              require the resumed fingerprint to
 *                              match the headline; 0 = off [0, 1e6]
 *   CITADEL_FLEET_CALIB_INSNS  SystemSim calibration
 *                              slice, 0 = skip        [0, 1e7]
 *   CITADEL_FLEET_FIT_SCALE    device FIT multiplier  [0, 1e6]
 *   CITADEL_SEED               campaign seed
 *   CITADEL_THREADS            worker threads (the fingerprint is
 *                              identical for any value)
 *
 * Exit status is non-zero if any acknowledged write is lost or
 * corrupt, if any datapath's differential model diverges, or if any
 * grid cell's fingerprint differs from the rest.
 */

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/env.h"
#include "fleet_bench_util.h"

using namespace citadel;
using namespace citadel::fleet;

namespace {

FleetConfig
configFromEnv()
{
    FleetConfig cfg = FleetConfig::demo();
    cfg.servers = static_cast<u32>(
        envU64InRange("CITADEL_FLEET_SERVERS", 8, 2, 64));
    cfg.ticks = envU64InRange("CITADEL_FLEET_TICKS", 2048, 64, 1'000'000);
    cfg.users =
        envU64InRange("CITADEL_FLEET_USERS", 1'000'000, 1, 1'000'000'000);
    cfg.keySpace =
        envU64InRange("CITADEL_FLEET_KEYSPACE", 512, 1, 1'000'000);
    cfg.arrivalsPerTick = static_cast<u32>(
        envU64InRange("CITADEL_FLEET_ARRIVALS", 4, 1, 1024));
    cfg.writeFraction =
        envDoubleInRange("CITADEL_FLEET_WRITE_FRAC", 0.5, 0.0, 1.0);
    cfg.replication = static_cast<u32>(
        envU64InRange("CITADEL_FLEET_REPLICATION", 2, 1, 8));
    cfg.ackQuorum =
        static_cast<u32>(envU64InRange("CITADEL_FLEET_QUORUM", 2, 1, 8));
    cfg.server.queueCap = static_cast<u32>(
        envU64InRange("CITADEL_FLEET_QUEUE_CAP", 256, 1, 65536));
    cfg.batch = static_cast<u32>(
        envU64InRange("CITADEL_FLEET_BATCH", 32, 1, kMaxFrameRecords));
    cfg.transport = requestedTransportMode();
    cfg.traffic = envString("CITADEL_FLEET_TRACE", "");
    cfg.chaos.enabled =
        envU64InRange("CITADEL_FLEET_CHAOS", 1, 0, 1) != 0;
    cfg.chaos.crashes = static_cast<u32>(
        envU64InRange("CITADEL_FLEET_CRASHES", 1, 0, 64));
    cfg.chaos.dropProb =
        envDoubleInRange("CITADEL_FLEET_DROP_PROB", 0.01, 0.0, 1.0);
    // Elasticity: rejoin after crash/stall-eviction (restart delay is
    // fixed; the knob is the on/off switch) and hot-shard rebalance.
    if (envU64InRange("CITADEL_FLEET_JOIN", 0, 0, 1) != 0)
        cfg.chaos.restartAfterTicks = 192;
    cfg.coord.rebalanceEnabled =
        envU64InRange("CITADEL_FLEET_REBALANCE", 0, 0, 1) != 0;
    cfg.server.calibrationInsns =
        envU64InRange("CITADEL_FLEET_CALIB_INSNS", 20'000, 0, 10'000'000);

    // Rebuild the FIT table from nominal so the env knob is an
    // absolute multiplier, not a multiplier on demo()'s default.
    const double fit_scale =
        envDoubleInRange("CITADEL_FLEET_FIT_SCALE", 2000.0, 0.0, 1e6);
    FitTable t = FitTable::paper8Gb();
    const auto scale = [&](FitPair p) {
        p.transientFit *= fit_scale;
        p.permanentFit *= fit_scale;
        return p;
    };
    t.bit = scale(t.bit);
    t.word = scale(t.word);
    t.column = scale(t.column);
    t.row = scale(t.row);
    t.bank = scale(t.bank);
    cfg.server.faults.rates = t;

    cfg.seed = envU64("CITADEL_SEED", 1);
    return cfg;
}

void
printServers(const FleetResult &res)
{
    std::cout << "  srv state    served  rejected  DUE  CE    keys  "
                 "units/tick  capacity\n";
    for (std::size_t s = 0; s < res.servers.size(); ++s) {
        const ServerReport &r = res.servers[s];
        std::cout << "  " << std::setw(3) << s << " " << std::left
                  << std::setw(8) << serverStateName(r.state)
                  << std::right << std::setw(9) << r.served
                  << std::setw(9) << r.rejected << std::setw(5)
                  << r.dueReads << std::setw(5) << r.corrected
                  << std::setw(7) << r.kvKeys << std::setw(11)
                  << r.serviceUnits << std::setw(9) << std::fixed
                  << std::setprecision(3) << r.capacityFraction
                  << "\n";
    }
    std::cout.unsetf(std::ios::fixed);
}

/** A cheaper copy of the headline config for the equivalence grid:
 *  every cell reruns the full campaign, so cap the tick count. */
FleetConfig
gridConfig(const FleetConfig &cfg)
{
    FleetConfig out = cfg;
    out.traffic.clear(); // The grid varies transport, not the trace.
    out.ticks = std::min<u64>(cfg.ticks, 512);
    return out;
}

/**
 * Production-shaped config for the hot-path measurement: the wire
 * path exists to amortize per-request serving overhead, which only
 * shows up when each tick carries real batch pressure. Light configs
 * are dominated by the per-tick datapath step and the SystemSim
 * calibration slice, so the measurement floors the arrival rate,
 * widens the keyspace, and drops the calibration cost that both
 * sides pay identically.
 */
FleetConfig
hotPathConfig(const FleetConfig &cfg)
{
    FleetConfig out = cfg;
    out.traffic.clear();
    out.ticks = std::min<u64>(cfg.ticks, 512);
    out.arrivalsPerTick = std::max<u32>(cfg.arrivalsPerTick, 256);
    out.keySpace = std::max<u64>(cfg.keySpace, 4096);
    out.server.calibrationInsns = 0;
    return out;
}

/** One-decimal fixed formatting without leaking stream state. */
std::string
fmt1(double v)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << v;
    return os.str();
}

} // namespace

int
main()
{
    const FleetConfig cfg = configFromEnv();

    std::cout << "fleet load driver: " << cfg.servers << " servers, "
              << cfg.ticks << " ticks, replication " << cfg.replication
              << "/quorum " << cfg.ackQuorum << ", transport "
              << transportModeName(cfg.transport) << ", batch "
              << cfg.batch << ", chaos "
              << (cfg.chaos.enabled ? "on" : "off")
              << (cfg.traffic.empty() ? "" : ", trace-replay") << "\n";

    // ---- Headline run: the requested transport at full length ------
    const TimedRun headline = timedCampaign(cfg);
    const FleetResult &res = headline.res;
    std::cout << res.summary() << "\n";
    printServers(res);
    std::cout << "headline: " << fmt1(kopsPerSec(res, headline.seconds))
              << " Kops/s, p50/p99 " << res.p50LatencyTicks << "/"
              << res.p99LatencyTicks << " ticks\n";

    bool ok = true;
    if (!auditClean(res)) {
        std::cout << "FAIL: headline audit lost " << res.lostAckedWrites
                  << " / corrupt " << res.corruptAckedWrites
                  << " acked writes, divergences " << res.divergences
                  << "\n";
        ok = false;
    }
    if (res.totals.opsAcked == 0) {
        std::cout << "FAIL: service acknowledged nothing\n";
        ok = false;
    }

    // ---- Elasticity: checkpoint/resume proof -----------------------
    // Re-run the headline campaign, cut it at the requested tick,
    // checkpoint, resume into a fresh campaign, and demand the
    // resumed fingerprint match the uninterrupted headline run.
    const u64 ckptTick =
        envU64InRange("CITADEL_FLEET_CHECKPOINT", 0, 0, 1'000'000);
    if (ckptTick > 0) {
        u64 campaignTicks = cfg.ticks;
        if (!cfg.traffic.empty()) {
            TrafficModel model;
            std::string err;
            if (TrafficModel::parse(cfg.traffic, model, &err))
                campaignTicks = model.totalTicks();
        }
        const u64 cut = std::min(ckptTick, campaignTicks - 1);
        FleetCampaign first(cfg);
        first.advanceTo(cut);
        ByteSink sink;
        first.saveState(sink);
        FleetCampaign second(cfg);
        ByteSource src(sink.bytes());
        second.loadState(src);
        const FleetResult resumed = second.finish();
        std::cout << "checkpoint: cut tick " << cut << ", state "
                  << sink.bytes().size()
                  << " bytes, resumed fingerprint " << std::hex
                  << resumed.fingerprint << std::dec << "\n";
        if (resumed.fingerprint != res.fingerprint) {
            std::cout << "FAIL: resumed campaign fingerprint differs "
                         "from the uninterrupted run\n";
            ok = false;
        }
        if (resumed.totals.resumes != 1) {
            std::cout << "FAIL: resumed campaign counted "
                      << resumed.totals.resumes << " resumes\n";
            ok = false;
        }
    }

    // ---- Hot-path measurement: batched wire vs Direct baseline -----
    // Production-shaped load, Direct per-request handoff vs the framed
    // batched loopback path. The wire path exists to make serving
    // cheaper; record the ratio and warn when it regresses below 2x.
    FleetConfig direct = hotPathConfig(cfg);
    direct.transport = TransportMode::Direct;
    direct.batch = 1;
    FleetConfig batched = direct;
    batched.transport = TransportMode::Loopback;
    batched.batch = cfg.batch;
    const TimedRun directRun = timedCampaign(direct);
    const TimedRun batchedRun = timedCampaign(batched);
    const double speedup = batchedRun.seconds > 0.0
                               ? directRun.seconds / batchedRun.seconds
                               : 0.0;
    std::cout << "hot path (" << direct.arrivalsPerTick
              << " arrivals/tick): direct "
              << fmt1(kopsPerSec(directRun.res, directRun.seconds))
              << " Kops/s, batched loopback (b=" << cfg.batch << ") "
              << fmt1(kopsPerSec(batchedRun.res, batchedRun.seconds))
              << " Kops/s, speedup " << fmt1(speedup) << "x\n";
    if (directRun.res.fingerprint != batchedRun.res.fingerprint) {
        std::cout << "FAIL: direct and batched-loopback fingerprints "
                     "differ on the measurement config\n";
        ok = false;
    }
    if (speedup < 2.0)
        std::cout << "WARN: batched speedup " << fmt1(speedup)
                  << "x below the 2x budget\n";

    // ---- Equivalence grid: transport x batch x threads -------------
    // Every cell must land on the same durability-audit fingerprint;
    // any mismatch means the wire path changed behavior, not just
    // performance, and the run fails.
    const FleetConfig base = gridConfig(cfg);
    const unsigned gridThreads = 4;
    u64 refFingerprint = 0;
    bool haveRef = false;
    for (const GridCell &cell : standardGrid(cfg.batch, gridThreads)) {
        FleetConfig cellCfg = base;
        cellCfg.transport = cell.mode;
        cellCfg.batch = cell.batch;
        cellCfg.threads = cell.threads;
        FleetCampaign campaign(cellCfg);
        const FleetResult r = campaign.run();
        std::cout << "grid " << std::left << std::setw(18)
                  << gridCellName(cell) << std::right << " fingerprint "
                  << std::hex << r.fingerprint << std::dec << "\n";
        if (!auditClean(r)) {
            std::cout << "FAIL: grid cell " << gridCellName(cell)
                      << " audit unclean\n";
            ok = false;
        }
        if (!haveRef) {
            refFingerprint = r.fingerprint;
            haveRef = true;
        } else if (r.fingerprint != refFingerprint) {
            std::cout << "FAIL: grid cell " << gridCellName(cell)
                      << " fingerprint differs from the grid baseline\n";
            ok = false;
        }
    }

    if (ok)
        std::cout << "OK: deterministic chaos campaign survivable, "
                     "wire path fingerprint-equivalent across the grid "
                     "(fingerprint 0x"
                  << std::hex << res.fingerprint << std::dec << ")\n";
    return ok ? 0 : 1;
}
