/**
 * @file
 * Figure 15: per-benchmark normalized execution time for 3DP (with and
 * without parity caching) and the striped mappings, normalized to the
 * overhead-free Same-Bank baseline. Paper: 3DP-cached within ~1%,
 * 3DP-uncached ~4.5%, Across-Banks ~10%, Across-Channels ~25%
 * (GemsFDTD worst at 2.23x).
 */

#include <iostream>

#include "bench_util.h"

using namespace citadel;
using namespace citadel::bench;

int
main()
{
    const u64 n = insns();
    printBanner(std::cout, "Figure 15: normalized execution time (" +
                               std::to_string(n) + " insns/core)");

    const auto base =
        runSuiteParallel(StripingMode::SameBank, RasTraffic::None, n);
    const auto cached =
        runSuiteParallel(StripingMode::SameBank, RasTraffic::ThreeDPCached, n);
    const auto uncached =
        runSuiteParallel(StripingMode::SameBank, RasTraffic::ThreeDPUncached, n);
    const auto ab =
        runSuiteParallel(StripingMode::AcrossBanks, RasTraffic::None, n);
    const auto ac =
        runSuiteParallel(StripingMode::AcrossChannels, RasTraffic::None, n);

    auto ratio = [&](const std::map<std::string, SimResult> &m,
                     const std::string &name) {
        return static_cast<double>(m.at(name).cycles) /
               static_cast<double>(base.at(name).cycles);
    };

    Table t({"benchmark", "3DP (cached)", "3DP (no cache)",
             "Across-Banks", "Across-Channels"});
    for (const auto &b : allBenchmarks())
        t.addRow({b.name, Table::num(ratio(cached, b.name), 3),
                  Table::num(ratio(uncached, b.name), 3),
                  Table::num(ratio(ab, b.name), 3),
                  Table::num(ratio(ac, b.name), 3)});

    auto cycles = [](const SimResult &r) {
        return static_cast<double>(r.cycles);
    };
    t.addRow({"GMEAN", Table::num(gmeanRatio(cached, base, cycles), 3),
              Table::num(gmeanRatio(uncached, base, cycles), 3),
              Table::num(gmeanRatio(ab, base, cycles), 3),
              Table::num(gmeanRatio(ac, base, cycles), 3)});
    t.print(std::cout);

    std::cout << "\nPaper reference (Fig 15 GMEAN): 3DP-cached ~1.01, "
                 "3DP-no-cache ~1.045,\nAcross-Banks ~1.10, "
                 "Across-Channels ~1.25.\n";
    return 0;
}
