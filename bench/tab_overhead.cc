/**
 * @file
 * Section VII-E: Citadel's storage overhead accounting -- the metadata
 * die (12.5%), the Dimension-1 parity bank (1.6%), the on-chip D2/D3
 * parity rows (34KB SRAM) and the RRT/BRT (~1KB SRAM), for a total of
 * ~14% DRAM overhead vs 12.5% for an ECC-DIMM.
 */

#include <iostream>

#include "bench_util.h"

using namespace citadel;
using namespace citadel::bench;

int
main()
{
    printBanner(std::cout, "Section VII-E: Citadel storage overhead");

    SystemConfig cfg;
    const StorageOverhead o = computeOverhead(cfg);

    Table t({"component", "measured", "paper"});
    t.addRow({"ECC/metadata die", Table::pct(o.eccDieFraction),
              "12.5%"});
    t.addRow({"D1 parity bank (1 of 64)",
              Table::pct(o.parityBankFraction), "1.6%"});
    t.addRow({"total DRAM overhead", Table::pct(o.dramFraction()),
              "~14%"});
    t.addRow({"D2+D3 parity SRAM",
              std::to_string(o.sramParityBytes / 1024) + " KB", "34 KB"});
    t.addRow({"RRT+BRT SRAM", std::to_string(o.sramRemapBytes) + " B",
              "~1 KB"});
    t.print(std::cout);

    std::cout << "\nECC-DIMM baseline overhead: 12.50% (for reference)\n";

    // Ablation: what each option costs.
    printBanner(std::cout, "Overhead ablation");
    Table a({"configuration", "DRAM overhead", "SRAM bytes"});
    for (u32 dims : {1u, 2u, 3u}) {
        CitadelOptions opts;
        opts.parityDims = dims;
        const StorageOverhead oo = computeOverhead(cfg, opts);
        a.addRow({std::to_string(dims) + "DP + DDS + TSV-Swap",
                  Table::pct(oo.dramFraction()),
                  std::to_string(oo.sramParityBytes + oo.sramRemapBytes)});
    }
    CitadelOptions no_dds;
    no_dds.enableDds = false;
    const StorageOverhead od = computeOverhead(cfg, no_dds);
    a.addRow({"3DP only (no DDS)", Table::pct(od.dramFraction()),
              std::to_string(od.sramParityBytes + od.sramRemapBytes)});
    a.print(std::cout);
    return 0;
}
