/**
 * @file
 * Figure 17: distribution of the number of rows a faulty bank would
 * consume under row-granularity sparing. The paper's key observation:
 * the distribution is bimodal -- a handful of rows (<= 4), or
 * thousands (sub-array or full bank) -- which motivates DDS's two
 * sparing granularities.
 */

#include <iostream>

#include "bench_util.h"
#include "faults/analysis.h"

using namespace citadel;
using namespace citadel::bench;

int
main()
{
    const u64 n = trials(100000);
    printBanner(std::cout,
                "Figure 17: rows required to spare a faulty bank (" +
                    std::to_string(n) + " lifetimes, permanent faults)");

    SystemConfig cfg; // no TSV faults: DRAM-internal analysis
    SparingAnalysis ana(cfg);
    const SparingHistogram h = ana.histogram(n, 71);

    Table t({"rows required", "faulty banks", "fraction"});
    for (const auto &[rows, count] : h.counts)
        t.addRow({std::to_string(rows), std::to_string(count),
                  Table::pct(h.fraction(rows))});
    t.print(std::cout);

    std::cout << "\nFaulty banks observed: " << h.totalFaultyBanks
              << "\n  fine-grained side  (<= 4 rows):   "
              << Table::pct(h.fractionAtMost(4))
              << "\n  coarse-grained side (>= 1K rows): "
              << Table::pct(h.fractionAtLeast(1024))
              << "\n  middle (5 .. 1023 rows):          "
              << Table::pct(1.0 - h.fractionAtMost(4) -
                            h.fractionAtLeast(1024))
              << "\n\nPaper reference (Fig 17): bimodal, peaks at <=2 "
                 "rows, ~5.2K rows (sub-array)\nand 64K rows (bank); "
                 "nothing in between. Our sub-arrays are 4096-row\n"
                 "aligned blocks (see DESIGN.md); mode weights follow "
                 "Table I rates.\n";
    return 0;
}
