/**
 * @file
 * Figure 13: LLC hit rate of Dimension-1 parity-update requests, by
 * suite. The paper reports ~85% on average, with BioBench much lower
 * (read-dominated, near-random writes) but harmless because those
 * workloads write rarely.
 */

#include <iostream>
#include <map>

#include "bench_util.h"

using namespace citadel;
using namespace citadel::bench;

int
main()
{
    const u64 n = insns();
    printBanner(std::cout, "Figure 13: D1 parity-update LLC hit rate (" +
                               std::to_string(n) + " insns/core)");

    const auto res =
        runSuiteParallel(StripingMode::SameBank, RasTraffic::ThreeDPCached, n);

    std::map<Suite, std::vector<double>> per_suite;
    std::vector<double> all;
    double probes_total = 0.0;
    double hits_total = 0.0;
    Table detail({"benchmark", "suite", "parity probes", "hit rate"});
    for (const auto &b : allBenchmarks()) {
        const SimResult &r = res.at(b.name);
        const double hr = r.parityHitRate();
        per_suite[b.suite].push_back(hr);
        all.push_back(hr);
        probes_total += static_cast<double>(r.llc.parityProbes);
        hits_total += static_cast<double>(r.llc.parityHits);
        detail.addRow({b.name, suiteName(b.suite),
                       std::to_string(r.llc.parityProbes),
                       Table::pct(hr)});
    }
    detail.print(std::cout);

    const std::map<Suite, const char *> paper_ref = {
        {Suite::SpecFp, "~88%"},
        {Suite::SpecInt, "~85%"},
        {Suite::Parsec, "~90%"},
        {Suite::BioBench, "~45%"},
    };
    printBanner(std::cout, "Per-suite mean (paper Fig 13)");
    Table t({"suite", "measured mean hit rate", "paper"});
    for (const auto &[suite, rates] : per_suite)
        t.addRow({suiteName(suite), Table::pct(mean(rates)),
                  paper_ref.at(suite)});
    t.addRow({"MEAN", Table::pct(mean(all)), "~85%"});
    t.addRow({"TRAFFIC-WEIGHTED",
              Table::pct(probes_total > 0 ? hits_total / probes_total
                                          : 0.0),
              "-"});
    t.print(std::cout);
    std::cout << "\nThe traffic-weighted rate is what performance "
                 "actually sees: benchmarks that\nrarely write "
                 "contribute few parity updates (the paper makes the "
                 "same point about\nBioBench).\n";
    return 0;
}
