/**
 * @file
 * Shared helpers for the fleet perf benches (fleet_load_driver,
 * perf_trajectory §fleet): wall-clock campaign timing for throughput
 * reporting, and the transport/batch verification grid that proves the
 * wire path is fingerprint-identical to the Direct baseline.
 *
 * The steady_clock readings here feed only Kops/s report fields —
 * never a seeded result. Bit-identity of the simulated numbers is what
 * the grid asserts, on integer fingerprints.
 */

#ifndef CITADEL_BENCH_FLEET_BENCH_UTIL_H
#define CITADEL_BENCH_FLEET_BENCH_UTIL_H

#include <chrono>
#include <string>
#include <vector>

#include "fleet/fleet_sim.h"

namespace citadel {
namespace fleet {

/** One timed campaign: the audited result plus its wall time. */
struct TimedRun
{
    FleetResult res;
    double seconds = 0.0;
};

inline TimedRun
timedCampaign(const FleetConfig &cfg)
{
    FleetCampaign campaign(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    TimedRun out;
    out.res = campaign.run();
    const auto t1 = std::chrono::steady_clock::now();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

/** Completed operations (acked + failed) per wall second, in Kops/s. */
inline double
kopsPerSec(const FleetResult &res, double seconds)
{
    const double ops = static_cast<double>(res.totals.opsAcked +
                                           res.totals.opsFailed);
    return seconds > 0.0 ? ops / seconds / 1000.0 : 0.0;
}

inline bool
auditClean(const FleetResult &res)
{
    return res.lostAckedWrites == 0 && res.corruptAckedWrites == 0 &&
           res.divergences == 0;
}

/** One cell of the equivalence grid. */
struct GridCell
{
    TransportMode mode = TransportMode::Direct;
    u32 batch = 1;
    unsigned threads = 1;
};

inline std::string
gridCellName(const GridCell &cell)
{
    // Built with append(): chained operator+ here trips GCC 12's
    // spurious -Wrestrict on the inlined char_traits copy (PR105651).
    std::string name(transportModeName(cell.mode));
    name.append(" b").append(std::to_string(cell.batch));
    name.append(" t").append(std::to_string(cell.threads));
    return name;
}

/**
 * The standard verification grid over a base config: Direct vs
 * Loopback vs Socket, unbatched vs batch = `batch`, 1 vs `threads`
 * worker threads. Every cell must land on the same fingerprint with a
 * clean durability audit — the wire tentpole's acceptance gate.
 */
inline std::vector<GridCell>
standardGrid(u32 batch, unsigned threads)
{
    std::vector<GridCell> cells{
        {TransportMode::Direct, 1, 1},
        {TransportMode::Loopback, 1, 1},
        {TransportMode::Loopback, batch, threads},
        {TransportMode::Socket, 1, threads},
        {TransportMode::Socket, batch, 1},
    };
    return cells;
}

} // namespace fleet
} // namespace citadel

#endif // CITADEL_BENCH_FLEET_BENCH_UTIL_H
