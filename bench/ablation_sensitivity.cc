/**
 * @file
 * Sensitivity ablations for the design choices DESIGN.md calls out:
 * scrub interval (the DDS vulnerability window), DDS spare budgets
 * (rows per bank / banks per stack), the sub-array fraction of
 * bank-class faults (Fig 17's middle peak), and a future-work density
 * scaling of the Table I rates (16Gb/32Gb dies).
 */

#include <iostream>

#include "bench_util.h"
#include "ecc/secded.h"

using namespace citadel;
using namespace citadel::bench;

int
main()
{
    const u64 n = trials(100000);

    // --- Scrub interval ------------------------------------------------
    printBanner(std::cout, "Scrub-interval sensitivity (" +
                               std::to_string(n) + " trials)");
    {
        Table t({"scrub interval (h)", "Citadel P(fail,7y)",
                 "3DP-only P(fail,7y)"});
        for (double scrub : {3.0, 12.0, 48.0, 168.0, 720.0}) {
            SystemConfig cfg;
            cfg.tsvDeviceFit = 1430.0;
            cfg.scrubHours = scrub;
            MonteCarlo mc(cfg);
            auto cit = makeCitadel();
            auto p3 = makeParityOnly(3, true);
            t.addRow({Table::num(scrub, 0),
                      probCell(mc.run(*cit, n, 111).probFail()),
                      probCell(mc.run(*p3, n, 111).probFail())});
        }
        t.print(std::cout);
        std::cout << "(The paper fixes 12h; Citadel's window for "
                     "concurrent-fault loss grows with it.)\n";
    }

    // --- DDS budgets ----------------------------------------------------
    printBanner(std::cout, "DDS spare-budget sensitivity");
    {
        Table t({"spare rows/bank", "spare banks/stack",
                 "Citadel P(fail,7y)"});
        const u32 rows_sweep[] = {1, 4, 16};
        const u32 banks_sweep[] = {0, 1, 2, 4};
        for (u32 rows : rows_sweep)
            for (u32 banks : banks_sweep) {
                CitadelOptions opts;
                opts.spareRowsPerBank = rows;
                opts.spareBanksPerStack = banks;
                SystemConfig cfg;
                cfg.tsvDeviceFit = 1430.0;
                MonteCarlo mc(cfg);
                auto s = makeCitadel(opts);
                t.addRow({std::to_string(rows), std::to_string(banks),
                          probCell(mc.run(*s, n, 113).probFail())});
            }
        t.print(std::cout);
        std::cout << "(Paper: 4 rows/bank + 2 banks/stack; more banks "
                     "buy little -- Table III.)\n";
    }

    // --- Sub-array fraction ----------------------------------------------
    printBanner(std::cout, "Sub-array fraction of bank-class faults");
    {
        Table t({"subarray fraction", "Citadel P(fail,7y)",
                 "SSC striped P(fail,7y)"});
        for (double frac : {0.0, 0.3, 0.7, 1.0}) {
            SystemConfig cfg;
            cfg.tsvDeviceFit = 1430.0;
            cfg.subArrayFraction = frac;
            MonteCarlo mc(cfg);
            auto cit = makeCitadel();
            auto ssc =
                makeSymbolBaseline(StripingMode::AcrossChannels, true);
            t.addRow({Table::num(frac, 1),
                      probCell(mc.run(*cit, n, 117).probFail()),
                      probCell(mc.run(*ssc, n, 117).probFail())});
        }
        t.print(std::cout);
    }

    // --- Density scaling (future work) ------------------------------------
    printBanner(std::cout,
                "Density scaling: Table I rates x2 / x4 (16Gb / 32Gb "
                "dies)");
    {
        Table t({"rate scale", "SECDED (ECC-DIMM)", "SSC striped",
                 "Citadel"});
        for (double k : {1.0, 2.0, 4.0}) {
            SystemConfig cfg;
            cfg.tsvDeviceFit = 1430.0 * k;
            FitTable r = FitTable::paper8Gb();
            auto scale = [k](FitPair &p) {
                p.transientFit *= k;
                p.permanentFit *= k;
            };
            scale(r.bit);
            scale(r.word);
            scale(r.column);
            scale(r.row);
            scale(r.bank);
            cfg.rates = r;
            MonteCarlo mc(cfg);
            SecdedScheme secded;
            auto ssc =
                makeSymbolBaseline(StripingMode::AcrossChannels, true);
            auto cit = makeCitadel();
            t.addRow({Table::num(k, 0) + "x",
                      probCell(mc.run(secded, n, 119).probFail()),
                      probCell(mc.run(*ssc, n, 119).probFail()),
                      probCell(mc.run(*cit, n, 119).probFail())});
        }
        t.print(std::cout);
        std::cout << "(Citadel's margin widens with density -- the "
                     "fail-in-place motivation of Section I.)\n";
    }
    return 0;
}
