/**
 * @file
 * Figure 14: resilience of multi-dimensional parity over the 7-year
 * lifetime, against the 8-bit symbol code striped across channels.
 * All schemes run with TSV-SWAP enabled (as in the paper's Section
 * VI-E comparison). Expected shape: each added parity dimension gains
 * orders of magnitude; 3DP beats the striped symbol code (~7x in the
 * paper).
 */

#include <iostream>

#include "bench_util.h"

using namespace citadel;
using namespace citadel::bench;

int
main()
{
    const u64 n = trials(100000);
    printBanner(std::cout,
                "Figure 14: 1DP/2DP/3DP vs striped symbol code (" +
                    std::to_string(n) + " trials, TSV-Swap on, "
                    "TSV FIT 1430)");

    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    MonteCarlo mc(cfg);

    auto d1 = makeParityOnly(1, true);
    auto d2 = makeParityOnly(2, true);
    auto d3 = makeParityOnly(3, true);
    auto ssc = makeSymbolBaseline(StripingMode::AcrossChannels, true);
    // "Repair-on-correction" reading of the paper's standalone-3DP
    // numbers: a corrected permanent fault is relocated out of harm's
    // way (unbounded sparing). See EXPERIMENTS.md for why the strict
    // accumulate-forever reading floors every parity scheme at the
    // permanent bank-pair rate.
    CitadelOptions repaired_opts;
    repaired_opts.spareBanksPerStack = 64;
    repaired_opts.spareRowsPerBank = 64;
    auto d3r = makeCitadel(repaired_opts);

    const McResult r1 = mc.run(*d1, n, 61);
    const McResult r2 = mc.run(*d2, n, 61);
    const McResult r3 = mc.run(*d3, n, 61);
    const McResult r3r = mc.run(*d3r, n, 61);
    const McResult rs = mc.run(*ssc, n, 61);

    Table t({"year", "1DP (bank parity)", "2DP", "3DP",
             "3DP (repair-on-corr)", "8-bit symbol (across-ch)"});
    for (u32 y = 1; y <= 7; ++y)
        t.addRow({std::to_string(y), probCell(r1.probFailByYear(y)),
                  probCell(r2.probFailByYear(y)),
                  probCell(r3.probFailByYear(y)),
                  probCell(r3r.probFailByYear(y)),
                  probCell(rs.probFailByYear(y))});
    t.print(std::cout);

    const double p1 = r1.probFail().estimate;
    const double p2 = r2.probFail().estimate;
    const double p3 = r3.probFail().estimate;
    const double ps = rs.probFail().estimate;
    std::cout << "\nAt year 7:  1DP->2DP improvement "
              << factorCell(p1, p2) << " (paper ~100x),  2DP->3DP "
              << factorCell(p2, p3) << ",\n  3DP vs striped symbol "
              << factorCell(ps, p3) << " (paper ~7x; strict "
              << "accumulation floors all parity schemes --\n  see the "
              << "repair-on-correction column and EXPERIMENTS.md).\n";
    return 0;
}
