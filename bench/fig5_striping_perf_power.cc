/**
 * @file
 * Figure 5: the cost of data striping. Runs the 38-benchmark suite in
 * rate mode under the three mappings and reports normalized execution
 * time and normalized active power (geometric means), as in the
 * paper's summary bars: Across-Banks ~1.10x time / ~4.7x power,
 * Across-Channels ~1.25x time / ~3.8x power.
 */

#include <iostream>

#include "bench_util.h"

using namespace citadel;
using namespace citadel::bench;

int
main()
{
    const u64 n = insns();
    printBanner(std::cout, "Figure 5: striping performance/power (" +
                               std::to_string(n) + " insns/core)");

    const auto base =
        runSuiteParallel(StripingMode::SameBank, RasTraffic::None, n);
    const auto ab =
        runSuiteParallel(StripingMode::AcrossBanks, RasTraffic::None, n);
    const auto ac =
        runSuiteParallel(StripingMode::AcrossChannels, RasTraffic::None, n);

    auto cycles = [](const SimResult &r) {
        return static_cast<double>(r.cycles);
    };
    auto power = [](const SimResult &r) { return r.power.totalW(); };

    Table t({"mapping", "norm. exec time (gmean)", "paper",
             "norm. active power (gmean)", "paper"});
    t.addRow({"Same-Bank", "1.000", "1.00", "1.000", "1.0"});
    t.addRow({"Across-Banks", Table::num(gmeanRatio(ab, base, cycles), 3),
              "~1.10", Table::num(gmeanRatio(ab, base, power), 3),
              "~4.7"});
    t.addRow({"Across-Channels",
              Table::num(gmeanRatio(ac, base, cycles), 3), "~1.25",
              Table::num(gmeanRatio(ac, base, power), 3), "~3.8"});
    t.print(std::cout);

    // Memory-intensive subset (the paper's power numbers are dominated
    // by benchmarks that actually exercise DRAM).
    std::vector<double> ab_t;
    std::vector<double> ac_t;
    std::vector<double> ab_p;
    std::vector<double> ac_p;
    for (const auto &b : allBenchmarks()) {
        if (b.mpki < 5.0)
            continue;
        ab_t.push_back(cycles(ab.at(b.name)) / cycles(base.at(b.name)));
        ac_t.push_back(cycles(ac.at(b.name)) / cycles(base.at(b.name)));
        ab_p.push_back(power(ab.at(b.name)) / power(base.at(b.name)));
        ac_p.push_back(power(ac.at(b.name)) / power(base.at(b.name)));
    }
    std::cout << "\nMemory-intensive subset (MPKI >= 5):\n"
              << "  Across-Banks    time " << Table::num(geomean(ab_t), 3)
              << "  power " << Table::num(geomean(ab_p), 3) << "\n"
              << "  Across-Channels time " << Table::num(geomean(ac_t), 3)
              << "  power " << Table::num(geomean(ac_p), 3) << "\n";
    return 0;
}
