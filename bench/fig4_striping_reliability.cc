/**
 * @file
 * Figure 4: probability of system failure in 7 years under the strong
 * 8-bit symbol-based code (ChipKill-like) for the three data mappings,
 * swept over the TSV device FIT rate. The paper's qualitative result:
 * Across-Channels is the most reliable (TSV faults stay within one
 * symbol position); Same-Bank is orders of magnitude worse.
 */

#include <iostream>

#include "bench_util.h"

using namespace citadel;
using namespace citadel::bench;

int
main()
{
    const u64 n = trials(60000);
    printBanner(std::cout,
                "Figure 4: striping vs reliability, 8-bit symbol code "
                "(" + std::to_string(n) + " Monte Carlo trials)");

    const double tsv_fits[] = {0.0, 14.0, 143.0, 430.0, 1000.0, 1430.0};
    const StripingMode modes[] = {StripingMode::SameBank,
                                  StripingMode::AcrossBanks,
                                  StripingMode::AcrossChannels};

    Table t({"TSV device FIT", "Same-Bank", "Across-Banks",
             "Across-Channels"});
    for (double fit : tsv_fits) {
        std::vector<std::string> row;
        row.push_back(fit == 0.0 ? "none" : Table::num(fit, 0));
        for (StripingMode m : modes) {
            SystemConfig cfg;
            cfg.tsvDeviceFit = fit;
            MonteCarlo mc(cfg);
            auto scheme = makeSymbolBaseline(m, /*tsv_swap=*/false);
            const McResult r = mc.run(*scheme, n, 41);
            row.push_back(probCell(r.probFail()));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\nPaper reference (Fig 4): Across-Channels lowest "
                 "P(fail) at every TSV rate;\nSame-Bank worst (~1e-1); "
                 "striped mappings degrade as TSV FIT grows because\n"
                 "DTSV faults span all banks of a die.\n";
    return 0;
}
