/**
 * @file
 * Google-benchmark micro-kernels for the hot paths of the library:
 * CRC-32, Reed-Solomon encode/decode, fault-lifetime sampling, Monte
 * Carlo trials, 3DP bit-true reconstruction and LLC operations. These
 * quantify the cost of the machinery behind the figure benches.
 */

#include <benchmark/benchmark.h>

#include "citadel/citadel.h"
#include "citadel/parity_engine.h"
#include "common/rng.h"
#include "ecc/crc32.h"
#include "ecc/reed_solomon.h"
#include "sim/llc.h"

namespace citadel {
namespace {

void
BM_Crc32Line(benchmark::State &state)
{
    Rng rng(1);
    std::vector<u8> line(64);
    for (auto &b : line)
        b = static_cast<u8>(rng.next());
    for (auto _ : state) {
        benchmark::DoNotOptimize(Crc32::lineCrc(0x1234, line));
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Crc32Line);

void
BM_RsEncode(benchmark::State &state)
{
    RsCode rs(72, 64);
    Rng rng(2);
    std::vector<u8> data(64);
    for (auto &b : data)
        b = static_cast<u8>(rng.next());
    for (auto _ : state)
        benchmark::DoNotOptimize(rs.encode(data));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_RsEncode);

void
BM_RsDecodeWithErrors(benchmark::State &state)
{
    RsCode rs(72, 64);
    Rng rng(3);
    std::vector<u8> data(64);
    for (auto &b : data)
        b = static_cast<u8>(rng.next());
    auto cw = rs.encode(data);
    cw[5] ^= 0x5A;
    cw[40] ^= 0xC3;
    for (auto _ : state)
        benchmark::DoNotOptimize(rs.decode(cw));
}
BENCHMARK(BM_RsDecodeWithErrors);

void
BM_SampleLifetime(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    FaultInjector inj(cfg);
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(inj.sampleLifetime(rng));
}
BENCHMARK(BM_SampleLifetime);

void
BM_MonteCarloTrialCitadel(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    MonteCarlo mc(cfg);
    auto scheme = makeCitadel();
    FaultInjector inj(cfg);
    Rng rng(5);
    const auto events = inj.sampleLifetime(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(mc.runTrial(*scheme, events));
}
BENCHMARK(BM_MonteCarloTrialCitadel);

void
BM_MonteCarloFullRun(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    MonteCarlo mc(cfg);
    auto scheme = makeCitadel();
    const u64 trials = static_cast<u64>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(mc.run(*scheme, trials, 7));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(trials));
}
BENCHMARK(BM_MonteCarloFullRun)->Arg(1000);

void
BM_ParityEngineReconstructRow(benchmark::State &state)
{
    ParityEngine eng(StackGeometry::tiny());
    Fault f;
    f.cls = FaultClass::Row;
    f.stack = DimSpec::exact(0);
    f.channel = DimSpec::exact(1);
    f.bank = DimSpec::exact(1);
    f.row = DimSpec::exact(5);
    f.col = DimSpec::wild();
    f.bit = DimSpec::wild();
    for (auto _ : state) {
        state.PauseTiming();
        eng.restore();
        eng.corrupt({f});
        state.ResumeTiming();
        benchmark::DoNotOptimize(eng.reconstruct(3));
    }
}
BENCHMARK(BM_ParityEngineReconstructRow);

void
BM_LlcFillProbe(benchmark::State &state)
{
    Llc llc(8ull << 20, 8);
    Rng rng(6);
    u64 addr = 0;
    for (auto _ : state) {
        const bool dirty = (addr & 3) == 0;
        llc.fill(LineAddr{addr}, dirty, false);
        ++addr;
        benchmark::DoNotOptimize(llc.probeParity(LineAddr{rng.below(1 << 20)}));
    }
}
BENCHMARK(BM_LlcFillProbe);

} // namespace
} // namespace citadel

BENCHMARK_MAIN();
