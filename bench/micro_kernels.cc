/**
 * @file
 * Google-benchmark micro-kernels for the hot paths of the library:
 * CRC-32, Reed-Solomon encode/decode, fault-lifetime sampling, Monte
 * Carlo trials, 3DP bit-true reconstruction and LLC operations. These
 * quantify the cost of the machinery behind the figure benches.
 */

#include <benchmark/benchmark.h>

#include "citadel/citadel.h"
#include "citadel/parity_engine.h"
#include "common/kernels.h"
#include "common/rng.h"
#include "common/xor_fold.h"
#include "ecc/crc32.h"
#include "ecc/reed_solomon.h"
#include "faults/fault_arena.h"
#include "sim/llc.h"

namespace citadel {
namespace {

std::vector<u8>
randomBuf(std::size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<u8> buf(n);
    for (auto &b : buf)
        b = static_cast<u8>(rng.next());
    return buf;
}

void
BM_XorFoldScalar(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    auto acc = randomBuf(n, 10);
    const auto src = randomBuf(n, 11);
    for (auto _ : state) {
        xorFoldScalar(acc.data(), src.data(), n);
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_XorFoldScalar)->Arg(16384)->Arg(1 << 20);

void
BM_XorFoldDispatched(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    auto acc = randomBuf(n, 12);
    const auto src = randomBuf(n, 13);
    state.SetLabel(xorKernelOps().path);
    for (auto _ : state) {
        xorFold(acc.data(), src.data(), n);
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_XorFoldDispatched)->Arg(16384)->Arg(1 << 20);

void
BM_XorFoldN(benchmark::State &state)
{
    constexpr std::size_t kLine = 16384;
    const auto k = static_cast<std::size_t>(state.range(0));
    auto acc = randomBuf(kLine, 14);
    std::vector<std::vector<u8>> lines;
    std::vector<const u8 *> srcs;
    for (std::size_t i = 0; i < k; ++i) {
        lines.push_back(randomBuf(kLine, 20 + i));
        srcs.push_back(lines.back().data());
    }
    state.SetLabel(xorKernelOps().path);
    for (auto _ : state) {
        xorFoldN(acc.data(), srcs.data(), k, kLine);
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(kLine * k));
}
BENCHMARK(BM_XorFoldN)->Arg(4)->Arg(8);

void
BM_Crc32Slice8(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto buf = randomBuf(n, 30);
    u32 crc = Crc32::begin();
    for (auto _ : state) {
        crc = Crc32::updateSlice8(crc, buf);
        benchmark::DoNotOptimize(crc);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_Crc32Slice8)->Arg(16384)->Arg(1 << 20);

void
BM_Crc32Hw(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto buf = randomBuf(n, 31);
    state.SetLabel(Crc32::hwAvailable() ? Crc32::activePathName()
                                        : "slice8-fallback");
    u32 crc = Crc32::begin();
    for (auto _ : state) {
        crc = Crc32::updateHw(crc, buf);
        benchmark::DoNotOptimize(crc);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_Crc32Hw)->Arg(16384)->Arg(1 << 20);

void
BM_Crc32Line(benchmark::State &state)
{
    Rng rng(1);
    std::vector<u8> line(64);
    for (auto &b : line)
        b = static_cast<u8>(rng.next());
    for (auto _ : state) {
        benchmark::DoNotOptimize(Crc32::lineCrc(0x1234, line));
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Crc32Line);

void
BM_RsEncode(benchmark::State &state)
{
    RsCode rs(72, 64);
    Rng rng(2);
    std::vector<u8> data(64);
    for (auto &b : data)
        b = static_cast<u8>(rng.next());
    for (auto _ : state)
        benchmark::DoNotOptimize(rs.encode(data));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_RsEncode);

void
BM_RsDecodeWithErrors(benchmark::State &state)
{
    RsCode rs(72, 64);
    Rng rng(3);
    std::vector<u8> data(64);
    for (auto &b : data)
        b = static_cast<u8>(rng.next());
    auto cw = rs.encode(data);
    cw[5] ^= 0x5A;
    cw[40] ^= 0xC3;
    for (auto _ : state)
        benchmark::DoNotOptimize(rs.decode(cw));
}
BENCHMARK(BM_RsDecodeWithErrors);

void
BM_SampleLifetime(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    FaultInjector inj(cfg);
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(inj.sampleLifetime(rng));
}
BENCHMARK(BM_SampleLifetime);

void
BM_SampleLifetimeBatched(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    FaultInjector inj(cfg);
    Rng rng(4);
    FaultArena arena;
    constexpr u64 kBatch = 256;
    for (auto _ : state) {
        arena.beginBatch();
        for (u64 t = 0; t < kBatch; ++t) {
            inj.sampleLifetimeAppend(rng, arena.pool());
            arena.endTrial();
        }
        benchmark::DoNotOptimize(arena.eventCount());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kBatch));
}
BENCHMARK(BM_SampleLifetimeBatched);

void
BM_MonteCarloTrialCitadel(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    MonteCarlo mc(cfg);
    auto scheme = makeCitadel();
    FaultInjector inj(cfg);
    Rng rng(5);
    const auto events = inj.sampleLifetime(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(mc.runTrial(*scheme, events));
}
BENCHMARK(BM_MonteCarloTrialCitadel);

void
BM_MonteCarloFullRun(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    MonteCarlo mc(cfg);
    auto scheme = makeCitadel();
    const u64 trials = static_cast<u64>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(mc.run(*scheme, trials, 7));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(trials));
}
BENCHMARK(BM_MonteCarloFullRun)->Arg(1000);

void
BM_ParityEngineReconstructRow(benchmark::State &state)
{
    ParityEngine eng(StackGeometry::tiny());
    Fault f;
    f.cls = FaultClass::Row;
    f.stack = DimSpec::exact(0);
    f.channel = DimSpec::exact(1);
    f.bank = DimSpec::exact(1);
    f.row = DimSpec::exact(5);
    f.col = DimSpec::wild();
    f.bit = DimSpec::wild();
    for (auto _ : state) {
        state.PauseTiming();
        eng.restore();
        eng.corrupt({f});
        state.ResumeTiming();
        benchmark::DoNotOptimize(eng.reconstruct(3));
    }
}
BENCHMARK(BM_ParityEngineReconstructRow);

void
BM_LlcFillProbe(benchmark::State &state)
{
    Llc llc(8ull << 20, 8);
    Rng rng(6);
    u64 addr = 0;
    for (auto _ : state) {
        const bool dirty = (addr & 3) == 0;
        llc.fill(LineAddr{addr}, dirty, false);
        ++addr;
        benchmark::DoNotOptimize(llc.probeParity(LineAddr{rng.below(1 << 20)}));
    }
}
BENCHMARK(BM_LlcFillProbe);

} // namespace
} // namespace citadel

BENCHMARK_MAIN();
