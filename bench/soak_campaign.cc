/**
 * @file
 * Lifetime soak driver: ages `CITADEL_SOAK_SHARDS` independent device
 * lifetimes over `CITADEL_SOAK_YEARS` simulated years on the live RAS
 * datapath (control-plane faults included), with optional periodic
 * checkpointing, and proves the checkpoint/resume path on every run: a
 * second campaign is restored from the last checkpoint, aged to end of
 * life, and its fingerprint must equal the uninterrupted run's.
 *
 * All knobs go through the range-validated env parser; a typo'd value
 * is rejected (with a warning) rather than silently wedging a
 * multi-hour campaign:
 *
 *   CITADEL_SOAK_YEARS            simulated years      [0.01, 100]
 *   CITADEL_SOAK_SHARDS           device lifetimes     [1, 256]
 *   CITADEL_SOAK_PROBES           probe reads / epoch  [1, 4096]
 *   CITADEL_SOAK_CYCLES_PER_HOUR  aging compression    [1, 1e9]
 *   CITADEL_SOAK_CHECKPOINT_HOURS checkpoint period, 0 = midpoint only
 *   CITADEL_SOAK_CHECKPOINT_FILE  also write the blob to this path
 *   CITADEL_SOAK_FIT_SCALE        data-plane FIT x     [0, 1e6]
 *   CITADEL_META_FIT              control-plane FIT    [0, 1e6]
 *   CITADEL_META_RETRY_MAX        meta scrub retries   [1, 64]
 *   CITADEL_META_BACKOFF_CYCLES   meta retry backoff   [1, 1e6]
 *   CITADEL_THREADS               worker threads (the fingerprint is
 *                                 identical for any value)
 */

#include <fstream>
#include <iostream>

#include "common/env.h"
#include "ras/soak.h"

using namespace citadel;

namespace {

FitPair
scalePair(FitPair p, double s)
{
    p.transientFit *= s;
    p.permanentFit *= s;
    return p;
}

SoakConfig
configFromEnv()
{
    SoakConfig cfg;
    cfg.sim.geom = StackGeometry::tiny();
    cfg.years = envDoubleInRange("CITADEL_SOAK_YEARS", 2.0, 0.01, 100.0);
    cfg.shards = static_cast<u32>(
        envU64InRange("CITADEL_SOAK_SHARDS", 4, 1, 256));
    cfg.probesPerEpoch = static_cast<u32>(
        envU64InRange("CITADEL_SOAK_PROBES", 16, 1, 4096));
    cfg.cyclesPerHour = envU64InRange("CITADEL_SOAK_CYCLES_PER_HOUR",
                                      2048, 1, 1'000'000'000);
    cfg.seed = envU64("CITADEL_SEED", 1);

    // The tiny geometry has ~2^-17 of an 8GB stack's cells, so the
    // Table I rates would arrive ~0 faults in a short soak. Scale the
    // data plane up (default x2000 keeps a 2-year soak eventful) --
    // the soak exercises mechanisms, it is not a reliability estimate.
    const double fit_scale =
        envDoubleInRange("CITADEL_SOAK_FIT_SCALE", 2000.0, 0.0, 1e6);
    FitTable t = FitTable::paper8Gb();
    t.bit = scalePair(t.bit, fit_scale);
    t.word = scalePair(t.word, fit_scale);
    t.column = scalePair(t.column, fit_scale);
    t.row = scalePair(t.row, fit_scale);
    t.bank = scalePair(t.bank, fit_scale);
    cfg.faults.rates = t;
    cfg.faults.tsvDeviceFit =
        envDoubleInRange("CITADEL_TSV_FIT", 1430.0, 0.0, 1e6);
    // Control-plane upsets: default high enough that a short soak
    // sees the scrub/mirror/loss machinery in action (~1e5 FIT x
    // 17520h x 2 stacks = a handful of events).
    cfg.faults.metaFit =
        envDoubleInRange("CITADEL_META_FIT", 200000.0, 0.0, 1e6);

    cfg.ras.meta.retryMax = static_cast<u32>(
        envU64InRange("CITADEL_META_RETRY_MAX", 3, 1, 64));
    cfg.ras.meta.backoffCycles =
        envU64InRange("CITADEL_META_BACKOFF_CYCLES", 16, 1, 1'000'000);
    return cfg;
}

} // namespace

int
main()
{
    const SoakConfig cfg = configFromEnv();
    const double ckpt_hours = envDoubleInRange(
        "CITADEL_SOAK_CHECKPOINT_HOURS", 0.0, 0.0, 1e7);
    const std::string ckpt_file =
        envString("CITADEL_SOAK_CHECKPOINT_FILE", "");

    // Uninterrupted reference run, checkpointing as it goes. With no
    // period configured, one checkpoint is taken at mid-life.
    SoakCampaign campaign(cfg);
    const double lifetime = campaign.lifetimeHours();
    const double period =
        ckpt_hours > 0.0 ? ckpt_hours : lifetime / 2.0;

    ByteSink last_ckpt;
    double last_ckpt_hours = 0.0;
    for (double h = period; h < lifetime; h += period) {
        campaign.advanceTo(h);
        last_ckpt = ByteSink();
        campaign.save(last_ckpt);
        last_ckpt_hours = campaign.hoursDone();
        std::cout << "checkpoint @ " << last_ckpt_hours << "h ("
                  << last_ckpt.bytes().size() << " bytes)\n";
    }
    campaign.runToEnd();
    const SoakResult full = campaign.result();
    std::cout << "full run:    " << full.summary() << "\n";

    if (!last_ckpt.bytes().empty()) {
        if (!ckpt_file.empty()) {
            std::ofstream out(ckpt_file, std::ios::binary);
            out.write(reinterpret_cast<const char *>(
                          last_ckpt.bytes().data()),
                      static_cast<std::streamsize>(
                          last_ckpt.bytes().size()));
            std::cout << "checkpoint blob written to " << ckpt_file
                      << "\n";
        }

        // Resume proof: restore the last checkpoint into a fresh
        // campaign, age it to end of life, compare fingerprints.
        SoakCampaign resumed(cfg);
        ByteSource src(last_ckpt.bytes());
        resumed.load(src);
        std::cout << "resuming from " << resumed.hoursDone() << "h\n";
        resumed.runToEnd();
        const SoakResult rr = resumed.result();
        std::cout << "resumed run: " << rr.summary() << "\n";
        if (rr.fingerprint != full.fingerprint ||
            rr.totals.due != full.totals.due ||
            rr.totals.ce != full.totals.ce) {
            std::cout << "FAIL: resumed campaign diverged from the "
                         "uninterrupted run\n";
            return 1;
        }
        std::cout << "OK: checkpoint/resume bit-identical "
                     "(fingerprint 0x"
                  << std::hex << full.fingerprint << std::dec << ")\n";
    }

    if (full.totals.divergences != 0) {
        std::cout << "FAIL: no-overclaim divergences detected\n";
        return 1;
    }
    return 0;
}
