/**
 * @file
 * Figure 19: Citadel vs a strong BCH code (6EC7ED) and RAID-5, in a
 * system with no TSV faults (as in the paper's Section VIII-F).
 * Expected ordering: 6EC7ED << RAID-5 << Citadel, with RAID-5 ~89x
 * over 6EC7ED and Citadel ~1000x over RAID-5.
 */

#include <iostream>

#include "bench_util.h"

using namespace citadel;
using namespace citadel::bench;

int
main()
{
    const u64 n = trials(300000);
    printBanner(std::cout, "Figure 19: Citadel vs 6EC7ED vs RAID-5 (" +
                               std::to_string(n) +
                               " trials, no TSV faults)");

    SystemConfig cfg;
    cfg.tsvDeviceFit = 0.0;
    MonteCarlo mc(cfg);

    auto bch = makeBchBaseline();
    auto raid = makeRaid5Baseline();
    auto full = makeCitadel();

    const McResult rb = mc.run(*bch, n, 91);
    const McResult rr = mc.run(*raid, n, 91);
    const McResult rc = mc.run(*full, n, 91);

    Table t({"year", "BCH 6EC7ED", "RAID-5", "Citadel"});
    for (u32 y = 1; y <= 7; ++y)
        t.addRow({std::to_string(y), probCell(rb.probFailByYear(y)),
                  probCell(rr.probFailByYear(y)),
                  probCell(rc.probFailByYear(y))});
    t.print(std::cout);

    const double pb = rb.probFail().estimate;
    const double pr = rr.probFail().estimate;
    const double pc = rc.probFail().estimate;
    const double pc_bound = pc > 0.0 ? pc : rc.probFail().hi95;
    std::cout << "\nAt year 7: RAID-5 over 6EC7ED = " << factorCell(pb, pr)
              << " (paper ~89x);  Citadel over RAID-5 = "
              << (pc > 0.0 ? factorCell(pr, pc)
                           : ">" + Table::num(pr / pc_bound, 1) + "x")
              << " (paper ~1000x)\n";
    return 0;
}
