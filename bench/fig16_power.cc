/**
 * @file
 * Figure 16: active power by suite, normalized to the fault-free
 * Same-Bank baseline. Paper: 3DP ~1.04x; Across-Banks / Across-
 * Channels 3x-5x from extra activations and row conflicts.
 */

#include <iostream>
#include <map>

#include "bench_util.h"

using namespace citadel;
using namespace citadel::bench;

int
main()
{
    const u64 n = insns();
    printBanner(std::cout, "Figure 16: normalized active power (" +
                               std::to_string(n) + " insns/core)");

    const auto base =
        runSuiteParallel(StripingMode::SameBank, RasTraffic::None, n);
    const auto threedp =
        runSuiteParallel(StripingMode::SameBank, RasTraffic::ThreeDPCached, n);
    const auto ab =
        runSuiteParallel(StripingMode::AcrossBanks, RasTraffic::None, n);
    const auto ac =
        runSuiteParallel(StripingMode::AcrossChannels, RasTraffic::None, n);

    auto suite_ratio = [&](const std::map<std::string, SimResult> &m,
                           Suite s) {
        std::vector<double> r;
        for (const auto &b : allBenchmarks())
            if (b.suite == s)
                r.push_back(m.at(b.name).power.totalW() /
                            base.at(b.name).power.totalW());
        return geomean(r);
    };

    Table t({"suite", "3DP", "Across-Banks", "Across-Channels"});
    for (Suite s : {Suite::SpecFp, Suite::SpecInt, Suite::Parsec,
                    Suite::BioBench})
        t.addRow({suiteName(s), Table::num(suite_ratio(threedp, s), 3),
                  Table::num(suite_ratio(ab, s), 3),
                  Table::num(suite_ratio(ac, s), 3)});

    auto power = [](const SimResult &r) { return r.power.totalW(); };
    t.addRow({"GMEAN",
              Table::num(gmeanRatio(threedp, base, power), 3),
              Table::num(gmeanRatio(ab, base, power), 3),
              Table::num(gmeanRatio(ac, base, power), 3)});
    t.print(std::cout);

    std::cout << "\nPaper reference (Fig 16): 3DP ~1.04x, striped "
                 "mappings 3x-5x.\n";
    return 0;
}
