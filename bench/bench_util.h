/**
 * @file
 * Shared helpers for the per-figure bench binaries: standard trial
 * counts (env-overridable), common scheme construction and run loops
 * for the timing benches, and paper-vs-measured printing.
 *
 * Every figure bench drives MonteCarlo::run, which shards trials over
 * a worker pool (common/thread_pool.h) and is bit-identical for any
 * thread count — so the whole suite parallelizes via CITADEL_THREADS
 * (default: all cores) with no per-binary changes and no change to
 * any seeded number a bench prints.
 */

#ifndef CITADEL_BENCH_BENCH_UTIL_H
#define CITADEL_BENCH_BENCH_UTIL_H

#include <chrono>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "citadel/citadel.h"
#include "common/env.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "sim/system_sim.h"

namespace citadel {
namespace bench {

/** Monte Carlo trials (CITADEL_TRIALS overrides; paper uses 1e5-1e6). */
inline u64
trials(u64 fallback = 200000)
{
    return benchTrials(fallback);
}

/** Worker threads the Monte Carlo engine will use (CITADEL_THREADS). */
inline unsigned
mcThreads()
{
    return citadelThreads();
}

/** Per-core instruction budget for timing runs (CITADEL_INSNS). */
inline u64
insns(u64 fallback = 400000)
{
    return benchInsns(fallback);
}

/** Format a probability with its 95% CI; "<x" when zero failures. */
inline std::string
probCell(const Proportion &p)
{
    if (p.successes == 0)
        return "<" + Table::prob(p.hi95) + " (0 fails)";
    return Table::prob(p.estimate);
}

/** Improvement factor a/b with divide-by-zero care. */
inline std::string
factorCell(double base, double better)
{
    if (better <= 0.0)
        return ">" + Table::num(base > 0 ? base / 1e-9 : 0.0, 0);
    return Table::num(base / better, 1) + "x";
}

/** One timing run of `profile` under (mode, ras), starting from the
 *  optional `base` config (striping/ras/budget overwritten). */
inline SimResult
runTiming(const BenchmarkProfile &profile, StripingMode mode,
          RasTraffic ras, u64 insns_per_core,
          const SimConfig &base = {})
{
    SimConfig cfg = base;
    cfg.striping = mode;
    cfg.ras = ras;
    cfg.insnsPerCore = insns_per_core;
    SystemSim sim(cfg, profile);
    return sim.run();
}

/** Bit-exact equality of two timing runs (every reported integer). */
inline bool
identicalResults(const SimResult &a, const SimResult &b)
{
    return a.cycles == b.cycles && a.insnsRetired == b.insnsRetired &&
           a.mem.activates == b.mem.activates &&
           a.mem.readBursts == b.mem.readBursts &&
           a.mem.writeBursts == b.mem.writeBursts &&
           a.mem.rowHits == b.mem.rowHits &&
           a.mem.rowMisses == b.mem.rowMisses &&
           a.mem.bytesRead == b.mem.bytesRead &&
           a.mem.bytesWritten == b.mem.bytesWritten &&
           a.mem.rasReads == b.mem.rasReads &&
           a.llc.dataFills == b.llc.dataFills &&
           a.llc.dirtyDataEvictions == b.llc.dirtyDataEvictions &&
           a.llc.parityProbes == b.llc.parityProbes &&
           a.llc.parityHits == b.llc.parityHits &&
           a.llc.parityFills == b.llc.parityFills &&
           a.llc.dirtyParityEvictions == b.llc.dirtyParityEvictions;
}

/** Timing results for every benchmark under one configuration, run
 *  serially on the calling thread. */
inline std::map<std::string, SimResult>
runSuite(StripingMode mode, RasTraffic ras, u64 insns_per_core,
         bool verbose = true, const SimConfig &base = {})
{
    std::map<std::string, SimResult> out;
    for (const auto &b : allBenchmarks()) {
        if (verbose)
            std::cerr << "  [" << stripingModeName(mode) << "/"
                      << static_cast<int>(ras) << "] " << b.name
                      << "...\n";
        out[b.name] = runTiming(b, mode, ras, insns_per_core, base);
    }
    return out;
}

/**
 * runSuite fanned over a worker pool. Each SystemSim run is fully
 * self-seeded (SimConfig::seed drives every stream) and writes only
 * its own index-addressed slot, so the result is bit-identical to
 * runSuite for any thread count.
 * @param threads Worker count; 0 resolves via CITADEL_THREADS.
 */
inline std::map<std::string, SimResult>
runSuiteParallel(StripingMode mode, RasTraffic ras, u64 insns_per_core,
                 unsigned threads = 0, const SimConfig &base = {})
{
    const auto &benches = allBenchmarks();
    std::vector<SimResult> results(benches.size());
    // TSA audit (DESIGN.md section 13): no CITADEL_GUARDED_BY fields
    // here by design. parallelFor partitions bench indices so slot
    // results[i] has exactly one writer, and the ordered fold into the
    // std::map happens after the pool's joining barrier.
    ThreadPool pool(threads);
    pool.parallelFor(
        benches.size(), 1, [&](u64 begin, u64 end, unsigned) {
            for (u64 i = begin; i < end; ++i)
                results[i] = runTiming(benches[i], mode, ras,
                                       insns_per_core, base);
        });
    std::map<std::string, SimResult> out;
    for (std::size_t i = 0; i < benches.size(); ++i)
        out[benches[i].name] = results[i];
    return out;
}

/**
 * Throughput of one byte-processing kernel in MB/s: invokes `fn`
 * `passes` times, each pass covering `bytes_per_pass` bytes, with a
 * compiler barrier between passes so self-inverse kernels (XOR folds)
 * or kernels whose result feeds nothing cannot be elided. Kernels that
 * accumulate state (CRC) should keep the running value live with an
 * `asm volatile("" : "+r"(state))` inside `fn` or consume it after the
 * call. Wall-clock throughput is measurement output only — it never
 * feeds a seeded result (tools/lint_determinism.py).
 */
template <typename Fn>
inline double
benchKernel(u64 passes, u64 bytes_per_pass, Fn &&fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    for (u64 i = 0; i < passes; ++i) {
        fn();
        asm volatile("" ::: "memory");
    }
    const double dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const double bytes = static_cast<double>(bytes_per_pass) *
                         static_cast<double>(passes);
    return bytes / dt / 1e6;
}

/** Geometric-mean ratio of a metric vs a baseline map. */
template <typename F>
double
gmeanRatio(const std::map<std::string, SimResult> &test,
           const std::map<std::string, SimResult> &base, F metric)
{
    std::vector<double> ratios;
    for (const auto &[name, r] : test)
        ratios.push_back(metric(r) / metric(base.at(name)));
    return geomean(ratios);
}

} // namespace bench
} // namespace citadel

#endif // CITADEL_BENCH_BENCH_UTIL_H
