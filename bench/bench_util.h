/**
 * @file
 * Shared helpers for the per-figure bench binaries: standard trial
 * counts (env-overridable), common scheme construction and run loops
 * for the timing benches, and paper-vs-measured printing.
 *
 * Every figure bench drives MonteCarlo::run, which shards trials over
 * a worker pool (common/thread_pool.h) and is bit-identical for any
 * thread count — so the whole suite parallelizes via CITADEL_THREADS
 * (default: all cores) with no per-binary changes and no change to
 * any seeded number a bench prints.
 */

#ifndef CITADEL_BENCH_BENCH_UTIL_H
#define CITADEL_BENCH_BENCH_UTIL_H

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "citadel/citadel.h"
#include "common/env.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "sim/system_sim.h"

namespace citadel {
namespace bench {

/** Monte Carlo trials (CITADEL_TRIALS overrides; paper uses 1e5-1e6). */
inline u64
trials(u64 fallback = 200000)
{
    return benchTrials(fallback);
}

/** Worker threads the Monte Carlo engine will use (CITADEL_THREADS). */
inline unsigned
mcThreads()
{
    return citadelThreads();
}

/** Per-core instruction budget for timing runs (CITADEL_INSNS). */
inline u64
insns(u64 fallback = 400000)
{
    return benchInsns(fallback);
}

/** Format a probability with its 95% CI; "<x" when zero failures. */
inline std::string
probCell(const Proportion &p)
{
    if (p.successes == 0)
        return "<" + Table::prob(p.hi95) + " (0 fails)";
    return Table::prob(p.estimate);
}

/** Improvement factor a/b with divide-by-zero care. */
inline std::string
factorCell(double base, double better)
{
    if (better <= 0.0)
        return ">" + Table::num(base > 0 ? base / 1e-9 : 0.0, 0);
    return Table::num(base / better, 1) + "x";
}

/** One timing run of `profile` under (mode, ras). */
inline SimResult
runTiming(const BenchmarkProfile &profile, StripingMode mode,
          RasTraffic ras, u64 insns_per_core)
{
    SimConfig cfg;
    cfg.striping = mode;
    cfg.ras = ras;
    cfg.insnsPerCore = insns_per_core;
    SystemSim sim(cfg, profile);
    return sim.run();
}

/** Timing results for every benchmark under one configuration. */
inline std::map<std::string, SimResult>
runSuite(StripingMode mode, RasTraffic ras, u64 insns_per_core)
{
    std::map<std::string, SimResult> out;
    for (const auto &b : allBenchmarks()) {
        std::cerr << "  [" << stripingModeName(mode) << "/"
                  << static_cast<int>(ras) << "] " << b.name << "...\n";
        out[b.name] = runTiming(b, mode, ras, insns_per_core);
    }
    return out;
}

/** Geometric-mean ratio of a metric vs a baseline map. */
template <typename F>
double
gmeanRatio(const std::map<std::string, SimResult> &test,
           const std::map<std::string, SimResult> &base, F metric)
{
    std::vector<double> ratios;
    for (const auto &[name, r] : test)
        ratios.push_back(metric(r) / metric(base.at(name)));
    return geomean(ratios);
}

} // namespace bench
} // namespace citadel

#endif // CITADEL_BENCH_BENCH_UTIL_H
