/**
 * @file
 * Figure 9: effectiveness of TSV-SWAP at the pessimistic 1430 FIT TSV
 * rate. For each data mapping, compares No-TSV-Swap / With-TSV-Swap /
 * No-TSV-Faults; with the swap enabled, reliability must match the
 * fault-free-TSV level.
 */

#include <iostream>

#include "bench_util.h"

using namespace citadel;
using namespace citadel::bench;

int
main()
{
    const u64 n = trials(60000);
    printBanner(std::cout, "Figure 9: TSV-SWAP at 1430 TSV FIT (" +
                               std::to_string(n) + " trials)");

    struct NamedScheme
    {
        const char *name;
        StripingMode mode;
    };
    const NamedScheme mappings[] = {
        {"Same-Bank", StripingMode::SameBank},
        {"Across-Banks", StripingMode::AcrossBanks},
        {"Across-Channels", StripingMode::AcrossChannels},
    };

    Table t({"mapping (8-bit symbol code)", "No TSV-Swap",
             "With TSV-Swap", "No TSV faults"});
    for (const auto &m : mappings) {
        SystemConfig faulty;
        faulty.tsvDeviceFit = 1430.0;
        SystemConfig clean;
        clean.tsvDeviceFit = 0.0;
        MonteCarlo mc_faulty(faulty);
        MonteCarlo mc_clean(clean);

        auto no_swap = makeSymbolBaseline(m.mode, false);
        auto with_swap = makeSymbolBaseline(m.mode, true);

        t.addRow({m.name,
                  probCell(mc_faulty.run(*no_swap, n, 51).probFail()),
                  probCell(mc_faulty.run(*with_swap, n, 51).probFail()),
                  probCell(mc_clean.run(*no_swap, n, 51).probFail())});
    }

    // Citadel's own stack (3DP), which is what ships with TSV-Swap.
    {
        SystemConfig faulty;
        faulty.tsvDeviceFit = 1430.0;
        SystemConfig clean;
        clean.tsvDeviceFit = 0.0;
        MonteCarlo mc_faulty(faulty);
        MonteCarlo mc_clean(clean);
        auto no_swap = makeParityOnly(3, false);
        auto with_swap = makeParityOnly(3, true);
        t.addRow({"3DP",
                  probCell(mc_faulty.run(*no_swap, n, 51).probFail()),
                  probCell(mc_faulty.run(*with_swap, n, 51).probFail()),
                  probCell(mc_clean.run(*no_swap, n, 51).probFail())});
    }
    t.print(std::cout);

    std::cout << "\nPaper reference (Fig 9): for every mapping, "
                 "With-TSV-Swap ~= No-TSV-Faults\neven at the highest "
                 "swept TSV rate.\n";
    return 0;
}
