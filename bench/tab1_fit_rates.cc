/**
 * @file
 * Table I: stacked-memory failure rates for 8Gb dies, derived from the
 * Sridharan & Liberty (SC-12) 1Gb field data via the Section III-A
 * scaling rules. Prints base rates, scale factors, the derived values
 * and the paper's printed values side by side.
 */

#include <iostream>

#include "common/table.h"
#include "faults/fit_rates.h"

using namespace citadel;

int
main()
{
    printBanner(std::cout, "Table I: stacked-memory failure rates "
                           "(FIT per 8Gb die)");

    const FitTable base = FitTable::sridharan1Gb();
    const FitTable scaled = base.scaledForStackedDie();
    const FitTable paper = FitTable::paper8Gb();
    const FitScaling s;

    Table t({"fault mode", "1Gb field (T/P)", "scale",
             "derived 8Gb (T/P)", "paper Table I (T/P)"});
    auto row = [&](const char *name, const FitPair &b, double k,
                   const FitPair &d, const FitPair &p) {
        t.addRow({name,
                  Table::num(b.transientFit, 1) + " / " +
                      Table::num(b.permanentFit, 1),
                  Table::num(k, 1) + "x",
                  Table::num(d.transientFit, 2) + " / " +
                      Table::num(d.permanentFit, 2),
                  Table::num(p.transientFit, 1) + " / " +
                      Table::num(p.permanentFit, 1)});
    };
    row("single bit", base.bit, s.bitScale, scaled.bit, paper.bit);
    row("single word", base.word, s.wordScale, scaled.word, paper.word);
    row("single column", base.column, s.columnScale, scaled.column,
        paper.column);
    row("single row", base.row, s.rowScale, scaled.row, paper.row);
    row("single bank", base.bank, s.bankScale, scaled.bank, paper.bank);
    t.print(std::cout);

    std::cout << "\nTotal per-die FIT (paper values): "
              << Table::num(paper.totalFit(), 1)
              << "  (TSV device FIT swept 14 - 1430 separately)\n";
    return 0;
}
