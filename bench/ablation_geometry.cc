/**
 * @file
 * Ablation (Section II-C): the paper analyzes an HBM-like stack but
 * notes the reliability improvement "is equally high for the HMC and
 * Tezzaron designs". This bench reruns the Citadel-vs-striped-code
 * comparison on all three organizations.
 */

#include <iostream>

#include "bench_util.h"

using namespace citadel;
using namespace citadel::bench;

int
main()
{
    const u64 n = trials(100000);
    printBanner(std::cout,
                "Stack-organization ablation (" + std::to_string(n) +
                    " trials, TSV FIT 1430)");

    struct Org
    {
        const char *name;
        StackGeometry geom;
    };
    const Org orgs[] = {
        {"HBM-like (8ch x 8bk, 256 DTSV)", StackGeometry::hbm()},
        {"HMC-like (16ch x 8bk, 32 DTSV)", StackGeometry::hmcLike()},
        {"Tezzaron-like (4ch x 16bk, 128 DTSV)",
         StackGeometry::tezzaronLike()},
    };

    Table t({"organization", "Citadel", "SSC striped",
             "improvement"});
    for (const Org &o : orgs) {
        SystemConfig cfg;
        cfg.geom = o.geom;
        cfg.tsvDeviceFit = 1430.0;
        MonteCarlo mc(cfg);
        auto cit = makeCitadel();
        auto ssc =
            makeSymbolBaseline(StripingMode::AcrossChannels, true);
        const McResult rc = mc.run(*cit, n, 97);
        const McResult rs = mc.run(*ssc, n, 97);
        const double pc = rc.probFail().estimate;
        const double ps = rs.probFail().estimate;
        t.addRow({o.name, probCell(rc.probFail()),
                  probCell(rs.probFail()),
                  pc > 0.0 ? factorCell(ps, pc)
                           : ">" + Table::num(
                                       ps / rc.probFail().hi95, 1) +
                                 "x"});
    }
    t.print(std::cout);

    std::cout << "\nPaper reference (Section II-C): the improvement is "
                 "organization-independent;\nCitadel's mechanisms attach "
                 "to rows/banks/TSVs, not to a specific layout.\n";
    return 0;
}
