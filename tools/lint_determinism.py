#!/usr/bin/env python3
"""Determinism lint: no nondeterminism source may reach seeded code
(DESIGN.md §13).

Every result this repo produces is contractually bit-identical for any
thread count and any checkpoint cut: Monte Carlo failure probabilities,
soak fingerprints, fleet campaign audits. That only holds while every
random draw is counter-derived (src/common/rng.h), every "time" is a
virtual tick, and every container that feeds stats, fingerprints,
serialization, or event ordering iterates in a deterministic order.
This lint scans src/ and bench/ for the escape hatches:

  random-device        std::random_device (entropy: different every run)
  libc-rand            rand()/srand() (hidden global state)
  libc-time            time()/clock()/gettimeofday/clock_gettime
  wall-clock           std::chrono system/steady/high_resolution clock
  locale-date          localtime/gmtime/strftime/ctime/put_time & co.
  std-random           <random> engines/distributions (seeding and
                       stream discipline live in common/rng.h only)
  pointer-keyed        containers keyed by, or hashing, raw pointers
                       (iteration order = allocator behavior)
  unordered-container  std::unordered_map/set (hash iteration order is
                       implementation-defined; the repo uses ordered or
                       flat containers wherever results can flow)

Legitimate uses are *blessed* per (file, rule, needle) with a mandatory
human-readable justification -- see BLESSINGS. A blessing that stops
matching is itself an error (stale allowlist entries are holes).

Exit status: 0 clean, 1 violations found.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from lint_common import (  # noqa: E402
    COMMENT_RE,
    REPO,
    Blessing,
    Violation,
    finish,
    scan_tree,
    strip_string_literals,
    unused_blessings,
    validate_blessings,
)

NAME = "lint_determinism"

SCAN_ROOTS = (REPO / "src", REPO / "bench")


class Rule:
    def __init__(self, slug: str, pattern: str, message: str):
        self.slug = slug
        self.re = re.compile(pattern)
        self.message = message


RULES = [
    Rule(
        "random-device",
        r"random_device",
        "std::random_device is fresh entropy every run -- derive seeds "
        "from the campaign seed via common/rng.h (mix64 of a counter)",
    ),
    Rule(
        "libc-rand",
        r"(?<![\w.:])(?:std::)?s?rand\s*\(",
        "rand()/srand() is hidden global state shared across threads -- "
        "use a counter-derived citadel::Rng stream instead",
    ),
    Rule(
        "libc-time",
        r"(?<![\w.:])(?:std::)?time\s*\(|(?<![\w.:])clock\s*\(\s*\)"
        r"|(?<![\w.:])gettimeofday\s*\(|(?<![\w.:])clock_gettime\s*\(",
        "wall-clock/CPU-clock read -- simulated layers take virtual "
        "ticks; only measurement benches may read real time, under a "
        "blessing",
    ),
    Rule(
        "wall-clock",
        r"std::chrono::(?:system|steady|high_resolution)_clock",
        "std::chrono clock read -- a different value every run; "
        "simulated time is a tick counter, and throughput measurement "
        "needs an explicit blessing",
    ),
    Rule(
        "locale-date",
        r"(?<![\w.:])(?:std::)?(?:localtime|gmtime|strftime|asctime"
        r"|ctime|mktime|put_time|get_time)\s*\(",
        "locale/timezone-dependent date call -- output would differ by "
        "host environment; format integers from virtual time instead",
    ),
    Rule(
        "std-random",
        r"std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
        r"|ranlux\d+\w*|knuth_b|mersenne_twister_engine"
        r"|linear_congruential_engine|subtract_with_carry_engine"
        r"|(?:uniform_int|uniform_real|normal|bernoulli|poisson"
        r"|exponential|geometric|binomial|discrete)_distribution)\b"
        r"|#\s*include\s*<random>",
        "<random> engine/distribution outside common/rng.h -- all "
        "randomness must be counter-derived xoshiro streams so trial t "
        "draws identically on any worker",
    ),
    Rule(
        "pointer-keyed",
        r"std::(?:unordered_)?(?:map|set|multimap|multiset)<\s*"
        r"(?:const\s+)?[\w:]+(?:\s+const)?\s*\*"
        r"|std::hash<\s*(?:const\s+)?[\w:]+(?:\s+const)?\s*\*",
        "pointer-keyed/pointer-hashed container -- iteration order "
        "tracks allocator addresses, which differ every run; key by a "
        "stable index or id instead",
    ),
    Rule(
        "unordered-container",
        r"std::unordered_(?:map|set|multimap|multiset)\b",
        "hash-container iteration order is implementation-defined and "
        "must not reach stats, fingerprints, serialization, or event "
        "ordering -- use std::map/flat vector, or bless with proof the "
        "order cannot escape",
    ),
]

# ---------------------------------------------------------------------
# Allowlist. One entry blesses lines in `file` that trip `rule` AND
# contain `needle`. Keep justifications specific: they are the audit
# trail a reviewer checks instead of re-deriving the data flow.
BLESSINGS = [
    Blessing(
        file="bench/perf_trajectory.cc",
        rule="wall-clock",
        needle="std::chrono::steady_clock",
        justification=(
            "wall-clock throughput is this bench's deliverable: "
            "steady_clock readings feed only the seconds/per-second "
            "JSON fields, never a seeded result -- bit-identity of the "
            "simulated numbers is asserted separately on integer "
            "counters (serial-vs-parallel and cycle-vs-event oracles)"
        ),
    ),
    Blessing(
        file="bench/bench_util.h",
        rule="wall-clock",
        needle="std::chrono::steady_clock",
        justification=(
            "benchKernel() is the shared MB/s timing loop the bench "
            "binaries call: its steady_clock readings produce only "
            "throughput report fields and are never mixed into a "
            "seeded result -- kernel outputs are byte-compared against "
            "scalar oracles before timing (test_kernels.cc)"
        ),
    ),
    Blessing(
        file="bench/fleet_bench_util.h",
        rule="wall-clock",
        needle="std::chrono::steady_clock",
        justification=(
            "timedCampaign() is the fleet benches' shared Kops/s "
            "timing wrapper: steady_clock readings feed only wall-"
            "seconds/throughput report fields, never a seeded result "
            "-- campaign equivalence is asserted separately on integer "
            "fingerprints across the transport/batch/thread grid"
        ),
    ),
]


def lint_lines(
    rel: str,
    lines: list[str],
    blessings: list[Blessing],
    used: set[Blessing],
) -> list[Violation]:
    """Pure scanning core, shared by the CLI and the self-test."""
    violations: list[Violation] = []
    for lineno, line in enumerate(lines, start=1):
        if COMMENT_RE.match(line):
            continue
        code = strip_string_literals(line)
        for rule in RULES:
            if not rule.re.search(code):
                continue
            blessing = next(
                (
                    b
                    for b in blessings
                    if b.file == rel
                    and b.rule == rule.slug
                    and b.needle in line
                ),
                None,
            )
            if blessing is not None:
                used.add(blessing)
                continue
            violations.append(
                Violation(rel, lineno, rule.slug, rule.message)
            )
    return violations


def lint_file_with(
    path: Path, blessings: list[Blessing], used: set[Blessing]
) -> list[Violation]:
    rel = path.relative_to(REPO).as_posix()
    lines = path.read_text(encoding="utf-8").splitlines()
    return lint_lines(rel, lines, blessings, used)


def main() -> int:
    errors = validate_blessings(NAME, BLESSINGS)
    if errors:
        print("\n".join(errors), file=sys.stderr)
        return 1

    used: set[Blessing] = set()
    violations = scan_tree(
        SCAN_ROOTS, lambda p: lint_file_with(p, BLESSINGS, used)
    )
    rendered = [v.render() for v in violations]
    rendered.extend(unused_blessings(NAME, BLESSINGS, used))
    return finish(NAME, rendered)


if __name__ == "__main__":
    sys.exit(main())
