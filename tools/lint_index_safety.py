#!/usr/bin/env python3
"""Index-safety lint for the typed address domain (DESIGN.md section 8).

The strong-id migration is only as good as its edges: a new function
that takes `u32 bank` re-opens the door to transposed-coordinate bugs,
and an unwrap (`.value()` / `.idx()`) sprinkled in policy code silently
drops back into raw-integer arithmetic. This lint keeps both confined.

Rule 1 (raw coordinate parameters): in `src/`, a function parameter of
raw integer type whose name starts with a coordinate word (stack,
channel, die, bank, row, col, unit, lane) is an error outside the
blessed mapper/mechanism files. New APIs must take typed ids.
Locals (detected by an initializer) and lambda parameters are exempt:
tight loops legitimately iterate raw integers and wrap at the boundary.

Rule 2 (unwrap confinement): `.value()` / `.idx()` calls on ids may
appear only in the blessed files -- the places that translate between
coordinate spaces and raw storage offsets by design. Everything else
must stay in the typed domain end to end.

Tests, benches, examples and tools are out of scope: tests in
particular legitimately compare typed values against raw geometry
bounds.

Exit status: 0 clean, 1 violations found. Run from the repo root (or
let tools/ paths resolve relative to this file).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Files that are *supposed* to cross between coordinate spaces and raw
# integers: the address/geometry mappers, the bit-true mechanism
# models, and the storage-facing simulator internals. Keep this list
# short and deliberate -- growing it is a design decision, not a fix.
BLESSED = {
    "src/common/strong_id.h",
    "src/stack/address.cc",
    "src/stack/geometry.cc",
    "src/stack/tsv.cc",
    "src/faults/fault.cc",
    "src/faults/injector.cc",
    "src/citadel/parity_engine.cc",
    "src/citadel/remap_tables.cc",
    "src/citadel/tsv_swap.cc",
    "src/citadel/dds.cc",
    "src/sim/memory_system.cc",
    "src/sim/llc.cc",
    "src/sim/workload.cc",
    "src/ras/live_datapath.cc",
    # Retirement/degradation/metadata records pack typed coordinates
    # into raw map keys and serialized bytes -- the same
    # storage-facing translation the remap tables do.
    "src/sim/retirement.cc",
    "src/ras/degradation.cc",
    "src/ras/meta_protect.cc",
    # Run-compressed line-address intervals: interval arithmetic on
    # LineAddr is inherently raw.
    "src/ras/poison_set.h",
}

RAW_TYPES = r"(?:u8|u16|u32|u64|i32|i64|int|unsigned|std::size_t|size_t)"
COORD_WORDS = r"(?:stack|channel|die|bank|row|col|unit|lane)"

# `u32 bank,` / `u64 row)` -- a raw-typed parameter named after a
# coordinate space. Requires the delimiter so `u32 bankBits()` (a
# function name) and `u32 row = ...` (a local) do not match.
PARAM_RE = re.compile(
    rf"\b{RAW_TYPES}\s+&?({COORD_WORDS}\w*)\s*[,)]"
)

UNWRAP_RE = re.compile(r"\.(?:value|idx)\(\)")

# Quantities named after a space are counts, not coordinates: `u64
# rows` (how many) is fine where `u32 row` (which one) is not.
COUNT_NAME_RE = re.compile(r"(?:s|_threshold|_count|_bits|_bytes)$")

COMMENT_RE = re.compile(r"^\s*(?://|\*|/\*)")


def is_lambda_context(line: str, pos: int) -> bool:
    """True when the match at `pos` sits inside a lambda's parameter
    list -- i.e. a capture-intro `](` appears earlier on the line."""
    return bool(re.search(r"\]\s*\(", line[:pos]))


def lint_file(path: Path) -> list[str]:
    rel = path.relative_to(REPO).as_posix()
    blessed = rel in BLESSED
    errors: list[str] = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if COMMENT_RE.match(line):
            continue
        if not blessed:
            for m in PARAM_RE.finditer(line):
                if is_lambda_context(line, m.start()):
                    continue
                if COUNT_NAME_RE.search(m.group(1)):
                    continue
                errors.append(
                    f"{rel}:{lineno}: raw integer coordinate parameter "
                    f"'{m.group(1)}' -- take a typed id "
                    f"(common/strong_id.h) or bless this file in "
                    f"tools/lint_index_safety.py"
                )
            if UNWRAP_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: id unwrap (.value()/.idx()) "
                    f"outside the blessed mapper files -- stay in the "
                    f"typed domain or move the conversion into a "
                    f"blessed file"
                )
    return errors


def main() -> int:
    missing = [f for f in sorted(BLESSED) if not (REPO / f).is_file()]
    if missing:
        print("lint_index_safety: stale blessed entries:", file=sys.stderr)
        for f in missing:
            print(f"  {f}", file=sys.stderr)
        return 1

    errors: list[str] = []
    for path in sorted(SRC.rglob("*")):
        if path.suffix in (".h", ".cc", ".cpp"):
            errors.extend(lint_file(path))

    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(
            f"lint_index_safety: {len(errors)} violation(s)",
            file=sys.stderr,
        )
        return 1
    print("lint_index_safety: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
