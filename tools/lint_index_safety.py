#!/usr/bin/env python3
"""Index-safety lint for the typed address domain (DESIGN.md section 8).

The strong-id migration is only as good as its edges: a new function
that takes `u32 bank` re-opens the door to transposed-coordinate bugs,
and an unwrap (`.value()` / `.idx()`) sprinkled in policy code silently
drops back into raw-integer arithmetic. This lint keeps both confined.

Rule `raw-coordinate-param`: in `src/`, a function parameter of raw
integer type whose name starts with a coordinate word (stack, channel,
die, bank, row, col, unit, lane) is an error outside the blessed
mapper/mechanism files. New APIs must take typed ids. Locals (detected
by an initializer) and lambda parameters are exempt: tight loops
legitimately iterate raw integers and wrap at the boundary.

Rule `unwrap-outside-blessed`: `.value()` / `.idx()` calls on ids may
appear only in the blessed files -- the places that translate between
coordinate spaces and raw storage offsets by design. Everything else
must stay in the typed domain end to end.

Tests, benches, examples and tools are out of scope: tests in
particular legitimately compare typed values against raw geometry
bounds.

Shared infrastructure (comment skipping, exit protocol, self-test
hooks) lives in tools/lint_common.py; tools/lint.py runs this lint
together with the determinism lint.

Exit status: 0 clean, 1 violations found. Run from the repo root (or
let tools/ paths resolve relative to this file).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from lint_common import (  # noqa: E402
    COMMENT_RE,
    REPO,
    Violation,
    finish,
    scan_tree,
)

NAME = "lint_index_safety"

SCAN_ROOTS = (REPO / "src",)

# Files that are *supposed* to cross between coordinate spaces and raw
# integers: the address/geometry mappers, the bit-true mechanism
# models, and the storage-facing simulator internals. Keep this list
# short and deliberate -- growing it is a design decision, not a fix.
BLESSED = {
    "src/common/strong_id.h",
    "src/stack/address.cc",
    "src/stack/geometry.cc",
    "src/stack/tsv.cc",
    "src/faults/fault.cc",
    "src/faults/injector.cc",
    "src/citadel/parity_engine.cc",
    "src/citadel/remap_tables.cc",
    "src/citadel/tsv_swap.cc",
    "src/citadel/dds.cc",
    "src/sim/memory_system.cc",
    "src/sim/llc.cc",
    "src/sim/workload.cc",
    "src/ras/live_datapath.cc",
    # Retirement/degradation/metadata records pack typed coordinates
    # into raw map keys and serialized bytes -- the same
    # storage-facing translation the remap tables do.
    "src/sim/retirement.cc",
    "src/ras/degradation.cc",
    "src/ras/meta_protect.cc",
    # Run-compressed line-address intervals: interval arithmetic on
    # LineAddr is inherently raw.
    "src/ras/poison_set.h",
}

RAW_TYPES = r"(?:u8|u16|u32|u64|i32|i64|int|unsigned|std::size_t|size_t)"
COORD_WORDS = r"(?:stack|channel|die|bank|row|col|unit|lane)"

# `u32 bank,` / `u64 row)` -- a raw-typed parameter named after a
# coordinate space. Requires the delimiter so `u32 bankBits()` (a
# function name) and `u32 row = ...` (a local) do not match.
PARAM_RE = re.compile(
    rf"\b{RAW_TYPES}\s+&?({COORD_WORDS}\w*)\s*[,)]"
)

UNWRAP_RE = re.compile(r"\.(?:value|idx)\(\)")

# Quantities named after a space are counts, not coordinates: `u64
# rows` (how many) is fine where `u32 row` (which one) is not.
COUNT_NAME_RE = re.compile(r"(?:s|_threshold|_count|_bits|_bytes)$")

RULE_PARAM = "raw-coordinate-param"
RULE_UNWRAP = "unwrap-outside-blessed"


def is_lambda_context(line: str, pos: int) -> bool:
    """True when the match at `pos` sits inside a lambda's parameter
    list -- i.e. a capture-intro `](` appears earlier on the line."""
    return bool(re.search(r"\]\s*\(", line[:pos]))


def lint_lines(
    rel: str, lines: list[str], blessed: bool
) -> list[Violation]:
    """Pure scanning core, shared by the CLI and the self-test."""
    if blessed:
        return []
    violations: list[Violation] = []
    for lineno, line in enumerate(lines, start=1):
        if COMMENT_RE.match(line):
            continue
        for m in PARAM_RE.finditer(line):
            if is_lambda_context(line, m.start()):
                continue
            if COUNT_NAME_RE.search(m.group(1)):
                continue
            violations.append(
                Violation(
                    rel,
                    lineno,
                    RULE_PARAM,
                    f"raw integer coordinate parameter "
                    f"'{m.group(1)}' -- take a typed id "
                    f"(common/strong_id.h) or bless this file in "
                    f"tools/lint_index_safety.py",
                )
            )
        if UNWRAP_RE.search(line):
            violations.append(
                Violation(
                    rel,
                    lineno,
                    RULE_UNWRAP,
                    "id unwrap (.value()/.idx()) outside the blessed "
                    "mapper files -- stay in the typed domain or move "
                    "the conversion into a blessed file",
                )
            )
    return violations


def lint_file(path: Path) -> list[Violation]:
    rel = path.relative_to(REPO).as_posix()
    lines = path.read_text(encoding="utf-8").splitlines()
    return lint_lines(rel, lines, rel in BLESSED)


def main() -> int:
    missing = [f for f in sorted(BLESSED) if not (REPO / f).is_file()]
    if missing:
        print(f"{NAME}: stale blessed entries:", file=sys.stderr)
        for f in missing:
            print(f"  {f}", file=sys.stderr)
        return 1

    violations = scan_tree(SCAN_ROOTS, lint_file)
    return finish(NAME, [v.render() for v in violations])


if __name__ == "__main__":
    sys.exit(main())
