"""Shared infrastructure for the repo's source lints (DESIGN.md §13).

Both gates — tools/lint_index_safety.py (PR 2, typed address domain)
and tools/lint_determinism.py (determinism contract) — follow the same
shape, factored here:

- A *rule* is a named regex over single source lines. Every violation
  carries the rule's slug, so the self-test harness can assert that a
  seeded fixture trips exactly the rule it claims to
  (tests/lint_fixtures/, ``// expect-lint: <rule>`` markers).
- A *blessing* allowlists one pattern in one file, and must carry a
  human-readable justification of at least MIN_JUSTIFICATION
  characters. Blessings are checked for staleness in both directions:
  the blessed file must exist, and the blessing must actually match
  something — a blessing that no longer fires is an error, because a
  dead allowlist entry is a hole waiting for new code to fall into.
- Prefix comments (``//``, ``*``, ``/*``) are skipped; *trailing*
  comments are not, which is what lets fixture files mark their
  violating lines without hiding them from the scan.

Lints remain independently runnable scripts; tools/lint.py is the
single entry point CI and the ``lint`` CMake target invoke.
"""

from __future__ import annotations

import dataclasses
import re
import sys
from pathlib import Path
from typing import Callable, Iterable, Iterator

REPO = Path(__file__).resolve().parent.parent

SOURCE_SUFFIXES = (".h", ".cc", ".cpp")

# Skip whole-line comments only. A violation with a trailing comment
# still counts -- required by the fixture marker convention.
COMMENT_RE = re.compile(r"^\s*(?://|\*|/\*)")

# A blessing must explain itself to a human reviewer; one-word
# justifications ("ok", "legacy") defeat the audit trail.
MIN_JUSTIFICATION = 20

# Double-quoted string literals, escapes respected. Table headers like
# "exec time (gmean)" must not trip the code-pattern rules.
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_string_literals(line: str) -> str:
    return STRING_RE.sub('""', line)


@dataclasses.dataclass(frozen=True)
class Violation:
    """One finding: rule slug + location + reviewer-facing message."""

    file: str  # repo-relative posix path
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass(frozen=True)
class Blessing:
    """Allowlists lines in `file` matching rule `rule` that contain the
    `needle` substring. `justification` is mandatory prose."""

    file: str  # repo-relative posix path
    rule: str
    needle: str
    justification: str


def iter_source_files(roots: Iterable[Path]) -> Iterator[Path]:
    for root in roots:
        for path in sorted(root.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES:
                yield path


def validate_blessings(
    name: str, blessings: Iterable[Blessing]
) -> list[str]:
    """Structural checks every blessing table must pass: the blessed
    file exists and the justification is real prose."""
    problems: list[str] = []
    for b in blessings:
        if not (REPO / b.file).is_file():
            problems.append(
                f"{name}: stale blessing: file '{b.file}' does not exist"
            )
        if len(b.justification.strip()) < MIN_JUSTIFICATION:
            problems.append(
                f"{name}: blessing for '{b.file}' rule '{b.rule}' needs "
                f"a justification of at least {MIN_JUSTIFICATION} "
                f"characters, got {len(b.justification.strip())}"
            )
    return problems


def unused_blessings(
    name: str, blessings: Iterable[Blessing], used: set[Blessing]
) -> list[str]:
    """A blessing that never matched anything is stale by definition."""
    return [
        f"{name}: stale blessing: '{b.file}' rule '{b.rule}' needle "
        f"'{b.needle}' no longer matches any line -- remove it"
        for b in blessings
        if b not in used
    ]


def scan_tree(
    roots: Iterable[Path],
    lint_file: Callable[[Path], list[Violation]],
) -> list[Violation]:
    violations: list[Violation] = []
    for path in iter_source_files(roots):
        violations.extend(lint_file(path))
    return violations


def finish(name: str, errors: list[str]) -> int:
    """Common exit protocol: report to stderr, 0 clean / 1 dirty."""
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"{name}: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print(f"{name}: clean")
    return 0
