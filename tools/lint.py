#!/usr/bin/env python3
"""Single entry point for the repo's source lints (DESIGN.md §13).

Default mode runs every lint over the tree and fails if any of them
does:

    python3 tools/lint.py            # == cmake --build build --target lint

Self-test mode proves the lints themselves work by scanning the seeded
fixtures in tests/lint_fixtures/ and asserting each rule fires exactly
where its ``// expect-lint: <rule>`` marker says — no more, no less —
and that every rule both lints define is exercised by at least one
fixture:

    python3 tools/lint.py --selftest   # wired into ctest (lint_selftest)

The self-test also exercises the blessing machinery against a live
fixture: a synthetic blessing must suppress the violation it names and
register as used, so the allowlist path cannot rot unnoticed.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import lint_determinism  # noqa: E402
import lint_index_safety  # noqa: E402
from lint_common import REPO, Blessing  # noqa: E402

FIXTURES = REPO / "tests" / "lint_fixtures"

MARKER_RE = re.compile(r"//\s*expect-lint:\s*([\w-]+)")

ALL_RULES = {r.slug for r in lint_determinism.RULES} | {
    lint_index_safety.RULE_PARAM,
    lint_index_safety.RULE_UNWRAP,
}


def scan_fixture(
    rel: str, lines: list[str]
) -> set[tuple[int, str]]:
    """Run every lint's pure core over one fixture, blessings off."""
    fired: set[tuple[int, str]] = set()
    used: set[Blessing] = set()
    for v in lint_determinism.lint_lines(rel, lines, [], used):
        fired.add((v.line, v.rule))
    for v in lint_index_safety.lint_lines(rel, lines, blessed=False):
        fired.add((v.line, v.rule))
    return fired


def selftest() -> int:
    fixtures = sorted(FIXTURES.glob("*.cc"))
    if not fixtures:
        print(f"lint selftest: no fixtures in {FIXTURES}", file=sys.stderr)
        return 1

    problems: list[str] = []
    covered: set[str] = set()
    for path in fixtures:
        rel = path.relative_to(REPO).as_posix()
        lines = path.read_text(encoding="utf-8").splitlines()
        expected = {
            (lineno, m.group(1))
            for lineno, line in enumerate(lines, start=1)
            for m in MARKER_RE.finditer(line)
        }
        for _, rule in expected:
            if rule not in ALL_RULES:
                problems.append(
                    f"{rel}: marker names unknown rule '{rule}'"
                )
        actual = scan_fixture(rel, lines)
        for lineno, rule in sorted(expected - actual):
            problems.append(
                f"{rel}:{lineno}: rule '{rule}' was expected to fire "
                f"here but did not"
            )
        for lineno, rule in sorted(actual - expected):
            problems.append(
                f"{rel}:{lineno}: rule '{rule}' fired without an "
                f"expect-lint marker"
                + (
                    " (clean counterpart must scan clean)"
                    if path.name.startswith("clean_")
                    else ""
                )
            )
        covered |= {rule for _, rule in expected}

    for rule in sorted(ALL_RULES - covered):
        problems.append(
            f"no fixture exercises rule '{rule}' -- add a "
            f"viol_*.cc under {FIXTURES.relative_to(REPO)}"
        )

    # Blessing machinery: a synthetic blessing for the wall-clock
    # fixture must suppress exactly the violations it names and be
    # counted as used (the stale-blessing detector's input).
    bless_path = FIXTURES / "viol_wall_clock.cc"
    rel = bless_path.relative_to(REPO).as_posix()
    lines = bless_path.read_text(encoding="utf-8").splitlines()
    blessing = Blessing(
        file=rel,
        rule="wall-clock",
        needle="std::chrono::steady_clock",
        justification=(
            "selftest-only: proves a blessing suppresses the "
            "violation it names and registers as used"
        ),
    )
    used: set[Blessing] = set()
    remaining = [
        v
        for v in lint_determinism.lint_lines(rel, lines, [blessing], used)
        if v.rule == "wall-clock"
    ]
    if remaining:
        problems.append(
            f"{rel}: blessing failed to suppress "
            f"{len(remaining)} wall-clock violation(s)"
        )
    if blessing not in used:
        problems.append(
            f"{rel}: blessing was applied but not marked used -- the "
            f"stale-blessing detector would misfire"
        )

    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(
            f"lint selftest: {len(problems)} problem(s)", file=sys.stderr
        )
        return 1
    print(
        f"lint selftest: {len(fixtures)} fixtures, "
        f"{len(ALL_RULES)} rules covered, blessing machinery ok"
    )
    return 0


def main(argv: list[str]) -> int:
    if "--selftest" in argv:
        return selftest()
    status = 0
    status |= lint_index_safety.main()
    status |= lint_determinism.main()
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
