/**
 * @file
 * Scenario: bring-up / validation engineering. Injects concrete fault
 * patterns into the bit-true miniature stack and watches 3DP detect
 * (CRC-32) and reconstruct them, then demonstrates the TSV-SWAP
 * datapath repairing broken lanes. Everything here operates on real
 * bytes, not analytic models.
 */

#include <iostream>

#include "citadel/parity_engine.h"
#include "citadel/tsv_swap.h"
#include "common/table.h"

int
main()
{
    using namespace citadel;

    const StackGeometry geom = StackGeometry::tiny();
    printBanner(std::cout, "Bit-true 3DP on a miniature stack");
    std::cout << "Geometry: " << geom.describe() << "\n\n";

    struct Case
    {
        const char *name;
        std::vector<Fault> faults;
        bool expect_recovered;
    };

    auto mk = [](FaultClass cls, u32 ch, u32 bank, i32 row) {
        Fault f;
        f.cls = cls;
        f.stack = DimSpec::exact(0);
        f.channel = DimSpec::exact(ch);
        f.bank = DimSpec::exact(bank);
        f.row = row < 0 ? DimSpec::wild()
                        : DimSpec::exact(static_cast<u32>(row));
        f.col = DimSpec::wild();
        f.bit = DimSpec::wild();
        if (cls == FaultClass::Bit) {
            f.col = DimSpec::exact(1);
            f.bit = DimSpec::exact(77);
        }
        return f;
    };

    const Case cases[] = {
        {"single bit flip", {mk(FaultClass::Bit, 0, 1, 9)}, true},
        {"full row failure", {mk(FaultClass::Row, 1, 0, 20)}, true},
        {"whole bank failure", {mk(FaultClass::Bank, 1, 1, -1)}, true},
        {"bank + bit in another die",
         {mk(FaultClass::Bank, 0, 0, -1), mk(FaultClass::Bit, 1, 1, 3)},
         true},
        {"two whole banks (defeats parity)",
         {mk(FaultClass::Bank, 0, 0, -1), mk(FaultClass::Bank, 1, 1, -1)},
         false},
    };

    ParityEngine engine(geom);
    Table t({"injected pattern", "corrupt lines", "3DP outcome"});
    for (const Case &c : cases) {
        engine.restore();
        engine.corrupt(c.faults);
        const u64 corrupt = engine.corruptLineCount();
        const bool ok = engine.reconstruct(3);
        t.addRow({c.name, std::to_string(corrupt),
                  ok ? "fully reconstructed" : "UNCORRECTABLE"});
        if (ok != c.expect_recovered)
            std::cerr << "unexpected outcome for: " << c.name << "\n";
    }
    t.print(std::cout);

    printBanner(std::cout, "TSV-SWAP datapath (Fig 8)");
    // A 16-lane toy channel with lanes 0 and 8 as stand-by TSVs.
    TsvSwapDatapath dp(16, {TsvLane{0}, TsvLane{8}});
    std::vector<u8> burst(16);
    for (u32 i = 0; i < 16; ++i)
        burst[i] = static_cast<u8>(0xA0 + i);

    auto show = [&](const char *when) {
        const auto out = dp.transfer(burst);
        std::cout << when << ": ";
        for (u32 i = 0; i < 16; ++i)
            std::cout << (out[i] == burst[i] ? '.' : 'X');
        std::cout << "  (stand-by free: " << dp.standbyFree() << ")\n";
    };

    show("pristine channel      ");
    dp.breakTsv(TsvLane{5});
    dp.breakTsv(TsvLane{11});
    show("lanes 5 & 11 broken   ");
    dp.repair(TsvLane{5});
    dp.repair(TsvLane{11});
    show("after TSV-SWAP repairs");
    std::cout << "\n('.' = lane delivers correct data, 'X' = corrupted)\n";
    return 0;
}
