/**
 * @file
 * Scenario: a memory-vendor RAS team sizing protection for a new
 * stacked part. Sweeps the TSV failure rate and the scrub interval,
 * compares Citadel configurations (parity dimensions, sparing budgets)
 * and prints the failure-probability surface -- the kind of design-
 * space exploration FaultSim was built for.
 *
 * Usage: reliability_study [trials]   (default 30000)
 */

#include <cstdlib>
#include <iostream>

#include "citadel/citadel.h"
#include "common/table.h"

int
main(int argc, char **argv)
{
    using namespace citadel;
    const u64 trials = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                : 30000;

    // --- Sweep 1: TSV rate x TSV-Swap --------------------------------
    printBanner(std::cout, "TSV failure-rate sweep (3DP+DDS core)");
    Table t1({"TSV device FIT", "without TSV-Swap", "with TSV-Swap"});
    for (double fit : {0.0, 143.0, 1430.0, 4300.0}) {
        SystemConfig cfg;
        cfg.tsvDeviceFit = fit;
        MonteCarlo mc(cfg);
        CitadelOptions no_swap;
        no_swap.enableTsvSwap = false;
        auto without = makeCitadel(no_swap);
        auto with = makeCitadel();
        t1.addRow({Table::num(fit, 0),
                   Table::prob(mc.run(*without, trials).probFail()
                                   .estimate),
                   Table::prob(mc.run(*with, trials).probFail()
                                   .estimate)});
    }
    t1.print(std::cout);

    // --- Sweep 2: scrub interval -------------------------------------
    printBanner(std::cout, "Scrub-interval sweep (full Citadel)");
    Table t2({"scrub interval (h)", "P(failure, 7y)"});
    for (double scrub : {3.0, 12.0, 48.0, 168.0}) {
        SystemConfig cfg;
        cfg.tsvDeviceFit = 1430.0;
        cfg.scrubHours = scrub;
        MonteCarlo mc(cfg);
        auto scheme = makeCitadel();
        t2.addRow({Table::num(scrub, 0),
                   Table::prob(mc.run(*scheme, trials).probFail()
                                   .estimate)});
    }
    t2.print(std::cout);

    // --- Sweep 3: sparing budgets (DDS sizing) ------------------------
    printBanner(std::cout, "DDS budget sweep (spare banks per stack)");
    Table t3({"spare banks", "spare rows/bank", "P(failure, 7y)"});
    for (u32 banks : {0u, 1u, 2u, 4u}) {
        CitadelOptions opts;
        opts.spareBanksPerStack = banks;
        SystemConfig cfg;
        cfg.tsvDeviceFit = 1430.0;
        MonteCarlo mc(cfg);
        auto scheme = makeCitadel(opts);
        t3.addRow({std::to_string(banks),
                   std::to_string(opts.spareRowsPerBank),
                   Table::prob(mc.run(*scheme, trials).probFail()
                                   .estimate)});
    }
    t3.print(std::cout);

    std::cout << "\n(Each probability from " << trials
              << " Monte Carlo lifetimes; raise the trial count for "
                 "tighter tails.)\n";
    return 0;
}
