/**
 * @file
 * Quickstart: protect a stacked-memory system with Citadel and measure
 * its 7-year failure probability against an unprotected baseline and a
 * ChipKill-like striped code.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "citadel/citadel.h"
#include "common/table.h"

int
main()
{
    using namespace citadel;

    // 1. Describe the system: Table II defaults -- two 8GB HBM-like
    //    stacks, 8 channels x 8 banks each, plus a metadata die.
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0; // pessimistic TSV rate (1 failure / 7y)
    std::cout << "Memory system: " << cfg.geom.describe() << "\n";
    std::cout << "Lifetime " << cfg.lifetimeHours / kHoursPerYear
              << " years, scrub every " << cfg.scrubHours << " h\n\n";

    // 2. Build schemes: the full Citadel stack and two baselines.
    auto citadel_scheme = makeCitadel();
    auto chipkill = makeSymbolBaseline(StripingMode::AcrossChannels);
    NoProtection none;

    // 3. Monte Carlo over device lifetimes.
    MonteCarlo mc(cfg);
    const u64 trials = 50000;
    const McResult r_none = mc.run(none, trials);
    const McResult r_ck = mc.run(*chipkill, trials);
    const McResult r_cit = mc.run(*citadel_scheme, trials);

    Table t({"scheme", "P(system failure, 7y)", "failures/trials"});
    auto row = [&](const std::string &name, const McResult &r) {
        t.addRow({name, Table::prob(r.probFail().estimate),
                  std::to_string(r.failures) + "/" +
                      std::to_string(r.trials)});
    };
    row(none.name(), r_none);
    row(chipkill->name(), r_ck);
    row(citadel_scheme->name(), r_cit);
    t.print(std::cout);

    // 4. The storage bill (Section VII-E).
    const StorageOverhead o = computeOverhead(cfg);
    std::cout << "\nCitadel storage overhead: "
              << Table::pct(o.dramFraction()) << " DRAM, "
              << (o.sramParityBytes + o.sramRemapBytes) / 1024
              << " KB SRAM (ECC-DIMM: 12.5%)\n";
    return 0;
}
