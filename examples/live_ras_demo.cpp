/**
 * @file
 * Live RAS datapath demo — the paper's error-handling flow running
 * inside the timing simulator.
 *
 * Scenario 1: a permanent row fault strikes mid-run. Demand reads that
 * hit the row are CRC-detected, retried, reconstructed from the
 * Dimension-1 parity group (visible as extra reads in MemCounters),
 * and the row is retired into the spare bank (DDS), after which
 * accesses are served from spare storage.
 *
 * Scenario 2: a forced triple-bank pattern defeats 3DP. Affected reads
 * are reported as machine-check-style DUE events — poisoned, counted,
 * never silently wrong — and the simulation still runs to completion.
 *
 * Run:  ./live_ras_demo
 */

#include <iostream>

#include "ras/live_datapath.h"
#include "sim/system_sim.h"

using namespace citadel;

namespace {

SimConfig
demoConfig()
{
    SimConfig cfg;
    cfg.geom = StackGeometry::tiny(); // bit-true storage stays small
    cfg.llcBytes = 1 << 14;
    cfg.cores = 2;
    cfg.insnsPerCore = 30'000;
    cfg.ras = RasTraffic::ThreeDPCached;
    cfg.seed = 9;
    return cfg;
}

Fault
bankFault(u32 stack, u32 ch, u32 bank)
{
    Fault f;
    f.cls = FaultClass::Bank;
    f.stack = DimSpec::exact(stack);
    f.channel = DimSpec::exact(ch);
    f.bank = DimSpec::exact(bank);
    return f;
}

void
report(const char *title, const SimResult &res, const LiveRasDatapath &dp)
{
    std::cout << "\n=== " << title << " ===\n";
    std::cout << "cycles=" << res.cycles
              << " insns=" << res.insnsRetired
              << " demandReadBursts=" << res.mem.readBursts
              << " rasReads=" << res.mem.rasReads << "\n";
    std::cout << dp.counters().summary() << "\n";
    std::cout << "event log (" << dp.log().events().size() << " entries, "
              << dp.log().dropped() << " dropped):\n";
    for (const RasEvent &ev : dp.log().events())
        std::cout << "  " << ev.describe() << "\n";
}

} // namespace

int
main()
{
    const SimConfig cfg = demoConfig();

    {
        // --- Scenario 1: correctable row fault, graceful sparing. ---
        LiveRasDatapath dp(cfg);
        Fault row;
        row.cls = FaultClass::Row;
        row.stack = DimSpec::exact(0);
        row.channel = DimSpec::exact(0);
        row.bank = DimSpec::exact(0);
        row.row = DimSpec::exact(5);
        dp.scheduleFault(row, 500); // strikes mid-run

        SystemSim sim(cfg, findBenchmark("mcf"));
        sim.attachRas(&dp);
        report("Row fault: detect -> correct -> spare", sim.run(), dp);
    }

    {
        // --- Scenario 2: uncorrectable pattern, DUE + continuation. ---
        LiveRasDatapath dp(cfg);
        dp.scheduleFault(bankFault(0, 0, 0), 0);
        dp.scheduleFault(bankFault(0, 0, 1), 0);
        dp.scheduleFault(bankFault(0, 1, 0), 0);

        SimConfig cfg2 = cfg;
        cfg2.insnsPerCore = 10'000;
        SystemSim sim(cfg2, findBenchmark("mcf"));
        sim.attachRas(&dp);
        report("Triple-bank pattern: DUE reported, run completes",
               sim.run(), dp);
    }

    return 0;
}
