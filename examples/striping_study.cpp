/**
 * @file
 * Scenario: a memory-controller architect weighing data-striping
 * policies for a bandwidth-hungry HPC workload mix. Runs a handful of
 * representative benchmarks under the three mappings and under 3DP,
 * and prints execution time, activation counts, row-hit rates and
 * active power -- the trade-off of Figures 1 and 5.
 *
 * Usage: striping_study [insns_per_core]   (default 300000)
 */

#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "sim/system_sim.h"

int
main(int argc, char **argv)
{
    using namespace citadel;
    const u64 insns = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                               : 300000;

    const char *workloads[] = {"lbm", "mcf", "libquantum", "GemsFDTD",
                               "povray"};

    struct Config
    {
        const char *name;
        StripingMode mode;
        RasTraffic ras;
    };
    const Config configs[] = {
        {"Same-Bank (baseline)", StripingMode::SameBank,
         RasTraffic::None},
        {"Same-Bank + 3DP", StripingMode::SameBank,
         RasTraffic::ThreeDPCached},
        {"Across-Banks", StripingMode::AcrossBanks, RasTraffic::None},
        {"Across-Channels", StripingMode::AcrossChannels,
         RasTraffic::None},
    };

    for (const char *wl : workloads) {
        const BenchmarkProfile &profile = findBenchmark(wl);
        printBanner(std::cout,
                    std::string(wl) + "  (MPKI " +
                        Table::num(profile.mpki, 1) + ", run length " +
                        Table::num(profile.runLength, 0) + " lines)");

        Table t({"configuration", "cycles", "norm. time", "activations",
                 "row-hit rate", "active W", "norm. power"});
        double base_cycles = 0.0;
        double base_power = 0.0;
        for (const Config &c : configs) {
            SimConfig cfg;
            cfg.striping = c.mode;
            cfg.ras = c.ras;
            cfg.insnsPerCore = insns;
            SystemSim sim(cfg, profile);
            const SimResult r = sim.run();
            if (base_cycles == 0.0) {
                base_cycles = static_cast<double>(r.cycles);
                base_power = r.power.totalW();
            }
            const double hits = static_cast<double>(r.mem.rowHits);
            const double total =
                hits + static_cast<double>(r.mem.rowMisses);
            t.addRow({c.name, std::to_string(r.cycles),
                      Table::num(static_cast<double>(r.cycles) /
                                     base_cycles, 3),
                      std::to_string(r.mem.activates),
                      Table::pct(total > 0 ? hits / total : 0.0),
                      Table::num(r.power.totalW(), 2),
                      Table::num(r.power.totalW() / base_power, 2)});
        }
        t.print(std::cout);
    }
    return 0;
}
