/**
 * @file
 * Physical address mapping and data-striping policies.
 *
 * The timing simulator works on system-wide cache-line indices; this
 * translates them to (stack, channel, bank, row, col) coordinates and
 * expands one logical line access into the per-bank sub-requests implied
 * by the striping mode under study (Section II-D of the paper).
 */

#ifndef CITADEL_STACK_ADDRESS_H
#define CITADEL_STACK_ADDRESS_H

#include <vector>

#include "stack/geometry.h"

namespace citadel {

/**
 * Data placement policies for a cache line (Section II-D).
 */
enum class StripingMode
{
    SameBank,       ///< Entire 64B line in one bank (Citadel's mapping).
    AcrossBanks,    ///< Striped over all banks of one channel/die.
    AcrossChannels, ///< Striped over one bank in each channel.
};

/** Short display name ("Same-Bank", ...). */
const char *stripingModeName(StripingMode mode);

/**
 * Hybrid-interleaved address map. Bit order from LSB to MSB of the
 * line index: col_lo (2 bits), channel, bank, col_hi, stack, row.
 * Consecutive lines form a short 256B burst inside one DRAM row (open-
 * page locality for the Same-Bank mapping, Section II-D), then rotate
 * across channels and banks for parallelism. Under this layout the 64
 * data lines sharing one Dimension-1 parity line (same stack, row and
 * col across the (die, bank) grid) are packed into one 16KB span, so a
 * streaming writeback burst re-touches each parity line ~64 times --
 * the "very high temporal locality" that makes on-demand parity
 * caching effective (Section VI-C, Fig 12).
 */
class AddressMap
{
  public:
    explicit AddressMap(const StackGeometry &geom);

    /** Decompose a system-wide line address. */
    LineCoord lineToCoord(LineAddr line) const;

    /** Recompose; inverse of lineToCoord. */
    LineAddr coordToLine(const LineCoord &c) const;

    /**
     * The per-(channel, bank) DRAM accesses needed to move one line
     * under `mode`. SameBank yields 1 access; AcrossBanks yields one per
     * bank of the line's channel; AcrossChannels one per channel (at the
     * line's bank index).
     */
    std::vector<LineCoord> subRequests(const LineCoord &line,
                                       StripingMode mode) const;

    /** Accesses per line under `mode` (1, banks, or channels). */
    u32 fanout(StripingMode mode) const;

    /** First line address of the reserved D1-parity address space. */
    LineAddr parityBase() const { return LineAddr{geom_.totalLines()}; }

    /**
     * Dimension-1 parity group of a data line (Section VI-C): all data
     * lines sharing one (stack, row, col) slot across the (die, bank)
     * grid belong to one group, XOR-folded into one parity line.
     */
    ParityGroupId d1Group(LineAddr data_line) const;

    /** The parity group holding a (stack, row, col) slot directly. */
    ParityGroupId d1GroupOf(StackId stack, RowId row, ColId col) const;

    /**
     * Dimension-1 parity line address for a data line (Section VI-C):
     * the line storing that line's d1Group() fold. Parity addresses
     * live at parityBase() + group index.
     */
    LineAddr d1ParityLine(LineAddr data_line) const;

    /** Address of a parity group's parity line. */
    LineAddr parityLineOf(ParityGroupId group) const;

    /**
     * Physical DRAM line backing an address: data lines map through
     * unchanged; parity lines map into the distributed parity bank
     * (bank/channel bits derived from the row so no single physical
     * bank bottlenecks, Section VI-A footnote).
     */
    LineAddr parityToPhysical(LineAddr line) const;

    const StackGeometry &geometry() const { return geom_; }

  private:
    StackGeometry geom_;
    u32 chBits_;
    u32 bankBits_;
    u32 colLoBits_;
    u32 colHiBits_;
    u32 stackBits_;
    u32 rowBits_;
};

} // namespace citadel

#endif // CITADEL_STACK_ADDRESS_H
