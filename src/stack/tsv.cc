#include "stack/tsv.h"

#include <bit>

#include "common/log.h"

namespace citadel {

TsvMap::TsvMap(const StackGeometry &geom) : geom_(geom)
{
    rowBits_ = geom_.rowBits();
    bankBits_ = geom_.bankBits();
    if (geom_.addrTsvsPerChannel < rowBits_ + bankBits_)
        fatal("TsvMap: %u ATSVs cannot carry %u row + %u bank address bits",
              geom_.addrTsvsPerChannel, rowBits_, bankBits_);
}

void
TsvMap::dataTsvBitPattern(TsvLane d, u32 &value, u32 &mask) const
{
    if (d.value() >= geom_.dataTsvsPerChannel)
        panic("dataTsvBitPattern: DTSV %u out of range", d.value());
    // With burst length L over N DTSVs, DTSV d carries line bits
    // d, d + N, d + 2N, ... Matching "low log2(N) bits == d".
    const u32 n = geom_.dataTsvsPerChannel;
    value = d.value();
    mask = n - 1; // N is power-of-two-checked by geometry validation
    // Ensure the full bit index space is a multiple of N (burst exact).
    if (geom_.bitsPerLine() % n != 0)
        panic("dataTsvBitPattern: bits per line not a DTSV multiple");
}

AtsvEffect
TsvMap::addrTsvEffect(TsvLane a) const
{
    if (a.value() >= geom_.addrTsvsPerChannel)
        panic("addrTsvEffect: ATSV %u out of range", a.value());
    if (a.value() < rowBits_)
        return AtsvEffect::HalfRows;
    if (a.value() < rowBits_ + bankBits_)
        return AtsvEffect::HalfBanks;
    return AtsvEffect::WholeChannel;
}

u32
TsvMap::addrTsvRowBit(TsvLane a) const
{
    if (addrTsvEffect(a) != AtsvEffect::HalfRows)
        panic("addrTsvRowBit: ATSV %u is not a row-address TSV",
              a.value());
    return a.value();
}

u32
TsvMap::addrTsvBankBit(TsvLane a) const
{
    if (addrTsvEffect(a) != AtsvEffect::HalfBanks)
        panic("addrTsvBankBit: ATSV %u is not a bank-address TSV",
              a.value());
    return a.value() - rowBits_;
}

} // namespace citadel
