#include "stack/geometry.h"

#include <bit>
#include <sstream>

#include "common/log.h"

namespace citadel {

namespace {

u32
log2Exact(u64 v, const char *what)
{
    if (v == 0 || (v & (v - 1)) != 0)
        fatal("geometry: %s (= %llu) must be a power of two", what,
              static_cast<unsigned long long>(v));
    return static_cast<u32>(std::countr_zero(v));
}

} // namespace

u32
StackGeometry::rowBits() const
{
    return log2Exact(rowsPerBank, "rowsPerBank");
}

u32
StackGeometry::bankBits() const
{
    return log2Exact(banksPerChannel, "banksPerChannel");
}

u32
StackGeometry::colBits() const
{
    return log2Exact(linesPerRow(), "linesPerRow");
}

u32
StackGeometry::bitBits() const
{
    return log2Exact(bitsPerLine(), "bitsPerLine");
}

void
StackGeometry::validate() const
{
    if (stacks == 0 || channelsPerStack == 0 || banksPerChannel == 0 ||
        rowsPerBank == 0)
        fatal("geometry: all dimensions must be non-zero");
    if (lineBytes == 0 || rowBytes == 0)
        fatal("geometry: lineBytes and rowBytes must be non-zero");
    if (dataTsvsPerChannel == 0)
        fatal("geometry: dataTsvsPerChannel must be non-zero");
    if (rowBytes % lineBytes != 0)
        fatal("geometry: rowBytes (%u) not a multiple of lineBytes (%u)",
              rowBytes, lineBytes);
    if (bitsPerLine() % dataTsvsPerChannel != 0)
        fatal("geometry: line bits (%u) not a multiple of DTSV count (%u)",
              bitsPerLine(), dataTsvsPerChannel);
    // Force power-of-two shape so (value, mask) fault ranges are exact.
    (void)rowBits();
    (void)bankBits();
    (void)colBits();
    (void)bitBits();
    (void)log2Exact(channelsPerStack, "channelsPerStack");
}

std::string
StackGeometry::describe() const
{
    std::ostringstream os;
    os << stacks << " stack(s) x " << channelsPerStack << " ch x "
       << banksPerChannel << " banks, " << rowsPerBank << " rows x "
       << rowBytes << "B (total "
       << (totalBytes() >> 30) << " GiB, " << dataTsvsPerChannel
       << " DTSV + " << addrTsvsPerChannel << " ATSV per channel)";
    return os.str();
}

StackGeometry
StackGeometry::hbm()
{
    return StackGeometry{};
}

StackGeometry
StackGeometry::hmcLike()
{
    StackGeometry g;
    g.channelsPerStack = 16;
    g.banksPerChannel = 8;
    g.rowsPerBank = 32768;
    g.rowBytes = 2048;
    g.dataTsvsPerChannel = 32;
    g.addrTsvsPerChannel = 24;
    return g;
}

StackGeometry
StackGeometry::tezzaronLike()
{
    StackGeometry g;
    g.channelsPerStack = 4;
    g.banksPerChannel = 16;
    g.rowsPerBank = 65536;
    g.rowBytes = 2048;
    g.dataTsvsPerChannel = 128;
    g.addrTsvsPerChannel = 24;
    return g;
}

StackGeometry
StackGeometry::tiny()
{
    StackGeometry g;
    g.stacks = 1;
    g.channelsPerStack = 2;
    g.banksPerChannel = 2;
    g.rowsPerBank = 64;
    g.rowBytes = 256;
    g.lineBytes = 64;
    g.dataTsvsPerChannel = 256;
    g.addrTsvsPerChannel = 24;
    return g;
}

} // namespace citadel
