/**
 * @file
 * Physical organization of the 3D-stacked memory system evaluated in the
 * paper (Table II): HBM-like stacks in which each channel is fully
 * contained in one DRAM die, with a ninth die for ECC/metadata.
 *
 * Coordinate system used everywhere in this codebase, most-significant
 * first:
 *
 *   (stack, channel, bank, row, col, bit)
 *
 * where `channel` doubles as the die index (HBM: one channel per die),
 * `col` is the 64B cache-line slot within a 2KB row (32 slots), and
 * `bit` is the bit position within the 512-bit line.
 */

#ifndef CITADEL_STACK_GEOMETRY_H
#define CITADEL_STACK_GEOMETRY_H

#include <string>

#include "common/strong_id.h"
#include "common/types.h"

namespace citadel {

/**
 * Stacked-memory geometry. Defaults reproduce the paper's baseline
 * configuration (Table II): 2 stacks x 8 channels x 8 banks, 64K rows of
 * 2KB per bank, 8Gb data dies, 256 data TSVs and 24 address/command TSVs
 * per channel, 64B cache lines.
 */
struct StackGeometry
{
    u32 stacks = 2;           ///< Number of 3D stacks in the system.
    u32 channelsPerStack = 8; ///< One channel per data die (HBM-style).
    u32 banksPerChannel = 8;  ///< Banks within a channel/die.
    u32 rowsPerBank = 65536;  ///< 64K rows of 2KB = 128MB per bank.
    u32 rowBytes = 2048;      ///< Row-buffer (DRAM page) size.
    u32 lineBytes = 64;       ///< Cache-line size.
    u32 dataTsvsPerChannel = 256; ///< DTSV count (burst length 2).
    u32 addrTsvsPerChannel = 24;  ///< Address/command TSV count.

    /** 64B lines per 2KB row (32 in the baseline). */
    u32 linesPerRow() const { return rowBytes / lineBytes; }

    /** Bits in a cache line (512 in the baseline). */
    u32 bitsPerLine() const { return lineBytes * kBitsPerByte; }

    /** DDR burst beats to move one line over the DTSVs (2 in baseline). */
    u32 burstLength() const
    {
        return bitsPerLine() / dataTsvsPerChannel;
    }

    u64 linesPerBank() const
    {
        return static_cast<u64>(rowsPerBank) * linesPerRow();
    }

    u64 bytesPerBank() const
    {
        return static_cast<u64>(rowsPerBank) * rowBytes;
    }

    u64 bytesPerChannel() const { return bytesPerBank() * banksPerChannel; }
    u64 bytesPerStack() const
    {
        return bytesPerChannel() * channelsPerStack;
    }
    u64 totalBytes() const { return bytesPerStack() * stacks; }

    u32 banksPerStack() const { return channelsPerStack * banksPerChannel; }
    u32 totalChannels() const { return stacks * channelsPerStack; }
    u32 totalBanks() const { return stacks * banksPerStack(); }

    /** Total cache lines in the system. */
    u64 totalLines() const { return totalBytes() / lineBytes; }

    /** Bits needed to index rows within a bank. */
    u32 rowBits() const;
    /** Bits needed to index banks within a channel. */
    u32 bankBits() const;
    /** Bits needed to index line slots within a row. */
    u32 colBits() const;
    /** Bits needed to index a bit within a line. */
    u32 bitBits() const;

    /**
     * Validate internal consistency (power-of-two dimensions, burst
     * divisibility). Calls fatal() with a diagnostic on failure.
     */
    void validate() const;

    /** Human-readable one-line summary. */
    std::string describe() const;

    /**
     * A reduced geometry (2 stacks are overkill for bit-true parity
     * tests): 1 stack, 2 channels, 2 banks, 64 rows of 256B. Used by the
     * bit-accurate 3DP engine and property tests.
     */
    static StackGeometry tiny();

    /** The paper's baseline HBM-like organization (same as default). */
    static StackGeometry hbm();

    /**
     * HMC-like organization (Section II-C): more, narrower vaults --
     * 16 channels per stack with 32K-row banks and a 32-lane
     * high-speed link per vault. Same 8GB per stack.
     */
    static StackGeometry hmcLike();

    /**
     * Tezzaron Octopus-like organization: few wide ports -- 4 channels
     * of 16 banks each, 128 data TSVs per channel. Same 8GB per stack.
     */
    static StackGeometry tezzaronLike();
};

/**
 * Fully qualified location of a cache line (or a bit, when `bit` is
 * meaningful) within the system. Every field lives in its own typed
 * coordinate space (common/strong_id.h), so transposing, say, bank and
 * row at a call site is a compile error rather than a silent aliasing
 * bug.
 */
struct LineCoord
{
    StackId stack{};
    ChannelId channel{};
    BankId bank{};
    RowId row{};
    ColId col{};

    bool operator==(const LineCoord &) const = default;
};

} // namespace citadel

#endif // CITADEL_STACK_GEOMETRY_H
