/**
 * @file
 * Physical semantics of through-silicon-via (TSV) faults (Section V).
 *
 * All banks in a channel share the channel's TSV bundle, so a TSV fault
 * is a multi-bank event:
 *
 *  - A faulty data TSV d corrupts bits {d, d + 256} of *every* cache
 *    line in the channel (burst length 2 over 256 DTSVs).
 *  - A faulty address TSV is far more severe: a stuck row-address line
 *    makes half of every bank's rows unreachable; a stuck bank-address
 *    line removes half the banks; a stuck command TSV takes out the
 *    whole channel.
 */

#ifndef CITADEL_STACK_TSV_H
#define CITADEL_STACK_TSV_H

#include "stack/geometry.h"

namespace citadel {

/** What a faulty address/command TSV takes out. */
enum class AtsvEffect
{
    HalfRows,    ///< Row-address TSV: half the rows of every bank.
    HalfBanks,   ///< Bank-address TSV: half the banks of the channel.
    WholeChannel ///< Command TSV: channel unusable.
};

/**
 * Interprets TSV indices for a given geometry. ATSVs are assigned, low
 * index first, to row-address bits, then bank-address bits, then
 * command lines.
 */
class TsvMap
{
  public:
    explicit TsvMap(const StackGeometry &geom);

    u32 numDataTsvs() const { return geom_.dataTsvsPerChannel; }
    u32 numAddrTsvs() const { return geom_.addrTsvsPerChannel; }

    /**
     * Bit positions within a 512-bit line corrupted by data TSV lane
     * `d`, expressed as a (value, mask) pair over the bit index: a bit
     * b is affected iff (b ^ value) & mask == 0.
     */
    void dataTsvBitPattern(TsvLane d, u32 &value, u32 &mask) const;

    /** Classify an address TSV lane. */
    AtsvEffect addrTsvEffect(TsvLane a) const;

    /**
     * For a HalfRows ATSV: which row-address bit it drives.
     * @pre addrTsvEffect(a) == AtsvEffect::HalfRows
     */
    u32 addrTsvRowBit(TsvLane a) const;

    /**
     * For a HalfBanks ATSV: which bank-address bit it drives.
     * @pre addrTsvEffect(a) == AtsvEffect::HalfBanks
     */
    u32 addrTsvBankBit(TsvLane a) const;

  private:
    StackGeometry geom_;
    u32 rowBits_;
    u32 bankBits_;
};

} // namespace citadel

#endif // CITADEL_STACK_TSV_H
