#include "stack/address.h"

#include <algorithm>
#include <bit>

#include "common/log.h"

namespace citadel {

const char *
stripingModeName(StripingMode mode)
{
    switch (mode) {
      case StripingMode::SameBank:
        return "Same-Bank";
      case StripingMode::AcrossBanks:
        return "Across-Banks";
      case StripingMode::AcrossChannels:
        return "Across-Channels";
    }
    return "?";
}

namespace {

u32
bitsFor(u64 n)
{
    return n <= 1 ? 0 : static_cast<u32>(std::bit_width(n - 1));
}

} // namespace

AddressMap::AddressMap(const StackGeometry &geom) : geom_(geom)
{
    geom_.validate();
    chBits_ = bitsFor(geom_.channelsPerStack);
    bankBits_ = bitsFor(geom_.banksPerChannel);
    const u32 col_bits = bitsFor(geom_.linesPerRow());
    colLoBits_ = std::min(2u, col_bits);
    colHiBits_ = col_bits - colLoBits_;
    stackBits_ = bitsFor(geom_.stacks);
    rowBits_ = bitsFor(geom_.rowsPerBank);
}

LineCoord
AddressMap::lineToCoord(u64 line_idx) const
{
    if (line_idx >= geom_.totalLines())
        panic("lineToCoord: index %llu out of range",
              static_cast<unsigned long long>(line_idx));
    LineCoord c;
    u64 v = line_idx;
    const u32 col_lo = static_cast<u32>(v & ((1ull << colLoBits_) - 1));
    v >>= colLoBits_;
    c.channel = static_cast<u32>(v & ((1ull << chBits_) - 1));
    v >>= chBits_;
    c.bank = static_cast<u32>(v & ((1ull << bankBits_) - 1));
    v >>= bankBits_;
    const u32 col_hi = static_cast<u32>(v & ((1ull << colHiBits_) - 1));
    v >>= colHiBits_;
    c.stack = static_cast<u32>(v & ((1ull << stackBits_) - 1));
    v >>= stackBits_;
    c.row = static_cast<u32>(v);
    c.col = (col_hi << colLoBits_) | col_lo;
    return c;
}

u64
AddressMap::coordToLine(const LineCoord &c) const
{
    const u32 col_lo = c.col & ((1u << colLoBits_) - 1);
    const u32 col_hi = c.col >> colLoBits_;
    u64 v = c.row;
    v = (v << stackBits_) | c.stack;
    v = (v << colHiBits_) | col_hi;
    v = (v << bankBits_) | c.bank;
    v = (v << chBits_) | c.channel;
    v = (v << colLoBits_) | col_lo;
    return v;
}

std::vector<LineCoord>
AddressMap::subRequests(const LineCoord &line, StripingMode mode) const
{
    std::vector<LineCoord> out;
    switch (mode) {
      case StripingMode::SameBank:
        out.push_back(line);
        break;
      case StripingMode::AcrossBanks:
        out.reserve(geom_.banksPerChannel);
        for (u32 b = 0; b < geom_.banksPerChannel; ++b) {
            LineCoord c = line;
            c.bank = b;
            out.push_back(c);
        }
        break;
      case StripingMode::AcrossChannels:
        out.reserve(geom_.channelsPerStack);
        for (u32 ch = 0; ch < geom_.channelsPerStack; ++ch) {
            LineCoord c = line;
            c.channel = ch;
            out.push_back(c);
        }
        break;
    }
    return out;
}

u64
AddressMap::d1ParityLine(u64 data_line) const
{
    const LineCoord c = lineToCoord(data_line);
    return parityBase() +
           (static_cast<u64>(c.stack) * geom_.rowsPerBank + c.row) *
               geom_.linesPerRow() +
           c.col;
}

u64
AddressMap::parityToPhysical(u64 line) const
{
    if (line < parityBase())
        return line;
    u64 idx = line - parityBase();
    LineCoord c;
    c.col = static_cast<u32>(idx % geom_.linesPerRow());
    idx /= geom_.linesPerRow();
    c.row = static_cast<u32>(idx % geom_.rowsPerBank);
    c.stack = static_cast<u32>(idx / geom_.rowsPerBank);
    c.channel = c.row % geom_.channelsPerStack;
    c.bank = (c.row / geom_.channelsPerStack) % geom_.banksPerChannel;
    return coordToLine(c);
}

u32
AddressMap::fanout(StripingMode mode) const
{
    switch (mode) {
      case StripingMode::SameBank:
        return 1;
      case StripingMode::AcrossBanks:
        return geom_.banksPerChannel;
      case StripingMode::AcrossChannels:
        return geom_.channelsPerStack;
    }
    return 1;
}

} // namespace citadel
