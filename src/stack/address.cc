#include "stack/address.h"

#include <algorithm>
#include <bit>

#include "common/log.h"

namespace citadel {

const char *
stripingModeName(StripingMode mode)
{
    switch (mode) {
      case StripingMode::SameBank:
        return "Same-Bank";
      case StripingMode::AcrossBanks:
        return "Across-Banks";
      case StripingMode::AcrossChannels:
        return "Across-Channels";
    }
    return "?";
}

namespace {

u32
bitsFor(u64 n)
{
    return n <= 1 ? 0 : static_cast<u32>(std::bit_width(n - 1));
}

} // namespace

AddressMap::AddressMap(const StackGeometry &geom) : geom_(geom)
{
    geom_.validate();
    chBits_ = bitsFor(geom_.channelsPerStack);
    bankBits_ = bitsFor(geom_.banksPerChannel);
    const u32 col_bits = bitsFor(geom_.linesPerRow());
    colLoBits_ = std::min(2u, col_bits);
    colHiBits_ = col_bits - colLoBits_;
    stackBits_ = bitsFor(geom_.stacks);
    rowBits_ = bitsFor(geom_.rowsPerBank);
}

LineCoord
AddressMap::lineToCoord(LineAddr line) const
{
    if (line >= parityBase())
        panic("lineToCoord: address %llu out of range",
              static_cast<unsigned long long>(line.value()));
    LineCoord c;
    u64 v = line.value();
    const u32 col_lo = static_cast<u32>(v & ((1ull << colLoBits_) - 1));
    v >>= colLoBits_;
    c.channel = ChannelId{static_cast<u32>(v & ((1ull << chBits_) - 1))};
    v >>= chBits_;
    c.bank = BankId{static_cast<u32>(v & ((1ull << bankBits_) - 1))};
    v >>= bankBits_;
    const u32 col_hi = static_cast<u32>(v & ((1ull << colHiBits_) - 1));
    v >>= colHiBits_;
    c.stack = StackId{static_cast<u32>(v & ((1ull << stackBits_) - 1))};
    v >>= stackBits_;
    c.row = RowId{static_cast<u32>(v)};
    c.col = ColId{(col_hi << colLoBits_) | col_lo};
    return c;
}

LineAddr
AddressMap::coordToLine(const LineCoord &c) const
{
    const u32 col_lo = c.col.value() & ((1u << colLoBits_) - 1);
    const u32 col_hi = c.col.value() >> colLoBits_;
    u64 v = c.row.value();
    v = (v << stackBits_) | c.stack.value();
    v = (v << colHiBits_) | col_hi;
    v = (v << bankBits_) | c.bank.value();
    v = (v << chBits_) | c.channel.value();
    v = (v << colLoBits_) | col_lo;
    return LineAddr{v};
}

std::vector<LineCoord>
AddressMap::subRequests(const LineCoord &line, StripingMode mode) const
{
    std::vector<LineCoord> out;
    switch (mode) {
      case StripingMode::SameBank:
        out.push_back(line);
        break;
      case StripingMode::AcrossBanks:
        out.reserve(geom_.banksPerChannel);
        for (u32 b = 0; b < geom_.banksPerChannel; ++b) {
            LineCoord c = line;
            c.bank = BankId{b};
            out.push_back(c);
        }
        break;
      case StripingMode::AcrossChannels:
        out.reserve(geom_.channelsPerStack);
        for (u32 ch = 0; ch < geom_.channelsPerStack; ++ch) {
            LineCoord c = line;
            c.channel = ChannelId{ch};
            out.push_back(c);
        }
        break;
    }
    return out;
}

ParityGroupId
AddressMap::d1GroupOf(StackId stack, RowId row, ColId col) const
{
    return ParityGroupId{
        (static_cast<u64>(stack.value()) * geom_.rowsPerBank +
         row.value()) *
            geom_.linesPerRow() +
        col.value()};
}

ParityGroupId
AddressMap::d1Group(LineAddr data_line) const
{
    const LineCoord c = lineToCoord(data_line);
    return d1GroupOf(c.stack, c.row, c.col);
}

LineAddr
AddressMap::parityLineOf(ParityGroupId group) const
{
    return LineAddr{parityBase().value() + group.value()};
}

LineAddr
AddressMap::d1ParityLine(LineAddr data_line) const
{
    return parityLineOf(d1Group(data_line));
}

LineAddr
AddressMap::parityToPhysical(LineAddr line) const
{
    if (line < parityBase())
        return line;
    u64 idx = line.value() - parityBase().value();
    LineCoord c;
    c.col = ColId{static_cast<u32>(idx % geom_.linesPerRow())};
    idx /= geom_.linesPerRow();
    c.row = RowId{static_cast<u32>(idx % geom_.rowsPerBank)};
    c.stack = StackId{static_cast<u32>(idx / geom_.rowsPerBank)};
    c.channel = ChannelId{c.row.value() % geom_.channelsPerStack};
    c.bank = BankId{(c.row.value() / geom_.channelsPerStack) %
                    geom_.banksPerChannel};
    return coordToLine(c);
}

u32
AddressMap::fanout(StripingMode mode) const
{
    switch (mode) {
      case StripingMode::SameBank:
        return 1;
      case StripingMode::AcrossBanks:
        return geom_.banksPerChannel;
      case StripingMode::AcrossChannels:
        return geom_.channelsPerStack;
    }
    return 1;
}

} // namespace citadel
