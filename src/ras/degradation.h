/**
 * @file
 * Degradation ladder: what Citadel does when repair stops working.
 *
 * The paper's pipeline ends at DDS sparing; a real deployment cannot
 * -- spare budgets exhaust, regions re-fault, and the machine must
 * keep running. The ladder turns repair failures into *capacity*
 * loss, escalating one rung at a time:
 *
 *   page offline   a DUE'd row is retired (the OS-page-offline
 *                  analogue); reads steer to a healthy stand-in;
 *   bank retire    triggered by SparingDenied on a bank-contained
 *                  fault, by a bank re-faulting `strikesPerBank`
 *                  times, or by `pagesPerBankCap` offlined rows
 *                  accumulating in one bank;
 *   channel degrade `retiredBanksPerChannelCap` retired banks in one
 *                  channel give the whole channel up.
 *
 * Retired regions live in a sim-side RetirementMap that MemorySystem
 * consults on every enqueue, so the timing simulator keeps running at
 * reduced capacity. The datapath drops faults wholly contained in a
 * retired region from the active set -- of BOTH the bit-true and the
 * analytic model -- so the no-overclaim differential invariant is
 * preserved across every rung.
 */

#ifndef CITADEL_RAS_DEGRADATION_H
#define CITADEL_RAS_DEGRADATION_H

#include <map>

#include "sim/retirement.h"

namespace citadel {

/** Ladder thresholds. */
struct DegradationOptions
{
    /** Offline the faulting row (page) on every DUE. */
    bool offlinePagesOnDue = true;

    /** Permanent single-bank fault arrivals before the bank is
     *  proactively retired (the "re-faulting region" trigger). */
    u32 strikesPerBank = 3;

    /** Offlined rows tolerated per bank before the whole bank is
     *  retired. */
    u32 pagesPerBankCap = 16;

    /** Retired banks tolerated per channel before the channel is
     *  degraded. */
    u32 retiredBanksPerChannelCap = 2;
};

/** Escalation state machine over a RetirementMap. */
class DegradationLadder
{
  public:
    /** Which rungs one event climbed (all false: no action). */
    struct Action
    {
        bool rowOfflined = false;
        bool bankRetired = false;
        bool channelDegraded = false;

        bool any() const
        {
            return rowOfflined || bankRetired || channelDegraded;
        }
    };

    DegradationLadder(const StackGeometry &geom,
                      const DegradationOptions &opts);

    /** A DUE was reported at `c`: offline its page, possibly escalate
     *  (no-op when offlinePagesOnDue is false). */
    Action onDue(const LineCoord &c);

    /** DDS refused to spare a fault contained in this bank. */
    Action onSparingDenied(StackId stack, ChannelId channel, BankId bank);

    /** A permanent fault (re-)arrived in this bank; counts a strike. */
    Action onRefault(StackId stack, ChannelId channel, BankId bank);

    /** Degrade a channel directly (channel-granularity fault with no
     *  spare path left). */
    Action degradeChannel(StackId stack, ChannelId channel);

    RetirementMap &map() { return map_; }
    const RetirementMap &map() const { return map_; }

    const DegradationOptions &options() const { return opts_; }

    void serialize(ByteSink &sink) const;
    void deserialize(ByteSource &src);

  private:
    DegradationOptions opts_;
    StackGeometry geom_;
    RetirementMap map_;
    std::map<u64, u32> strikes_; ///< bank key -> permanent arrivals.

    /** Retire a bank and climb to channel degrade if over cap. */
    Action retireBank(StackId stack, ChannelId channel, BankId bank);

    u64 bankKey(StackId s, ChannelId c, BankId b) const;
};

} // namespace citadel

#endif // CITADEL_RAS_DEGRADATION_H
