/**
 * @file
 * Lifetime soak campaigns: multi-year simulated aging of the live RAS
 * datapath, with deterministic checkpoint/resume.
 *
 * A campaign runs `shards` independent device lifetimes. Each shard
 * owns a full LiveRasDatapath (bit-true engines + control-plane
 * protection + degradation ladder), samples its fault history --
 * data-plane *and* control-plane -- from a counter-derived seed
 * (`seed ^ kSoakSeedMix * (shard + 1)`), compresses simulated hours to
 * cycles (`cyclesPerHour`), and ages event-driven: the stepper only
 * stops at fault arrivals, scrub boundaries, and periodic probe reads
 * that exercise the demand-correction path.
 *
 * Determinism contract (what the tests prove):
 *  - shard work depends only on (config, shard index), never on the
 *    worker that executes it, and results merge in shard order, so the
 *    campaign fingerprint is bit-identical across thread counts;
 *  - save()/load() round-trips the complete logical state of every
 *    shard (LiveRasDatapath::saveState + position), and the stepper's
 *    only loop state is the shard's cycle position, so a checkpointed
 *    + resumed campaign is bit-identical to an uninterrupted one.
 *
 * Each shard's bit-true model costs real memory; campaigns are meant
 * for reduced geometries (StackGeometry::tiny()).
 */

#ifndef CITADEL_RAS_SOAK_H
#define CITADEL_RAS_SOAK_H

#include <memory>
#include <vector>

#include "faults/injector.h"
#include "ras/live_datapath.h"

namespace citadel {

/** Campaign configuration. */
struct SoakConfig
{
    /** Geometry and timing of each shard's datapath. */
    SimConfig sim;

    /** Datapath options; scrubCycles == 0 is derived from
     *  faults.scrubHours * cyclesPerHour at campaign start. */
    LiveRasOptions ras;

    /** Fault-sampling configuration (FIT rates, metaFit, fractions).
     *  geom and lifetimeHours are overwritten from sim/years. */
    SystemConfig faults;

    double years = 5.0;   ///< Simulated lifetime per shard.
    u32 shards = 4;       ///< Independent device lifetimes.
    u64 seed = 1;         ///< Campaign master seed.

    /** Aging compression: simulated-hour to memory-cycle scale. */
    u64 cyclesPerHour = 2048;

    /** Probe reads per scrub epoch (deterministic pseudo-random
     *  addresses; they drive the demand-correction/DUE path). */
    u32 probesPerEpoch = 16;

    /** Worker threads; 0 resolves via citadelThreads(). */
    unsigned threads = 0;

    void validate() const;
};

/** Aggregated campaign outcome. */
struct SoakResult
{
    u32 shards = 0;
    double years = 0.0;
    double hoursSimulated = 0.0;

    RasCounters totals;          ///< Summed in shard order.
    u64 retiredLines = 0;        ///< Capacity given up, summed.
    double minCapacityFraction = 1.0; ///< Worst shard.

    /** Order-sensitive FNV-1a over per-shard state fingerprints: the
     *  bit-identity probe of the determinism tests. */
    u64 fingerprint = 0;

    std::string summary() const;
};

/** A running (or resumable) soak campaign. */
class SoakCampaign
{
  public:
    explicit SoakCampaign(const SoakConfig &cfg);

    SoakCampaign(const SoakCampaign &) = delete;
    SoakCampaign &operator=(const SoakCampaign &) = delete;
    ~SoakCampaign();

    /** Age every shard to `hours` (clamped to the lifetime); returns
     *  immediately when already there. Parallel over shards. */
    void advanceTo(double hours);

    /** Age every shard to end of life. */
    void runToEnd() { advanceTo(lifetimeHours_); }

    double hoursDone() const { return hoursDone_; }
    double lifetimeHours() const { return lifetimeHours_; }
    bool done() const { return hoursDone_ >= lifetimeHours_; }

    /** Aggregate the current state (valid at any point, not just at
     *  end of life). */
    SoakResult result() const;

    /** One shard's datapath (tests poke at it). */
    const LiveRasDatapath &shard(u32 index) const;

    /**
     * Checkpoint / restore the whole campaign. load() must be called
     * on a campaign constructed from the identical SoakConfig; shape
     * mismatches are fatal.
     */
    void save(ByteSink &sink) const;
    void load(ByteSource &src);

  private:
    struct Shard
    {
        std::unique_ptr<LiveRasDatapath> dp;
        u64 cycle = 0; ///< Stepper position (the only loop state).
    };

    SoakConfig cfg_;
    double lifetimeHours_;
    double hoursDone_ = 0.0;
    u64 probeEvery_; ///< Cycles between probe reads.
    std::vector<Shard> shards_;

    u64 cycleOf(double hours) const;
    LineAddr probeLine(u32 shard, u64 probe_index) const;
    void stepShard(u32 index, u64 end_cycle);
};

} // namespace citadel

#endif // CITADEL_RAS_SOAK_H
