#include "ras/soak.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/log.h"
#include "common/thread_pool.h"

namespace citadel {

namespace {

/** Per-shard seed derivation; a distinct mix from the Monte Carlo
 *  engine's so a soak shard never replays a Monte Carlo trial. */
constexpr u64 kSoakSeedMix = 0xD1B54A32D192ED03ull;

constexpr u32 kSoakMagic = 0x43534F4Bu; // "CSOK"
constexpr u32 kSoakVersion = 1;

/** Field-wise counter sum (RasCounters is a plain bag of u64s, but
 *  keep the order explicit so a new field cannot be silently missed
 *  in checkpointed totals). */
void
addCounters(RasCounters &acc, const RasCounters &c)
{
    acc.faultsInjected += c.faultsInjected;
    acc.faultsAbsorbed += c.faultsAbsorbed;
    acc.demandReads += c.demandReads;
    acc.remappedReads += c.remappedReads;
    acc.crcDetects += c.crcDetects;
    acc.retries += c.retries;
    acc.ce += c.ce;
    acc.due += c.due;
    acc.dueReads += c.dueReads;
    acc.sdc += c.sdc;
    acc.parityGroupReads += c.parityGroupReads;
    acc.linesReconstructed += c.linesReconstructed;
    acc.rowsSpared += c.rowsSpared;
    acc.banksSpared += c.banksSpared;
    acc.sparingDenied += c.sparingDenied;
    acc.tsvRepairs += c.tsvRepairs;
    acc.pagesOfflined += c.pagesOfflined;
    acc.banksRetired += c.banksRetired;
    acc.channelsDegraded += c.channelsDegraded;
    acc.retiredAbsorbed += c.retiredAbsorbed;
    acc.offlinedReads += c.offlinedReads;
    acc.metaFaultsInjected += c.metaFaultsInjected;
    acc.metaCorrected += c.metaCorrected;
    acc.metaMirrorRestored += c.metaMirrorRestored;
    acc.metaRecordsLost += c.metaRecordsLost;
    acc.metaScrubRetries += c.metaScrubRetries;
    acc.metaBackoffCycles += c.metaBackoffCycles;
    acc.parityCacheRefetches += c.parityCacheRefetches;
    acc.faultsReactivated += c.faultsReactivated;
    acc.divergences += c.divergences;
    acc.analyticConservative += c.analyticConservative;
}

} // namespace

void
SoakConfig::validate() const
{
    if (shards == 0)
        fatal("SoakConfig: shards must be >= 1");
    if (!(years > 0.0))
        fatal("SoakConfig: years must be positive");
    if (cyclesPerHour == 0)
        fatal("SoakConfig: cyclesPerHour must be >= 1");
    if (probesPerEpoch == 0)
        fatal("SoakConfig: probesPerEpoch must be >= 1");
}

std::string
SoakResult::summary() const
{
    std::ostringstream os;
    os << shards << " shards x " << years << "y ("
       << hoursSimulated << "h simulated) | " << totals.summary()
       << " | retiredLines=" << retiredLines
       << " minCapacity=" << minCapacityFraction
       << " fingerprint=0x" << std::hex << fingerprint;
    return os.str();
}

SoakCampaign::SoakCampaign(const SoakConfig &cfg)
    : cfg_(cfg), lifetimeHours_(cfg.years * kHoursPerYear)
{
    cfg_.validate();

    // Derive the in-run scrub cadence from the configured scrub
    // interval unless the caller pinned it.
    if (cfg_.ras.scrubCycles == 0) {
        const double scrub_h = std::max(cfg_.faults.scrubHours, 1e-6);
        cfg_.ras.scrubCycles =
            std::max<u64>(1, static_cast<u64>(scrub_h *
                                              cfg_.cyclesPerHour));
    }
    probeEvery_ = std::max<u64>(1, cfg_.ras.scrubCycles /
                                       cfg_.probesPerEpoch);

    // The injector samples over this campaign's geometry and horizon.
    SystemConfig fcfg = cfg_.faults;
    fcfg.geom = cfg_.sim.geom;
    fcfg.lifetimeHours = lifetimeHours_;
    fcfg.subArrayRows = std::min<u32>(fcfg.subArrayRows,
                                      cfg_.sim.geom.rowsPerBank);
    fcfg.validate();
    const FaultInjector injector(fcfg);

    shards_.resize(cfg_.shards);
    for (u32 s = 0; s < cfg_.shards; ++s) {
        LiveRasOptions opts = cfg_.ras;
        opts.seed = cfg_.seed ^ (kSoakSeedMix * (s + 1)) ^ 0x5EEDull;
        shards_[s].dp =
            std::make_unique<LiveRasDatapath>(cfg_.sim, opts);

        // Counter-derived shard seed: shard s always replays the same
        // lifetime no matter how many shards or threads run.
        Rng rng(cfg_.seed ^ (kSoakSeedMix * (s + 1)));
        for (const Fault &f : injector.sampleLifetime(rng))
            shards_[s].dp->scheduleFault(f, cycleOf(f.timeHours));
        for (const MetaFault &f : injector.sampleMetaLifetime(
                 rng, shards_[s].dp->metaGeometry()))
            shards_[s].dp->scheduleMetaFault(f, cycleOf(f.timeHours));
    }
}

SoakCampaign::~SoakCampaign() = default;

u64
SoakCampaign::cycleOf(double hours) const
{
    return static_cast<u64>(hours * cfg_.cyclesPerHour);
}

LineAddr
SoakCampaign::probeLine(u32 shard, u64 probe_index) const
{
    const u64 h = mix64((static_cast<u64>(shard) << 40) ^ probe_index ^
                        cfg_.seed);
    return LineAddr{h % cfg_.sim.geom.totalLines()};
}

void
SoakCampaign::stepShard(u32 index, u64 end_cycle)
{
    Shard &sh = shards_[index];
    LiveRasDatapath &dp = *sh.dp;
    u64 cycle = sh.cycle;
    while (cycle < end_cycle) {
        // Next stop: probe boundary, datapath event (fault arrival or
        // scrub), or the campaign horizon -- whichever comes first.
        const u64 next_probe =
            (cycle / probeEvery_ + 1) * probeEvery_;
        u64 next = std::min(next_probe, end_cycle);
        next = std::min(next, dp.nextEventCycle(cycle + 1));
        dp.tick(next);
        if (next == next_probe)
            dp.onDemandRead(probeLine(index, next / probeEvery_), next);
        cycle = next;
    }
    sh.cycle = end_cycle;
}

void
SoakCampaign::advanceTo(double hours)
{
    const double target = std::min(hours, lifetimeHours_);
    if (target <= hoursDone_)
        return;
    const u64 end_cycle = cycleOf(target);

    // TSA audit (DESIGN.md section 13): no CITADEL_GUARDED_BY fields
    // here by design. parallelFor partitions [0, shards) so each index
    // is visited exactly once per advance, stepShard(s) touches only
    // shards_[s], and hoursDone_ is written after the pool's joining
    // barrier. Result folds and checkpoints run strictly before or
    // after an advance, never during one.
    ThreadPool pool(cfg_.threads);
    pool.parallelFor(cfg_.shards, 1,
                     [&](u64 begin, u64 end, unsigned /*worker*/) {
                         for (u64 s = begin; s < end; ++s)
                             stepShard(static_cast<u32>(s), end_cycle);
                     });
    hoursDone_ = target;
}

const LiveRasDatapath &
SoakCampaign::shard(u32 index) const
{
    if (index >= shards_.size())
        fatal("SoakCampaign: shard %u out of range", index);
    return *shards_[index].dp;
}

SoakResult
SoakCampaign::result() const
{
    SoakResult res;
    res.shards = cfg_.shards;
    res.years = cfg_.years;
    res.hoursSimulated = hoursDone_ * cfg_.shards;
    res.fingerprint = 0xCBF29CE484222325ull;
    for (const Shard &sh : shards_) {
        addCounters(res.totals, sh.dp->counters());
        res.retiredLines += sh.dp->ladder().map().retiredLines();
        res.minCapacityFraction =
            std::min(res.minCapacityFraction,
                     sh.dp->ladder().map().capacityFraction());
        // Shard-order fold: any reordering or state drift moves it.
        const u64 fp = sh.dp->stateFingerprint();
        u8 bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] = static_cast<u8>(fp >> (8 * i));
        res.fingerprint = fnv1a(bytes, 8, res.fingerprint);
    }
    return res;
}

void
SoakCampaign::save(ByteSink &sink) const
{
    sink.putU32(kSoakMagic);
    sink.putU32(kSoakVersion);
    sink.putU32(cfg_.shards);
    sink.putDouble(hoursDone_);
    for (const Shard &sh : shards_) {
        sink.putU64(sh.cycle);
        sh.dp->saveState(sink);
    }
}

void
SoakCampaign::load(ByteSource &src)
{
    if (src.getU32() != kSoakMagic)
        fatal("SoakCampaign: bad checkpoint magic");
    if (src.getU32() != kSoakVersion)
        fatal("SoakCampaign: unsupported checkpoint version");
    if (src.getU32() != cfg_.shards)
        fatal("SoakCampaign: checkpoint shard count mismatch");
    hoursDone_ = src.getDouble();
    for (Shard &sh : shards_) {
        sh.cycle = src.getU64();
        sh.dp->loadState(src);
    }
}

} // namespace citadel
