#include "ras/ras_event.h"

#include <sstream>

namespace citadel {

const char *
rasEventTypeName(RasEventType t)
{
    switch (t) {
      case RasEventType::FaultInjected: return "fault-injected";
      case RasEventType::CorrectableError: return "CE";
      case RasEventType::UncorrectableError: return "DUE";
      case RasEventType::SilentCorruption: return "SDC";
      case RasEventType::RowSpared: return "row-spared";
      case RasEventType::BankSpared: return "bank-spared";
      case RasEventType::TsvRepaired: return "tsv-repaired";
      case RasEventType::SparingDenied: return "sparing-denied";
      case RasEventType::Divergence: return "DIVERGENCE";
      case RasEventType::PageOfflined: return "page-offlined";
      case RasEventType::BankRetired: return "bank-retired";
      case RasEventType::ChannelDegraded: return "channel-degraded";
      case RasEventType::MetaFaultInjected: return "meta-fault-injected";
      case RasEventType::MetaCorrected: return "meta-corrected";
      case RasEventType::MetaMirrorRestored: return "meta-mirror-restored";
      case RasEventType::MetaRecordLost: return "META-RECORD-LOST";
      case RasEventType::ParityCacheRefetched:
        return "parity-cache-refetched";
    }
    return "?";
}

std::string
RasEvent::describe() const
{
    std::ostringstream os;
    os << "[cycle " << cycle << "] " << rasEventTypeName(type);
    if (type == RasEventType::CorrectableError ||
        type == RasEventType::UncorrectableError ||
        type == RasEventType::SilentCorruption) {
        os << " line=" << line;
        if (dimUsed)
            os << " dim=D" << dimUsed;
        if (groupReads)
            os << " groupReads=" << groupReads;
    }
    if (!detail.empty())
        os << " (" << detail << ")";
    return os.str();
}

std::string
RasCounters::summary() const
{
    std::ostringstream os;
    os << "faults=" << faultsInjected << " (absorbed=" << faultsAbsorbed
       << ") demand=" << demandReads << " remapped=" << remappedReads
       << " detects=" << crcDetects << " | CE=" << ce << " DUE=" << due
       << " SDC=" << sdc << " | groupReads=" << parityGroupReads
       << " rowsSpared=" << rowsSpared << " banksSpared=" << banksSpared
       << " tsvRepairs=" << tsvRepairs << " divergences=" << divergences
       << " conservative=" << analyticConservative;
    if (pagesOfflined || banksRetired || channelsDegraded)
        os << " | ladder: pages=" << pagesOfflined
           << " banks=" << banksRetired
           << " channels=" << channelsDegraded
           << " retiredAbsorbed=" << retiredAbsorbed
           << " offlinedReads=" << offlinedReads;
    if (metaFaultsInjected)
        os << " | meta: injected=" << metaFaultsInjected
           << " corrected=" << metaCorrected
           << " mirrorRestored=" << metaMirrorRestored
           << " lost=" << metaRecordsLost
           << " retries=" << metaScrubRetries
           << " reactivated=" << faultsReactivated;
    return os.str();
}

void
RasLog::append(RasEvent ev)
{
    if (events_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(ev));
}

} // namespace citadel
