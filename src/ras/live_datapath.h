/**
 * @file
 * Live RAS datapath: the paper's runtime error flow, executed against
 * bit-true storage while the timing simulator runs.
 *
 * Faults (sampled by FaultInjector or built by hand) are scheduled at a
 * cycle and materialize as real bit corruption in a per-stack
 * ParityEngine. Every demand read the simulator completes is routed
 * through onDemandRead(), which walks the full Section V-VII flow:
 *
 *   CRC-32 detect -> read-retry -> 3DP peel-reconstruction (extra
 *   parity-group reads returned to the sim so they are charged as DRAM
 *   traffic and correction latency) -> DDS row/bank sparing so
 *   subsequent accesses are remapped -> TSV-SWAP absorbing TSV faults
 *   before they ever corrupt storage.
 *
 * An uncorrectable pattern is reported as a machine-check-style DUE
 * event with the line poisoned; the simulation continues. A
 * differential-validation mode cross-checks the bit-true verdict
 * (ParityEngine::peelable) against the analytic MultiDimParityScheme
 * verdict on every change of the active fault set. The analytic model
 * peels whole fault ranges and is therefore conservative: it may call
 * a set uncorrectable that the line-granularity peel recovers (counted
 * as analyticConservative). The reverse — analytic claims correctable
 * while the bit-true machine loses data — is a modeling bug, flagged
 * as a first-class Divergence event; tests require zero.
 *
 * Faithfulness notes:
 *  - transient faults keep their cells corrupt until the next scrub
 *    (FaultSim semantics), so an unspared transient line re-corrects
 *    on every access -- exactly the overhead DDS exists to remove;
 *  - the engine's state is always golden XOR (union of active fault
 *    masks); demand corrections are re-applied by rebuilding, keeping
 *    the bit-true and analytic models comparable at any instant.
 */

#ifndef CITADEL_RAS_LIVE_DATAPATH_H
#define CITADEL_RAS_LIVE_DATAPATH_H

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "citadel/citadel.h"
#include "citadel/parity_engine.h"
#include "citadel/remap_tables.h"
#include "common/serialize.h"
#include "faults/meta_fault.h"
#include "ras/degradation.h"
#include "ras/meta_protect.h"
#include "ras/poison_set.h"
#include "ras/ras_event.h"
#include "sim/ras_hook.h"
#include "sim/system_sim.h"

namespace citadel {

/** Configuration of the live datapath. */
struct LiveRasOptions
{
    /** Scheme composition and budgets (parity dims, TSV-SWAP, DDS). */
    CitadelOptions scheme;

    /** Cross-check analytic vs bit-true verdicts on every change of
     *  the active fault set; divergences are counted and logged. */
    bool differential = true;

    /** Scrub period in memory cycles; 0 disables in-run scrubs.
     *  (A real 12h scrub never fires inside a simulated slice; tests
     *  compress it.) */
    u64 scrubCycles = 0;

    /** Event-log capacity (counters are always exact). */
    std::size_t maxEvents = 256;

    /** Seed for the engines' pseudo-random memory images. */
    u64 seed = 42;

    /**
     * Refuse geometries whose byte-true model would exceed this
     * (storage is ~2x the modeled DRAM). Full HBM needs gigabytes;
     * the live datapath is meant for reduced geometries.
     */
    u64 maxModelBytes = 256ull << 20;

    /** Degradation-ladder thresholds (page offline -> bank retire ->
     *  channel degrade). */
    DegradationOptions degrade;

    /** Control-plane self-protection (scrub retry/backoff). */
    ProtectedMetaStore::Options meta;

    /** Modeled cached-D1-parity ways per stack (control-plane fault
     *  targets; contents always refetchable from the parity die). */
    u32 parityCacheWays = 8;

    /** Run cap of the bounded poison set (see ras/poison_set.h). */
    std::size_t poisonMaxRuns = 4096;
};

/**
 * Condensed health of one datapath, exported for layers above the
 * device (the fleet coordinator's placement/migration decisions).
 * Everything here is derived from existing state, so the snapshot is
 * deterministic wherever the datapath is.
 */
struct RasHealthSignals
{
    double capacityFraction = 1.0; ///< Usable fraction after the ladder.
    u64 retiredLines = 0;          ///< Capacity given up, in lines.
    u64 due = 0;                   ///< Distinct uncorrectable lines.
    u64 sparingDenied = 0;         ///< Spare-budget exhaustion events.
    u64 metaRecordsLost = 0;       ///< Control-plane records lost.
    u64 channelsDegraded = 0;      ///< Whole channels given up.

    /** Placement-grade health: the coordinator treats a stack below
     *  `floor` usable capacity as needing migration. */
    bool healthyAbove(double floor) const
    {
        return capacityFraction >= floor;
    }
};

/** The live datapath; attach to a SystemSim via attachRas(). */
class LiveRasDatapath final : public RasHook
{
  public:
    explicit LiveRasDatapath(const SimConfig &cfg,
                             const LiveRasOptions &opts = {});

    LiveRasDatapath(const LiveRasDatapath &) = delete;
    LiveRasDatapath &operator=(const LiveRasDatapath &) = delete;

    /** Arrange for `fault` to materialize at `cycle`. The fault's
     *  stack dimension must be exact. */
    void scheduleFault(const Fault &fault, u64 cycle);

    /** Arrange for a control-plane upset to land at `cycle`. The
     *  fault's coordinates must be inside metaGeometry(). */
    void scheduleMetaFault(const MetaFault &fault, u64 cycle);

    /** Slot ranges of the protected structures, for sampling
     *  control-plane faults that match this datapath. */
    MetaGeometry metaGeometry() const;

    // RasHook
    void tick(u64 cycle) override;
    DemandOutcome onDemandRead(LineAddr line, u64 cycle) override;
    u64 nextEventCycle(u64 now) const override;
    const RetirementMap *retirementMap() const override
    {
        return &ladder_.map();
    }

    /** Condensed health snapshot for fleet-level placement. */
    RasHealthSignals healthSignals() const;

    const RasLog &log() const { return log_; }
    const RasCounters &counters() const { return log_.counters; }
    const std::vector<Fault> &activeFaults() const { return active_; }
    const DegradationLadder &ladder() const { return ladder_; }
    const ProtectedMetaStore &metaStore() const { return meta_; }
    const BoundedPoisonSet &poisonSet() const { return poisoned_; }

    /** Is a line currently served from spare storage (RRT/BRT)? */
    bool lineIsRemapped(LineAddr line) const;

    /** The bit-true engine of one stack (tests poke at it). */
    const ParityEngine &engine(StackId stack) const;

    /**
     * Checkpoint the complete logical state: fault sets (active,
     * pending, pending-meta), remap tables, swap registers, poison
     * runs, ladder and meta-store state, and every counter. The
     * engines are NOT serialized -- their state is always derivable
     * (golden XOR active fault masks) and loadState() rebuilds them --
     * and the bounded event log is diagnostic only, so a resumed run
     * is bit-identical in state and counters, not in log text.
     */
    void saveState(ByteSink &sink) const;
    void loadState(ByteSource &src);

    /** FNV-1a over saveState() bytes: the resume-equivalence probe. */
    u64 stateFingerprint() const;

  private:
    SimConfig cfg_;
    LiveRasOptions opts_;
    AddressMap map_;
    u32 dies_; ///< Data + ECC dies per stack.

    // One bit-true model per stack (the engine is single-stack).
    std::vector<std::unique_ptr<ParityEngine>> engines_;

    // Analytic counterpart for differential validation.
    SystemConfig sysCfg_;
    MultiDimParityScheme analytic_;

    std::vector<Fault> active_;
    std::multimap<u64, Fault> pending_; ///< cycle -> scheduled fault.
    std::multimap<u64, MetaFault> pendingMeta_;

    // Sparing mechanism state (the Section VII-C tables, per stack).
    std::vector<RowRemapTable> rrt_;
    std::vector<BankRemapTable> brt_;
    std::vector<u32> spareRowCursor_;
    std::map<u64, u32> tsvUsed_; ///< (stack, channel) -> stand-by used.
    std::set<u64> tsvBroken_;    ///< Channels whose swap register died.

    /** Faults a live remap entry is covering, keyed by the entry's
     *  slot -- what reactivates when the entry's record is lost. */
    std::map<u64, Fault> rrtSpared_; ///< (stack, unit, slot) key.
    struct BrtSlotState
    {
        u32 unit = 0; ///< Decommissioned stack-global bank ordinal.
        std::vector<Fault> faults;
    };
    std::map<u64, BrtSlotState> brtSpared_;       ///< (stack, slot) key.
    std::map<u64, std::vector<Fault>> absorbedTsv_; ///< tsvUsed_ keys.

    DegradationLadder ladder_;
    ProtectedMetaStore meta_;

    BoundedPoisonSet poisoned_; ///< Lines already reported as DUE.
    u64 lastScrub_ = 0;
    RasLog log_;

    UnitId unitId(ChannelId channel, BankId bank) const;
    bool coordRemapped(const LineCoord &c) const;
    bool inSparedBank(const Fault &f) const;
    void materialize(const Fault &f, u64 cycle);
    void materializeMeta(const MetaFault &f, u64 cycle);
    void scrub(u64 cycle);

    /** Verify/repair the protected metadata; react to lost records. */
    void metaScrub(u64 cycle);

    /** Is the fault wholly contained in a retired region? */
    bool faultRetired(const Fault &f) const;

    /** Drop active faults swallowed by retirement (both models). */
    void dropRetired(u64 cycle);

    /** Count + log the rungs one ladder action climbed. */
    void noteLadder(const DegradationLadder::Action &act, u64 cycle,
                    FaultClass cls, const std::string &detail);

    /** Track a fault absorbed into an already-decommissioned bank. */
    void recordSparedBankAbsorb(const Fault &f);

    /** Retire one permanent single-bank fault into spare storage. */
    bool trySpare(const Fault &f, u64 cycle);

    /** Spare permanent faults covering a just-corrected coordinate. */
    void spareCovering(const LineCoord &c, u64 cycle);

    /** Reset engines to golden and re-apply the active fault set. */
    void rebuildEngines();

    void differentialCheck(u64 cycle);

    /** Addresses of the parity group that rebuilt `c` via `dim`. */
    void appendGroupReads(std::vector<LineAddr> &out, const LineCoord &c,
                          u32 dim) const;

    void logEvent(RasEvent ev);
};

} // namespace citadel

#endif // CITADEL_RAS_LIVE_DATAPATH_H
