/**
 * @file
 * Live RAS datapath: the paper's runtime error flow, executed against
 * bit-true storage while the timing simulator runs.
 *
 * Faults (sampled by FaultInjector or built by hand) are scheduled at a
 * cycle and materialize as real bit corruption in a per-stack
 * ParityEngine. Every demand read the simulator completes is routed
 * through onDemandRead(), which walks the full Section V-VII flow:
 *
 *   CRC-32 detect -> read-retry -> 3DP peel-reconstruction (extra
 *   parity-group reads returned to the sim so they are charged as DRAM
 *   traffic and correction latency) -> DDS row/bank sparing so
 *   subsequent accesses are remapped -> TSV-SWAP absorbing TSV faults
 *   before they ever corrupt storage.
 *
 * An uncorrectable pattern is reported as a machine-check-style DUE
 * event with the line poisoned; the simulation continues. A
 * differential-validation mode cross-checks the bit-true verdict
 * (ParityEngine::peelable) against the analytic MultiDimParityScheme
 * verdict on every change of the active fault set. The analytic model
 * peels whole fault ranges and is therefore conservative: it may call
 * a set uncorrectable that the line-granularity peel recovers (counted
 * as analyticConservative). The reverse — analytic claims correctable
 * while the bit-true machine loses data — is a modeling bug, flagged
 * as a first-class Divergence event; tests require zero.
 *
 * Faithfulness notes:
 *  - transient faults keep their cells corrupt until the next scrub
 *    (FaultSim semantics), so an unspared transient line re-corrects
 *    on every access -- exactly the overhead DDS exists to remove;
 *  - the engine's state is always golden XOR (union of active fault
 *    masks); demand corrections are re-applied by rebuilding, keeping
 *    the bit-true and analytic models comparable at any instant.
 */

#ifndef CITADEL_RAS_LIVE_DATAPATH_H
#define CITADEL_RAS_LIVE_DATAPATH_H

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "citadel/citadel.h"
#include "citadel/parity_engine.h"
#include "citadel/remap_tables.h"
#include "ras/ras_event.h"
#include "sim/ras_hook.h"
#include "sim/system_sim.h"

namespace citadel {

/** Configuration of the live datapath. */
struct LiveRasOptions
{
    /** Scheme composition and budgets (parity dims, TSV-SWAP, DDS). */
    CitadelOptions scheme;

    /** Cross-check analytic vs bit-true verdicts on every change of
     *  the active fault set; divergences are counted and logged. */
    bool differential = true;

    /** Scrub period in memory cycles; 0 disables in-run scrubs.
     *  (A real 12h scrub never fires inside a simulated slice; tests
     *  compress it.) */
    u64 scrubCycles = 0;

    /** Event-log capacity (counters are always exact). */
    std::size_t maxEvents = 256;

    /** Seed for the engines' pseudo-random memory images. */
    u64 seed = 42;

    /**
     * Refuse geometries whose byte-true model would exceed this
     * (storage is ~2x the modeled DRAM). Full HBM needs gigabytes;
     * the live datapath is meant for reduced geometries.
     */
    u64 maxModelBytes = 256ull << 20;
};

/** The live datapath; attach to a SystemSim via attachRas(). */
class LiveRasDatapath final : public RasHook
{
  public:
    explicit LiveRasDatapath(const SimConfig &cfg,
                             const LiveRasOptions &opts = {});

    LiveRasDatapath(const LiveRasDatapath &) = delete;
    LiveRasDatapath &operator=(const LiveRasDatapath &) = delete;

    /** Arrange for `fault` to materialize at `cycle`. The fault's
     *  stack dimension must be exact. */
    void scheduleFault(const Fault &fault, u64 cycle);

    // RasHook
    void tick(u64 cycle) override;
    DemandOutcome onDemandRead(LineAddr line, u64 cycle) override;
    u64 nextEventCycle(u64 now) const override;

    const RasLog &log() const { return log_; }
    const RasCounters &counters() const { return log_.counters; }
    const std::vector<Fault> &activeFaults() const { return active_; }

    /** Is a line currently served from spare storage (RRT/BRT)? */
    bool lineIsRemapped(LineAddr line) const;

    /** The bit-true engine of one stack (tests poke at it). */
    const ParityEngine &engine(StackId stack) const;

  private:
    SimConfig cfg_;
    LiveRasOptions opts_;
    AddressMap map_;
    u32 dies_; ///< Data + ECC dies per stack.

    // One bit-true model per stack (the engine is single-stack).
    std::vector<std::unique_ptr<ParityEngine>> engines_;

    // Analytic counterpart for differential validation.
    SystemConfig sysCfg_;
    MultiDimParityScheme analytic_;

    std::vector<Fault> active_;
    std::multimap<u64, Fault> pending_; ///< cycle -> scheduled fault.

    // Sparing mechanism state (the Section VII-C tables, per stack).
    std::vector<RowRemapTable> rrt_;
    std::vector<BankRemapTable> brt_;
    std::vector<u32> spareRowCursor_;
    std::map<u64, u32> tsvUsed_; ///< (stack, channel) -> stand-by used.

    std::set<LineAddr> poisoned_; ///< Lines already reported as DUE.
    u64 lastScrub_ = 0;
    RasLog log_;

    UnitId unitId(ChannelId channel, BankId bank) const;
    bool coordRemapped(const LineCoord &c) const;
    bool inSparedBank(const Fault &f) const;
    void materialize(const Fault &f, u64 cycle);
    void scrub(u64 cycle);

    /** Retire one permanent single-bank fault into spare storage. */
    bool trySpare(const Fault &f, u64 cycle);

    /** Spare permanent faults covering a just-corrected coordinate. */
    void spareCovering(const LineCoord &c, u64 cycle);

    /** Reset engines to golden and re-apply the active fault set. */
    void rebuildEngines();

    void differentialCheck(u64 cycle);

    /** Addresses of the parity group that rebuilt `c` via `dim`. */
    void appendGroupReads(std::vector<LineAddr> &out, const LineCoord &c,
                          u32 dim) const;

    void logEvent(RasEvent ev);
};

} // namespace citadel

#endif // CITADEL_RAS_LIVE_DATAPATH_H
