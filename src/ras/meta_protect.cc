#include "ras/meta_protect.h"

#include "common/log.h"
#include "ecc/secded.h"

namespace citadel {

ProtectedMetaStore::ProtectedMetaStore() : ProtectedMetaStore(Options()) {}

ProtectedMetaStore::ProtectedMetaStore(Options opts) : opts_(opts)
{
    if (opts_.retryMax == 0)
        fatal("ProtectedMetaStore: retryMax must be >= 1");
    if (opts_.backoffCycles == 0)
        fatal("ProtectedMetaStore: backoffCycles must be >= 1");
}

u64
ProtectedMetaStore::RecordKey::packed() const
{
    return (static_cast<u64>(target) << 56) |
           (static_cast<u64>(stack.value()) << 48) |
           (static_cast<u64>(unit.value()) << 16) | slot.value();
}

ProtectedMetaStore::RecordKey
ProtectedMetaStore::keyOf(const MetaFault &f)
{
    RecordKey key;
    key.target = f.target;
    key.stack = f.stack;
    switch (f.target) {
      case MetaTarget::RrtEntry:
        key.unit = f.unit;
        key.slot = f.slot;
        break;
      case MetaTarget::BrtEntry:
      case MetaTarget::ParityCacheLine:
        key.slot = f.slot;
        break;
      case MetaTarget::TsvRegister:
        // The redirection register is per channel; reuse the unit
        // field as its index so one packed-key scheme covers all four
        // structures.
        key.unit = UnitId{f.channel.value()};
        break;
    }
    return key;
}

void
ProtectedMetaStore::install(const RecordKey &key, u64 payload)
{
    Record rec;
    rec.payload = payload;
    rec.primary = payload;
    rec.mirror = payload;
    rec.primaryCheck = Secded::encode(payload);
    rec.mirrorCheck = rec.primaryCheck;
    records_[key.packed()] = rec;
    keys_[key.packed()] = key;
}

void
ProtectedMetaStore::remove(const RecordKey &key)
{
    records_.erase(key.packed());
    keys_.erase(key.packed());
}

bool
ProtectedMetaStore::exists(const RecordKey &key) const
{
    return records_.count(key.packed()) != 0;
}

u64
ProtectedMetaStore::payload(const RecordKey &key) const
{
    auto it = records_.find(key.packed());
    if (it == records_.end())
        fatal("ProtectedMetaStore: no record for key 0x%llx",
              static_cast<unsigned long long>(key.packed()));
    return it->second.payload;
}

ProtectedMetaStore::ApplyResult
ProtectedMetaStore::applyFault(const MetaFault &f)
{
    auto it = records_.find(keyOf(f).packed());
    if (it == records_.end())
        return ApplyResult::NoRecord;
    Record &rec = it->second;
    rec.primary ^= f.flipMask;
    rec.mirror ^= f.mirrorFlipMask;
    if (f.transient) {
        rec.primaryTransient ^= f.flipMask;
        rec.mirrorTransient ^= f.mirrorFlipMask;
    }
    return ApplyResult::Applied;
}

bool
ProtectedMetaStore::copyRecovers(u64 word, u8 check, u64 payload,
                                 bool &needed_correction)
{
    u64 w = word;
    const Secded::Outcome o = Secded::decode(w, check);
    if (o == Secded::Outcome::DetectedDouble)
        return false;
    needed_correction = (o == Secded::Outcome::Corrected);
    // The consistency half of the scrub: the decoded shadow must match
    // the canonical payload (the live logical entry). A SECDED
    // miscorrection fails this compare instead of slipping through.
    return w == payload;
}

ProtectedMetaStore::ScrubOutcome
ProtectedMetaStore::scrub()
{
    ScrubOutcome out;
    std::vector<u64> dead;

    for (auto &[packed, rec] : records_) {
        ++out.checked;
        u32 attempt = 0;
        bool healthy = false;
        while (true) {
            bool corrected = false;
            if (copyRecovers(rec.primary, rec.primaryCheck, rec.payload,
                             corrected)) {
                if (corrected)
                    ++out.corrected;
                healthy = true;
                break;
            }
            const bool hasTransient =
                (rec.primaryTransient | rec.mirrorTransient) != 0 ||
                (rec.primaryCheckTransient | rec.mirrorCheckTransient) !=
                    0;
            if (hasTransient && attempt < opts_.retryMax) {
                ++attempt;
                ++out.retries;
                out.backoffCyclesSpent += opts_.backoffCycles
                                          << (attempt - 1);
                // A re-read after backoff: transient strikes are gone.
                rec.primary ^= rec.primaryTransient;
                rec.mirror ^= rec.mirrorTransient;
                rec.primaryCheck = static_cast<u8>(
                    rec.primaryCheck ^ rec.primaryCheckTransient);
                rec.mirrorCheck = static_cast<u8>(
                    rec.mirrorCheck ^ rec.mirrorCheckTransient);
                rec.primaryTransient = rec.mirrorTransient = 0;
                rec.primaryCheckTransient = rec.mirrorCheckTransient = 0;
                continue;
            }
            if (copyRecovers(rec.mirror, rec.mirrorCheck, rec.payload,
                             corrected)) {
                ++out.mirrorRestores;
                healthy = true;
                break;
            }
            break; // Both copies unrecoverable: the record is lost.
        }

        if (healthy) {
            // Scrub rewrites both copies freshly encoded, so residual
            // mirror-only corruption does not accumulate.
            rec.primary = rec.payload;
            rec.mirror = rec.payload;
            rec.primaryCheck = Secded::encode(rec.payload);
            rec.mirrorCheck = rec.primaryCheck;
            rec.primaryTransient = rec.mirrorTransient = 0;
            rec.primaryCheckTransient = rec.mirrorCheckTransient = 0;
        } else {
            out.lost.push_back(keys_.at(packed));
            dead.push_back(packed);
        }
    }

    for (u64 packed : dead) {
        records_.erase(packed);
        keys_.erase(packed);
    }
    return out;
}

void
ProtectedMetaStore::serialize(ByteSink &sink) const
{
    sink.putU64(records_.size());
    for (const auto &[packed, rec] : records_) {
        const RecordKey &key = keys_.at(packed);
        sink.putU8(static_cast<u8>(key.target));
        sink.putU32(key.stack.value());
        sink.putU32(key.unit.value());
        sink.putU32(key.slot.value());
        sink.putU64(rec.payload);
        sink.putU64(rec.primary);
        sink.putU64(rec.mirror);
        sink.putU8(rec.primaryCheck);
        sink.putU8(rec.mirrorCheck);
        sink.putU64(rec.primaryTransient);
        sink.putU64(rec.mirrorTransient);
        sink.putU8(rec.primaryCheckTransient);
        sink.putU8(rec.mirrorCheckTransient);
    }
}

void
ProtectedMetaStore::deserialize(ByteSource &src)
{
    records_.clear();
    keys_.clear();
    const u64 n = src.getCount(57); // exact serialized record size
    for (u64 i = 0; i < n; ++i) {
        RecordKey key;
        key.target = static_cast<MetaTarget>(src.getU8());
        key.stack = StackId{src.getU32()};
        key.unit = UnitId{src.getU32()};
        key.slot = MetaSlotId{src.getU32()};
        Record rec;
        rec.payload = src.getU64();
        rec.primary = src.getU64();
        rec.mirror = src.getU64();
        rec.primaryCheck = src.getU8();
        rec.mirrorCheck = src.getU8();
        rec.primaryTransient = src.getU64();
        rec.mirrorTransient = src.getU64();
        rec.primaryCheckTransient = src.getU8();
        rec.mirrorCheckTransient = src.getU8();
        records_[key.packed()] = rec;
        keys_[key.packed()] = key;
    }
}

} // namespace citadel
