#include "ras/degradation.h"

#include "common/log.h"

namespace citadel {

DegradationLadder::DegradationLadder(const StackGeometry &geom,
                                     const DegradationOptions &opts)
    : opts_(opts), geom_(geom), map_(geom)
{
    if (opts_.strikesPerBank == 0)
        fatal("DegradationLadder: strikesPerBank must be >= 1");
    if (opts_.pagesPerBankCap == 0)
        fatal("DegradationLadder: pagesPerBankCap must be >= 1");
    if (opts_.retiredBanksPerChannelCap == 0)
        fatal("DegradationLadder: retiredBanksPerChannelCap must be >= 1");
}

u64
DegradationLadder::bankKey(StackId s, ChannelId c, BankId b) const
{
    return (static_cast<u64>(s.value()) << 16) |
           (static_cast<u64>(c.value()) << 8) | b.value();
}

DegradationLadder::Action
DegradationLadder::retireBank(StackId stack, ChannelId channel,
                              BankId bank)
{
    Action act;
    if (map_.retireBank(stack, channel, bank))
        act.bankRetired = true;
    if (map_.retiredBanksIn(stack, channel) >=
            opts_.retiredBanksPerChannelCap &&
        map_.degradeChannel(stack, channel))
        act.channelDegraded = true;
    return act;
}

DegradationLadder::Action
DegradationLadder::onDue(const LineCoord &c)
{
    Action act;
    if (!opts_.offlinePagesOnDue)
        return act;
    if (map_.offlineRow(c.stack, c.channel, c.bank, c.row))
        act.rowOfflined = true;
    if (map_.offlinedRowsIn(c.stack, c.channel, c.bank) >=
        opts_.pagesPerBankCap) {
        const Action up = retireBank(c.stack, c.channel, c.bank);
        act.bankRetired = up.bankRetired;
        act.channelDegraded = up.channelDegraded;
    }
    return act;
}

DegradationLadder::Action
DegradationLadder::onSparingDenied(StackId stack, ChannelId channel,
                                   BankId bank)
{
    return retireBank(stack, channel, bank);
}

DegradationLadder::Action
DegradationLadder::onRefault(StackId stack, ChannelId channel, BankId bank)
{
    Action act;
    const u32 n = ++strikes_[bankKey(stack, channel, bank)];
    if (n >= opts_.strikesPerBank)
        act = retireBank(stack, channel, bank);
    return act;
}

DegradationLadder::Action
DegradationLadder::degradeChannel(StackId stack, ChannelId channel)
{
    Action act;
    if (map_.degradeChannel(stack, channel))
        act.channelDegraded = true;
    return act;
}

void
DegradationLadder::serialize(ByteSink &sink) const
{
    map_.serialize(sink);
    sink.putU64(strikes_.size());
    for (const auto &[key, n] : strikes_) {
        sink.putU64(key);
        sink.putU32(n);
    }
}

void
DegradationLadder::deserialize(ByteSource &src)
{
    map_.deserialize(src);
    strikes_.clear();
    const u64 n = src.getCount(12);
    for (u64 i = 0; i < n; ++i) {
        const u64 key = src.getU64();
        strikes_[key] = src.getU32();
    }
}

} // namespace citadel
