/**
 * @file
 * Machine-check-style event log and per-run error accounting for the
 * live RAS datapath.
 *
 * Taxonomy follows the standard RAS vocabulary:
 *
 *  - CE  (corrected error): CRC-32 detected a bad line on a demand
 *    read and 3DP reconstruction returned data verified bit-identical
 *    to golden;
 *  - DUE (detected uncorrectable error): CRC detected the line but
 *    peeling stalled; the line is poisoned and reported, execution
 *    continues (no abort);
 *  - SDC (silent data corruption): reconstruction "succeeded" but the
 *    recovered bytes differ from golden -- the model's analogue of a
 *    miscorrection, counted so tests can assert it never happens.
 */

#ifndef CITADEL_RAS_RAS_EVENT_H
#define CITADEL_RAS_RAS_EVENT_H

#include <string>
#include <vector>

#include "faults/fault.h"

namespace citadel {

/** What kind of RAS event occurred. */
enum class RasEventType
{
    FaultInjected,      ///< A sampled fault materialized in storage.
    CorrectableError,   ///< CE: detected and corrected on demand.
    UncorrectableError, ///< DUE: detected, reported, poisoned.
    SilentCorruption,   ///< SDC: correction verified wrong vs golden.
    RowSpared,          ///< DDS retired a row into the RRT.
    BankSpared,         ///< DDS decommissioned a bank into the BRT.
    TsvRepaired,        ///< TSV-SWAP absorbed a TSV fault.
    SparingDenied,      ///< Spare budget exhausted; fault stays live.
    Divergence,         ///< Analytic and bit-true verdicts disagreed.
    PageOfflined,       ///< Ladder: a DUE'd row was retired.
    BankRetired,        ///< Ladder: a bank was taken out of service.
    ChannelDegraded,    ///< Ladder: a whole channel was given up.
    MetaFaultInjected,  ///< A control-plane upset materialized.
    MetaCorrected,      ///< Meta scrub: SECDED fixed a record.
    MetaMirrorRestored, ///< Meta scrub: primary rebuilt from mirror.
    MetaRecordLost,     ///< Meta scrub: both copies unrecoverable.
    ParityCacheRefetched, ///< Lost parity-cache way refetched clean.
};

const char *rasEventTypeName(RasEventType t);

/** One entry in the event log. */
struct RasEvent
{
    RasEventType type;
    u64 cycle = 0;       ///< Simulator cycle (0 when outside a run).
    LineAddr line{};     ///< Affected line address, when applicable.
    u32 dimUsed = 0;     ///< Parity dimension that corrected (CE only).
    u32 groupReads = 0;  ///< DRAM reads the correction consumed.
    FaultClass cls = FaultClass::Bit; ///< Class of the causing fault.
    std::string detail;  ///< Free-form context (fault description...).

    std::string describe() const;
};

/** Per-run totals; the run summary of the acceptance criteria. */
struct RasCounters
{
    u64 faultsInjected = 0;
    u64 faultsAbsorbed = 0; ///< Absorbed on arrival (TSV-SWAP, spared).
    u64 demandReads = 0;    ///< Reads routed through the datapath.
    u64 remappedReads = 0;  ///< Served from spare storage (RRT/BRT).
    u64 crcDetects = 0;     ///< CRC-32 mismatches on demand reads.
    u64 retries = 0;        ///< Read-retry issues (one per detect).
    u64 ce = 0;
    u64 due = 0;            ///< Distinct poisoned lines reported.
    u64 dueReads = 0;       ///< Demand reads returning poisoned data.
    u64 sdc = 0;
    u64 parityGroupReads = 0; ///< Reconstruction reads (charged to mem).
    u64 linesReconstructed = 0;
    u64 rowsSpared = 0;
    u64 banksSpared = 0;
    u64 sparingDenied = 0;
    u64 tsvRepairs = 0;

    // Degradation ladder (capacity given up instead of repaired).
    u64 pagesOfflined = 0;
    u64 banksRetired = 0;
    u64 channelsDegraded = 0;
    u64 retiredAbsorbed = 0; ///< Faults landing inside retired regions.
    u64 offlinedReads = 0;   ///< Demand reads steered off retired space.

    // Control-plane self-protection.
    u64 metaFaultsInjected = 0;
    u64 metaCorrected = 0;      ///< SECDED single-bit fixes at scrub.
    u64 metaMirrorRestored = 0; ///< Primary rebuilt from the mirror.
    u64 metaRecordsLost = 0;    ///< Both copies gone; entry dropped.
    u64 metaScrubRetries = 0;   ///< Read-retry attempts at meta scrub.
    u64 metaBackoffCycles = 0;  ///< Backoff cycles those retries cost.
    u64 parityCacheRefetches = 0;
    u64 faultsReactivated = 0;  ///< Data faults un-spared by meta loss.

    /**
     * Dangerous differential disagreements: the analytic model called
     * the active set correctable while the bit-true peel lost data.
     * Must stay zero — the Monte Carlo results rest on it.
     */
    u64 divergences = 0;

    /**
     * Benign disagreements in the other direction: the analytic model
     * (which peels whole fault ranges) called the set uncorrectable
     * while the line-granularity bit-true peel recovered it. Expected
     * occasionally — the Monte Carlo evaluator is conservative.
     */
    u64 analyticConservative = 0;

    std::string summary() const;
};

/**
 * Bounded event log: keeps the first `capacity` events and counts the
 * rest, so a fault storm cannot blow up memory while the counters stay
 * exact.
 */
class RasLog
{
  public:
    explicit RasLog(std::size_t capacity = 256) : capacity_(capacity) {}

    void append(RasEvent ev);

    const std::vector<RasEvent> &events() const { return events_; }
    u64 dropped() const { return dropped_; }

    RasCounters counters; ///< Updated by the datapath, never dropped.

  private:
    std::size_t capacity_;
    std::vector<RasEvent> events_;
    u64 dropped_ = 0;
};

} // namespace citadel

#endif // CITADEL_RAS_RAS_EVENT_H
