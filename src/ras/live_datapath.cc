#include "ras/live_datapath.h"

#include <algorithm>
#include <limits>

#include "common/log.h"

namespace citadel {

namespace {

/** Canonical payload words of the protected records. */
u64
packRrtPayload(RowId src, RowId spare)
{
    return (u64{1} << 63) | (static_cast<u64>(src.value()) << 32) |
           spare.value();
}

u64
packBrtPayload(UnitId unit, u32 spare_id)
{
    return (u64{1} << 63) | (static_cast<u64>(unit.value()) << 32) |
           spare_id;
}

/** Parity-cache ways carry a deterministic tag: the backing parity
 *  die always holds the clean copy, so the payload only needs to be
 *  reproducible for refetch. */
u64
packParityWayPayload(StackId stack, MetaSlotId way)
{
    return (static_cast<u64>(stack.value()) << 32) | way.value();
}

ProtectedMetaStore::RecordKey
rrtRecordKey(StackId stack, UnitId unit, MetaSlotId slot)
{
    return {MetaTarget::RrtEntry, stack, unit, slot};
}

ProtectedMetaStore::RecordKey
brtRecordKey(StackId stack, MetaSlotId slot)
{
    return {MetaTarget::BrtEntry, stack, UnitId{0}, slot};
}

ProtectedMetaStore::RecordKey
tsvRecordKey(StackId stack, ChannelId channel)
{
    return {MetaTarget::TsvRegister, stack, UnitId{channel.value()},
            MetaSlotId{0}};
}

ProtectedMetaStore::RecordKey
parityCacheRecordKey(StackId stack, MetaSlotId way)
{
    return {MetaTarget::ParityCacheLine, stack, UnitId{0}, way};
}

/** Keys of the spared-fault tracking maps. */
u64
rrtSparedKey(u32 stack, UnitId unit, MetaSlotId slot)
{
    return (static_cast<u64>(stack) << 40) |
           (static_cast<u64>(unit.value()) << 8) | slot.value();
}

u64
brtSparedKey(u32 stack, MetaSlotId slot)
{
    return (static_cast<u64>(stack) << 8) | slot.value();
}

void
putDim(ByteSink &sink, const DimSpec &d)
{
    sink.putU32(d.value);
    sink.putU32(d.mask);
}

DimSpec
getDim(ByteSource &src)
{
    DimSpec d;
    d.value = src.getU32();
    d.mask = src.getU32();
    return d;
}

void
putFault(ByteSink &sink, const Fault &f)
{
    putDim(sink, f.stack);
    putDim(sink, f.channel);
    putDim(sink, f.bank);
    putDim(sink, f.row);
    putDim(sink, f.col);
    putDim(sink, f.bit);
    sink.putU8(static_cast<u8>(f.cls));
    sink.putBool(f.transient);
    sink.putBool(f.fromTsv);
    sink.putDouble(f.timeHours);
    sink.putU32(f.tsvIndex.value());
}

Fault
getFault(ByteSource &src)
{
    Fault f;
    f.stack = getDim(src);
    f.channel = getDim(src);
    f.bank = getDim(src);
    f.row = getDim(src);
    f.col = getDim(src);
    f.bit = getDim(src);
    f.cls = static_cast<FaultClass>(src.getU8());
    f.transient = src.getBool();
    f.fromTsv = src.getBool();
    f.timeHours = src.getDouble();
    f.tsvIndex = TsvLane{src.getU32()};
    return f;
}

/** Serialized Fault size: 6 dims x 8 + 1 + 1 + 1 + 8 + 4. */
constexpr std::size_t kFaultBytes = 6 * 8 + 3 + 8 + 4;

/** Serialized MetaFault size: 1 + 4 x 4 + 8 + 8 + 1 + 8. */
constexpr std::size_t kMetaFaultBytes = 1 + 4 * 4 + 8 + 8 + 1 + 8;

void
putMetaFault(ByteSink &sink, const MetaFault &f)
{
    sink.putU8(static_cast<u8>(f.target));
    sink.putU32(f.stack.value());
    sink.putU32(f.channel.value());
    sink.putU32(f.unit.value());
    sink.putU32(f.slot.value());
    sink.putU64(f.flipMask);
    sink.putU64(f.mirrorFlipMask);
    sink.putBool(f.transient);
    sink.putDouble(f.timeHours);
}

MetaFault
getMetaFault(ByteSource &src)
{
    MetaFault f;
    f.target = static_cast<MetaTarget>(src.getU8());
    f.stack = StackId{src.getU32()};
    f.channel = ChannelId{src.getU32()};
    f.unit = UnitId{src.getU32()};
    f.slot = MetaSlotId{src.getU32()};
    f.flipMask = src.getU64();
    f.mirrorFlipMask = src.getU64();
    f.transient = src.getBool();
    f.timeHours = src.getDouble();
    return f;
}

void
putCounters(ByteSink &sink, const RasCounters &c)
{
    const u64 fields[] = {c.faultsInjected, c.faultsAbsorbed,
                          c.demandReads, c.remappedReads, c.crcDetects,
                          c.retries, c.ce, c.due, c.dueReads, c.sdc,
                          c.parityGroupReads, c.linesReconstructed,
                          c.rowsSpared, c.banksSpared, c.sparingDenied,
                          c.tsvRepairs, c.pagesOfflined, c.banksRetired,
                          c.channelsDegraded, c.retiredAbsorbed,
                          c.offlinedReads, c.metaFaultsInjected,
                          c.metaCorrected, c.metaMirrorRestored,
                          c.metaRecordsLost, c.metaScrubRetries,
                          c.metaBackoffCycles, c.parityCacheRefetches,
                          c.faultsReactivated, c.divergences,
                          c.analyticConservative};
    for (u64 v : fields)
        sink.putU64(v);
}

void
getCounters(ByteSource &src, RasCounters &c)
{
    u64 *fields[] = {&c.faultsInjected, &c.faultsAbsorbed,
                     &c.demandReads, &c.remappedReads, &c.crcDetects,
                     &c.retries, &c.ce, &c.due, &c.dueReads, &c.sdc,
                     &c.parityGroupReads, &c.linesReconstructed,
                     &c.rowsSpared, &c.banksSpared, &c.sparingDenied,
                     &c.tsvRepairs, &c.pagesOfflined, &c.banksRetired,
                     &c.channelsDegraded, &c.retiredAbsorbed,
                     &c.offlinedReads, &c.metaFaultsInjected,
                     &c.metaCorrected, &c.metaMirrorRestored,
                     &c.metaRecordsLost, &c.metaScrubRetries,
                     &c.metaBackoffCycles, &c.parityCacheRefetches,
                     &c.faultsReactivated, &c.divergences,
                     &c.analyticConservative};
    for (u64 *v : fields)
        *v = src.getU64();
}

constexpr u32 kCheckpointMagic = 0x43544C52u; // "CTLR"
constexpr u32 kCheckpointVersion = 1;

} // namespace

LiveRasDatapath::LiveRasDatapath(const SimConfig &cfg,
                                 const LiveRasOptions &opts)
    : cfg_(cfg), opts_(opts), map_(cfg.geom),
      dies_(cfg.geom.channelsPerStack + 1),
      analytic_(opts.scheme.parityDims),
      ladder_(cfg.geom, opts.degrade), meta_(opts.meta),
      poisoned_(opts.poisonMaxRuns), log_(opts.maxEvents)
{
    const StackGeometry &g = cfg_.geom;
    // Byte-true storage: data + golden + parity copies, per stack.
    const u64 model_bytes = 2 * static_cast<u64>(g.stacks) * dies_ *
                            g.banksPerChannel * g.rowsPerBank * g.rowBytes;
    if (model_bytes > opts_.maxModelBytes)
        fatal("LiveRasDatapath: geometry needs %llu model bytes "
              "(> %llu); use a reduced geometry such as "
              "StackGeometry::tiny()",
              static_cast<unsigned long long>(model_bytes),
              static_cast<unsigned long long>(opts_.maxModelBytes));

    sysCfg_.geom = g;
    sysCfg_.subArrayRows = std::min<u32>(sysCfg_.subArrayRows,
                                         g.rowsPerBank);
    sysCfg_.validate();
    analytic_.reset(sysCfg_);

    for (u32 s = 0; s < g.stacks; ++s) {
        StackGeometry one = g;
        one.stacks = 1;
        engines_.push_back(std::make_unique<ParityEngine>(
            one, opts_.seed ^ (0x9E3779B97F4A7C15ull * (s + 1))));
        rrt_.emplace_back(dies_ * g.banksPerChannel,
                          opts_.scheme.spareRowsPerBank);
        brt_.emplace_back(opts_.scheme.spareBanksPerStack);
        spareRowCursor_.push_back(0);
    }

    // Always-live control-plane records: one TSV redirection register
    // per data channel (payload = stand-by lanes in use) and the
    // modeled parity-cache ways.
    for (u32 s = 0; s < g.stacks; ++s) {
        for (u32 ch = 0; ch < g.channelsPerStack; ++ch)
            meta_.install(tsvRecordKey(StackId{s}, ChannelId{ch}), 0);
        for (u32 w = 0; w < opts_.parityCacheWays; ++w)
            meta_.install(
                parityCacheRecordKey(StackId{s}, MetaSlotId{w}),
                packParityWayPayload(StackId{s}, MetaSlotId{w}));
    }
}

MetaGeometry
LiveRasDatapath::metaGeometry() const
{
    MetaGeometry mg;
    mg.rrtSlotsPerUnit = opts_.scheme.spareRowsPerBank;
    mg.brtSlots = opts_.scheme.spareBanksPerStack;
    mg.parityCacheWays = opts_.parityCacheWays;
    return mg;
}

RasHealthSignals
LiveRasDatapath::healthSignals() const
{
    RasHealthSignals h;
    h.capacityFraction = ladder_.map().capacityFraction();
    h.retiredLines = ladder_.map().retiredLines();
    h.due = log_.counters.due;
    h.sparingDenied = log_.counters.sparingDenied;
    h.metaRecordsLost = log_.counters.metaRecordsLost;
    h.channelsDegraded = log_.counters.channelsDegraded;
    return h;
}

UnitId
LiveRasDatapath::unitId(ChannelId channel, BankId bank) const
{
    return UnitId{channel.value() * cfg_.geom.banksPerChannel +
                  bank.value()};
}

const ParityEngine &
LiveRasDatapath::engine(StackId stack) const
{
    if (stack.idx() >= engines_.size())
        panic("LiveRasDatapath: stack %u out of range", stack.value());
    return *engines_[stack.idx()];
}

void
LiveRasDatapath::logEvent(RasEvent ev)
{
    log_.append(std::move(ev));
}

void
LiveRasDatapath::scheduleFault(const Fault &fault, u64 cycle)
{
    if (fault.stack.mask != 0xFFFFFFFFu ||
        fault.stack.value >= cfg_.geom.stacks)
        fatal("scheduleFault: fault must name one existing stack (%s)",
              fault.describe().c_str());
    pending_.emplace(cycle, fault);
}

void
LiveRasDatapath::scheduleMetaFault(const MetaFault &fault, u64 cycle)
{
    const MetaGeometry mg = metaGeometry();
    const StackGeometry &g = cfg_.geom;
    if (fault.stack.value() >= g.stacks)
        fatal("scheduleMetaFault: stack out of range (%s)",
              fault.describe().c_str());
    switch (fault.target) {
      case MetaTarget::RrtEntry:
        if (fault.unit.value() >= dies_ * g.banksPerChannel ||
            fault.slot.value() >= mg.rrtSlotsPerUnit)
            fatal("scheduleMetaFault: RRT coordinate out of range (%s)",
                  fault.describe().c_str());
        break;
      case MetaTarget::BrtEntry:
        if (fault.slot.value() >= mg.brtSlots)
            fatal("scheduleMetaFault: BRT slot out of range (%s)",
                  fault.describe().c_str());
        break;
      case MetaTarget::TsvRegister:
        if (fault.channel.value() >= g.channelsPerStack)
            fatal("scheduleMetaFault: channel out of range (%s)",
                  fault.describe().c_str());
        break;
      case MetaTarget::ParityCacheLine:
        if (fault.slot.value() >= mg.parityCacheWays)
            fatal("scheduleMetaFault: parity way out of range (%s)",
                  fault.describe().c_str());
        break;
    }
    pendingMeta_.emplace(cycle, fault);
}

void
LiveRasDatapath::tick(u64 cycle)
{
    while (!pending_.empty() && pending_.begin()->first <= cycle) {
        const Fault f = pending_.begin()->second;
        pending_.erase(pending_.begin());
        materialize(f, cycle);
    }
    while (!pendingMeta_.empty() && pendingMeta_.begin()->first <= cycle) {
        const MetaFault f = pendingMeta_.begin()->second;
        pendingMeta_.erase(pendingMeta_.begin());
        materializeMeta(f, cycle);
    }
    if (opts_.scrubCycles != 0 &&
        cycle >= lastScrub_ + opts_.scrubCycles) {
        lastScrub_ = cycle;
        scrub(cycle);
    }
}

u64
LiveRasDatapath::nextEventCycle(u64 now) const
{
    // Mirror of tick(): the next fault materialization and the next
    // scrub boundary are the only cycle-driven actions. A due-but-
    // unfired event clamps to `now` so the event loop never skips it.
    u64 next = std::numeric_limits<u64>::max();
    if (!pending_.empty())
        next = std::max(now, pending_.begin()->first);
    if (!pendingMeta_.empty())
        next = std::min(next, std::max(now, pendingMeta_.begin()->first));
    if (opts_.scrubCycles != 0)
        next = std::min(next, std::max(now, lastScrub_ + opts_.scrubCycles));
    return next;
}

void
LiveRasDatapath::materialize(const Fault &f, u64 cycle)
{
    ++log_.counters.faultsInjected;
    logEvent({RasEventType::FaultInjected, cycle, LineAddr{}, 0, 0, f.cls,
              f.describe()});

    // TSV-SWAP absorbs TSV faults while stand-by budget remains AND
    // the channel's redirection register is still alive; the register
    // steers around the faulty TSV before any data is lost (Section V).
    if (opts_.scheme.enableTsvSwap && f.fromTsv) {
        const u64 key = (static_cast<u64>(f.stack.value) << 32) |
                        f.channel.value;
        if (tsvBroken_.count(key) == 0) {
            u32 &used = tsvUsed_[key];
            if (used < opts_.scheme.standbyTsvsPerChannel) {
                ++used;
                ++log_.counters.tsvRepairs;
                ++log_.counters.faultsAbsorbed;
                absorbedTsv_[key].push_back(f);
                // The register's protected shadow tracks its content.
                meta_.install(tsvRecordKey(StackId{f.stack.value},
                                           ChannelId{f.channel.value}),
                              used);
                logEvent({RasEventType::TsvRepaired, cycle, LineAddr{}, 0,
                          0, f.cls, f.describe()});
                return;
            }
        }
    }

    // Faults inside an already-decommissioned bank never touch live
    // data: the spare bank serves it. Track them against the BRT slot
    // so a lost BRT record reactivates them with the original fault.
    if (opts_.scheme.enableDds && inSparedBank(f)) {
        ++log_.counters.faultsAbsorbed;
        recordSparedBankAbsorb(f);
        return;
    }

    // Faults wholly inside a region the ladder already retired touch
    // no live data either; the capacity is gone, not at risk.
    if (faultRetired(f)) {
        ++log_.counters.faultsAbsorbed;
        ++log_.counters.retiredAbsorbed;
        return;
    }

    // A bank that keeps collecting permanent faults *after* DDS has
    // already repaired it (live RRT entries) is a re-faulting region:
    // strike it, and past the threshold retire it proactively instead
    // of burning more spares on it. First-time faults go to the spare
    // pipeline untouched.
    if (!f.transient && f.stack.mask == 0xFFFFFFFFu &&
        f.channel.mask == 0xFFFFFFFFu && f.bank.mask == 0xFFFFFFFFu &&
        f.channel.value < cfg_.geom.channelsPerStack &&
        f.bank.value < cfg_.geom.banksPerChannel &&
        rrt_[f.stack.value].used(unitId(ChannelId{f.channel.value},
                                        BankId{f.bank.value})) > 0) {
        const DegradationLadder::Action act = ladder_.onRefault(
            StackId{f.stack.value}, ChannelId{f.channel.value},
            BankId{f.bank.value});
        noteLadder(act, cycle, f.cls, f.describe());
        if (act.any() && faultRetired(f)) {
            ++log_.counters.faultsAbsorbed;
            ++log_.counters.retiredAbsorbed;
            dropRetired(cycle);
            rebuildEngines();
            differentialCheck(cycle);
            return;
        }
    }

    active_.push_back(f);
    rebuildEngines();
    differentialCheck(cycle);
}

void
LiveRasDatapath::materializeMeta(const MetaFault &f, u64 cycle)
{
    ++log_.counters.metaFaultsInjected;
    logEvent({RasEventType::MetaFaultInjected, cycle, LineAddr{}, 0, 0,
              FaultClass::Bit, f.describe()});

    if (meta_.applyFault(f) == ProtectedMetaStore::ApplyResult::NoRecord) {
        // The strike hit an idle slot: there is no stored payload to
        // protect, but a permanent defect makes the SRAM unusable, so
        // retire the slot from future allocation right away.
        if (!f.transient) {
            if (f.target == MetaTarget::RrtEntry)
                rrt_[f.stack.idx()].killSlot(f.unit, f.slot);
            else if (f.target == MetaTarget::BrtEntry)
                brt_[f.stack.idx()].killSlot(f.slot);
        }
    }
}

void
LiveRasDatapath::recordSparedBankAbsorb(const Fault &f)
{
    if (f.stack.mask != 0xFFFFFFFFu || f.channel.mask != 0xFFFFFFFFu ||
        f.bank.mask != 0xFFFFFFFFu)
        return;
    const u32 stack = f.stack.value;
    const UnitId unit = unitId(ChannelId{f.channel.value},
                               BankId{f.bank.value});
    const auto slot = brt_[stack].slotOf(unit);
    if (!slot)
        return;
    BrtSlotState &st = brtSpared_[brtSparedKey(stack, *slot)];
    st.unit = unit.value();
    st.faults.push_back(f);
}

void
LiveRasDatapath::scrub(u64 cycle)
{
    // Scrub rewrites every line from corrected data: transient faults
    // vanish; DDS retires permanent ones into spare storage.
    std::erase_if(active_, [](const Fault &f) { return f.transient; });

    // The consistency scrub verifies the control plane first, so a
    // corrupted RRT/BRT/swap record cannot steer the data pass below
    // (and faults reactivated by a lost record re-enter the spare
    // pipeline in the same pass).
    metaScrub(cycle);

    if (opts_.scheme.enableDds) {
        std::erase_if(active_, [&](const Fault &f) {
            if (inSparedBank(f)) {
                recordSparedBankAbsorb(f);
                return true;
            }
            if (trySpare(f, cycle))
                return true;
            ++log_.counters.sparingDenied;
            logEvent({RasEventType::SparingDenied, cycle, LineAddr{}, 0, 0, f.cls,
                      f.describe()});
            // Spare budget exhausted: stop repairing, start retiring
            // capacity (the ladder's SparingDenied rung). Only the
            // OS-visible data space can be retired; parity-die faults
            // stay active and weaken coverage instead.
            if (!f.transient && f.stack.mask == 0xFFFFFFFFu &&
                f.channel.mask == 0xFFFFFFFFu &&
                f.channel.value < cfg_.geom.channelsPerStack) {
                DegradationLadder::Action act;
                if (f.bank.mask == 0xFFFFFFFFu &&
                    f.bank.value < cfg_.geom.banksPerChannel)
                    act = ladder_.onSparingDenied(
                        StackId{f.stack.value}, ChannelId{f.channel.value},
                        BankId{f.bank.value});
                else if (f.bank.mask != 0xFFFFFFFFu)
                    act = ladder_.degradeChannel(
                        StackId{f.stack.value}, ChannelId{f.channel.value});
                noteLadder(act, cycle, f.cls, f.describe());
            }
            return false;
        });
        std::erase_if(active_,
                      [&](const Fault &f) { return inSparedBank(f); });
    }

    dropRetired(cycle);
    rebuildEngines();
    differentialCheck(cycle);
}

void
LiveRasDatapath::metaScrub(u64 cycle)
{
    const ProtectedMetaStore::ScrubOutcome out = meta_.scrub();
    log_.counters.metaCorrected += out.corrected;
    log_.counters.metaScrubRetries += out.retries;
    log_.counters.metaBackoffCycles += out.backoffCyclesSpent;
    log_.counters.metaMirrorRestored += out.mirrorRestores;
    if (out.corrected)
        logEvent({RasEventType::MetaCorrected, cycle, LineAddr{}, 0, 0,
                  FaultClass::Bit,
                  std::to_string(out.corrected) + " records"});
    if (out.mirrorRestores)
        logEvent({RasEventType::MetaMirrorRestored, cycle, LineAddr{}, 0,
                  0, FaultClass::Bit,
                  std::to_string(out.mirrorRestores) + " records"});

    for (const ProtectedMetaStore::RecordKey &key : out.lost) {
        ++log_.counters.metaRecordsLost;
        logEvent({RasEventType::MetaRecordLost, cycle, LineAddr{}, 0, 0,
                  FaultClass::Bit, metaTargetName(key.target)});
        switch (key.target) {
          case MetaTarget::RrtEntry: {
            // The remap entry is gone and its SRAM is suspect: retire
            // the slot and put the fault it covered back in play so
            // both models keep seeing the same world.
            rrt_[key.stack.idx()].killSlot(key.unit, key.slot);
            const auto it = rrtSpared_.find(
                rrtSparedKey(key.stack.value(), key.unit, key.slot));
            if (it != rrtSpared_.end()) {
                active_.push_back(it->second);
                ++log_.counters.faultsReactivated;
                rrtSpared_.erase(it);
            }
            break;
          }
          case MetaTarget::BrtEntry: {
            brt_[key.stack.idx()].killSlot(key.slot);
            const auto it = brtSpared_.find(
                brtSparedKey(key.stack.value(), key.slot));
            if (it != brtSpared_.end()) {
                for (const Fault &f : it->second.faults) {
                    active_.push_back(f);
                    ++log_.counters.faultsReactivated;
                }
                brtSpared_.erase(it);
            }
            break;
          }
          case MetaTarget::TsvRegister: {
            // unit doubles as the channel index for TSV records.
            const u64 k = (static_cast<u64>(key.stack.value()) << 32) |
                          key.unit.value();
            tsvBroken_.insert(k);
            tsvUsed_.erase(k);
            const auto it = absorbedTsv_.find(k);
            if (it != absorbedTsv_.end()) {
                for (const Fault &f : it->second) {
                    active_.push_back(f);
                    ++log_.counters.faultsReactivated;
                }
                absorbedTsv_.erase(it);
            }
            break;
          }
          case MetaTarget::ParityCacheLine:
            // The parity die always holds a clean copy: refetch and
            // reinstall instead of escalating.
            ++log_.counters.parityCacheRefetches;
            logEvent({RasEventType::ParityCacheRefetched, cycle,
                      LineAddr{}, 0, 0, FaultClass::Bit, ""});
            meta_.install(parityCacheRecordKey(key.stack, key.slot),
                          packParityWayPayload(key.stack, key.slot));
            break;
        }
    }
}

bool
LiveRasDatapath::faultRetired(const Fault &f) const
{
    if (f.stack.mask != 0xFFFFFFFFu || f.channel.mask != 0xFFFFFFFFu)
        return false;
    const RetirementMap &m = ladder_.map();
    const StackId s{f.stack.value};
    const ChannelId ch{f.channel.value};
    if (m.channelDegraded(s, ch))
        return true;
    if (f.bank.mask != 0xFFFFFFFFu)
        return false;
    const BankId b{f.bank.value};
    if (m.bankRetired(s, ch, b))
        return true;
    if (f.rowsCovered(cfg_.geom) == 1)
        return m.rowOffline(s, ch, b,
                            RowId{f.row.value & (cfg_.geom.rowsPerBank - 1)});
    return false;
}

void
LiveRasDatapath::dropRetired(u64 /*cycle*/)
{
    const std::size_t before = active_.size();
    std::erase_if(active_, [&](const Fault &f) { return faultRetired(f); });
    log_.counters.retiredAbsorbed += before - active_.size();
}

void
LiveRasDatapath::noteLadder(const DegradationLadder::Action &act,
                            u64 cycle, FaultClass cls,
                            const std::string &detail)
{
    if (act.rowOfflined) {
        ++log_.counters.pagesOfflined;
        logEvent({RasEventType::PageOfflined, cycle, LineAddr{}, 0, 0,
                  cls, detail});
    }
    if (act.bankRetired) {
        ++log_.counters.banksRetired;
        logEvent({RasEventType::BankRetired, cycle, LineAddr{}, 0, 0,
                  cls, detail});
    }
    if (act.channelDegraded) {
        ++log_.counters.channelsDegraded;
        logEvent({RasEventType::ChannelDegraded, cycle, LineAddr{}, 0, 0,
                  cls, detail});
    }
}

bool
LiveRasDatapath::inSparedBank(const Fault &f) const
{
    if (f.stack.mask != 0xFFFFFFFFu || f.channel.mask != 0xFFFFFFFFu ||
        f.bank.mask != 0xFFFFFFFFu)
        return false;
    if (f.stack.value >= brt_.size())
        return false;
    return brt_[f.stack.value]
        .lookup(unitId(ChannelId{f.channel.value}, BankId{f.bank.value}))
        .has_value();
}

bool
LiveRasDatapath::trySpare(const Fault &f, u64 cycle)
{
    if (f.transient)
        return false; // transients clear at scrub; nothing to retire
    if (f.stack.mask != 0xFFFFFFFFu || f.channel.mask != 0xFFFFFFFFu ||
        f.bank.mask != 0xFFFFFFFFu)
        return false; // multi-bank faults have no single spare target
    const u32 stack = f.stack.value;
    const UnitId unit = unitId(ChannelId{f.channel.value},
                               BankId{f.bank.value});

    if (f.rowsCovered(cfg_.geom) == 1) {
        const RowId row{f.row.value & (cfg_.geom.rowsPerBank - 1)};
        u32 &cursor = spareRowCursor_[stack];
        const RowId spare{cursor % cfg_.geom.rowsPerBank};
        const auto slot = rrt_[stack].insertSlot(unit, row, spare);
        if (slot) {
            ++cursor;
            ++log_.counters.rowsSpared;
            // Shadow the live entry word and remember the fault it
            // covers, so a lost record can reactivate it.
            meta_.install(rrtRecordKey(StackId{stack}, unit, *slot),
                          packRrtPayload(row, spare));
            rrtSpared_[rrtSparedKey(stack, unit, *slot)] = f;
            logEvent({RasEventType::RowSpared, cycle, LineAddr{}, 0, 0, f.cls,
                      f.describe()});
            return true;
        }
        // RRT exhausted: the bank has failed; escalate (Section VII-C).
    }

    const u32 spareId = brt_[stack].used();
    const auto slot = brt_[stack].insertSlot(unit, spareId);
    if (slot) {
        ++log_.counters.banksSpared;
        meta_.install(brtRecordKey(StackId{stack}, *slot),
                      packBrtPayload(unit, spareId));
        BrtSlotState &st = brtSpared_[brtSparedKey(stack, *slot)];
        st.unit = unit.value();
        st.faults.push_back(f);
        logEvent({RasEventType::BankSpared, cycle, LineAddr{}, 0, 0, f.cls,
                  f.describe()});
        return true;
    }
    return false;
}

void
LiveRasDatapath::spareCovering(const LineCoord &c, u64 cycle)
{
    // A corrected permanent fault would re-correct on every access;
    // retire the covering fault(s) into spare storage now (the paper
    // batches this at scrub time; demand-time retirement gives the
    // remap the paper's steady-state behavior within a short run).
    std::erase_if(active_, [&](const Fault &f) {
        if (f.transient)
            return false;
        if (f.stack.mask != 0xFFFFFFFFu ||
            f.channel.mask != 0xFFFFFFFFu ||
            f.bank.mask != 0xFFFFFFFFu)
            return false;
        if (StackId{f.stack.value} != c.stack ||
            ChannelId{f.channel.value} != c.channel ||
            BankId{f.bank.value} != c.bank ||
            !f.row.matches(c.row.value()))
            return false;
        return trySpare(f, cycle);
    });
    std::erase_if(active_,
                  [&](const Fault &f) { return inSparedBank(f); });
}

bool
LiveRasDatapath::coordRemapped(const LineCoord &c) const
{
    if (brt_[c.stack.idx()]
            .lookup(unitId(c.channel, c.bank))
            .has_value())
        return true;
    return rrt_[c.stack.idx()]
        .lookup(unitId(c.channel, c.bank), c.row)
        .has_value();
}

bool
LiveRasDatapath::lineIsRemapped(LineAddr line) const
{
    if (line >= map_.parityBase())
        return false;
    return coordRemapped(map_.lineToCoord(line));
}

void
LiveRasDatapath::rebuildEngines()
{
    for (u32 s = 0; s < cfg_.geom.stacks; ++s) {
        std::vector<Fault> local;
        for (const Fault &f : active_)
            if (f.stack.matches(s))
                local.push_back(f);
        engines_[s]->restore();
        engines_[s]->corrupt(local);
    }
}

void
LiveRasDatapath::differentialCheck(u64 cycle)
{
    if (!opts_.differential)
        return;
    const bool analytic_unc = analytic_.uncorrectable(active_);
    bool bit_unc = false;
    for (const auto &e : engines_)
        if (!e->peelable(opts_.scheme.parityDims)) {
            bit_unc = true;
            break;
        }
    if (analytic_unc == bit_unc)
        return;
    if (analytic_unc && !bit_unc) {
        // The analytic evaluator peels whole fault ranges; the bit-true
        // engine peels line by line and can make partial progress
        // through one dimension before finishing in another. The
        // analytic verdict is therefore conservative — safe, and not a
        // modeling bug.
        ++log_.counters.analyticConservative;
        return;
    }
    // The dangerous direction: the Monte Carlo model claims the
    // pattern is correctable while the bit-true machine lost data.
    ++log_.counters.divergences;
    const std::string detail =
        "analytic=OK bit-true=UNC (" +
        std::to_string(active_.size()) + " faults)";
    logEvent({RasEventType::Divergence, cycle, LineAddr{}, 0, 0,
              FaultClass::Bit, detail});
    warn("live-ras: analytic/bit-true divergence at cycle %llu: %s",
         static_cast<unsigned long long>(cycle), detail.c_str());
}

void
LiveRasDatapath::appendGroupReads(std::vector<LineAddr> &out,
                                  const LineCoord &c, u32 dim) const
{
    // Sibling lines of the parity group the controller XORs to rebuild
    // the target. Lines on the ECC/metadata die are real DRAM reads
    // too, but live outside the system address space the timing model
    // knows, so only system-addressable lines are charged.
    const StackGeometry &g = cfg_.geom;
    const LineAddr line = map_.coordToLine(c);
    switch (dim) {
      case 1:
        for (u32 ch = 0; ch < g.channelsPerStack; ++ch)
            for (u32 b = 0; b < g.banksPerChannel; ++b) {
                const ChannelId cch{ch};
                const BankId cb{b};
                if (cch == c.channel && cb == c.bank)
                    continue;
                out.push_back(map_.coordToLine(
                    {c.stack, cch, cb, c.row, c.col}));
            }
        out.push_back(map_.d1ParityLine(line));
        break;
      case 2:
        for (u32 b = 0; b < g.banksPerChannel; ++b)
            for (u32 r = 0; r < g.rowsPerBank; ++r) {
                const BankId cb{b};
                const RowId cr{r};
                if (cb == c.bank && cr == c.row)
                    continue;
                out.push_back(map_.coordToLine(
                    {c.stack, c.channel, cb, cr, c.col}));
            }
        break;
      case 3:
        for (u32 ch = 0; ch < g.channelsPerStack; ++ch)
            for (u32 r = 0; r < g.rowsPerBank; ++r) {
                const ChannelId cch{ch};
                const RowId cr{r};
                if (cch == c.channel && cr == c.row)
                    continue;
                out.push_back(map_.coordToLine(
                    {c.stack, cch, c.bank, cr, c.col}));
            }
        if (c.bank == BankId{0}) {
            // Bank position 0's D3 group includes the parity store.
            for (u32 r = 0; r < g.rowsPerBank; ++r)
                out.push_back(map_.parityLineOf(
                    map_.d1GroupOf(c.stack, RowId{r}, c.col)));
        }
        break;
      default:
        break;
    }
}

DemandOutcome
LiveRasDatapath::onDemandRead(LineAddr line, u64 cycle)
{
    DemandOutcome out;
    ++log_.counters.demandReads;
    if (line >= map_.parityBase())
        return out; // parity traffic is covered by the writeback path

    const LineCoord c = map_.lineToCoord(line);
    if (ladder_.map().retired(c)) {
        // The sim already steered this access to a healthy stand-in
        // (MemorySystem routes through the RetirementMap); the retired
        // region's faults are out of both models, so the read is clean.
        ++log_.counters.offlinedReads;
        return out;
    }
    if (opts_.scheme.enableDds && coordRemapped(c)) {
        // RRT/BRT hit: the access is served by healthy spare storage.
        ++log_.counters.remappedReads;
        return out;
    }

    ParityEngine &eng = *engines_[c.stack.idx()];
    // The HBM channel/die identity: each channel's data lives on its
    // own die, so the engine's die coordinate is the named conversion
    // of the channel (the engine reserves die channelsPerStack for the
    // parity/metadata unit).
    const DieId die = dieOf(c.channel);
    if (!eng.lineCorruptAt(die, c.bank, c.row, c.col))
        return out;

    // CRC-32 mismatch: read-retry first (a transient bus glitch would
    // clear; a storage fault persists, Section V), then reconstruct.
    ++log_.counters.crcDetects;
    ++log_.counters.retries;
    out.extraReads.push_back(line);

    const ParityEngine::DemandFix fix = eng.correctLine(
        die, c.bank, c.row, c.col, opts_.scheme.parityDims);

    FaultClass cls = FaultClass::Bit;
    for (const Fault &f : active_)
        if (f.stack.matches(c.stack.value()) &&
            f.channel.matches(c.channel.value()) &&
            f.bank.matches(c.bank.value()) &&
            f.row.matches(c.row.value()) &&
            f.col.matches(c.col.value())) {
            cls = f.cls;
            break;
        }

    if (!fix.corrected) {
        // DUE: report once per line, poison, keep running. The ladder
        // offlines the page so the OS-analogue steers future traffic
        // off it instead of re-reporting forever.
        out.kind = DemandOutcome::Kind::Uncorrectable;
        ++log_.counters.dueReads;
        bool setChanged = false;
        if (poisoned_.insert(line)) {
            ++log_.counters.due;
            logEvent({RasEventType::UncorrectableError, cycle, line, 0,
                      fix.groupReads, cls, "line poisoned"});
            const DegradationLadder::Action act = ladder_.onDue(c);
            noteLadder(act, cycle, cls, "page offline after DUE");
            if (act.any()) {
                dropRetired(cycle);
                setChanged = true;
            }
        }
        rebuildEngines(); // undo partial peels; state stays canonical
        if (setChanged)
            differentialCheck(cycle);
        return out;
    }

    ++log_.counters.ce;
    log_.counters.parityGroupReads += fix.groupReads;
    log_.counters.linesReconstructed += fix.linesFixed;

    if (!eng.lineMatchesGolden(die, c.bank, c.row, c.col)) {
        // Correction passed CRC but the bytes are wrong: silent data
        // corruption. Must never happen; tests assert sdc == 0.
        ++log_.counters.sdc;
        logEvent({RasEventType::SilentCorruption, cycle, line,
                  fix.dimUsed, fix.groupReads, cls, ""});
    }

    out.kind = DemandOutcome::Kind::Corrected;
    logEvent({RasEventType::CorrectableError, cycle, line, fix.dimUsed,
              fix.groupReads, cls, ""});
    appendGroupReads(out.extraReads, c, fix.dimUsed);

    if (opts_.scheme.enableDds)
        spareCovering(c, cycle);

    // Restore the canonical state: spared faults are gone for good;
    // un-spared ones (transients before their scrub, budget-denied
    // permanents) re-corrupt their cells, as in DRAM.
    rebuildEngines();
    differentialCheck(cycle);
    return out;
}

void
LiveRasDatapath::saveState(ByteSink &sink) const
{
    sink.putU32(kCheckpointMagic);
    sink.putU32(kCheckpointVersion);

    sink.putU64(active_.size());
    for (const Fault &f : active_)
        putFault(sink, f);

    sink.putU64(pending_.size());
    for (const auto &[cyc, f] : pending_) {
        sink.putU64(cyc);
        putFault(sink, f);
    }

    sink.putU64(pendingMeta_.size());
    for (const auto &[cyc, f] : pendingMeta_) {
        sink.putU64(cyc);
        putMetaFault(sink, f);
    }

    for (u32 s = 0; s < cfg_.geom.stacks; ++s) {
        rrt_[s].serialize(sink);
        brt_[s].serialize(sink);
        sink.putU32(spareRowCursor_[s]);
    }

    sink.putU64(tsvUsed_.size());
    for (const auto &[k, v] : tsvUsed_) {
        sink.putU64(k);
        sink.putU32(v);
    }
    sink.putU64(tsvBroken_.size());
    for (u64 k : tsvBroken_)
        sink.putU64(k);

    sink.putU64(rrtSpared_.size());
    for (const auto &[k, f] : rrtSpared_) {
        sink.putU64(k);
        putFault(sink, f);
    }
    sink.putU64(brtSpared_.size());
    for (const auto &[k, st] : brtSpared_) {
        sink.putU64(k);
        sink.putU32(st.unit);
        sink.putU64(st.faults.size());
        for (const Fault &f : st.faults)
            putFault(sink, f);
    }
    sink.putU64(absorbedTsv_.size());
    for (const auto &[k, faults] : absorbedTsv_) {
        sink.putU64(k);
        sink.putU64(faults.size());
        for (const Fault &f : faults)
            putFault(sink, f);
    }

    poisoned_.serialize(sink);
    sink.putU64(lastScrub_);
    ladder_.serialize(sink);
    meta_.serialize(sink);
    putCounters(sink, log_.counters);
}

void
LiveRasDatapath::loadState(ByteSource &src)
{
    if (src.getU32() != kCheckpointMagic)
        fatal("LiveRasDatapath: bad checkpoint magic");
    if (src.getU32() != kCheckpointVersion)
        fatal("LiveRasDatapath: unsupported checkpoint version");

    active_.clear();
    u64 n = src.getCount(kFaultBytes);
    for (u64 i = 0; i < n; ++i)
        active_.push_back(getFault(src));

    pending_.clear();
    n = src.getCount(8 + kFaultBytes);
    for (u64 i = 0; i < n; ++i) {
        const u64 cyc = src.getU64();
        pending_.emplace(cyc, getFault(src));
    }

    pendingMeta_.clear();
    n = src.getCount(8 + kMetaFaultBytes);
    for (u64 i = 0; i < n; ++i) {
        const u64 cyc = src.getU64();
        pendingMeta_.emplace(cyc, getMetaFault(src));
    }

    for (u32 s = 0; s < cfg_.geom.stacks; ++s) {
        rrt_[s].deserialize(src);
        brt_[s].deserialize(src);
        spareRowCursor_[s] = src.getU32();
    }

    tsvUsed_.clear();
    n = src.getCount(12);
    for (u64 i = 0; i < n; ++i) {
        const u64 k = src.getU64();
        tsvUsed_[k] = src.getU32();
    }
    tsvBroken_.clear();
    n = src.getCount(8);
    for (u64 i = 0; i < n; ++i)
        tsvBroken_.insert(src.getU64());

    rrtSpared_.clear();
    n = src.getCount(8 + kFaultBytes);
    for (u64 i = 0; i < n; ++i) {
        const u64 k = src.getU64();
        rrtSpared_.emplace(k, getFault(src));
    }
    brtSpared_.clear();
    n = src.getCount(8 + 4 + 8); // key + unit + inner count at minimum
    for (u64 i = 0; i < n; ++i) {
        const u64 k = src.getU64();
        BrtSlotState st;
        st.unit = src.getU32();
        const u64 m = src.getCount(kFaultBytes);
        for (u64 j = 0; j < m; ++j)
            st.faults.push_back(getFault(src));
        brtSpared_.emplace(k, std::move(st));
    }
    absorbedTsv_.clear();
    n = src.getCount(8 + 8); // key + inner count at minimum
    for (u64 i = 0; i < n; ++i) {
        const u64 k = src.getU64();
        const u64 m = src.getCount(kFaultBytes);
        std::vector<Fault> faults;
        for (u64 j = 0; j < m; ++j)
            faults.push_back(getFault(src));
        absorbedTsv_.emplace(k, std::move(faults));
    }

    poisoned_.deserialize(src);
    lastScrub_ = src.getU64();
    ladder_.deserialize(src);
    meta_.deserialize(src);
    getCounters(src, log_.counters);

    // Engine state is derived (golden XOR the active set), never
    // stored: rebuild it from what we just loaded.
    rebuildEngines();
}

u64
LiveRasDatapath::stateFingerprint() const
{
    ByteSink sink;
    saveState(sink);
    return fnv1a(sink.bytes());
}

} // namespace citadel
