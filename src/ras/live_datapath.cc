#include "ras/live_datapath.h"

#include <algorithm>
#include <limits>

#include "common/log.h"

namespace citadel {

LiveRasDatapath::LiveRasDatapath(const SimConfig &cfg,
                                 const LiveRasOptions &opts)
    : cfg_(cfg), opts_(opts), map_(cfg.geom),
      dies_(cfg.geom.channelsPerStack + 1),
      analytic_(opts.scheme.parityDims), log_(opts.maxEvents)
{
    const StackGeometry &g = cfg_.geom;
    // Byte-true storage: data + golden + parity copies, per stack.
    const u64 model_bytes = 2 * static_cast<u64>(g.stacks) * dies_ *
                            g.banksPerChannel * g.rowsPerBank * g.rowBytes;
    if (model_bytes > opts_.maxModelBytes)
        fatal("LiveRasDatapath: geometry needs %llu model bytes "
              "(> %llu); use a reduced geometry such as "
              "StackGeometry::tiny()",
              static_cast<unsigned long long>(model_bytes),
              static_cast<unsigned long long>(opts_.maxModelBytes));

    sysCfg_.geom = g;
    sysCfg_.subArrayRows = std::min<u32>(sysCfg_.subArrayRows,
                                         g.rowsPerBank);
    sysCfg_.validate();
    analytic_.reset(sysCfg_);

    for (u32 s = 0; s < g.stacks; ++s) {
        StackGeometry one = g;
        one.stacks = 1;
        engines_.push_back(std::make_unique<ParityEngine>(
            one, opts_.seed ^ (0x9E3779B97F4A7C15ull * (s + 1))));
        rrt_.emplace_back(dies_ * g.banksPerChannel,
                          opts_.scheme.spareRowsPerBank);
        brt_.emplace_back(opts_.scheme.spareBanksPerStack);
        spareRowCursor_.push_back(0);
    }
}

UnitId
LiveRasDatapath::unitId(ChannelId channel, BankId bank) const
{
    return UnitId{channel.value() * cfg_.geom.banksPerChannel +
                  bank.value()};
}

const ParityEngine &
LiveRasDatapath::engine(StackId stack) const
{
    if (stack.idx() >= engines_.size())
        panic("LiveRasDatapath: stack %u out of range", stack.value());
    return *engines_[stack.idx()];
}

void
LiveRasDatapath::logEvent(RasEvent ev)
{
    log_.append(std::move(ev));
}

void
LiveRasDatapath::scheduleFault(const Fault &fault, u64 cycle)
{
    if (fault.stack.mask != 0xFFFFFFFFu ||
        fault.stack.value >= cfg_.geom.stacks)
        fatal("scheduleFault: fault must name one existing stack (%s)",
              fault.describe().c_str());
    pending_.emplace(cycle, fault);
}

void
LiveRasDatapath::tick(u64 cycle)
{
    while (!pending_.empty() && pending_.begin()->first <= cycle) {
        const Fault f = pending_.begin()->second;
        pending_.erase(pending_.begin());
        materialize(f, cycle);
    }
    if (opts_.scrubCycles != 0 &&
        cycle >= lastScrub_ + opts_.scrubCycles) {
        lastScrub_ = cycle;
        scrub(cycle);
    }
}

u64
LiveRasDatapath::nextEventCycle(u64 now) const
{
    // Mirror of tick(): the next fault materialization and the next
    // scrub boundary are the only cycle-driven actions. A due-but-
    // unfired event clamps to `now` so the event loop never skips it.
    u64 next = std::numeric_limits<u64>::max();
    if (!pending_.empty())
        next = std::max(now, pending_.begin()->first);
    if (opts_.scrubCycles != 0)
        next = std::min(next, std::max(now, lastScrub_ + opts_.scrubCycles));
    return next;
}

void
LiveRasDatapath::materialize(const Fault &f, u64 cycle)
{
    ++log_.counters.faultsInjected;
    logEvent({RasEventType::FaultInjected, cycle, LineAddr{}, 0, 0, f.cls,
              f.describe()});

    // TSV-SWAP absorbs TSV faults while stand-by budget remains; the
    // redirection register steers around the faulty TSV before any
    // data is lost (Section V).
    if (opts_.scheme.enableTsvSwap && f.fromTsv) {
        const u64 key = (static_cast<u64>(f.stack.value) << 32) |
                        f.channel.value;
        u32 &used = tsvUsed_[key];
        if (used < opts_.scheme.standbyTsvsPerChannel) {
            ++used;
            ++log_.counters.tsvRepairs;
            ++log_.counters.faultsAbsorbed;
            logEvent({RasEventType::TsvRepaired, cycle, LineAddr{}, 0, 0, f.cls,
                      f.describe()});
            return;
        }
    }

    // Faults inside an already-decommissioned bank never touch live
    // data: the spare bank serves it.
    if (opts_.scheme.enableDds && inSparedBank(f)) {
        ++log_.counters.faultsAbsorbed;
        return;
    }

    active_.push_back(f);
    rebuildEngines();
    differentialCheck(cycle);
}

void
LiveRasDatapath::scrub(u64 cycle)
{
    // Scrub rewrites every line from corrected data: transient faults
    // vanish; DDS retires permanent ones into spare storage.
    std::erase_if(active_, [](const Fault &f) { return f.transient; });

    if (opts_.scheme.enableDds) {
        std::erase_if(active_, [&](const Fault &f) {
            if (inSparedBank(f))
                return true;
            if (trySpare(f, cycle))
                return true;
            ++log_.counters.sparingDenied;
            logEvent({RasEventType::SparingDenied, cycle, LineAddr{}, 0, 0, f.cls,
                      f.describe()});
            return false;
        });
        std::erase_if(active_,
                      [&](const Fault &f) { return inSparedBank(f); });
    }

    rebuildEngines();
    differentialCheck(cycle);
}

bool
LiveRasDatapath::inSparedBank(const Fault &f) const
{
    if (f.stack.mask != 0xFFFFFFFFu || f.channel.mask != 0xFFFFFFFFu ||
        f.bank.mask != 0xFFFFFFFFu)
        return false;
    if (f.stack.value >= brt_.size())
        return false;
    return brt_[f.stack.value]
        .lookup(unitId(ChannelId{f.channel.value}, BankId{f.bank.value}))
        .has_value();
}

bool
LiveRasDatapath::trySpare(const Fault &f, u64 cycle)
{
    if (f.transient)
        return false; // transients clear at scrub; nothing to retire
    if (f.stack.mask != 0xFFFFFFFFu || f.channel.mask != 0xFFFFFFFFu ||
        f.bank.mask != 0xFFFFFFFFu)
        return false; // multi-bank faults have no single spare target
    const u32 stack = f.stack.value;
    const UnitId unit = unitId(ChannelId{f.channel.value},
                               BankId{f.bank.value});

    if (f.rowsCovered(cfg_.geom) == 1) {
        const RowId row{f.row.value & (cfg_.geom.rowsPerBank - 1)};
        u32 &cursor = spareRowCursor_[stack];
        if (rrt_[stack].insert(unit, row,
                               RowId{cursor % cfg_.geom.rowsPerBank})) {
            ++cursor;
            ++log_.counters.rowsSpared;
            logEvent({RasEventType::RowSpared, cycle, LineAddr{}, 0, 0, f.cls,
                      f.describe()});
            return true;
        }
        // RRT exhausted: the bank has failed; escalate (Section VII-C).
    }

    if (brt_[stack].insert(unit, brt_[stack].used())) {
        ++log_.counters.banksSpared;
        logEvent({RasEventType::BankSpared, cycle, LineAddr{}, 0, 0, f.cls,
                  f.describe()});
        return true;
    }
    return false;
}

void
LiveRasDatapath::spareCovering(const LineCoord &c, u64 cycle)
{
    // A corrected permanent fault would re-correct on every access;
    // retire the covering fault(s) into spare storage now (the paper
    // batches this at scrub time; demand-time retirement gives the
    // remap the paper's steady-state behavior within a short run).
    std::erase_if(active_, [&](const Fault &f) {
        if (f.transient)
            return false;
        if (f.stack.mask != 0xFFFFFFFFu ||
            f.channel.mask != 0xFFFFFFFFu ||
            f.bank.mask != 0xFFFFFFFFu)
            return false;
        if (StackId{f.stack.value} != c.stack ||
            ChannelId{f.channel.value} != c.channel ||
            BankId{f.bank.value} != c.bank ||
            !f.row.matches(c.row.value()))
            return false;
        return trySpare(f, cycle);
    });
    std::erase_if(active_,
                  [&](const Fault &f) { return inSparedBank(f); });
}

bool
LiveRasDatapath::coordRemapped(const LineCoord &c) const
{
    if (brt_[c.stack.idx()]
            .lookup(unitId(c.channel, c.bank))
            .has_value())
        return true;
    return rrt_[c.stack.idx()]
        .lookup(unitId(c.channel, c.bank), c.row)
        .has_value();
}

bool
LiveRasDatapath::lineIsRemapped(LineAddr line) const
{
    if (line >= map_.parityBase())
        return false;
    return coordRemapped(map_.lineToCoord(line));
}

void
LiveRasDatapath::rebuildEngines()
{
    for (u32 s = 0; s < cfg_.geom.stacks; ++s) {
        std::vector<Fault> local;
        for (const Fault &f : active_)
            if (f.stack.matches(s))
                local.push_back(f);
        engines_[s]->restore();
        engines_[s]->corrupt(local);
    }
}

void
LiveRasDatapath::differentialCheck(u64 cycle)
{
    if (!opts_.differential)
        return;
    const bool analytic_unc = analytic_.uncorrectable(active_);
    bool bit_unc = false;
    for (const auto &e : engines_)
        if (!e->peelable(opts_.scheme.parityDims)) {
            bit_unc = true;
            break;
        }
    if (analytic_unc == bit_unc)
        return;
    if (analytic_unc && !bit_unc) {
        // The analytic evaluator peels whole fault ranges; the bit-true
        // engine peels line by line and can make partial progress
        // through one dimension before finishing in another. The
        // analytic verdict is therefore conservative — safe, and not a
        // modeling bug.
        ++log_.counters.analyticConservative;
        return;
    }
    // The dangerous direction: the Monte Carlo model claims the
    // pattern is correctable while the bit-true machine lost data.
    ++log_.counters.divergences;
    const std::string detail =
        "analytic=OK bit-true=UNC (" +
        std::to_string(active_.size()) + " faults)";
    logEvent({RasEventType::Divergence, cycle, LineAddr{}, 0, 0,
              FaultClass::Bit, detail});
    warn("live-ras: analytic/bit-true divergence at cycle %llu: %s",
         static_cast<unsigned long long>(cycle), detail.c_str());
}

void
LiveRasDatapath::appendGroupReads(std::vector<LineAddr> &out,
                                  const LineCoord &c, u32 dim) const
{
    // Sibling lines of the parity group the controller XORs to rebuild
    // the target. Lines on the ECC/metadata die are real DRAM reads
    // too, but live outside the system address space the timing model
    // knows, so only system-addressable lines are charged.
    const StackGeometry &g = cfg_.geom;
    const LineAddr line = map_.coordToLine(c);
    switch (dim) {
      case 1:
        for (u32 ch = 0; ch < g.channelsPerStack; ++ch)
            for (u32 b = 0; b < g.banksPerChannel; ++b) {
                const ChannelId cch{ch};
                const BankId cb{b};
                if (cch == c.channel && cb == c.bank)
                    continue;
                out.push_back(map_.coordToLine(
                    {c.stack, cch, cb, c.row, c.col}));
            }
        out.push_back(map_.d1ParityLine(line));
        break;
      case 2:
        for (u32 b = 0; b < g.banksPerChannel; ++b)
            for (u32 r = 0; r < g.rowsPerBank; ++r) {
                const BankId cb{b};
                const RowId cr{r};
                if (cb == c.bank && cr == c.row)
                    continue;
                out.push_back(map_.coordToLine(
                    {c.stack, c.channel, cb, cr, c.col}));
            }
        break;
      case 3:
        for (u32 ch = 0; ch < g.channelsPerStack; ++ch)
            for (u32 r = 0; r < g.rowsPerBank; ++r) {
                const ChannelId cch{ch};
                const RowId cr{r};
                if (cch == c.channel && cr == c.row)
                    continue;
                out.push_back(map_.coordToLine(
                    {c.stack, cch, c.bank, cr, c.col}));
            }
        if (c.bank == BankId{0}) {
            // Bank position 0's D3 group includes the parity store.
            for (u32 r = 0; r < g.rowsPerBank; ++r)
                out.push_back(map_.parityLineOf(
                    map_.d1GroupOf(c.stack, RowId{r}, c.col)));
        }
        break;
      default:
        break;
    }
}

DemandOutcome
LiveRasDatapath::onDemandRead(LineAddr line, u64 cycle)
{
    DemandOutcome out;
    ++log_.counters.demandReads;
    if (line >= map_.parityBase())
        return out; // parity traffic is covered by the writeback path

    const LineCoord c = map_.lineToCoord(line);
    if (opts_.scheme.enableDds && coordRemapped(c)) {
        // RRT/BRT hit: the access is served by healthy spare storage.
        ++log_.counters.remappedReads;
        return out;
    }

    ParityEngine &eng = *engines_[c.stack.idx()];
    // The HBM channel/die identity: each channel's data lives on its
    // own die, so the engine's die coordinate is the named conversion
    // of the channel (the engine reserves die channelsPerStack for the
    // parity/metadata unit).
    const DieId die = dieOf(c.channel);
    if (!eng.lineCorruptAt(die, c.bank, c.row, c.col))
        return out;

    // CRC-32 mismatch: read-retry first (a transient bus glitch would
    // clear; a storage fault persists, Section V), then reconstruct.
    ++log_.counters.crcDetects;
    ++log_.counters.retries;
    out.extraReads.push_back(line);

    const ParityEngine::DemandFix fix = eng.correctLine(
        die, c.bank, c.row, c.col, opts_.scheme.parityDims);

    FaultClass cls = FaultClass::Bit;
    for (const Fault &f : active_)
        if (f.stack.matches(c.stack.value()) &&
            f.channel.matches(c.channel.value()) &&
            f.bank.matches(c.bank.value()) &&
            f.row.matches(c.row.value()) &&
            f.col.matches(c.col.value())) {
            cls = f.cls;
            break;
        }

    if (!fix.corrected) {
        // DUE: report once per line, poison, keep running.
        out.kind = DemandOutcome::Kind::Uncorrectable;
        ++log_.counters.dueReads;
        if (poisoned_.insert(line).second) {
            ++log_.counters.due;
            logEvent({RasEventType::UncorrectableError, cycle, line, 0,
                      fix.groupReads, cls, "line poisoned"});
        }
        rebuildEngines(); // undo partial peels; state stays canonical
        return out;
    }

    ++log_.counters.ce;
    log_.counters.parityGroupReads += fix.groupReads;
    log_.counters.linesReconstructed += fix.linesFixed;

    if (!eng.lineMatchesGolden(die, c.bank, c.row, c.col)) {
        // Correction passed CRC but the bytes are wrong: silent data
        // corruption. Must never happen; tests assert sdc == 0.
        ++log_.counters.sdc;
        logEvent({RasEventType::SilentCorruption, cycle, line,
                  fix.dimUsed, fix.groupReads, cls, ""});
    }

    out.kind = DemandOutcome::Kind::Corrected;
    logEvent({RasEventType::CorrectableError, cycle, line, fix.dimUsed,
              fix.groupReads, cls, ""});
    appendGroupReads(out.extraReads, c, fix.dimUsed);

    if (opts_.scheme.enableDds)
        spareCovering(c, cycle);

    // Restore the canonical state: spared faults are gone for good;
    // un-spared ones (transients before their scrub, budget-denied
    // permanents) re-corrupt their cells, as in DRAM.
    rebuildEngines();
    differentialCheck(cycle);
    return out;
}

} // namespace citadel
