/**
 * @file
 * Bounded poison-line set.
 *
 * The live datapath previously tracked DUE-reported lines in an
 * unbounded std::set<LineAddr>: one 48-byte node per poisoned line,
 * which a channel-granularity fault storm could grow to millions of
 * entries. This structure stores poisoned lines as sorted,
 * non-adjacent half-open runs [lo, hi) and caps the number of runs.
 *
 * Memory bound: at most `maxRuns` map nodes of two u64 each, about
 * 64 bytes per node with tree overhead -- ~256 KB at the default
 * 4096-run cap, regardless of how many lines are poisoned.
 *
 * On overflow the two runs with the smallest gap between them are
 * merged, swallowing the gap. That makes the set an
 * *over-approximation*: contains() may report a never-poisoned line
 * as poisoned. The only consumer effect is DUE *deduplication* -- a
 * line in a swallowed gap would not get a fresh distinct-DUE report
 * (counter `due` / its log event). Correctness reporting is
 * unaffected: the Uncorrectable outcome and the dueReads counter are
 * driven by the bit-true peel, not by this set. Tests that count
 * distinct DUEs stay far below the cap.
 */

#ifndef CITADEL_RAS_POISON_SET_H
#define CITADEL_RAS_POISON_SET_H

#include <map>

#include "common/log.h"
#include "common/serialize.h"
#include "common/strong_id.h"

namespace citadel {

/** Run-compressed set of poisoned line addresses. */
class BoundedPoisonSet
{
  public:
    explicit BoundedPoisonSet(std::size_t max_runs = 4096)
        : maxRuns_(max_runs)
    {
        if (max_runs == 0)
            fatal("BoundedPoisonSet: max_runs must be > 0");
    }

    /** @return true if the line was not already contained (i.e. this
     *  is a fresh poison worth reporting). */
    bool insert(LineAddr line)
    {
        const u64 a = line.value();
        if (contains(line))
            return false;
        // Coalesce with an adjacent right neighbor...
        auto right = runs_.find(a + 1);
        // ...and/or an adjacent left neighbor ending exactly at `a`.
        auto left = runs_.lower_bound(a);
        const bool joinLeft =
            left != runs_.begin() && (--left, left->second == a);

        if (joinLeft && right != runs_.end()) {
            left->second = right->second;
            runs_.erase(right);
        } else if (joinLeft) {
            left->second = a + 1;
        } else if (right != runs_.end()) {
            const u64 hi = right->second;
            runs_.erase(right);
            runs_[a] = hi;
        } else {
            runs_[a] = a + 1;
        }
        enforceCap();
        return true;
    }

    bool contains(LineAddr line) const
    {
        const u64 a = line.value();
        auto it = runs_.upper_bound(a);
        if (it == runs_.begin())
            return false;
        --it;
        return a < it->second;
    }

    std::size_t runCount() const { return runs_.size(); }
    std::size_t maxRuns() const { return maxRuns_; }

    /** Has an overflow merge ever made contains() over-approximate? */
    bool overApproximated() const { return overApprox_; }

    void clear()
    {
        runs_.clear();
        overApprox_ = false;
    }

    void serialize(ByteSink &sink) const
    {
        sink.putBool(overApprox_);
        sink.putU64(runs_.size());
        for (const auto &[lo, hi] : runs_) {
            sink.putU64(lo);
            sink.putU64(hi);
        }
    }

    void deserialize(ByteSource &src)
    {
        clear();
        overApprox_ = src.getBool();
        const u64 n = src.getCount(2 * sizeof(u64));
        for (u64 i = 0; i < n; ++i) {
            const u64 lo = src.getU64();
            runs_[lo] = src.getU64();
        }
    }

  private:
    void enforceCap()
    {
        while (runs_.size() > maxRuns_) {
            // Merge the pair of neighbors with the smallest gap; ties
            // resolve to the lowest address, keeping merges (and thus
            // the over-approximated region) deterministic.
            auto best = runs_.begin();
            u64 bestGap = ~u64{0};
            for (auto it = runs_.begin(); std::next(it) != runs_.end();
                 ++it) {
                const u64 gap = std::next(it)->first - it->second;
                if (gap < bestGap) {
                    bestGap = gap;
                    best = it;
                }
            }
            auto victim = std::next(best);
            best->second = victim->second;
            runs_.erase(victim);
            overApprox_ = true;
        }
    }

    std::map<u64, u64> runs_; ///< lo -> hi, disjoint, non-adjacent.
    std::size_t maxRuns_;
    bool overApprox_ = false;
};

} // namespace citadel

#endif // CITADEL_RAS_POISON_SET_H
