/**
 * @file
 * Self-protection for Citadel's control plane.
 *
 * Every structure the RAS pipeline consults on an access -- RRT and
 * BRT entries, TSV redirection registers, the cached D1 parity lines
 * -- is itself SRAM and can be upset. This store shadows each live
 * record with TWO SECDED(72,64)-encoded copies (primary + mirror) and
 * verifies them at the consistency scrub:
 *
 *   1. decode the primary; a single-bit flip is corrected in place;
 *   2. on an uncorrectable/wrong primary, retry the read up to
 *      `retryMax` times with exponential backoff (base << attempt
 *      cycles, accumulated in the counters) -- a transient SRAM strike
 *      clears on the first retry;
 *   3. still wrong: restore the primary from the mirror;
 *   4. mirror also lost (common-mode hit): the record is LOST. The
 *      store reports it and the datapath reacts -- the logical remap
 *      entry is dropped, its slot is retired as dead SRAM, and the
 *      data fault the entry was covering is reactivated so the
 *      bit-true and analytic models keep seeing the same fault set
 *      (the no-overclaim invariant extends across metadata loss).
 *
 * Detection is batched at the scrub, so a corrupted record can steer
 * accesses wrongly for at most one scrub period. That window is a
 * deliberate modeling choice (checking both copies on every access
 * would double metadata bandwidth); DESIGN.md section 11 quantifies
 * it.
 *
 * Cached D1 parity lines are special: their backing store (the parity
 * die) always holds a clean copy, so a lost cache record is refetched
 * and reinstalled rather than escalated.
 */

#ifndef CITADEL_RAS_META_PROTECT_H
#define CITADEL_RAS_META_PROTECT_H

#include <map>
#include <vector>

#include "common/serialize.h"
#include "faults/meta_fault.h"

namespace citadel {

/** Mirrored + SECDED-encoded shadow of the control-plane records. */
class ProtectedMetaStore
{
  public:
    struct Options
    {
        u32 retryMax = 3;       ///< Read-retry attempts per record.
        u64 backoffCycles = 16; ///< Base backoff; doubles per attempt.
    };

    /** Identity of one protected record. `unit` doubles as the
     *  channel index for TsvRegister records and is 0 elsewhere
     *  unless the target is RrtEntry. */
    struct RecordKey
    {
        MetaTarget target = MetaTarget::RrtEntry;
        StackId stack{};
        UnitId unit{};
        MetaSlotId slot{};

        u64 packed() const;
    };

    /** What applying one MetaFault did. */
    enum class ApplyResult
    {
        Applied, ///< Flips landed in a live record's copies.
        NoRecord ///< The targeted slot holds no live record.
    };

    /** One scrub pass over every record. */
    struct ScrubOutcome
    {
        u64 checked = 0;
        u64 corrected = 0;       ///< SECDED single-bit fixes.
        u64 retries = 0;         ///< Read-retry attempts issued.
        u64 backoffCyclesSpent = 0;
        u64 mirrorRestores = 0;  ///< Primary rebuilt from the mirror.
        std::vector<RecordKey> lost; ///< Both copies unrecoverable.
    };

    ProtectedMetaStore(); ///< Default Options.
    explicit ProtectedMetaStore(Options opts);

    /** Install (or overwrite) a record: both copies are freshly
     *  encoded from `payload`. */
    void install(const RecordKey &key, u64 payload);

    /** Drop a record (its logical entry was erased legitimately). */
    void remove(const RecordKey &key);

    bool exists(const RecordKey &key) const;

    /** The canonical payload of a record (what the logical structure
     *  believes); fatal if the record does not exist. */
    u64 payload(const RecordKey &key) const;

    /** Land a control-plane fault in the targeted record's copies. */
    ApplyResult applyFault(const MetaFault &f);

    /** Verify/repair every record; see the file comment for the
     *  escalation order. Lost records are removed from the store. */
    ScrubOutcome scrub();

    std::size_t size() const { return records_.size(); }

    const Options &options() const { return opts_; }

    void serialize(ByteSink &sink) const;
    void deserialize(ByteSource &src);

  private:
    struct Record
    {
        u64 payload = 0; ///< Canonical logical content.
        u64 primary = 0;
        u64 mirror = 0;
        u8 primaryCheck = 0;
        u8 mirrorCheck = 0;
        /** Bits of the current corruption that are transient (clear
         *  on the scrub's first read-retry). */
        u64 primaryTransient = 0;
        u64 mirrorTransient = 0;
        u8 primaryCheckTransient = 0;
        u8 mirrorCheckTransient = 0;
    };

    Options opts_;
    std::map<u64, Record> records_; ///< packed key -> record.
    std::map<u64, RecordKey> keys_; ///< packed key -> full key.

    static RecordKey keyOf(const MetaFault &f);

    /** Decode one copy; true when it yields the canonical payload. */
    static bool copyRecovers(u64 word, u8 check, u64 payload,
                             bool &needed_correction);
};

} // namespace citadel

#endif // CITADEL_RAS_META_PROTECT_H
