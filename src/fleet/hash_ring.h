/**
 * @file
 * Consistent-hash placement ring with virtual nodes and replication.
 *
 * Each server contributes `vnodes` points (hashes of (seed, server,
 * vnode)) on a 64-bit ring; a key is owned by the first `replicas`
 * distinct live servers clockwise of its hash. Removing a server
 * deletes only its points, so keys move minimally — exactly onto the
 * servers that were already next in their replica chains, which is
 * what lets the coordinator fail a stack over without a global
 * reshuffle.
 *
 * The ring is deterministic: point positions depend only on (seed,
 * server, vnode), lookups walk a sorted vector, and ties cannot occur
 * (colliding point hashes are salted until distinct at construction).
 */

#ifndef CITADEL_FLEET_HASH_RING_H
#define CITADEL_FLEET_HASH_RING_H

#include <vector>

#include "fleet/fleet_types.h"

namespace citadel {
namespace fleet {

class HashRing
{
  public:
    /**
     * @param servers Fleet size; all start live.
     * @param vnodes Points per server (balance improves with more).
     * @param seed Ring salt; different seeds give different layouts.
     */
    HashRing(u32 servers, u32 vnodes, u64 seed);

    /** Remove a server's points (failover). Idempotent. */
    void remove(ServerIdx s);

    bool contains(ServerIdx s) const;
    u32 liveCount() const { return live_; }
    u32 serverCount() const { return static_cast<u32>(inRing_.size()); }

    /**
     * The first `replicas` distinct live servers clockwise of the
     * key's hash, primary first. Appends fewer when fewer are live.
     */
    void placement(u64 key, u32 replicas,
                   std::vector<ServerIdx> &out) const;

    /** Convenience: the key's primary, or kNoServer. */
    ServerIdx primary(u64 key) const;

    /** Mix the live set into a fingerprint. */
    void serialize(ByteSink &sink) const;

  private:
    struct Point
    {
        u64 hash;
        ServerIdx server;
        bool operator<(const Point &o) const { return hash < o.hash; }
    };

    std::vector<Point> points_; ///< Sorted by hash.
    std::vector<bool> inRing_;  ///< Indexed by server.
    u32 live_ = 0;
    u64 seed_;
};

} // namespace fleet
} // namespace citadel

#endif // CITADEL_FLEET_HASH_RING_H
