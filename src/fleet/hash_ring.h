/**
 * @file
 * Consistent-hash placement ring with virtual nodes and replication.
 *
 * Each server contributes `vnodes` points (hashes of (seed, server,
 * vnode)) on a 64-bit ring; a key is owned by the first `replicas`
 * distinct live servers clockwise of its hash. Removing a server
 * deletes only its points, so keys move minimally — exactly onto the
 * servers that were already next in their replica chains, which is
 * what lets the coordinator fail a stack over without a global
 * reshuffle.
 *
 * The ring is deterministic: point positions depend only on (seed,
 * server, vnode), lookups walk a sorted vector, and ties cannot occur
 * (colliding point hashes are salted until distinct at construction).
 *
 * Elasticity (DESIGN.md §16): every server's salted points are fixed
 * at construction (the *canonical* set), and add() re-inserts exactly
 * the points remove() deleted — so remove-then-add of the same server
 * restores bit-identical ownership. Membership changes bump a ring
 * epoch that placement caches and warm scans key on; placementPlus()
 * answers "who would own this key if server X were in the ring"
 * without mutating anything, which is what the coordinator's warm
 * pump uses to stream a joining server exactly its prospective shard.
 */

#ifndef CITADEL_FLEET_HASH_RING_H
#define CITADEL_FLEET_HASH_RING_H

#include <vector>

#include "fleet/fleet_types.h"

namespace citadel {
namespace fleet {

class HashRing
{
  public:
    /**
     * @param servers Fleet size; all start live.
     * @param vnodes Points per server (balance improves with more).
     * @param seed Ring salt; different seeds give different layouts.
     */
    HashRing(u32 servers, u32 vnodes, u64 seed);

    /** Remove a server's points (failover). Bumps the epoch.
     *  Idempotent: removing an absent server does nothing. */
    void remove(ServerIdx s);

    /**
     * Re-insert a server's canonical points (join admission — the
     * inverse of remove()). Bumps the epoch. Idempotent: adding a
     * present server does nothing. remove(s) followed by add(s)
     * restores identical ownership for every key at epoch + 2.
     */
    void add(ServerIdx s);

    bool contains(ServerIdx s) const;
    u32 liveCount() const { return live_; }
    u32 serverCount() const { return static_cast<u32>(inRing_.size()); }

    /** Membership generation: starts at 1, +1 per remove() or add().
     *  Placement caches and warm scans are invalidated by epoch. */
    u64 epoch() const { return epoch_; }

    /**
     * The first `replicas` distinct live servers clockwise of the
     * key's hash, primary first. Appends fewer when fewer are live.
     */
    void placement(u64 key, u32 replicas,
                   std::vector<ServerIdx> &out) const;

    /**
     * Placement as it *would* be if `candidate` were in the ring,
     * without mutating membership. If the candidate already is in the
     * ring this is placement(). The warm pump uses it to compute a
     * joining server's prospective shard while client traffic still
     * routes around it.
     */
    void placementPlus(ServerIdx candidate, u64 key, u32 replicas,
                       std::vector<ServerIdx> &out) const;

    /** Convenience: the key's primary, or kNoServer. */
    ServerIdx primary(u64 key) const;

    /** Mix the live set and epoch into a fingerprint. */
    void serialize(ByteSink &sink) const;

    /** Checkpoint membership + epoch (points are canonical, so the
     *  live set is the whole mutable state). */
    void saveState(ByteSink &sink) const;
    void loadState(ByteSource &src);

  private:
    struct Point
    {
        u64 hash;
        ServerIdx server;
        bool operator<(const Point &o) const { return hash < o.hash; }
    };

    std::vector<Point> points_; ///< Live points, sorted by hash.
    /// Per-server canonical point hashes (sorted), fixed at
    /// construction after global collision salting.
    std::vector<std::vector<u64>> canonical_;
    std::vector<bool> inRing_; ///< Indexed by server.
    u32 live_ = 0;
    u64 epoch_ = 1;
    u64 seed_;
};

} // namespace fleet
} // namespace citadel

#endif // CITADEL_FLEET_HASH_RING_H
