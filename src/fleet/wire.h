/**
 * @file
 * Fleet wire protocol: a compact binary frame format for batches of
 * `Request` / `Response` records, and the byte-stream transports that
 * carry it between the campaign's client side and its stack servers.
 *
 * A frame is a 16-byte header followed by a packed array of
 * fixed-width little-endian records:
 *
 *     offset  size  field
 *          0     4  magic        0xC17ADE1F
 *          4     1  version      kWireVersion
 *          5     1  kind         1 = RequestBatch, 2 = ResponseBatch
 *          6     2  count        records in the payload (<= 4096)
 *          8     4  payload      payload bytes = count * record size
 *         12     4  crc32        over bytes [0, 12) ++ payload
 *         16     …  payload      `count` packed records
 *
 * The CRC is computed through Crc32::update — the same runtime-
 * dispatched kernel (slice8 / PCLMUL / ARMv8) the device datapath
 * uses — over everything except the stored CRC itself, so every
 * single-bit corruption anywhere in a frame is rejected. Decoding is
 * zero-copy: a FrameView borrows the input buffer and materializes
 * records on access; nothing is allocated and malformed input is
 * answered with a DecodeStatus, never a crash or a fatal() (the
 * checkpoint ByteSource is deliberately NOT reused here — a wire peer
 * may present garbage, a checkpoint may not).
 *
 * Transports are deliberately dumb byte pipes with one duplex channel
 * per server. LoopbackTransport (the default) moves bytes with a
 * memcpy and is what the deterministic campaigns run on;
 * SocketTransport pushes the same frames through real AF_UNIX
 * socketpairs (non-blocking, drained inside the campaign's serial
 * phase) so the codec is exercised against genuine kernel-buffer
 * fragmentation. Both present received bytes as an RxStream the
 * caller reassembles frames from; because frames are length-prefixed,
 * partial reads just wait for more bytes.
 *
 * SubmissionShards is the batching half: a per-server arena of
 * generation-stamped request slots (the PR-4 token-arena idiom) the
 * client side appends to during a tick and the campaign drains into
 * frames at flush time — no per-request allocation in steady state,
 * and a stale slot from a previous generation can never leak into a
 * frame. Every slot also carries its global submission sequence
 * within the generation, so flush-time events that must replay in
 * send order (queue-full Busy synthesis, which the Direct baseline
 * emits per-request at send time) can be re-sorted to match.
 */

#ifndef CITADEL_FLEET_WIRE_H
#define CITADEL_FLEET_WIRE_H

#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "fleet/fleet_types.h"

namespace citadel {
namespace fleet {

// ---- Transport selection -------------------------------------------

/** How requests and responses travel between client and servers. */
enum class TransportMode : u8
{
    Direct,   ///< PR-6 baseline: per-request in-process handoff, no
              ///< frames (the measured "unbatched" perf oracle).
    Loopback, ///< Framed batches through in-process byte streams
              ///< (default: deterministic, allocation-free).
    Socket,   ///< Framed batches through real AF_UNIX socketpairs.
};

/** Display name ("direct" / "loopback" / "socket"). */
const char *transportModeName(TransportMode mode);

/**
 * Parse a CITADEL_FLEET_TRANSPORT value. Exact lowercase spellings
 * only; anything else is std::nullopt (the env reader warns and falls
 * back to Loopback — see the test_env.cc rejection tests).
 */
std::optional<TransportMode> parseTransportMode(std::string_view text);

/** Mode requested by CITADEL_FLEET_TRANSPORT (invalid/unset resolves
 *  to Loopback, with a warning on invalid text). */
TransportMode requestedTransportMode();

// ---- Frame format --------------------------------------------------

constexpr u32 kFrameMagic = 0xC17ADE1Fu;
constexpr u8 kWireVersion = 1;
constexpr std::size_t kFrameHeaderBytes = 16;
constexpr std::size_t kRequestRecordBytes = 41;
constexpr std::size_t kResponseRecordBytes = 37;
/** Frame size cap, matching the CITADEL_FLEET_BATCH knob ceiling. */
constexpr u32 kMaxFrameRecords = 4096;

/** What a frame carries. */
enum class FrameKind : u8
{
    RequestBatch = 1,
    ResponseBatch = 2,
};

/** Why a decode was rejected (Ok = accepted). */
enum class DecodeStatus : u8
{
    Ok,
    Truncated,  ///< Fewer bytes than the header/payload requires.
    BadMagic,
    BadVersion, ///< Version skew: reject, never guess at layout.
    BadKind,
    BadCount,   ///< count > kMaxFrameRecords.
    BadLength,  ///< payload size inconsistent with count * record.
    BadCrc,
    BadRecord,  ///< CRC passed but a record enum byte is out of range.
};

const char *decodeStatusName(DecodeStatus s);

/**
 * Zero-copy view of a decoded frame: borrows the buffer handed to
 * decodeFrame() (which must outlive the view) and unpacks records on
 * access. requestAt/responseAt bounds- and kind-check with fatal():
 * by the time a view exists the frame has already been validated, so
 * a bad index is a caller bug, not wire input.
 */
class FrameView
{
  public:
    FrameKind kind() const { return kind_; }
    u32 count() const { return count_; }

    Request requestAt(u32 i) const;
    Response responseAt(u32 i) const;

    /** Borrowed payload pointer — inside the decoded buffer (the
     *  zero-copy property the wire tests pin). */
    const u8 *payload() const { return payload_; }

  private:
    friend DecodeStatus decodeFrame(std::span<const u8> buf,
                                    FrameView &out,
                                    std::size_t *consumed);
    FrameKind kind_ = FrameKind::RequestBatch;
    u32 count_ = 0;
    const u8 *payload_ = nullptr;
};

/**
 * Decode one frame from the front of `buf`. On Ok, `out` borrows
 * `buf` and `*consumed` (if non-null) is the frame's total size —
 * trailing bytes belong to the next frame. On Truncated, more bytes
 * are needed (stream reassembly); every other status is a permanent
 * rejection of the frame. Never crashes on arbitrary input.
 */
DecodeStatus decodeFrame(std::span<const u8> buf, FrameView &out,
                         std::size_t *consumed = nullptr);

/**
 * Reusable frame encoder. begin*() resets the buffer (capacity is
 * kept, so steady-state encoding never allocates), add() packs one
 * record, finish() patches count/length/CRC and returns the frame.
 * Adding more than kMaxFrameRecords records is fatal — callers split
 * batches at the cap.
 */
class FrameWriter
{
  public:
    void beginRequestFrame() { begin(FrameKind::RequestBatch); }
    void beginResponseFrame() { begin(FrameKind::ResponseBatch); }

    void add(const Request &r);
    void add(const Response &r);

    u32 count() const { return count_; }

    /** Finalize and return the frame (valid until the next begin*). */
    std::span<const u8> finish();

  private:
    void begin(FrameKind kind);

    std::vector<u8> buf_;
    FrameKind kind_ = FrameKind::RequestBatch;
    u32 count_ = 0;
    bool open_ = false;
};

// ---- Transports ----------------------------------------------------

/**
 * A received byte stream awaiting frame reassembly. `pos` is the
 * consumer's cursor; compact() drops consumed bytes once the stream
 * is fully drained (the steady state), so the buffer is reused rather
 * than reallocated.
 */
struct RxStream
{
    std::vector<u8> buf;
    std::size_t pos = 0;

    std::span<const u8> pending() const
    {
        return {buf.data() + pos, buf.size() - pos};
    }
    void consume(std::size_t n) { pos += n; }
    void compact()
    {
        if (pos == buf.size()) {
            buf.clear();
            pos = 0;
        }
    }
};

/**
 * One duplex byte channel per server. Everything here runs in the
 * campaign's serial phase (send and receive are two halves of the
 * same single-threaded loop), which is what keeps even the socket
 * transport deterministic: the only bytes ever read are the ones this
 * process wrote, in FIFO order.
 */
class Transport
{
  public:
    explicit Transport(u32 servers);
    virtual ~Transport();

    Transport(const Transport &) = delete;
    Transport &operator=(const Transport &) = delete;

    /** Queue bytes toward server `s` / toward the client side. */
    virtual void sendToServer(u32 s, std::span<const u8> bytes)
        CITADEL_REQUIRES(kSerialPhase) = 0;
    virtual void sendToClient(u32 s, std::span<const u8> bytes)
        CITADEL_REQUIRES(kSerialPhase) = 0;

    /** Move any in-flight bytes into the rx streams (no-op for
     *  loopback; drains the socketpairs for the socket transport). */
    virtual void poll() CITADEL_REQUIRES(kSerialPhase) {}

    /** Bytes that have arrived at server `s` / at the client side. */
    RxStream &serverRx(u32 s) CITADEL_REQUIRES(kSerialPhase);
    RxStream &clientRx(u32 s) CITADEL_REQUIRES(kSerialPhase);

    u32 servers() const { return servers_; }

  protected:
    u32 servers_;
    std::vector<RxStream> serverRx_; ///< Client → server direction.
    std::vector<RxStream> clientRx_; ///< Server → client direction.
};

/** In-process transport: send is an append to the peer's RxStream. */
class LoopbackTransport final : public Transport
{
  public:
    explicit LoopbackTransport(u32 servers) : Transport(servers) {}
    void sendToServer(u32 s, std::span<const u8> bytes)
        CITADEL_REQUIRES(kSerialPhase) override;
    void sendToClient(u32 s, std::span<const u8> bytes)
        CITADEL_REQUIRES(kSerialPhase) override;
};

/**
 * AF_UNIX socketpair transport: one non-blocking duplex pair per
 * server. A full kernel buffer mid-send is handled by draining the
 * receive side (our own peer) and retrying, so a frame larger than
 * the socket buffer still goes through — fragmented, which is exactly
 * what the reassembly path is for.
 */
class SocketTransport final : public Transport
{
  public:
    explicit SocketTransport(u32 servers);
    ~SocketTransport() override;

    void sendToServer(u32 s, std::span<const u8> bytes)
        CITADEL_REQUIRES(kSerialPhase) override;
    void sendToClient(u32 s, std::span<const u8> bytes)
        CITADEL_REQUIRES(kSerialPhase) override;
    void poll() CITADEL_REQUIRES(kSerialPhase) override;

  private:
    void sendOn(int fd, u32 s, std::span<const u8> bytes)
        CITADEL_REQUIRES(kSerialPhase);
    void drain(int fd, RxStream &rx);

    std::vector<int> clientFd_; ///< Campaign/client end of pair s.
    std::vector<int> serverFd_; ///< Server end of pair s.
    std::vector<u8> scratch_;   ///< Read buffer for drain().
};

/** Build the transport for `mode`; Direct mode has no transport and
 *  returns nullptr. */
std::unique_ptr<Transport> makeTransport(TransportMode mode,
                                         u32 servers);

// ---- Batched submission shards -------------------------------------

/**
 * Per-server submission queues backed by generation-stamped arena
 * slots. add() writes into the next slot of the target server's shard
 * (growing only to the high-watermark — steady state is append into
 * existing slots); drain() visits a shard in insertion order and
 * checks every slot's stamp against the current generation, so a slot
 * left over from an earlier tick can never be (silently) re-sent.
 * nextGeneration() empties every shard in O(servers).
 */
class SubmissionShards
{
  public:
    explicit SubmissionShards(u32 servers);

    void add(u32 s, const Request &r) CITADEL_REQUIRES(kSerialPhase);

    u32 count(u32 s) const { return counts_[s]; }

    /** Visit server `s`'s pending requests in insertion order; `fn`
     *  receives each request plus its global submission sequence
     *  across all shards this generation. */
    template <typename Fn>
    void drain(u32 s, Fn &&fn) CITADEL_REQUIRES(kSerialPhase)
    {
        const u32 n = counts_[s];
        for (u32 i = 0; i < n; ++i) {
            const Slot &slot = shards_[s][i];
            if (slot.gen != gen_)
                fatal("SubmissionShards: stale slot (gen %llu != %llu) "
                      "leaked into a frame",
                      static_cast<unsigned long long>(slot.gen),
                      static_cast<unsigned long long>(gen_));
            fn(slot.req, slot.seq);
        }
    }

    /** Start a new tick: all shards become empty, slots are reused. */
    void nextGeneration() CITADEL_REQUIRES(kSerialPhase);

    u64 generation() const { return gen_; }

  private:
    struct Slot
    {
        u64 gen = 0;
        u32 seq = 0; ///< Global submission order this generation.
        Request req;
    };

    std::vector<std::vector<Slot>> shards_;
    std::vector<u32> counts_;
    u64 gen_ = 1;
    u32 seqNext_ = 0;
};

} // namespace fleet
} // namespace citadel

#endif // CITADEL_FLEET_WIRE_H
