#include "fleet/client.h"

#include <bit>

#include "common/log.h"
#include "common/rng.h"

namespace citadel {
namespace fleet {

FleetClient::FleetClient(const RetryPolicy &policy, u32 replication,
                         u32 ackQuorum, u64 valueSalt)
    : policy_(policy), replication_(replication), ackQuorum_(ackQuorum),
      valueSalt_(valueSalt)
{
    policy_.validate();
    if (replication_ == 0)
        fatal("FleetClient: replication must be >= 1");
    if (ackQuorum_ == 0 || ackQuorum_ > replication_)
        fatal("FleetClient: ackQuorum must be in [1, replication]");
}

void
FleetClient::connect(PlacementFn placement, SendFn send)
{
    placementFn_ = std::move(placement);
    sendFn_ = std::move(send);
}

u64
FleetClient::valueFor(u64 key, u64 version, u64 salt)
{
    return mix64(key * 0xA24BAED4963EE407ull ^
                 version * 0x9FB21C651E98DF25ull ^ salt);
}

void
FleetClient::wakeAt(u64 tick, u64 op_id)
{
    wake_.emplace(tick, op_id);
}

void
FleetClient::startRead(u64 op_id, u64 key, u64 now)
{
    Op op;
    op.kind = OpKind::Read;
    op.key = key;
    op.deadline = now + policy_.opDeadline;
    auto [it, inserted] = ops_.emplace(op_id, op);
    if (!inserted)
        fatal("FleetClient: duplicate operation id %llu",
              static_cast<unsigned long long>(op_id));
    ++counters_.opsIssued;
    wakeAt(it->second.deadline, op_id);
    sendRead(op_id, it->second, now);
}

void
FleetClient::startWrite(u64 op_id, u64 key, u64 now)
{
    Op op;
    op.kind = OpKind::Write;
    op.key = key;
    op.version = ++versions_[key];
    op.value = valueFor(key, op.version, valueSalt_);
    op.deadline = now + policy_.opDeadline;
    auto [it, inserted] = ops_.emplace(op_id, op);
    if (!inserted)
        fatal("FleetClient: duplicate operation id %llu",
              static_cast<unsigned long long>(op_id));
    ++counters_.opsIssued;
    wakeAt(it->second.deadline, op_id);
    sendWrite(op_id, it->second, now);
}

void
FleetClient::sendRead(u64 op_id, Op &op, u64 now)
{
    placementFn_(op.key, scratch_);
    if (scratch_.empty()) {
        complete(op_id, op, false);
        return;
    }
    ++op.attempts;
    ++counters_.attempts;
    op.lastSentAt = now;
    op.retryAt = 0;
    op.hedged = false;
    op.hedgeServer = kNoServer;
    const u32 slot =
        (op.attempts - 1) % static_cast<u32>(scratch_.size());
    op.mainServer = scratch_[slot];

    Request r;
    r.op = op_id;
    r.attempt = op.attempts - 1;
    r.replica = slot;
    r.kind = OpKind::Read;
    r.key = op.key;
    sendFn_(r, op.mainServer);

    if (policy_.hedgeAfter > 0 &&
        policy_.hedgeAfter < policy_.attemptTimeout &&
        scratch_.size() > 1)
        wakeAt(now + policy_.hedgeAfter, op_id);
    wakeAt(now + policy_.attemptTimeout, op_id);
}

void
FleetClient::sendWrite(u64 op_id, Op &op, u64 now)
{
    placementFn_(op.key, scratch_);
    if (scratch_.empty()) {
        complete(op_id, op, false);
        return;
    }
    ++op.attempts;
    op.lastSentAt = now;
    op.retryAt = 0;
    // Fan out to every replica that has not acknowledged yet.
    for (u32 slot = 0; slot < scratch_.size(); ++slot) {
        const ServerIdx s = scratch_[slot];
        if (s < 64 && (op.ackMask >> s) & 1)
            continue;
        Request r;
        r.op = op_id;
        r.attempt = op.attempts - 1;
        r.replica = slot;
        r.kind = OpKind::Write;
        r.key = op.key;
        r.version = op.version;
        r.value = op.value;
        sendFn_(r, s);
        ++counters_.attempts;
    }
    wakeAt(now + policy_.attemptTimeout, op_id);
}

void
FleetClient::sendHedge(u64 op_id, Op &op)
{
    placementFn_(op.key, scratch_);
    op.hedged = true;
    for (u32 slot = 0; slot < scratch_.size(); ++slot) {
        if (scratch_[slot] == op.mainServer)
            continue;
        op.hedgeServer = scratch_[slot];
        Request r;
        r.op = op_id;
        r.attempt = op.attempts - 1;
        r.replica = slot;
        r.kind = OpKind::Read;
        r.key = op.key;
        sendFn_(r, op.hedgeServer);
        ++counters_.hedges;
        ++counters_.attempts;
        return;
    }
    // No distinct replica left to hedge to; the attempt timeout path
    // still covers the operation.
}

void
FleetClient::beginBackoff(u64 op_id, Op &op, u64 now)
{
    if (op.attempts >= policy_.maxAttempts || now >= op.deadline) {
        complete(op_id, op, false);
        return;
    }
    const u64 delay = policy_.backoff(op_id, op.attempts);
    op.retryAt = now + delay;
    counters_.backoffTicks += delay;
    ++counters_.retries;
    wakeAt(op.retryAt, op_id);
}

void
FleetClient::onResponse(const Response &resp, u64 now)
{
    auto it = ops_.find(resp.op);
    if (it == ops_.end()) {
        // Completed, failed, or a chaos duplicate: idempotence means
        // late copies are simply dropped.
        ++counters_.duplicatesSuppressed;
        return;
    }
    Op &op = it->second;

    switch (resp.status) {
    case Status::Busy:
        ++counters_.busyRejections;
        if (op.retryAt == 0)
            beginBackoff(resp.op, op, now);
        return;

    case Status::DueData:
        if (op.kind == OpKind::Write) {
            // This replica cannot serve the key's line; the timeout
            // path will re-fan-out, and the quorum rule decides.
            if (op.retryAt == 0)
                beginBackoff(resp.op, op, now);
            return;
        }
        ++counters_.dueFailovers;
        if (op.attempts < policy_.maxAttempts && now < op.deadline) {
            // Immediate failover read: the replica's device may be
            // healthy even though this stack lost the line.
            sendRead(resp.op, op, now);
        } else {
            ++counters_.readsDue;
            complete(resp.op, op, false);
        }
        return;

    case Status::Ok:
    case Status::NotFound:
        if (op.kind == OpKind::Read) {
            if (op.hedgeServer != kNoServer &&
                resp.from == op.hedgeServer &&
                resp.from != op.mainServer)
                ++counters_.hedgeWins;
            complete(resp.op, op, true);
            return;
        }
        // Write acknowledgement path.
        if (resp.status != Status::Ok || resp.version != op.version)
            return; // Stale or partial; not an ack for this version.
        if (resp.from >= 64)
            fatal("FleetClient: server index %u exceeds the 64-server "
                  "ack bitmask",
                  resp.from);
        if ((op.ackMask >> resp.from) & 1)
            return; // Duplicate ack from the same replica.
        op.ackMask |= 1ull << resp.from;
        ++op.acks;
        if (op.acks >= ackQuorum_) {
            AckedWrite &aw = acked_[op.key];
            if (op.version > aw.version) {
                aw.version = op.version;
                aw.value = op.value;
            }
            ++counters_.writesAcked;
            complete(resp.op, op, true);
        }
        return;
    }
}

void
FleetClient::evaluate(u64 op_id, u64 now)
{
    auto it = ops_.find(op_id);
    if (it == ops_.end())
        return; // Completed; stale wakeup.
    Op &op = it->second;

    if (now >= op.deadline) {
        complete(op_id, op, false);
        return;
    }
    if (op.retryAt != 0) {
        if (now >= op.retryAt) {
            op.retryAt = 0;
            if (op.kind == OpKind::Read)
                sendRead(op_id, op, now);
            else
                sendWrite(op_id, op, now);
        }
        return;
    }
    const u64 elapsed = now - op.lastSentAt;
    if (op.kind == OpKind::Read && !op.hedged &&
        policy_.hedgeAfter > 0 && elapsed >= policy_.hedgeAfter &&
        elapsed < policy_.attemptTimeout)
        sendHedge(op_id, op);
    if (elapsed >= policy_.attemptTimeout) {
        ++counters_.attemptTimeouts;
        beginBackoff(op_id, op, now);
    }
}

void
FleetClient::tick(u64 now)
{
    while (!wake_.empty() && wake_.begin()->first <= now) {
        const u64 op_id = wake_.begin()->second;
        wake_.erase(wake_.begin());
        evaluate(op_id, now);
    }
}

void
FleetClient::complete(u64 op_id, Op &op, bool acked)
{
    if (acked)
        ++counters_.opsAcked;
    else
        ++counters_.opsFailed;
    (void)op;
    ops_.erase(op_id);
}

void
FleetClient::finish()
{
    counters_.opsUnresolved += ops_.size();
    ops_.clear();
    wake_.clear();
}

void
FleetClient::serialize(ByteSink &sink) const
{
    sink.putU64(acked_.size());
    for (const auto &[key, aw] : acked_) {
        sink.putU64(key);
        sink.putU64(aw.version);
        sink.putU64(aw.value);
    }
}

} // namespace fleet
} // namespace citadel
