#include "fleet/client.h"

#include <algorithm>
#include <bit>

#include "common/log.h"
#include "common/rng.h"

namespace citadel {
namespace fleet {

FleetClient::FleetClient(const RetryPolicy &policy, u32 replication,
                         u32 ackQuorum, u64 valueSalt,
                         const ClientTuning &tuning)
    : policy_(policy), replication_(replication), ackQuorum_(ackQuorum),
      valueSalt_(valueSalt), flat_(tuning.opWindow > 0)
{
    policy_.validate();
    if (replication_ == 0)
        fatal("FleetClient: replication must be >= 1");
    if (ackQuorum_ == 0 || ackQuorum_ > replication_)
        fatal("FleetClient: ackQuorum must be in [1, replication]");
    if ((tuning.opWindow > 0) != (tuning.keySpace > 0))
        fatal("FleetClient: ClientTuning opWindow and keySpace must "
              "both be zero (ordered-map engine) or both positive "
              "(flat engine)");
    hist_.assign(policy_.opDeadline + 2, 0);
    if (flat_) {
        slots_.resize(std::bit_ceil(tuning.opWindow));
        slotMask_ = slots_.size() - 1;
        // Every pending wakeup lies within one op lifetime of the
        // drain cursor, so this horizon makes bucket aliasing
        // impossible (and wakeAt checks anyway).
        const u64 horizon =
            std::max({policy_.opDeadline, policy_.attemptTimeout,
                      policy_.backoffCap, policy_.hedgeAfter}) +
            4;
        wheel_.resize(std::bit_ceil(horizon));
        wheelMask_ = wheel_.size() - 1;
        versionsFlat_.assign(tuning.keySpace, 0);
        ackedFlat_.assign(tuning.keySpace, AckedWrite{});
    }
}

void
FleetClient::connect(PlacementFn placement, SendFn send)
{
    placementFn_ = std::move(placement);
    sendFn_ = std::move(send);
}

u64
FleetClient::valueFor(u64 key, u64 version, u64 salt)
{
    return mix64(key * 0xA24BAED4963EE407ull ^
                 version * 0x9FB21C651E98DF25ull ^ salt);
}

const std::map<u64, FleetClient::AckedWrite> &
FleetClient::ackedWrites() const
{
    if (flat_)
        fatal("FleetClient::ackedWrites is ordered-map-engine only; "
              "use forEachAcked()");
    return acked_;
}

FleetClient::Op &
FleetClient::insertOp(u64 op_id, const Op &op)
{
    if (!flat_) {
        auto [it, inserted] = ops_.emplace(op_id, op);
        if (!inserted)
            fatal("FleetClient: duplicate operation id %llu",
                  static_cast<unsigned long long>(op_id));
        return it->second;
    }
    OpSlot &slot = slots_[op_id & slotMask_];
    if (slot.live) {
        if (slot.id == op_id)
            fatal("FleetClient: duplicate operation id %llu",
                  static_cast<unsigned long long>(op_id));
        fatal("FleetClient: live op id span exceeds the flat-engine "
              "window (%zu slots): op %llu collides with live op %llu",
              slots_.size(), static_cast<unsigned long long>(op_id),
              static_cast<unsigned long long>(slot.id));
    }
    slot.id = op_id;
    slot.live = true;
    slot.op = op;
    ++live_;
    return slot.op;
}

FleetClient::Op *
FleetClient::findOp(u64 op_id)
{
    if (!flat_) {
        auto it = ops_.find(op_id);
        return it == ops_.end() ? nullptr : &it->second;
    }
    OpSlot &slot = slots_[op_id & slotMask_];
    return (slot.live && slot.id == op_id) ? &slot.op : nullptr;
}

void
FleetClient::eraseOp(u64 op_id)
{
    if (!flat_) {
        ops_.erase(op_id);
        return;
    }
    OpSlot &slot = slots_[op_id & slotMask_];
    if (slot.live && slot.id == op_id) {
        slot.live = false;
        --live_;
    }
}

u64 &
FleetClient::nextVersionOf(u64 key)
{
    if (!flat_)
        return versions_[key];
    if (key >= versionsFlat_.size())
        fatal("FleetClient: key %llu outside the flat-engine key "
              "space (%zu)",
              static_cast<unsigned long long>(key),
              versionsFlat_.size());
    return versionsFlat_[key];
}

void
FleetClient::recordAck(u64 key, u64 version, u64 value)
{
    AckedWrite &aw =
        flat_ ? ackedFlat_[key] : acked_[key]; // Writes validated key.
    if (aw.version == 0)
        ++ackedCount_;
    if (version > aw.version) {
        aw.version = version;
        aw.value = value;
    }
}

void
FleetClient::wakeAt(u64 tick, u64 op_id)
{
    if (!flat_) {
        wake_.emplace(tick, op_id);
        return;
    }
    // A wake for an already-drained tick lands in the next undrained
    // bucket — the multimap would process it on the next tick() call
    // too, so the engines stay in lockstep.
    const u64 at = std::max(tick, lastProcessed_ + 1);
    if (at - (lastProcessed_ + 1) >= wheel_.size())
        fatal("FleetClient: wakeup %llu ticks ahead exceeds the wheel "
              "horizon (%zu)",
              static_cast<unsigned long long>(at - lastProcessed_),
              wheel_.size());
    wheel_[at & wheelMask_].push_back(op_id);
}

void
FleetClient::startRead(u64 op_id, u64 key, u64 now)
{
    Op op;
    op.kind = OpKind::Read;
    op.key = key;
    op.issuedAt = now;
    op.deadline = now + policy_.opDeadline;
    Op &live = insertOp(op_id, op);
    ++counters_.opsIssued;
    wakeAt(live.deadline, op_id);
    sendRead(op_id, live, now);
}

void
FleetClient::startWrite(u64 op_id, u64 key, u64 now)
{
    Op op;
    op.kind = OpKind::Write;
    op.key = key;
    op.version = ++nextVersionOf(key);
    op.value = valueFor(key, op.version, valueSalt_);
    op.issuedAt = now;
    op.deadline = now + policy_.opDeadline;
    Op &live = insertOp(op_id, op);
    ++counters_.opsIssued;
    wakeAt(live.deadline, op_id);
    sendWrite(op_id, live, now);
}

void
FleetClient::sendRead(u64 op_id, Op &op, u64 now)
{
    placementFn_(op.key, scratch_);
    if (scratch_.empty()) {
        complete(op_id, op, false, now);
        return;
    }
    ++op.attempts;
    ++counters_.attempts;
    op.lastSentAt = now;
    op.retryAt = 0;
    op.hedged = false;
    op.hedgeServer = kNoServer;
    const u32 slot =
        (op.attempts - 1) % static_cast<u32>(scratch_.size());
    op.mainServer = scratch_[slot];

    Request r;
    r.op = op_id;
    r.attempt = op.attempts - 1;
    r.replica = slot;
    r.kind = OpKind::Read;
    r.key = op.key;
    sendFn_(r, op.mainServer);

    if (policy_.hedgeAfter > 0 &&
        policy_.hedgeAfter < policy_.attemptTimeout &&
        scratch_.size() > 1)
        wakeAt(now + policy_.hedgeAfter, op_id);
    wakeAt(now + policy_.attemptTimeout, op_id);
}

void
FleetClient::sendWrite(u64 op_id, Op &op, u64 now)
{
    placementFn_(op.key, scratch_);
    if (scratch_.empty()) {
        complete(op_id, op, false, now);
        return;
    }
    ++op.attempts;
    op.lastSentAt = now;
    op.retryAt = 0;
    // Fan out to every replica that has not acknowledged yet.
    for (u32 slot = 0; slot < scratch_.size(); ++slot) {
        const ServerIdx s = scratch_[slot];
        if (s < 64 && (op.ackMask >> s) & 1)
            continue;
        Request r;
        r.op = op_id;
        r.attempt = op.attempts - 1;
        r.replica = slot;
        r.kind = OpKind::Write;
        r.key = op.key;
        r.version = op.version;
        r.value = op.value;
        sendFn_(r, s);
        ++counters_.attempts;
    }
    wakeAt(now + policy_.attemptTimeout, op_id);
}

void
FleetClient::sendHedge(u64 op_id, Op &op)
{
    placementFn_(op.key, scratch_);
    op.hedged = true;
    for (u32 slot = 0; slot < scratch_.size(); ++slot) {
        if (scratch_[slot] == op.mainServer)
            continue;
        op.hedgeServer = scratch_[slot];
        Request r;
        r.op = op_id;
        r.attempt = op.attempts - 1;
        r.replica = slot;
        r.kind = OpKind::Read;
        r.key = op.key;
        sendFn_(r, op.hedgeServer);
        ++counters_.hedges;
        ++counters_.attempts;
        return;
    }
    // No distinct replica left to hedge to; the attempt timeout path
    // still covers the operation.
}

void
FleetClient::beginBackoff(u64 op_id, Op &op, u64 now)
{
    if (op.attempts >= policy_.maxAttempts || now >= op.deadline) {
        complete(op_id, op, false, now);
        return;
    }
    const u64 delay = policy_.backoff(op_id, op.attempts);
    op.retryAt = now + delay;
    counters_.backoffTicks += delay;
    ++counters_.retries;
    wakeAt(op.retryAt, op_id);
}

void
FleetClient::onResponse(const Response &resp, u64 now)
{
    Op *found = findOp(resp.op);
    if (!found) {
        // Completed, failed, or a chaos duplicate: idempotence means
        // late copies are simply dropped.
        ++counters_.duplicatesSuppressed;
        return;
    }
    Op &op = *found;

    switch (resp.status) {
    case Status::Busy:
        ++counters_.busyRejections;
        if (op.retryAt == 0)
            beginBackoff(resp.op, op, now);
        return;

    case Status::DueData:
        if (op.kind == OpKind::Write) {
            // This replica cannot serve the key's line; the timeout
            // path will re-fan-out, and the quorum rule decides.
            if (op.retryAt == 0)
                beginBackoff(resp.op, op, now);
            return;
        }
        ++counters_.dueFailovers;
        if (op.attempts < policy_.maxAttempts && now < op.deadline) {
            // Immediate failover read: the replica's device may be
            // healthy even though this stack lost the line.
            sendRead(resp.op, op, now);
        } else {
            ++counters_.readsDue;
            complete(resp.op, op, false, now);
        }
        return;

    case Status::Ok:
    case Status::NotFound:
        if (op.kind == OpKind::Read) {
            if (op.hedgeServer != kNoServer &&
                resp.from == op.hedgeServer &&
                resp.from != op.mainServer)
                ++counters_.hedgeWins;
            complete(resp.op, op, true, now);
            return;
        }
        // Write acknowledgement path.
        if (resp.status != Status::Ok || resp.version != op.version)
            return; // Stale or partial; not an ack for this version.
        if (resp.from >= 64)
            fatal("FleetClient: server index %u exceeds the 64-server "
                  "ack bitmask",
                  resp.from);
        if ((op.ackMask >> resp.from) & 1)
            return; // Duplicate ack from the same replica.
        op.ackMask |= 1ull << resp.from;
        ++op.acks;
        if (op.acks >= ackQuorum_) {
            recordAck(op.key, op.version, op.value);
            ++counters_.writesAcked;
            complete(resp.op, op, true, now);
        }
        return;
    }
}

void
FleetClient::evaluate(u64 op_id, u64 now)
{
    Op *found = findOp(op_id);
    if (!found)
        return; // Completed; stale wakeup.
    Op &op = *found;

    if (now >= op.deadline) {
        complete(op_id, op, false, now);
        return;
    }
    if (op.retryAt != 0) {
        if (now >= op.retryAt) {
            op.retryAt = 0;
            if (op.kind == OpKind::Read)
                sendRead(op_id, op, now);
            else
                sendWrite(op_id, op, now);
        }
        return;
    }
    const u64 elapsed = now - op.lastSentAt;
    if (op.kind == OpKind::Read && !op.hedged &&
        policy_.hedgeAfter > 0 && elapsed >= policy_.hedgeAfter &&
        elapsed < policy_.attemptTimeout)
        sendHedge(op_id, op);
    if (elapsed >= policy_.attemptTimeout) {
        ++counters_.attemptTimeouts;
        beginBackoff(op_id, op, now);
    }
}

void
FleetClient::tick(u64 now)
{
    if (!flat_) {
        while (!wake_.empty() && wake_.begin()->first <= now) {
            const u64 op_id = wake_.begin()->second;
            wake_.erase(wake_.begin());
            evaluate(op_id, now);
        }
        return;
    }
    // Drain bucket-by-bucket in tick order; within a bucket, insertion
    // order (the multimap's equal-key FIFO). The index loop re-reads
    // size() so a zero-delay wake inserted while its own tick drains
    // is still processed this call — exactly the multimap behavior.
    for (u64 t = lastProcessed_ + 1; t <= now; ++t) {
        std::vector<u64> &bucket = wheel_[t & wheelMask_];
        for (std::size_t i = 0; i < bucket.size(); ++i)
            evaluate(bucket[i], now);
        bucket.clear();
        lastProcessed_ = t;
    }
}

void
FleetClient::complete(u64 op_id, Op &op, bool acked, u64 now)
{
    if (acked) {
        ++counters_.opsAcked;
        const u64 latency =
            std::min<u64>(now - op.issuedAt, hist_.size() - 1);
        ++hist_[latency];
    } else {
        ++counters_.opsFailed;
    }
    eraseOp(op_id);
}

void
FleetClient::finish()
{
    counters_.opsUnresolved += inflight();
    ops_.clear();
    wake_.clear();
    if (flat_) {
        for (OpSlot &slot : slots_)
            slot.live = false;
        live_ = 0;
        for (auto &bucket : wheel_)
            bucket.clear();
    }
}

void
FleetClient::putOp(ByteSink &sink, const Op &op)
{
    sink.putU8(static_cast<u8>(op.kind));
    sink.putU64(op.key);
    sink.putU64(op.version);
    sink.putU64(op.value);
    sink.putU64(op.issuedAt);
    sink.putU64(op.deadline);
    sink.putU32(op.attempts);
    sink.putU64(op.lastSentAt);
    sink.putU64(op.retryAt);
    sink.putBool(op.hedged);
    sink.putU32(op.mainServer);
    sink.putU32(op.hedgeServer);
    sink.putU64(op.ackMask);
    sink.putU32(op.acks);
}

FleetClient::Op
FleetClient::getOp(ByteSource &src)
{
    Op op;
    op.kind = static_cast<OpKind>(src.getU8());
    op.key = src.getU64();
    op.version = src.getU64();
    op.value = src.getU64();
    op.issuedAt = src.getU64();
    op.deadline = src.getU64();
    op.attempts = src.getU32();
    op.lastSentAt = src.getU64();
    op.retryAt = src.getU64();
    op.hedged = src.getBool();
    op.mainServer = src.getU32();
    op.hedgeServer = src.getU32();
    op.ackMask = src.getU64();
    op.acks = src.getU32();
    return op;
}

void
FleetClient::saveState(ByteSink &sink) const
{
    counters_.serialize(sink);
    sink.putU64(ackedCount_);
    for (const u64 bucket : hist_)
        sink.putU64(bucket);
    if (!flat_) {
        sink.putU64(versions_.size());
        for (const auto &[key, v] : versions_) {
            sink.putU64(key);
            sink.putU64(v);
        }
        sink.putU64(acked_.size());
        for (const auto &[key, aw] : acked_) {
            sink.putU64(key);
            sink.putU64(aw.version);
            sink.putU64(aw.value);
        }
        sink.putU64(ops_.size());
        for (const auto &[id, op] : ops_) {
            sink.putU64(id);
            putOp(sink, op);
        }
        // Multimap iteration order IS equal-key FIFO order; restoring
        // with emplace_hint(end) preserves it exactly.
        sink.putU64(wake_.size());
        for (const auto &[tick, id] : wake_) {
            sink.putU64(tick);
            sink.putU64(id);
        }
        return;
    }
    for (const u64 v : versionsFlat_)
        sink.putU64(v);
    for (const AckedWrite &aw : ackedFlat_) {
        sink.putU64(aw.version);
        sink.putU64(aw.value);
    }
    sink.putU64(static_cast<u64>(live_));
    for (const OpSlot &slot : slots_) {
        if (!slot.live)
            continue;
        sink.putU64(slot.id);
        putOp(sink, slot.op);
    }
    sink.putU64(lastProcessed_);
    // Buckets are restored by wheel index: together with
    // lastProcessed_ that reproduces the exact drain behavior.
    for (const auto &bucket : wheel_) {
        sink.putU64(bucket.size());
        for (const u64 id : bucket)
            sink.putU64(id);
    }
}

void
FleetClient::loadState(ByteSource &src)
{
    counters_.deserialize(src);
    ackedCount_ = src.getU64();
    for (u64 &bucket : hist_)
        bucket = src.getU64();
    if (!flat_) {
        versions_.clear();
        const u64 nv = src.getCount(2 * sizeof(u64));
        for (u64 i = 0; i < nv; ++i) {
            const u64 key = src.getU64();
            versions_.emplace_hint(versions_.end(), key, src.getU64());
        }
        acked_.clear();
        const u64 na = src.getCount(3 * sizeof(u64));
        for (u64 i = 0; i < na; ++i) {
            const u64 key = src.getU64();
            AckedWrite aw;
            aw.version = src.getU64();
            aw.value = src.getU64();
            acked_.emplace_hint(acked_.end(), key, aw);
        }
        ops_.clear();
        const u64 no = src.getCount(sizeof(u64));
        for (u64 i = 0; i < no; ++i) {
            const u64 id = src.getU64();
            ops_.emplace_hint(ops_.end(), id, getOp(src));
        }
        wake_.clear();
        const u64 nw = src.getCount(2 * sizeof(u64));
        for (u64 i = 0; i < nw; ++i) {
            const u64 tick = src.getU64();
            wake_.emplace_hint(wake_.end(), tick, src.getU64());
        }
        return;
    }
    for (u64 &v : versionsFlat_)
        v = src.getU64();
    for (AckedWrite &aw : ackedFlat_) {
        aw.version = src.getU64();
        aw.value = src.getU64();
    }
    for (OpSlot &slot : slots_)
        slot.live = false;
    live_ = 0;
    const u64 nl = src.getCount(sizeof(u64));
    for (u64 i = 0; i < nl; ++i) {
        const u64 id = src.getU64();
        OpSlot &slot = slots_[id & slotMask_];
        slot.id = id;
        slot.live = true;
        slot.op = getOp(src);
        ++live_;
    }
    lastProcessed_ = src.getU64();
    for (auto &bucket : wheel_) {
        bucket.clear();
        const u64 n = src.getCount(sizeof(u64));
        for (u64 i = 0; i < n; ++i)
            bucket.push_back(src.getU64());
    }
}

void
FleetClient::serialize(ByteSink &sink) const
{
    sink.putU64(ackedCount_);
    forEachAcked([&](u64 key, const AckedWrite &aw) {
        sink.putU64(key);
        sink.putU64(aw.version);
        sink.putU64(aw.value);
    });
    sink.putU64(hist_.size());
    for (u64 bucket : hist_)
        sink.putU64(bucket);
}

} // namespace fleet
} // namespace citadel
