#include "fleet/coordinator.h"

#include <algorithm>

#include "common/log.h"
#include "ecc/crc32.h"

namespace citadel {
namespace fleet {

void
CoordinatorOptions::validate() const
{
    if (healthEvery == 0)
        fatal("CoordinatorOptions: healthEvery must be >= 1");
    if (failThreshold == 0)
        fatal("CoordinatorOptions: failThreshold must be >= 1");
    if (capacityFloor < 0.0 || capacityFloor > 1.0)
        fatal("CoordinatorOptions: capacityFloor must be in [0, 1]");
    if (repairPerTick == 0)
        fatal("CoordinatorOptions: repairPerTick must be >= 1");
    if (vnodes == 0)
        fatal("CoordinatorOptions: vnodes must be >= 1");
    if (warmPerTick == 0)
        fatal("CoordinatorOptions: warmPerTick must be >= 1");
    if (warmBatch == 0 || warmBatch > kMaxFrameRecords)
        fatal("CoordinatorOptions: warmBatch must be in [1, %u]",
              kMaxFrameRecords);
    if (warmMaxAttempts == 0)
        fatal("CoordinatorOptions: warmMaxAttempts must be >= 1");
    if (!(loadAlpha > 0.0) || loadAlpha > 1.0)
        fatal("CoordinatorOptions: loadAlpha must be in (0, 1]");
    if (overloadFactor < 1.0)
        fatal("CoordinatorOptions: overloadFactor must be >= 1");
    if (hotRounds == 0)
        fatal("CoordinatorOptions: hotRounds must be >= 1");
    if (migratePerRound == 0)
        fatal("CoordinatorOptions: migratePerRound must be >= 1");
}

Coordinator::Coordinator(const CoordinatorOptions &opts, u32 replication,
                         u64 seed,
                         std::vector<std::unique_ptr<StackServer>> &fleet)
    : opts_(opts), replication_(replication),
      ring_(static_cast<u32>(fleet.size()), opts.vnodes, seed),
      fleet_(fleet), missed_(fleet.size(), 0), warm_(fleet.size()),
      roundLoad_(fleet.size(), 0), ewma_(fleet.size(), 0.0),
      hotStreak_(fleet.size(), 0)
{
    opts_.validate();
    if (replication_ == 0)
        fatal("Coordinator: replication must be >= 1");
}

void
Coordinator::enablePlacementCache(u64 keySpace)
{
    if (keySpace == 0)
        fatal("Coordinator: placement cache needs a positive key "
              "space");
    cacheStamp_.assign(keySpace, 0);
    cache_.assign(keySpace, {});
}

void
Coordinator::placement(u64 key, std::vector<ServerIdx> &out) const
{
    if (key < cacheStamp_.size()) {
        if (cacheStamp_[key] == ring_.epoch()) {
            out = cache_[key];
        } else {
            ring_.placement(key, replication_, out);
            cache_[key] = out;
            cacheStamp_[key] = ring_.epoch();
        }
    } else {
        ring_.placement(key, replication_, out);
    }
    if (overrides_.empty())
        return;
    const auto it = overrides_.find(key);
    if (it == overrides_.end())
        return;
    // A live override promotes the migrated-to server to primary; the
    // tail of the ring walk backs it up, truncated to the replication
    // factor. Overrides to servers that have since left the ring are
    // pruned eagerly (dropOverridesTo), so this target is always live.
    const ServerIdx target = it->second;
    const auto pos = std::find(out.begin(), out.end(), target);
    if (pos != out.end())
        out.erase(pos);
    out.insert(out.begin(), target);
    if (out.size() > replication_)
        out.resize(replication_);
}

bool
Coordinator::inService(ServerIdx s) const
{
    return ring_.contains(s) && fleet_[s]->serving();
}

bool
Coordinator::warming() const
{
    for (const WarmState &w : warm_)
        if (w.active)
            return true;
    return false;
}

void
Coordinator::noteLoad(ServerIdx server, u64 key)
{
    if (!opts_.rebalanceEnabled)
        return;
    ++roundLoad_[server];
    ++keyLoad_[key];
}

void
Coordinator::dropOverridesTo(ServerIdx s)
{
    for (auto it = overrides_.begin(); it != overrides_.end();)
        it = it->second == s ? overrides_.erase(it) : std::next(it);
}

void
Coordinator::evict(ServerIdx s, bool capacity, FleetCounters &counters)
{
    if (!ring_.contains(s))
        return;
    // Never evict the last live server: degraded service beats no
    // service, and the audit only requires single-failure durability.
    if (ring_.liveCount() <= 1)
        return;
    ring_.remove(s); // Bumps the epoch: cached placements invalidate.
    fleet_[s]->fence();
    missed_[s] = 0;
    dropOverridesTo(s);
    ++counters.failovers;
    if (capacity)
        ++counters.capacityMigrations;
    // Every key whose replica chain included s needs a new copy.
    rescanNeeded_ = true;
}

void
Coordinator::requestJoin(ServerIdx s, u64 now, FleetCounters &counters)
{
    (void)counters;
    if (s >= fleet_.size() || fleet_[s]->state() != ServerState::Fenced)
        return;
    if (warm_[s].active)
        return;
    if (ring_.contains(s)) {
        // Crashed and restarted before the probe loop could evict it:
        // its membership survived but its data did not. Strip the
        // stale membership first; the join below re-earns it.
        ring_.remove(s);
        dropOverridesTo(s);
        rescanNeeded_ = true;
    }
    fleet_[s]->beginWarming();
    WarmState w;
    w.active = true;
    w.attempts = 1;
    w.resumeAt = now;
    w.epochAtStart = ring_.epoch();
    w.crc = Crc32::begin();
    warm_[s] = w;
}

void
Coordinator::restartOrAbortWarm(ServerIdx s, u64 now,
                                FleetCounters &counters)
{
    WarmState &w = warm_[s];
    ++w.attempts;
    if (w.attempts > opts_.warmMaxAttempts) {
        fleet_[s]->abortWarming();
        ++counters.warmAborts;
        w = WarmState{};
        return;
    }
    ++counters.warmRestarts;
    // Reset the scan and re-arm the handshake on both sides (the
    // server's beginWarming() is idempotent in Warming and zeroes its
    // CRC); linear backoff bounds ring-churn livelock.
    fleet_[s]->beginWarming();
    w.epochAtStart = ring_.epoch();
    w.srcServer = 0;
    w.haveLast = false;
    w.lastKey = 0;
    w.crc = Crc32::begin();
    w.records = 0;
    w.resumeAt = now + opts_.warmBackoffTicks * w.attempts;
}

void
Coordinator::pumpWarm(u64 now, FleetCounters &counters)
{
    for (ServerIdx s = 0; s < fleet_.size(); ++s) {
        WarmState &w = warm_[s];
        if (!w.active)
            continue;
        if (fleet_[s]->state() != ServerState::Warming) {
            // Crashed mid-warm: the join dies with the process. A
            // later restart event files a fresh requestJoin.
            w = WarmState{};
            continue;
        }
        if (now < w.resumeAt)
            continue;
        if (ring_.epoch() != w.epochAtStart) {
            // Ring churn invalidated the prospective shard mid-scan.
            restartOrAbortWarm(s, now, counters);
            continue;
        }
        warmWriter_.beginRequestFrame();
        u32 inFrame = 0;
        u32 left = opts_.warmPerTick;
        bool done = false;
        const auto ship = [&] {
            if (inFrame == 0)
                return;
            fleet_[s]->warmFrame(warmWriter_.finish());
            warmWriter_.beginRequestFrame();
            inFrame = 0;
        };
        while (left > 0) {
            if (w.srcServer >= fleet_.size()) {
                done = true;
                break;
            }
            if (w.srcServer == s || !ring_.contains(w.srcServer) ||
                !fleet_[w.srcServer]->dataReadable()) {
                ++w.srcServer;
                w.haveLast = false;
                continue;
            }
            u64 key = 0, version = 0, value = 0;
            if (!fleet_[w.srcServer]->kvScan(w.haveLast, w.lastKey, key,
                                             version, value)) {
                ++w.srcServer;
                w.haveLast = false;
                continue;
            }
            w.lastKey = key;
            w.haveLast = true;
            --left;
            // Stream only the joining server's prospective shard:
            // keys it would own once added. Keys replicated on
            // several sources stream once per source — idempotent
            // max-merge on the server, and both CRC sides fold the
            // identical sequence.
            ring_.placementPlus(s, key, replication_, scratch_);
            if (std::find(scratch_.begin(), scratch_.end(), s) ==
                scratch_.end())
                continue;
            Request r;
            r.kind = OpKind::Write;
            r.key = key;
            r.version = version;
            r.value = value;
            warmWriter_.add(r);
            w.crc = Crc32::update(w.crc, key);
            w.crc = Crc32::update(w.crc, version);
            w.crc = Crc32::update(w.crc, value);
            ++w.records;
            ++counters.warmFills;
            if (++inFrame >= opts_.warmBatch)
                ship();
        }
        ship();
        if (done) {
            // The warming handshake: both ends walked the same record
            // stream or the server dies loudly.
            fleet_[s]->admit(w.crc);
            ring_.add(s); // Epoch bump; caches invalidate lazily.
            missed_[s] = 0;
            ++counters.serverJoins;
            w = WarmState{};
            // Writes that landed mid-scan went only to the pre-join
            // replica set; a repair pass pushes the newest versions
            // onto the new owner and closes the staleness window.
            rescanNeeded_ = true;
        }
    }
}

void
Coordinator::rebalance(u64 now, FleetCounters &counters)
{
    // Fold this round's send counts into the per-server EWMA.
    const double a = opts_.loadAlpha;
    double sum = 0.0;
    u32 inRing = 0;
    for (ServerIdx s = 0; s < fleet_.size(); ++s) {
        ewma_[s] = a * static_cast<double>(roundLoad_[s]) +
                   (1.0 - a) * ewma_[s];
        roundLoad_[s] = 0;
        if (ring_.contains(s)) {
            sum += ewma_[s];
            ++inRing;
        }
    }
    // Halve per-key counts so the hot set tracks the present, not the
    // whole campaign; cold keys fall out of the map entirely.
    for (auto it = keyLoad_.begin(); it != keyLoad_.end();)
        it = (it->second >>= 1) == 0 ? keyLoad_.erase(it)
                                     : std::next(it);
    if (inRing == 0)
        return;
    const double mean = sum / inRing;
    if (mean < static_cast<double>(opts_.minRoundLoad)) {
        // Idle fleet: imbalance over noise-level traffic is not worth
        // moving data for (the hysteresis floor).
        std::fill(hotStreak_.begin(), hotStreak_.end(), 0);
        return;
    }
    for (ServerIdx s = 0; s < fleet_.size(); ++s) {
        if (!ring_.contains(s) || !fleet_[s]->serving()) {
            hotStreak_[s] = 0;
            continue;
        }
        if (ewma_[s] > opts_.overloadFactor * mean)
            ++hotStreak_[s];
        else
            hotStreak_[s] = 0;
        if (hotStreak_[s] < opts_.hotRounds)
            continue;
        hotStreak_[s] = 0; // Hysteresis: re-qualify before moving more.
        // Coolest serving target takes the heat.
        ServerIdx target = kNoServer;
        for (ServerIdx t = 0; t < fleet_.size(); ++t) {
            if (t == s || !ring_.contains(t) || !fleet_[t]->serving())
                continue;
            if (target == kNoServer || ewma_[t] < ewma_[target])
                target = t;
        }
        if (target == kNoServer)
            continue;
        // Hottest keys first; (count desc, key asc) is a total order.
        hotScratch_.clear();
        for (const auto &[key, cnt] : keyLoad_)
            hotScratch_.push_back({cnt, key});
        std::sort(hotScratch_.begin(), hotScratch_.end(),
                  [](const auto &x, const auto &y) {
                      if (x.first != y.first)
                          return x.first > y.first;
                      return x.second < y.second;
                  });
        u32 moved = 0;
        for (const auto &[cnt, key] : hotScratch_) {
            (void)cnt;
            if (moved >= opts_.migratePerRound)
                break; // Rate cap: rebalance cannot thrash.
            const auto cd = cooldown_.find(key);
            if (cd != cooldown_.end() && now < cd->second)
                continue;
            placement(key, scratch_);
            if (scratch_.empty() || scratch_[0] != s)
                continue;
            // Install the newest replica on the target before the
            // override flips reads toward it.
            u64 bestV = 0, bestVal = 0;
            for (const ServerIdx r : scratch_) {
                if (!fleet_[r]->dataReadable())
                    continue;
                const auto [v, val] = fleet_[r]->lookup(key);
                if (v > bestV) {
                    bestV = v;
                    bestVal = val;
                }
            }
            if (bestV > 0 &&
                fleet_[target]->lookup(key).first < bestV) {
                fleet_[target]->applyReplica(key, bestV, bestVal);
                ++counters.repairPushes;
            }
            overrides_[key] = target;
            cooldown_[key] = now + opts_.keyCooldownTicks;
            ++counters.loadMigrations;
            ++moved;
        }
    }
    // Expired cooldowns are dead weight; drop them.
    for (auto it = cooldown_.begin(); it != cooldown_.end();)
        it = now >= it->second ? cooldown_.erase(it) : std::next(it);
}

void
Coordinator::tick(u64 now, FleetCounters &counters)
{
    if (now > 0 && now % opts_.healthEvery == 0) {
        for (ServerIdx s = 0; s < fleet_.size(); ++s) {
            if (!ring_.contains(s))
                continue;
            ++counters.healthProbes;
            if (!fleet_[s]->respondsToProbe(now)) {
                ++counters.probesMissed;
                if (++missed_[s] >= opts_.failThreshold)
                    evict(s, false, counters);
                continue;
            }
            missed_[s] = 0;
            // The stack answers, but its degradation ladder may have
            // retired enough capacity that it should stop taking new
            // placement: migrate its shards while it can still serve
            // as a repair source.
            if (!ring_.contains(s))
                continue;
            const RasHealthSignals h = fleet_[s]->health();
            if (!h.healthyAbove(opts_.capacityFloor))
                evict(s, true, counters);
        }
        if (opts_.rebalanceEnabled)
            rebalance(now, counters);
    }
    pumpWarm(now, counters);
    pumpRepair(opts_.repairPerTick, counters);
}

void
Coordinator::pumpRepair(u32 budget, FleetCounters &counters)
{
    if (rescanNeeded_) {
        // (Re)start the scan from the top; a topology change mid-scan
        // invalidates placements already visited.
        scanning_ = true;
        scanServer_ = 0;
        haveLastKey_ = false;
        rescanNeeded_ = false;
    }
    if (!scanning_)
        return;

    u32 left = budget;
    while (left > 0) {
        if (scanServer_ >= fleet_.size()) {
            scanning_ = false;
            return;
        }
        StackServer &src = *fleet_[scanServer_];
        if (!src.dataReadable()) {
            ++scanServer_;
            haveLastKey_ = false;
            continue;
        }
        // kvScan is the layout-agnostic ascending-key cursor (ordered
        // map or dense array on the server side); the resume-from-
        // lastKey_ semantics are exactly the old upper_bound walk.
        u64 key = 0, version = 0, value = 0;
        if (!src.kvScan(haveLastKey_, lastKey_, key, version, value)) {
            ++scanServer_;
            haveLastKey_ = false;
            continue;
        }
        while (left > 0) {
            lastKey_ = key;
            haveLastKey_ = true;
            --left;
            placement(key, scratch_);
            for (const ServerIdx t : scratch_) {
                if (t == scanServer_ || !fleet_[t]->serving())
                    continue;
                if (fleet_[t]->lookup(key).first < version) {
                    fleet_[t]->applyReplica(key, version, value);
                    ++counters.repairPushes;
                }
            }
            if (!src.kvScan(true, key, key, version, value)) {
                ++scanServer_;
                haveLastKey_ = false;
                break;
            }
        }
    }
}

void
Coordinator::drainRepairs(FleetCounters &counters)
{
    // Bounded: each full scan visits every readable server's map once,
    // and draining runs at most one restart per preceding topology
    // change (evictions cannot happen here).
    while (repairing())
        pumpRepair(0xFFFFFFFFu, counters);
}

void
Coordinator::drainElastic(u64 now, FleetCounters &counters)
{
    // Advance a virtual clock so warm backoff windows elapse. Bounded:
    // every warm scan either finishes (finite sources x keys per
    // attempt, <= warmMaxAttempts attempts, and the only mid-drain
    // epoch changes are admissions — at most one per server) or
    // aborts; then it is drainRepairs().
    u64 t = now;
    u64 guard = 0;
    while (warming() || repairing()) {
        pumpWarm(t, counters);
        pumpRepair(0xFFFFFFFFu, counters);
        ++t;
        if (++guard > 100000000ull)
            fatal("Coordinator::drainElastic: no forward progress");
    }
}

void
Coordinator::serialize(ByteSink &sink) const
{
    // The fingerprint is the full control-plane state: anything that
    // could steer a future placement, repair, join, or migration.
    saveState(sink);
}

void
Coordinator::saveState(ByteSink &sink) const
{
    ring_.saveState(sink);
    for (const u32 m : missed_)
        sink.putU32(m);
    sink.putBool(rescanNeeded_);
    sink.putBool(scanning_);
    sink.putU32(scanServer_);
    sink.putBool(haveLastKey_);
    sink.putU64(lastKey_);
    for (const WarmState &w : warm_) {
        sink.putBool(w.active);
        sink.putU32(w.attempts);
        sink.putU64(w.resumeAt);
        sink.putU64(w.epochAtStart);
        sink.putU32(w.srcServer);
        sink.putBool(w.haveLast);
        sink.putU64(w.lastKey);
        sink.putU32(w.crc);
        sink.putU64(w.records);
    }
    for (const u64 l : roundLoad_)
        sink.putU64(l);
    for (const double e : ewma_)
        sink.putDouble(e);
    for (const u32 h : hotStreak_)
        sink.putU32(h);
    sink.putU64(keyLoad_.size());
    for (const auto &[key, cnt] : keyLoad_) {
        sink.putU64(key);
        sink.putU64(cnt);
    }
    sink.putU64(overrides_.size());
    for (const auto &[key, target] : overrides_) {
        sink.putU64(key);
        sink.putU32(target);
    }
    sink.putU64(cooldown_.size());
    for (const auto &[key, until] : cooldown_) {
        sink.putU64(key);
        sink.putU64(until);
    }
}

void
Coordinator::loadState(ByteSource &src)
{
    ring_.loadState(src);
    for (u32 &m : missed_)
        m = src.getU32();
    rescanNeeded_ = src.getBool();
    scanning_ = src.getBool();
    scanServer_ = src.getU32();
    haveLastKey_ = src.getBool();
    lastKey_ = src.getU64();
    for (WarmState &w : warm_) {
        w.active = src.getBool();
        w.attempts = src.getU32();
        w.resumeAt = src.getU64();
        w.epochAtStart = src.getU64();
        w.srcServer = src.getU32();
        w.haveLast = src.getBool();
        w.lastKey = src.getU64();
        w.crc = src.getU32();
        w.records = src.getU64();
    }
    for (u64 &l : roundLoad_)
        l = src.getU64();
    for (double &e : ewma_)
        e = src.getDouble();
    for (u32 &h : hotStreak_)
        h = src.getU32();
    keyLoad_.clear();
    const u64 nk = src.getCount(2 * sizeof(u64));
    for (u64 i = 0; i < nk; ++i) {
        const u64 key = src.getU64();
        keyLoad_.emplace_hint(keyLoad_.end(), key, src.getU64());
    }
    overrides_.clear();
    const u64 no = src.getCount(sizeof(u64) + sizeof(u32));
    for (u64 i = 0; i < no; ++i) {
        const u64 key = src.getU64();
        overrides_.emplace_hint(overrides_.end(), key, src.getU32());
    }
    cooldown_.clear();
    const u64 nc = src.getCount(2 * sizeof(u64));
    for (u64 i = 0; i < nc; ++i) {
        const u64 key = src.getU64();
        cooldown_.emplace_hint(cooldown_.end(), key, src.getU64());
    }
    // The placement cache is a memo, not state: stamp 0 never matches
    // a real epoch (epochs start at 1), so every entry re-walks the
    // restored ring lazily and identically.
    std::fill(cacheStamp_.begin(), cacheStamp_.end(), 0);
}

} // namespace fleet
} // namespace citadel
