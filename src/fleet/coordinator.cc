#include "fleet/coordinator.h"

#include <algorithm>

#include "common/log.h"

namespace citadel {
namespace fleet {

void
CoordinatorOptions::validate() const
{
    if (healthEvery == 0)
        fatal("CoordinatorOptions: healthEvery must be >= 1");
    if (failThreshold == 0)
        fatal("CoordinatorOptions: failThreshold must be >= 1");
    if (capacityFloor < 0.0 || capacityFloor > 1.0)
        fatal("CoordinatorOptions: capacityFloor must be in [0, 1]");
    if (repairPerTick == 0)
        fatal("CoordinatorOptions: repairPerTick must be >= 1");
    if (vnodes == 0)
        fatal("CoordinatorOptions: vnodes must be >= 1");
}

Coordinator::Coordinator(const CoordinatorOptions &opts, u32 replication,
                         u64 seed,
                         std::vector<std::unique_ptr<StackServer>> &fleet)
    : opts_(opts), replication_(replication),
      ring_(static_cast<u32>(fleet.size()), opts.vnodes, seed),
      fleet_(fleet), missed_(fleet.size(), 0)
{
    opts_.validate();
    if (replication_ == 0)
        fatal("Coordinator: replication must be >= 1");
}

void
Coordinator::enablePlacementCache(u64 keySpace)
{
    if (keySpace == 0)
        fatal("Coordinator: placement cache needs a positive key "
              "space");
    cacheStamp_.assign(keySpace, 0);
    cache_.assign(keySpace, {});
}

void
Coordinator::placement(u64 key, std::vector<ServerIdx> &out) const
{
    if (key < cacheStamp_.size()) {
        if (cacheStamp_[key] == ringEpoch_) {
            out = cache_[key];
            return;
        }
        ring_.placement(key, replication_, out);
        cache_[key] = out;
        cacheStamp_[key] = ringEpoch_;
        return;
    }
    ring_.placement(key, replication_, out);
}

bool
Coordinator::inService(ServerIdx s) const
{
    return ring_.contains(s) && fleet_[s]->serving();
}

void
Coordinator::evict(ServerIdx s, bool capacity, FleetCounters &counters)
{
    if (!ring_.contains(s))
        return;
    // Never evict the last live server: degraded service beats no
    // service, and the audit only requires single-failure durability.
    if (ring_.liveCount() <= 1)
        return;
    ring_.remove(s);
    ++ringEpoch_; // Invalidate every cached placement lazily.
    fleet_[s]->fence();
    missed_[s] = 0;
    ++counters.failovers;
    if (capacity)
        ++counters.capacityMigrations;
    // Every key whose replica chain included s needs a new copy.
    rescanNeeded_ = true;
}

void
Coordinator::tick(u64 now, FleetCounters &counters)
{
    if (now > 0 && now % opts_.healthEvery == 0) {
        for (ServerIdx s = 0; s < fleet_.size(); ++s) {
            if (!ring_.contains(s))
                continue;
            ++counters.healthProbes;
            if (!fleet_[s]->respondsToProbe(now)) {
                ++counters.probesMissed;
                if (++missed_[s] >= opts_.failThreshold)
                    evict(s, false, counters);
                continue;
            }
            missed_[s] = 0;
            // The stack answers, but its degradation ladder may have
            // retired enough capacity that it should stop taking new
            // placement: migrate its shards while it can still serve
            // as a repair source.
            if (!ring_.contains(s))
                continue;
            const RasHealthSignals h = fleet_[s]->health();
            if (!h.healthyAbove(opts_.capacityFloor))
                evict(s, true, counters);
        }
    }
    pumpRepair(opts_.repairPerTick, counters);
}

void
Coordinator::pumpRepair(u32 budget, FleetCounters &counters)
{
    if (rescanNeeded_) {
        // (Re)start the scan from the top; a topology change mid-scan
        // invalidates placements already visited.
        scanning_ = true;
        scanServer_ = 0;
        haveLastKey_ = false;
        rescanNeeded_ = false;
    }
    if (!scanning_)
        return;

    u32 left = budget;
    while (left > 0) {
        if (scanServer_ >= fleet_.size()) {
            scanning_ = false;
            return;
        }
        StackServer &src = *fleet_[scanServer_];
        if (!src.dataReadable()) {
            ++scanServer_;
            haveLastKey_ = false;
            continue;
        }
        // kvScan is the layout-agnostic ascending-key cursor (ordered
        // map or dense array on the server side); the resume-from-
        // lastKey_ semantics are exactly the old upper_bound walk.
        u64 key = 0, version = 0, value = 0;
        if (!src.kvScan(haveLastKey_, lastKey_, key, version, value)) {
            ++scanServer_;
            haveLastKey_ = false;
            continue;
        }
        while (left > 0) {
            lastKey_ = key;
            haveLastKey_ = true;
            --left;
            placement(key, scratch_);
            for (const ServerIdx t : scratch_) {
                if (t == scanServer_ || !fleet_[t]->serving())
                    continue;
                if (fleet_[t]->lookup(key).first < version) {
                    fleet_[t]->applyReplica(key, version, value);
                    ++counters.repairPushes;
                }
            }
            if (!src.kvScan(true, key, key, version, value)) {
                ++scanServer_;
                haveLastKey_ = false;
                break;
            }
        }
    }
}

void
Coordinator::drainRepairs(FleetCounters &counters)
{
    // Bounded: each full scan visits every readable server's map once,
    // and draining runs at most one restart per preceding topology
    // change (evictions cannot happen here).
    while (repairing())
        pumpRepair(0xFFFFFFFFu, counters);
}

void
Coordinator::serialize(ByteSink &sink) const
{
    ring_.serialize(sink);
    for (const u32 m : missed_)
        sink.putU64(m);
}

} // namespace fleet
} // namespace citadel
