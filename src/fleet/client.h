/**
 * @file
 * Fleet client library: the retry/hedging engine that turns lossy,
 * crash-prone stack servers into a usable memory-pool service.
 *
 * Reads go to the key's primary and are hedged to the next replica
 * when the primary dawdles; writes fan out to every replica and
 * acknowledge at a quorum, which is what makes "no acknowledged write
 * is lost when any single server dies" a theorem rather than a hope.
 * Attempts that time out (per-attempt) back off exponentially with
 * deterministic jitter (fleet/retry.h) and re-resolve placement, so a
 * failed-over key finds its new owners; the operation as a whole is
 * bounded by a deadline.
 *
 * The client is single-threaded by design — it runs in the campaign's
 * serial phase — and never reads a real clock: every method takes the
 * virtual `now`. Wakeups (timeouts, backoff expiries, hedges,
 * deadlines) live in an ordered queue keyed by (tick, operation id),
 * so processing order is deterministic.
 *
 * Two interchangeable state engines back the same protocol:
 *
 *  - The ordered-map engine (default, ClientTuning{}): std::map op
 *    table, multimap wakeup queue, map version/acked sets — the PR-6
 *    baseline the campaign's Direct transport measures against.
 *  - The flat engine (ClientTuning with opWindow/keySpace > 0): a
 *    power-of-two op-slot table indexed by operation id, a timing
 *    wheel of per-tick wakeup buckets, and dense per-key version and
 *    acked arrays — no ordered-container traffic and no steady-state
 *    allocation on the serving hot path.
 *
 * The two engines are transition-identical: the wheel drains buckets
 * in (tick, insertion-order), exactly the multimap's equal-key FIFO
 * order, and the dense arrays iterate ascending keys exactly like the
 * maps — which is why a campaign fingerprint (acked set + latency
 * histogram included) is invariant across engines, and the fleet
 * tests pin that.
 */

#ifndef CITADEL_FLEET_CLIENT_H
#define CITADEL_FLEET_CLIENT_H

#include <functional>
#include <map>
#include <vector>

#include "fleet/retry.h"

namespace citadel {
namespace fleet {

/**
 * Flat-engine sizing. Both zero (default) selects the ordered-map
 * engine; both positive selects the flat engine:
 *  - opWindow: max span of live operation ids at any instant (ids are
 *    dense, so arrivals/tick x op lifetime bounds it; exceeding the
 *    window is fatal, never silent).
 *  - keySpace: keys are in [0, keySpace) (dense version/acked arrays).
 */
struct ClientTuning
{
    u64 opWindow = 0;
    u64 keySpace = 0;
};

class FleetClient
{
  public:
    /** Deliver one request to a server (the campaign's "network"). */
    using SendFn = std::function<void(const Request &, ServerIdx)>;

    /** Resolve the current replica set of a key, primary first. */
    using PlacementFn =
        std::function<void(u64 key, std::vector<ServerIdx> &)>;

    /** The last acknowledged state of one key (the audit set). */
    struct AckedWrite
    {
        u64 version = 0;
        u64 value = 0;
    };

    FleetClient(const RetryPolicy &policy, u32 replication,
                u32 ackQuorum, u64 valueSalt,
                const ClientTuning &tuning = {});

    /** Wire the client to the fleet. Must be called before use. */
    void connect(PlacementFn placement, SendFn send);

    // The client is serial-phase-only (see file comment): its wakeup
    // queue and op table are shared with the placement/send callbacks
    // that reach into coordinator and servers.

    /** Issue a read of `key` as operation `op` at virtual time `now`. */
    void startRead(u64 op, u64 key, u64 now)
        CITADEL_REQUIRES(kSerialPhase);

    /** Issue a write; the client assigns the next version of `key` and
     *  derives the payload digest from (key, version). */
    void startWrite(u64 op, u64 key, u64 now)
        CITADEL_REQUIRES(kSerialPhase);

    /** A response arrived (duplicates and stragglers welcome). */
    void onResponse(const Response &resp, u64 now)
        CITADEL_REQUIRES(kSerialPhase);

    /** Run every wakeup due at or before `now`. */
    void tick(u64 now) CITADEL_REQUIRES(kSerialPhase);

    /** End of campaign: classify still-inflight ops as unresolved. */
    void finish() CITADEL_REQUIRES(kSerialPhase);

    /** Operations still in flight. */
    std::size_t inflight() const { return flat_ ? live_ : ops_.size(); }

    const FleetCounters &counters() const { return counters_; }

    /** Every key's last acknowledged write — ordered-map engine only
     *  (the scripted retry tests use it); campaigns that may run the
     *  flat engine iterate via forEachAcked(). */
    const std::map<u64, AckedWrite> &ackedWrites() const
        CITADEL_REQUIRES(kSerialPhase);

    /** Number of keys with an acknowledged write. */
    u64 ackedCount() const { return ackedCount_; }

    /** Visit (key, AckedWrite) in ascending key order — identical
     *  sequence under both engines (what the durability audit walks). */
    template <typename Fn>
    void forEachAcked(Fn &&fn) const CITADEL_REQUIRES(kSerialPhase)
    {
        if (flat_) {
            for (u64 key = 0; key < ackedFlat_.size(); ++key)
                if (ackedFlat_[key].version != 0)
                    fn(key, ackedFlat_[key]);
        } else {
            for (const auto &[key, aw] : acked_)
                fn(key, aw);
        }
    }

    /**
     * Completion-latency histogram in virtual ticks: bucket d counts
     * acked operations that completed d ticks after issue (the last
     * bucket accumulates everything >= its index). Part of the
     * fingerprint, so batching/transport changes that shifted a single
     * completion tick would be caught.
     */
    const std::vector<u64> &latencyHist() const { return hist_; }

    /** The payload digest the client writes for (key, version); the
     *  audit recomputes it to verify replica integrity. */
    static u64 valueFor(u64 key, u64 version, u64 salt);

    /** Fold the acked-write set + latency histogram into a
     *  fingerprint. */
    void serialize(ByteSink &sink) const CITADEL_REQUIRES(kSerialPhase);

    /**
     * Full client checkpoint: in-flight ops, pending wakeups (wheel
     * or multimap, with equal-tick FIFO order preserved), per-key
     * versions, the acked set, the latency histogram, and counters.
     * loadState() requires a client constructed with the identical
     * (policy, replication, quorum, salt, tuning).
     */
    void saveState(ByteSink &sink) const CITADEL_REQUIRES(kSerialPhase);
    void loadState(ByteSource &src) CITADEL_REQUIRES(kSerialPhase);

  private:
    struct Op
    {
        OpKind kind = OpKind::Read;
        u64 key = 0;
        u64 version = 0; ///< Writes only.
        u64 value = 0;   ///< Writes only.
        u64 issuedAt = 0;
        u64 deadline = 0;
        u32 attempts = 0;   ///< Attempt rounds launched.
        u64 lastSentAt = 0; ///< When the current round was sent.
        u64 retryAt = 0;    ///< Backoff expiry; 0 = not backing off.
        bool hedged = false;
        ServerIdx mainServer = kNoServer;  ///< Current read target.
        ServerIdx hedgeServer = kNoServer; ///< Current hedge target.
        u64 ackMask = 0; ///< Writes: bit per acked server (<= 64).
        u32 acks = 0;
    };

    /** One flat-engine op slot, generation-free: the live flag plus
     *  the full id disambiguate (ids never repeat in a campaign). */
    struct OpSlot
    {
        u64 id = 0;
        bool live = false;
        Op op;
    };

    static void putOp(ByteSink &sink, const Op &op);
    static Op getOp(ByteSource &src);

    Op &insertOp(u64 op_id, const Op &op);
    Op *findOp(u64 op_id);
    void eraseOp(u64 op_id);
    u64 &nextVersionOf(u64 key);
    void recordAck(u64 key, u64 version, u64 value);

    void sendRead(u64 op_id, Op &op, u64 now);
    void sendWrite(u64 op_id, Op &op, u64 now);
    void sendHedge(u64 op_id, Op &op);
    void beginBackoff(u64 op_id, Op &op, u64 now);
    void evaluate(u64 op_id, u64 now);
    void complete(u64 op_id, Op &op, bool acked, u64 now);
    void wakeAt(u64 tick, u64 op_id);

    RetryPolicy policy_;
    u32 replication_;
    u32 ackQuorum_;
    u64 valueSalt_;
    bool flat_;

    PlacementFn placementFn_;
    SendFn sendFn_;

    // Ordered-map engine state.
    std::map<u64, Op> ops_;          ///< In-flight, by operation id.
    std::multimap<u64, u64> wake_;   ///< tick -> operation id.
    std::map<u64, u64> versions_;    ///< Per-key next-version counter.
    std::map<u64, AckedWrite> acked_;

    // Flat engine state.
    std::vector<OpSlot> slots_; ///< Power-of-two, indexed by id & mask.
    u64 slotMask_ = 0;
    std::size_t live_ = 0;
    std::vector<std::vector<u64>> wheel_; ///< Per-tick wakeup buckets.
    u64 wheelMask_ = 0;
    u64 lastProcessed_ = ~0ull; ///< Last tick fully drained.
    std::vector<u64> versionsFlat_;
    std::vector<AckedWrite> ackedFlat_;

    u64 ackedCount_ = 0;
    std::vector<u64> hist_; ///< Acked completion latency (ticks).
    std::vector<ServerIdx> scratch_; ///< Placement resolution buffer.

    FleetCounters counters_;
};

} // namespace fleet
} // namespace citadel

#endif // CITADEL_FLEET_CLIENT_H
