/**
 * @file
 * Fleet client library: the retry/hedging engine that turns lossy,
 * crash-prone stack servers into a usable memory-pool service.
 *
 * Reads go to the key's primary and are hedged to the next replica
 * when the primary dawdles; writes fan out to every replica and
 * acknowledge at a quorum, which is what makes "no acknowledged write
 * is lost when any single server dies" a theorem rather than a hope.
 * Attempts that time out (per-attempt) back off exponentially with
 * deterministic jitter (fleet/retry.h) and re-resolve placement, so a
 * failed-over key finds its new owners; the operation as a whole is
 * bounded by a deadline.
 *
 * The client is single-threaded by design — it runs in the campaign's
 * serial phase — and never reads a real clock: every method takes the
 * virtual `now`. Wakeups (timeouts, backoff expiries, hedges,
 * deadlines) live in an ordered queue keyed by (tick, operation id),
 * so processing order is deterministic.
 */

#ifndef CITADEL_FLEET_CLIENT_H
#define CITADEL_FLEET_CLIENT_H

#include <functional>
#include <map>
#include <vector>

#include "fleet/retry.h"

namespace citadel {
namespace fleet {

class FleetClient
{
  public:
    /** Deliver one request to a server (the campaign's "network"). */
    using SendFn = std::function<void(const Request &, ServerIdx)>;

    /** Resolve the current replica set of a key, primary first. */
    using PlacementFn =
        std::function<void(u64 key, std::vector<ServerIdx> &)>;

    /** The last acknowledged state of one key (the audit set). */
    struct AckedWrite
    {
        u64 version = 0;
        u64 value = 0;
    };

    FleetClient(const RetryPolicy &policy, u32 replication,
                u32 ackQuorum, u64 valueSalt);

    /** Wire the client to the fleet. Must be called before use. */
    void connect(PlacementFn placement, SendFn send);

    // The client is serial-phase-only (see file comment): its wakeup
    // queue and op table are shared with the placement/send callbacks
    // that reach into coordinator and servers.

    /** Issue a read of `key` as operation `op` at virtual time `now`. */
    void startRead(u64 op, u64 key, u64 now)
        CITADEL_REQUIRES(kSerialPhase);

    /** Issue a write; the client assigns the next version of `key` and
     *  derives the payload digest from (key, version). */
    void startWrite(u64 op, u64 key, u64 now)
        CITADEL_REQUIRES(kSerialPhase);

    /** A response arrived (duplicates and stragglers welcome). */
    void onResponse(const Response &resp, u64 now)
        CITADEL_REQUIRES(kSerialPhase);

    /** Run every wakeup due at or before `now`. */
    void tick(u64 now) CITADEL_REQUIRES(kSerialPhase);

    /** End of campaign: classify still-inflight ops as unresolved. */
    void finish() CITADEL_REQUIRES(kSerialPhase);

    /** Operations still in flight. */
    std::size_t inflight() const { return ops_.size(); }

    const FleetCounters &counters() const { return counters_; }

    /** Every key's last acknowledged write — what the durability audit
     *  checks against surviving replicas. */
    const std::map<u64, AckedWrite> &ackedWrites() const
        CITADEL_REQUIRES(kSerialPhase)
    {
        return acked_;
    }

    /** The payload digest the client writes for (key, version); the
     *  audit recomputes it to verify replica integrity. */
    static u64 valueFor(u64 key, u64 version, u64 salt);

    /** Fold the acked-write set into a fingerprint. */
    void serialize(ByteSink &sink) const CITADEL_REQUIRES(kSerialPhase);

  private:
    struct Op
    {
        OpKind kind = OpKind::Read;
        u64 key = 0;
        u64 version = 0; ///< Writes only.
        u64 value = 0;   ///< Writes only.
        u64 deadline = 0;
        u32 attempts = 0;   ///< Attempt rounds launched.
        u64 lastSentAt = 0; ///< When the current round was sent.
        u64 retryAt = 0;    ///< Backoff expiry; 0 = not backing off.
        bool hedged = false;
        ServerIdx mainServer = kNoServer;  ///< Current read target.
        ServerIdx hedgeServer = kNoServer; ///< Current hedge target.
        u64 ackMask = 0; ///< Writes: bit per acked server (<= 64).
        u32 acks = 0;
    };

    void sendRead(u64 op_id, Op &op, u64 now);
    void sendWrite(u64 op_id, Op &op, u64 now);
    void sendHedge(u64 op_id, Op &op);
    void beginBackoff(u64 op_id, Op &op, u64 now);
    void evaluate(u64 op_id, u64 now);
    void complete(u64 op_id, Op &op, bool acked);
    void wakeAt(u64 tick, u64 op_id);

    RetryPolicy policy_;
    u32 replication_;
    u32 ackQuorum_;
    u64 valueSalt_;

    PlacementFn placementFn_;
    SendFn sendFn_;

    std::map<u64, Op> ops_;          ///< In-flight, by operation id.
    std::multimap<u64, u64> wake_;   ///< tick -> operation id.
    std::map<u64, u64> versions_;    ///< Per-key next-version counter.
    std::map<u64, AckedWrite> acked_;
    std::vector<ServerIdx> scratch_; ///< Placement resolution buffer.

    FleetCounters counters_;
};

} // namespace fleet
} // namespace citadel

#endif // CITADEL_FLEET_CLIENT_H
