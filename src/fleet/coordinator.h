/**
 * @file
 * Fleet coordinator: placement, health checking, failover, and
 * re-replication.
 *
 * The coordinator owns the consistent-hash ring. Every `healthEvery`
 * ticks it probes each in-ring server; `failThreshold` consecutive
 * missed probes (crash, or a stall outlasting the probe window) evict
 * the server — removed from the ring and *fenced*, so a stalled
 * process that wakes up after eviction finds itself out of the ring
 * and serves nothing (no split brain). Eviction also fires when a
 * stack's usable capacity, reported by the degradation ladder through
 * RasHealthSignals, falls below `capacityFloor`: the fleet migrates
 * shards off degrading stacks before they fail outright.
 *
 * Every topology change schedules a re-replication scan: surviving
 * copies of every key are pushed to the key's new replica set at a
 * bounded `repairPerTick` rate, restoring the replication factor that
 * makes the next failure survivable. Fenced servers still serve as
 * repair *sources* (their state is intact — they are drained, not
 * dead); crashed servers are unreadable.
 *
 * Everything here runs in the campaign's serial phase in server-index
 * order: deterministic by construction.
 */

#ifndef CITADEL_FLEET_COORDINATOR_H
#define CITADEL_FLEET_COORDINATOR_H

#include <memory>
#include <vector>

#include "fleet/hash_ring.h"
#include "fleet/stack_server.h"

namespace citadel {
namespace fleet {

/** Coordinator tunables. */
struct CoordinatorOptions
{
    u64 healthEvery = 16;      ///< Ticks between probe rounds.
    u32 failThreshold = 3;     ///< Missed probes before eviction.
    double capacityFloor = 0.70; ///< Migrate below this usable fraction.
    u32 repairPerTick = 128;   ///< Keys re-replicated per tick.
    u32 vnodes = 64;           ///< Ring points per server.

    void validate() const;
};

class Coordinator
{
  public:
    /** `fleet` is borrowed and must outlive the coordinator. */
    Coordinator(const CoordinatorOptions &opts, u32 replication,
                u64 seed,
                std::vector<std::unique_ptr<StackServer>> &fleet);

    // Everything below runs in the campaign's serial phase: the
    // coordinator reaches into every server (probes, repairs, fences),
    // so none of it may overlap the parallel step fan-out.

    /** Current replica set of a key, primary first. */
    void placement(u64 key, std::vector<ServerIdx> &out) const
        CITADEL_REQUIRES(kSerialPhase);

    /**
     * Memoize placement for keys in [0, keySpace): a cached replica
     * set is returned until the next ring change invalidates it
     * (epoch stamp), so the per-request ring walk leaves the serving
     * hot path. Pure memoization — results are identical with the
     * cache on or off; the Direct-transport baseline leaves it off to
     * stay an honest PR-6 measurement.
     */
    void enablePlacementCache(u64 keySpace);

    /** Serial-phase duties: probe round (on schedule), evictions, and
     *  the bounded re-replication pump. */
    void tick(u64 now, FleetCounters &counters)
        CITADEL_REQUIRES(kSerialPhase);

    /** Run the repair pump to completion (end-of-campaign settle, so
     *  the durability audit sees a fully re-replicated fleet). */
    void drainRepairs(FleetCounters &counters)
        CITADEL_REQUIRES(kSerialPhase);

    /** In the ring and serving. */
    bool inService(ServerIdx s) const CITADEL_REQUIRES(kSerialPhase);

    const HashRing &ring() const { return ring_; }

    /** Repair backlog still pending? */
    bool repairing() const { return scanning_ || rescanNeeded_; }

    void serialize(ByteSink &sink) const CITADEL_REQUIRES(kSerialPhase);

  private:
    void evict(ServerIdx s, bool capacity, FleetCounters &counters)
        CITADEL_REQUIRES(kSerialPhase);
    void pumpRepair(u32 budget, FleetCounters &counters)
        CITADEL_REQUIRES(kSerialPhase);

    CoordinatorOptions opts_;
    u32 replication_;
    HashRing ring_;
    std::vector<std::unique_ptr<StackServer>> &fleet_;
    std::vector<u32> missed_; ///< Consecutive missed probes.

    // Re-replication scan cursor (bounded work per tick).
    bool rescanNeeded_ = false;
    bool scanning_ = false;
    ServerIdx scanServer_ = 0;
    bool haveLastKey_ = false;
    u64 lastKey_ = 0;

    // Placement memo (enablePlacementCache): per-key replica sets
    // stamped with the ring epoch of the walk that produced them; an
    // eviction bumps the epoch and lazily invalidates everything.
    u64 ringEpoch_ = 1;
    mutable std::vector<u64> cacheStamp_;
    mutable std::vector<std::vector<ServerIdx>> cache_;

    std::vector<ServerIdx> scratch_;
};

} // namespace fleet
} // namespace citadel

#endif // CITADEL_FLEET_COORDINATOR_H
