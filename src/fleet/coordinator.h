/**
 * @file
 * Fleet coordinator: placement, health checking, failover,
 * re-replication — and the elastic half of the control plane
 * (DESIGN.md §16): server join/rejoin and load-driven hot-shard
 * migration.
 *
 * The coordinator owns the consistent-hash ring. Every `healthEvery`
 * ticks it probes each in-ring server; `failThreshold` consecutive
 * missed probes (crash, or a stall outlasting the probe window) evict
 * the server — removed from the ring and *fenced*, so a stalled
 * process that wakes up after eviction finds itself out of the ring
 * and serves nothing (no split brain). Eviction also fires when a
 * stack's usable capacity, reported by the degradation ladder through
 * RasHealthSignals, falls below `capacityFloor`: the fleet migrates
 * shards off degrading stacks before they fail outright.
 *
 * Every topology change schedules a re-replication scan: surviving
 * copies of every key are pushed to the key's new replica set at a
 * bounded `repairPerTick` rate, restoring the replication factor that
 * makes the next failure survivable. Fenced servers still serve as
 * repair *sources* (their state is intact — they are drained, not
 * dead); crashed servers are unreadable.
 *
 * Join (the inverse of eviction): a Fenced server that asks to rejoin
 * via requestJoin() enters Warming. Each tick the warm pump streams
 * the server its *prospective* shard — every key placementPlus() says
 * it would own once in the ring — from live replicas, as wire-encoded
 * RequestBatch frames, while client traffic still routes around it.
 * Ring churn mid-scan (an eviction or another admission bumps the
 * epoch) restarts the scan with bounded backoff; exhausting the
 * attempt budget aborts back to Fenced. When the scan completes, the
 * coordinator and server compare running CRC-32s over every streamed
 * (key, version, value) — the warming handshake — and only a match
 * admits the server: ring add, epoch bump, Warming -> Up. A follow-up
 * repair scan then closes the staleness window (writes that landed
 * while the scan was in flight).
 *
 * Rebalance (off by default): when enabled, each send is counted per
 * server and per key; every probe round folds the counts into a
 * per-server EWMA. A server whose EWMA exceeds `overloadFactor` times
 * the in-ring mean for `hotRounds` consecutive rounds (hysteresis)
 * sheds its hottest keys — at most `migratePerRound` per round (rate
 * cap), each with a per-key cooldown — to the coolest serving server
 * via a placement override applied after the pure ring walk.
 *
 * Everything here runs in the campaign's serial phase in server-index
 * order: deterministic by construction.
 */

#ifndef CITADEL_FLEET_COORDINATOR_H
#define CITADEL_FLEET_COORDINATOR_H

#include <map>
#include <memory>
#include <vector>

#include "fleet/hash_ring.h"
#include "fleet/stack_server.h"
#include "fleet/wire.h"

namespace citadel {
namespace fleet {

/** Coordinator tunables. */
struct CoordinatorOptions
{
    u64 healthEvery = 16;      ///< Ticks between probe rounds.
    u32 failThreshold = 3;     ///< Missed probes before eviction.
    double capacityFloor = 0.70; ///< Migrate below this usable fraction.
    u32 repairPerTick = 128;   ///< Keys re-replicated per tick.
    u32 vnodes = 64;           ///< Ring points per server.

    // Elasticity: warm-fill (join) pump.
    u32 warmPerTick = 128;    ///< Source keys examined per tick per join.
    u32 warmBatch = 64;       ///< Records per warm-fill wire frame.
    u64 warmBackoffTicks = 8; ///< Backoff base after a warm restart.
    u32 warmMaxAttempts = 6;  ///< Scan attempts before aborting a join.

    // Elasticity: load-driven rebalance (CITADEL_FLEET_REBALANCE /
    // FleetConfig turns it on; the default keeps capacity-driven
    // migration as the only mover, matching pre-elasticity behavior).
    bool rebalanceEnabled = false;
    double loadAlpha = 0.30;      ///< EWMA smoothing per probe round.
    double overloadFactor = 1.50; ///< Hot when ewma > factor * mean.
    u32 hotRounds = 2;       ///< Consecutive hot rounds before moving.
    u32 migratePerRound = 4; ///< Hot-shard moves per round (rate cap).
    u64 minRoundLoad = 16;   ///< Mean EWMA floor: idle fleets never move.
    u64 keyCooldownTicks = 64; ///< Per-key re-migration cooldown.

    void validate() const;
};

class Coordinator
{
  public:
    /** `fleet` is borrowed and must outlive the coordinator. */
    Coordinator(const CoordinatorOptions &opts, u32 replication,
                u64 seed,
                std::vector<std::unique_ptr<StackServer>> &fleet);

    // Everything below runs in the campaign's serial phase: the
    // coordinator reaches into every server (probes, repairs, fences,
    // warm fills), so none of it may overlap the parallel step fan-out.

    /** Current replica set of a key, primary first: the ring walk,
     *  with any live rebalance override applied on top. */
    void placement(u64 key, std::vector<ServerIdx> &out) const
        CITADEL_REQUIRES(kSerialPhase);

    /**
     * Memoize placement for keys in [0, keySpace): a cached replica
     * set is returned until the next ring change invalidates it
     * (epoch stamp), so the per-request ring walk leaves the serving
     * hot path. Pure memoization — results are identical with the
     * cache on or off; the Direct-transport baseline leaves it off to
     * stay an honest PR-6 measurement.
     */
    void enablePlacementCache(u64 keySpace);

    /** Serial-phase duties: probe round + rebalance (on schedule),
     *  evictions, the warm pump, and the bounded repair pump. */
    void tick(u64 now, FleetCounters &counters)
        CITADEL_REQUIRES(kSerialPhase);

    /**
     * A Fenced server (previously evicted, or freshly restarted after
     * a crash) asks to rejoin: it enters Warming and the warm pump
     * starts streaming it its prospective shard. If the server is
     * somehow still in the ring (it crashed and restarted faster than
     * probes could evict it), it is first removed — its DRAM is gone,
     * so its old membership is a lie. Ignored unless Fenced.
     */
    void requestJoin(ServerIdx s, u64 now, FleetCounters &counters)
        CITADEL_REQUIRES(kSerialPhase);

    /** Run the repair pump to completion (end-of-campaign settle, so
     *  the durability audit sees a fully re-replicated fleet). */
    void drainRepairs(FleetCounters &counters)
        CITADEL_REQUIRES(kSerialPhase);

    /**
     * Drain warm fills *and* repairs to completion (`now` continues
     * from the campaign's last tick so warm backoff windows elapse).
     * Every join in flight either admits or exhausts its attempt
     * budget; afterwards warming() and repairing() are both false.
     */
    void drainElastic(u64 now, FleetCounters &counters)
        CITADEL_REQUIRES(kSerialPhase);

    /** In the ring and serving. */
    bool inService(ServerIdx s) const CITADEL_REQUIRES(kSerialPhase);

    const HashRing &ring() const { return ring_; }

    /** Repair backlog still pending? */
    bool repairing() const { return scanning_ || rescanNeeded_; }

    /** Any join (warm fill) still in flight? */
    bool warming() const;

    /** Count each request routed toward `server` (load tracking for
     *  the rebalancer; no-op unless rebalance is enabled). */
    void noteLoad(ServerIdx server, u64 key)
        CITADEL_REQUIRES(kSerialPhase);

    void serialize(ByteSink &sink) const CITADEL_REQUIRES(kSerialPhase);

    /** Checkpoint the full coordinator state (ring membership + epoch,
     *  probe misses, repair cursor, warm scans, load/EWMA/override
     *  state). The placement cache is not state — it is rebuilt
     *  lazily and bit-identically after loadState(). */
    void saveState(ByteSink &sink) const CITADEL_REQUIRES(kSerialPhase);
    void loadState(ByteSource &src) CITADEL_REQUIRES(kSerialPhase);

  private:
    /** One in-flight join: the warm scan cursor plus its handshake
     *  CRC and retry budget. */
    struct WarmState
    {
        bool active = false;
        u32 attempts = 0;
        u64 resumeAt = 0;     ///< Backoff gate (ticks).
        u64 epochAtStart = 0; ///< Ring epoch this scan is valid for.
        ServerIdx srcServer = 0;
        bool haveLast = false;
        u64 lastKey = 0;
        u32 crc = 0;      ///< Coordinator-side streamed-record CRC.
        u64 records = 0;  ///< Records streamed this scan.
    };

    void evict(ServerIdx s, bool capacity, FleetCounters &counters)
        CITADEL_REQUIRES(kSerialPhase);
    void pumpRepair(u32 budget, FleetCounters &counters)
        CITADEL_REQUIRES(kSerialPhase);
    void pumpWarm(u64 now, FleetCounters &counters)
        CITADEL_REQUIRES(kSerialPhase);
    void restartOrAbortWarm(ServerIdx s, u64 now,
                            FleetCounters &counters)
        CITADEL_REQUIRES(kSerialPhase);
    void rebalance(u64 now, FleetCounters &counters)
        CITADEL_REQUIRES(kSerialPhase);
    void dropOverridesTo(ServerIdx s);

    CoordinatorOptions opts_;
    u32 replication_;
    HashRing ring_;
    std::vector<std::unique_ptr<StackServer>> &fleet_;
    std::vector<u32> missed_; ///< Consecutive missed probes.

    // Re-replication scan cursor (bounded work per tick).
    bool rescanNeeded_ = false;
    bool scanning_ = false;
    ServerIdx scanServer_ = 0;
    bool haveLastKey_ = false;
    u64 lastKey_ = 0;

    // Joins in flight, indexed by server.
    std::vector<WarmState> warm_;
    FrameWriter warmWriter_;

    // Rebalancer state (all empty/zero while disabled). Ordered maps:
    // iteration order is part of the determinism contract.
    std::vector<u64> roundLoad_;  ///< Sends per server since last round.
    std::vector<double> ewma_;    ///< Smoothed per-server load.
    std::vector<u32> hotStreak_;  ///< Consecutive overloaded rounds.
    std::map<u64, u64> keyLoad_;  ///< Per-key counts (halved each round).
    std::map<u64, ServerIdx> overrides_; ///< key -> migrated primary.
    std::map<u64, u64> cooldown_; ///< key -> tick it may move again.

    // Placement memo (enablePlacementCache): per-key *ring* replica
    // sets stamped with the ring epoch of the walk that produced them;
    // any membership change bumps the epoch and lazily invalidates
    // everything. Overrides are applied after the cache, so the cache
    // stays a pure ring memo.
    mutable std::vector<u64> cacheStamp_;
    mutable std::vector<std::vector<ServerIdx>> cache_;

    std::vector<ServerIdx> scratch_;
    std::vector<std::pair<u64, u64>> hotScratch_; ///< (count, key).
};

} // namespace fleet
} // namespace citadel

#endif // CITADEL_FLEET_COORDINATOR_H
