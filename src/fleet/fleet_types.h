/**
 * @file
 * Shared vocabulary of the fleet memory-pool service (DESIGN.md §12):
 * requests, responses, counters, and the virtual-time conventions that
 * make a multi-server chaos campaign bit-identical for any worker
 * thread count.
 *
 * Time at the fleet layer is a virtual tick counter. One tick is one
 * scheduling round of the campaign loop: clients and the coordinator
 * act in a serial phase, then every stack server consumes its bounded
 * inbox in a parallel phase that touches only per-server state, then
 * responses are collected in server order. Nothing at this layer ever
 * reads a wall clock or an OS thread id, so the only nondeterminism a
 * real ThreadPool could introduce — interleaving — is confined to
 * state that is provably per-server.
 */

#ifndef CITADEL_FLEET_FLEET_TYPES_H
#define CITADEL_FLEET_FLEET_TYPES_H

#include <cstddef>
#include <string>
#include <type_traits>

#include "common/mutex.h"
#include "common/serialize.h"
#include "common/types.h"

namespace citadel {
namespace fleet {

/**
 * The fleet's phase discipline as a checkable capability (DESIGN.md
 * §13). Methods that may only run in the campaign's serial phase —
 * client/coordinator logic, chaos injection, outbox collection, the
 * audit — are annotated CITADEL_REQUIRES(kSerialPhase); the campaign
 * loop takes the role with a scoped ThreadRoleGrant around each serial
 * segment. Parallel-phase code (the step_servers lambda running on
 * ThreadPool workers) is analyzed with an empty capability set, so a
 * call from there into serial-phase state is a compile error under
 * -Wthread-safety. There is no runtime lock: the role is a structural
 * property of the loop in FleetSim::run().
 */
inline ThreadRole kSerialPhase;

/** Index of a stack server within the fleet (not a device coordinate
 *  space: fleet membership is dynamic, device geometry is not). */
using ServerIdx = u32;

/** "No server" sentinel for routing results. */
constexpr ServerIdx kNoServer = 0xFFFFFFFFu;

/** What one request asks a stack server to do. */
enum class OpKind : u8
{
    Read,  ///< Fetch the newest value of a key.
    Write, ///< Apply a versioned value to a key (idempotent).
};

/** Server-side verdict on one request. */
enum class Status : u8
{
    Ok,       ///< Applied / served.
    NotFound, ///< Read of a key no replica has seen (empty result).
    DueData,  ///< Device DUE under the key's line: data unusable here.
    Busy,     ///< Bounded queue full, or the server has been fenced.
};

const char *statusName(Status s);

/**
 * One request on the wire. Requests are value types: duplication (a
 * chaos mode) and hedging both re-send the same bytes, and idempotence
 * comes from (key, version) max-merge on the server, never from
 * delivery discipline.
 */
struct Request
{
    u64 op = 0;      ///< Logical operation id (unique per campaign).
    u32 attempt = 0; ///< Attempt ordinal within the operation.
    u32 replica = 0; ///< Replica slot this attempt targets.
    OpKind kind = OpKind::Read;
    u64 key = 0;
    u64 version = 0; ///< Writes: monotonic per key, assigned by client.
    u64 value = 0;   ///< Writes: payload digest.
};

/** One response on the wire. */
struct Response
{
    u64 op = 0;
    u32 attempt = 0;
    u32 replica = 0;
    Status status = Status::Ok;
    u64 version = 0; ///< Reads: version served.
    u64 value = 0;   ///< Reads: payload digest served.
    ServerIdx from = kNoServer;
};

/** Lifecycle of one stack server as the chaos campaign sees it. */
enum class ServerState : u8
{
    Up,      ///< Serving.
    Stalled, ///< Alive but processing nothing (chaos stall window).
    Slowed,  ///< Serving at reduced rate (chaos slowdown window).
    Fenced,  ///< Out of the ring; repair source only.
    Crashed, ///< Fail-stop: queue and device state unreachable.
    Warming, ///< Joining: streaming its shard from live replicas.
};

const char *serverStateName(ServerState s);

/**
 * The server lifecycle as an explicit transition table. The states
 * {Up, Stalled, Slowed} together form *Serving*; the elasticity
 * invariant is that the only edge from outside Serving back in is
 * Warming -> Up (the coordinator's CRC-checked admission), so a
 * fenced or restarted-after-crash server can never slip back into
 * taking reads without a warm fill. StackServer routes every state
 * change through this table and dies on an edge it does not list.
 *
 *   Up      -> Stalled | Slowed | Fenced | Crashed
 *   Stalled -> Up | Slowed | Fenced | Crashed
 *   Slowed  -> Up | Stalled | Fenced | Crashed
 *   Fenced  -> Warming | Crashed
 *   Crashed -> Fenced                       (process restart)
 *   Warming -> Up | Fenced | Crashed        (admit / abort / crash)
 */
bool serverTransitionAllowed(ServerState from, ServerState to);

/** Serving client traffic (the in-ring health predicate). */
inline bool
serverStateServing(ServerState s)
{
    return s == ServerState::Up || s == ServerState::Stalled ||
           s == ServerState::Slowed;
}

/**
 * Campaign-wide totals. Summed in deterministic (serial-phase or
 * server-index) order; part of the result fingerprint, so every field
 * is covered by the thread-count-invariance tests.
 */
struct FleetCounters
{
    // Client-side operation accounting.
    u64 opsIssued = 0;
    u64 opsAcked = 0;      ///< Completed successfully before deadline.
    u64 opsFailed = 0;     ///< Deadline or attempt budget exhausted.
    u64 opsUnresolved = 0; ///< Still in flight when the campaign ended.
    u64 writesAcked = 0;   ///< Subset of opsAcked (the audit set).
    u64 readsDue = 0;      ///< Reads that completed as device-DUE.

    // Retry machinery.
    u64 attempts = 0;       ///< Requests sent (first tries included).
    u64 retries = 0;        ///< Re-sends after timeout/busy.
    u64 backoffTicks = 0;   ///< Virtual ticks spent backing off.
    u64 attemptTimeouts = 0;///< Attempts presumed lost.
    u64 hedges = 0;         ///< Hedged reads issued.
    u64 hedgeWins = 0;      ///< Operations completed by the hedge.
    u64 duplicatesSuppressed = 0; ///< Late/duplicate responses dropped.
    u64 busyRejections = 0; ///< Responses returning Status::Busy.
    u64 dueFailovers = 0;   ///< Reads retried on a replica after DUE.

    // Chaos injection (what the fault injector actually did).
    u64 requestsDropped = 0;
    u64 requestsDuplicated = 0;
    u64 serverCrashes = 0;
    u64 serverStalls = 0;
    u64 serverSlowdowns = 0;

    // Coordinator actions.
    u64 healthProbes = 0;
    u64 probesMissed = 0;
    u64 failovers = 0;        ///< Servers evicted from the ring.
    u64 capacityMigrations = 0; ///< Evictions for degraded capacity.
    u64 repairPushes = 0;     ///< Re-replication copies installed.

    // Elasticity (join / rebalance / checkpoint).
    u64 serverJoins = 0;    ///< Warming servers admitted into the ring.
    u64 warmFills = 0;      ///< Records streamed into warming servers.
    u64 warmRestarts = 0;   ///< Warm scans restarted (ring churn/backoff).
    u64 warmAborts = 0;     ///< Warm attempts abandoned (back to Fenced).
    u64 loadMigrations = 0; ///< Hot shards moved off overloaded servers.
    u64 resumes = 0;        ///< Campaign loadState() calls (see audit()).

    // Server-side service accounting (merged in server order).
    u64 requestsServed = 0;
    u64 serviceUnitsSpent = 0; ///< Work units incl. correction traffic.
    u64 queueRejections = 0;   ///< Arrivals bounced off a full inbox.
    u64 deviceDueReads = 0;    ///< onDemandRead verdicts that were DUE.
    u64 deviceCorrected = 0;   ///< onDemandRead verdicts corrected.

    void add(const FleetCounters &c);
    void serialize(ByteSink &sink) const;

    /** Inverse of serialize(). Relies on serialize() writing the
     *  fields in declaration order — pinned by the tripwire test. */
    void deserialize(ByteSource &src);

    std::string summary() const;
};

/**
 * Tripwire for the PR-9-style silent-omission bug class: FleetCounters
 * must stay a flat struct of exactly this many u64 fields, and both
 * add() and serialize() must cover every one of them. The static
 * asserts below catch a field added to the struct; the property test
 * in tests/test_fleet.cc (FleetCountersTripwire) catches one added to
 * the struct but missed in add()/putU64 serialization.
 */
constexpr std::size_t kFleetCounterFields = 36;
static_assert(sizeof(FleetCounters) == kFleetCounterFields * sizeof(u64),
              "FleetCounters changed: update kFleetCounterFields, add(), "
              "serialize(), and the tripwire test together");
static_assert(std::is_trivially_copyable_v<FleetCounters>);

// Wire-independent value serialization of requests/responses, used by
// the warm-fill stream framing and the campaign checkpoint. Field
// order is part of the checkpoint format: append-only.
void putRequest(ByteSink &sink, const Request &r);
Request getRequest(ByteSource &src);
void putResponse(ByteSink &sink, const Response &r);
Response getResponse(ByteSource &src);

} // namespace fleet
} // namespace citadel

#endif // CITADEL_FLEET_FLEET_TYPES_H
