#include "fleet/fleet_sim.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/log.h"
#include "common/rng.h"
#include "faults/fit_rates.h"
#include "stack/geometry.h"

namespace citadel {
namespace fleet {

namespace {

FitPair
scalePair(FitPair p, double s)
{
    p.transientFit *= s;
    p.permanentFit *= s;
    return p;
}

/** Unit double in [0, 1) from the top 53 bits of a counter hash. */
double
unit(u64 h)
{
    return static_cast<double>(h >> 11) * 0x1p-53;
}

/** Counter-hash coin. */
bool
coin(u64 h, double p)
{
    return unit(h) < p;
}

/**
 * Flat-engine sizing for the wire path: operation ids are dense, an
 * op lives at most opDeadline+1 ticks (the deadline wakeup completes
 * it), so the live id span is bounded by the peak arrival rate times
 * the op lifetime. Direct mode returns {} — the ordered-map baseline.
 */
ClientTuning
wireTuning(const FleetConfig &cfg)
{
    if (cfg.transport == TransportMode::Direct)
        return {};
    u64 maxRate = cfg.arrivalsPerTick;
    if (!cfg.traffic.empty()) {
        TrafficModel model;
        std::string err;
        if (!TrafficModel::parse(cfg.traffic, model, &err))
            fatal("FleetConfig: bad traffic spec: %s", err.c_str());
        maxRate = 0;
        for (const TrafficPhase &phase : model.phases())
            maxRate = std::max<u64>(
                maxRate, u64(phase.rate) * phase.burstMult);
    }
    ClientTuning t;
    t.opWindow = maxRate * (cfg.retry.opDeadline + 4) + 8;
    t.keySpace = cfg.keySpace;
    return t;
}

} // namespace

void
FleetConfig::validate() const
{
    if (servers < 2 || servers > 64)
        fatal("FleetConfig: servers must be in [2, 64] (the write-ack "
              "bitmask is 64 bits wide)");
    if (ticks == 0)
        fatal("FleetConfig: ticks must be >= 1");
    if (users == 0 || keySpace == 0)
        fatal("FleetConfig: users and keySpace must be >= 1");
    if (arrivalsPerTick == 0)
        fatal("FleetConfig: arrivalsPerTick must be >= 1");
    if (writeFraction < 0.0 || writeFraction > 1.0)
        fatal("FleetConfig: writeFraction must be in [0, 1]");
    if (replication == 0 || replication > 8)
        fatal("FleetConfig: replication must be in [1, 8]");
    if (replication > servers)
        fatal("FleetConfig: replication exceeds the server count");
    if (ackQuorum == 0 || ackQuorum > replication)
        fatal("FleetConfig: ackQuorum must be in [1, replication]");
    if (responseDelay == 0)
        fatal("FleetConfig: responseDelay must be >= 1 (same-tick "
              "request/response cycles would be order-dependent)");
    if (batch == 0 || batch > kMaxFrameRecords)
        fatal("FleetConfig: batch must be in [1, %u]", kMaxFrameRecords);
    if (!traffic.empty()) {
        TrafficModel model;
        std::string err;
        if (!TrafficModel::parse(traffic, model, &err))
            fatal("FleetConfig: traffic spec: %s", err.c_str());
    }
    retry.validate();
    coord.validate();
    chaos.validate();
    server.validate();
}

FleetConfig
FleetConfig::demo()
{
    FleetConfig cfg;
    cfg.server.sim.geom = StackGeometry::tiny();
    cfg.server.sim.cores = 2;

    // Boosted fault rates, same rationale as the soak driver: at
    // nominal FIT a short campaign would see nothing. The fleet
    // campaign exercises mechanisms; it is not a reliability estimate.
    const double fit_scale = 2000.0;
    FitTable t = FitTable::paper8Gb();
    t.bit = scalePair(t.bit, fit_scale);
    t.word = scalePair(t.word, fit_scale);
    t.column = scalePair(t.column, fit_scale);
    t.row = scalePair(t.row, fit_scale);
    t.bank = scalePair(t.bank, fit_scale);
    cfg.server.faults.rates = t;
    cfg.server.faults.tsvDeviceFit = 1430.0;
    cfg.server.faults.metaFit = 100000.0;
    cfg.server.agingHours = 2000.0;
    return cfg;
}

std::string
FleetResult::summary() const
{
    std::ostringstream os;
    os << totals.summary() << "\n";
    os << "fleet: " << liveServers << "/" << servers.size()
       << " servers in service | audit: " << auditedWrites
       << " acked writes, " << lostAckedWrites << " lost, "
       << corruptAckedWrites << " corrupt | divergences " << divergences
       << " | latency p50/p99 " << p50LatencyTicks << "/"
       << p99LatencyTicks << " ticks | fingerprint " << std::hex
       << fingerprint << std::dec;
    return os.str();
}

FleetConfig
FleetCampaign::normalized(const FleetConfig &cfg)
{
    cfg.validate();
    FleetConfig out = cfg;
    if (!out.traffic.empty()) {
        TrafficModel model;
        std::string err;
        if (!TrafficModel::parse(out.traffic, model, &err))
            fatal("FleetConfig: traffic spec: %s", err.c_str());
        out.ticks = model.totalTicks();
    }
    // The wire path runs the dense server store; give every server the
    // campaign's key space. Direct keeps the ordered-map baseline.
    if (out.transport != TransportMode::Direct)
        out.server.keySpace = out.keySpace;
    return out;
}

FleetCampaign::FleetCampaign(const FleetConfig &cfg)
    : cfg_(normalized(cfg)),
      injector_(cfg_.chaos, cfg_.servers, cfg_.ticks, cfg_.seed),
      client_(cfg_.retry, cfg_.replication, cfg_.ackQuorum,
              mix64(cfg_.seed ^ 0x5A17ull), wireTuning(cfg_))
{
    fleet_.reserve(cfg_.servers);
    for (u32 s = 0; s < cfg_.servers; ++s)
        fleet_.push_back(std::make_unique<StackServer>(
            s, cfg_.server, cfg_.seed, cfg_.ticks));
    coordinator_ = std::make_unique<Coordinator>(
        cfg_.coord, cfg_.replication, mix64(cfg_.seed ^ 0x419Cull),
        fleet_);
    pool_ = std::make_unique<ThreadPool>(cfg_.threads);
    if (!cfg_.traffic.empty()) {
        std::string err;
        if (!TrafficModel::parse(cfg_.traffic, traffic_, &err))
            fatal("FleetCampaign: traffic spec: %s", err.c_str());
        traffic_.prepare(cfg_.keySpace);
    }
    if (wire()) {
        transport_ = makeTransport(cfg_.transport, cfg_.servers);
        shards_ = std::make_unique<SubmissionShards>(cfg_.servers);
        respWheel_.resize(std::bit_ceil(cfg_.responseDelay + 2));
        respWheelMask_ = respWheel_.size() - 1;
        seqScratch_.resize(cfg_.servers);
        coordinator_->enablePlacementCache(cfg_.keySpace);
    }
    // The analysis cannot propagate capabilities through the
    // type-erased std::function boundary, so each callback restates
    // its contract: it is only ever invoked from the client, which is
    // serial-phase-only.
    client_.connect(
        [this](u64 key, std::vector<ServerIdx> &out) {
            assertRoleHeld(kSerialPhase);
            coordinator_->placement(key, out);
        },
        [this](const Request &r, ServerIdx s) {
            assertRoleHeld(kSerialPhase);
            sendToServer(r, s);
        });
}

FleetCampaign::~FleetCampaign() = default;

void
FleetCampaign::injectChaosEvent(const ChaosEvent &ev)
{
    if (finished_ || tick_ > 0)
        fatal("FleetCampaign: injectChaosEvent after the campaign "
              "started");
    if (ev.server >= cfg_.servers)
        fatal("FleetCampaign: chaos event targets server %u of %u",
              ev.server, cfg_.servers);
    injector_.addEvent(ev);
}

void
FleetCampaign::sendToServer(const Request &r, ServerIdx s)
{
    if (s >= fleet_.size())
        fatal("FleetCampaign: send to unknown server %u", s);
    // Load accounting sees every routed request, including ones the
    // chaos network then eats: load is what the client *sends*, so it
    // is identical across transports and chaos outcomes.
    coordinator_->noteLoad(s, r.key);
    if (injector_.dropRequest(r.op, r.attempt, s)) {
        ++loopCounters_.requestsDropped;
        return;
    }
    u32 copies = 1;
    if (injector_.duplicateRequest(r.op, r.attempt, s)) {
        ++loopCounters_.requestsDuplicated;
        copies = 2;
    }
    for (u32 i = 0; i < copies; ++i) {
        if (wire()) {
            // Queue into the per-server submission shard; flushShards
            // frames and ships whole batches after arrivals. Shard
            // insertion order equals Direct's send order, so the two
            // paths deliver identically.
            shards_->add(s, r);
            continue;
        }
        deliverRequest(r, s, tick_);
    }
}

void
FleetCampaign::deliverRequest(const Request &r, ServerIdx s, u64 tick)
{
    StackServer &srv = *fleet_[s];
    if (!srv.dataReadable())
        return; // Crashed: silence; the attempt timeout covers it.
    if (!srv.enqueue(r)) {
        // Fenced or full queue: the process is alive and says so.
        Response resp;
        resp.op = r.op;
        resp.attempt = r.attempt;
        resp.replica = r.replica;
        resp.status = Status::Busy;
        resp.from = s;
        pushResponse(tick + cfg_.responseDelay, resp);
    }
}

void
FleetCampaign::pushResponse(u64 due, const Response &r)
{
    if (!wire()) {
        pending_.emplace(due, r);
        return;
    }
    if (due <= tick_ || due - tick_ >= respWheel_.size())
        panic("FleetCampaign: response due %llu outside the wheel at "
              "tick %llu",
              static_cast<unsigned long long>(due),
              static_cast<unsigned long long>(tick_));
    respWheel_[due & respWheelMask_].push_back(r);
    ++respWheelCount_;
}

std::size_t
FleetCampaign::pendingCount() const
{
    return wire() ? respWheelCount_ : pending_.size();
}

void
FleetCampaign::flushShards(u64 tick)
{
    if (!wire())
        return;
    // Encode and ship every shard as length-prefixed request frames,
    // remembering each record's global submission sequence (frames
    // preserve drain order, so the server's i-th decoded record is the
    // shard's i-th slot).
    for (u32 s = 0; s < cfg_.servers; ++s) {
        seqScratch_[s].clear();
        if (shards_->count(s) == 0)
            continue;
        reqWriter_.beginRequestFrame();
        shards_->drain(s, [&](const Request &r, u32 seq) {
            assertRoleHeld(kSerialPhase);
            reqWriter_.add(r);
            seqScratch_[s].push_back(seq);
            if (reqWriter_.count() == cfg_.batch) {
                transport_->sendToServer(s, reqWriter_.finish());
                reqWriter_.beginRequestFrame();
            }
        });
        if (reqWriter_.count() > 0)
            transport_->sendToServer(s, reqWriter_.finish());
    }
    shards_->nextGeneration();
    transport_->poll();
    // Deliver into the server inboxes. Queue-full Busy rejections are
    // synthesized here and never travel on the wire; they are pushed
    // into the response wheel in global submission order — exactly the
    // per-request order the Direct baseline emits them in, so the
    // client observes an identical Busy sequence (and all of them
    // before this tick's server responses).
    busyScratch_.clear();
    for (u32 s = 0; s < cfg_.servers; ++s) {
        RxStream &rx = transport_->serverRx(s);
        std::size_t recordIdx = 0;
        while (!rx.pending().empty()) {
            FrameView view;
            std::size_t consumed = 0;
            const DecodeStatus st =
                decodeFrame(rx.pending(), view, &consumed);
            if (st != DecodeStatus::Ok)
                fatal("FleetCampaign: request frame for server %u "
                      "failed to decode: %s",
                      s, decodeStatusName(st));
            if (view.kind() != FrameKind::RequestBatch)
                fatal("FleetCampaign: response frame on the server rx "
                      "path");
            StackServer &srv = *fleet_[s];
            for (u32 i = 0; i < view.count(); ++i, ++recordIdx) {
                const Request r = view.requestAt(i);
                if (!srv.dataReadable())
                    continue; // Crashed: the attempt timeout covers it.
                if (srv.enqueue(r))
                    continue;
                Response resp;
                resp.op = r.op;
                resp.attempt = r.attempt;
                resp.replica = r.replica;
                resp.status = Status::Busy;
                resp.from = s;
                busyScratch_.emplace_back(seqScratch_[s][recordIdx],
                                          resp);
            }
            rx.consume(consumed);
        }
        if (recordIdx != seqScratch_[s].size())
            panic("FleetCampaign: server %u decoded %zu records but "
                  "%zu were framed",
                  s, recordIdx, seqScratch_[s].size());
        rx.compact();
    }
    std::sort(busyScratch_.begin(), busyScratch_.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (const auto &[seq, resp] : busyScratch_)
        pushResponse(tick + cfg_.responseDelay, resp);
}

void
FleetCampaign::applyChaos(u64 tick, FleetCounters &c)
{
    const auto &sched = injector_.schedule();
    while (nextEvent_ < sched.size() && sched[nextEvent_].tick <= tick) {
        const ChaosEvent &ev = sched[nextEvent_++];
        StackServer &srv = *fleet_[ev.server];
        switch (ev.kind) {
        case ChaosEvent::Kind::Crash:
            if (srv.state() != ServerState::Crashed) {
                srv.crash();
                ++c.serverCrashes;
            }
            break;
        case ChaosEvent::Kind::Stall:
            if (srv.serving()) {
                srv.stall(tick + ev.duration);
                ++c.serverStalls;
            }
            break;
        case ChaosEvent::Kind::Slow:
            if (srv.state() == ServerState::Up) {
                srv.slowdown(tick + ev.duration, ev.factor);
                ++c.serverSlowdowns;
            }
            break;
        case ChaosEvent::Kind::Restart:
            // The process is back: a crashed server restarts (empty
            // DRAM, Fenced), and any fenced server asks the
            // coordinator to rejoin — the warm pump takes it from
            // there. A server that is serving or already warming
            // ignores the event.
            if (srv.state() == ServerState::Crashed)
                srv.restart();
            if (srv.state() == ServerState::Fenced)
                coordinator_->requestJoin(ev.server, tick, c);
            break;
        }
    }
}

void
FleetCampaign::deliverDue(u64 tick)
{
    if (wire()) {
        // Bucket drain is FIFO, and onResponse never schedules into
        // the wheel (retries go to the shards), so the bucket is
        // stable during the loop.
        auto &bucket = respWheel_[tick & respWheelMask_];
        for (std::size_t i = 0; i < bucket.size(); ++i)
            client_.onResponse(bucket[i], tick);
        respWheelCount_ -= bucket.size();
        bucket.clear();
        return;
    }
    while (!pending_.empty() && pending_.begin()->first <= tick) {
        const Response resp = pending_.begin()->second;
        pending_.erase(pending_.begin());
        client_.onResponse(resp, tick);
    }
}

void
FleetCampaign::arrivals(u64 tick)
{
    if (traffic_.active()) {
        // Trace replay: the phase schedule drives rate, skew, write
        // mix, and bursts; ids stay dense counters and every per-op
        // choice is a counter hash, so the trace is bit-identical for
        // any thread count, transport, or batch size.
        const u32 n = traffic_.arrivalsAt(tick);
        const double wf = traffic_.writeFractionAt(tick);
        for (u32 i = 0; i < n; ++i) {
            const u64 op = ++nextOp_;
            const u64 kh = mix64(cfg_.seed ^ 0x7A5Cull ^
                                 op * 0x9E3779B97F4A7C15ull);
            const u64 key = traffic_.keyAt(tick, unit(kh));
            const u64 wcoin = mix64(cfg_.seed ^ 0x3217Eull ^
                                    op * 0xBF58476D1CE4E5B9ull);
            if (coin(wcoin, wf))
                client_.startWrite(op, key, tick);
            else
                client_.startRead(op, key, tick);
        }
        return;
    }
    for (u32 i = 0; i < cfg_.arrivalsPerTick; ++i) {
        // Operation ids are dense counters; every per-op random choice
        // (user, key, kind) is a hash of the id, never an RNG draw.
        const u64 op = tick * cfg_.arrivalsPerTick + i + 1;
        const u64 user =
            mix64(cfg_.seed ^ 0x05E2ull ^ op * 0x9E3779B97F4A7C15ull) %
            cfg_.users;
        const u64 key =
            mix64(user * 0xD6E8FEB86659FD93ull ^ cfg_.seed) %
            cfg_.keySpace;
        const u64 wcoin =
            mix64(cfg_.seed ^ 0x3217Eull ^ op * 0xBF58476D1CE4E5B9ull);
        if (coin(wcoin, cfg_.writeFraction))
            client_.startWrite(op, key, tick);
        else
            client_.startRead(op, key, tick);
    }
}

void
FleetCampaign::collectOutboxes(u64 tick)
{
    if (wire()) {
        // Frame each server's outbox and ship it back over the same
        // transport, then deliver in server-index order — identical to
        // Direct's multimap insertion order.
        for (u32 s = 0; s < cfg_.servers; ++s) {
            const auto &out = fleet_[s]->outbox();
            if (out.empty())
                continue;
            respWriter_.beginResponseFrame();
            for (const Response &r : out) {
                respWriter_.add(r);
                if (respWriter_.count() == cfg_.batch) {
                    transport_->sendToClient(s, respWriter_.finish());
                    respWriter_.beginResponseFrame();
                }
            }
            if (respWriter_.count() > 0)
                transport_->sendToClient(s, respWriter_.finish());
        }
        transport_->poll();
        for (u32 s = 0; s < cfg_.servers; ++s) {
            RxStream &rx = transport_->clientRx(s);
            while (!rx.pending().empty()) {
                FrameView view;
                std::size_t consumed = 0;
                const DecodeStatus st =
                    decodeFrame(rx.pending(), view, &consumed);
                if (st != DecodeStatus::Ok)
                    fatal("FleetCampaign: response frame from server "
                          "%u failed to decode: %s",
                          s, decodeStatusName(st));
                if (view.kind() != FrameKind::ResponseBatch)
                    fatal("FleetCampaign: request frame on the client "
                          "rx path");
                for (u32 i = 0; i < view.count(); ++i)
                    pushResponse(tick + cfg_.responseDelay,
                                 view.responseAt(i));
                rx.consume(consumed);
            }
            rx.compact();
        }
        return;
    }
    for (u32 s = 0; s < cfg_.servers; ++s)
        for (const Response &r : fleet_[s]->outbox())
            pending_.emplace(tick + cfg_.responseDelay, r);
}

void
FleetCampaign::stepServers()
{
    if (pool_->size() > 1) {
        pool_->parallelFor(cfg_.servers, 1,
                           [this](u64 b, u64 e, unsigned) {
                               for (u64 s = b; s < e; ++s)
                                   fleet_[s]->step(tick_);
                           });
    } else {
        for (u32 s = 0; s < cfg_.servers; ++s)
            fleet_[s]->step(tick_);
    }
}

FleetResult
FleetCampaign::run()
{
    advanceTo(cfg_.ticks);
    return finish();
}

void
FleetCampaign::advanceTo(u64 target)
{
    if (finished_)
        fatal("FleetCampaign: advanceTo after finish()");
    if (target > cfg_.ticks)
        fatal("FleetCampaign: advanceTo(%llu) beyond the campaign's "
              "%llu ticks",
              static_cast<unsigned long long>(target),
              static_cast<unsigned long long>(cfg_.ticks));

    for (; tick_ < target; ++tick_) {
        {
            // Serial phase: all cross-server communication, fixed
            // order. The scoped role grant is what lets these calls
            // satisfy CITADEL_REQUIRES(kSerialPhase).
            ThreadRoleGrant serial(kSerialPhase);
            applyChaos(tick_, loopCounters_);
            deliverDue(tick_);
            client_.tick(tick_);
            arrivals(tick_);
            // Wire path: ship every queued request before the
            // coordinator probes — a fence must clear the server's
            // inbox only after this tick's sends landed, matching
            // Direct's delivery point.
            flushShards(tick_);
            coordinator_->tick(tick_, loopCounters_);
        }
        // Parallel phase: per-server state only; the role is dropped,
        // so worker lambdas cannot reach serial-phase methods.
        stepServers();
        {
            // Serial collection, server-index order.
            ThreadRoleGrant serial(kSerialPhase);
            collectOutboxes(tick_);
        }
    }
}

FleetResult
FleetCampaign::finish()
{
    if (finished_)
        fatal("FleetCampaign: finish() may be called once");
    advanceTo(cfg_.ticks);
    finished_ = true;

    // Settle: no new arrivals; run until every in-flight operation has
    // resolved (the op deadline bounds this) and the wire is empty.
    const u64 settle_limit =
        cfg_.ticks + cfg_.retry.opDeadline + cfg_.responseDelay + 2;
    for (; tick_ < settle_limit; ++tick_) {
        {
            ThreadRoleGrant serial(kSerialPhase);
            if (client_.inflight() == 0 && pendingCount() == 0)
                break;
            deliverDue(tick_);
            client_.tick(tick_);
            flushShards(tick_);
            coordinator_->tick(tick_, loopCounters_);
        }
        stepServers();
        {
            ThreadRoleGrant serial(kSerialPhase);
            collectOutboxes(tick_);
        }
    }

    // The pool is idle from here on: the tail of the campaign (late
    // restarts, elastic drain, audit, fingerprint) is one long serial
    // phase.
    ThreadRoleGrant serial(kSerialPhase);

    // Late restarts: a crash near the campaign end schedules its
    // rejoin past the last tick; fire those now so the fleet settles
    // with every restartable server back in the ring before the
    // audit counts liveServers.
    const auto &sched = injector_.schedule();
    while (nextEvent_ < sched.size()) {
        const ChaosEvent &ev = sched[nextEvent_++];
        if (ev.kind != ChaosEvent::Kind::Restart)
            continue;
        StackServer &srv = *fleet_[ev.server];
        if (srv.state() == ServerState::Crashed)
            srv.restart();
        if (srv.state() == ServerState::Fenced)
            coordinator_->requestJoin(ev.server, tick_, loopCounters_);
    }

    // Warm fills and re-replication settle before the audit: both are
    // part of the service's durability story, not background niceties.
    coordinator_->drainElastic(tick_, loopCounters_);
    client_.finish();

    FleetCounters totals = loopCounters_;
    totals.add(client_.counters());
    for (u32 s = 0; s < cfg_.servers; ++s) {
        const ServerStats &st = fleet_[s]->stats();
        totals.requestsServed += st.served;
        totals.serviceUnitsSpent += st.unitsSpent;
        totals.queueRejections += st.rejected;
        totals.deviceDueReads += st.dueReads;
        totals.deviceCorrected += st.corrected;
    }
    return audit(totals);
}

FleetResult
FleetCampaign::audit(FleetCounters totals)
{
    FleetResult res;
    res.totals = totals;

    // Durability: every acknowledged write must be readable, at its
    // acked version or newer, from some in-service server — and an
    // equal-version copy must carry the exact digest the client wrote.
    client_.forEachAcked([&](u64 key, const FleetClient::AckedWrite &aw) {
        assertRoleHeld(kSerialPhase);
        ++res.auditedWrites;
        bool ok = false;
        bool mismatch = false;
        for (u32 s = 0; s < cfg_.servers && !ok; ++s) {
            if (!coordinator_->inService(s))
                continue;
            const auto [version, value] = fleet_[s]->lookup(key);
            if (version > aw.version)
                ok = true;
            else if (version == aw.version) {
                if (value == aw.value)
                    ok = true;
                else
                    mismatch = true;
            }
        }
        if (!ok) {
            if (mismatch)
                ++res.corruptAckedWrites;
            else
                ++res.lostAckedWrites;
        }
    });

    // Acked-completion latency percentiles from the client histogram.
    const std::vector<u64> &hist = client_.latencyHist();
    u64 totalAcked = 0;
    for (const u64 b : hist)
        totalAcked += b;
    if (totalAcked > 0) {
        u64 cum = 0;
        bool got50 = false;
        for (u64 d = 0; d < hist.size(); ++d) {
            cum += hist[d];
            if (!got50 && cum * 2 >= totalAcked) {
                res.p50LatencyTicks = d;
                got50 = true;
            }
            if (cum * 100 >= totalAcked * 99) {
                res.p99LatencyTicks = d;
                break;
            }
        }
    }

    res.servers.reserve(cfg_.servers);
    for (u32 s = 0; s < cfg_.servers; ++s) {
        const StackServer &srv = *fleet_[s];
        ServerReport rep;
        rep.state = srv.state();
        rep.served = srv.stats().served;
        rep.rejected = srv.stats().rejected;
        rep.dueReads = srv.stats().dueReads;
        rep.corrected = srv.stats().corrected;
        rep.kvKeys = srv.kvCount();
        rep.divergences = srv.datapath().counters().divergences;
        rep.serviceUnits = srv.serviceUnitsPerTick();
        rep.capacityFraction = srv.state() == ServerState::Crashed
                                   ? 0.0
                                   : srv.health().capacityFraction;
        res.divergences += rep.divergences;
        if (coordinator_->inService(s))
            ++res.liveServers;
        res.servers.push_back(rep);
    }

    ByteSink sink;
    // `resumes` counts loadState() calls — operator action, not
    // campaign behavior — so the fingerprint hashes it as zero: a
    // resumed campaign must fingerprint bit-identically to an
    // uninterrupted one, whatever the cut point.
    FleetCounters fpTotals = res.totals;
    fpTotals.resumes = 0;
    fpTotals.serialize(sink);
    coordinator_->serialize(sink);
    client_.serialize(sink);
    for (u32 s = 0; s < cfg_.servers; ++s)
        fleet_[s]->serialize(sink);
    res.fingerprint = fnv1a(sink.bytes());
    return res;
}

u64
FleetCampaign::scheduleHash() const
{
    ByteSink sink;
    for (const ChaosEvent &ev : injector_.schedule()) {
        sink.putU64(ev.tick);
        sink.putU8(static_cast<u8>(ev.kind));
        sink.putU32(ev.server);
        sink.putU64(ev.duration);
        sink.putU32(ev.factor);
    }
    return fnv1a(sink.bytes());
}

void
FleetCampaign::saveState(ByteSink &sink) const
{
    if (finished_)
        fatal("FleetCampaign: saveState after finish()");
    // saveState is called between advanceTo() calls — one long serial
    // phase as far as the campaign is concerned.
    ThreadRoleGrant serial(kSerialPhase);
    if (wire())
        for (u32 s = 0; s < cfg_.servers; ++s)
            if (shards_->count(s) != 0)
                fatal("FleetCampaign: saveState with undrained "
                      "submission shards (not at a tick boundary)");

    sink.putU64(scheduleHash());
    sink.putU64(tick_);
    sink.putU64(nextOp_);
    sink.putU64(nextEvent_);
    loopCounters_.serialize(sink);
    client_.saveState(sink);
    coordinator_->saveState(sink);
    for (const auto &srv : fleet_)
        srv->saveState(sink);
    if (!wire()) {
        sink.putU64(pending_.size());
        for (const auto &[due, resp] : pending_) {
            sink.putU64(due);
            putResponse(sink, resp);
        }
        return;
    }
    // Wheel buckets by index: with tick_ restored, (due & mask)
    // addressing reproduces delivery exactly.
    for (const auto &bucket : respWheel_) {
        sink.putU64(bucket.size());
        for (const Response &r : bucket)
            putResponse(sink, r);
    }
}

void
FleetCampaign::loadState(ByteSource &src)
{
    if (finished_)
        fatal("FleetCampaign: loadState after finish()");
    ThreadRoleGrant serial(kSerialPhase);

    const u64 hash = src.getU64();
    if (hash != scheduleHash())
        fatal("FleetCampaign: checkpoint chaos schedule does not match "
              "this campaign (different config, seed, or scripted "
              "events)");
    tick_ = src.getU64();
    nextOp_ = src.getU64();
    nextEvent_ = src.getU64();
    if (tick_ > cfg_.ticks || nextEvent_ > injector_.schedule().size())
        fatal("FleetCampaign: corrupt checkpoint cursors");
    loopCounters_.deserialize(src);
    client_.loadState(src);
    coordinator_->loadState(src);
    for (const auto &srv : fleet_)
        srv->loadState(src);
    if (!wire()) {
        pending_.clear();
        const u64 n =
            src.getCount(sizeof(u64) + kResponseRecordBytes);
        for (u64 i = 0; i < n; ++i) {
            const u64 due = src.getU64();
            pending_.emplace_hint(pending_.end(), due,
                                  getResponse(src));
        }
    } else {
        respWheelCount_ = 0;
        for (auto &bucket : respWheel_) {
            bucket.clear();
            const u64 n = src.getCount(kResponseRecordBytes);
            for (u64 i = 0; i < n; ++i)
                bucket.push_back(getResponse(src));
            respWheelCount_ += bucket.size();
        }
    }
    ++loopCounters_.resumes;
}

} // namespace fleet
} // namespace citadel
