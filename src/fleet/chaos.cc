#include "fleet/chaos.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"

namespace citadel {
namespace fleet {

namespace {

/** Coin flip from a counter hash: deterministic, order-independent. */
bool
coin(u64 h, double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    // Compare against the top 53 bits for a clean double mapping.
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    return u < p;
}

} // namespace

void
ChaosOptions::validate() const
{
    if (dropProb < 0.0 || dropProb > 1.0)
        fatal("ChaosOptions: dropProb must be in [0, 1]");
    if (dupProb < 0.0 || dupProb > 1.0)
        fatal("ChaosOptions: dupProb must be in [0, 1]");
    if (slowFactor == 0)
        fatal("ChaosOptions: slowFactor must be >= 1");
}

FleetFaultInjector::FleetFaultInjector(const ChaosOptions &opts,
                                       u32 servers, u64 campaign_ticks,
                                       u64 seed)
    : opts_(opts), seed_(seed ^ 0xC0A05EEDull)
{
    opts_.validate();
    if (!opts_.enabled || servers == 0 || campaign_ticks == 0)
        return;

    Rng rng(seed_);
    const u64 lo = campaign_ticks / 10;
    const u64 hi = campaign_ticks - campaign_ticks / 10;
    const auto sample_tick = [&] {
        return hi > lo ? rng.inRange(lo, hi) : lo;
    };

    // Crashes hit distinct servers: a schedule that takes out both
    // replicas of a key tests nothing about single-failure
    // durability. (Scripted events may still do so deliberately.)
    std::vector<ServerIdx> pool(servers);
    for (u32 s = 0; s < servers; ++s)
        pool[s] = s;
    const u32 crashes = std::min(opts_.crashes, servers);
    for (u32 i = 0; i < crashes; ++i) {
        const u64 pick = rng.below(pool.size());
        ChaosEvent ev;
        ev.tick = sample_tick();
        ev.kind = ChaosEvent::Kind::Crash;
        ev.server = pool[pick];
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
        events_.push_back(ev);
        // Derived, not drawn: pairing each crash with its restart
        // keeps every other sampled event exactly where a
        // restartAfterTicks=0 schedule would put it.
        if (opts_.restartAfterTicks > 0) {
            ChaosEvent re = ev;
            re.kind = ChaosEvent::Kind::Restart;
            re.tick = ev.tick + opts_.restartAfterTicks;
            events_.push_back(re);
        }
    }
    for (u32 i = 0; i < opts_.stalls; ++i) {
        ChaosEvent ev;
        ev.tick = sample_tick();
        ev.kind = ChaosEvent::Kind::Stall;
        ev.server = static_cast<ServerIdx>(rng.below(servers));
        ev.duration = opts_.stallTicks;
        events_.push_back(ev);
        // A stall long enough to miss probes gets the server evicted;
        // the process is alive, so once the window ends it asks to
        // rejoin. Derived like crash restarts; a Restart landing on a
        // server that was never evicted is ignored.
        if (opts_.restartAfterTicks > 0) {
            ChaosEvent re = ev;
            re.kind = ChaosEvent::Kind::Restart;
            re.tick = ev.tick + ev.duration + opts_.restartAfterTicks;
            re.duration = 0;
            events_.push_back(re);
        }
    }
    for (u32 i = 0; i < opts_.slowdowns; ++i) {
        ChaosEvent ev;
        ev.tick = sample_tick();
        ev.kind = ChaosEvent::Kind::Slow;
        ev.server = static_cast<ServerIdx>(rng.below(servers));
        ev.duration = opts_.slowTicks;
        ev.factor = opts_.slowFactor;
        events_.push_back(ev);
    }
    sortEvents();
}

void
FleetFaultInjector::addEvent(const ChaosEvent &ev)
{
    events_.push_back(ev);
    sortEvents();
}

void
FleetFaultInjector::sortEvents()
{
    std::sort(events_.begin(), events_.end(),
              [](const ChaosEvent &a, const ChaosEvent &b) {
                  if (a.tick != b.tick)
                      return a.tick < b.tick;
                  if (a.server != b.server)
                      return a.server < b.server;
                  return static_cast<u8>(a.kind) <
                         static_cast<u8>(b.kind);
              });
}

bool
FleetFaultInjector::dropRequest(u64 op, u32 attempt,
                                ServerIdx server) const
{
    if (!opts_.enabled)
        return false;
    const u64 h = mix64(seed_ ^ (op * 0x9E3779B97F4A7C15ull) ^
                        (static_cast<u64>(attempt) << 36) ^ server);
    return coin(h, opts_.dropProb);
}

bool
FleetFaultInjector::duplicateRequest(u64 op, u32 attempt,
                                     ServerIdx server) const
{
    if (!opts_.enabled)
        return false;
    const u64 h = mix64(seed_ ^ 0xD0D0ull ^
                        (op * 0xBF58476D1CE4E5B9ull) ^
                        (static_cast<u64>(attempt) << 36) ^ server);
    return coin(h, opts_.dupProb);
}

} // namespace fleet
} // namespace citadel
