/**
 * @file
 * FleetCampaign: the whole memory-pool service in one deterministic
 * virtual-time loop — clients, coordinator, N stack servers, and the
 * fleet fault injector.
 *
 * Each tick runs three phases:
 *
 *  1. Serial: chaos events fire, due responses are delivered to the
 *     client, client wakeups run, new operations arrive, and the
 *     coordinator probes/evicts/repairs. All cross-server
 *     communication happens here, in fixed order.
 *  2. Parallel: every stack server steps once — consumes its own
 *     inbox against its service budget and advances its own bit-true
 *     datapath. Servers share nothing, so the ThreadPool may execute
 *     them in any order and any interleaving.
 *  3. Serial: outboxes are collected in server-index order and
 *     scheduled for delivery `responseDelay` ticks later.
 *
 * Because phase 2 touches only per-server state and phases 1/3 are
 * single-threaded, the campaign is bit-identical for any worker
 * thread count — the fingerprint in FleetResult is the proof hook the
 * tests and the load driver check.
 *
 * result() also audits durability: after the coordinator's repair
 * pump drains, every write the client acknowledged must be readable
 * (version >= acked, digest matching) from at least one in-service
 * server. With quorum-2 acks, replication 2, and repair after
 * failover, a single crash can never fail that audit — the chaos e2e
 * test kills each server in turn to enforce exactly this.
 */

#ifndef CITADEL_FLEET_FLEET_SIM_H
#define CITADEL_FLEET_FLEET_SIM_H

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "fleet/chaos.h"
#include "fleet/client.h"
#include "fleet/coordinator.h"
#include "fleet/stack_server.h"
#include "fleet/traffic.h"
#include "fleet/wire.h"

namespace citadel {
namespace fleet {

/** Full campaign configuration. */
struct FleetConfig
{
    u32 servers = 8; ///< Stack count, in [2, 64] (write-ack bitmask).
    u64 ticks = 4096;

    /** Workload shape. */
    u64 users = 1'000'000; ///< Distinct clients keys are hashed from.
    u64 keySpace = 512;    ///< Distinct keys.
    u32 arrivalsPerTick = 4;
    double writeFraction = 0.5;

    /**
     * Trace-replay spec (fleet/traffic.h grammar); empty replays the
     * uniform arrivals above. A non-empty spec overrides `ticks` with
     * the trace's total length and drives per-tick rate, zipfian key
     * skew, write mix, and bursts.
     */
    std::string traffic;

    /** Replication and ack discipline. */
    u32 replication = 2;
    u32 ackQuorum = 2; ///< <= replication; 2 makes crashes survivable.

    /** Ticks between a server producing a response and the client
     *  seeing it (>= 1: no same-tick request/response cycles). */
    u64 responseDelay = 1;

    /**
     * How requests and responses travel. Loopback (default) and
     * Socket run the framed wire path with batching, flat client/
     * server state engines and the coordinator's placement cache;
     * Direct is the per-request PR-6 handoff kept as the measured
     * unbatched baseline. All three produce the same fingerprint on
     * the same config — the load driver's grid enforces it.
     */
    TransportMode transport = TransportMode::Loopback;

    /** Max records per wire frame, in [1, kMaxFrameRecords]. */
    u32 batch = 32;

    RetryPolicy retry;
    CoordinatorOptions coord;
    ChaosOptions chaos;
    ServerConfig server;

    u64 seed = 1;
    unsigned threads = 0; ///< Worker threads; 0 = CITADEL_THREADS.

    void validate() const;

    /** A chaos-ready configuration on the reduced tiny geometry with
     *  boosted fault rates — the shared baseline of the e2e tests and
     *  the load driver. */
    static FleetConfig demo();
};

/** Per-server slice of the result. */
struct ServerReport
{
    ServerState state = ServerState::Up;
    u64 served = 0;
    u64 rejected = 0;
    u64 dueReads = 0;
    u64 corrected = 0;
    u64 kvKeys = 0;
    u64 divergences = 0; ///< Differential-model mismatches (must be 0).
    u32 serviceUnits = 0;
    /** Usable capacity at end of run; 0 for crashed servers. */
    double capacityFraction = 0.0;
};

/** Campaign outcome. */
struct FleetResult
{
    FleetCounters totals;
    std::vector<ServerReport> servers;

    u32 liveServers = 0;    ///< Still in the ring and serving.
    u64 divergences = 0;    ///< Sum over all servers (must be 0).
    u64 lostAckedWrites = 0;   ///< Durability audit failures.
    u64 corruptAckedWrites = 0;///< Audit digest mismatches.
    u64 auditedWrites = 0;     ///< Keys the audit checked.

    /** Acked-completion latency percentiles in virtual ticks (from
     *  the client's latency histogram; 0 when nothing acked). */
    u64 p50LatencyTicks = 0;
    u64 p99LatencyTicks = 0;

    /** Order-independent digest of totals, ring, acked set + latency
     *  histogram, and every server's (kv + device) state: equal
     *  fingerprints mean equal campaigns, whatever the thread count,
     *  transport, or batch size. */
    u64 fingerprint = 0;

    std::string summary() const;
};

class FleetCampaign
{
  public:
    explicit FleetCampaign(const FleetConfig &cfg);
    ~FleetCampaign();

    FleetCampaign(const FleetCampaign &) = delete;
    FleetCampaign &operator=(const FleetCampaign &) = delete;

    /** Script an extra chaos event (tests). Call before run(). */
    void injectChaosEvent(const ChaosEvent &ev);

    /** The sampled + scripted chaos schedule. */
    const std::vector<ChaosEvent> &chaosSchedule() const
    {
        return injector_.schedule();
    }

    /** Run the campaign to completion and audit. Call once. */
    FleetResult run();

    /**
     * Run the campaign loop up to virtual tick `target` (exclusive)
     * and stop at the tick boundary — the checkpointable cut point.
     * Monotonic; `target` <= cfg.ticks. run() == advanceTo(cfg.ticks)
     * + finish().
     */
    void advanceTo(u64 target);

    /** Settle in-flight operations, drain warm fills and repairs
     *  (drainElastic), and audit. Call once, after any advanceTo /
     *  loadState sequence. */
    FleetResult finish();

    /** Ticks executed so far. */
    u64 tick() const { return tick_; }

    /**
     * Campaign checkpoint at a tick boundary (between advanceTo
     * calls): tick and arrival/chaos cursors, loop counters, client,
     * coordinator, every server (full LiveRasDatapath state), and all
     * in-flight responses. Guarded by a chaos-schedule hash, so a
     * checkpoint can only be restored into a campaign constructed
     * with the identical config, seed, and scripted events.
     * loadState() counts into FleetCounters::resumes, which audit()
     * zeroes for the fingerprint — a resumed campaign fingerprints
     * bit-identically to an uninterrupted one, whatever the cut point
     * or thread count.
     */
    void saveState(ByteSink &sink) const;
    void loadState(ByteSource &src);

    const Coordinator &coordinator() const { return *coordinator_; }
    const StackServer &server(ServerIdx s) const { return *fleet_[s]; }

  private:
    // Serial-phase segments of the campaign loop. run() takes the
    // kSerialPhase role with a scoped ThreadRoleGrant around phases 1
    // and 3 and drops it across the parallel step fan-out, so calling
    // any of these from worker code fails to compile under
    // -Wthread-safety.
    void applyChaos(u64 tick, FleetCounters &c)
        CITADEL_REQUIRES(kSerialPhase);
    void deliverDue(u64 tick) CITADEL_REQUIRES(kSerialPhase);
    void arrivals(u64 tick) CITADEL_REQUIRES(kSerialPhase);
    void collectOutboxes(u64 tick) CITADEL_REQUIRES(kSerialPhase);
    void sendToServer(const Request &r, ServerIdx s)
        CITADEL_REQUIRES(kSerialPhase);
    void deliverRequest(const Request &r, ServerIdx s, u64 tick)
        CITADEL_REQUIRES(kSerialPhase);
    void flushShards(u64 tick) CITADEL_REQUIRES(kSerialPhase);
    void pushResponse(u64 due, const Response &r)
        CITADEL_REQUIRES(kSerialPhase);
    std::size_t pendingCount() const CITADEL_REQUIRES(kSerialPhase);
    FleetResult audit(FleetCounters totals)
        CITADEL_REQUIRES(kSerialPhase);

    /** Parallel phase: fan server steps out to the pool (or run them
     *  inline single-threaded). Must not hold the serial role. */
    void stepServers() CITADEL_EXCLUDES(kSerialPhase);

    /** Digest of the chaos schedule: the checkpoint compatibility
     *  guard (same config + seed + scripted events => same hash). */
    u64 scheduleHash() const;

    bool wire() const { return cfg_.transport != TransportMode::Direct; }

    static FleetConfig normalized(const FleetConfig &cfg);

    FleetConfig cfg_;
    FleetFaultInjector injector_;
    std::vector<std::unique_ptr<StackServer>> fleet_;
    std::unique_ptr<Coordinator> coordinator_;
    FleetClient client_;
    TrafficModel traffic_; ///< Active iff cfg_.traffic is non-empty.
    std::unique_ptr<ThreadPool> pool_; ///< Lives across advanceTo calls.

    u64 tick_ = 0;
    u64 nextOp_ = 0; ///< Trace-mode dense operation-id counter.
    std::size_t nextEvent_ = 0;
    /** Direct mode in-flight responses: delivery tick -> response,
     *  FIFO per tick. */
    std::multimap<u64, Response> pending_;

    // Wire-path state (Loopback/Socket transports only): the framed
    // batching pipeline and its allocation-free delivery structures.
    std::unique_ptr<Transport> transport_;
    std::unique_ptr<SubmissionShards> shards_;
    FrameWriter reqWriter_;
    FrameWriter respWriter_;
    /** Response timing wheel: bucket (due & mask), FIFO per bucket —
     *  the multimap's (tick, insertion-order) delivery, flat. */
    std::vector<std::vector<Response>> respWheel_;
    u64 respWheelMask_ = 0;
    std::size_t respWheelCount_ = 0;
    /** Per-server submission sequences for the in-flight generation:
     *  maps decoded record index back to global send order. */
    std::vector<std::vector<u32>> seqScratch_;
    /** Queue-full Busy synths collected during a flush, sorted by
     *  submission sequence before entering the wheel so the client
     *  sees them in Direct's exact per-request order. */
    std::vector<std::pair<u32, Response>> busyScratch_;

    FleetCounters loopCounters_; ///< Chaos + network accounting.
    bool finished_ = false;
};

} // namespace fleet
} // namespace citadel

#endif // CITADEL_FLEET_FLEET_SIM_H
