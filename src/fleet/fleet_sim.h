/**
 * @file
 * FleetCampaign: the whole memory-pool service in one deterministic
 * virtual-time loop — clients, coordinator, N stack servers, and the
 * fleet fault injector.
 *
 * Each tick runs three phases:
 *
 *  1. Serial: chaos events fire, due responses are delivered to the
 *     client, client wakeups run, new operations arrive, and the
 *     coordinator probes/evicts/repairs. All cross-server
 *     communication happens here, in fixed order.
 *  2. Parallel: every stack server steps once — consumes its own
 *     inbox against its service budget and advances its own bit-true
 *     datapath. Servers share nothing, so the ThreadPool may execute
 *     them in any order and any interleaving.
 *  3. Serial: outboxes are collected in server-index order and
 *     scheduled for delivery `responseDelay` ticks later.
 *
 * Because phase 2 touches only per-server state and phases 1/3 are
 * single-threaded, the campaign is bit-identical for any worker
 * thread count — the fingerprint in FleetResult is the proof hook the
 * tests and the load driver check.
 *
 * result() also audits durability: after the coordinator's repair
 * pump drains, every write the client acknowledged must be readable
 * (version >= acked, digest matching) from at least one in-service
 * server. With quorum-2 acks, replication 2, and repair after
 * failover, a single crash can never fail that audit — the chaos e2e
 * test kills each server in turn to enforce exactly this.
 */

#ifndef CITADEL_FLEET_FLEET_SIM_H
#define CITADEL_FLEET_FLEET_SIM_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fleet/chaos.h"
#include "fleet/client.h"
#include "fleet/coordinator.h"
#include "fleet/stack_server.h"

namespace citadel {
namespace fleet {

/** Full campaign configuration. */
struct FleetConfig
{
    u32 servers = 8; ///< Stack count, in [2, 64] (write-ack bitmask).
    u64 ticks = 4096;

    /** Workload shape. */
    u64 users = 1'000'000; ///< Distinct clients keys are hashed from.
    u64 keySpace = 512;    ///< Distinct keys.
    u32 arrivalsPerTick = 4;
    double writeFraction = 0.5;

    /** Replication and ack discipline. */
    u32 replication = 2;
    u32 ackQuorum = 2; ///< <= replication; 2 makes crashes survivable.

    /** Ticks between a server producing a response and the client
     *  seeing it (>= 1: no same-tick request/response cycles). */
    u64 responseDelay = 1;

    RetryPolicy retry;
    CoordinatorOptions coord;
    ChaosOptions chaos;
    ServerConfig server;

    u64 seed = 1;
    unsigned threads = 0; ///< Worker threads; 0 = CITADEL_THREADS.

    void validate() const;

    /** A chaos-ready configuration on the reduced tiny geometry with
     *  boosted fault rates — the shared baseline of the e2e tests and
     *  the load driver. */
    static FleetConfig demo();
};

/** Per-server slice of the result. */
struct ServerReport
{
    ServerState state = ServerState::Up;
    u64 served = 0;
    u64 rejected = 0;
    u64 dueReads = 0;
    u64 corrected = 0;
    u64 kvKeys = 0;
    u64 divergences = 0; ///< Differential-model mismatches (must be 0).
    u32 serviceUnits = 0;
    /** Usable capacity at end of run; 0 for crashed servers. */
    double capacityFraction = 0.0;
};

/** Campaign outcome. */
struct FleetResult
{
    FleetCounters totals;
    std::vector<ServerReport> servers;

    u32 liveServers = 0;    ///< Still in the ring and serving.
    u64 divergences = 0;    ///< Sum over all servers (must be 0).
    u64 lostAckedWrites = 0;   ///< Durability audit failures.
    u64 corruptAckedWrites = 0;///< Audit digest mismatches.
    u64 auditedWrites = 0;     ///< Keys the audit checked.

    /** Order-independent digest of totals, ring, acked set, and every
     *  server's (kv + device) state: equal fingerprints mean equal
     *  campaigns, whatever the thread count. */
    u64 fingerprint = 0;

    std::string summary() const;
};

class FleetCampaign
{
  public:
    explicit FleetCampaign(const FleetConfig &cfg);
    ~FleetCampaign();

    FleetCampaign(const FleetCampaign &) = delete;
    FleetCampaign &operator=(const FleetCampaign &) = delete;

    /** Script an extra chaos event (tests). Call before run(). */
    void injectChaosEvent(const ChaosEvent &ev);

    /** The sampled + scripted chaos schedule. */
    const std::vector<ChaosEvent> &chaosSchedule() const
    {
        return injector_.schedule();
    }

    /** Run the campaign to completion and audit. Call once. */
    FleetResult run();

    const Coordinator &coordinator() const { return *coordinator_; }
    const StackServer &server(ServerIdx s) const { return *fleet_[s]; }

  private:
    // Serial-phase segments of the campaign loop. run() takes the
    // kSerialPhase role with a scoped ThreadRoleGrant around phases 1
    // and 3 and drops it across the parallel step fan-out, so calling
    // any of these from worker code fails to compile under
    // -Wthread-safety.
    void applyChaos(u64 tick, FleetCounters &c)
        CITADEL_REQUIRES(kSerialPhase);
    void deliverDue(u64 tick) CITADEL_REQUIRES(kSerialPhase);
    void arrivals(u64 tick) CITADEL_REQUIRES(kSerialPhase);
    void collectOutboxes(u64 tick) CITADEL_REQUIRES(kSerialPhase);
    void sendToServer(const Request &r, ServerIdx s)
        CITADEL_REQUIRES(kSerialPhase);
    FleetResult audit(FleetCounters totals)
        CITADEL_REQUIRES(kSerialPhase);

    FleetConfig cfg_;
    FleetFaultInjector injector_;
    std::vector<std::unique_ptr<StackServer>> fleet_;
    std::unique_ptr<Coordinator> coordinator_;
    FleetClient client_;

    u64 tick_ = 0;
    std::size_t nextEvent_ = 0;
    /** In-flight responses: delivery tick -> response, FIFO per tick. */
    std::multimap<u64, Response> pending_;
    FleetCounters loopCounters_; ///< Chaos + network accounting.
    bool ran_ = false;
};

} // namespace fleet
} // namespace citadel

#endif // CITADEL_FLEET_FLEET_SIM_H
