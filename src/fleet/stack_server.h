/**
 * @file
 * One stack server of the fleet: a bounded request queue in front of a
 * full bit-true device shard (LiveRasDatapath over a SimConfig
 * geometry), plus the replicated key-value metadata the memory-pool
 * service is made of.
 *
 * The server's step() is the unit of parallelism in the campaign loop:
 * it reads its own inbox, drives its own datapath, and appends to its
 * own outbox — nothing else. Within a step it consumes a bounded
 * budget of *service units*; a request costs one unit plus one per
 * parity-group read its device correction needed, so a stack that is
 * busy peeling errors visibly serves fewer requests per tick. The
 * budget is calibrated at startup by running a short SystemSim slice
 * (the same timing simulator the single-device experiments use) with
 * this server's datapath attached: the measured cycles-per-demand-read
 * converts the tick's cycle budget into a service rate.
 *
 * Device aging happens during the campaign: a FaultInjector lifetime
 * (data-plane and control-plane faults, counter-derived from the
 * server's seed) is compressed onto the campaign's tick horizon, so
 * the degradation ladder can bite mid-run and the coordinator sees
 * capacityFraction fall through healthSignals().
 */

#ifndef CITADEL_FLEET_STACK_SERVER_H
#define CITADEL_FLEET_STACK_SERVER_H

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fleet/fleet_types.h"
#include "ras/live_datapath.h"

namespace citadel {
namespace fleet {

/** Per-server configuration (one template shared by the fleet). */
struct ServerConfig
{
    /** Device shard geometry/timing (reduced geometries only: each
     *  server owns a bit-true model). */
    SimConfig sim;

    /** Datapath options (differential validation stays on by default:
     *  the no-overclaim invariant is part of the chaos acceptance). */
    LiveRasOptions ras;

    /** Fault-sampling config for in-campaign aging; geom/lifetime are
     *  overwritten per server. */
    SystemConfig faults;

    /** Simulated hours the campaign compresses onto its ticks (drives
     *  how many lifetime faults arrive mid-run). */
    double agingHours = 1000.0;

    /** Bounded inbox capacity; arrivals beyond it bounce as Busy. */
    u32 queueCap = 256;

    /** Device cycles one fleet tick advances the datapath by. */
    u64 cyclesPerTick = 512;

    /** Instruction budget of the startup SystemSim calibration slice;
     *  0 skips calibration and uses `defaultServiceUnits`. */
    u64 calibrationInsns = 0;

    /** Benchmark profile driving the calibration slice. */
    std::string calibrationBench = "mcf";

    /** Service units per tick when calibration is off. */
    u32 defaultServiceUnits = 16;

    /** KV store sizing: 0 keeps the ordered-map store (any u64 key);
     *  > 0 switches to dense per-key arrays over [0, keySpace) — the
     *  serving hot path the wire transports run on. A key outside the
     *  declared space is fatal, never silently dropped. */
    u64 keySpace = 0;

    void validate() const;
};

/** Server-local stats (merged into FleetCounters in server order). */
struct ServerStats
{
    u64 served = 0;
    u64 unitsSpent = 0;
    u64 rejected = 0;   ///< Bounced off the full inbox.
    u64 dueReads = 0;   ///< Requests answered DueData.
    u64 corrected = 0;  ///< Requests whose device read was corrected.
};

class StackServer
{
  public:
    StackServer(ServerIdx index, const ServerConfig &cfg, u64 seed,
                u64 campaign_ticks);

    StackServer(const StackServer &) = delete;
    StackServer &operator=(const StackServer &) = delete;
    ~StackServer();

    // ---- Serial-phase interface (campaign loop, coordinator) ------
    //
    // CITADEL_REQUIRES(kSerialPhase) is the phase discipline made
    // checkable: these methods mutate or read state that step() also
    // touches, so they are legal only while the campaign loop holds
    // the serial-phase role (ThreadPool worker lambdas start with an
    // empty capability set and cannot call them).

    /** Offer a request; false when the bounded queue is full or the
     *  server cannot accept (crashed/fenced servers never ack). */
    bool enqueue(const Request &r) CITADEL_REQUIRES(kSerialPhase);

    /** Chaos controls (fail-stop crash, stall window, slowdown). */
    void crash() CITADEL_REQUIRES(kSerialPhase);
    void stall(u64 until_tick) CITADEL_REQUIRES(kSerialPhase);
    void slowdown(u64 until_tick, u32 divisor)
        CITADEL_REQUIRES(kSerialPhase);

    /** Coordinator eviction: stop serving, remain a repair source. */
    void fence() CITADEL_REQUIRES(kSerialPhase);

    // ---- Elastic lifecycle (DESIGN.md §16) ------------------------
    //
    // Every transition below routes through the fleet_types.h table;
    // the only way back into Serving is Warming -> Up via admit().

    /** Process restart after a fail-stop crash: Crashed -> Fenced.
     *  DRAM contents are gone — the KV store comes back empty and the
     *  server must warm-fill before it can serve again. The device
     *  fault state persists (hardware does not heal on reboot). */
    void restart() CITADEL_REQUIRES(kSerialPhase);

    /** Begin a warm fill: Fenced -> Warming. Resets the running
     *  warm-stream CRC (a restarted scan re-handshakes from zero;
     *  re-streamed records max-merge idempotently). */
    void beginWarming() CITADEL_REQUIRES(kSerialPhase);

    /**
     * Apply one warm-fill frame (a wire-encoded RequestBatch of Write
     * records streamed from live replicas). Each record max-merges
     * into the KV store and folds into the warm CRC the admission
     * handshake checks. Only legal while Warming. Returns the number
     * of records applied.
     */
    u32 warmFrame(std::span<const u8> frame)
        CITADEL_REQUIRES(kSerialPhase);

    /** Running CRC over the warm stream's (key, version, value)s. */
    u32 warmCrc() const { return warmCrc_; }

    /**
     * Admission handshake: Warming -> Up, the single re-entry into
     * Serving. `expectedCrc` is the coordinator's record CRC over
     * everything it streamed; a mismatch is fatal — the warm stream
     * never crosses the chaos-faulted path, so disagreement is a
     * protocol bug, not weather.
     */
    void admit(u32 expectedCrc) CITADEL_REQUIRES(kSerialPhase);

    /** Abandon a warm fill (retry budget exhausted): Warming ->
     *  Fenced. Partial warm data is kept — it is correct, merely
     *  incomplete, and a later attempt re-streams over it. */
    void abortWarming() CITADEL_REQUIRES(kSerialPhase);

    /** Install a replica copy (coordinator-driven re-replication).
     *  Max-merge on version, mirroring the write path. */
    void applyReplica(u64 key, u64 version, u64 value)
        CITADEL_REQUIRES(kSerialPhase);

    /** Does the server answer a health probe at `tick`? */
    bool respondsToProbe(u64 tick) const CITADEL_REQUIRES(kSerialPhase);

    /** Can the coordinator still read this server's data? (Everything
     *  but a crash: fenced and stalled state is intact.) */
    bool dataReadable() const { return state_ != ServerState::Crashed; }

    /** Serving client traffic (in-ring health). */
    bool serving() const { return serverStateServing(state_); }

    ServerState state() const { return state_; }
    const ServerStats &stats() const { return stats_; }

    /** Keys this server holds a replica of. */
    u64 kvCount() const CITADEL_REQUIRES(kSerialPhase)
    {
        return kvCount_;
    }

    /**
     * Resumable ascending-key scan over the KV store — the uniform
     * cursor the coordinator's repair pump walks under either store
     * layout. With have=false, yields the smallest key; with
     * have=true, the smallest key > `from`. Returns false when the
     * scan is exhausted.
     */
    bool kvScan(bool have, u64 from, u64 &key, u64 &version,
                u64 &value) const CITADEL_REQUIRES(kSerialPhase);

    /** Newest (version, value) of a key, or (0, 0). */
    std::pair<u64, u64> lookup(u64 key) const
        CITADEL_REQUIRES(kSerialPhase);

    /** Device health for placement decisions (capacityFraction falls
     *  as the degradation ladder bites). */
    RasHealthSignals health() const CITADEL_REQUIRES(kSerialPhase);

    const LiveRasDatapath &datapath() const { return *dp_; }
    u32 serviceUnitsPerTick() const { return serviceUnits_; }
    double calibratedCyclesPerRead() const { return calibCyclesPerRead_; }

    /** Fold KV state, device state and stats into a fingerprint. */
    void serialize(ByteSink &sink) const CITADEL_REQUIRES(kSerialPhase);

    /**
     * Full checkpoint of the server's mutable state: lifecycle +
     * chaos windows, inbox/outbox contents, KV store, stats, warm
     * CRC, datapath tick guard, and the LiveRasDatapath checkpoint
     * (which includes faults still scheduled to land). loadState()
     * must be called on a server constructed from the identical
     * (config, seed, campaign_ticks) — construction-derived state
     * (calibration, canonical aging schedule) is not serialized.
     */
    void saveState(ByteSink &sink) const CITADEL_REQUIRES(kSerialPhase);
    void loadState(ByteSource &src) CITADEL_REQUIRES(kSerialPhase);

    // ---- Parallel-phase interface ---------------------------------

    /** Consume the inbox within this tick's service budget; responses
     *  land in outbox() in arrival order. Touches only this server.
     *  EXCLUDES documents the split: the campaign loop must drop the
     *  serial-phase role before fanning steps out to the pool. */
    void step(u64 tick) CITADEL_EXCLUDES(kSerialPhase);

    /** Responses produced by the last step(); drained serially. */
    std::vector<Response> &outbox() CITADEL_REQUIRES(kSerialPhase)
    {
        return outbox_;
    }

  private:
    LineAddr lineFor(u64 key) const;
    u64 cycleOf(u64 tick) const;
    void calibrate(u64 seed);
    void scheduleAging(u64 seed, u64 campaign_ticks);
    Response serve(const Request &r, u64 cycle);

    /** The only writer of state_: dies on an edge the fleet_types.h
     *  transition table does not allow. */
    void setState(ServerState to);

    // Phase-agnostic KV access: per-server state reached either from
    // the owner's step() (parallel phase) or through the annotated
    // serial-phase wrappers above — never both at once.
    std::pair<u64, u64> lookupLocal(u64 key) const;
    void storeLocal(u64 key, u64 version, u64 value);

    ServerIdx index_;
    ServerConfig cfg_;
    std::unique_ptr<LiveRasDatapath> dp_;

    ServerState state_ = ServerState::Up;
    u64 stalledUntil_ = 0;
    u64 slowedUntil_ = 0;
    u32 slowDivisor_ = 1;

    u32 serviceUnits_;
    double calibCyclesPerRead_ = 0.0;
    u64 baseCycle_ = 0; ///< Datapath cycles consumed by calibration.
    u64 lastCycle_ = 0; ///< Monotonic tick guard for the datapath.

    // Bounded inbox as a flat ring (fixed queueCap-sized vector):
    // byte-identical FIFO semantics to the former std::deque with no
    // block allocation on the serving hot path.
    std::vector<Request> inbox_;
    u32 inboxHead_ = 0;
    u32 inboxCount_ = 0;
    std::vector<Response> outbox_;

    // KV store, one of two layouts (ServerConfig::keySpace): the
    // ordered map accepts any u64 key; the dense arrays trade that for
    // O(1) allocation-free lookups. kvCount_/ascending iteration are
    // identical under both, so fingerprints don't see the layout.
    std::map<u64, std::pair<u64, u64>> kv_; ///< key -> (version, value).
    std::vector<std::pair<u64, u64>> kvFlat_; ///< version 0 = absent.
    u64 kvCount_ = 0;
    ServerStats stats_;
    u32 warmCrc_ = 0; ///< Running warm-stream record CRC (handshake).
};

} // namespace fleet
} // namespace citadel

#endif // CITADEL_FLEET_STACK_SERVER_H
