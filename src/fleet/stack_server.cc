#include "fleet/stack_server.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"
#include "ecc/crc32.h"
#include "faults/injector.h"
#include "fleet/wire.h"
#include "sim/system_sim.h"
#include "sim/workload.h"

namespace citadel {
namespace fleet {

namespace {

/** Seed-mix salt for per-server streams; distinct from the soak and
 *  Monte Carlo mixes so a fleet server never replays either. */
constexpr u64 kServerSeedMix = 0xC2B2AE3D27D4EB4Full;

} // namespace

void
ServerConfig::validate() const
{
    if (queueCap == 0)
        fatal("ServerConfig: queueCap must be >= 1");
    if (cyclesPerTick == 0)
        fatal("ServerConfig: cyclesPerTick must be >= 1");
    if (defaultServiceUnits == 0)
        fatal("ServerConfig: defaultServiceUnits must be >= 1");
    if (!(agingHours > 0.0))
        fatal("ServerConfig: agingHours must be positive");
}

StackServer::StackServer(ServerIdx index, const ServerConfig &cfg,
                         u64 seed, u64 campaign_ticks)
    : index_(index), cfg_(cfg), serviceUnits_(cfg.defaultServiceUnits)
{
    cfg_.validate();
    inbox_.resize(cfg_.queueCap);
    if (cfg_.keySpace > 0)
        kvFlat_.assign(cfg_.keySpace, {0, 0});
    LiveRasOptions opts = cfg_.ras;
    opts.seed = seed ^ (kServerSeedMix * (index + 1));
    dp_ = std::make_unique<LiveRasDatapath>(cfg_.sim, opts);
    calibrate(opts.seed);
    scheduleAging(opts.seed, campaign_ticks);
    lastCycle_ = baseCycle_;
}

StackServer::~StackServer() = default;

void
StackServer::calibrate(u64 seed)
{
    if (cfg_.calibrationInsns == 0)
        return;
    // A short timing-simulator slice with this server's datapath
    // attached: real demand traffic against the real device shard.
    SimConfig sim = cfg_.sim;
    sim.insnsPerCore = cfg_.calibrationInsns;
    sim.seed = mix64(seed ^ 0xCA11B8A7Eull);
    SystemSim slice(sim, findBenchmark(cfg_.calibrationBench));
    slice.attachRas(dp_.get());
    const SimResult r = slice.run();
    baseCycle_ = r.cycles;
    const u64 reads = std::max<u64>(1, dp_->counters().demandReads);
    calibCyclesPerRead_ =
        static_cast<double>(r.cycles) / static_cast<double>(reads);
    const double rate = static_cast<double>(cfg_.cyclesPerTick) /
                        std::max(1.0, calibCyclesPerRead_);
    serviceUnits_ = static_cast<u32>(
        std::clamp(rate, 1.0, 65536.0));
}

void
StackServer::scheduleAging(u64 seed, u64 campaign_ticks)
{
    SystemConfig fcfg = cfg_.faults;
    fcfg.geom = cfg_.sim.geom;
    fcfg.lifetimeHours = cfg_.agingHours;
    fcfg.subArrayRows =
        std::min<u32>(fcfg.subArrayRows, cfg_.sim.geom.rowsPerBank);
    fcfg.validate();
    const FaultInjector injector(fcfg);

    // Counter-derived per-server stream: server i always ages the same
    // way regardless of fleet size or thread count.
    Rng rng(seed ^ 0xA6E5ull);
    const double hours = cfg_.agingHours;
    const u64 span = campaign_ticks * cfg_.cyclesPerTick;
    const auto cycle_at = [&](double t_hours) {
        return baseCycle_ +
               static_cast<u64>(t_hours / hours *
                                static_cast<double>(span));
    };
    for (const Fault &f : injector.sampleLifetime(rng))
        dp_->scheduleFault(f, cycle_at(f.timeHours));
    for (const MetaFault &f :
         injector.sampleMetaLifetime(rng, dp_->metaGeometry()))
        dp_->scheduleMetaFault(f, cycle_at(f.timeHours));
}

LineAddr
StackServer::lineFor(u64 key) const
{
    return LineAddr{mix64(key * 0x2545F4914F6CDD1Dull ^ index_) %
                    cfg_.sim.geom.totalLines()};
}

u64
StackServer::cycleOf(u64 tick) const
{
    return baseCycle_ + (tick + 1) * cfg_.cyclesPerTick;
}

bool
StackServer::enqueue(const Request &r)
{
    if (!serving())
        return false;
    if (inboxCount_ >= cfg_.queueCap) {
        ++stats_.rejected;
        return false;
    }
    inbox_[(inboxHead_ + inboxCount_) % cfg_.queueCap] = r;
    ++inboxCount_;
    return true;
}

void
StackServer::setState(ServerState to)
{
    if (to == state_)
        return;
    if (!serverTransitionAllowed(state_, to))
        fatal("StackServer %u: illegal state transition %s -> %s",
              index_, serverStateName(state_), serverStateName(to));
    state_ = to;
}

void
StackServer::crash()
{
    setState(ServerState::Crashed);
    inboxHead_ = 0;
    inboxCount_ = 0;
    outbox_.clear();
}

void
StackServer::stall(u64 until_tick)
{
    if (!serving())
        return;
    setState(ServerState::Stalled);
    stalledUntil_ = until_tick;
}

void
StackServer::slowdown(u64 until_tick, u32 divisor)
{
    if (state_ != ServerState::Up)
        return;
    setState(ServerState::Slowed);
    slowedUntil_ = until_tick;
    slowDivisor_ = std::max(1u, divisor);
}

void
StackServer::fence()
{
    if (state_ == ServerState::Crashed)
        return;
    setState(ServerState::Fenced);
    inboxHead_ = 0;
    inboxCount_ = 0;
    stalledUntil_ = 0;
    slowedUntil_ = 0;
    slowDivisor_ = 1;
}

void
StackServer::restart()
{
    setState(ServerState::Fenced);
    // The process is back but its DRAM contents are not: every replica
    // this server held is gone, which is exactly why admission
    // requires a warm fill. Cumulative service stats survive (they are
    // campaign accounting, not server memory).
    kv_.clear();
    if (!kvFlat_.empty())
        kvFlat_.assign(kvFlat_.size(), {0, 0});
    kvCount_ = 0;
    inboxHead_ = 0;
    inboxCount_ = 0;
    outbox_.clear();
    stalledUntil_ = 0;
    slowedUntil_ = 0;
    slowDivisor_ = 1;
}

void
StackServer::beginWarming()
{
    setState(ServerState::Warming);
    warmCrc_ = Crc32::begin();
}

u32
StackServer::warmFrame(std::span<const u8> frame)
{
    if (state_ != ServerState::Warming)
        fatal("StackServer %u: warmFrame outside Warming (%s)", index_,
              serverStateName(state_));
    FrameView view;
    const DecodeStatus st = decodeFrame(frame, view);
    if (st != DecodeStatus::Ok)
        fatal("StackServer %u: warm frame rejected: %s", index_,
              decodeStatusName(st));
    if (view.kind() != FrameKind::RequestBatch)
        fatal("StackServer %u: warm frame is not a request batch",
              index_);
    for (u32 i = 0; i < view.count(); ++i) {
        const Request r = view.requestAt(i);
        if (r.kind != OpKind::Write)
            fatal("StackServer %u: non-write record in warm frame",
                  index_);
        storeLocal(r.key, r.version, r.value);
        warmCrc_ = Crc32::update(warmCrc_, r.key);
        warmCrc_ = Crc32::update(warmCrc_, r.version);
        warmCrc_ = Crc32::update(warmCrc_, r.value);
    }
    return view.count();
}

void
StackServer::admit(u32 expectedCrc)
{
    if (state_ != ServerState::Warming)
        fatal("StackServer %u: admit outside Warming (%s)", index_,
              serverStateName(state_));
    if (warmCrc_ != expectedCrc)
        fatal("StackServer %u: warm handshake CRC mismatch "
              "(server %08x, coordinator %08x)",
              index_, warmCrc_, expectedCrc);
    setState(ServerState::Up);
}

void
StackServer::abortWarming()
{
    setState(ServerState::Fenced);
}

void
StackServer::applyReplica(u64 key, u64 version, u64 value)
{
    storeLocal(key, version, value);
}

void
StackServer::storeLocal(u64 key, u64 version, u64 value)
{
    if (version == 0)
        return; // Version 0 encodes "absent": nothing to merge.
    if (!kvFlat_.empty()) {
        if (key >= kvFlat_.size())
            fatal("StackServer: key %llu outside the declared key "
                  "space (%zu)",
                  static_cast<unsigned long long>(key),
                  kvFlat_.size());
        auto &entry = kvFlat_[key];
        if (entry.first == 0)
            ++kvCount_;
        if (version > entry.first)
            entry = {version, value};
        return;
    }
    auto [it, inserted] = kv_.try_emplace(key, 0, 0);
    if (inserted)
        ++kvCount_;
    if (version > it->second.first)
        it->second = {version, value};
}

bool
StackServer::respondsToProbe(u64 tick) const
{
    if (!serving())
        return false;
    return state_ != ServerState::Stalled || tick >= stalledUntil_;
}

std::pair<u64, u64>
StackServer::lookup(u64 key) const
{
    return lookupLocal(key);
}

std::pair<u64, u64>
StackServer::lookupLocal(u64 key) const
{
    if (!kvFlat_.empty())
        return key < kvFlat_.size() ? kvFlat_[key]
                                    : std::pair<u64, u64>{0, 0};
    auto it = kv_.find(key);
    return it == kv_.end() ? std::pair<u64, u64>{0, 0} : it->second;
}

bool
StackServer::kvScan(bool have, u64 from, u64 &key, u64 &version,
                    u64 &value) const
{
    if (!kvFlat_.empty()) {
        u64 k = have ? from + 1 : 0;
        for (; k < kvFlat_.size(); ++k) {
            if (kvFlat_[k].first != 0) {
                key = k;
                version = kvFlat_[k].first;
                value = kvFlat_[k].second;
                return true;
            }
        }
        return false;
    }
    auto it = have ? kv_.upper_bound(from) : kv_.begin();
    if (it == kv_.end())
        return false;
    key = it->first;
    version = it->second.first;
    value = it->second.second;
    return true;
}

RasHealthSignals
StackServer::health() const
{
    return dp_->healthSignals();
}

Response
StackServer::serve(const Request &r, u64 cycle)
{
    Response resp;
    resp.op = r.op;
    resp.attempt = r.attempt;
    resp.replica = r.replica;
    resp.from = index_;

    const DemandOutcome outcome = dp_->onDemandRead(lineFor(r.key), cycle);
    stats_.unitsSpent += 1 + outcome.extraReads.size();
    if (outcome.kind == DemandOutcome::Kind::Corrected)
        ++stats_.corrected;

    if (outcome.kind == DemandOutcome::Kind::Uncorrectable) {
        // The device lost the key's line: this replica cannot durably
        // serve or store it. Never acknowledge onto a poisoned line.
        ++stats_.dueReads;
        resp.status = Status::DueData;
        return resp;
    }

    if (r.kind == OpKind::Write) {
        storeLocal(r.key, r.version, r.value);
        resp.status = Status::Ok;
        resp.version = r.version;
        resp.value = r.value;
        return resp;
    }
    const auto [version, value] = lookupLocal(r.key);
    if (version == 0) {
        resp.status = Status::NotFound;
        return resp;
    }
    resp.status = Status::Ok;
    resp.version = version;
    resp.value = value;
    return resp;
}

void
StackServer::step(u64 tick)
{
    outbox_.clear();
    if (!serving())
        return;
    if (state_ == ServerState::Stalled) {
        if (tick < stalledUntil_)
            return; // Frozen: no datapath time, no service.
        // A stall can land on a Slowed server (stall() accepts any
        // serving state). When it lifts, restore the slowdown if its
        // window is still open; otherwise clear the divisor too —
        // going straight to Up would leave slowDivisor_ > 1 with no
        // Slowed-expiry path left to reset it, permanently shrinking
        // this server's service budget.
        if (tick < slowedUntil_ && slowDivisor_ > 1) {
            setState(ServerState::Slowed);
        } else {
            setState(ServerState::Up);
            slowDivisor_ = 1;
        }
    }
    if (state_ == ServerState::Slowed && tick >= slowedUntil_) {
        setState(ServerState::Up);
        slowDivisor_ = 1;
    }

    const u64 cycle = std::max(cycleOf(tick), lastCycle_);
    lastCycle_ = cycle;
    dp_->tick(cycle);

    u64 budget = std::max<u32>(1, serviceUnits_ / slowDivisor_);
    while (budget > 0 && inboxCount_ > 0) {
        const Request r = inbox_[inboxHead_];
        inboxHead_ = (inboxHead_ + 1) % cfg_.queueCap;
        --inboxCount_;
        const u64 before = stats_.unitsSpent;
        outbox_.push_back(serve(r, cycle));
        ++stats_.served;
        const u64 cost = stats_.unitsSpent - before;
        budget -= std::min(budget, cost);
    }
}

void
StackServer::serialize(ByteSink &sink) const
{
    sink.putU8(static_cast<u8>(state_));
    sink.putU64(stats_.served);
    sink.putU64(stats_.unitsSpent);
    sink.putU64(stats_.rejected);
    sink.putU64(stats_.dueReads);
    sink.putU64(stats_.corrected);
    sink.putU64(kvCount_);
    if (!kvFlat_.empty()) {
        for (u64 key = 0; key < kvFlat_.size(); ++key) {
            if (kvFlat_[key].first == 0)
                continue;
            sink.putU64(key);
            sink.putU64(kvFlat_[key].first);
            sink.putU64(kvFlat_[key].second);
        }
    } else {
        for (const auto &[key, vv] : kv_) {
            sink.putU64(key);
            sink.putU64(vv.first);
            sink.putU64(vv.second);
        }
    }
    // Crashed devices are unreachable; their state is not part of the
    // surviving-service fingerprint.
    sink.putU64(state_ == ServerState::Crashed ? 0
                                               : dp_->stateFingerprint());
}

void
StackServer::saveState(ByteSink &sink) const
{
    sink.putU8(static_cast<u8>(state_));
    sink.putU64(stalledUntil_);
    sink.putU64(slowedUntil_);
    sink.putU32(slowDivisor_);
    sink.putU64(lastCycle_);
    sink.putU32(warmCrc_);
    sink.putU64(stats_.served);
    sink.putU64(stats_.unitsSpent);
    sink.putU64(stats_.rejected);
    sink.putU64(stats_.dueReads);
    sink.putU64(stats_.corrected);
    // Inbox in FIFO order (head/count collapse to a plain sequence).
    sink.putU32(inboxCount_);
    for (u32 i = 0; i < inboxCount_; ++i)
        putRequest(sink, inbox_[(inboxHead_ + i) % cfg_.queueCap]);
    sink.putU64(static_cast<u64>(outbox_.size()));
    for (const Response &r : outbox_)
        putResponse(sink, r);
    sink.putU64(kvCount_);
    u64 key = 0, version = 0, value = 0;
    bool have = false;
    u64 emitted = 0;
    while (kvScan(have, key, key, version, value)) {
        have = true;
        sink.putU64(key);
        sink.putU64(version);
        sink.putU64(value);
        ++emitted;
    }
    if (emitted != kvCount_)
        fatal("StackServer::saveState: kvCount_ %llu != scanned %llu",
              static_cast<unsigned long long>(kvCount_),
              static_cast<unsigned long long>(emitted));
    dp_->saveState(sink);
}

void
StackServer::loadState(ByteSource &src)
{
    const ServerState st = static_cast<ServerState>(src.getU8());
    stalledUntil_ = src.getU64();
    slowedUntil_ = src.getU64();
    slowDivisor_ = src.getU32();
    lastCycle_ = src.getU64();
    warmCrc_ = src.getU32();
    stats_.served = src.getU64();
    stats_.unitsSpent = src.getU64();
    stats_.rejected = src.getU64();
    stats_.dueReads = src.getU64();
    stats_.corrected = src.getU64();
    inboxHead_ = 0;
    inboxCount_ = src.getU32();
    if (inboxCount_ > cfg_.queueCap)
        fatal("StackServer::loadState: inbox count %u > queueCap %u",
              inboxCount_, cfg_.queueCap);
    for (u32 i = 0; i < inboxCount_; ++i)
        inbox_[i] = getRequest(src);
    outbox_.clear();
    const u64 outCount = src.getCount(kResponseRecordBytes);
    outbox_.reserve(outCount);
    for (u64 i = 0; i < outCount; ++i)
        outbox_.push_back(getResponse(src));
    kv_.clear();
    if (!kvFlat_.empty())
        kvFlat_.assign(kvFlat_.size(), {0, 0});
    kvCount_ = 0;
    const u64 kvN = src.getCount(3 * sizeof(u64));
    for (u64 i = 0; i < kvN; ++i) {
        const u64 key = src.getU64();
        const u64 version = src.getU64();
        const u64 value = src.getU64();
        storeLocal(key, version, value);
    }
    if (kvCount_ != kvN)
        fatal("StackServer::loadState: duplicate or absent KV entries");
    dp_->loadState(src);
    // Bypass the transition table: a checkpoint restores a state, it
    // does not take an edge.
    state_ = st;
}

} // namespace fleet
} // namespace citadel
