/**
 * @file
 * Trace-replay traffic model for the fleet load driver: a compact
 * grammar describing phases of zipfian key popularity, read/write mix
 * and periodic arrival bursts, replayed counter-seeded so the offered
 * load is bit-identical for any thread count.
 *
 * Grammar (CITADEL_FLEET_TRACE): semicolon-separated phases, each a
 * comma-separated list of key=value pairs —
 *
 *     ticks=<n>   phase length in virtual ticks        (required, >=1)
 *     rate=<n>    base arrivals per tick               [0, 4096] (4)
 *     write=<f>   write fraction                       [0, 1]    (0.5)
 *     zipf=<t>    zipfian theta over the key space     [0, 4]    (0)
 *     burst=<m>   arrival multiplier inside a burst    [1, 64]   (1)
 *     every=<n>   burst period in ticks                (0 = none)
 *     len=<n>     burst length, must be <= every
 *
 * Example — a hot-skewed steady phase then a read-mostly phase with
 * 8x bursts every 256 ticks:
 *
 *     ticks=4096,rate=32,write=0.5,zipf=0.9;
 *     ticks=1024,rate=8,write=0.2,burst=8,every=256,len=32
 *
 * Keys are zipf ranks: rank r IS key r, so rank 0 is the hottest key
 * of the campaign key space in every phase (phases change how skewed
 * the popularity is, not which keys exist). Sampling consumes unit
 * doubles derived from mix64 counter hashes — the model holds no
 * generator state, so replay order cannot perturb it.
 */

#ifndef CITADEL_FLEET_TRAFFIC_H
#define CITADEL_FLEET_TRAFFIC_H

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace citadel {
namespace fleet {

/** One phase of the replayed trace. */
struct TrafficPhase
{
    u64 ticks = 0;             ///< Phase length (virtual ticks).
    u32 rate = 4;              ///< Base arrivals per tick.
    double writeFraction = 0.5;
    double zipfTheta = 0.0;    ///< 0 = uniform key popularity.
    u32 burstMult = 1;         ///< Arrival multiplier during bursts.
    u64 burstEvery = 0;        ///< Burst period (0 = no bursts).
    u64 burstLen = 0;          ///< Burst length (<= burstEvery).
};

/**
 * A parsed trace: phase schedule plus per-phase zipf CDFs over the
 * campaign key space. parse() then prepare() then pure lookups; an
 * unprepared or phase-less model must not be queried.
 */
class TrafficModel
{
  public:
    /**
     * Parse a trace spec. Returns false (with *error set) on any
     * malformed or out-of-range input; `out` is only modified on
     * success. An empty spec is an error — callers treat the empty
     * string as "no trace" without constructing a model.
     */
    static bool parse(std::string_view spec, TrafficModel &out,
                      std::string *error);

    /** Build the per-phase zipf CDFs for a key space of `n` keys. */
    void prepare(u64 keySpace);

    bool active() const { return !phases_.empty(); }
    u64 totalTicks() const { return totalTicks_; }
    const std::vector<TrafficPhase> &phases() const { return phases_; }

    /** Phase index covering `tick` (< totalTicks()). */
    std::size_t phaseAt(u64 tick) const;

    /** Arrivals offered at `tick`: phase rate, burst-multiplied when
     *  the tick falls inside a burst window. */
    u32 arrivalsAt(u64 tick) const;

    /** Write fraction in force at `tick`. */
    double writeFractionAt(u64 tick) const;

    /** Key for unit sample u in [0,1) under `tick`'s phase skew. */
    u64 keyAt(u64 tick, double u) const;

  private:
    std::vector<TrafficPhase> phases_;
    std::vector<u64> phaseStart_; ///< Cumulative start tick per phase.
    std::vector<ZipfCdf> zipf_;   ///< One CDF per phase (prepare()).
    u64 totalTicks_ = 0;
    u64 keySpace_ = 0;
};

} // namespace fleet
} // namespace citadel

#endif // CITADEL_FLEET_TRAFFIC_H
