/**
 * @file
 * Client-side retry discipline: deadline-based timeouts, capped
 * exponential backoff with deterministic jitter, and hedged reads.
 *
 * Every delay is a pure function of (policy, operation id, attempt
 * ordinal) — the jitter is a counter hash, not an RNG draw — so two
 * campaigns with the same seed back off identically no matter how
 * operations interleave across worker threads. That is the property
 * tests/test_fleet_retry.cc pins down under a fake clock, and what
 * extends the repo's determinism contract to the fleet layer.
 */

#ifndef CITADEL_FLEET_RETRY_H
#define CITADEL_FLEET_RETRY_H

#include "fleet/fleet_types.h"

namespace citadel {
namespace fleet {

/** Tunables of the retry/hedging state machine. */
struct RetryPolicy
{
    /** Ticks an attempt may stay unanswered before it is presumed
     *  lost and retried (per-attempt timeout). */
    u64 attemptTimeout = 48;

    /** Absolute budget per operation, in ticks from issue; when it
     *  expires the operation fails (deadline-based timeout). */
    u64 opDeadline = 1600;

    /** First backoff window, in ticks. */
    u64 backoffBase = 4;

    /** Backoff growth cap, in ticks. */
    u64 backoffCap = 256;

    /** Attempts per operation before giving up early. */
    u32 maxAttempts = 8;

    /** Ticks an un-answered *read* waits before a hedge is sent to
     *  the next replica (0 disables hedging). Writes never hedge --
     *  their replication fan-out already covers every replica. */
    u64 hedgeAfter = 16;

    /** Jitter salt; campaigns fold their master seed in. */
    u64 seed = 0;

    /**
     * Backoff before re-sending attempt `attempt` (1-based: the delay
     * after the first failure is backoff(op, 1)). Exponential growth
     * capped at backoffCap, then jittered into [w/2, w) by hashing
     * (seed, op, attempt): deterministic, yet decorrelated across
     * operations so synchronized failures do not retry in lockstep.
     */
    u64 backoff(u64 op, u32 attempt) const;

    void validate() const;
};

} // namespace fleet
} // namespace citadel

#endif // CITADEL_FLEET_RETRY_H
