#include "fleet/traffic.h"

#include <charconv>
#include <cstdlib>

#include "common/log.h"

namespace citadel {
namespace fleet {

namespace {

bool parseU64(std::string_view text, u64 &out)
{
    if (text.empty())
        return false;
    const char *first = text.data();
    const char *last = first + text.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

bool parseDouble(std::string_view text, double &out)
{
    if (text.empty())
        return false;
    // std::from_chars<double> is still spotty across libstdc++
    // versions; strtod with a NUL-terminated copy is portable and this
    // runs once at startup.
    const std::string copy(text);
    char *end = nullptr;
    out = std::strtod(copy.c_str(), &end);
    return end == copy.c_str() + copy.size();
}

bool fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

} // namespace

bool
TrafficModel::parse(std::string_view spec, TrafficModel &out,
                    std::string *error)
{
    if (spec.empty())
        return fail(error, "empty trace spec");

    std::vector<TrafficPhase> phases;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t semi = spec.find(';', pos);
        const std::string_view phaseText = spec.substr(
            pos, semi == std::string_view::npos ? std::string_view::npos
                                                : semi - pos);
        pos = semi == std::string_view::npos ? spec.size() + 1
                                             : semi + 1;
        if (phaseText.empty())
            return fail(error, "empty phase in trace spec");

        TrafficPhase phase;
        bool sawTicks = false;
        std::size_t p = 0;
        while (p <= phaseText.size()) {
            const std::size_t comma = phaseText.find(',', p);
            const std::string_view kv = phaseText.substr(
                p, comma == std::string_view::npos
                       ? std::string_view::npos
                       : comma - p);
            p = comma == std::string_view::npos ? phaseText.size() + 1
                                                : comma + 1;
            const std::size_t eq = kv.find('=');
            if (eq == std::string_view::npos)
                return fail(error, "expected key=value, got '" +
                                       std::string(kv) + "'");
            const std::string_view key = kv.substr(0, eq);
            const std::string_view val = kv.substr(eq + 1);
            u64 n = 0;
            double d = 0.0;
            if (key == "ticks") {
                if (!parseU64(val, n) || n < 1 || n > 100000000)
                    return fail(error,
                                "ticks must be an integer in "
                                "[1, 1e8], got '" +
                                    std::string(val) + "'");
                phase.ticks = n;
                sawTicks = true;
            } else if (key == "rate") {
                if (!parseU64(val, n) || n > 4096)
                    return fail(error,
                                "rate must be an integer in "
                                "[0, 4096], got '" +
                                    std::string(val) + "'");
                phase.rate = static_cast<u32>(n);
            } else if (key == "write") {
                if (!parseDouble(val, d) || !(d >= 0.0 && d <= 1.0))
                    return fail(error,
                                "write must be in [0, 1], got '" +
                                    std::string(val) + "'");
                phase.writeFraction = d;
            } else if (key == "zipf") {
                if (!parseDouble(val, d) || !(d >= 0.0 && d <= 4.0))
                    return fail(error,
                                "zipf must be in [0, 4], got '" +
                                    std::string(val) + "'");
                phase.zipfTheta = d;
            } else if (key == "burst") {
                if (!parseU64(val, n) || n < 1 || n > 64)
                    return fail(error,
                                "burst must be an integer in "
                                "[1, 64], got '" +
                                    std::string(val) + "'");
                phase.burstMult = static_cast<u32>(n);
            } else if (key == "every") {
                if (!parseU64(val, n))
                    return fail(error, "every must be an integer, "
                                       "got '" +
                                           std::string(val) + "'");
                phase.burstEvery = n;
            } else if (key == "len") {
                if (!parseU64(val, n))
                    return fail(error, "len must be an integer, got '" +
                                           std::string(val) + "'");
                phase.burstLen = n;
            } else {
                return fail(error, "unknown trace key '" +
                                       std::string(key) + "'");
            }
        }
        if (!sawTicks)
            return fail(error, "phase missing required ticks=");
        if (phase.burstMult > 1 &&
            (phase.burstEvery == 0 || phase.burstLen == 0))
            return fail(error,
                        "burst > 1 requires every= and len= > 0");
        if (phase.burstEvery > 0 &&
            (phase.burstLen == 0 || phase.burstLen > phase.burstEvery))
            return fail(error, "len must be in [1, every]");
        phases.push_back(phase);
    }

    out.phases_ = std::move(phases);
    out.phaseStart_.clear();
    out.zipf_.clear();
    out.totalTicks_ = 0;
    out.keySpace_ = 0;
    for (const TrafficPhase &phase : out.phases_) {
        out.phaseStart_.push_back(out.totalTicks_);
        out.totalTicks_ += phase.ticks;
    }
    return true;
}

void
TrafficModel::prepare(u64 keySpace)
{
    if (phases_.empty())
        panic("TrafficModel::prepare on an empty model");
    if (keySpace == 0)
        fatal("TrafficModel: key space must be positive");
    keySpace_ = keySpace;
    zipf_.clear();
    zipf_.reserve(phases_.size());
    for (const TrafficPhase &phase : phases_)
        zipf_.emplace_back(keySpace, phase.zipfTheta);
}

std::size_t
TrafficModel::phaseAt(u64 tick) const
{
    if (tick >= totalTicks_)
        panic("TrafficModel::phaseAt(%llu) past end (%llu)",
              static_cast<unsigned long long>(tick),
              static_cast<unsigned long long>(totalTicks_));
    // Phase count is tiny (a handful); a linear scan is cache-friendly
    // and branch-predictable for the monotone tick sequence.
    std::size_t i = phases_.size() - 1;
    while (i > 0 && phaseStart_[i] > tick)
        --i;
    return i;
}

u32
TrafficModel::arrivalsAt(u64 tick) const
{
    const std::size_t i = phaseAt(tick);
    const TrafficPhase &phase = phases_[i];
    u32 rate = phase.rate;
    if (phase.burstEvery > 0) {
        const u64 rel = tick - phaseStart_[i];
        if (rel % phase.burstEvery < phase.burstLen)
            rate *= phase.burstMult;
    }
    return rate;
}

double
TrafficModel::writeFractionAt(u64 tick) const
{
    return phases_[phaseAt(tick)].writeFraction;
}

u64
TrafficModel::keyAt(u64 tick, double u) const
{
    if (zipf_.empty())
        panic("TrafficModel::keyAt before prepare()");
    return zipf_[phaseAt(tick)].rank(u);
}

} // namespace fleet
} // namespace citadel
