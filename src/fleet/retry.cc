#include "fleet/retry.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"

namespace citadel {
namespace fleet {

u64
RetryPolicy::backoff(u64 op, u32 attempt) const
{
    // Window: base << (attempt-1), saturating at the cap. The shift
    // is clamped so a pathological attempt count cannot overflow.
    const u32 shift = std::min(attempt > 0 ? attempt - 1 : 0u, 32u);
    u64 window = backoffBase << shift;
    if (window > backoffCap || window < backoffBase) // shift overflow
        window = backoffCap;
    if (window < 2)
        return window;
    const u64 jitter =
        mix64(seed ^ (op * 0x9E3779B97F4A7C15ull) ^ attempt) %
        (window / 2);
    return window / 2 + jitter;
}

void
RetryPolicy::validate() const
{
    if (backoffBase == 0)
        fatal("RetryPolicy: backoffBase must be >= 1");
    if (backoffCap < backoffBase)
        fatal("RetryPolicy: backoffCap must be >= backoffBase");
    if (maxAttempts == 0)
        fatal("RetryPolicy: maxAttempts must be >= 1");
    if (attemptTimeout == 0)
        fatal("RetryPolicy: attemptTimeout must be >= 1");
    if (opDeadline == 0)
        fatal("RetryPolicy: opDeadline must be >= 1");
}

} // namespace fleet
} // namespace citadel
