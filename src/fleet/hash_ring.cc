#include "fleet/hash_ring.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"

namespace citadel {
namespace fleet {

HashRing::HashRing(u32 servers, u32 vnodes, u64 seed)
    : inRing_(servers, true), live_(servers), seed_(seed)
{
    if (servers == 0 || vnodes == 0)
        fatal("HashRing: servers and vnodes must be >= 1");
    points_.reserve(static_cast<std::size_t>(servers) * vnodes);
    for (u32 s = 0; s < servers; ++s) {
        for (u32 v = 0; v < vnodes; ++v) {
            u64 h = mix64(seed ^ (static_cast<u64>(s) << 32) ^ v);
            points_.push_back({h, s});
        }
    }
    std::sort(points_.begin(), points_.end());
    // A hash collision would make the clockwise order depend on sort
    // stability details; salt duplicates until every point is unique.
    for (std::size_t i = 1; i < points_.size(); ++i) {
        u64 salt = 1;
        while (points_[i].hash == points_[i - 1].hash)
            points_[i].hash = mix64(points_[i].hash + salt++);
    }
    std::sort(points_.begin(), points_.end());
    // Freeze the post-salting points as each server's canonical set:
    // remove()/add() below move exactly these, so membership churn can
    // never re-salt and ownership round-trips exactly.
    canonical_.resize(servers);
    for (const Point &p : points_)
        canonical_[p.server].push_back(p.hash);
    for (auto &c : canonical_)
        std::sort(c.begin(), c.end());
}

void
HashRing::remove(ServerIdx s)
{
    if (s >= inRing_.size() || !inRing_[s])
        return;
    inRing_[s] = false;
    --live_;
    ++epoch_;
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [s](const Point &p) {
                                     return p.server == s;
                                 }),
                  points_.end());
}

void
HashRing::add(ServerIdx s)
{
    if (s >= inRing_.size() || inRing_[s])
        return;
    inRing_[s] = true;
    ++live_;
    ++epoch_;
    const std::size_t old = points_.size();
    for (u64 h : canonical_[s])
        points_.push_back({h, s});
    std::inplace_merge(points_.begin(),
                       points_.begin() + static_cast<std::ptrdiff_t>(old),
                       points_.end());
}

bool
HashRing::contains(ServerIdx s) const
{
    return s < inRing_.size() && inRing_[s];
}

void
HashRing::placement(u64 key, u32 replicas,
                    std::vector<ServerIdx> &out) const
{
    out.clear();
    if (points_.empty() || replicas == 0)
        return;
    const u64 h = mix64(key ^ seed_);
    auto it = std::lower_bound(points_.begin(), points_.end(),
                               Point{h, 0});
    for (std::size_t walked = 0;
         walked < points_.size() && out.size() < replicas; ++walked) {
        if (it == points_.end())
            it = points_.begin();
        const ServerIdx s = it->server;
        if (std::find(out.begin(), out.end(), s) == out.end())
            out.push_back(s);
        ++it;
    }
}

void
HashRing::placementPlus(ServerIdx candidate, u64 key, u32 replicas,
                        std::vector<ServerIdx> &out) const
{
    if (candidate >= inRing_.size() || inRing_[candidate]) {
        placement(key, replicas, out);
        return;
    }
    out.clear();
    const auto &cand = canonical_[candidate];
    const std::size_t np = points_.size();
    const std::size_t nc = cand.size();
    if ((np == 0 && nc == 0) || replicas == 0)
        return;
    const u64 h = mix64(key ^ seed_);
    // Merged circular walk over the live points and the candidate's
    // canonical points. Comparing by clockwise distance (hash - h in
    // wrapping u64 arithmetic) linearizes the circle, so each list is
    // consumed from its lower_bound with a wrapping index and the
    // merge is an ordinary two-pointer min-pick.
    const std::size_t i0 = static_cast<std::size_t>(
        std::lower_bound(points_.begin(), points_.end(), Point{h, 0}) -
        points_.begin());
    const std::size_t j0 = static_cast<std::size_t>(
        std::lower_bound(cand.begin(), cand.end(), h) - cand.begin());
    std::size_t a = 0, b = 0;
    while (a + b < np + nc && out.size() < replicas) {
        ServerIdx s;
        const u64 dp = a < np ? points_[(i0 + a) % np].hash - h
                              : ~u64{0};
        const u64 dc = b < nc ? cand[(j0 + b) % nc] - h : ~u64{0};
        // No tie possible: all point hashes are globally distinct and
        // the candidate is not live, so dp != dc while both remain.
        if (a < np && (b >= nc || dp < dc)) {
            s = points_[(i0 + a) % np].server;
            ++a;
        } else {
            s = candidate;
            ++b;
        }
        if (std::find(out.begin(), out.end(), s) == out.end())
            out.push_back(s);
    }
}

ServerIdx
HashRing::primary(u64 key) const
{
    std::vector<ServerIdx> one;
    placement(key, 1, one);
    return one.empty() ? kNoServer : one[0];
}

void
HashRing::serialize(ByteSink &sink) const
{
    sink.putU64(inRing_.size());
    for (bool b : inRing_)
        sink.putBool(b);
    sink.putU64(epoch_);
}

void
HashRing::saveState(ByteSink &sink) const
{
    serialize(sink);
}

void
HashRing::loadState(ByteSource &src)
{
    const u64 servers = src.getU64();
    if (servers != inRing_.size())
        fatal("HashRing::loadState: fleet size mismatch");
    live_ = 0;
    for (std::size_t s = 0; s < servers; ++s) {
        inRing_[s] = src.getBool();
        if (inRing_[s])
            ++live_;
    }
    epoch_ = src.getU64();
    // Rebuild live points from the canonical sets; membership plus
    // the construction-time salting fully determines them.
    points_.clear();
    for (std::size_t s = 0; s < servers; ++s) {
        if (!inRing_[s])
            continue;
        for (u64 h : canonical_[s])
            points_.push_back({h, static_cast<ServerIdx>(s)});
    }
    std::sort(points_.begin(), points_.end());
}

} // namespace fleet
} // namespace citadel
