#include "fleet/hash_ring.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"

namespace citadel {
namespace fleet {

HashRing::HashRing(u32 servers, u32 vnodes, u64 seed)
    : inRing_(servers, true), live_(servers), seed_(seed)
{
    if (servers == 0 || vnodes == 0)
        fatal("HashRing: servers and vnodes must be >= 1");
    points_.reserve(static_cast<std::size_t>(servers) * vnodes);
    for (u32 s = 0; s < servers; ++s) {
        for (u32 v = 0; v < vnodes; ++v) {
            u64 h = mix64(seed ^ (static_cast<u64>(s) << 32) ^ v);
            points_.push_back({h, s});
        }
    }
    std::sort(points_.begin(), points_.end());
    // A hash collision would make the clockwise order depend on sort
    // stability details; salt duplicates until every point is unique.
    for (std::size_t i = 1; i < points_.size(); ++i) {
        u64 salt = 1;
        while (points_[i].hash == points_[i - 1].hash)
            points_[i].hash = mix64(points_[i].hash + salt++);
    }
    std::sort(points_.begin(), points_.end());
}

void
HashRing::remove(ServerIdx s)
{
    if (s >= inRing_.size() || !inRing_[s])
        return;
    inRing_[s] = false;
    --live_;
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [s](const Point &p) {
                                     return p.server == s;
                                 }),
                  points_.end());
}

bool
HashRing::contains(ServerIdx s) const
{
    return s < inRing_.size() && inRing_[s];
}

void
HashRing::placement(u64 key, u32 replicas,
                    std::vector<ServerIdx> &out) const
{
    out.clear();
    if (points_.empty() || replicas == 0)
        return;
    const u64 h = mix64(key ^ seed_);
    auto it = std::lower_bound(points_.begin(), points_.end(),
                               Point{h, 0});
    for (std::size_t walked = 0;
         walked < points_.size() && out.size() < replicas; ++walked) {
        if (it == points_.end())
            it = points_.begin();
        const ServerIdx s = it->server;
        if (std::find(out.begin(), out.end(), s) == out.end())
            out.push_back(s);
        ++it;
    }
}

ServerIdx
HashRing::primary(u64 key) const
{
    std::vector<ServerIdx> one;
    placement(key, 1, one);
    return one.empty() ? kNoServer : one[0];
}

void
HashRing::serialize(ByteSink &sink) const
{
    sink.putU64(inRing_.size());
    for (bool b : inRing_)
        sink.putBool(b);
}

} // namespace fleet
} // namespace citadel
