#include "fleet/fleet_types.h"

#include <sstream>

namespace citadel {
namespace fleet {

const char *
statusName(Status s)
{
    switch (s) {
    case Status::Ok:
        return "Ok";
    case Status::NotFound:
        return "NotFound";
    case Status::DueData:
        return "DueData";
    case Status::Busy:
        return "Busy";
    }
    return "?";
}

const char *
serverStateName(ServerState s)
{
    switch (s) {
    case ServerState::Up:
        return "Up";
    case ServerState::Stalled:
        return "Stalled";
    case ServerState::Slowed:
        return "Slowed";
    case ServerState::Fenced:
        return "Fenced";
    case ServerState::Crashed:
        return "Crashed";
    }
    return "?";
}

void
FleetCounters::add(const FleetCounters &c)
{
    opsIssued += c.opsIssued;
    opsAcked += c.opsAcked;
    opsFailed += c.opsFailed;
    opsUnresolved += c.opsUnresolved;
    writesAcked += c.writesAcked;
    readsDue += c.readsDue;
    attempts += c.attempts;
    retries += c.retries;
    backoffTicks += c.backoffTicks;
    attemptTimeouts += c.attemptTimeouts;
    hedges += c.hedges;
    hedgeWins += c.hedgeWins;
    duplicatesSuppressed += c.duplicatesSuppressed;
    busyRejections += c.busyRejections;
    dueFailovers += c.dueFailovers;
    requestsDropped += c.requestsDropped;
    requestsDuplicated += c.requestsDuplicated;
    serverCrashes += c.serverCrashes;
    serverStalls += c.serverStalls;
    serverSlowdowns += c.serverSlowdowns;
    healthProbes += c.healthProbes;
    probesMissed += c.probesMissed;
    failovers += c.failovers;
    capacityMigrations += c.capacityMigrations;
    repairPushes += c.repairPushes;
    requestsServed += c.requestsServed;
    serviceUnitsSpent += c.serviceUnitsSpent;
    queueRejections += c.queueRejections;
    deviceDueReads += c.deviceDueReads;
    deviceCorrected += c.deviceCorrected;
}

void
FleetCounters::serialize(ByteSink &sink) const
{
    // Field order is part of the fingerprint contract: append-only.
    sink.putU64(opsIssued);
    sink.putU64(opsAcked);
    sink.putU64(opsFailed);
    sink.putU64(opsUnresolved);
    sink.putU64(writesAcked);
    sink.putU64(readsDue);
    sink.putU64(attempts);
    sink.putU64(retries);
    sink.putU64(backoffTicks);
    sink.putU64(attemptTimeouts);
    sink.putU64(hedges);
    sink.putU64(hedgeWins);
    sink.putU64(duplicatesSuppressed);
    sink.putU64(busyRejections);
    sink.putU64(dueFailovers);
    sink.putU64(requestsDropped);
    sink.putU64(requestsDuplicated);
    sink.putU64(serverCrashes);
    sink.putU64(serverStalls);
    sink.putU64(serverSlowdowns);
    sink.putU64(healthProbes);
    sink.putU64(probesMissed);
    sink.putU64(failovers);
    sink.putU64(capacityMigrations);
    sink.putU64(repairPushes);
    sink.putU64(requestsServed);
    sink.putU64(serviceUnitsSpent);
    sink.putU64(queueRejections);
    sink.putU64(deviceDueReads);
    sink.putU64(deviceCorrected);
}

std::string
FleetCounters::summary() const
{
    std::ostringstream os;
    os << "ops " << opsAcked << "/" << opsIssued << " acked (" << opsFailed
       << " failed, " << opsUnresolved << " unresolved) | retries "
       << retries << " hedges " << hedges << " (won " << hedgeWins
       << ") | chaos: " << serverCrashes << " crashes, " << serverStalls
       << " stalls, " << requestsDropped << " dropped, "
       << requestsDuplicated << " dup | failovers " << failovers
       << " repairs " << repairPushes << " | device: "
       << deviceCorrected << " CE, " << deviceDueReads << " DUE reads";
    return os.str();
}

} // namespace fleet
} // namespace citadel
