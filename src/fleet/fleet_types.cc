#include "fleet/fleet_types.h"

#include <cstring>
#include <sstream>

namespace citadel {
namespace fleet {

const char *
statusName(Status s)
{
    switch (s) {
    case Status::Ok:
        return "Ok";
    case Status::NotFound:
        return "NotFound";
    case Status::DueData:
        return "DueData";
    case Status::Busy:
        return "Busy";
    }
    return "?";
}

const char *
serverStateName(ServerState s)
{
    switch (s) {
    case ServerState::Up:
        return "Up";
    case ServerState::Stalled:
        return "Stalled";
    case ServerState::Slowed:
        return "Slowed";
    case ServerState::Fenced:
        return "Fenced";
    case ServerState::Crashed:
        return "Crashed";
    case ServerState::Warming:
        return "Warming";
    }
    return "?";
}

bool
serverTransitionAllowed(ServerState from, ServerState to)
{
    if (from == to)
        return false;
    switch (from) {
    case ServerState::Up:
    case ServerState::Stalled:
    case ServerState::Slowed:
        // Within Serving freely, or out to Fenced/Crashed. Never
        // directly into Warming: only Fenced servers warm.
        return to != ServerState::Warming;
    case ServerState::Fenced:
        return to == ServerState::Warming || to == ServerState::Crashed;
    case ServerState::Crashed:
        return to == ServerState::Fenced; // process restart
    case ServerState::Warming:
        // Admission (the only re-entry into Serving), abort, or crash.
        return to == ServerState::Up || to == ServerState::Fenced ||
               to == ServerState::Crashed;
    }
    return false;
}

void
FleetCounters::add(const FleetCounters &c)
{
    opsIssued += c.opsIssued;
    opsAcked += c.opsAcked;
    opsFailed += c.opsFailed;
    opsUnresolved += c.opsUnresolved;
    writesAcked += c.writesAcked;
    readsDue += c.readsDue;
    attempts += c.attempts;
    retries += c.retries;
    backoffTicks += c.backoffTicks;
    attemptTimeouts += c.attemptTimeouts;
    hedges += c.hedges;
    hedgeWins += c.hedgeWins;
    duplicatesSuppressed += c.duplicatesSuppressed;
    busyRejections += c.busyRejections;
    dueFailovers += c.dueFailovers;
    requestsDropped += c.requestsDropped;
    requestsDuplicated += c.requestsDuplicated;
    serverCrashes += c.serverCrashes;
    serverStalls += c.serverStalls;
    serverSlowdowns += c.serverSlowdowns;
    healthProbes += c.healthProbes;
    probesMissed += c.probesMissed;
    failovers += c.failovers;
    capacityMigrations += c.capacityMigrations;
    repairPushes += c.repairPushes;
    serverJoins += c.serverJoins;
    warmFills += c.warmFills;
    warmRestarts += c.warmRestarts;
    warmAborts += c.warmAborts;
    loadMigrations += c.loadMigrations;
    resumes += c.resumes;
    requestsServed += c.requestsServed;
    serviceUnitsSpent += c.serviceUnitsSpent;
    queueRejections += c.queueRejections;
    deviceDueReads += c.deviceDueReads;
    deviceCorrected += c.deviceCorrected;
}

void
FleetCounters::serialize(ByteSink &sink) const
{
    // Field order is part of the fingerprint contract: append-only.
    sink.putU64(opsIssued);
    sink.putU64(opsAcked);
    sink.putU64(opsFailed);
    sink.putU64(opsUnresolved);
    sink.putU64(writesAcked);
    sink.putU64(readsDue);
    sink.putU64(attempts);
    sink.putU64(retries);
    sink.putU64(backoffTicks);
    sink.putU64(attemptTimeouts);
    sink.putU64(hedges);
    sink.putU64(hedgeWins);
    sink.putU64(duplicatesSuppressed);
    sink.putU64(busyRejections);
    sink.putU64(dueFailovers);
    sink.putU64(requestsDropped);
    sink.putU64(requestsDuplicated);
    sink.putU64(serverCrashes);
    sink.putU64(serverStalls);
    sink.putU64(serverSlowdowns);
    sink.putU64(healthProbes);
    sink.putU64(probesMissed);
    sink.putU64(failovers);
    sink.putU64(capacityMigrations);
    sink.putU64(repairPushes);
    sink.putU64(serverJoins);
    sink.putU64(warmFills);
    sink.putU64(warmRestarts);
    sink.putU64(warmAborts);
    sink.putU64(loadMigrations);
    sink.putU64(resumes);
    sink.putU64(requestsServed);
    sink.putU64(serviceUnitsSpent);
    sink.putU64(queueRejections);
    sink.putU64(deviceDueReads);
    sink.putU64(deviceCorrected);
}

void
FleetCounters::deserialize(ByteSource &src)
{
    // serialize() writes every field, in declaration order, as u64 —
    // the tripwire test pins that — so the struct can be rebuilt with
    // a flat copy that a new field automatically flows through.
    u64 fields[kFleetCounterFields];
    for (u64 &f : fields)
        f = src.getU64();
    std::memcpy(this, fields, sizeof(*this));
}

std::string
FleetCounters::summary() const
{
    std::ostringstream os;
    os << "ops " << opsAcked << "/" << opsIssued << " acked (" << opsFailed
       << " failed, " << opsUnresolved << " unresolved) | retries "
       << retries << " hedges " << hedges << " (won " << hedgeWins
       << ") | chaos: " << serverCrashes << " crashes, " << serverStalls
       << " stalls, " << requestsDropped << " dropped, "
       << requestsDuplicated << " dup | failovers " << failovers
       << " repairs " << repairPushes << " | elastic: " << serverJoins
       << " joins (" << warmFills << " warm fills, " << warmRestarts
       << " restarts), " << loadMigrations << " load migrations, "
       << resumes << " resumes | device: "
       << deviceCorrected << " CE, " << deviceDueReads << " DUE reads";
    return os.str();
}

void
putRequest(ByteSink &sink, const Request &r)
{
    sink.putU64(r.op);
    sink.putU32(r.attempt);
    sink.putU32(r.replica);
    sink.putU8(static_cast<u8>(r.kind));
    sink.putU64(r.key);
    sink.putU64(r.version);
    sink.putU64(r.value);
}

Request
getRequest(ByteSource &src)
{
    Request r;
    r.op = src.getU64();
    r.attempt = src.getU32();
    r.replica = src.getU32();
    r.kind = static_cast<OpKind>(src.getU8());
    r.key = src.getU64();
    r.version = src.getU64();
    r.value = src.getU64();
    return r;
}

void
putResponse(ByteSink &sink, const Response &r)
{
    sink.putU64(r.op);
    sink.putU32(r.attempt);
    sink.putU32(r.replica);
    sink.putU8(static_cast<u8>(r.status));
    sink.putU64(r.version);
    sink.putU64(r.value);
    sink.putU32(r.from);
}

Response
getResponse(ByteSource &src)
{
    Response r;
    r.op = src.getU64();
    r.attempt = src.getU32();
    r.replica = src.getU32();
    r.status = static_cast<Status>(src.getU8());
    r.version = src.getU64();
    r.value = src.getU64();
    r.from = src.getU32();
    return r;
}

} // namespace fleet
} // namespace citadel
