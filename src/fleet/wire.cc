#include "fleet/wire.h"

#include <cstring>

#include "common/env.h"
#include "common/log.h"
#include "ecc/crc32.h"

#if defined(__unix__) || defined(__APPLE__)
#define CITADEL_HAVE_SOCKETPAIR 1
#include <cerrno>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define CITADEL_HAVE_SOCKETPAIR 0
#endif

namespace citadel {
namespace fleet {

// ---- Transport selection -------------------------------------------

const char *transportModeName(TransportMode mode)
{
    switch (mode) {
    case TransportMode::Direct: return "direct";
    case TransportMode::Loopback: return "loopback";
    case TransportMode::Socket: return "socket";
    }
    return "?";
}

std::optional<TransportMode> parseTransportMode(std::string_view text)
{
    if (text == "direct")
        return TransportMode::Direct;
    if (text == "loopback")
        return TransportMode::Loopback;
    if (text == "socket")
        return TransportMode::Socket;
    return std::nullopt;
}

TransportMode requestedTransportMode()
{
    const std::string text =
        envString("CITADEL_FLEET_TRANSPORT", "loopback");
    if (auto mode = parseTransportMode(text))
        return *mode;
    warn("CITADEL_FLEET_TRANSPORT='%s' is not one of "
         "direct|loopback|socket; using loopback",
         text.c_str());
    return TransportMode::Loopback;
}

// ---- Frame format --------------------------------------------------

namespace {

// Record layouts (little-endian, byte offsets):
//   Request (41B):  op@0 key@8 version@16 value@24 attempt@32
//                   replica@36 kind@40
//   Response (37B): op@0 version@8 value@16 attempt@24 replica@28
//                   from@32 status@36

inline void putLE16(u8 *p, u16 v)
{
    p[0] = static_cast<u8>(v);
    p[1] = static_cast<u8>(v >> 8);
}

inline void putLE32(u8 *p, u32 v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<u8>(v >> (8 * i));
}

inline void putLE64(u8 *p, u64 v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<u8>(v >> (8 * i));
}

inline u16 getLE16(const u8 *p)
{
    return static_cast<u16>(p[0] | (u16(p[1]) << 8));
}

inline u32 getLE32(const u8 *p)
{
    u32 v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

inline u64 getLE64(const u8 *p)
{
    u64 v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

inline std::size_t recordBytesFor(FrameKind kind)
{
    return kind == FrameKind::RequestBatch ? kRequestRecordBytes
                                           : kResponseRecordBytes;
}

/** CRC over the first 12 header bytes plus the payload (everything a
 *  frame carries except the stored CRC itself). */
u32 frameCrc(const u8 *frame, std::size_t payloadBytes)
{
    u32 state = Crc32::begin();
    state = Crc32::update(state, std::span<const u8>(frame, 12));
    state = Crc32::update(
        state,
        std::span<const u8>(frame + kFrameHeaderBytes, payloadBytes));
    return Crc32::finish(state);
}

} // namespace

const char *decodeStatusName(DecodeStatus s)
{
    switch (s) {
    case DecodeStatus::Ok: return "ok";
    case DecodeStatus::Truncated: return "truncated";
    case DecodeStatus::BadMagic: return "bad-magic";
    case DecodeStatus::BadVersion: return "bad-version";
    case DecodeStatus::BadKind: return "bad-kind";
    case DecodeStatus::BadCount: return "bad-count";
    case DecodeStatus::BadLength: return "bad-length";
    case DecodeStatus::BadCrc: return "bad-crc";
    case DecodeStatus::BadRecord: return "bad-record";
    }
    return "?";
}

Request FrameView::requestAt(u32 i) const
{
    if (kind_ != FrameKind::RequestBatch)
        panic("FrameView::requestAt on a response frame");
    if (i >= count_)
        panic("FrameView::requestAt(%u) out of range (count %u)", i,
              count_);
    const u8 *p = payload_ + std::size_t(i) * kRequestRecordBytes;
    Request r;
    r.op = getLE64(p + 0);
    r.key = getLE64(p + 8);
    r.version = getLE64(p + 16);
    r.value = getLE64(p + 24);
    r.attempt = getLE32(p + 32);
    r.replica = getLE32(p + 36);
    r.kind = static_cast<OpKind>(p[40]);
    return r;
}

Response FrameView::responseAt(u32 i) const
{
    if (kind_ != FrameKind::ResponseBatch)
        panic("FrameView::responseAt on a request frame");
    if (i >= count_)
        panic("FrameView::responseAt(%u) out of range (count %u)", i,
              count_);
    const u8 *p = payload_ + std::size_t(i) * kResponseRecordBytes;
    Response r;
    r.op = getLE64(p + 0);
    r.version = getLE64(p + 8);
    r.value = getLE64(p + 16);
    r.attempt = getLE32(p + 24);
    r.replica = getLE32(p + 28);
    r.from = getLE32(p + 32);
    r.status = static_cast<Status>(p[36]);
    return r;
}

DecodeStatus decodeFrame(std::span<const u8> buf, FrameView &out,
                         std::size_t *consumed)
{
    if (buf.size() < kFrameHeaderBytes)
        return DecodeStatus::Truncated;
    const u8 *p = buf.data();
    if (getLE32(p + 0) != kFrameMagic)
        return DecodeStatus::BadMagic;
    if (p[4] != kWireVersion)
        return DecodeStatus::BadVersion;
    const u8 kindByte = p[5];
    if (kindByte != static_cast<u8>(FrameKind::RequestBatch) &&
        kindByte != static_cast<u8>(FrameKind::ResponseBatch))
        return DecodeStatus::BadKind;
    const FrameKind kind = static_cast<FrameKind>(kindByte);
    const u32 count = getLE16(p + 6);
    if (count > kMaxFrameRecords)
        return DecodeStatus::BadCount;
    const u32 payloadBytes = getLE32(p + 8);
    // count/length single-bit flips always break this consistency
    // check, so neither field needs independent CRC coverage to be
    // caught — but both are still inside the CRC anyway.
    if (payloadBytes != count * recordBytesFor(kind))
        return DecodeStatus::BadLength;
    if (buf.size() < kFrameHeaderBytes + payloadBytes)
        return DecodeStatus::Truncated;
    if (getLE32(p + 12) != frameCrc(p, payloadBytes))
        return DecodeStatus::BadCrc;
    // CRC passed: the bytes are what the encoder wrote. Enum bytes are
    // still validated so a buggy (or hand-rolled) encoder can't smuggle
    // out-of-range values into switch statements downstream.
    const u8 *payload = p + kFrameHeaderBytes;
    if (kind == FrameKind::RequestBatch) {
        for (u32 i = 0; i < count; ++i) {
            const u8 op =
                payload[std::size_t(i) * kRequestRecordBytes + 40];
            if (op > static_cast<u8>(OpKind::Write))
                return DecodeStatus::BadRecord;
        }
    } else {
        for (u32 i = 0; i < count; ++i) {
            const u8 st =
                payload[std::size_t(i) * kResponseRecordBytes + 36];
            if (st > static_cast<u8>(Status::Busy))
                return DecodeStatus::BadRecord;
        }
    }
    out.kind_ = kind;
    out.count_ = count;
    out.payload_ = payload;
    if (consumed)
        *consumed = kFrameHeaderBytes + payloadBytes;
    return DecodeStatus::Ok;
}

void FrameWriter::begin(FrameKind kind)
{
    buf_.assign(kFrameHeaderBytes, 0);
    kind_ = kind;
    count_ = 0;
    open_ = true;
}

void FrameWriter::add(const Request &r)
{
    if (!open_ || kind_ != FrameKind::RequestBatch)
        panic("FrameWriter::add(Request) outside an open request frame");
    if (count_ >= kMaxFrameRecords)
        fatal("FrameWriter: request frame exceeds %u records",
              kMaxFrameRecords);
    const std::size_t at = buf_.size();
    buf_.resize(at + kRequestRecordBytes);
    u8 *p = buf_.data() + at;
    putLE64(p + 0, r.op);
    putLE64(p + 8, r.key);
    putLE64(p + 16, r.version);
    putLE64(p + 24, r.value);
    putLE32(p + 32, r.attempt);
    putLE32(p + 36, r.replica);
    p[40] = static_cast<u8>(r.kind);
    ++count_;
}

void FrameWriter::add(const Response &r)
{
    if (!open_ || kind_ != FrameKind::ResponseBatch)
        panic("FrameWriter::add(Response) outside an open response "
              "frame");
    if (count_ >= kMaxFrameRecords)
        fatal("FrameWriter: response frame exceeds %u records",
              kMaxFrameRecords);
    const std::size_t at = buf_.size();
    buf_.resize(at + kResponseRecordBytes);
    u8 *p = buf_.data() + at;
    putLE64(p + 0, r.op);
    putLE64(p + 8, r.version);
    putLE64(p + 16, r.value);
    putLE32(p + 24, r.attempt);
    putLE32(p + 28, r.replica);
    putLE32(p + 32, r.from);
    p[36] = static_cast<u8>(r.status);
    ++count_;
}

std::span<const u8> FrameWriter::finish()
{
    if (!open_)
        panic("FrameWriter::finish without begin");
    open_ = false;
    u8 *p = buf_.data();
    const u32 payloadBytes =
        static_cast<u32>(buf_.size() - kFrameHeaderBytes);
    putLE32(p + 0, kFrameMagic);
    p[4] = kWireVersion;
    p[5] = static_cast<u8>(kind_);
    putLE16(p + 6, static_cast<u16>(count_));
    putLE32(p + 8, payloadBytes);
    putLE32(p + 12, frameCrc(p, payloadBytes));
    return {buf_.data(), buf_.size()};
}

// ---- Transports ----------------------------------------------------

Transport::Transport(u32 servers)
    : servers_(servers), serverRx_(servers), clientRx_(servers)
{
    if (servers == 0)
        fatal("Transport: zero servers");
}

Transport::~Transport() = default;

RxStream &Transport::serverRx(u32 s)
{
    if (s >= servers_)
        panic("Transport::serverRx(%u) out of range", s);
    return serverRx_[s];
}

RxStream &Transport::clientRx(u32 s)
{
    if (s >= servers_)
        panic("Transport::clientRx(%u) out of range", s);
    return clientRx_[s];
}

void LoopbackTransport::sendToServer(u32 s, std::span<const u8> bytes)
{
    RxStream &rx = serverRx(s);
    rx.buf.insert(rx.buf.end(), bytes.begin(), bytes.end());
}

void LoopbackTransport::sendToClient(u32 s, std::span<const u8> bytes)
{
    RxStream &rx = clientRx(s);
    rx.buf.insert(rx.buf.end(), bytes.begin(), bytes.end());
}

#if CITADEL_HAVE_SOCKETPAIR

namespace {

void setNonBlocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fatal("SocketTransport: fcntl(O_NONBLOCK) failed");
}

} // namespace

SocketTransport::SocketTransport(u32 servers)
    : Transport(servers), scratch_(64 * 1024)
{
    clientFd_.resize(servers, -1);
    serverFd_.resize(servers, -1);
    for (u32 s = 0; s < servers; ++s) {
        int fds[2];
        if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
            fatal("SocketTransport: socketpair failed for server %u "
                  "(errno %d)",
                  s, errno);
        setNonBlocking(fds[0]);
        setNonBlocking(fds[1]);
        clientFd_[s] = fds[0];
        serverFd_[s] = fds[1];
    }
}

SocketTransport::~SocketTransport()
{
    for (int fd : clientFd_)
        if (fd >= 0)
            close(fd);
    for (int fd : serverFd_)
        if (fd >= 0)
            close(fd);
}

void SocketTransport::drain(int fd, RxStream &rx)
{
    for (;;) {
        const ssize_t n = read(fd, scratch_.data(), scratch_.size());
        if (n > 0) {
            rx.buf.insert(rx.buf.end(), scratch_.data(),
                          scratch_.data() + n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        if (n == 0)
            fatal("SocketTransport: peer closed unexpectedly");
        fatal("SocketTransport: read failed (errno %d)", errno);
    }
}

void SocketTransport::sendOn(int fd, u32 s, std::span<const u8> bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            write(fd, bytes.data() + off, bytes.size() - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Kernel buffer full: the only reader is this process, so
            // make room by draining both directions of pair s. A frame
            // larger than the socket buffer lands fragmented — the
            // reassembly path's job.
            drain(clientFd_[s], clientRx_[s]);
            drain(serverFd_[s], serverRx_[s]);
            continue;
        }
        fatal("SocketTransport: write failed (errno %d)", errno);
    }
}

void SocketTransport::sendToServer(u32 s, std::span<const u8> bytes)
{
    if (s >= servers_)
        panic("SocketTransport::sendToServer(%u) out of range", s);
    sendOn(clientFd_[s], s, bytes);
}

void SocketTransport::sendToClient(u32 s, std::span<const u8> bytes)
{
    if (s >= servers_)
        panic("SocketTransport::sendToClient(%u) out of range", s);
    sendOn(serverFd_[s], s, bytes);
}

void SocketTransport::poll()
{
    for (u32 s = 0; s < servers_; ++s) {
        drain(serverFd_[s], serverRx_[s]);
        drain(clientFd_[s], clientRx_[s]);
    }
}

#else // !CITADEL_HAVE_SOCKETPAIR

SocketTransport::SocketTransport(u32 servers) : Transport(servers)
{
    fatal("CITADEL_FLEET_TRANSPORT=socket requires a POSIX platform");
}

SocketTransport::~SocketTransport() = default;
void SocketTransport::sendToServer(u32, std::span<const u8>) {}
void SocketTransport::sendToClient(u32, std::span<const u8>) {}
void SocketTransport::poll() {}

#endif

std::unique_ptr<Transport> makeTransport(TransportMode mode,
                                         u32 servers)
{
    switch (mode) {
    case TransportMode::Direct: return nullptr;
    case TransportMode::Loopback:
        return std::make_unique<LoopbackTransport>(servers);
    case TransportMode::Socket:
        return std::make_unique<SocketTransport>(servers);
    }
    panic("makeTransport: bad mode");
}

// ---- Batched submission shards -------------------------------------

SubmissionShards::SubmissionShards(u32 servers)
    : shards_(servers), counts_(servers, 0)
{
    if (servers == 0)
        fatal("SubmissionShards: zero servers");
}

void SubmissionShards::add(u32 s, const Request &r)
{
    if (s >= shards_.size())
        panic("SubmissionShards::add(%u) out of range", s);
    auto &shard = shards_[s];
    const u32 at = counts_[s];
    if (at < shard.size()) {
        shard[at].gen = gen_;
        shard[at].seq = seqNext_;
        shard[at].req = r;
    } else {
        shard.push_back(Slot{gen_, seqNext_, r});
    }
    ++seqNext_;
    counts_[s] = at + 1;
}

void SubmissionShards::nextGeneration()
{
    ++gen_;
    seqNext_ = 0;
    for (auto &c : counts_)
        c = 0;
}

} // namespace fleet
} // namespace citadel
