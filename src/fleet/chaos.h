/**
 * @file
 * FleetFaultInjector: the fault model one layer above the device.
 *
 * Citadel's FaultInjector samples bit/word/column/row/bank/TSV faults
 * inside a stack; this injector samples what kills memory-pool
 * deployments around the stacks: fail-stop server crashes, stalls
 * (alive but frozen), slowdowns, and request drop/duplication on the
 * fleet "network".
 *
 * Determinism contract, extending DESIGN.md §9/§11 to the fleet:
 *  - the event schedule (crash/stall/slow) is sampled once at
 *    construction from the campaign seed — it depends on nothing that
 *    happens during the run;
 *  - per-request coin flips (drop, duplicate) are counter hashes of
 *    (seed, operation, attempt, server), not RNG draws, so they are
 *    independent of the order requests are processed in;
 * together every chaos decision is bit-identical for any worker
 * thread count. Tests also script events directly (addEvent) to kill
 * a chosen server at a chosen tick.
 */

#ifndef CITADEL_FLEET_CHAOS_H
#define CITADEL_FLEET_CHAOS_H

#include <vector>

#include "fleet/fleet_types.h"

namespace citadel {
namespace fleet {

/** Chaos intensity knobs. */
struct ChaosOptions
{
    bool enabled = true;

    /** Scheduled event counts over the campaign. */
    u32 crashes = 1;
    u32 stalls = 2;
    u32 slowdowns = 2;

    /** Window lengths, in ticks. */
    u64 stallTicks = 96;
    u64 slowTicks = 384;

    /** Service-rate divisor during a slowdown window. */
    u32 slowFactor = 4;

    /** Per-request loss/duplication probabilities on the fleet
     *  network. */
    double dropProb = 0.01;
    double dupProb = 0.005;

    /**
     * Elasticity: ticks after a sampled crash (or after a sampled
     * stall window ends — a stall-evicted process is alive and wants
     * back in) at which the server asks the coordinator to rejoin
     * (the CITADEL_FLEET_JOIN knob). 0 (default) keeps evictions
     * permanent — the pre-elasticity behavior; schedules sampled with
     * 0 are bit-identical to before. Restart events are derived from
     * the sampled crashes/stalls, never separately drawn, so enabling
     * them perturbs no other event's placement.
     */
    u64 restartAfterTicks = 0;

    void validate() const;
};

/** One scheduled fleet-level event. */
struct ChaosEvent
{
    enum class Kind : u8
    {
        Crash,   ///< Fail-stop; queue and device state lost.
        Stall,   ///< Frozen for `duration` ticks.
        Slow,    ///< Service rate divided by `factor` for `duration`.
        Restart, ///< Process back up; server asks to rejoin (warm).
    };

    u64 tick = 0;
    Kind kind = Kind::Crash;
    ServerIdx server = 0;
    u64 duration = 0;
    u32 factor = 1;
};

class FleetFaultInjector
{
  public:
    /**
     * Sample the event schedule for `servers` stacks over
     * `campaign_ticks`. Events land in the middle 80% of the run so
     * the service is warm when they hit, and sampled crashes all
     * target distinct servers (concurrent unrelated crashes would
     * make single-failure durability vacuously untestable; scripted
     * events have no such restriction).
     */
    FleetFaultInjector(const ChaosOptions &opts, u32 servers,
                       u64 campaign_ticks, u64 seed);

    /** Script an extra event (tests: kill server s at tick t). */
    void addEvent(const ChaosEvent &ev);

    /** All events, sorted by (tick, server, kind). */
    const std::vector<ChaosEvent> &schedule() const { return events_; }

    /** Counter-hash coin: is this request eaten by the network? */
    bool dropRequest(u64 op, u32 attempt, ServerIdx server) const;

    /** Counter-hash coin: is this request delivered twice? */
    bool duplicateRequest(u64 op, u32 attempt, ServerIdx server) const;

  private:
    ChaosOptions opts_;
    u64 seed_;
    std::vector<ChaosEvent> events_;

    void sortEvents();
};

} // namespace fleet
} // namespace citadel

#endif // CITADEL_FLEET_CHAOS_H
