/**
 * @file
 * TSV-SWAP (Section V): runtime repair of faulty through-silicon vias.
 *
 * Citadel designates four of a channel's 256 data TSVs as stand-by
 * TSVs; their bits are replicated in the per-line metadata, so a
 * stand-by TSV can be rewired (via the TSV Redirection Register) to
 * replace any faulty data, address or command TSV without data loss.
 * Detection works at runtime: a CRC-32 mismatch triggers reads of two
 * fixed-pattern rows at bit-inverse addresses, and on a mismatch the
 * BIST isolates the faulty TSV.
 *
 * In the Monte Carlo model this is a decorator that absorbs TSV-class
 * faults while per-channel repair budget remains; everything else is
 * delegated to the wrapped scheme. The redirection-register datapath
 * itself is modeled bit-accurately in TsvSwapDatapath for unit tests.
 */

#ifndef CITADEL_CITADEL_TSV_SWAP_H
#define CITADEL_CITADEL_TSV_SWAP_H

#include <map>
#include <vector>

#include "faults/scheme.h"
#include "stack/tsv.h"

namespace citadel {

/** Monte Carlo decorator: repairs TSV faults up to a per-channel budget. */
class TsvSwapScheme : public RasScheme
{
  public:
    /**
     * @param inner Scheme protecting DRAM-internal faults.
     * @param standby_per_channel Stand-by TSV pool per channel (the
     *        paper's design carves four stand-by TSVs out of the DTSVs
     *        and can repair up to 8 faulty TSVs; the pool size is the
     *        binding limit here).
     */
    TsvSwapScheme(SchemePtr inner, u32 standby_per_channel = 4);

    SchemePtr clone() const override
    {
        return std::make_unique<TsvSwapScheme>(inner_->clone(),
                                               standbyPerChannel_);
    }

    std::string name() const override;
    void reset(const SystemConfig &cfg) override;
    bool absorb(const Fault &fault) override;
    void onScrub(std::vector<Fault> &active) override;
    bool uncorrectable(const std::vector<Fault> &active) const override;

    void
    setEventSink(SchemeEventSink sink) override
    {
        RasScheme::setEventSink(sink);
        inner_->setEventSink(std::move(sink));
    }

    /** Repairs performed so far in this trial (all channels). */
    u64 repairsPerformed() const { return repairs_; }

  private:
    SchemePtr inner_;
    u32 standbyPerChannel_;
    std::map<u64, u32> usedPerChannel_; ///< (stack, channel) -> repairs
    u64 repairs_ = 0;
};

/**
 * Bit-accurate model of the swap datapath of Fig 8: a TSV Redirection
 * Register (TRR) that steers each logical lane either to its own TSV or
 * to one of the stand-by TSVs.
 */
class TsvSwapDatapath
{
  public:
    /**
     * @param num_lanes Data lanes in the channel (256 in the baseline).
     * @param standby Lane indices repurposed as stand-by TSVs (the
     *        paper uses lanes 0, 64, 128 and 192).
     */
    TsvSwapDatapath(u32 num_lanes, std::vector<TsvLane> standby);

    /** Mark a physical TSV faulty (stuck-at-0 in this model). */
    void breakTsv(TsvLane lane);

    /** BIST action: redirect faulty `lane` to a free stand-by TSV.
     *  @return false if the stand-by pool is exhausted or lane is a
     *          broken stand-by TSV. */
    bool repair(TsvLane lane);

    /**
     * Transfer a burst through the channel: input word per lane,
     * returns what the receiver observes after redirection. Stand-by
     * lanes carry replicated metadata bits, so their payload is
     * recoverable regardless.
     */
    std::vector<u8> transfer(const std::vector<u8> &lanes) const;

    u32 standbyFree() const;

  private:
    u32 numLanes_;
    std::vector<TsvLane> standby_;
    std::vector<bool> faulty_;
    std::map<TsvLane, TsvLane> redirect_; ///< faulty -> stand-by lane
    std::vector<bool> standbyUsed_;
};

} // namespace citadel

#endif // CITADEL_CITADEL_TSV_SWAP_H
