/**
 * @file
 * Bit-true Row Remap Table (RRT) and Bank Remap Table (BRT) of Section
 * VII-C. These are the on-chip lookup structures DDS consults on every
 * memory access: the BRT first (two entries, one per spare bank), then
 * the four RRT entries of the addressed bank. The Monte Carlo DdsScheme
 * models their *policy*; these classes model the *mechanism* -- entry
 * formats, capacity, and per-access redirection -- and are what the
 * fault-injection example and unit tests exercise.
 */

#ifndef CITADEL_CITADEL_REMAP_TABLES_H
#define CITADEL_CITADEL_REMAP_TABLES_H

#include <optional>
#include <vector>

#include "common/serialize.h"
#include "stack/geometry.h"

namespace citadel {

/**
 * Row Remap Table: per bank, up to `entriesPerBank` (source row ->
 * spare row) mappings backed by the fine-granularity spare bank.
 */
class RowRemapTable
{
  public:
    /**
     * @param num_banks Banks covered (64 per stack in the baseline).
     * @param entries_per_bank RRT entries per bank (4 in the paper).
     */
    RowRemapTable(u32 num_banks, u32 entries_per_bank = 4);

    /**
     * Install a mapping for (unit, source row). The unit is the
     * stack-global flattened (die, bank) ordinal.
     * @param spare_row Destination row in the fine spare bank.
     * @return false if the unit's entries are exhausted (the caller
     *         escalates to bank sparing, Section VII-C.3).
     */
    bool insert(UnitId unit, RowId source_row, RowId spare_row);

    /**
     * insert() that also reports *which* slot holds the mapping, so the
     * caller (ProtectedMetaStore) can shadow the entry word. nullopt on
     * exhaustion, exactly when insert() returns false.
     */
    std::optional<MetaSlotId> insertSlot(UnitId unit, RowId source_row,
                                         RowId spare_row);

    /** Drop the mapping in one slot (its protected record was lost);
     *  the slot becomes reusable. No-op on an invalid slot. */
    void eraseSlot(UnitId unit, MetaSlotId slot);

    /** Permanently retire one slot (dead SRAM cell): drops any mapping
     *  and excludes the slot from future insert() allocation. */
    void killSlot(UnitId unit, MetaSlotId slot);

    /** Redirection lookup; nullopt when the row is not remapped. */
    std::optional<RowId> lookup(UnitId unit, RowId row) const;

    /** Entries in use for one unit. */
    u32 used(UnitId unit) const;

    /** Total SRAM bits: entries x (valid + 16b source + 16b dest). */
    u64 storageBits() const;

    void clear();

    /** Checkpoint the full table (dimensions + every entry). */
    void serialize(ByteSink &sink) const;

    /** Restore from a checkpoint; fatal if the stored dimensions do
     *  not match this table's configuration. */
    void deserialize(ByteSource &src);

  private:
    struct Entry
    {
        bool valid = false;
        bool dead = false; ///< Slot retired by the meta-protection scrub.
        u32 sourceRow = 0;
        u32 spareRow = 0;
    };

    Entry &slotAt(UnitId unit, MetaSlotId slot);

    u32 entriesPerBank_;
    std::vector<Entry> entries_; ///< num_banks x entriesPerBank_.
    u32 numBanks_;
};

/**
 * Bank Remap Table: `numEntries` (failed bank -> spare bank) mappings,
 * probed before the RRT on every access.
 */
class BankRemapTable
{
  public:
    explicit BankRemapTable(u32 num_entries = 2);

    /**
     * Decommission `failed_unit` (6-bit stack-global bank ordinal)
     * onto spare bank `spare_id`. @return false when all entries are
     * used.
     */
    bool insert(UnitId failed_unit, u32 spare_id);

    /** insert() that reports the slot holding the mapping; nullopt on
     *  exhaustion, exactly when insert() returns false. */
    std::optional<MetaSlotId> insertSlot(UnitId failed_unit, u32 spare_id);

    /** Drop the mapping in one slot; the slot becomes reusable. */
    void eraseSlot(MetaSlotId slot);

    /** Permanently retire one slot (dead SRAM cell). */
    void killSlot(MetaSlotId slot);

    /** Spare-bank id when the unit is remapped; nullopt otherwise. */
    std::optional<u32> lookup(UnitId unit) const;

    /** Slot holding the unit's mapping; nullopt when not remapped. */
    std::optional<MetaSlotId> slotOf(UnitId unit) const;

    u32 used() const;
    u64 storageBits() const;
    void clear();

    void serialize(ByteSink &sink) const;
    void deserialize(ByteSource &src);

  private:
    struct Entry
    {
        bool valid = false;
        bool dead = false; ///< Slot retired by the meta-protection scrub.
        u32 failedBank = 0;
        u32 spareId = 0;
    };

    std::vector<Entry> entries_;
};

} // namespace citadel

#endif // CITADEL_CITADEL_REMAP_TABLES_H
