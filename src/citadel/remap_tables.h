/**
 * @file
 * Bit-true Row Remap Table (RRT) and Bank Remap Table (BRT) of Section
 * VII-C. These are the on-chip lookup structures DDS consults on every
 * memory access: the BRT first (two entries, one per spare bank), then
 * the four RRT entries of the addressed bank. The Monte Carlo DdsScheme
 * models their *policy*; these classes model the *mechanism* -- entry
 * formats, capacity, and per-access redirection -- and are what the
 * fault-injection example and unit tests exercise.
 */

#ifndef CITADEL_CITADEL_REMAP_TABLES_H
#define CITADEL_CITADEL_REMAP_TABLES_H

#include <optional>
#include <vector>

#include "stack/geometry.h"

namespace citadel {

/**
 * Row Remap Table: per bank, up to `entriesPerBank` (source row ->
 * spare row) mappings backed by the fine-granularity spare bank.
 */
class RowRemapTable
{
  public:
    /**
     * @param num_banks Banks covered (64 per stack in the baseline).
     * @param entries_per_bank RRT entries per bank (4 in the paper).
     */
    RowRemapTable(u32 num_banks, u32 entries_per_bank = 4);

    /**
     * Install a mapping for (unit, source row). The unit is the
     * stack-global flattened (die, bank) ordinal.
     * @param spare_row Destination row in the fine spare bank.
     * @return false if the unit's entries are exhausted (the caller
     *         escalates to bank sparing, Section VII-C.3).
     */
    bool insert(UnitId unit, RowId source_row, RowId spare_row);

    /** Redirection lookup; nullopt when the row is not remapped. */
    std::optional<RowId> lookup(UnitId unit, RowId row) const;

    /** Entries in use for one unit. */
    u32 used(UnitId unit) const;

    /** Total SRAM bits: entries x (valid + 16b source + 16b dest). */
    u64 storageBits() const;

    void clear();

  private:
    struct Entry
    {
        bool valid = false;
        u32 sourceRow = 0;
        u32 spareRow = 0;
    };

    u32 entriesPerBank_;
    std::vector<Entry> entries_; ///< num_banks x entriesPerBank_.
    u32 numBanks_;
};

/**
 * Bank Remap Table: `numEntries` (failed bank -> spare bank) mappings,
 * probed before the RRT on every access.
 */
class BankRemapTable
{
  public:
    explicit BankRemapTable(u32 num_entries = 2);

    /**
     * Decommission `failed_unit` (6-bit stack-global bank ordinal)
     * onto spare bank `spare_id`. @return false when all entries are
     * used.
     */
    bool insert(UnitId failed_unit, u32 spare_id);

    /** Spare-bank id when the unit is remapped; nullopt otherwise. */
    std::optional<u32> lookup(UnitId unit) const;

    u32 used() const;
    u64 storageBits() const;
    void clear();

  private:
    struct Entry
    {
        bool valid = false;
        u32 failedBank = 0;
        u32 spareId = 0;
    };

    std::vector<Entry> entries_;
};

} // namespace citadel

#endif // CITADEL_CITADEL_REMAP_TABLES_H
