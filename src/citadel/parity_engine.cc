#include "citadel/parity_engine.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"
#include "common/rng.h"
#include "ecc/crc32.h"

namespace citadel {

ParityEngine::ParityEngine(const StackGeometry &geom, u64 seed) : geom_(geom)
{
    geom_.validate();
    if (geom_.stacks != 1)
        fatal("ParityEngine: single-stack geometries only");
    dies_ = geom_.channelsPerStack + 1;

    const u64 bytes = static_cast<u64>(dies_) * geom_.banksPerChannel *
                      geom_.rowsPerBank * geom_.rowBytes;
    data_.resize(bytes);
    Rng rng(seed);
    for (auto &b : data_)
        b = static_cast<u8>(rng.next());
    golden_ = data_;

    crc_.resize(totalLines());
    for (u64 l = 0; l < totalLines(); ++l)
        crc_[l] = Crc32::lineCrc(l, {linePtr(golden_, l), geom_.lineBytes});

    buildParity();
}

u64
ParityEngine::totalLines() const
{
    return static_cast<u64>(dies_) * geom_.banksPerChannel *
           geom_.rowsPerBank * geom_.linesPerRow();
}

u64
ParityEngine::lineIndex(u32 die, u32 bank, u32 row, u32 col) const
{
    return ((static_cast<u64>(die) * geom_.banksPerChannel + bank) *
                geom_.rowsPerBank +
            row) *
               geom_.linesPerRow() +
           col;
}

u8 *
ParityEngine::linePtr(std::vector<u8> &buf, u64 line_idx)
{
    return buf.data() + line_idx * geom_.lineBytes;
}

const u8 *
ParityEngine::linePtr(const std::vector<u8> &buf, u64 line_idx) const
{
    return buf.data() + line_idx * geom_.lineBytes;
}

u32
ParityEngine::computeCrc(u64 line_idx) const
{
    return Crc32::lineCrc(line_idx,
                          {linePtr(data_, line_idx), geom_.lineBytes});
}

bool
ParityEngine::lineCorrupt(u64 line_idx) const
{
    return computeCrc(line_idx) != crc_[line_idx];
}

void
ParityEngine::buildParity()
{
    const u32 cols = geom_.linesPerRow();
    const u32 lb = geom_.lineBytes;

    parity1_.assign(static_cast<u64>(geom_.rowsPerBank) * cols * lb, 0);
    parity2_.assign(static_cast<u64>(dies_) * cols * lb, 0);
    parity3_.assign(static_cast<u64>(geom_.banksPerChannel) * cols * lb, 0);

    for (u32 d = 0; d < dies_; ++d)
        for (u32 b = 0; b < geom_.banksPerChannel; ++b)
            for (u32 r = 0; r < geom_.rowsPerBank; ++r)
                for (u32 c = 0; c < cols; ++c) {
                    const u8 *src =
                        linePtr(golden_, lineIndex(d, b, r, c));
                    u8 *p1 = parity1_.data() +
                             (static_cast<u64>(r) * cols + c) * lb;
                    u8 *p2 = parity2_.data() +
                             (static_cast<u64>(d) * cols + c) * lb;
                    u8 *p3 = parity3_.data() +
                             (static_cast<u64>(b) * cols + c) * lb;
                    for (u32 i = 0; i < lb; ++i) {
                        p1[i] ^= src[i];
                        p2[i] ^= src[i];
                        p3[i] ^= src[i];
                    }
                }
}

void
ParityEngine::corrupt(const std::vector<Fault> &faults)
{
    // Flip the *union* of covered bits: two faults overlapping on a bit
    // both corrupt it (physical faults do not cancel each other out).
    const u32 cols = geom_.linesPerRow();
    for (u32 d = 0; d < dies_; ++d)
        for (u32 b = 0; b < geom_.banksPerChannel; ++b)
            for (u32 r = 0; r < geom_.rowsPerBank; ++r)
                for (u32 c = 0; c < cols; ++c) {
                    bool any = false;
                    for (const Fault &f : faults)
                        if (f.channel.matches(d) && f.bank.matches(b) &&
                            f.row.matches(r) && f.col.matches(c)) {
                            any = true;
                            break;
                        }
                    if (!any)
                        continue;
                    u8 *line = linePtr(data_, lineIndex(d, b, r, c));
                    for (u32 bit = 0; bit < geom_.bitsPerLine(); ++bit) {
                        bool covered = false;
                        for (const Fault &f : faults)
                            if (f.channel.matches(d) &&
                                f.bank.matches(b) && f.row.matches(r) &&
                                f.col.matches(c) && f.bit.matches(bit)) {
                                covered = true;
                                break;
                            }
                        if (covered)
                            line[bit / 8] ^=
                                static_cast<u8>(1u << (bit % 8));
                    }
                }
}

void
ParityEngine::fixViaD1(u32 die, u32 bank, u32 row, u32 col)
{
    const u32 lb = geom_.lineBytes;
    std::vector<u8> acc(
        parity1_.begin() +
            (static_cast<u64>(row) * geom_.linesPerRow() + col) * lb,
        parity1_.begin() +
            (static_cast<u64>(row) * geom_.linesPerRow() + col + 1) * lb);
    for (u32 d = 0; d < dies_; ++d)
        for (u32 b = 0; b < geom_.banksPerChannel; ++b) {
            if (d == die && b == bank)
                continue;
            const u8 *src = linePtr(data_, lineIndex(d, b, row, col));
            for (u32 i = 0; i < lb; ++i)
                acc[i] ^= src[i];
        }
    std::memcpy(linePtr(data_, lineIndex(die, bank, row, col)), acc.data(),
                lb);
}

void
ParityEngine::fixViaD2(u32 die, u32 bank, u32 row, u32 col)
{
    const u32 lb = geom_.lineBytes;
    std::vector<u8> acc(
        parity2_.begin() +
            (static_cast<u64>(die) * geom_.linesPerRow() + col) * lb,
        parity2_.begin() +
            (static_cast<u64>(die) * geom_.linesPerRow() + col + 1) * lb);
    for (u32 b = 0; b < geom_.banksPerChannel; ++b)
        for (u32 r = 0; r < geom_.rowsPerBank; ++r) {
            if (b == bank && r == row)
                continue;
            const u8 *src = linePtr(data_, lineIndex(die, b, r, col));
            for (u32 i = 0; i < lb; ++i)
                acc[i] ^= src[i];
        }
    std::memcpy(linePtr(data_, lineIndex(die, bank, row, col)), acc.data(),
                lb);
}

void
ParityEngine::fixViaD3(u32 die, u32 bank, u32 row, u32 col)
{
    const u32 lb = geom_.lineBytes;
    std::vector<u8> acc(
        parity3_.begin() +
            (static_cast<u64>(bank) * geom_.linesPerRow() + col) * lb,
        parity3_.begin() +
            (static_cast<u64>(bank) * geom_.linesPerRow() + col + 1) * lb);
    for (u32 d = 0; d < dies_; ++d)
        for (u32 r = 0; r < geom_.rowsPerBank; ++r) {
            if (d == die && r == row)
                continue;
            const u8 *src = linePtr(data_, lineIndex(d, bank, r, col));
            for (u32 i = 0; i < lb; ++i)
                acc[i] ^= src[i];
        }
    std::memcpy(linePtr(data_, lineIndex(die, bank, row, col)), acc.data(),
                lb);
}

u64
ParityEngine::corruptLineCount() const
{
    u64 n = 0;
    for (u64 l = 0; l < totalLines(); ++l)
        if (lineCorrupt(l))
            ++n;
    return n;
}

bool
ParityEngine::reconstruct(u32 dims)
{
    const u32 cols = geom_.linesPerRow();

    // Detect: CRC-32 mismatch marks a line corrupt (line granularity).
    struct CorruptLine
    {
        u32 die, bank, row, col;
    };
    std::vector<CorruptLine> corrupt;
    for (u32 d = 0; d < dies_; ++d)
        for (u32 b = 0; b < geom_.banksPerChannel; ++b)
            for (u32 r = 0; r < geom_.rowsPerBank; ++r)
                for (u32 c = 0; c < cols; ++c)
                    if (lineCorrupt(lineIndex(d, b, r, c)))
                        corrupt.push_back({d, b, r, c});

    bool progress = true;
    while (progress && !corrupt.empty()) {
        progress = false;
        for (std::size_t i = 0; i < corrupt.size(); ++i) {
            const CorruptLine &L = corrupt[i];

            // D1: only unknown (die, bank) unit in its (row, col) group?
            u32 units = 0;
            for (const auto &o : corrupt)
                if (o.row == L.row && o.col == L.col &&
                    !(o.die == L.die && o.bank == L.bank))
                    ++units;
            if (units == 0) {
                fixViaD1(L.die, L.bank, L.row, L.col);
            } else if (dims >= 2) {
                // D2: only unknown (bank, row) slice of its die at col?
                u32 slices = 0;
                for (const auto &o : corrupt)
                    if (o.die == L.die && o.col == L.col &&
                        !(o.bank == L.bank && o.row == L.row))
                        ++slices;
                if (slices == 0) {
                    fixViaD2(L.die, L.bank, L.row, L.col);
                } else if (dims >= 3) {
                    // D3: only unknown (die, row) slice of its bank
                    // position at col?
                    u32 s3 = 0;
                    for (const auto &o : corrupt)
                        if (o.bank == L.bank && o.col == L.col &&
                            !(o.die == L.die && o.row == L.row))
                            ++s3;
                    if (s3 != 0)
                        continue;
                    fixViaD3(L.die, L.bank, L.row, L.col);
                } else {
                    continue;
                }
            } else {
                continue;
            }

            if (lineCorrupt(lineIndex(L.die, L.bank, L.row, L.col)))
                panic("ParityEngine: reconstruction produced bad CRC");
            corrupt.erase(corrupt.begin() + static_cast<long>(i));
            progress = true;
            break;
        }
    }

    return corrupt.empty() && data_ == golden_;
}

void
ParityEngine::restore()
{
    data_ = golden_;
}

} // namespace citadel
