#include "citadel/parity_engine.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"
#include "common/rng.h"
#include "common/xor_fold.h"
#include "ecc/crc32.h"

namespace citadel {

ParityEngine::ParityEngine(const StackGeometry &geom, u64 seed) : geom_(geom)
{
    geom_.validate();
    if (geom_.stacks != 1)
        fatal("ParityEngine: single-stack geometries only");
    dies_ = geom_.channelsPerStack + 1;

    const u64 bytes = static_cast<u64>(dies_) * geom_.banksPerChannel *
                      geom_.rowsPerBank * geom_.rowBytes;
    data_.resize(bytes);
    Rng rng(seed);
    for (auto &b : data_)
        b = static_cast<u8>(rng.next());
    golden_ = data_;

    crc_.resize(totalLines());
    for (u64 l = 0; l < totalLines(); ++l)
        crc_[l] = Crc32::lineCrc(l, {linePtr(golden_, l), geom_.lineBytes});

    buildParity();
}

u64
ParityEngine::totalLines() const
{
    return static_cast<u64>(dies_) * geom_.banksPerChannel *
           geom_.rowsPerBank * geom_.linesPerRow();
}

u64
ParityEngine::lineIndex(DieId die, BankId bank, RowId row, ColId col) const
{
    return ((static_cast<u64>(die.value()) * geom_.banksPerChannel +
             bank.value()) *
                geom_.rowsPerBank +
            row.value()) *
               geom_.linesPerRow() +
           col.value();
}

ParityGroupId
ParityEngine::parityIndex(RowId row, ColId col) const
{
    return ParityGroupId{static_cast<u64>(row.value()) *
                             geom_.linesPerRow() +
                         col.value()};
}

u8 *
ParityEngine::linePtr(std::vector<u8> &buf, u64 storage_line)
{
    return buf.data() + storage_line * geom_.lineBytes;
}

const u8 *
ParityEngine::linePtr(const std::vector<u8> &buf, u64 storage_line) const
{
    return buf.data() + storage_line * geom_.lineBytes;
}

u32
ParityEngine::computeCrc(u64 storage_line) const
{
    return Crc32::lineCrc(storage_line,
                          {linePtr(data_, storage_line), geom_.lineBytes});
}

bool
ParityEngine::lineCorrupt(u64 storage_line) const
{
    return computeCrc(storage_line) != crc_[storage_line];
}

bool
ParityEngine::parityLineCorrupt(RowId row, ColId col) const
{
    const u64 idx = parityIndex(row, col).value();
    // Parity lines get CRC addresses above the data line space so a
    // misdirected read can never alias a data CRC.
    const u32 crc = Crc32::lineCrc(totalLines() + idx,
                                   {linePtr(parity1_, idx),
                                    geom_.lineBytes});
    return crc != parityCrc_[idx];
}

bool
ParityEngine::isCorrupt(const CorruptLine &l) const
{
    if (l.die == parityDie())
        return parityLineCorrupt(l.row, l.col);
    return lineCorrupt(lineIndex(l.die, l.bank, l.row, l.col));
}

void
ParityEngine::checkCoord(DieId die, BankId bank, RowId row, ColId col) const
{
    const u32 d = die.value();
    const u32 b = bank.value();
    const u32 r = row.value();
    const u32 c = col.value();
    if (d > dies_ || (d == dies_ && b != 0) ||
        (d < dies_ && b >= geom_.banksPerChannel) ||
        r >= geom_.rowsPerBank || c >= geom_.linesPerRow())
        panic("ParityEngine: coordinate (%u, %u, %u, %u) out of range",
              d, b, r, c);
}

void
ParityEngine::buildParity()
{
    const u32 cols = geom_.linesPerRow();
    const u32 lb = geom_.lineBytes;
    const u32 banks = geom_.banksPerChannel;
    const u32 rows = geom_.rowsPerBank;

    parity1_.assign(static_cast<u64>(rows) * cols * lb, 0);
    parity2_.assign(static_cast<u64>(dies_ + 1) * cols * lb, 0);
    parity3_.assign(static_cast<u64>(banks) * cols * lb, 0);

    // Each fold destination gathers its whole group and accumulates it
    // in one xorFoldN pass (XOR is associative and commutative over
    // exact bytes, so regrouping the old per-source loop is
    // byte-identical; tests pin the images).

    // D1: a (row, col) slot folds all its (die, bank) lines.
    for (u32 r = 0; r < rows; ++r)
        for (u32 c = 0; c < cols; ++c) {
            foldSrcs_.clear();
            for (u32 d = 0; d < dies_; ++d)
                for (u32 b = 0; b < banks; ++b)
                    foldSrcs_.push_back(linePtr(
                        golden_, lineIndex(DieId{d}, BankId{b}, RowId{r},
                                           ColId{c})));
            xorFoldN(parity1_.data() +
                         (static_cast<u64>(r) * cols + c) * lb,
                     foldSrcs_.data(), foldSrcs_.size(), lb);
        }

    // D2: a (die, col) fold covers the die's (bank, row) lines.
    for (u32 d = 0; d < dies_; ++d)
        for (u32 c = 0; c < cols; ++c) {
            foldSrcs_.clear();
            for (u32 b = 0; b < banks; ++b)
                for (u32 r = 0; r < rows; ++r)
                    foldSrcs_.push_back(linePtr(
                        golden_, lineIndex(DieId{d}, BankId{b}, RowId{r},
                                           ColId{c})));
            xorFoldN(parity2_.data() +
                         (static_cast<u64>(d) * cols + c) * lb,
                     foldSrcs_.data(), foldSrcs_.size(), lb);
        }

    // D3: a (bank, col) fold covers the bank position's (die, row)
    // lines.
    for (u32 b = 0; b < banks; ++b)
        for (u32 c = 0; c < cols; ++c) {
            foldSrcs_.clear();
            for (u32 d = 0; d < dies_; ++d)
                for (u32 r = 0; r < rows; ++r)
                    foldSrcs_.push_back(linePtr(
                        golden_, lineIndex(DieId{d}, BankId{b}, RowId{r},
                                           ColId{c})));
            xorFoldN(parity3_.data() +
                         (static_cast<u64>(b) * cols + c) * lb,
                     foldSrcs_.data(), foldSrcs_.size(), lb);
        }

    goldenParity1_ = parity1_;
    parityCrc_.resize(static_cast<u64>(rows) * cols);
    for (u32 r = 0; r < rows; ++r)
        for (u32 c = 0; c < cols; ++c) {
            const u64 idx = parityIndex(RowId{r}, ColId{c}).value();
            parityCrc_[idx] =
                Crc32::lineCrc(totalLines() + idx,
                               {linePtr(goldenParity1_, idx), lb});
        }

    // The parity unit participates in D2 (its own fold, die slot
    // dies_) and in the D3 group of bank position 0.
    for (u32 c = 0; c < cols; ++c) {
        foldSrcs_.clear();
        for (u32 r = 0; r < rows; ++r)
            foldSrcs_.push_back(linePtr(
                goldenParity1_, parityIndex(RowId{r}, ColId{c}).value()));
        xorFoldN(parity2_.data() +
                     (static_cast<u64>(dies_) * cols + c) * lb,
                 foldSrcs_.data(), foldSrcs_.size(), lb);
        xorFoldN(parity3_.data() + static_cast<u64>(c) * lb,
                 foldSrcs_.data(), foldSrcs_.size(), lb);
    }
}

void
ParityEngine::corrupt(const std::vector<Fault> &faults)
{
    // Flip the *union* of covered bits: two faults overlapping on a bit
    // both corrupt it (physical faults do not cancel each other out).
    const u32 cols = geom_.linesPerRow();
    auto flipCovered = [&](u32 d, u32 b, u32 r, u32 c, u8 *ln) {
        bool any = false;
        for (const Fault &f : faults)
            if (f.channel.matches(d) && f.bank.matches(b) &&
                f.row.matches(r) && f.col.matches(c)) {
                any = true;
                break;
            }
        if (!any)
            return;
        for (u32 bit = 0; bit < geom_.bitsPerLine(); ++bit) {
            bool covered = false;
            for (const Fault &f : faults)
                if (f.channel.matches(d) && f.bank.matches(b) &&
                    f.row.matches(r) && f.col.matches(c) &&
                    f.bit.matches(bit)) {
                    covered = true;
                    break;
                }
            if (covered)
                ln[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        }
    };

    for (u32 d = 0; d < dies_; ++d)
        for (u32 b = 0; b < geom_.banksPerChannel; ++b)
            for (u32 r = 0; r < geom_.rowsPerBank; ++r)
                for (u32 c = 0; c < cols; ++c)
                    flipCovered(d, b, r, c,
                                linePtr(data_,
                                        lineIndex(DieId{d}, BankId{b},
                                                  RowId{r}, ColId{c})));

    // The parity store is addressed as die parityDie(), bank 0.
    for (u32 r = 0; r < geom_.rowsPerBank; ++r)
        for (u32 c = 0; c < cols; ++c)
            flipCovered(dies_, 0, r, c,
                        linePtr(parity1_,
                                parityIndex(RowId{r}, ColId{c}).value()));
}

void
ParityEngine::fixViaD1(DieId die, BankId bank, RowId row, ColId col)
{
    const u32 lb = geom_.lineBytes;
    const u64 pidx = parityIndex(row, col).value();
    if (die == parityDie()) {
        // Rebuild the parity line itself from all data units.
        accScratch_.assign(lb, 0);
        foldSrcs_.clear();
        for (u32 d = 0; d < dies_; ++d)
            for (u32 b = 0; b < geom_.banksPerChannel; ++b)
                foldSrcs_.push_back(
                    linePtr(data_, lineIndex(DieId{d}, BankId{b}, row, col)));
        xorFoldN(accScratch_.data(), foldSrcs_.data(), foldSrcs_.size(), lb);
        std::memcpy(linePtr(parity1_, pidx), accScratch_.data(), lb);
        return;
    }
    accScratch_.assign(parity1_.begin() + static_cast<long>(pidx * lb),
                       parity1_.begin() + static_cast<long>((pidx + 1) * lb));
    foldSrcs_.clear();
    for (u32 d = 0; d < dies_; ++d)
        for (u32 b = 0; b < geom_.banksPerChannel; ++b) {
            const DieId dd{d};
            const BankId bb{b};
            if (dd == die && bb == bank)
                continue;
            foldSrcs_.push_back(linePtr(data_, lineIndex(dd, bb, row, col)));
        }
    xorFoldN(accScratch_.data(), foldSrcs_.data(), foldSrcs_.size(), lb);
    std::memcpy(linePtr(data_, lineIndex(die, bank, row, col)),
                accScratch_.data(), lb);
}

void
ParityEngine::fixViaD2(DieId die, BankId bank, RowId row, ColId col)
{
    const u32 lb = geom_.lineBytes;
    const u64 fold =
        static_cast<u64>(die.value()) * geom_.linesPerRow() + col.value();
    accScratch_.assign(parity2_.begin() + static_cast<long>(fold * lb),
                       parity2_.begin() + static_cast<long>((fold + 1) * lb));
    foldSrcs_.clear();
    if (die == parityDie()) {
        // Parity unit: its D2 fold covers the parity rows only.
        for (u32 r = 0; r < geom_.rowsPerBank; ++r) {
            const RowId rr{r};
            if (rr == row)
                continue;
            foldSrcs_.push_back(
                linePtr(parity1_, parityIndex(rr, col).value()));
        }
        xorFoldN(accScratch_.data(), foldSrcs_.data(), foldSrcs_.size(), lb);
        std::memcpy(linePtr(parity1_, parityIndex(row, col).value()),
                    accScratch_.data(), lb);
        return;
    }
    for (u32 b = 0; b < geom_.banksPerChannel; ++b)
        for (u32 r = 0; r < geom_.rowsPerBank; ++r) {
            const BankId bb{b};
            const RowId rr{r};
            if (bb == bank && rr == row)
                continue;
            foldSrcs_.push_back(linePtr(data_, lineIndex(die, bb, rr, col)));
        }
    xorFoldN(accScratch_.data(), foldSrcs_.data(), foldSrcs_.size(), lb);
    std::memcpy(linePtr(data_, lineIndex(die, bank, row, col)),
                accScratch_.data(), lb);
}

void
ParityEngine::fixViaD3(DieId die, BankId bank, RowId row, ColId col)
{
    const u32 lb = geom_.lineBytes;
    const u64 fold =
        static_cast<u64>(bank.value()) * geom_.linesPerRow() + col.value();
    accScratch_.assign(parity3_.begin() + static_cast<long>(fold * lb),
                       parity3_.begin() + static_cast<long>((fold + 1) * lb));
    foldSrcs_.clear();
    for (u32 d = 0; d < dies_; ++d)
        for (u32 r = 0; r < geom_.rowsPerBank; ++r) {
            const DieId dd{d};
            const RowId rr{r};
            if (dd == die && rr == row)
                continue;
            foldSrcs_.push_back(linePtr(data_, lineIndex(dd, bank, rr, col)));
        }
    if (bank == BankId{0}) {
        // Bank position 0's group includes the parity unit's rows.
        for (u32 r = 0; r < geom_.rowsPerBank; ++r) {
            const RowId rr{r};
            if (die == parityDie() && rr == row)
                continue;
            foldSrcs_.push_back(
                linePtr(parity1_, parityIndex(rr, col).value()));
        }
    }
    xorFoldN(accScratch_.data(), foldSrcs_.data(), foldSrcs_.size(), lb);
    u8 *dst = die == parityDie()
                  ? linePtr(parity1_, parityIndex(row, col).value())
                  : linePtr(data_, lineIndex(die, bank, row, col));
    std::memcpy(dst, accScratch_.data(), lb);
}

u64
ParityEngine::corruptLineCount() const
{
    u64 n = 0;
    for (u64 l = 0; l < totalLines(); ++l)
        if (lineCorrupt(l))
            ++n;
    for (u32 r = 0; r < geom_.rowsPerBank; ++r)
        for (u32 c = 0; c < geom_.linesPerRow(); ++c)
            if (parityLineCorrupt(RowId{r}, ColId{c}))
                ++n;
    return n;
}

std::vector<ParityEngine::CorruptLine>
ParityEngine::collectCorrupt() const
{
    const u32 cols = geom_.linesPerRow();
    std::vector<CorruptLine> corrupt;
    for (u32 d = 0; d < dies_; ++d)
        for (u32 b = 0; b < geom_.banksPerChannel; ++b)
            for (u32 r = 0; r < geom_.rowsPerBank; ++r)
                for (u32 c = 0; c < cols; ++c) {
                    const CorruptLine l{DieId{d}, BankId{b}, RowId{r},
                                        ColId{c}};
                    if (lineCorrupt(lineIndex(l.die, l.bank, l.row,
                                              l.col)))
                        corrupt.push_back(l);
                }
    for (u32 r = 0; r < geom_.rowsPerBank; ++r)
        for (u32 c = 0; c < cols; ++c)
            if (parityLineCorrupt(RowId{r}, ColId{c}))
                corrupt.push_back(
                    {parityDie(), BankId{0}, RowId{r}, ColId{c}});
    return corrupt;
}

u32
ParityEngine::peelDim(const CorruptLine &L,
                      const std::vector<CorruptLine> &corrupt,
                      u32 dims) const
{
    // D1: only unknown (die, bank) unit in its (row, col) group? The
    // parity unit (die dies_, bank 0) is one more group member.
    u32 units = 0;
    for (const auto &o : corrupt)
        if (o.row == L.row && o.col == L.col &&
            !(o.die == L.die && o.bank == L.bank))
            ++units;
    if (units == 0)
        return 1;

    if (dims >= 2) {
        // D2: only unknown (bank, row) slice of its die at col?
        u32 slices = 0;
        for (const auto &o : corrupt)
            if (o.die == L.die && o.col == L.col &&
                !(o.bank == L.bank && o.row == L.row))
                ++slices;
        if (slices == 0)
            return 2;
    }

    if (dims >= 3) {
        // D3: only unknown (die, row) slice of its bank position at
        // col? Bank position 0 includes the parity unit.
        u32 s3 = 0;
        for (const auto &o : corrupt)
            if (o.bank == L.bank && o.col == L.col &&
                !(o.die == L.die && o.row == L.row))
                ++s3;
        if (s3 == 0)
            return 3;
    }
    return 0;
}

void
ParityEngine::fixLine(const CorruptLine &L, u32 dim)
{
    switch (dim) {
      case 1:
        fixViaD1(L.die, L.bank, L.row, L.col);
        break;
      case 2:
        fixViaD2(L.die, L.bank, L.row, L.col);
        break;
      case 3:
        fixViaD3(L.die, L.bank, L.row, L.col);
        break;
      default:
        panic("ParityEngine: bad fix dimension %u", dim);
    }
    if (isCorrupt(L))
        panic("ParityEngine: reconstruction produced bad CRC");
}

u32
ParityEngine::groupReadCost(const CorruptLine &L, u32 dim) const
{
    // DRAM line reads needed to XOR out the target: every other line of
    // the parity group that lives in DRAM (D2/D3 parity itself is SRAM
    // at the controller, Section VI-B, so it costs no DRAM read).
    const u32 banks = geom_.banksPerChannel;
    const u32 rows = geom_.rowsPerBank;
    switch (dim) {
      case 1:
        // Group: dies_ x banks data lines + 1 parity line; read all
        // but the target.
        return dies_ * banks;
      case 2:
        return L.die == parityDie() ? rows - 1 : banks * rows - 1;
      case 3:
        return L.bank == BankId{0} ? (dies_ + 1) * rows - 1
                                   : dies_ * rows - 1;
      default:
        return 0;
    }
}

bool
ParityEngine::reconstruct(u32 dims)
{
    std::vector<CorruptLine> corrupt = collectCorrupt();

    bool progress = true;
    while (progress && !corrupt.empty()) {
        progress = false;
        for (std::size_t i = 0; i < corrupt.size(); ++i) {
            const u32 dim = peelDim(corrupt[i], corrupt, dims);
            if (dim == 0)
                continue;
            fixLine(corrupt[i], dim);
            corrupt.erase(corrupt.begin() + static_cast<long>(i));
            progress = true;
            break;
        }
    }

    return corrupt.empty() && data_ == golden_ &&
           parity1_ == goldenParity1_;
}

bool
ParityEngine::peelable(u32 dims) const
{
    std::vector<CorruptLine> corrupt = collectCorrupt();
    bool progress = true;
    while (progress && !corrupt.empty()) {
        progress = false;
        for (std::size_t i = 0; i < corrupt.size(); ++i) {
            if (peelDim(corrupt[i], corrupt, dims) == 0)
                continue;
            corrupt.erase(corrupt.begin() + static_cast<long>(i));
            progress = true;
            break;
        }
    }
    return corrupt.empty();
}

bool
ParityEngine::lineCorruptAt(DieId die, BankId bank, RowId row,
                            ColId col) const
{
    checkCoord(die, bank, row, col);
    return isCorrupt({die, bank, row, col});
}

bool
ParityEngine::lineMatchesGolden(DieId die, BankId bank, RowId row,
                                ColId col) const
{
    checkCoord(die, bank, row, col);
    const u32 lb = geom_.lineBytes;
    if (die == parityDie()) {
        const u64 idx = parityIndex(row, col).value();
        return std::memcmp(linePtr(parity1_, idx),
                           linePtr(goldenParity1_, idx), lb) == 0;
    }
    const u64 idx = lineIndex(die, bank, row, col);
    return std::memcmp(linePtr(data_, idx), linePtr(golden_, idx), lb) ==
           0;
}

ParityEngine::DemandFix
ParityEngine::correctLine(DieId die, BankId bank, RowId row, ColId col,
                          u32 dims)
{
    checkCoord(die, bank, row, col);
    DemandFix fix;
    const CorruptLine target{die, bank, row, col};
    if (!isCorrupt(target)) {
        fix.corrected = true;
        return fix;
    }

    std::vector<CorruptLine> corrupt = collectCorrupt();
    auto targetPending = [&] {
        return std::find(corrupt.begin(), corrupt.end(), target) !=
               corrupt.end();
    };

    bool progress = true;
    while (progress && targetPending()) {
        progress = false;
        // Prefer solving the target directly; otherwise peel any
        // solvable dependency and retry.
        std::size_t pick = corrupt.size();
        u32 pick_dim = 0;
        for (std::size_t i = 0; i < corrupt.size(); ++i) {
            const u32 dim = peelDim(corrupt[i], corrupt, dims);
            if (dim == 0)
                continue;
            if (corrupt[i] == target) {
                pick = i;
                pick_dim = dim;
                break;
            }
            if (pick == corrupt.size()) {
                pick = i;
                pick_dim = dim;
            }
        }
        if (pick == corrupt.size())
            break;
        fixLine(corrupt[pick], pick_dim);
        fix.groupReads += groupReadCost(corrupt[pick], pick_dim);
        ++fix.linesFixed;
        if (corrupt[pick] == target)
            fix.dimUsed = pick_dim;
        corrupt.erase(corrupt.begin() + static_cast<long>(pick));
        progress = true;
    }

    fix.corrected = !targetPending();
    return fix;
}

void
ParityEngine::restore()
{
    data_ = golden_;
    parity1_ = goldenParity1_;
}

} // namespace citadel
