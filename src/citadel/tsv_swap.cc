#include "citadel/tsv_swap.h"

#include <algorithm>

#include "common/log.h"

namespace citadel {

TsvSwapScheme::TsvSwapScheme(SchemePtr inner, u32 standby_per_channel)
    : inner_(std::move(inner)), standbyPerChannel_(standby_per_channel)
{
    if (!inner_)
        fatal("TsvSwapScheme: inner scheme required");
}

std::string
TsvSwapScheme::name() const
{
    return "TSV-Swap+" + inner_->name();
}

void
TsvSwapScheme::reset(const SystemConfig &cfg)
{
    RasScheme::reset(cfg);
    inner_->reset(cfg);
    usedPerChannel_.clear();
    repairs_ = 0;
}

bool
TsvSwapScheme::absorb(const Fault &fault)
{
    if (fault.fromTsv) {
        const u64 key =
            (static_cast<u64>(fault.stack.value) << 32) | fault.channel.value;
        u32 &used = usedPerChannel_[key];
        if (used < standbyPerChannel_) {
            // BIST detects the faulty TSV via CRC + fixed rows, the TRR
            // steers a stand-by TSV in its place; the stand-by TSV's
            // own bits are replicated in metadata, so no data is lost.
            ++used;
            ++repairs_;
            emitEvent(SchemeEvent::Kind::TsvRepaired, fault);
            return true;
        }
        // Pool exhausted: the fault lands with full severity.
    }
    return inner_->absorb(fault);
}

void
TsvSwapScheme::onScrub(std::vector<Fault> &active)
{
    inner_->onScrub(active);
}

bool
TsvSwapScheme::uncorrectable(const std::vector<Fault> &active) const
{
    return inner_->uncorrectable(active);
}

TsvSwapDatapath::TsvSwapDatapath(u32 num_lanes,
                                 std::vector<TsvLane> standby)
    : numLanes_(num_lanes), standby_(std::move(standby)),
      faulty_(num_lanes, false), standbyUsed_(standby_.size(), false)
{
    for (TsvLane s : standby_)
        if (s.value() >= numLanes_)
            fatal("TsvSwapDatapath: stand-by lane %u out of range",
                  s.value());
}

void
TsvSwapDatapath::breakTsv(TsvLane lane)
{
    if (lane.value() >= numLanes_)
        panic("breakTsv: lane %u out of range", lane.value());
    faulty_[lane.idx()] = true;
}

bool
TsvSwapDatapath::repair(TsvLane lane)
{
    if (lane.value() >= numLanes_)
        panic("repair: lane %u out of range", lane.value());
    if (redirect_.count(lane))
        return true; // already repaired
    for (std::size_t i = 0; i < standby_.size(); ++i) {
        if (standbyUsed_[i] || faulty_[standby_[i].idx()])
            continue;
        standbyUsed_[i] = true;
        redirect_.emplace(lane, standby_[i]);
        return true;
    }
    return false;
}

std::vector<u8>
TsvSwapDatapath::transfer(const std::vector<u8> &lanes) const
{
    if (lanes.size() != numLanes_)
        panic("transfer: expected %u lanes, got %zu", numLanes_,
              lanes.size());
    std::vector<u8> out(lanes.size());
    for (u32 l = 0; l < numLanes_; ++l) {
        auto it = redirect_.find(TsvLane{l});
        if (it != redirect_.end()) {
            // The TRR routes the logical lane through a stand-by TSV.
            out[l] = faulty_[it->second.idx()] ? 0 : lanes[l];
        } else {
            out[l] = faulty_[l] ? 0 : lanes[l];
        }
    }
    return out;
}

u32
TsvSwapDatapath::standbyFree() const
{
    u32 n = 0;
    for (std::size_t i = 0; i < standby_.size(); ++i)
        if (!standbyUsed_[i] && !faulty_[standby_[i].idx()])
            ++n;
    return n;
}

} // namespace citadel
