/**
 * @file
 * Tri-Dimensional Parity (Section VI).
 *
 * 3DP keeps XOR parity along three axes of the stack:
 *
 *  - Dimension 1: for every row index, parity across all (die, bank)
 *    units of the stack, stored in a (distributed) parity bank;
 *  - Dimension 2: for every die, one parity row folding all rows of all
 *    banks of that die (kept in SRAM at the controller);
 *  - Dimension 3: for every bank position, one parity row folding all
 *    rows of that bank position across dies (also in SRAM).
 *
 * CRC-32 per line localizes corrupt lines; correction then peels:
 * a corrupt region is reconstructible via D1 if it is confined to one
 * (die, bank) unit and no other unit has a corrupt line in any of its
 * (row, col) groups; via D2 (D3) if it is confined to a single
 * (bank, row) slice and no other slice of the same die (bank position)
 * has a corrupt line in an overlapping column slot. Peeling repeats
 * until no corrupt region remains (correctable) or no progress is made
 * (uncorrectable).
 *
 * The analytic evaluator here operates on fault ranges for Monte Carlo
 * speed; citadel/parity_engine.h implements the same algorithm
 * bit-for-bit on a miniature stack, and property tests check that both
 * agree on randomized fault sets.
 */

#ifndef CITADEL_CITADEL_THREE_D_PARITY_H
#define CITADEL_CITADEL_THREE_D_PARITY_H

#include "faults/scheme.h"

namespace citadel {

/**
 * N-dimensional parity evaluator: dims=1 is the plain parity-bank
 * scheme (1DP), dims=2 adds per-die parity rows (2DP), dims=3 is the
 * full 3DP of the paper (Fig 14 compares all three).
 */
class MultiDimParityScheme : public RasScheme
{
  public:
    explicit MultiDimParityScheme(u32 dims = 3);

    SchemePtr clone() const override
    {
        return std::make_unique<MultiDimParityScheme>(dims_);
    }

    std::string name() const override;
    bool uncorrectable(const std::vector<Fault> &active) const override;

    /**
     * Can `f` be reconstructed given the other concurrent faults?
     * Exposed for tests and for the bit-true cross-check.
     */
    bool correctable(const Fault &f, const std::vector<Fault> &others)
        const;

    u32 dims() const { return dims_; }

  private:
    u32 dims_;

    bool d1Ok(const Fault &f, const std::vector<Fault> &others) const;
    bool d2Ok(const Fault &f, const std::vector<Fault> &others) const;
    bool d3Ok(const Fault &f, const std::vector<Fault> &others) const;
};

} // namespace citadel

#endif // CITADEL_CITADEL_THREE_D_PARITY_H
