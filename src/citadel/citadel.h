/**
 * @file
 * Citadel top-level: factories assembling the full scheme stack
 * (TSV-SWAP over DDS over 3DP) and the paper's baselines, plus the
 * storage-overhead accounting of Section VII-E.
 *
 * This is the primary public entry point of the library:
 *
 * @code
 *   citadel::SystemConfig cfg;            // Table I / Table II defaults
 *   cfg.tsvDeviceFit = 1430.0;
 *   auto scheme = citadel::makeCitadel();
 *   citadel::MonteCarlo mc(cfg);
 *   auto res = mc.run(*scheme, 100000);
 *   std::cout << res.probFail().estimate << "\n";
 * @endcode
 */

#ifndef CITADEL_CITADEL_CITADEL_H
#define CITADEL_CITADEL_CITADEL_H

#include "citadel/dds.h"
#include "citadel/three_d_parity.h"
#include "citadel/tsv_swap.h"
#include "ecc/baseline_schemes.h"
#include "faults/monte_carlo.h"

namespace citadel {

/** Knobs for the full Citadel scheme; defaults follow the paper. */
struct CitadelOptions
{
    u32 parityDims = 3;          ///< 3DP (1/2 for the Fig 14 ablations).
    bool enableTsvSwap = true;   ///< TSV-SWAP component.
    bool enableDds = true;       ///< DDS component.
    u32 standbyTsvsPerChannel = 4;
    u32 spareRowsPerBank = 4;
    u32 spareBanksPerStack = 2;
};

/** Full Citadel: TSV-SWAP( DDS( 3DP ) ) with paper defaults. */
SchemePtr makeCitadel(const CitadelOptions &opts = {});

/** Bare multi-dimensional parity (no sparing / swap). */
SchemePtr makeParityOnly(u32 dims, bool tsv_swap = false);

/** ChipKill-like SSC baseline under a striping mode. */
SchemePtr makeSymbolBaseline(StripingMode mode, bool tsv_swap = false);

/** BCH 6EC7ED per-line baseline (Fig 19). */
SchemePtr makeBchBaseline();

/** RAID-5 baseline (Fig 19). */
SchemePtr makeRaid5Baseline();

/**
 * Storage-overhead accounting (Section VII-E): the metadata die, the
 * D1 parity bank, on-chip D2/D3 parity and the remap tables.
 */
struct StorageOverhead
{
    double eccDieFraction = 0.0;   ///< Extra die / data dies (12.5%).
    double parityBankFraction = 0.0; ///< 1 bank / total banks (~1.6%).
    u64 sramParityBytes = 0;       ///< D2+D3 parity rows (34 KB).
    u64 sramRemapBytes = 0;        ///< RRT + BRT (~1 KB).

    /** Total DRAM overhead fraction (~14%). */
    double dramFraction() const
    {
        return eccDieFraction + parityBankFraction;
    }
};

/** Compute the overheads for a geometry (defaults match the paper). */
StorageOverhead computeOverhead(const SystemConfig &cfg,
                                const CitadelOptions &opts = {});

} // namespace citadel

#endif // CITADEL_CITADEL_CITADEL_H
