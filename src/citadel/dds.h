/**
 * @file
 * Dynamic Dual-granularity Sparing (Section VII).
 *
 * Permanent faults corrected by 3DP would otherwise be re-corrected on
 * every access; DDS retires them into spare storage on the metadata
 * die. Exploiting the bimodal size distribution of permanent faults
 * (Fig 17), it spares at two granularities:
 *
 *  - rows, via the Row Remap Table (RRT): up to 4 spare rows per bank,
 *    backed by one fine-granularity spare bank;
 *  - banks, via the Bank Remap Table (BRT): 2 spare banks per stack.
 *
 * A bank accumulating more than 4 faulty rows is declared failed and
 * bank-spared (Section VII-B). Sparing happens at scrub boundaries;
 * faults inside an already-spared bank are absorbed on arrival.
 */

#ifndef CITADEL_CITADEL_DDS_H
#define CITADEL_CITADEL_DDS_H

#include <map>
#include <set>

#include "faults/scheme.h"

namespace citadel {

/** Per-trial sparing statistics (reported by bench/fig18). */
struct DdsStats
{
    u64 rowsSpared = 0;
    u64 banksSpared = 0;
    u64 sparingDenied = 0; ///< Faults left active for lack of budget.
};

/** The DDS decorator; wraps the correction scheme (3DP in Citadel). */
class DdsScheme : public RasScheme
{
  public:
    /**
     * @param inner Correction scheme whose repaired data gets relocated.
     * @param spare_rows_per_bank RRT entries per bank (4 in the paper).
     * @param spare_banks_per_stack BRT-backed spare banks (2 in paper).
     */
    DdsScheme(SchemePtr inner, u32 spare_rows_per_bank = 4,
              u32 spare_banks_per_stack = 2);

    SchemePtr clone() const override
    {
        return std::make_unique<DdsScheme>(inner_->clone(),
                                           spareRowsPerBank_,
                                           spareBanksPerStack_);
    }

    std::string name() const override;
    void reset(const SystemConfig &cfg) override;
    bool absorb(const Fault &fault) override;
    void onScrub(std::vector<Fault> &active) override;
    bool uncorrectable(const std::vector<Fault> &active) const override;

    void
    setEventSink(SchemeEventSink sink) override
    {
        RasScheme::setEventSink(sink);
        inner_->setEventSink(std::move(sink));
    }

    const DdsStats &stats() const { return stats_; }

  private:
    SchemePtr inner_;
    u32 spareRowsPerBank_;
    u32 spareBanksPerStack_;

    std::map<UnitId, u32> rowsUsed_;  ///< unit -> RRT entries used
    std::set<UnitId> sparedBanks_;    ///< units already bank-spared
    std::map<u32, u32> bankSpares_;   ///< stack -> spare banks consumed
    DdsStats stats_;

    UnitId unitKey(StackId stack, ChannelId channel,
                   BankId bank) const;

    /** Try to spare one permanent fault. @return true if retired. */
    bool trySpare(const Fault &f);

    /** Is the fault fully inside one already-spared bank? */
    bool inSparedBank(const Fault &f) const;
};

} // namespace citadel

#endif // CITADEL_CITADEL_DDS_H
