/**
 * @file
 * Bit-true Tri-Dimensional Parity engine.
 *
 * Realizes a miniature single-stack memory with actual byte storage,
 * CRC-32 per line, and literal XOR parity in the three dimensions of
 * Section VI. Faults flip the covered bits; reconstruction runs the
 * same per-column-slot peeling the analytic MultiDimParityScheme
 * models, and verifies recovered data against the golden image.
 *
 * Purpose: (1) executable specification of 3DP correction, (2) ground
 * truth for property tests that cross-check the analytic Monte Carlo
 * evaluator, (3) measurement of reconstruction cost for the
 * micro-benchmarks.
 */

#ifndef CITADEL_CITADEL_PARITY_ENGINE_H
#define CITADEL_CITADEL_PARITY_ENGINE_H

#include <set>
#include <vector>

#include "faults/fault.h"

namespace citadel {

/** Bit-true 3DP over a (small) single-stack geometry. */
class ParityEngine
{
  public:
    /**
     * @param geom Geometry; stacks must be 1. Die count is
     *        channelsPerStack + 1 (data dies plus metadata die), as in
     *        the analytic model.
     * @param seed Seeds the pseudo-random memory image.
     */
    ParityEngine(const StackGeometry &geom, u64 seed = 42);

    /** Flip every bit covered by each fault (stack coordinate 0). */
    void corrupt(const std::vector<Fault> &faults);

    /**
     * CRC-detect corrupt lines and peel-reconstruct using `dims`
     * parity dimensions.
     * @return true iff every corrupt line was reconstructed and the
     *         memory image matches the golden copy again.
     */
    bool reconstruct(u32 dims = 3);

    /** Lines whose CRC currently mismatches. */
    u64 corruptLineCount() const;

    /** Total lines in the modeled stack. */
    u64 totalLines() const;

    /** Restore the pristine image (for reuse across test cases). */
    void restore();

  private:
    StackGeometry geom_;
    u32 dies_;

    std::vector<u8> data_;
    std::vector<u8> golden_;
    std::vector<u32> crc_; ///< Golden CRC-32 per line.

    // Parity storage, computed from the golden image. Modeled as
    // fault-free (the parity bank's own faults appear as one more
    // unknown unit in the analytic model; see DESIGN.md).
    std::vector<u8> parity1_; ///< [row][col][byte] across all units.
    std::vector<u8> parity2_; ///< [die][col][byte] folding all rows.
    std::vector<u8> parity3_; ///< [bank][col][byte] folding dies+rows.

    u64 lineIndex(u32 die, u32 bank, u32 row, u32 col) const;
    u8 *linePtr(std::vector<u8> &buf, u64 line_idx);
    const u8 *linePtr(const std::vector<u8> &buf, u64 line_idx) const;

    u32 computeCrc(u64 line_idx) const;
    bool lineCorrupt(u64 line_idx) const;

    void buildParity();

    /** XOR-reconstruct one line from a parity group. */
    void fixViaD1(u32 die, u32 bank, u32 row, u32 col);
    void fixViaD2(u32 die, u32 bank, u32 row, u32 col);
    void fixViaD3(u32 die, u32 bank, u32 row, u32 col);
};

} // namespace citadel

#endif // CITADEL_CITADEL_PARITY_ENGINE_H
