/**
 * @file
 * Bit-true Tri-Dimensional Parity engine.
 *
 * Realizes a miniature single-stack memory with actual byte storage,
 * CRC-32 per line, and literal XOR parity in the three dimensions of
 * Section VI. Faults flip the covered bits; reconstruction runs the
 * same per-column-slot peeling the analytic MultiDimParityScheme
 * models, and verifies recovered data against the golden image.
 *
 * The Dimension-1 parity store is itself modeled as one more
 * (die, bank) unit — die index parityDie(), bank 0 — with its own byte
 * storage and per-line CRCs, so faults landing in the parity bank can
 * be injected and corrected like any data fault (the D2 fold of the
 * parity unit and the D3 group of bank position 0 cover it).
 *
 * Purpose: (1) executable specification of 3DP correction, (2) ground
 * truth for property tests that cross-check the analytic Monte Carlo
 * evaluator, (3) the storage model behind the live RAS datapath
 * (src/ras), which needs per-line detection and demand-time correction
 * rather than whole-memory reconstruction.
 */

#ifndef CITADEL_CITADEL_PARITY_ENGINE_H
#define CITADEL_CITADEL_PARITY_ENGINE_H

#include <vector>

#include "faults/fault.h"

namespace citadel {

/** Bit-true 3DP over a (small) single-stack geometry. */
class ParityEngine
{
  public:
    /**
     * @param geom Geometry; stacks must be 1. Die count is
     *        channelsPerStack + 1 (data dies plus metadata die), as in
     *        the analytic model.
     * @param seed Seeds the pseudo-random memory image.
     */
    ParityEngine(const StackGeometry &geom, u64 seed = 42);

    /**
     * Flip every bit covered by each fault (stack coordinate 0).
     * Faults whose channel matches parityDie() (with bank 0) corrupt
     * the D1 parity store instead of data.
     */
    void corrupt(const std::vector<Fault> &faults);

    /**
     * CRC-detect corrupt lines and peel-reconstruct using `dims`
     * parity dimensions.
     * @return true iff every corrupt line was reconstructed and the
     *         memory image (data and parity) matches the golden copy.
     */
    bool reconstruct(u32 dims = 3);

    /**
     * Would reconstruct() succeed? Runs the same peel on the corrupt
     * set without touching any bytes (the peel decision depends only on
     * which lines are corrupt, not their contents).
     */
    bool peelable(u32 dims = 3) const;

    /** Lines whose CRC currently mismatches (data + parity store). */
    u64 corruptLineCount() const;

    /** Total data lines in the modeled stack (excludes parity store). */
    u64 totalLines() const;

    /** Restore the pristine image (for reuse across test cases). */
    void restore();

    /** Die index addressing the D1 parity unit in this model. */
    DieId parityDie() const { return DieId{dies_}; }

    /** CRC verdict for one line; die == parityDie() selects parity. */
    bool lineCorruptAt(DieId die, BankId bank, RowId row, ColId col) const;

    /** Byte-exact comparison against the golden image. */
    bool lineMatchesGolden(DieId die, BankId bank, RowId row,
                           ColId col) const;

    /** Outcome of a demand-time single-line correction. */
    struct DemandFix
    {
        bool corrected = false;
        u32 dimUsed = 0;    ///< Dimension that rebuilt the target line.
        u32 groupReads = 0; ///< DRAM line reads consumed while peeling.
        u32 linesFixed = 0; ///< Lines rebuilt (target + dependencies).
    };

    /**
     * Correct one line the way the controller does on a demand read:
     * peel whatever parity groups are solvable, preferring the target,
     * and stop as soon as the target line verifies. Unlike
     * reconstruct() this leaves other corrupt lines corrupt.
     */
    DemandFix correctLine(DieId die, BankId bank, RowId row, ColId col,
                          u32 dims = 3);

  private:
    struct CorruptLine
    {
        DieId die;
        BankId bank;
        RowId row;
        ColId col;

        bool operator==(const CorruptLine &) const = default;
    };

    StackGeometry geom_;
    u32 dies_;

    std::vector<u8> data_;
    std::vector<u8> golden_;
    std::vector<u32> crc_; ///< Golden CRC-32 per data line.

    // Live D1 parity store (one more (die, bank) unit, faultable),
    // with its golden copy and per-line CRCs.
    std::vector<u8> parity1_;
    std::vector<u8> goldenParity1_;
    std::vector<u32> parityCrc_;

    // SRAM parity (Section VI-B), modeled fault-free. parity2_ has one
    // extra segment (index dies_) folding the parity store's rows;
    // parity3_'s bank-0 segment folds the parity store as well, since
    // the parity unit sits at bank position 0.
    std::vector<u8> parity2_; ///< [die][col][byte] folding all rows.
    std::vector<u8> parity3_; ///< [bank][col][byte] folding dies+rows.

    /** Storage offset (engine-local line ordinal) of a data line. */
    u64 lineIndex(DieId die, BankId bank, RowId row, ColId col) const;
    /** D1 parity group of a (row, col) slot; doubles as the ordinal of
     *  the group's line in the parity store. */
    ParityGroupId parityIndex(RowId row, ColId col) const;
    u8 *linePtr(std::vector<u8> &buf, u64 storage_line);
    const u8 *linePtr(const std::vector<u8> &buf, u64 storage_line) const;

    u32 computeCrc(u64 storage_line) const;
    bool lineCorrupt(u64 storage_line) const;
    bool parityLineCorrupt(RowId row, ColId col) const;
    bool isCorrupt(const CorruptLine &l) const;
    void checkCoord(DieId die, BankId bank, RowId row, ColId col) const;

    void buildParity();
    std::vector<CorruptLine> collectCorrupt() const;

    /**
     * Lowest parity dimension (<= dims) able to rebuild `l` given the
     * other corrupt lines; 0 when none can.
     */
    u32 peelDim(const CorruptLine &l,
                const std::vector<CorruptLine> &corrupt, u32 dims) const;
    void fixLine(const CorruptLine &l, u32 dim);
    u32 groupReadCost(const CorruptLine &l, u32 dim) const;

    /** XOR-reconstruct one line from a parity group. */
    void fixViaD1(DieId die, BankId bank, RowId row, ColId col);
    void fixViaD2(DieId die, BankId bank, RowId row, ColId col);
    void fixViaD3(DieId die, BankId bank, RowId row, ColId col);

    // Scratch for the multi-source XOR kernel (xorFoldN): group
    // rebuilds gather every source line pointer here and fold them in
    // one pass, so the accumulator is touched once per rebuild
    // instead of once per source. Reused across fixes; sized by the
    // largest parity group.
    std::vector<const u8 *> foldSrcs_;
    std::vector<u8> accScratch_;
};

} // namespace citadel

#endif // CITADEL_CITADEL_PARITY_ENGINE_H
