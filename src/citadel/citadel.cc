#include "citadel/citadel.h"

#include <memory>

namespace citadel {

SchemePtr
makeCitadel(const CitadelOptions &opts)
{
    SchemePtr scheme =
        std::make_unique<MultiDimParityScheme>(opts.parityDims);
    if (opts.enableDds)
        scheme = std::make_unique<DdsScheme>(
            std::move(scheme), opts.spareRowsPerBank,
            opts.spareBanksPerStack);
    if (opts.enableTsvSwap)
        scheme = std::make_unique<TsvSwapScheme>(
            std::move(scheme), opts.standbyTsvsPerChannel);
    return scheme;
}

SchemePtr
makeParityOnly(u32 dims, bool tsv_swap)
{
    SchemePtr scheme = std::make_unique<MultiDimParityScheme>(dims);
    if (tsv_swap)
        scheme = std::make_unique<TsvSwapScheme>(std::move(scheme));
    return scheme;
}

SchemePtr
makeSymbolBaseline(StripingMode mode, bool tsv_swap)
{
    SchemePtr scheme = std::make_unique<SymbolStripedScheme>(mode);
    if (tsv_swap)
        scheme = std::make_unique<TsvSwapScheme>(std::move(scheme));
    return scheme;
}

SchemePtr
makeBchBaseline()
{
    return std::make_unique<Bch6EC7EDScheme>();
}

SchemePtr
makeRaid5Baseline()
{
    return std::make_unique<Raid5Scheme>();
}

StorageOverhead
computeOverhead(const SystemConfig &cfg, const CitadelOptions &opts)
{
    const StackGeometry &g = cfg.geom;
    StorageOverhead o;

    // One metadata die per channelsPerStack data dies (ECC-DIMM parity).
    o.eccDieFraction = 1.0 / static_cast<double>(g.channelsPerStack);

    // Dimension-1 parity dedicates one bank's worth of addresses per
    // stack (Section VI-A).
    o.parityBankFraction = 1.0 / static_cast<double>(g.banksPerStack());

    if (opts.parityDims >= 2) {
        // One parity row per die (D2) and one per bank position (D3),
        // kept at the memory controller (Section VI-C): 9 + 8 rows of
        // 2KB = 34KB for the baseline geometry.
        u64 rows = cfg.diesPerStack();
        if (opts.parityDims >= 3)
            rows += g.banksPerChannel;
        o.sramParityBytes = rows * g.rowBytes;
    }

    if (opts.enableDds) {
        // RRT: 4 entries per bank, each {valid(1), source row(16),
        // dest row(16)} bits; BRT: 2 entries of {valid(1), failed bank
        // id(6), spare id(1)} bits (Section VII-C).
        const u64 rrt_entries =
            static_cast<u64>(g.banksPerStack()) * opts.spareRowsPerBank;
        const u64 rrt_bits = rrt_entries * (1 + 16 + 16);
        const u64 brt_bits = opts.spareBanksPerStack * (1 + 6 + 1);
        o.sramRemapBytes = (rrt_bits + brt_bits + 7) / 8;
    }
    return o;
}

} // namespace citadel
