#include "citadel/three_d_parity.h"

#include <algorithm>

#include "common/log.h"

namespace citadel {

namespace {

bool
exactEqual(const DimSpec &a, const DimSpec &b)
{
    return a.mask == 0xFFFFFFFFu && b.mask == 0xFFFFFFFFu &&
           a.value == b.value;
}

bool
sameStack(const Fault &a, const Fault &b)
{
    return a.stack.intersects(b.stack);
}

/** Same (die, bank) unit: both faults confined to one identical unit. */
bool
sameUnit(const Fault &a, const Fault &b)
{
    return exactEqual(a.channel, b.channel) && exactEqual(a.bank, b.bank);
}

/** Same (die, bank, row) slice. */
bool
sameSlice(const Fault &a, const Fault &b)
{
    return sameUnit(a, b) && exactEqual(a.row, b.row);
}

} // namespace

MultiDimParityScheme::MultiDimParityScheme(u32 dims) : dims_(dims)
{
    if (dims_ < 1 || dims_ > 3)
        fatal("MultiDimParityScheme: dims must be 1..3 (got %u)", dims_);
}

std::string
MultiDimParityScheme::name() const
{
    switch (dims_) {
      case 1: return "1DP";
      case 2: return "2DP";
      default: return "3DP";
    }
}

bool
MultiDimParityScheme::d1Ok(const Fault &f,
                           const std::vector<Fault> &others) const
{
    // D1 reconstructs per (row, col) group across all (die, bank) units
    // of the stack; f must be the only unknown unit in every group it
    // touches.
    if (!f.singleBank(cfg_->geom))
        return false;
    for (const Fault &g : others) {
        if (!sameStack(f, g) || sameUnit(f, g))
            continue;
        if (f.row.intersects(g.row) && f.col.intersects(g.col))
            return false;
    }
    return true;
}

bool
MultiDimParityScheme::d2Ok(const Fault &f,
                           const std::vector<Fault> &others) const
{
    // D2 folds all rows of a die into one parity row; solvable iff f is
    // confined to a single (bank, row) slice and no other slice of the
    // same die is unknown at an overlapping column slot.
    if (f.banksCovered(cfg_->geom) != 1 || f.rowsCovered(cfg_->geom) != 1)
        return false;
    for (const Fault &g : others) {
        if (!sameStack(f, g) || !exactEqual(f.channel, g.channel))
            continue;
        if (sameSlice(f, g))
            continue;
        if (f.col.intersects(g.col))
            return false;
    }
    return true;
}

bool
MultiDimParityScheme::d3Ok(const Fault &f,
                           const std::vector<Fault> &others) const
{
    // D3 folds all rows of one bank position across dies; solvable iff
    // f is one (die, row) slice of that group and no other slice of the
    // group is unknown at an overlapping column slot.
    if (f.banksCovered(cfg_->geom) != 1 || f.rowsCovered(cfg_->geom) != 1)
        return false;
    for (const Fault &g : others) {
        if (!sameStack(f, g) || !f.bank.intersects(g.bank))
            continue;
        if (sameSlice(f, g))
            continue;
        if (f.col.intersects(g.col))
            return false;
    }
    return true;
}

bool
MultiDimParityScheme::correctable(const Fault &f,
                                  const std::vector<Fault> &others) const
{
    if (d1Ok(f, others))
        return true;
    if (dims_ >= 2 && d2Ok(f, others))
        return true;
    if (dims_ >= 3 && d3Ok(f, others))
        return true;
    return false;
}

bool
MultiDimParityScheme::uncorrectable(const std::vector<Fault> &active) const
{
    // Peeling: repeatedly remove any fault that is reconstructible
    // given the rest; stuck with a non-empty set means data loss.
    std::vector<Fault> remaining(active);
    bool progress = true;
    while (progress && !remaining.empty()) {
        progress = false;
        for (std::size_t i = 0; i < remaining.size(); ++i) {
            std::vector<Fault> others;
            others.reserve(remaining.size() - 1);
            for (std::size_t j = 0; j < remaining.size(); ++j)
                if (j != i)
                    others.push_back(remaining[j]);
            if (correctable(remaining[i], others)) {
                remaining.erase(remaining.begin() + static_cast<long>(i));
                progress = true;
                break;
            }
        }
    }
    return !remaining.empty();
}

} // namespace citadel
