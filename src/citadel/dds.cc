#include "citadel/dds.h"

#include <algorithm>

#include "common/log.h"

namespace citadel {

DdsScheme::DdsScheme(SchemePtr inner, u32 spare_rows_per_bank,
                     u32 spare_banks_per_stack)
    : inner_(std::move(inner)), spareRowsPerBank_(spare_rows_per_bank),
      spareBanksPerStack_(spare_banks_per_stack)
{
    if (!inner_)
        fatal("DdsScheme: inner scheme required");
}

std::string
DdsScheme::name() const
{
    return "DDS+" + inner_->name();
}

void
DdsScheme::reset(const SystemConfig &cfg)
{
    RasScheme::reset(cfg);
    inner_->reset(cfg);
    rowsUsed_.clear();
    sparedBanks_.clear();
    bankSpares_.clear();
    stats_ = DdsStats{};
}

UnitId
DdsScheme::unitKey(StackId stack, ChannelId channel, BankId bank) const
{
    const u32 dies = cfg_->diesPerStack();
    return UnitId{(stack.value() * dies + channel.value()) *
                      cfg_->geom.banksPerChannel +
                  bank.value()};
}

bool
DdsScheme::inSparedBank(const Fault &f) const
{
    if (sparedBanks_.empty())
        return false;
    if (f.channel.mask != 0xFFFFFFFFu || f.bank.mask != 0xFFFFFFFFu ||
        f.stack.mask != 0xFFFFFFFFu)
        return false; // not confined to a single bank
    return sparedBanks_.count(
               unitKey(StackId{f.stack.value}, ChannelId{f.channel.value},
                       BankId{f.bank.value})) != 0;
}

bool
DdsScheme::absorb(const Fault &fault)
{
    // New faults landing in a decommissioned bank are irrelevant: its
    // data lives in the spare bank now.
    if (inSparedBank(fault)) {
        emitEvent(SchemeEvent::Kind::Absorbed, fault);
        return true;
    }
    return inner_->absorb(fault);
}

bool
DdsScheme::trySpare(const Fault &f)
{
    // Only faults confined to a single bank can be redirected by the
    // RRT/BRT (a channel- or multi-bank fault has no single target).
    if (f.stack.mask != 0xFFFFFFFFu || f.channel.mask != 0xFFFFFFFFu ||
        f.bank.mask != 0xFFFFFFFFu)
        return false;
    const u32 stack = f.stack.value;
    const UnitId key = unitKey(StackId{stack}, ChannelId{f.channel.value},
                               BankId{f.bank.value});

    const u64 rows = f.rowsCovered(cfg_->geom);
    const bool row_grain = rows == 1;

    if (row_grain) {
        u32 &used = rowsUsed_[key];
        if (used < spareRowsPerBank_) {
            ++used;
            ++stats_.rowsSpared;
            emitEvent(SchemeEvent::Kind::RowSpared, f);
            return true;
        }
        // RRT exhausted: the paper deems a bank with more than 4 faulty
        // rows failed -> escalate to bank sparing.
    }

    u32 &bank_used = bankSpares_[stack];
    if (bank_used < spareBanksPerStack_) {
        ++bank_used;
        ++stats_.banksSpared;
        sparedBanks_.insert(key);
        emitEvent(SchemeEvent::Kind::BankSpared, f);
        return true;
    }
    return false;
}

void
DdsScheme::onScrub(std::vector<Fault> &active)
{
    // Retire permanent faults into spare storage. 3DP has already
    // reconstructed their data (the scrub pass re-validates CRCs), so
    // sparing is a pure relocation.
    std::erase_if(active, [&](const Fault &f) {
        if (f.transient)
            return false;
        if (inSparedBank(f))
            return true; // unit already decommissioned
        if (trySpare(f))
            return true;
        ++stats_.sparingDenied;
        emitEvent(SchemeEvent::Kind::SparingDenied, f);
        return false;
    });
    // Drop any remaining faults inside banks that were just spared.
    std::erase_if(active,
                  [&](const Fault &f) { return inSparedBank(f); });
    inner_->onScrub(active);
}

bool
DdsScheme::uncorrectable(const std::vector<Fault> &active) const
{
    return inner_->uncorrectable(active);
}

} // namespace citadel
