#include "citadel/remap_tables.h"

#include "common/log.h"

namespace citadel {

RowRemapTable::RowRemapTable(u32 num_banks, u32 entries_per_bank)
    : entriesPerBank_(entries_per_bank), numBanks_(num_banks)
{
    if (num_banks == 0 || entries_per_bank == 0)
        fatal("RowRemapTable: zero-sized table");
    entries_.resize(static_cast<std::size_t>(num_banks) *
                    entries_per_bank);
}

bool
RowRemapTable::insert(UnitId unit, RowId source_row, RowId spare_row)
{
    return insertSlot(unit, source_row, spare_row).has_value();
}

std::optional<MetaSlotId>
RowRemapTable::insertSlot(UnitId unit, RowId source_row, RowId spare_row)
{
    if (unit.value() >= numBanks_)
        panic("RRT: unit %u out of range", unit.value());
    Entry *base = &entries_[static_cast<std::size_t>(unit.value()) *
                            entriesPerBank_];
    for (u32 e = 0; e < entriesPerBank_; ++e) {
        if (base[e].valid && base[e].sourceRow == source_row.value()) {
            base[e].spareRow = spare_row.value(); // refresh mapping
            return MetaSlotId{e};
        }
    }
    for (u32 e = 0; e < entriesPerBank_; ++e) {
        if (!base[e].valid && !base[e].dead) {
            base[e] = {true, false, source_row.value(), spare_row.value()};
            return MetaSlotId{e};
        }
    }
    return std::nullopt;
}

RowRemapTable::Entry &
RowRemapTable::slotAt(UnitId unit, MetaSlotId slot)
{
    if (unit.value() >= numBanks_ || slot.value() >= entriesPerBank_)
        panic("RRT: slot (%u, %u) out of range", unit.value(),
              slot.value());
    return entries_[static_cast<std::size_t>(unit.value()) *
                        entriesPerBank_ +
                    slot.value()];
}

void
RowRemapTable::eraseSlot(UnitId unit, MetaSlotId slot)
{
    Entry &e = slotAt(unit, slot);
    e.valid = false;
}

void
RowRemapTable::killSlot(UnitId unit, MetaSlotId slot)
{
    Entry &e = slotAt(unit, slot);
    e.valid = false;
    e.dead = true;
}

std::optional<RowId>
RowRemapTable::lookup(UnitId unit, RowId row) const
{
    if (unit.value() >= numBanks_)
        panic("RRT: unit %u out of range", unit.value());
    const Entry *base = &entries_[static_cast<std::size_t>(unit.value()) *
                                  entriesPerBank_];
    for (u32 e = 0; e < entriesPerBank_; ++e)
        if (base[e].valid && base[e].sourceRow == row.value())
            return RowId{base[e].spareRow};
    return std::nullopt;
}

u32
RowRemapTable::used(UnitId unit) const
{
    if (unit.value() >= numBanks_)
        panic("RRT: unit %u out of range", unit.value());
    const Entry *base = &entries_[static_cast<std::size_t>(unit.value()) *
                                  entriesPerBank_];
    u32 n = 0;
    for (u32 e = 0; e < entriesPerBank_; ++e)
        n += base[e].valid;
    return n;
}

u64
RowRemapTable::storageBits() const
{
    return static_cast<u64>(entries_.size()) * (1 + 16 + 16);
}

void
RowRemapTable::clear()
{
    for (auto &e : entries_)
        e = Entry{};
}

void
RowRemapTable::serialize(ByteSink &sink) const
{
    sink.putU32(numBanks_);
    sink.putU32(entriesPerBank_);
    for (const auto &e : entries_) {
        sink.putBool(e.valid);
        sink.putBool(e.dead);
        sink.putU32(e.sourceRow);
        sink.putU32(e.spareRow);
    }
}

void
RowRemapTable::deserialize(ByteSource &src)
{
    const u32 banks = src.getU32();
    const u32 per = src.getU32();
    if (banks != numBanks_ || per != entriesPerBank_)
        fatal("RRT checkpoint shape (%u x %u) does not match the "
              "configured table (%u x %u)",
              banks, per, numBanks_, entriesPerBank_);
    for (auto &e : entries_) {
        e.valid = src.getBool();
        e.dead = src.getBool();
        e.sourceRow = src.getU32();
        e.spareRow = src.getU32();
    }
}

BankRemapTable::BankRemapTable(u32 num_entries)
{
    if (num_entries == 0)
        fatal("BankRemapTable: zero-sized table");
    entries_.resize(num_entries);
}

bool
BankRemapTable::insert(UnitId failed_unit, u32 spare_id)
{
    return insertSlot(failed_unit, spare_id).has_value();
}

std::optional<MetaSlotId>
BankRemapTable::insertSlot(UnitId failed_unit, u32 spare_id)
{
    for (u32 i = 0; i < entries_.size(); ++i)
        if (entries_[i].valid &&
            entries_[i].failedBank == failed_unit.value())
            return MetaSlotId{i}; // already decommissioned
    for (u32 i = 0; i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        if (!e.valid && !e.dead) {
            e = {true, false, failed_unit.value(), spare_id};
            return MetaSlotId{i};
        }
    }
    return std::nullopt;
}

void
BankRemapTable::eraseSlot(MetaSlotId slot)
{
    if (slot.value() >= entries_.size())
        panic("BRT: slot %u out of range", slot.value());
    entries_[slot.idx()].valid = false;
}

void
BankRemapTable::killSlot(MetaSlotId slot)
{
    if (slot.value() >= entries_.size())
        panic("BRT: slot %u out of range", slot.value());
    entries_[slot.idx()].valid = false;
    entries_[slot.idx()].dead = true;
}

std::optional<MetaSlotId>
BankRemapTable::slotOf(UnitId unit) const
{
    for (u32 i = 0; i < entries_.size(); ++i)
        if (entries_[i].valid &&
            entries_[i].failedBank == unit.value())
            return MetaSlotId{i};
    return std::nullopt;
}

std::optional<u32>
BankRemapTable::lookup(UnitId unit) const
{
    for (const auto &e : entries_)
        if (e.valid && e.failedBank == unit.value())
            return e.spareId;
    return std::nullopt;
}

u32
BankRemapTable::used() const
{
    u32 n = 0;
    for (const auto &e : entries_)
        n += e.valid;
    return n;
}

u64
BankRemapTable::storageBits() const
{
    return static_cast<u64>(entries_.size()) * (1 + 6 + 1);
}

void
BankRemapTable::clear()
{
    for (auto &e : entries_)
        e = Entry{};
}

void
BankRemapTable::serialize(ByteSink &sink) const
{
    sink.putU32(static_cast<u32>(entries_.size()));
    for (const auto &e : entries_) {
        sink.putBool(e.valid);
        sink.putBool(e.dead);
        sink.putU32(e.failedBank);
        sink.putU32(e.spareId);
    }
}

void
BankRemapTable::deserialize(ByteSource &src)
{
    const u32 n = src.getU32();
    if (n != entries_.size())
        fatal("BRT checkpoint has %u entries; the configured table has "
              "%zu",
              n, entries_.size());
    for (auto &e : entries_) {
        e.valid = src.getBool();
        e.dead = src.getBool();
        e.failedBank = src.getU32();
        e.spareId = src.getU32();
    }
}

} // namespace citadel
