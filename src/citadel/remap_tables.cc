#include "citadel/remap_tables.h"

#include "common/log.h"

namespace citadel {

RowRemapTable::RowRemapTable(u32 num_banks, u32 entries_per_bank)
    : entriesPerBank_(entries_per_bank), numBanks_(num_banks)
{
    if (num_banks == 0 || entries_per_bank == 0)
        fatal("RowRemapTable: zero-sized table");
    entries_.resize(static_cast<std::size_t>(num_banks) *
                    entries_per_bank);
}

bool
RowRemapTable::insert(UnitId unit, RowId source_row, RowId spare_row)
{
    if (unit.value() >= numBanks_)
        panic("RRT: unit %u out of range", unit.value());
    Entry *base = &entries_[static_cast<std::size_t>(unit.value()) *
                            entriesPerBank_];
    for (u32 e = 0; e < entriesPerBank_; ++e) {
        if (base[e].valid && base[e].sourceRow == source_row.value()) {
            base[e].spareRow = spare_row.value(); // refresh mapping
            return true;
        }
    }
    for (u32 e = 0; e < entriesPerBank_; ++e) {
        if (!base[e].valid) {
            base[e] = {true, source_row.value(), spare_row.value()};
            return true;
        }
    }
    return false;
}

std::optional<RowId>
RowRemapTable::lookup(UnitId unit, RowId row) const
{
    if (unit.value() >= numBanks_)
        panic("RRT: unit %u out of range", unit.value());
    const Entry *base = &entries_[static_cast<std::size_t>(unit.value()) *
                                  entriesPerBank_];
    for (u32 e = 0; e < entriesPerBank_; ++e)
        if (base[e].valid && base[e].sourceRow == row.value())
            return RowId{base[e].spareRow};
    return std::nullopt;
}

u32
RowRemapTable::used(UnitId unit) const
{
    if (unit.value() >= numBanks_)
        panic("RRT: unit %u out of range", unit.value());
    const Entry *base = &entries_[static_cast<std::size_t>(unit.value()) *
                                  entriesPerBank_];
    u32 n = 0;
    for (u32 e = 0; e < entriesPerBank_; ++e)
        n += base[e].valid;
    return n;
}

u64
RowRemapTable::storageBits() const
{
    return static_cast<u64>(entries_.size()) * (1 + 16 + 16);
}

void
RowRemapTable::clear()
{
    for (auto &e : entries_)
        e.valid = false;
}

BankRemapTable::BankRemapTable(u32 num_entries)
{
    if (num_entries == 0)
        fatal("BankRemapTable: zero-sized table");
    entries_.resize(num_entries);
}

bool
BankRemapTable::insert(UnitId failed_unit, u32 spare_id)
{
    for (auto &e : entries_)
        if (e.valid && e.failedBank == failed_unit.value())
            return true; // already decommissioned
    for (auto &e : entries_) {
        if (!e.valid) {
            e = {true, failed_unit.value(), spare_id};
            return true;
        }
    }
    return false;
}

std::optional<u32>
BankRemapTable::lookup(UnitId unit) const
{
    for (const auto &e : entries_)
        if (e.valid && e.failedBank == unit.value())
            return e.spareId;
    return std::nullopt;
}

u32
BankRemapTable::used() const
{
    u32 n = 0;
    for (const auto &e : entries_)
        n += e.valid;
    return n;
}

u64
BankRemapTable::storageBits() const
{
    return static_cast<u64>(entries_.size()) * (1 + 6 + 1);
}

void
BankRemapTable::clear()
{
    for (auto &e : entries_)
        e.valid = false;
}

} // namespace citadel
