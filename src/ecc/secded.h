/**
 * @file
 * Hamming SEC-DED (72, 64): the code conventional ECC-DIMMs apply to
 * every 64-bit word (Section I calls these out as ineffective against
 * large-granularity faults -- this codec and its analytic scheme let
 * the benches quantify that claim). Single-error-correct,
 * double-error-detect, with an overall parity bit.
 */

#ifndef CITADEL_ECC_SECDED_H
#define CITADEL_ECC_SECDED_H

#include "common/types.h"
#include "faults/scheme.h"

namespace citadel {

/** Bit-true SEC-DED codec over 64-bit words. */
class Secded
{
  public:
    /** Decode outcome. */
    enum class Outcome
    {
        Clean,          ///< No error detected.
        Corrected,      ///< Single-bit error corrected.
        DetectedDouble, ///< Double-bit error detected (uncorrectable).
        Miscorrect      ///< >2 errors aliased (silent in hardware;
                        ///< reported here because tests know the truth).
    };

    /** Compute the 8 check bits for a 64-bit data word. */
    static u8 encode(u64 data);

    /**
     * Decode a (data, check) pair in place.
     * @param data Possibly corrupted data word; corrected on return
     *             when the outcome is Corrected.
     * @param check Possibly corrupted check bits.
     */
    static Outcome decode(u64 &data, u8 check);

  private:
    /** Syndrome over the 72-bit codeword (bit 71..64 = check). */
    static u8 syndrome(u64 data, u8 check);
    static bool overallParity(u64 data, u8 check);
};

/**
 * Analytic Monte Carlo scheme: ECC-DIMM-style SEC-DED per 64-bit word
 * with the Same-Bank mapping. Corrects any fault confined to one bit
 * per word; everything larger (word, column, row, bank, TSV) is data
 * loss -- the paper's motivating observation.
 */
class SecdedScheme : public RasScheme
{
  public:
    std::string name() const override { return "SECDED-72-64"; }

    SchemePtr clone() const override
    {
        return std::make_unique<SecdedScheme>();
    }

    bool uncorrectable(const std::vector<Fault> &active) const override;
};

} // namespace citadel

#endif // CITADEL_ECC_SECDED_H
