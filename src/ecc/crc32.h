/**
 * @file
 * CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320). Citadel tags
 * every 512-bit line with CRC-32 computed over address and data
 * (Section V-C.2) to detect errors before 3DP correction. The library
 * provides a slice-by-8 production implementation (8 message bytes per
 * iteration; the live RAS datapath CRCs every demand read, so this is
 * a genuinely hot kernel), the classic one-table byte-at-a-time
 * variant kept as the measured perf baseline, and a bitwise reference
 * used in tests.
 */

#ifndef CITADEL_ECC_CRC32_H
#define CITADEL_ECC_CRC32_H

#include <cstddef>
#include <span>

#include "common/types.h"

namespace citadel {

/** Table-driven CRC-32. */
class Crc32
{
  public:
    /** CRC of a byte buffer (init 0xFFFFFFFF, final xor 0xFFFFFFFF). */
    static u32 compute(std::span<const u8> data);

    /** Incremental interface (slice-by-8 hot path). */
    static u32 begin() { return 0xFFFFFFFFu; }
    static u32 update(u32 state, std::span<const u8> data);
    static u32 update(u32 state, u64 value);
    static u32 finish(u32 state) { return state ^ 0xFFFFFFFFu; }

    /**
     * One-table byte-at-a-time update: the pre-slicing implementation,
     * kept as the baseline bench/perf_trajectory measures the
     * slice-by-8 path against (and as a mid-speed cross-check between
     * `update` and `referenceCompute` in tests).
     */
    static u32 updateBytewise(u32 state, std::span<const u8> data);

    /**
     * CRC over a line's address and payload, as Citadel stores in the
     * per-line metadata: mixing the address detects address-TSV faults
     * that silently return the wrong row (Section V-C.2).
     */
    static u32 lineCrc(u64 address, std::span<const u8> payload);

    /** Slow bitwise reference implementation (tests only). */
    static u32 referenceCompute(std::span<const u8> data);
};

} // namespace citadel

#endif // CITADEL_ECC_CRC32_H
