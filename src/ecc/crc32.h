/**
 * @file
 * CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320). Citadel tags
 * every 512-bit line with CRC-32 computed over address and data
 * (Section V-C.2) to detect errors before 3DP correction. The library
 * provides both a table-driven production implementation and a bitwise
 * reference used in tests.
 */

#ifndef CITADEL_ECC_CRC32_H
#define CITADEL_ECC_CRC32_H

#include <cstddef>
#include <span>

#include "common/types.h"

namespace citadel {

/** Table-driven CRC-32. */
class Crc32
{
  public:
    /** CRC of a byte buffer (init 0xFFFFFFFF, final xor 0xFFFFFFFF). */
    static u32 compute(std::span<const u8> data);

    /** Incremental interface. */
    static u32 begin() { return 0xFFFFFFFFu; }
    static u32 update(u32 state, std::span<const u8> data);
    static u32 update(u32 state, u64 value);
    static u32 finish(u32 state) { return state ^ 0xFFFFFFFFu; }

    /**
     * CRC over a line's address and payload, as Citadel stores in the
     * per-line metadata: mixing the address detects address-TSV faults
     * that silently return the wrong row (Section V-C.2).
     */
    static u32 lineCrc(u64 address, std::span<const u8> payload);

    /** Slow bitwise reference implementation (tests only). */
    static u32 referenceCompute(std::span<const u8> data);
};

} // namespace citadel

#endif // CITADEL_ECC_CRC32_H
