/**
 * @file
 * CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320). Citadel tags
 * every 512-bit line with CRC-32 computed over address and data
 * (Section V-C.2) to detect errors before 3DP correction. The library
 * provides a slice-by-8 production implementation (8 message bytes per
 * iteration; the live RAS datapath CRCs every demand read, so this is
 * a genuinely hot kernel), the classic one-table byte-at-a-time
 * variant kept as the measured perf baseline, and a bitwise reference
 * used in tests.
 *
 * Where the CPU has carry-less multiply (x86-64 PCLMULQDQ) or CRC32
 * instructions (ARMv8 +crc, IEEE polynomial), bulk updates take a
 * hardware-folding path selected once at startup into a function
 * pointer (common/kernels.h, DESIGN.md section 14). All paths are
 * value-pure over the same bytes and pinned against the bitwise
 * reference, so which one runs never changes a result.
 */

#ifndef CITADEL_ECC_CRC32_H
#define CITADEL_ECC_CRC32_H

#include <cstddef>
#include <span>

#include "common/types.h"

namespace citadel {

/** Table-driven CRC-32. */
class Crc32
{
  public:
    /** CRC of a byte buffer (init 0xFFFFFFFF, final xor 0xFFFFFFFF). */
    static u32 compute(std::span<const u8> data);

    /** Incremental interface; bulk spans dispatch to the fastest
     *  available implementation (slice8 / PCLMUL / ARMv8 CRC). */
    static u32 begin() { return 0xFFFFFFFFu; }
    static u32 update(u32 state, std::span<const u8> data);
    static u32 update(u32 state, u64 value);
    static u32 finish(u32 state) { return state ^ 0xFFFFFFFFu; }

    /** Portable slicing-by-8 update: the proof baseline `update`
     *  dispatches to under CITADEL_KERNEL=scalar (or when the CPU has
     *  no CRC hardware), callable directly for benchmarking. */
    static u32 updateSlice8(u32 state, std::span<const u8> data);

    /** Hardware-folding update; falls back to slice8 byte-for-byte
     *  when hwAvailable() is false, so it is always safe to call. */
    static u32 updateHw(u32 state, std::span<const u8> data);

    /** True when this CPU offers a hardware CRC path. */
    static bool hwAvailable();

    /** Name of the path bulk `update` currently dispatches to:
     *  "slice8", "pclmul", or "armv8-crc" (bench reporting). */
    static const char *activePathName();

    /**
     * One-table byte-at-a-time update: the pre-slicing implementation,
     * kept as the baseline bench/perf_trajectory measures the
     * slice-by-8 path against (and as a mid-speed cross-check between
     * `update` and `referenceCompute` in tests).
     */
    static u32 updateBytewise(u32 state, std::span<const u8> data);

    /**
     * CRC over a line's address and payload, as Citadel stores in the
     * per-line metadata: mixing the address detects address-TSV faults
     * that silently return the wrong row (Section V-C.2).
     */
    static u32 lineCrc(u64 address, std::span<const u8> payload);

    /** Slow bitwise reference implementation (tests only). */
    static u32 referenceCompute(std::span<const u8> data);
};

} // namespace citadel

#endif // CITADEL_ECC_CRC32_H
