/**
 * @file
 * Analytic Monte Carlo evaluators for the paper's baseline protection
 * schemes:
 *
 *  - SymbolStripedScheme: the "strong 8-bit symbol-based code (similar
 *    to ChipKill)" under the three data mappings of Section II-D. The
 *    code corrects one faulty symbol *position* per codeword, where a
 *    position is a symbol slot (Same-Bank), a bank (Across-Banks) or a
 *    channel (Across-Channels).
 *  - Bch6EC7EDScheme: 6-error-correct / 7-error-detect BCH per 64B
 *    line (Section VIII-F, Fig 19).
 *  - Raid5Scheme: RAID-5-style rotated parity across the data channels
 *    with CRC-based error location (Section VIII-F, Fig 19).
 *
 * Evaluators answer "does the concurrent fault set contain a pattern
 * the code cannot correct?" over FaultRange algebra; the bit-true
 * Reed-Solomon codec in ecc/reed_solomon.h validates the symbol-code
 * abstraction in tests.
 */

#ifndef CITADEL_ECC_BASELINE_SCHEMES_H
#define CITADEL_ECC_BASELINE_SCHEMES_H

#include "faults/scheme.h"
#include "stack/address.h"

namespace citadel {

/** ChipKill-like single-symbol-position-correct code. */
class SymbolStripedScheme : public RasScheme
{
  public:
    /**
     * @param mode Data mapping for the cache line.
     * @param symbol_bits Symbol width (8 in the paper).
     */
    explicit SymbolStripedScheme(StripingMode mode, u32 symbol_bits = 8);

    SchemePtr clone() const override
    {
        return std::make_unique<SymbolStripedScheme>(mode_, symbolBits_);
    }

    std::string name() const override;
    bool uncorrectable(const std::vector<Fault> &active) const override;

    StripingMode mode() const { return mode_; }

  private:
    StripingMode mode_;
    u32 symbolBits_;

    bool uncSameBank(const std::vector<Fault> &active) const;
    bool uncAcrossBanks(const std::vector<Fault> &active) const;
    bool uncAcrossChannels(const std::vector<Fault> &active) const;

    /** Symbol slots of one line touched by a fault (Same-Bank mapping). */
    u64 symbolsPerLine(const Fault &f) const;
};

/** BCH 6EC7ED per 64-byte line; no striping (Same-Bank mapping). */
class Bch6EC7EDScheme : public RasScheme
{
  public:
    std::string name() const override { return "BCH-6EC7ED"; }

    SchemePtr clone() const override
    {
        return std::make_unique<Bch6EC7EDScheme>();
    }

    bool uncorrectable(const std::vector<Fault> &active) const override;

  private:
    /** Worst-case corrupted bits within a single line. */
    u64 worstBitsPerLine(const Fault &f) const;
};

/**
 * RAID-5 over the data channels: one channel's worth of each stripe is
 * parity; CRC identifies the bad channel, parity reconstructs it.
 * Fails when two faults in different channels of a stack overlap in
 * (bank, row, col).
 */
class Raid5Scheme : public RasScheme
{
  public:
    std::string name() const override { return "RAID-5"; }

    SchemePtr clone() const override
    {
        return std::make_unique<Raid5Scheme>();
    }

    bool uncorrectable(const std::vector<Fault> &active) const override;
};

} // namespace citadel

#endif // CITADEL_ECC_BASELINE_SCHEMES_H
