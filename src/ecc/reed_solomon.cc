#include "ecc/reed_solomon.h"

#include <algorithm>

#include "common/log.h"
#include "ecc/gf256.h"

namespace citadel {

namespace {

// Polynomials are coefficient vectors with index 0 = highest degree
// (first transmitted symbol), matching the systematic layout
// [data..., parity...].

std::vector<u8>
polyMul(const std::vector<u8> &a, const std::vector<u8> &b)
{
    std::vector<u8> r(a.size() + b.size() - 1, 0);
    for (std::size_t i = 0; i < a.size(); ++i)
        for (std::size_t j = 0; j < b.size(); ++j)
            r[i + j] ^= Gf256::mul(a[i], b[j]);
    return r;
}

u8
polyEval(const std::vector<u8> &p, u8 x)
{
    u8 y = 0;
    for (u8 c : p)
        y = Gf256::add(Gf256::mul(y, x), c);
    return y;
}

std::vector<u8>
polyScale(const std::vector<u8> &p, u8 s)
{
    std::vector<u8> r(p.size());
    for (std::size_t i = 0; i < p.size(); ++i)
        r[i] = Gf256::mul(p[i], s);
    return r;
}

std::vector<u8>
polyAdd(const std::vector<u8> &a, const std::vector<u8> &b)
{
    std::vector<u8> r(std::max(a.size(), b.size()), 0);
    for (std::size_t i = 0; i < a.size(); ++i)
        r[i + r.size() - a.size()] ^= a[i];
    for (std::size_t i = 0; i < b.size(); ++i)
        r[i + r.size() - b.size()] ^= b[i];
    return r;
}

void
trimLeadingZeros(std::vector<u8> &p)
{
    std::size_t i = 0;
    while (i + 1 < p.size() && p[i] == 0)
        ++i;
    p.erase(p.begin(), p.begin() + static_cast<long>(i));
}

} // namespace

RsCode::RsCode(u32 n, u32 k) : n_(n), k_(k)
{
    if (n_ > 255 || k_ == 0 || k_ >= n_)
        fatal("RsCode: invalid (n=%u, k=%u)", n_, k_);
    gen_ = {1};
    for (u32 i = 0; i < n_ - k_; ++i)
        gen_ = polyMul(gen_, {1, Gf256::alphaPow(i)});
}

std::vector<u8>
RsCode::encode(const std::vector<u8> &data) const
{
    if (data.size() != k_)
        panic("RsCode::encode: got %zu symbols, want %u", data.size(), k_);
    // Systematic: remainder of data * x^(n-k) divided by gen.
    std::vector<u8> msg(data);
    msg.resize(n_, 0);
    for (u32 i = 0; i < k_; ++i) {
        const u8 coef = msg[i];
        if (coef == 0)
            continue;
        for (std::size_t j = 1; j < gen_.size(); ++j)
            msg[i + j] ^= Gf256::mul(gen_[j], coef);
    }
    std::vector<u8> out(data);
    out.insert(out.end(), msg.begin() + k_, msg.end());
    return out;
}

std::vector<u8>
RsCode::syndromes(const std::vector<u8> &cw) const
{
    std::vector<u8> s(n_ - k_);
    for (u32 i = 0; i < n_ - k_; ++i)
        s[i] = polyEval(cw, Gf256::alphaPow(i));
    return s;
}

bool
RsCode::isCodeword(const std::vector<u8> &cw) const
{
    if (cw.size() != n_)
        return false;
    const auto s = syndromes(cw);
    return std::all_of(s.begin(), s.end(), [](u8 v) { return v == 0; });
}

std::optional<std::vector<u8>>
RsCode::decode(std::vector<u8> cw, const std::vector<u32> &erasures) const
{
    if (cw.size() != n_)
        return std::nullopt;
    if (erasures.size() > n_ - k_)
        return std::nullopt;

    auto synd = syndromes(cw);
    const bool clean =
        std::all_of(synd.begin(), synd.end(), [](u8 v) { return v == 0; });
    if (clean)
        return std::vector<u8>(cw.begin(), cw.begin() + k_);

    // Erasure locator from known positions. Positions are indices into
    // the codeword; the corresponding locator root uses alpha^(n-1-pos).
    std::vector<u8> erase_loc = {1};
    for (u32 pos : erasures) {
        if (pos >= n_)
            return std::nullopt;
        erase_loc = polyMul(erase_loc, {Gf256::alphaPow(n_ - 1 - pos), 1});
    }

    // Modified syndromes (Forney syndromes) fold erasures in, then
    // Berlekamp-Massey finds the error locator for remaining errors.
    // Work with syndrome polynomial order s[0] = S_0.
    std::vector<u8> forney(synd);
    for (u32 pos : erasures) {
        const u8 x = Gf256::alphaPow(n_ - 1 - pos);
        for (std::size_t j = 0; j + 1 < forney.size(); ++j)
            forney[j] = Gf256::add(Gf256::mul(forney[j], x), forney[j + 1]);
        forney.pop_back();
    }

    // Berlekamp-Massey on forney syndromes (coeff order: index = j).
    std::vector<u8> err_loc = {1};
    std::vector<u8> old_loc = {1};
    for (std::size_t i = 0; i < forney.size(); ++i) {
        old_loc.push_back(0);
        u8 delta = forney[i];
        for (std::size_t j = 1; j < err_loc.size(); ++j)
            delta ^= Gf256::mul(err_loc[err_loc.size() - 1 - j],
                                forney[i - j]);
        if (delta != 0) {
            if (old_loc.size() > err_loc.size()) {
                auto new_loc = polyScale(old_loc, delta);
                old_loc = polyScale(err_loc, Gf256::inv(delta));
                err_loc = new_loc;
            }
            err_loc = polyAdd(err_loc, polyScale(old_loc, delta));
        }
    }
    trimLeadingZeros(err_loc);
    const std::size_t num_errors = err_loc.size() - 1;
    if (2 * num_errors + erasures.size() > n_ - k_)
        return std::nullopt;

    // Combined locator: errors * erasures.
    std::vector<u8> loc = polyMul(err_loc, erase_loc);
    const std::size_t total = loc.size() - 1;

    // Chien search: roots of the locator give error positions.
    std::vector<u32> positions;
    for (u32 i = 0; i < n_; ++i) {
        if (polyEval(loc, Gf256::inv(Gf256::alphaPow(i))) == 0)
            positions.push_back(n_ - 1 - i);
    }
    if (positions.size() != total)
        return std::nullopt; // locator does not split -> uncorrectable

    // Forney algorithm for magnitudes.
    // Omega = (synd_reversed * loc) mod x^(n-k).
    std::vector<u8> synd_rev(synd.rbegin(), synd.rend());
    std::vector<u8> omega = polyMul(synd_rev, loc);
    if (omega.size() > n_ - k_)
        omega.erase(omega.begin(),
                    omega.end() - static_cast<long>(n_ - k_));

    for (u32 pos : positions) {
        const u8 x = Gf256::alphaPow(n_ - 1 - pos);
        const u8 x_inv = Gf256::inv(x);
        // loc' (formal derivative) evaluated at x_inv.
        u8 denom = 0;
        for (std::size_t j = 0; j + 1 < loc.size(); ++j) {
            const std::size_t deg = loc.size() - 1 - j;
            if (deg % 2 == 1)
                denom ^= Gf256::mul(loc[j], Gf256::pow(x_inv, static_cast<u32>(deg - 1)));
        }
        if (denom == 0)
            return std::nullopt;
        const u8 num = Gf256::mul(polyEval(omega, x_inv), x);
        cw[pos] ^= Gf256::div(num, denom);
    }

    if (!isCodeword(cw))
        return std::nullopt;
    return std::vector<u8>(cw.begin(), cw.begin() + k_);
}

} // namespace citadel
