#include "ecc/crc32.h"

#include <array>

namespace citadel {

namespace {

constexpr u32 kPoly = 0xEDB88320u;

/**
 * Slicing tables: kTables[0] is the classic byte-at-a-time table;
 * kTables[k][i] advances the CRC by k additional zero bytes after
 * byte i, which lets the hot loop fold 8 message bytes with 8 table
 * lookups and a single recombination (Intel's "slicing-by-8").
 */
constexpr std::array<std::array<u32, 256>, 8>
makeTables()
{
    std::array<std::array<u32, 256>, 8> t{};
    for (u32 i = 0; i < 256; ++i) {
        u32 c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
        t[0][i] = c;
    }
    for (u32 k = 1; k < 8; ++k)
        for (u32 i = 0; i < 256; ++i)
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    return t;
}

constexpr auto kTables = makeTables();

/** Little-endian 32-bit load from possibly unaligned bytes. */
inline u32
loadLe32(const u8 *p)
{
    return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
           (static_cast<u32>(p[2]) << 16) |
           (static_cast<u32>(p[3]) << 24);
}

} // namespace

u32
Crc32::update(u32 state, std::span<const u8> data)
{
    const u8 *p = data.data();
    std::size_t n = data.size();
    while (n >= 8) {
        const u32 lo = loadLe32(p) ^ state;
        const u32 hi = loadLe32(p + 4);
        state = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
                kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
                kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
                kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
        p += 8;
        n -= 8;
    }
    while (n--) {
        state = kTables[0][(state ^ *p++) & 0xFFu] ^ (state >> 8);
    }
    return state;
}

u32
Crc32::updateBytewise(u32 state, std::span<const u8> data)
{
    for (u8 b : data)
        state = kTables[0][(state ^ b) & 0xFFu] ^ (state >> 8);
    return state;
}

u32
Crc32::update(u32 state, u64 value)
{
    const u32 lo = (static_cast<u32>(value) & 0xFFFFFFFFu) ^ state;
    const u32 hi = static_cast<u32>(value >> 32);
    return kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
           kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
           kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
           kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
}

u32
Crc32::compute(std::span<const u8> data)
{
    return finish(update(begin(), data));
}

u32
Crc32::lineCrc(u64 address, std::span<const u8> payload)
{
    u32 s = begin();
    s = update(s, address);
    s = update(s, payload);
    return finish(s);
}

u32
Crc32::referenceCompute(std::span<const u8> data)
{
    u32 crc = 0xFFFFFFFFu;
    for (u8 byte : data) {
        crc ^= byte;
        for (int k = 0; k < 8; ++k)
            crc = (crc & 1) ? (kPoly ^ (crc >> 1)) : (crc >> 1);
    }
    return crc ^ 0xFFFFFFFFu;
}

} // namespace citadel
