#include "ecc/crc32.h"

#include <array>

namespace citadel {

namespace {

constexpr u32 kPoly = 0xEDB88320u;

constexpr std::array<u32, 256>
makeTable()
{
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
        u32 c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
        t[i] = c;
    }
    return t;
}

constexpr auto kTable = makeTable();

} // namespace

u32
Crc32::update(u32 state, std::span<const u8> data)
{
    for (u8 b : data)
        state = kTable[(state ^ b) & 0xFF] ^ (state >> 8);
    return state;
}

u32
Crc32::update(u32 state, u64 value)
{
    for (int i = 0; i < 8; ++i) {
        const u8 b = static_cast<u8>(value >> (8 * i));
        state = kTable[(state ^ b) & 0xFF] ^ (state >> 8);
    }
    return state;
}

u32
Crc32::compute(std::span<const u8> data)
{
    return finish(update(begin(), data));
}

u32
Crc32::lineCrc(u64 address, std::span<const u8> payload)
{
    u32 s = begin();
    s = update(s, address);
    s = update(s, payload);
    return finish(s);
}

u32
Crc32::referenceCompute(std::span<const u8> data)
{
    u32 crc = 0xFFFFFFFFu;
    for (u8 byte : data) {
        crc ^= byte;
        for (int k = 0; k < 8; ++k)
            crc = (crc & 1) ? (kPoly ^ (crc >> 1)) : (crc >> 1);
    }
    return crc ^ 0xFFFFFFFFu;
}

} // namespace citadel
