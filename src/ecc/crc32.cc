#include "ecc/crc32.h"

#include <array>

#include "common/kernels.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CITADEL_CRC32_PCLMUL 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__linux__) &&                     \
    (defined(__GNUC__) || defined(__clang__))
#define CITADEL_CRC32_ARM 1
#include <arm_acle.h>
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1UL << 7)
#endif
#endif

namespace citadel {

namespace {

constexpr u32 kPoly = 0xEDB88320u;

/**
 * Slicing tables: kTables[0] is the classic byte-at-a-time table;
 * kTables[k][i] advances the CRC by k additional zero bytes after
 * byte i, which lets the hot loop fold 8 message bytes with 8 table
 * lookups and a single recombination (Intel's "slicing-by-8").
 */
constexpr std::array<std::array<u32, 256>, 8>
makeTables()
{
    std::array<std::array<u32, 256>, 8> t{};
    for (u32 i = 0; i < 256; ++i) {
        u32 c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
        t[0][i] = c;
    }
    for (u32 k = 1; k < 8; ++k)
        for (u32 i = 0; i < 256; ++i)
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    return t;
}

constexpr auto kTables = makeTables();

/** Little-endian 32-bit load from possibly unaligned bytes. */
inline u32
loadLe32(const u8 *p)
{
    return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
           (static_cast<u32>(p[2]) << 16) |
           (static_cast<u32>(p[3]) << 24);
}

/** Portable slicing-by-8 core; the proof baseline for the hw paths. */
u32
slice8Update(u32 state, const u8 *p, std::size_t n)
{
    while (n >= 8) {
        const u32 lo = loadLe32(p) ^ state;
        const u32 hi = loadLe32(p + 4);
        state = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
                kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
                kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
                kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
        p += 8;
        n -= 8;
    }
    while (n--) {
        state = kTables[0][(state ^ *p++) & 0xFFu] ^ (state >> 8);
    }
    return state;
}

#if defined(CITADEL_CRC32_PCLMUL)

/**
 * PCLMULQDQ folding (reflected domain). Constants are
 * rev32(x^t mod P) << 1 for the generator P = 0x104C11DB7; in this
 * encoding clmul(rev64(h), K_t) lands rev128(h * x^t) in the 128-bit
 * lane, so folding the accumulator's low qword (the high-degree half
 * of the chunk polynomial, degree offset 64) with K_{t+64} and the
 * high qword with K_t multiplies the whole chunk by exactly x^t:
 *
 *   fold-by-4 (t = 512 bits / 64-byte stride):
 *     K_544 = 0x154442bd4 (lo lane) / K_480 = 0x1c6e41596 (hi lane)
 *   fold-by-1 (t = 128 bits / 16-byte stride):
 *     K_160 = 0x1751997d0 (lo lane) / K_96 = 0xccaa009e (hi lane)
 *
 * (The +-32 in the exponents absorbs the one-lane alignment of the
 * 33-bit constants; the values match the Linux kernel's
 * crc32-pclmul tables and were re-derived from P directly.)
 *
 * Each fold step therefore multiplies the 128-bit accumulator by
 * x^t mod-P-congruently and XORs in the next data block, so the
 * accumulator stays congruent (mod P) to the message prefix processed
 * so far, expressed in the same reflected byte order the data blocks
 * use. Instead of a Barrett reduction we finish by table-updating
 * from state 0 over the accumulator's 16 bytes and then over the
 * unfolded tail — the congruence guarantees this lands on exactly
 * the state the portable slice8 path computes, which the oracle
 * tests pin on every length and alignment.
 */

__attribute__((target("pclmul"))) inline __m128i
load128(const u8 *p)
{
    return _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
}

__attribute__((target("pclmul"))) inline __m128i
foldStep(__m128i x, __m128i k)
{
    return _mm_xor_si128(_mm_clmulepi64_si128(x, k, 0x00),
                         _mm_clmulepi64_si128(x, k, 0x11));
}

__attribute__((target("pclmul"))) u32
pclmulUpdate(u32 state, const u8 *p, std::size_t n)
{
    if (n < 64)
        return slice8Update(state, p, n);
    const __m128i kFold512 =
        _mm_set_epi64x(0x1c6e41596LL, 0x154442bd4LL);
    const __m128i kFold128 =
        _mm_set_epi64x(0xccaa009eLL, 0x1751997d0LL);
    __m128i x0 = _mm_xor_si128(load128(p),
                               _mm_cvtsi32_si128(static_cast<int>(state)));
    __m128i x1 = load128(p + 16);
    __m128i x2 = load128(p + 32);
    __m128i x3 = load128(p + 48);
    p += 64;
    n -= 64;
    while (n >= 64) {
        x0 = _mm_xor_si128(foldStep(x0, kFold512), load128(p));
        x1 = _mm_xor_si128(foldStep(x1, kFold512), load128(p + 16));
        x2 = _mm_xor_si128(foldStep(x2, kFold512), load128(p + 32));
        x3 = _mm_xor_si128(foldStep(x3, kFold512), load128(p + 48));
        p += 64;
        n -= 64;
    }
    __m128i acc = x0;
    acc = _mm_xor_si128(foldStep(acc, kFold128), x1);
    acc = _mm_xor_si128(foldStep(acc, kFold128), x2);
    acc = _mm_xor_si128(foldStep(acc, kFold128), x3);
    while (n >= 16) {
        acc = _mm_xor_si128(foldStep(acc, kFold128), load128(p));
        p += 16;
        n -= 16;
    }
    u8 accBytes[16];
    _mm_storeu_si128(reinterpret_cast<__m128i *>(accBytes), acc);
    const u32 folded = slice8Update(0, accBytes, sizeof(accBytes));
    return slice8Update(folded, p, n);
}

bool
probeHw()
{
    return __builtin_cpu_supports("pclmul") != 0;
}

constexpr const char *kHwPathName = "pclmul";
constexpr auto hwUpdate = &pclmulUpdate;

#elif defined(CITADEL_CRC32_ARM)

/** ARMv8 CRC32 extension computes the IEEE (0xEDB88320) polynomial
 *  directly, 8 message bytes per instruction. */
__attribute__((target("+crc"))) u32
armCrcUpdate(u32 state, const u8 *p, std::size_t n)
{
    while (n >= 8) {
        u64 v;
        __builtin_memcpy(&v, p, sizeof(v));
        state = __crc32d(state, v);
        p += 8;
        n -= 8;
    }
    if (n >= 4) {
        u32 v;
        __builtin_memcpy(&v, p, sizeof(v));
        state = __crc32w(state, v);
        p += 4;
        n -= 4;
    }
    while (n--)
        state = __crc32b(state, *p++);
    return state;
}

bool
probeHw()
{
    return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
}

constexpr const char *kHwPathName = "armv8-crc";
constexpr auto hwUpdate = &armCrcUpdate;

#else

bool
probeHw()
{
    return false;
}

constexpr const char *kHwPathName = "slice8";
constexpr auto hwUpdate = &slice8Update;

#endif

using UpdateFn = u32 (*)(u32, const u8 *, std::size_t);

/** Resolve the bulk-update path for the active kernel mode: Scalar
 *  forces slice8; Vector/Auto take the hw path when the CPU has one.
 *  Every candidate is value-pure over the same bytes (DESIGN.md
 *  section 14), so the choice affects speed only. */
UpdateFn
resolveUpdate(const char **pathName)
{
    const bool hw =
        activeKernelMode() != KernelMode::Scalar && Crc32::hwAvailable();
    *pathName = hw ? kHwPathName : "slice8";
    return hw ? hwUpdate : &slice8Update;
}

/** Dispatch cache, thread_local so MC workers never race on it; the
 *  epoch check makes test-time setKernelMode() switches take effect
 *  on the next call. */
struct Dispatch
{
    UpdateFn fn = nullptr;
    const char *path = "slice8";
    u64 epoch = ~u64{0};
};

Dispatch &
dispatch()
{
    thread_local Dispatch d;
    const u64 epoch = kernelModeEpoch();
    if (d.fn == nullptr || d.epoch != epoch) {
        d.fn = resolveUpdate(&d.path);
        d.epoch = epoch;
    }
    return d;
}

} // namespace

u32
Crc32::update(u32 state, std::span<const u8> data)
{
    return dispatch().fn(state, data.data(), data.size());
}

u32
Crc32::updateSlice8(u32 state, std::span<const u8> data)
{
    return slice8Update(state, data.data(), data.size());
}

u32
Crc32::updateHw(u32 state, std::span<const u8> data)
{
    if (!hwAvailable())
        return slice8Update(state, data.data(), data.size());
    return hwUpdate(state, data.data(), data.size());
}

bool
Crc32::hwAvailable()
{
    static const bool avail = probeHw();
    return avail;
}

const char *
Crc32::activePathName()
{
    return dispatch().path;
}

u32
Crc32::updateBytewise(u32 state, std::span<const u8> data)
{
    for (u8 b : data)
        state = kTables[0][(state ^ b) & 0xFFu] ^ (state >> 8);
    return state;
}

u32
Crc32::update(u32 state, u64 value)
{
    const u32 lo = (static_cast<u32>(value) & 0xFFFFFFFFu) ^ state;
    const u32 hi = static_cast<u32>(value >> 32);
    return kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
           kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
           kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
           kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
}

u32
Crc32::compute(std::span<const u8> data)
{
    return finish(update(begin(), data));
}

u32
Crc32::lineCrc(u64 address, std::span<const u8> payload)
{
    u32 s = begin();
    s = update(s, address);
    s = update(s, payload);
    return finish(s);
}

u32
Crc32::referenceCompute(std::span<const u8> data)
{
    u32 crc = 0xFFFFFFFFu;
    for (u8 byte : data) {
        crc ^= byte;
        for (int k = 0; k < 8; ++k)
            crc = (crc & 1) ? (kPoly ^ (crc >> 1)) : (crc >> 1);
    }
    return crc ^ 0xFFFFFFFFu;
}

} // namespace citadel
