#include "ecc/gf256.h"

#include <array>

#include "common/log.h"

namespace citadel {

namespace {

struct Tables
{
    std::array<u8, 512> exp{};
    std::array<u8, 256> log{};

    Tables()
    {
        u32 x = 1;
        for (u32 i = 0; i < 255; ++i) {
            exp[i] = static_cast<u8>(x);
            log[x] = static_cast<u8>(i);
            x <<= 1;
            if (x & 0x100)
                x ^= 0x11D;
        }
        for (u32 i = 255; i < 512; ++i)
            exp[i] = exp[i - 255];
    }
};

const Tables &
tables()
{
    static const Tables t;
    return t;
}

} // namespace

u8
Gf256::mul(u8 a, u8 b)
{
    if (a == 0 || b == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[t.log[a] + t.log[b]];
}

u8
Gf256::div(u8 a, u8 b)
{
    if (b == 0)
        panic("Gf256::div by zero");
    if (a == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[static_cast<u32>(t.log[a]) + 255u - t.log[b]];
}

u8
Gf256::inv(u8 a)
{
    if (a == 0)
        panic("Gf256::inv of zero");
    const Tables &t = tables();
    return t.exp[255 - t.log[a]];
}

u8
Gf256::pow(u8 base, u32 e)
{
    if (base == 0)
        return e == 0 ? 1 : 0;
    const Tables &t = tables();
    const u32 l = (static_cast<u32>(t.log[base]) * e) % 255;
    return t.exp[l];
}

u8
Gf256::alphaPow(u32 e)
{
    return tables().exp[e % 255];
}

u8
Gf256::log(u8 a)
{
    if (a == 0)
        panic("Gf256::log of zero");
    return tables().log[a];
}

} // namespace citadel
