/**
 * @file
 * GF(2^8) arithmetic over the AES/Reed-Solomon polynomial x^8 + x^4 +
 * x^3 + x^2 + 1 (0x11D), table-driven. This backs the bit-true
 * Reed-Solomon symbol code used to validate the analytic ChipKill-like
 * evaluators.
 */

#ifndef CITADEL_ECC_GF256_H
#define CITADEL_ECC_GF256_H

#include "common/types.h"

namespace citadel {

/** Galois field GF(2^8) with generator alpha = 2 (poly 0x11D). */
class Gf256
{
  public:
    static u8 add(u8 a, u8 b) { return a ^ b; }
    static u8 sub(u8 a, u8 b) { return a ^ b; }
    static u8 mul(u8 a, u8 b);
    static u8 div(u8 a, u8 b);
    static u8 inv(u8 a);
    /** alpha^e for any integer exponent e >= 0. */
    static u8 pow(u8 base, u32 e);
    /** alpha^e, e in [0, 255). */
    static u8 alphaPow(u32 e);
    /** discrete log base alpha; undefined for 0 (panics). */
    static u8 log(u8 a);
};

} // namespace citadel

#endif // CITADEL_ECC_GF256_H
