/**
 * @file
 * Systematic Reed-Solomon code over GF(2^8).
 *
 * This is the bit-true realization of the "strong 8-bit symbol-based
 * code (similar to ChipKill)" the paper uses as its baseline: RS(n, k)
 * corrects up to t = (n-k)/2 unknown symbol errors, or n-k erasures at
 * known positions (the relevant mode when a whole bank/channel symbol
 * position is known-dead). The Monte Carlo engine uses analytic
 * evaluators for speed; tests cross-check them against this codec.
 */

#ifndef CITADEL_ECC_REED_SOLOMON_H
#define CITADEL_ECC_REED_SOLOMON_H

#include <optional>
#include <vector>

#include "common/types.h"

namespace citadel {

/** Reed-Solomon codec. Symbols are bytes; code length n <= 255. */
class RsCode
{
  public:
    /**
     * @param n Codeword length in symbols (data + parity), <= 255.
     * @param k Data symbols per codeword, k < n.
     */
    RsCode(u32 n, u32 k);

    u32 n() const { return n_; }
    u32 k() const { return k_; }
    u32 paritySymbols() const { return n_ - k_; }
    /** Correctable symbol errors (unknown positions). */
    u32 t() const { return (n_ - k_) / 2; }

    /** Encode k data symbols into an n-symbol systematic codeword. */
    std::vector<u8> encode(const std::vector<u8> &data) const;

    /**
     * Decode in place, correcting up to t() errors (plus optional known
     * erasure positions; e errors and f erasures decode iff
     * 2e + f <= n - k).
     * @return corrected data symbols, or nullopt if decoding failed.
     */
    std::optional<std::vector<u8>>
    decode(std::vector<u8> codeword,
           const std::vector<u32> &erasures = {}) const;

    /** True iff the codeword has all-zero syndromes. */
    bool isCodeword(const std::vector<u8> &codeword) const;

  private:
    u32 n_;
    u32 k_;
    std::vector<u8> gen_; ///< Generator polynomial, degree n-k.

    std::vector<u8> syndromes(const std::vector<u8> &cw) const;
};

} // namespace citadel

#endif // CITADEL_ECC_REED_SOLOMON_H
