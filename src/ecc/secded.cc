#include "ecc/secded.h"

#include <array>
#include <bit>

namespace citadel {

namespace {

/**
 * Hamming position codes: data bit i is assigned the (i+1)-th integer
 * >= 3 that is not a power of two; powers of two are the check-bit
 * positions. 64 data bits need codes up to 71 < 2^7.
 */
struct PositionTable
{
    std::array<u8, 64> code{};
    std::array<i8, 128> dataIndex{}; // code -> data bit, -1 otherwise

    PositionTable()
    {
        dataIndex.fill(-1);
        u32 pos = 3;
        for (u32 i = 0; i < 64; ++i) {
            while ((pos & (pos - 1)) == 0)
                ++pos;
            code[i] = static_cast<u8>(pos);
            dataIndex[pos] = static_cast<i8>(i);
            ++pos;
        }
    }
};

const PositionTable &
table()
{
    static const PositionTable t;
    return t;
}

bool
parity64(u64 v)
{
    return std::popcount(v) & 1;
}

} // namespace

u8
Secded::encode(u64 data)
{
    const PositionTable &t = table();
    u8 ham = 0;
    for (u32 i = 0; i < 64; ++i)
        if ((data >> i) & 1)
            ham ^= t.code[i];
    // Overall parity bit makes the 72-bit codeword even-parity.
    const bool p = parity64(data) ^ parity64(ham);
    return static_cast<u8>(ham | (p ? 0x80 : 0x00));
}

u8
Secded::syndrome(u64 data, u8 check)
{
    const PositionTable &t = table();
    u8 s = check & 0x7F;
    for (u32 i = 0; i < 64; ++i)
        if ((data >> i) & 1)
            s ^= t.code[i];
    return s;
}

bool
Secded::overallParity(u64 data, u8 check)
{
    return parity64(data) ^ parity64(check);
}

Secded::Outcome
Secded::decode(u64 &data, u8 check)
{
    const u8 s = syndrome(data, check);
    const bool odd = overallParity(data, check);

    if (s == 0)
        return odd ? Outcome::Corrected /* parity bit itself flipped */
                   : Outcome::Clean;
    if (!odd)
        return Outcome::DetectedDouble;

    // Odd parity + non-zero syndrome: single error at position s.
    const i8 idx = table().dataIndex[s];
    if (idx >= 0) {
        data ^= 1ull << idx;
        return Outcome::Corrected;
    }
    if ((s & (s - 1)) == 0)
        return Outcome::Corrected; // a check bit flipped; data intact
    // Syndrome names no valid position: >= 3 errors aliased.
    return Outcome::Miscorrect;
}

bool
SecdedScheme::uncorrectable(const std::vector<Fault> &active) const
{
    const u32 ecc = cfg_->eccChannel();
    for (std::size_t i = 0; i < active.size(); ++i) {
        const Fault &f = active[i];
        const bool f_data =
            f.channel.mask != 0 && f.channel.value != ecc;
        // One bit per 64-bit word is the correction budget: any fault
        // whose per-line footprint exceeds one bit within some word is
        // fatal. bitsPerLine == 1 means a single bit; a data-TSV fault
        // (bits d and d+256) lands in different words, one bit each,
        // so it is the one multi-bit pattern SEC-DED survives.
        if (f_data) {
            const u64 bits = f.bitsPerLine(cfg_->geom);
            const bool one_per_word =
                bits == 1 || f.cls == FaultClass::DataTsv;
            if (!one_per_word)
                return true;
        }
        for (std::size_t j = i + 1; j < active.size(); ++j) {
            const Fault &g = active[j];
            const bool g_data =
                g.channel.mask != 0 && g.channel.value != ecc;
            if (f_data && g_data) {
                // Two concurrent single-bit-class faults on one line:
                // same-word collision is possible; the conventional
                // conservative call is data loss.
                if (f.stack.intersects(g.stack) &&
                    f.channel.intersects(g.channel) &&
                    f.bank.intersects(g.bank) &&
                    f.row.intersects(g.row) && f.col.intersects(g.col))
                    return true;
            } else if (f_data != g_data) {
                // Check bits live in the ECC die mirror position.
                if (f.stack.intersects(g.stack) &&
                    f.bank.intersects(g.bank) &&
                    f.row.intersects(g.row) && f.col.intersects(g.col))
                    return true;
            }
        }
    }
    return false;
}

} // namespace citadel
