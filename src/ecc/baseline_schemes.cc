#include "ecc/baseline_schemes.h"

#include <bit>

#include "common/log.h"

namespace citadel {

namespace {

/** Exact-channel helper: all injected faults carry an exact channel. */
u32
channelOf(const Fault &f)
{
    if (f.channel.mask == 0)
        panic("scheme evaluator: wildcard channel unsupported");
    return f.channel.value;
}

bool
sameStack(const Fault &a, const Fault &b)
{
    return a.stack.intersects(b.stack);
}

/** Do two faults touch a common cache line? (full coordinate overlap,
 *  ignoring the bit dimension). */
bool
shareLine(const Fault &a, const Fault &b)
{
    return sameStack(a, b) && a.channel.intersects(b.channel) &&
           a.bank.intersects(b.bank) && a.row.intersects(b.row) &&
           a.col.intersects(b.col);
}

} // namespace

SymbolStripedScheme::SymbolStripedScheme(StripingMode mode, u32 symbol_bits)
    : mode_(mode), symbolBits_(symbol_bits)
{
    if (symbol_bits == 0 || (symbol_bits & (symbol_bits - 1)) != 0)
        fatal("SymbolStripedScheme: symbol width must be a power of two");
}

std::string
SymbolStripedScheme::name() const
{
    return std::string("SSC-") + stripingModeName(mode_);
}

u64
SymbolStripedScheme::symbolsPerLine(const Fault &f) const
{
    // Symbol index = bit >> log2(symbolBits_); count distinct symbol
    // indices admitted by the bit-dimension range.
    const u32 bit_bits = cfg_->geom.bitBits();
    const u32 sym_shift = static_cast<u32>(std::countr_zero(symbolBits_));
    const u32 sym_bits = bit_bits - sym_shift;
    const u32 sym_mask_space = (1u << sym_bits) - 1;
    const u32 significant = static_cast<u32>(
        std::popcount((f.bit.mask >> sym_shift) & sym_mask_space));
    return 1ull << (sym_bits - significant);
}

bool
SymbolStripedScheme::uncSameBank(const std::vector<Fault> &active) const
{
    const u32 ecc = cfg_->eccChannel();
    for (std::size_t i = 0; i < active.size(); ++i) {
        const Fault &f = active[i];
        const bool f_data = channelOf(f) != ecc;
        // A single data fault is fatal once it can touch two or more
        // symbols of one line (word, column, row, bank, data-TSV, ...).
        if (f_data && symbolsPerLine(f) >= 2)
            return true;
        for (std::size_t j = i + 1; j < active.size(); ++j) {
            const Fault &g = active[j];
            const bool g_data = channelOf(g) != ecc;
            if (f_data && g_data) {
                // Two concurrent faults corrupting the same line exceed
                // single-symbol correction.
                if (shareLine(f, g))
                    return true;
            } else if (f_data != g_data) {
                // Data fault plus loss of its check symbols. The ECC
                // die mirrors the (bank, row, col) coordinates of the
                // lines it protects.
                if (sameStack(f, g) && f.bank.intersects(g.bank) &&
                    f.row.intersects(g.row) && f.col.intersects(g.col))
                    return true;
            }
        }
    }
    return false;
}

bool
SymbolStripedScheme::uncAcrossBanks(const std::vector<Fault> &active) const
{
    const u32 ecc = cfg_->eccChannel();
    for (std::size_t i = 0; i < active.size(); ++i) {
        const Fault &f = active[i];
        const bool f_data = channelOf(f) != ecc;
        // One fault spanning two banks of a die kills two symbol
        // positions of every codeword it touches (channel faults,
        // address-TSV and data-TSV faults).
        if (f_data && f.banksCovered(cfg_->geom) >= 2)
            return true;
        for (std::size_t j = i + 1; j < active.size(); ++j) {
            const Fault &g = active[j];
            const bool g_data = channelOf(g) != ecc;
            if (!sameStack(f, g))
                continue;
            if (f_data && g_data) {
                if (channelOf(f) != channelOf(g))
                    continue; // codewords live within one die
                const bool same_unit =
                    f.bank.mask == 0xFFFFFFFFu &&
                    g.bank.mask == 0xFFFFFFFFu &&
                    f.bank.value == g.bank.value;
                if (!same_unit && f.row.intersects(g.row) &&
                    f.col.intersects(g.col))
                    return true;
            } else if (f_data != g_data) {
                // Check symbols in the metadata die protect every data
                // die, so any (row, col) overlap is fatal.
                if (f.row.intersects(g.row) && f.col.intersects(g.col))
                    return true;
            }
        }
    }
    return false;
}

bool
SymbolStripedScheme::uncAcrossChannels(const std::vector<Fault> &active)
    const
{
    // Symbol positions are the 8 data channels plus the ECC die; the
    // codeword extent is (stack, bank, row, col). Two faults at
    // different positions overlapping one extent are fatal.
    for (std::size_t i = 0; i < active.size(); ++i) {
        for (std::size_t j = i + 1; j < active.size(); ++j) {
            const Fault &f = active[i];
            const Fault &g = active[j];
            if (channelOf(f) == channelOf(g))
                continue;
            if (sameStack(f, g) && f.bank.intersects(g.bank) &&
                f.row.intersects(g.row) && f.col.intersects(g.col))
                return true;
        }
    }
    return false;
}

bool
SymbolStripedScheme::uncorrectable(const std::vector<Fault> &active) const
{
    switch (mode_) {
      case StripingMode::SameBank:
        return uncSameBank(active);
      case StripingMode::AcrossBanks:
        return uncAcrossBanks(active);
      case StripingMode::AcrossChannels:
        return uncAcrossChannels(active);
    }
    return true;
}

u64
Bch6EC7EDScheme::worstBitsPerLine(const Fault &f) const
{
    return f.bitsPerLine(cfg_->geom);
}

bool
Bch6EC7EDScheme::uncorrectable(const std::vector<Fault> &active) const
{
    constexpr u64 kCorrectableBits = 6;
    const u32 ecc = cfg_->eccChannel();
    for (std::size_t i = 0; i < active.size(); ++i) {
        const Fault &f = active[i];
        const bool f_data = channelOf(f) != ecc;
        if (f_data && worstBitsPerLine(f) > kCorrectableBits)
            return true;
        for (std::size_t j = i + 1; j < active.size(); ++j) {
            const Fault &g = active[j];
            const bool g_data = channelOf(g) != ecc;
            if (f_data && g_data) {
                if (shareLine(f, g) &&
                    worstBitsPerLine(f) + worstBitsPerLine(g) >
                        kCorrectableBits)
                    return true;
            } else if (f_data != g_data) {
                // Any data fault whose BCH check bits are lost.
                if (sameStack(f, g) && f.bank.intersects(g.bank) &&
                    f.row.intersects(g.row) && f.col.intersects(g.col))
                    return true;
            }
        }
    }
    return false;
}

bool
Raid5Scheme::uncorrectable(const std::vector<Fault> &active) const
{
    // One recoverable position per stripe: two faults at different
    // channel positions (including the CRC/metadata die) overlapping in
    // (bank, row, col) defeat reconstruction.
    for (std::size_t i = 0; i < active.size(); ++i) {
        for (std::size_t j = i + 1; j < active.size(); ++j) {
            const Fault &f = active[i];
            const Fault &g = active[j];
            if (channelOf(f) == channelOf(g))
                continue;
            if (sameStack(f, g) && f.bank.intersects(g.bank) &&
                f.row.intersects(g.row) && f.col.intersects(g.col))
                return true;
        }
    }
    return false;
}

} // namespace citadel
