/**
 * @file
 * Offline analyses of the sampled fault population that motivate DDS
 * (Section VII-A/B): the bimodal distribution of rows a faulty bank
 * would consume under row-granularity sparing (Fig 17) and the
 * distribution of the number of failed banks per system (Table III).
 */

#ifndef CITADEL_FAULTS_ANALYSIS_H
#define CITADEL_FAULTS_ANALYSIS_H

#include <map>
#include <vector>

#include "faults/injector.h"

namespace citadel {

/** Histogram of "rows required for sparing" across faulty banks. */
struct SparingHistogram
{
    /** rowsRequired -> number of faulty banks observing that count. */
    std::map<u64, u64> counts;
    u64 totalFaultyBanks = 0;

    /** Fraction of faulty banks requiring exactly `rows`. */
    double fraction(u64 rows) const;
    /** Fraction of faulty banks requiring <= `rows` (fine-grained side). */
    double fractionAtMost(u64 rows) const;
    /** Fraction of faulty banks requiring >= `rows`. */
    double fractionAtLeast(u64 rows) const;
};

/** Distribution of the failed-bank count for systems with >= 1. */
struct FailedBankDistribution
{
    u64 systemsWithFailedBank = 0;
    u64 one = 0;
    u64 two = 0;
    u64 threePlus = 0;
};

/**
 * Monte Carlo over permanent DRAM-internal faults only (no TSVs, no
 * correction), reproducing the measurements behind Fig 17 and
 * Table III.
 */
class SparingAnalysis
{
  public:
    explicit SparingAnalysis(const SystemConfig &cfg);

    /** Rows a single fault consumes under row-granularity sparing. */
    u64 rowsRequired(const Fault &f) const;

    /**
     * Rows the union of the faults in one bank consumes; distinct rows
     * from small faults, full sub-arrays/banks for large ones.
     */
    u64 rowsRequiredForBank(const std::vector<Fault> &bank_faults) const;

    /** Run `trials` lifetimes and accumulate the histogram. */
    SparingHistogram histogram(u64 trials, u64 seed = 1) const;

    /**
     * Distribution of failed banks (banks needing more than
     * `row_threshold` spare rows) across systems with at least one.
     */
    FailedBankDistribution failedBanks(u64 trials, u64 row_threshold = 4,
                                       u64 seed = 1) const;

  private:
    SystemConfig cfg_;
    FaultInjector injector_;

    /** Group a lifetime's permanent faults by (stack, channel, bank). */
    std::map<u64, std::vector<Fault>>
    groupPermanentByBank(const std::vector<Fault> &events) const;
};

} // namespace citadel

#endif // CITADEL_FAULTS_ANALYSIS_H
