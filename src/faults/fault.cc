#include "faults/fault.h"

#include <bit>
#include <sstream>

#include "common/log.h"

namespace citadel {

const char *
faultClassName(FaultClass cls)
{
    switch (cls) {
      case FaultClass::Bit: return "bit";
      case FaultClass::Word: return "word";
      case FaultClass::Column: return "column";
      case FaultClass::Row: return "row";
      case FaultClass::SubArray: return "subarray";
      case FaultClass::Bank: return "bank";
      case FaultClass::Channel: return "channel";
      case FaultClass::DataTsv: return "data-tsv";
      case FaultClass::AddrTsvRow: return "addr-tsv-row";
      case FaultClass::AddrTsvBank: return "addr-tsv-bank";
    }
    return "?";
}

bool
isTsvClass(FaultClass cls)
{
    return cls == FaultClass::DataTsv || cls == FaultClass::AddrTsvRow ||
           cls == FaultClass::AddrTsvBank;
}

u64
DimSpec::coverage(u32 width) const
{
    const u32 space_mask = width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1);
    const u32 significant =
        static_cast<u32>(std::popcount(mask & space_mask));
    return 1ull << (width - significant);
}

bool
Fault::covers(StackId s, ChannelId ch, BankId b, RowId r, ColId c,
              u32 bit_pos) const
{
    return stack.matches(s.value()) && channel.matches(ch.value()) &&
           bank.matches(b.value()) && row.matches(r.value()) &&
           col.matches(c.value()) && bit.matches(bit_pos);
}

bool
Fault::intersects(const Fault &o) const
{
    return stack.intersects(o.stack) && channel.intersects(o.channel) &&
           bank.intersects(o.bank) && row.intersects(o.row) &&
           col.intersects(o.col) && bit.intersects(o.bit);
}

u64
Fault::rowsCovered(const StackGeometry &geom) const
{
    return row.coverage(geom.rowBits());
}

u64
Fault::banksCovered(const StackGeometry &geom) const
{
    return bank.coverage(geom.bankBits());
}

u64
Fault::channelsCovered(const StackGeometry &geom) const
{
    // The channel space has channelsPerStack + 1 members (the last one is
    // the ECC/metadata die) and is not a power of two, so masks other than
    // exact/wildcard are not supported in this dimension.
    if (channel.mask == 0)
        return geom.channelsPerStack + 1;
    if (channel.mask == 0xFFFFFFFFu)
        return 1;
    panic("channelsCovered: partial channel masks unsupported");
}

u64
Fault::bitsPerLine(const StackGeometry &geom) const
{
    return bit.coverage(geom.bitBits());
}

std::string
Fault::describe() const
{
    std::ostringstream os;
    auto dim = [&](const char *name, const DimSpec &d) {
        os << name << '=';
        if (d.mask == 0)
            os << '*';
        else if (d.mask == 0xFFFFFFFFu)
            os << d.value;
        else
            os << d.value << "/m" << std::hex << d.mask << std::dec;
        os << ' ';
    };
    os << faultClassName(cls) << (transient ? " (T) " : " (P) ");
    dim("s", stack);
    dim("ch", channel);
    dim("bk", bank);
    dim("row", row);
    dim("col", col);
    dim("bit", bit);
    os << "@" << timeHours << "h";
    return os.str();
}

} // namespace citadel
