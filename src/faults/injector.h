/**
 * @file
 * Samples the fault history of one device lifetime: Poisson arrivals per
 * die and fault class at the Table I rates, plus TSV faults at the swept
 * device rate, each materialized as a FaultRange at a random location.
 */

#ifndef CITADEL_FAULTS_INJECTOR_H
#define CITADEL_FAULTS_INJECTOR_H

#include <vector>

#include "common/rng.h"
#include "faults/fault.h"
#include "faults/fit_rates.h"
#include "faults/meta_fault.h"
#include "stack/tsv.h"

namespace citadel {

/**
 * Sizes of the control-plane structures a MetaFault can land in, as
 * configured by whoever owns those structures (the RAS datapath). The
 * injector only needs the slot counts to draw uniform targets; the
 * defaults match the paper's DDS provisioning (4 spare rows per bank,
 * 2 spare banks per stack) and an 8-way parity cache.
 */
struct MetaGeometry
{
    u32 rrtSlotsPerUnit = 4;  ///< RRT entries per (die, bank) unit.
    u32 brtSlots = 2;         ///< BRT entries per stack.
    u32 parityCacheWays = 8;  ///< Cached D1 parity lines per stack.
};

/**
 * Full reliability-experiment configuration: geometry, per-die FIT
 * rates, TSV device rate, lifetime and scrub interval.
 */
struct SystemConfig
{
    StackGeometry geom;
    FitTable rates = FitTable::paper8Gb();

    /**
     * TSV-caused device failures per 10^9 hours, per stack. The paper
     * sweeps 14 FIT (0.01 failures in 7 years) to 1430 FIT (1 failure
     * in 7 years). 0 disables TSV faults.
     */
    double tsvDeviceFit = 0.0;

    double lifetimeHours = kLifetimeHours;
    double scrubHours = kScrubIntervalHours;

    /**
     * Fraction of bank-class faults that are partial-bank (sub-array)
     * failures rather than full-bank failures. Fig 17 of the paper shows
     * roughly 30% of large-granularity failures clustering at sub-array
     * size.
     */
    double subArrayFraction = 0.3;

    /** Rows per sub-array (power of two; the paper observes ~5.2K). */
    u32 subArrayRows = 4096;

    /**
     * Control-plane (RAS metadata SRAM) upsets per 10^9 hours, per
     * stack, across all protected structures. 0 disables control-plane
     * faults, which preserves the pre-existing perfect-metadata model.
     */
    double metaFit = 0.0;

    /** Fraction of control-plane upsets that are transient SRAM
     *  strikes (clear on the scrub's read-retry). */
    double metaTransientFraction = 0.7;

    /** Fraction of control-plane upsets that hit the primary *and* the
     *  mirror copy (common-mode: shared well / power event). These are
     *  the ones mirroring alone cannot undo. */
    double metaCommonModeFraction = 0.1;

    /** Dies per stack including the ECC/metadata die. */
    u32 diesPerStack() const { return geom.channelsPerStack + 1; }

    /** Channel index used for the ECC/metadata die. */
    u32 eccChannel() const { return geom.channelsPerStack; }

    /**
     * Check the whole experiment configuration for nonsense (zero
     * geometry dimensions, negative rates, impossible scrub/lifetime
     * setup). Calls fatal() with a clear message on the first problem,
     * instead of letting it surface as undefined behavior downstream.
     */
    void validate() const;
};

/**
 * Fault sampler. Stateless apart from geometry-derived constants; all
 * randomness comes through the caller's Rng so trials are reproducible.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const SystemConfig &cfg);

    /**
     * Sample every fault arriving within one lifetime, sorted by
     * arrival time. DRAM-internal faults are drawn independently per
     * die (including the ECC die); TSV faults per stack.
     */
    std::vector<Fault> sampleLifetime(Rng &rng) const;

    /**
     * Allocation-reusing variant: clears `out` and fills it with one
     * lifetime's faults. The Monte Carlo hot loop passes the same
     * vector every trial so steady state does no heap traffic.
     */
    void sampleLifetime(Rng &rng, std::vector<Fault> &out) const;

    /**
     * Arena-filling variant: appends one lifetime's faults to `out`
     * without clearing it, sorting only the appended slice, and
     * returns the number appended. This is what lets a FaultArena
     * batch a whole chunk of trials into one flat pool; the draw
     * stream and the per-trial sort are identical to sampleLifetime.
     */
    std::size_t sampleLifetimeAppend(Rng &rng,
                                     std::vector<Fault> &out) const;

    /** Materialize a random fault of a class in a given die. */
    Fault makeFault(Rng &rng, FaultClass cls, StackId stack,
                    ChannelId channel, bool transient,
                    double time_hours) const;

    /** Materialize a random TSV fault in a given stack. */
    Fault makeTsvFault(Rng &rng, StackId stack, double time_hours) const;

    /**
     * Sample every *control-plane* upset arriving within one lifetime,
     * sorted by arrival time. Drawn independently of the data-plane
     * faults (separate Poisson process at cfg.metaFit per stack), with
     * targets uniform over the slots described by `mg`. Empty when
     * cfg.metaFit == 0.
     */
    std::vector<MetaFault> sampleMetaLifetime(Rng &rng,
                                              const MetaGeometry &mg) const;

    /** Materialize a random control-plane upset in a given stack. */
    MetaFault makeMetaFault(Rng &rng, StackId stack, const MetaGeometry &mg,
                            bool transient, double time_hours) const;

    const SystemConfig &config() const { return cfg_; }

  private:
    /**
     * One Poisson process of the per-die sampling loop, with its
     * arrival rate — and, for the dominant small-lambda Knuth path,
     * exp(-lambda) — precomputed at construction. Rng::poisson
     * recomputes std::exp(-lambda) on every call; a lifetime draws
     * from ~180 of these cells (2 stacks x 9 dies x 5 classes x
     * {transient, permanent}), so hoisting the exp is the single
     * biggest serial-path win. Draw-for-draw stream-identical to
     * calling poisson(lambda) (see Rng::poissonKnuth).
     */
    struct RateCell
    {
        FaultClass cls = FaultClass::Bit;
        bool transient = false;
        double lambda = 0.0;
        double expNegLambda = 1.0;
    };

    SystemConfig cfg_;
    TsvMap tsvMap_;
    std::vector<RateCell> dieCells_;
    RateCell tsvCell_;

    /** Poisson count for a cell, branch-identical to Rng::poisson. */
    static u64 drawCount(Rng &rng, const RateCell &cell);

    void sampleClass(Rng &rng, std::vector<Fault> &out,
                     const RateCell &cell, StackId stack,
                     ChannelId channel) const;
};

} // namespace citadel

#endif // CITADEL_FAULTS_INJECTOR_H
