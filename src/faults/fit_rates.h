/**
 * @file
 * DRAM failure rates (FIT = failures per 10^9 device-hours).
 *
 * Base rates are the field-measured per-device rates for 1Gb DRAM from
 * Sridharan & Liberty, "A Study of DRAM Failures in the Field" (SC-12).
 * Section III-A of the Citadel paper scales them to 8Gb stacked dies:
 *
 *  - bit and word rates scale with capacity (x8);
 *  - row rates scale with rows per bank: 16K -> 64K (x4), because the
 *    2KB row buffer keeps rows 4x larger too;
 *  - column rates scale with column-decoder logic (x1.9);
 *  - bank rates scale x8, assuming constant sub-array size (more
 *    sub-arrays per bank).
 *
 * The scaled values reproduce Table I of the paper.
 */

#ifndef CITADEL_FAULTS_FIT_RATES_H
#define CITADEL_FAULTS_FIT_RATES_H

#include "faults/fault.h"

namespace citadel {

/** Transient/permanent FIT pair. */
struct FitPair
{
    double transientFit = 0.0;
    double permanentFit = 0.0;

    double total() const { return transientFit + permanentFit; }
};

/**
 * Per-die FIT rates for each DRAM-internal fault mode. TSV rates are
 * swept separately (see SystemConfig::tsvDeviceFit).
 */
struct FitTable
{
    FitPair bit;
    FitPair word;
    FitPair column;
    FitPair row;
    FitPair bank; ///< Includes partial-bank (sub-array) failures.

    /** Sum of all per-die rates, both permanences. */
    double totalFit() const
    {
        return bit.total() + word.total() + column.total() + row.total() +
               bank.total();
    }

    /** Field data for a 1Gb DRAM device (Sridharan & Liberty, SC-12). */
    static FitTable sridharan1Gb();

    /**
     * Table I of the paper: 8Gb stacked die. Constructed by applying
     * the paper's scaling rules to sridharan1Gb() and then matching the
     * paper's printed (rounded) values.
     */
    static FitTable paper8Gb();

    /** Apply the Section III-A scale factors to this table. */
    FitTable scaledForStackedDie() const;
};

/** Scale factors from 1Gb to 8Gb dies (Section III-A). */
struct FitScaling
{
    double bitScale = 8.0;
    double wordScale = 8.0;
    double columnScale = 1.9;
    double rowScale = 4.0;
    double bankScale = 8.0;
};

} // namespace citadel

#endif // CITADEL_FAULTS_FIT_RATES_H
