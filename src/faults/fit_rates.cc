#include "faults/fit_rates.h"

namespace citadel {

FitTable
FitTable::sridharan1Gb()
{
    FitTable t;
    t.bit = {14.2, 18.6};
    t.word = {1.4, 0.3};
    t.column = {1.4, 5.5};
    t.row = {0.2, 8.2};
    t.bank = {0.8, 10.0};
    return t;
}

FitTable
FitTable::paper8Gb()
{
    // Table I, verbatim.
    FitTable t;
    t.bit = {113.6, 148.8};
    t.word = {11.2, 2.4};
    t.column = {2.6, 10.5};
    t.row = {0.8, 32.8};
    t.bank = {6.4, 80.0};
    return t;
}

FitTable
FitTable::scaledForStackedDie() const
{
    const FitScaling s;
    FitTable t;
    t.bit = {bit.transientFit * s.bitScale, bit.permanentFit * s.bitScale};
    t.word = {word.transientFit * s.wordScale,
              word.permanentFit * s.wordScale};
    t.column = {column.transientFit * s.columnScale,
                column.permanentFit * s.columnScale};
    t.row = {row.transientFit * s.rowScale, row.permanentFit * s.rowScale};
    t.bank = {bank.transientFit * s.bankScale,
              bank.permanentFit * s.bankScale};
    return t;
}

} // namespace citadel
