/**
 * @file
 * Interface every RAS (reliability/availability/serviceability) scheme
 * implements for the Monte Carlo engine, plus the trivial NoProtection
 * baseline.
 *
 * The engine drives a scheme through one simulated lifetime:
 *
 *   reset() -> { absorb(fault) | active += fault; uncorrectable()? }*
 *   with onScrub() at every 12-hour boundary crossed between events.
 *
 * `absorb` lets repair mechanisms (TSV-SWAP) consume a fault before it
 * ever joins the active set; `onScrub` lets sparing mechanisms (DDS)
 * retire permanent faults; `uncorrectable` asks whether the *current*
 * concurrent fault set contains a data-loss pattern.
 */

#ifndef CITADEL_FAULTS_SCHEME_H
#define CITADEL_FAULTS_SCHEME_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "faults/injector.h"

namespace citadel {

/** A repair/sparing decision a scheme makes while absorbing faults. */
struct SchemeEvent
{
    enum class Kind
    {
        TsvRepaired,   ///< TSV-SWAP steered a stand-by TSV in place.
        RowSpared,     ///< DDS retired a faulty row via the RRT.
        BankSpared,    ///< DDS decommissioned a bank via the BRT.
        SparingDenied, ///< Spare budget exhausted; fault stays active.
        Absorbed,      ///< Fault landed in already-spared storage.
    };

    Kind kind;
    Fault fault;
};

/** Observer for scheme decisions (event log, live datapath, tests). */
using SchemeEventSink = std::function<void(const SchemeEvent &)>;

class RasScheme;
using SchemePtr = std::unique_ptr<RasScheme>;

/** Abstract RAS scheme evaluated by the Monte Carlo engine. */
class RasScheme
{
  public:
    virtual ~RasScheme() = default;

    /** Display name used in bench output. */
    virtual std::string name() const = 0;

    /**
     * Fresh scheme with the same construction-time configuration
     * (dimensions, spare budgets, wrapped inner schemes) but none of
     * the per-trial state and no event sink. The parallel Monte Carlo
     * engine clones the caller's scheme once per worker; since every
     * trial begins with reset(), a clone and the original must be
     * indistinguishable to the engine.
     */
    virtual SchemePtr clone() const = 0;

    /** Reinitialize per-trial state (spare budgets, swap registers). */
    virtual void reset(const SystemConfig &cfg) { cfg_ = &cfg; }

    /**
     * Install an observer notified of every repair/sparing decision.
     * Decorators propagate the sink to their inner scheme.
     */
    virtual void setEventSink(SchemeEventSink sink)
    {
        sink_ = std::move(sink);
    }

    /**
     * Offer a newly arrived fault to the scheme's repair machinery.
     * @return true if the fault is fully repaired and must not join the
     *         active set (e.g., a TSV fault fixed by TSV-SWAP).
     */
    virtual bool absorb(const Fault &fault)
    {
        (void)fault;
        return false;
    }

    /**
     * Scrub boundary: transient faults have already been removed by the
     * engine; the scheme may additionally retire (spare) permanent
     * faults by erasing them from `active`.
     */
    virtual void onScrub(std::vector<Fault> &active) { (void)active; }

    /** Does the concurrent fault set contain an uncorrectable pattern? */
    virtual bool uncorrectable(const std::vector<Fault> &active) const = 0;

  protected:
    void emitEvent(SchemeEvent::Kind kind, const Fault &fault) const
    {
        if (sink_)
            sink_({kind, fault});
    }

    const SystemConfig *cfg_ = nullptr;
    SchemeEventSink sink_;
};

/** Baseline with no correction at all: any fault is data loss. */
class NoProtection : public RasScheme
{
  public:
    std::string name() const override { return "No-Protection"; }

    SchemePtr clone() const override
    {
        return std::make_unique<NoProtection>();
    }

    bool
    uncorrectable(const std::vector<Fault> &active) const override
    {
        return !active.empty();
    }
};

} // namespace citadel

#endif // CITADEL_FAULTS_SCHEME_H
