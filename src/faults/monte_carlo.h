/**
 * @file
 * FaultSim-style Monte Carlo engine (Section III-B): simulates many
 * seven-year device lifetimes with Poisson fault arrivals, a periodic
 * scrub that clears correctable transient faults, scheme-driven repair
 * (TSV-SWAP absorption, DDS sparing), and records the time of the first
 * uncorrectable pattern in each trial.
 */

#ifndef CITADEL_FAULTS_MONTE_CARLO_H
#define CITADEL_FAULTS_MONTE_CARLO_H

#include <functional>
#include <map>
#include <vector>

#include "common/stats.h"
#include "faults/scheme.h"

namespace citadel {

/** Aggregate result of a Monte Carlo reliability run. */
struct McResult
{
    u64 trials = 0;
    u64 failures = 0; ///< Trials with an uncorrectable fault in-lifetime.

    /** failuresByYear[y] = trials failing within the first y+1 years. */
    std::vector<u64> failuresByYear;

    /**
     * Failure attribution: class of the fault whose arrival completed
     * the uncorrectable pattern. Shows what actually kills a scheme
     * (e.g., bank-pair accumulation vs TSV faults).
     */
    std::map<FaultClass, u64> failuresByClass;

    /** Mean faults injected per trial (diagnostic). */
    double meanFaultsPerTrial = 0.0;

    /** P(system failure within the full lifetime) with 95% Wilson CI. */
    Proportion probFail() const { return wilson(failures, trials); }

    /** P(system failure within the first `years` years). */
    Proportion probFailByYear(u32 years) const;
};

/**
 * The engine. Stateless between runs; all randomness flows from the
 * seed so results are exactly reproducible.
 */
class MonteCarlo
{
  public:
    explicit MonteCarlo(const SystemConfig &cfg);

    /**
     * Run `trials` independent lifetimes against `scheme`.
     * The scheme is reset() at the start of every trial.
     */
    McResult run(RasScheme &scheme, u64 trials, u64 seed = 1) const;

    /**
     * Single-lifetime simulation given a pre-sampled fault history.
     * @param trigger_class When non-null and the trial fails, receives
     *        the class of the fault that completed the fatal pattern.
     * @return first-failure time in hours, or a negative value if the
     *         lifetime completes without an uncorrectable pattern.
     * Exposed for unit tests and what-if analyses.
     */
    double runTrial(RasScheme &scheme, const std::vector<Fault> &events,
                    FaultClass *trigger_class = nullptr) const;

    const SystemConfig &config() const { return cfg_; }

  private:
    SystemConfig cfg_;
    FaultInjector injector_;
};

} // namespace citadel

#endif // CITADEL_FAULTS_MONTE_CARLO_H
