/**
 * @file
 * FaultSim-style Monte Carlo engine (Section III-B): simulates many
 * seven-year device lifetimes with Poisson fault arrivals, a periodic
 * scrub that clears correctable transient faults, scheme-driven repair
 * (TSV-SWAP absorption, DDS sparing), and records the time of the first
 * uncorrectable pattern in each trial.
 */

#ifndef CITADEL_FAULTS_MONTE_CARLO_H
#define CITADEL_FAULTS_MONTE_CARLO_H

#include <functional>
#include <map>
#include <span>
#include <vector>

#include "common/stats.h"
#include "faults/fault_arena.h"
#include "faults/scheme.h"

namespace citadel {

/** Aggregate result of a Monte Carlo reliability run. */
struct McResult
{
    u64 trials = 0;
    u64 failures = 0; ///< Trials with an uncorrectable fault in-lifetime.

    /** failuresByYear[y] = trials failing within the first y+1 years. */
    std::vector<u64> failuresByYear;

    /**
     * Failure attribution: class of the fault whose arrival completed
     * the uncorrectable pattern. Shows what actually kills a scheme
     * (e.g., bank-pair accumulation vs TSV faults).
     */
    std::map<FaultClass, u64> failuresByClass;

    /** Mean faults injected per trial (diagnostic). */
    double meanFaultsPerTrial = 0.0;

    /** P(system failure within the full lifetime) with 95% Wilson CI. */
    Proportion probFail() const { return wilson(failures, trials); }

    /** P(system failure within the first `years` years). */
    Proportion probFailByYear(u32 years) const;
};

/**
 * The engine. Stateless between runs; all randomness flows from the
 * seed so results are exactly reproducible.
 *
 * Parallel determinism contract (DESIGN.md section 9): every trial t
 * seeds its own Rng from `seed ^ K*(t+1)`, so a trial's outcome
 * depends only on (seed, t), never on which worker ran it or in what
 * order. Workers operate on RasScheme::clone()s of the caller's
 * scheme and accumulate integer-only shards (failure counts, by-year
 * counts, by-class counts, total fault count) whose merge is exact
 * and commutative. A run is therefore bit-identical for any thread
 * count, including the serial path — enforced by
 * tests/test_monte_carlo_parallel.cc.
 */
class MonteCarlo
{
  public:
    explicit MonteCarlo(const SystemConfig &cfg);

    /**
     * Run `trials` independent lifetimes against `scheme`.
     * The scheme is reset() at the start of every trial.
     *
     * @param threads Worker count; 0 resolves CITADEL_THREADS /
     *        hardware_concurrency via citadelThreads(). 1 runs the
     *        legacy in-place serial path on `scheme` itself; more
     *        shard the trial range over clones of `scheme`.
     */
    McResult run(RasScheme &scheme, u64 trials, u64 seed = 1,
                 unsigned threads = 0) const;

    /**
     * Single-lifetime simulation given a pre-sampled fault history.
     * @param trigger_class When non-null and the trial fails, receives
     *        the class of the fault that completed the fatal pattern.
     * @return first-failure time in hours, or a negative value if the
     *         lifetime completes without an uncorrectable pattern.
     * Exposed for unit tests and what-if analyses.
     */
    double runTrial(RasScheme &scheme, const std::vector<Fault> &events,
                    FaultClass *trigger_class = nullptr) const;

    /**
     * Allocation-reusing variant for hot loops: `active_scratch` is
     * cleared and used as the concurrent-fault working set, so a
     * caller running many trials reuses one allocation throughout.
     */
    double runTrial(RasScheme &scheme, const std::vector<Fault> &events,
                    FaultClass *trigger_class,
                    std::vector<Fault> &active_scratch) const;

    /**
     * Batched-execution core all runTrial overloads funnel into:
     * events may be a view into a FaultArena pool, and
     * `arrival_times`, when non-null, is a dense array index-aligned
     * with `events` (FaultArena::trialTimes) that the scrub-boundary
     * scan reads instead of pulling each fault's timeHours out of
     * the fat AoS record. Passing null reads the AoS field; both are
     * the same values by construction, so results are identical.
     */
    double runTrial(RasScheme &scheme, std::span<const Fault> events,
                    FaultClass *trigger_class,
                    std::vector<Fault> &active_scratch,
                    const double *arrival_times = nullptr) const;

    const SystemConfig &config() const { return cfg_; }

  private:
    /** Order-independent partial result of a contiguous trial range. */
    struct Shard
    {
        u64 failures = 0;
        u64 totalFaults = 0;
        std::vector<u64> failuresByYear;
        std::map<FaultClass, u64> failuresByClass;
    };

    /**
     * Run trials [begin, end) into `shard` in two batched phases:
     * first sample every lifetime in the range into `arena` (pure
     * Rng + injector work, no scheme state touched), then execute
     * the trials against span views into the arena pool. Per-trial
     * seeding and bookkeeping order are unchanged from the old
     * one-trial-at-a-time loop, so results are bit-identical for any
     * batch size (DESIGN.md section 14).
     */
    void runRange(RasScheme &scheme, u64 begin, u64 end, u64 seed,
                  u32 years, Shard &shard, FaultArena &arena,
                  std::vector<Fault> &active) const;

    SystemConfig cfg_;
    FaultInjector injector_;
};

} // namespace citadel

#endif // CITADEL_FAULTS_MONTE_CARLO_H
