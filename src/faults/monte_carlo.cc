#include "faults/monte_carlo.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/log.h"
#include "common/thread_pool.h"

namespace citadel {

namespace {

/**
 * Per-trial seed mix (splitmix64 increment times an odd constant):
 * trial t always draws from Rng(seed ^ kSeedMix * (t + 1)) no matter
 * which worker executes it. Changing this changes every seeded
 * result in the repo — treat it as part of the determinism contract.
 */
constexpr u64 kSeedMix = 0xA24BAED4963EE407ull;

/**
 * Trials per arena batch on the serial path: large enough that the
 * sampling phase amortizes its instruction-cache and branch-predictor
 * footprint, small enough that the flat fault pool stays a few
 * hundred KB even at paper fault rates (batch size cannot affect
 * results — every trial is independently seeded).
 */
constexpr u64 kSerialBatch = 1024;

} // namespace

Proportion
McResult::probFailByYear(u32 years) const
{
    if (years == 0 || years > failuresByYear.size())
        panic("probFailByYear: year %u out of range", years);
    return wilson(failuresByYear[years - 1], trials);
}

MonteCarlo::MonteCarlo(const SystemConfig &cfg) : cfg_(cfg), injector_(cfg)
{
}

double
MonteCarlo::runTrial(RasScheme &scheme, const std::vector<Fault> &events,
                     FaultClass *trigger_class) const
{
    std::vector<Fault> active;
    return runTrial(scheme, events, trigger_class, active);
}

double
MonteCarlo::runTrial(RasScheme &scheme, const std::vector<Fault> &events,
                     FaultClass *trigger_class,
                     std::vector<Fault> &active_scratch) const
{
    return runTrial(scheme, std::span<const Fault>(events), trigger_class,
                    active_scratch, nullptr);
}

double
MonteCarlo::runTrial(RasScheme &scheme, std::span<const Fault> events,
                     FaultClass *trigger_class,
                     std::vector<Fault> &active_scratch,
                     const double *arrival_times) const
{
    scheme.reset(cfg_);
    std::vector<Fault> &active = active_scratch;
    active.clear();
    double last_scrub = 0.0;
    // Boundary handling is off the per-event path: the floor division
    // only runs once an event lands past the next scheduled scrub.
    double next_scrub = cfg_.scrubHours;

    for (std::size_t i = 0; i < events.size(); ++i) {
        const Fault &f = events[i];
        // The arrival time equals f.timeHours either way; the dense
        // array just keeps the common scrub-boundary compare off the
        // 72-byte AoS record.
        const double arrival = arrival_times ? arrival_times[i]
                                             : f.timeHours;
        // Process all scrub boundaries crossed since the last event: a
        // transient fault is cleared at the first boundary after its
        // arrival; sparing mechanisms retire permanent faults there too.
        if (arrival >= next_scrub) {
            const double boundary =
                std::floor(arrival / cfg_.scrubHours) * cfg_.scrubHours;
            if (boundary > last_scrub) {
                std::erase_if(active, [&](const Fault &a) {
                    return a.transient && a.timeHours < boundary;
                });
                scheme.onScrub(active);
                last_scrub = boundary;
            }
            next_scrub = last_scrub + cfg_.scrubHours;
        }

        if (scheme.absorb(f))
            continue;

        active.push_back(f);
        if (scheme.uncorrectable(active)) {
            if (trigger_class)
                *trigger_class = f.cls;
            return arrival;
        }
    }
    return -1.0;
}

void
MonteCarlo::runRange(RasScheme &scheme, u64 begin, u64 end, u64 seed,
                     u32 years, Shard &shard, FaultArena &arena,
                     std::vector<Fault> &active) const
{
    // Phase 1: batched sampling. Pure Rng/injector work — the whole
    // range's lifetimes land in one flat pool, keeping the sampler's
    // code and the injector's rate cells hot instead of alternating
    // with scheme execution every trial.
    arena.beginBatch();
    for (u64 t = begin; t < end; ++t) {
        Rng rng(seed ^ (kSeedMix * (t + 1)));
        injector_.sampleLifetimeAppend(rng, arena.pool());
        arena.endTrial();
    }
    shard.totalFaults += arena.eventCount();

    // Phase 2: trial execution over span views into the arena.
    // Bookkeeping runs in the same ascending-t order as the old
    // fused loop, so shard contents are bit-identical.
    for (u64 t = begin; t < end; ++t) {
        const u64 i = t - begin;
        FaultClass trigger = FaultClass::Bit;
        const double fail_at = runTrial(scheme, arena.trialEvents(i),
                                        &trigger, active,
                                        arena.trialTimes(i));
        if (fail_at >= 0.0) {
            ++shard.failures;
            ++shard.failuresByClass[trigger];
            const u32 year = std::min(
                years - 1,
                static_cast<u32>(std::floor(fail_at / kHoursPerYear)));
            for (u32 y = year; y < years; ++y)
                ++shard.failuresByYear[y];
        }
    }
}

McResult
MonteCarlo::run(RasScheme &scheme, u64 trials, u64 seed,
                unsigned threads) const
{
    McResult res;
    res.trials = trials;
    const u32 years =
        static_cast<u32>(std::ceil(cfg_.lifetimeHours / kHoursPerYear));
    res.failuresByYear.assign(years, 0);

    const unsigned want = threads == 0 ? citadelThreads() : threads;
    const unsigned nthreads = static_cast<unsigned>(
        std::min<u64>(want, std::max<u64>(1, trials)));

    std::vector<Shard> shards;
    if (nthreads <= 1) {
        // Legacy serial path: runs on the caller's scheme in place
        // (no clone needed) with scratch reuse across trials.
        shards.resize(1);
        shards[0].failuresByYear.assign(years, 0);
        FaultArena arena;
        std::vector<Fault> active;
        for (u64 b = 0; b < trials; b += kSerialBatch)
            runRange(scheme, b, std::min(b + kSerialBatch, trials), seed,
                     years, shards[0], arena, active);
    } else {
        // Shard the trial counter over per-worker scheme clones.
        // Chunks are handed out dynamically; because trial t's seed
        // and the shard merge are both order-independent, any
        // chunk-to-worker assignment yields bit-identical results.
        //
        // TSA audit (DESIGN.md section 13): no CITADEL_GUARDED_BY
        // fields here by design. Worker w writes only shards[w] and
        // its own locals; the sole shared mutable object is `next`,
        // a std::atomic claim counter. The merge below runs after
        // runOnWorkers() returns, which is the joining barrier.
        ThreadPool pool(nthreads);
        shards.resize(pool.size());
        const u64 chunk = std::max<u64>(
            1, std::min<u64>(1024, trials / (pool.size() * 8ull) + 1));
        std::atomic<u64> next{0};
        pool.runOnWorkers([&](unsigned worker) {
            Shard &shard = shards[worker];
            shard.failuresByYear.assign(years, 0);
            const SchemePtr local = scheme.clone();
            FaultArena arena;
            std::vector<Fault> active;
            for (;;) {
                const u64 begin =
                    next.fetch_add(chunk, std::memory_order_relaxed);
                if (begin >= trials)
                    break;
                runRange(*local, begin, std::min(begin + chunk, trials),
                         seed, years, shard, arena, active);
            }
        });
    }

    u64 total_faults = 0;
    for (const Shard &shard : shards) {
        res.failures += shard.failures;
        total_faults += shard.totalFaults;
        for (u32 y = 0; y < years; ++y)
            res.failuresByYear[y] += shard.failuresByYear[y];
        for (const auto &[cls, count] : shard.failuresByClass)
            res.failuresByClass[cls] += count;
    }
    res.meanFaultsPerTrial =
        trials ? static_cast<double>(total_faults) /
                     static_cast<double>(trials)
               : 0.0;
    return res;
}

} // namespace citadel
