#include "faults/monte_carlo.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace citadel {

Proportion
McResult::probFailByYear(u32 years) const
{
    if (years == 0 || years > failuresByYear.size())
        panic("probFailByYear: year %u out of range", years);
    return wilson(failuresByYear[years - 1], trials);
}

MonteCarlo::MonteCarlo(const SystemConfig &cfg) : cfg_(cfg), injector_(cfg)
{
}

double
MonteCarlo::runTrial(RasScheme &scheme, const std::vector<Fault> &events,
                     FaultClass *trigger_class) const
{
    scheme.reset(cfg_);
    std::vector<Fault> active;
    double last_scrub = 0.0;

    for (const Fault &f : events) {
        // Process all scrub boundaries crossed since the last event: a
        // transient fault is cleared at the first boundary after its
        // arrival; sparing mechanisms retire permanent faults there too.
        const double boundary =
            std::floor(f.timeHours / cfg_.scrubHours) * cfg_.scrubHours;
        if (boundary > last_scrub) {
            std::erase_if(active, [&](const Fault &a) {
                return a.transient && a.timeHours < boundary;
            });
            scheme.onScrub(active);
            last_scrub = boundary;
        }

        if (scheme.absorb(f))
            continue;

        active.push_back(f);
        if (scheme.uncorrectable(active)) {
            if (trigger_class)
                *trigger_class = f.cls;
            return f.timeHours;
        }
    }
    return -1.0;
}

McResult
MonteCarlo::run(RasScheme &scheme, u64 trials, u64 seed) const
{
    McResult res;
    res.trials = trials;
    const u32 years =
        static_cast<u32>(std::ceil(cfg_.lifetimeHours / kHoursPerYear));
    res.failuresByYear.assign(years, 0);

    double total_faults = 0.0;
    for (u64 t = 0; t < trials; ++t) {
        Rng rng(seed ^ (0xA24BAED4963EE407ull * (t + 1)));
        const std::vector<Fault> events = injector_.sampleLifetime(rng);
        total_faults += static_cast<double>(events.size());
        FaultClass trigger = FaultClass::Bit;
        const double fail_at = runTrial(scheme, events, &trigger);
        if (fail_at >= 0.0) {
            ++res.failures;
            ++res.failuresByClass[trigger];
            const u32 year = std::min(
                years - 1,
                static_cast<u32>(std::floor(fail_at / kHoursPerYear)));
            for (u32 y = year; y < years; ++y)
                ++res.failuresByYear[y];
        }
    }
    res.meanFaultsPerTrial =
        trials ? total_faults / static_cast<double>(trials) : 0.0;
    return res;
}

} // namespace citadel
