/**
 * @file
 * Fault representation for the Monte Carlo reliability engine.
 *
 * Following FaultSim (Roberts & Nair, The Memory Forum / ISCA-41), a
 * fault is a *range* over the physical coordinate space
 * (stack, channel, bank, row, col, bit). Each dimension carries a
 * (value, mask) pair: coordinate `a` is inside the range iff
 * ((a ^ value) & mask) == 0. A zero mask makes the dimension a
 * wildcard. This encodes every fault granularity the paper models —
 * a single bit, a 64-bit word, a column (one line slot in every row of
 * a bank), a row, an aligned sub-array, a whole bank, a whole channel,
 * the bit pattern of a faulty data TSV, and the half-address-space
 * shadow of a faulty address TSV — while keeping intersection tests
 * O(1).
 *
 * The metadata (ECC) die is represented as channel index
 * `geom.channelsPerStack` (8 in the baseline), so faults in the ECC die
 * participate in the same algebra.
 */

#ifndef CITADEL_FAULTS_FAULT_H
#define CITADEL_FAULTS_FAULT_H

#include <string>

#include "stack/geometry.h"

namespace citadel {

/** Fault granularities modeled by the simulator. */
enum class FaultClass
{
    Bit,        ///< Single bit.
    Word,       ///< Aligned 64-bit word within a line.
    Column,     ///< One line slot (CAS address) across all rows of a bank.
    Row,        ///< One full row of a bank.
    SubArray,   ///< Aligned block of rows (partial-bank failure).
    Bank,       ///< Entire bank.
    Channel,    ///< Entire channel/die (e.g., command-TSV fault).
    DataTsv,    ///< Faulty data TSV: bits {d, d+N} of every line in channel.
    AddrTsvRow, ///< Faulty row-address TSV: half of all rows in channel.
    AddrTsvBank ///< Faulty bank-address TSV: half of all banks in channel.
};

/** Display name of a fault class. */
const char *faultClassName(FaultClass cls);

/** True for the three TSV-originated classes (plus Channel when it is
 *  produced by a command-TSV fault; the injector tags that via
 *  Fault::fromTsv). */
bool isTsvClass(FaultClass cls);

/** One dimension of a fault range: matches a iff ((a^value)&mask)==0. */
struct DimSpec
{
    u32 value = 0;
    u32 mask = 0;

    /** Fully specified (single coordinate) dimension. */
    static DimSpec exact(u32 v) { return {v, 0xFFFFFFFFu}; }
    /** Wildcard dimension. */
    static DimSpec wild() { return {0, 0}; }
    /** Partial dimension: significant bits given by mask. */
    static DimSpec masked(u32 v, u32 m) { return {v & m, m}; }

    bool matches(u32 a) const { return ((a ^ value) & mask) == 0; }

    /** Do two specs admit a common coordinate? */
    bool intersects(const DimSpec &o) const
    {
        return ((value ^ o.value) & mask & o.mask) == 0;
    }

    /** Number of matching coordinates in a space of `width` bits. */
    u64 coverage(u32 width) const;

    bool operator==(const DimSpec &) const = default;
};

/**
 * A fault range plus bookkeeping: class, permanence and arrival time.
 */
struct Fault
{
    DimSpec stack;
    DimSpec channel;
    DimSpec bank;
    DimSpec row;
    DimSpec col;
    DimSpec bit;

    FaultClass cls = FaultClass::Bit;
    bool transient = false;
    bool fromTsv = false;   ///< Originated in a TSV (repairable by swap).
    double timeHours = 0.0; ///< Arrival time within the lifetime.
    TsvLane tsvIndex{};     ///< For TSV faults: which TSV lane.

    /** Does this fault cover the given bit coordinate? */
    bool covers(StackId s, ChannelId ch, BankId b, RowId r, ColId c,
                u32 bit_pos) const;

    /** Do two fault ranges overlap anywhere? */
    bool intersects(const Fault &o) const;

    /**
     * Do the ranges overlap when projected onto a subset of dimensions?
     * Used by scheme evaluators that compare faults within a parity
     * group or codeword (e.g., same (row, col) across banks).
     */
    bool intersectsRows(const Fault &o) const
    {
        return row.intersects(o.row);
    }
    bool intersectsCols(const Fault &o) const
    {
        return col.intersects(o.col) && bit.intersects(o.bit);
    }

    /** Number of distinct rows covered within one bank. */
    u64 rowsCovered(const StackGeometry &geom) const;
    /** Number of distinct banks covered within one channel. */
    u64 banksCovered(const StackGeometry &geom) const;
    /** Number of distinct channels covered (data + ECC die space). */
    u64 channelsCovered(const StackGeometry &geom) const;

    /** Bits of one specific cache line covered by this fault (0..512). */
    u64 bitsPerLine(const StackGeometry &geom) const;

    /** Single (channel, bank) unit? (needed for D1 reconstruction). */
    bool singleBank(const StackGeometry &geom) const
    {
        return banksCovered(geom) == 1 && channelsCovered(geom) == 1;
    }

    std::string describe() const;
};

} // namespace citadel

#endif // CITADEL_FAULTS_FAULT_H
