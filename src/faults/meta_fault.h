/**
 * @file
 * Control-plane (metadata) fault model.
 *
 * The data-plane Fault (fault.h) covers DRAM cells and TSVs; this file
 * covers the RAS machinery's *own* state -- the structures Citadel
 * consults to steer every access. A flipped RRT entry misroutes a
 * spared row, a flipped BRT entry un-decommissions a failed bank, a
 * corrupted TSV redirection register un-does a swap, and a corrupted
 * cached D1 parity line would poison reconstructions. FaultSim-lineage
 * simulators (and the Monte Carlo evaluator here, until this PR)
 * silently assume these SRAM structures are perfect; Cerberus-style
 * cross-layer co-design argues they must carry their own protection.
 *
 * A MetaFault names one word of one protected structure and the bit
 * pattern flipped in it. The ProtectedMetaStore (src/ras) applies the
 * flip to its mirrored+SECDED encoded records; the consistency scrub
 * then detects, retries (transients), corrects (single bit), restores
 * from the mirror (multi-bit), or declares the record lost -- at which
 * point the covered remap entry is dropped and the underlying data
 * fault reactivates, feeding the degradation ladder.
 */

#ifndef CITADEL_FAULTS_META_FAULT_H
#define CITADEL_FAULTS_META_FAULT_H

#include <string>

#include "common/strong_id.h"

namespace citadel {

/** Which control-plane structure a metadata fault lands in. */
enum class MetaTarget
{
    RrtEntry,       ///< A Row Remap Table entry (per-unit slot).
    BrtEntry,       ///< A Bank Remap Table entry (per-stack slot).
    TsvRegister,    ///< A TSV-SWAP redirection register (per channel).
    ParityCacheLine ///< A cached D1 parity line (clean-copy cache way).
};

const char *metaTargetName(MetaTarget target);

/**
 * One control-plane upset: the targeted word, when it arrives, and the
 * bits it flips in the primary and mirror copies. Most upsets hit one
 * copy (mirrorFlipMask == 0); a common-mode hit on both copies is the
 * pattern that can defeat mirroring and must be survived by the
 * degradation ladder instead.
 */
struct MetaFault
{
    MetaTarget target = MetaTarget::RrtEntry;
    StackId stack{};
    ChannelId channel{}; ///< TsvRegister target (and RRT unit's channel).
    UnitId unit{};       ///< RrtEntry: flattened (die, bank) unit.
    MetaSlotId slot{};   ///< Entry index / register lane / cache way.

    u64 flipMask = 0;       ///< Bits flipped in the primary copy.
    u64 mirrorFlipMask = 0; ///< Bits flipped in the mirror copy.

    /** Transient upsets (particle strikes on SRAM) clear on the
     *  scrub's read-retry; permanent ones (stuck cells) persist. */
    bool transient = false;

    double timeHours = 0.0; ///< Arrival time within the lifetime.

    std::string describe() const;
};

} // namespace citadel

#endif // CITADEL_FAULTS_META_FAULT_H
