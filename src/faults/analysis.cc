#include "faults/analysis.h"

#include <algorithm>
#include <set>

#include "common/log.h"

namespace citadel {

double
SparingHistogram::fraction(u64 rows) const
{
    if (totalFaultyBanks == 0)
        return 0.0;
    auto it = counts.find(rows);
    if (it == counts.end())
        return 0.0;
    return static_cast<double>(it->second) /
           static_cast<double>(totalFaultyBanks);
}

double
SparingHistogram::fractionAtMost(u64 rows) const
{
    if (totalFaultyBanks == 0)
        return 0.0;
    u64 n = 0;
    for (const auto &[r, c] : counts)
        if (r <= rows)
            n += c;
    return static_cast<double>(n) / static_cast<double>(totalFaultyBanks);
}

double
SparingHistogram::fractionAtLeast(u64 rows) const
{
    if (totalFaultyBanks == 0)
        return 0.0;
    u64 n = 0;
    for (const auto &[r, c] : counts)
        if (r >= rows)
            n += c;
    return static_cast<double>(n) / static_cast<double>(totalFaultyBanks);
}

SparingAnalysis::SparingAnalysis(const SystemConfig &cfg)
    : cfg_(cfg), injector_(cfg)
{
}

u64
SparingAnalysis::rowsRequired(const Fault &f) const
{
    // Row-granularity sparing must replace every row the fault touches:
    // a column fault (row wildcard) consumes the whole bank's rows.
    return f.rowsCovered(cfg_.geom);
}

u64
SparingAnalysis::rowsRequiredForBank(
    const std::vector<Fault> &bank_faults) const
{
    const u64 all = cfg_.geom.rowsPerBank;
    std::set<u32> exact_rows;
    std::set<std::pair<u32, u32>> masked; // (mask, value)

    for (const Fault &f : bank_faults) {
        const u64 rows = rowsRequired(f);
        if (rows >= all)
            return all;
        if (f.row.mask == 0xFFFFFFFFu)
            exact_rows.insert(f.row.value);
        else
            masked.insert({f.row.mask, f.row.value});
    }

    u64 total = 0;
    for (const auto &[mask, value] : masked) {
        DimSpec d{value, mask};
        total += d.coverage(cfg_.geom.rowBits());
    }
    for (u32 r : exact_rows) {
        bool inside = false;
        for (const auto &[mask, value] : masked)
            if (((r ^ value) & mask) == 0) {
                inside = true;
                break;
            }
        if (!inside)
            ++total;
    }
    return std::min(total, all);
}

std::map<u64, std::vector<Fault>>
SparingAnalysis::groupPermanentByBank(const std::vector<Fault> &events) const
{
    std::map<u64, std::vector<Fault>> groups;
    const u32 dies = cfg_.diesPerStack();
    const u32 banks = cfg_.geom.banksPerChannel;
    for (const Fault &f : events) {
        if (f.transient)
            continue;
        if (f.stack.mask == 0 || f.channel.mask == 0)
            panic("analysis: faults must carry exact stack/channel");
        const u32 s = f.stack.value;
        const u32 ch = f.channel.value;
        for (u32 b = 0; b < banks; ++b) {
            if (!f.bank.matches(b))
                continue;
            const u64 key = (static_cast<u64>(s) * dies + ch) * banks + b;
            groups[key].push_back(f);
        }
    }
    return groups;
}

SparingHistogram
SparingAnalysis::histogram(u64 trials, u64 seed) const
{
    SparingHistogram h;
    for (u64 t = 0; t < trials; ++t) {
        Rng rng(seed ^ (0xC2B2AE3D27D4EB4Full * (t + 1)));
        const auto events = injector_.sampleLifetime(rng);
        for (const auto &[key, faults] : groupPermanentByBank(events)) {
            (void)key;
            ++h.totalFaultyBanks;
            ++h.counts[rowsRequiredForBank(faults)];
        }
    }
    return h;
}

FailedBankDistribution
SparingAnalysis::failedBanks(u64 trials, u64 row_threshold, u64 seed) const
{
    FailedBankDistribution d;
    for (u64 t = 0; t < trials; ++t) {
        Rng rng(seed ^ (0x9E3779B97F4A7C15ull * (t + 1)));
        const auto events = injector_.sampleLifetime(rng);
        u64 failed = 0;
        for (const auto &[key, faults] : groupPermanentByBank(events)) {
            (void)key;
            if (rowsRequiredForBank(faults) > row_threshold)
                ++failed;
        }
        if (failed == 0)
            continue;
        ++d.systemsWithFailedBank;
        if (failed == 1)
            ++d.one;
        else if (failed == 2)
            ++d.two;
        else
            ++d.threePlus;
    }
    return d;
}

} // namespace citadel
