/**
 * @file
 * Per-worker arena for batched Monte Carlo trial execution (DESIGN.md
 * section 14). A worker samples a whole chunk of lifetimes into one
 * flat fault pool — per-trial extents recorded as offsets, arrival
 * times mirrored into a dense SoA array for the scrub-boundary scan —
 * and then executes the trials against span views into that pool. In
 * steady state a chunk does no heap traffic at all: beginBatch() is an
 * O(1) watermark reset (Fault is trivially destructible, so clear()
 * frees nothing), and the vectors keep their high-water capacity for
 * the next chunk.
 *
 * Reset discipline: every beginBatch() bumps the generation counter;
 * spans and time pointers handed out by trialEvents()/trialTimes()
 * are valid only until the next beginBatch() on the same arena.
 * Callers that stash a view across batches can assert on generation()
 * to catch the misuse.
 */

#ifndef CITADEL_FAULTS_FAULT_ARENA_H
#define CITADEL_FAULTS_FAULT_ARENA_H

#include <span>
#include <vector>

#include "faults/fault.h"

namespace citadel {

/** Flat SoA store for one worker's in-flight chunk of trials. */
class FaultArena
{
  public:
    /** Watermark-reset to an empty batch (capacity retained). */
    void beginBatch()
    {
        events_.clear();
        times_.clear();
        offsets_.assign(1, 0);
        ++generation_;
    }

    /**
     * Staging vector the injector appends the current trial's faults
     * to (via FaultInjector::sampleLifetimeAppend); everything past
     * the last sealed offset belongs to the open trial.
     */
    std::vector<Fault> &pool() { return events_; }

    /** Seal the open trial: record its extent and mirror the arrival
     *  times into the dense SoA array. */
    void endTrial()
    {
        for (std::size_t i = times_.size(); i < events_.size(); ++i)
            times_.push_back(events_[i].timeHours);
        offsets_.push_back(events_.size());
    }

    /** Sealed trials in the current batch. */
    u64 trials() const { return offsets_.size() - 1; }

    /** Total faults across all sealed trials (open trial excluded). */
    u64 eventCount() const { return offsets_.back(); }

    /** Fault records of sealed trial i; valid until beginBatch(). */
    std::span<const Fault> trialEvents(u64 i) const
    {
        return {events_.data() + offsets_[i],
                offsets_[i + 1] - offsets_[i]};
    }

    /** Dense arrival-time array of sealed trial i, index-aligned with
     *  trialEvents(i); valid until beginBatch(). */
    const double *trialTimes(u64 i) const
    {
        return times_.data() + offsets_[i];
    }

    /** Bumped by every beginBatch(); see the reset discipline above. */
    u64 generation() const { return generation_; }

  private:
    std::vector<Fault> events_;
    std::vector<double> times_;
    std::vector<std::size_t> offsets_ = {0};
    u64 generation_ = 0;
};

} // namespace citadel

#endif // CITADEL_FAULTS_FAULT_ARENA_H
