#include "faults/injector.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/log.h"

namespace citadel {

void
SystemConfig::validate() const
{
    geom.validate();
    if (!(lifetimeHours > 0.0))
        fatal("config: lifetimeHours must be positive (got %g)",
              lifetimeHours);
    if (!(scrubHours > 0.0))
        fatal("config: scrubHours must be positive (got %g)", scrubHours);
    if (tsvDeviceFit < 0.0)
        fatal("config: tsvDeviceFit must be >= 0 (got %g)", tsvDeviceFit);
    if (subArrayFraction < 0.0 || subArrayFraction > 1.0)
        fatal("config: subArrayFraction must be in [0, 1] (got %g)",
              subArrayFraction);
    if (subArrayRows == 0 || (subArrayRows & (subArrayRows - 1)) != 0 ||
        subArrayRows > geom.rowsPerBank)
        fatal("config: subArrayRows (%u) must be a power of two <= "
              "rowsPerBank (%u)",
              subArrayRows, geom.rowsPerBank);
    if (metaFit < 0.0)
        fatal("config: metaFit must be >= 0 (got %g)", metaFit);
    if (metaTransientFraction < 0.0 || metaTransientFraction > 1.0)
        fatal("config: metaTransientFraction must be in [0, 1] (got %g)",
              metaTransientFraction);
    if (metaCommonModeFraction < 0.0 || metaCommonModeFraction > 1.0)
        fatal("config: metaCommonModeFraction must be in [0, 1] (got %g)",
              metaCommonModeFraction);
    const FitPair *pairs[] = {&rates.bit, &rates.word, &rates.column,
                              &rates.row, &rates.bank};
    for (const FitPair *p : pairs)
        if (p->transientFit < 0.0 || p->permanentFit < 0.0)
            fatal("config: FIT rates must be >= 0");
}

FaultInjector::FaultInjector(const SystemConfig &cfg)
    : cfg_(cfg), tsvMap_(cfg.geom)
{
    cfg_.validate();

    // Precompute the per-die Poisson cells in the exact order the
    // sampling loop draws them — [Bit, Word, Column, Row, Bank] x
    // {transient, permanent} — so the draw stream is byte-for-byte
    // the stream the uncached loop produced (frozen by the
    // determinism contract, DESIGN.md section 9).
    const FitTable &r = cfg_.rates;
    const struct { FaultClass cls; const FitPair *fit; } classes[] = {
        {FaultClass::Bit, &r.bit},       {FaultClass::Word, &r.word},
        {FaultClass::Column, &r.column}, {FaultClass::Row, &r.row},
        {FaultClass::Bank, &r.bank},
    };
    auto makeCell = [&](FaultClass cls, double fit, bool transient) {
        RateCell cell;
        cell.cls = cls;
        cell.transient = transient;
        cell.lambda = fitToPerHour(fit) * cfg_.lifetimeHours;
        if (cell.lambda > 0.0 && cell.lambda < 30.0)
            cell.expNegLambda = std::exp(-cell.lambda);
        return cell;
    };
    for (const auto &c : classes) {
        dieCells_.push_back(makeCell(c.cls, c.fit->transientFit, true));
        dieCells_.push_back(makeCell(c.cls, c.fit->permanentFit, false));
    }
    tsvCell_ = makeCell(FaultClass::DataTsv, cfg_.tsvDeviceFit, false);
}

u64
FaultInjector::drawCount(Rng &rng, const RateCell &cell)
{
    // Mirror Rng::poisson's branch structure exactly: zero rate draws
    // nothing, the small-lambda Knuth path reuses the cached
    // exp(-lambda), and the (test-only) large-lambda normal
    // approximation falls back to the uncached entry point.
    if (cell.lambda == 0.0)
        return 0;
    if (cell.lambda < 30.0)
        return rng.poissonKnuth(cell.expNegLambda);
    return rng.poisson(cell.lambda);
}

void
FaultInjector::sampleClass(Rng &rng, std::vector<Fault> &out,
                           const RateCell &cell, StackId stack,
                           ChannelId channel) const
{
    const u64 n = drawCount(rng, cell);
    for (u64 i = 0; i < n; ++i) {
        const double t = rng.uniform(0.0, cfg_.lifetimeHours);
        FaultClass effective = cell.cls;
        if (cell.cls == FaultClass::Bank &&
            rng.chance(cfg_.subArrayFraction))
            effective = FaultClass::SubArray;
        out.push_back(
            makeFault(rng, effective, stack, channel, cell.transient, t));
    }
}

std::vector<Fault>
FaultInjector::sampleLifetime(Rng &rng) const
{
    std::vector<Fault> out;
    sampleLifetime(rng, out);
    return out;
}

void
FaultInjector::sampleLifetime(Rng &rng, std::vector<Fault> &out) const
{
    out.clear();
    sampleLifetimeAppend(rng, out);
}

std::size_t
FaultInjector::sampleLifetimeAppend(Rng &rng, std::vector<Fault> &out) const
{
    const std::size_t base = out.size();

    for (u32 s = 0; s < cfg_.geom.stacks; ++s) {
        for (u32 ch = 0; ch < cfg_.diesPerStack(); ++ch)
            for (const RateCell &cell : dieCells_)
                sampleClass(rng, out, cell, StackId{s}, ChannelId{ch});
        // TSV faults: per-stack device rate, permanent.
        const u64 n = drawCount(rng, tsvCell_);
        for (u64 i = 0; i < n; ++i)
            out.push_back(makeTsvFault(
                rng, StackId{s}, rng.uniform(0.0, cfg_.lifetimeHours)));
    }

    std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end(),
              [](const Fault &a, const Fault &b) {
                  return a.timeHours < b.timeHours;
              });
    return out.size() - base;
}

Fault
FaultInjector::makeFault(Rng &rng, FaultClass cls, StackId stack,
                         ChannelId channel, bool transient,
                         double time_hours) const
{
    const StackGeometry &g = cfg_.geom;
    Fault f;
    f.cls = cls;
    f.transient = transient;
    f.timeHours = time_hours;
    f.stack = DimSpec::exact(stack.value());
    f.channel = DimSpec::exact(channel.value());
    f.bank = DimSpec::wild();
    f.row = DimSpec::wild();
    f.col = DimSpec::wild();
    f.bit = DimSpec::wild();

    auto rand_bank = [&] { return DimSpec::exact(
        static_cast<u32>(rng.below(g.banksPerChannel))); };
    auto rand_row = [&] { return DimSpec::exact(
        static_cast<u32>(rng.below(g.rowsPerBank))); };
    auto rand_col = [&] { return DimSpec::exact(
        static_cast<u32>(rng.below(g.linesPerRow()))); };

    switch (cls) {
      case FaultClass::Bit:
        f.bank = rand_bank();
        f.row = rand_row();
        f.col = rand_col();
        f.bit = DimSpec::exact(static_cast<u32>(rng.below(g.bitsPerLine())));
        break;
      case FaultClass::Word: {
        f.bank = rand_bank();
        f.row = rand_row();
        f.col = rand_col();
        // 64-bit aligned word within the line.
        const u32 words = g.bitsPerLine() / 64;
        const u32 w = static_cast<u32>(rng.below(words));
        const u32 full = (1u << g.bitBits()) - 1;
        f.bit = DimSpec::masked(w * 64, full & ~63u);
        break;
      }
      case FaultClass::Column:
        f.bank = rand_bank();
        f.col = rand_col();
        break;
      case FaultClass::Row:
        f.bank = rand_bank();
        f.row = rand_row();
        break;
      case FaultClass::SubArray: {
        f.bank = rand_bank();
        const u32 blocks = g.rowsPerBank / cfg_.subArrayRows;
        const u32 base =
            static_cast<u32>(rng.below(blocks)) * cfg_.subArrayRows;
        const u32 full = (1u << g.rowBits()) - 1;
        f.row = DimSpec::masked(base, full & ~(cfg_.subArrayRows - 1));
        break;
      }
      case FaultClass::Bank:
        f.bank = rand_bank();
        break;
      case FaultClass::Channel:
        break;
      default:
        panic("makeFault: class %s is TSV-only", faultClassName(cls));
    }
    return f;
}

std::vector<MetaFault>
FaultInjector::sampleMetaLifetime(Rng &rng, const MetaGeometry &mg) const
{
    std::vector<MetaFault> out;
    if (cfg_.metaFit <= 0.0)
        return out;
    const double lambda = fitToPerHour(cfg_.metaFit) * cfg_.lifetimeHours;
    for (u32 s = 0; s < cfg_.geom.stacks; ++s) {
        const u64 n = rng.poisson(lambda);
        for (u64 i = 0; i < n; ++i) {
            const double t = rng.uniform(0.0, cfg_.lifetimeHours);
            const bool transient = rng.chance(cfg_.metaTransientFraction);
            out.push_back(makeMetaFault(rng, StackId{s}, mg, transient, t));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const MetaFault &a, const MetaFault &b) {
                  return a.timeHours < b.timeHours;
              });
    return out;
}

MetaFault
FaultInjector::makeMetaFault(Rng &rng, StackId stack, const MetaGeometry &mg,
                             bool transient, double time_hours) const
{
    const StackGeometry &g = cfg_.geom;
    MetaFault f;
    f.stack = stack;
    f.transient = transient;
    f.timeHours = time_hours;

    // Mostly single-bit strikes; a tail of adjacent double-bit upsets,
    // which is what SECDED-vs-mirror layering is sized against.
    auto flip = [&]() -> u64 {
        const u32 b = static_cast<u32>(rng.below(64));
        u64 m = u64{1} << b;
        if (rng.chance(0.25))
            m |= u64{1} << ((b + 1) % 64);
        return m;
    };

    switch (static_cast<u32>(rng.below(4))) {
      case 0: {
        f.target = MetaTarget::RrtEntry;
        const u32 units = cfg_.diesPerStack() * g.banksPerChannel;
        const u32 u = static_cast<u32>(rng.below(units));
        f.unit = UnitId{u};
        f.channel = ChannelId{u / g.banksPerChannel};
        f.slot = MetaSlotId{static_cast<u32>(rng.below(mg.rrtSlotsPerUnit))};
        break;
      }
      case 1:
        f.target = MetaTarget::BrtEntry;
        f.slot = MetaSlotId{static_cast<u32>(rng.below(mg.brtSlots))};
        break;
      case 2:
        f.target = MetaTarget::TsvRegister;
        f.channel = ChannelId{
            static_cast<u32>(rng.below(g.channelsPerStack))};
        f.slot = MetaSlotId{0};
        break;
      default:
        f.target = MetaTarget::ParityCacheLine;
        f.slot = MetaSlotId{static_cast<u32>(rng.below(mg.parityCacheWays))};
        break;
    }

    f.flipMask = flip();
    if (rng.chance(cfg_.metaCommonModeFraction))
        f.mirrorFlipMask = flip();
    return f;
}

Fault
FaultInjector::makeTsvFault(Rng &rng, StackId stack,
                            double time_hours) const
{
    const StackGeometry &g = cfg_.geom;
    Fault f;
    f.transient = false; // TSV faults are physical defects.
    f.fromTsv = true;
    f.timeHours = time_hours;
    f.stack = DimSpec::exact(stack.value());
    // TSVs serve the data channels; the ECC die's dedicated lanes are
    // folded into the same device-level rate but modeled on data channels
    // (see DESIGN.md).
    f.channel = DimSpec::exact(
        static_cast<u32>(rng.below(g.channelsPerStack)));
    f.bank = DimSpec::wild();
    f.row = DimSpec::wild();
    f.col = DimSpec::wild();
    f.bit = DimSpec::wild();

    const u32 total = g.dataTsvsPerChannel + g.addrTsvsPerChannel;
    const u32 pick = static_cast<u32>(rng.below(total));
    if (pick < g.dataTsvsPerChannel) {
        const TsvLane d{pick};
        f.cls = FaultClass::DataTsv;
        f.tsvIndex = d;
        u32 value;
        u32 mask;
        tsvMap_.dataTsvBitPattern(d, value, mask);
        f.bit = DimSpec::masked(value, mask);
        return f;
    }

    const TsvLane a{pick - g.dataTsvsPerChannel};
    f.tsvIndex = a;
    switch (tsvMap_.addrTsvEffect(a)) {
      case AtsvEffect::HalfRows: {
        f.cls = FaultClass::AddrTsvRow;
        const u32 b = tsvMap_.addrTsvRowBit(a);
        const u32 stuck = rng.chance(0.5) ? 1u : 0u;
        f.row = DimSpec::masked(stuck << b, 1u << b);
        break;
      }
      case AtsvEffect::HalfBanks: {
        f.cls = FaultClass::AddrTsvBank;
        const u32 b = tsvMap_.addrTsvBankBit(a);
        const u32 stuck = rng.chance(0.5) ? 1u : 0u;
        f.bank = DimSpec::masked(stuck << b, 1u << b);
        break;
      }
      case AtsvEffect::WholeChannel:
        f.cls = FaultClass::Channel;
        break;
    }
    return f;
}

} // namespace citadel
