#include "faults/meta_fault.h"

#include <sstream>

namespace citadel {

const char *
metaTargetName(MetaTarget target)
{
    switch (target) {
      case MetaTarget::RrtEntry: return "rrt-entry";
      case MetaTarget::BrtEntry: return "brt-entry";
      case MetaTarget::TsvRegister: return "tsv-register";
      case MetaTarget::ParityCacheLine: return "parity-cache-line";
    }
    return "?";
}

std::string
MetaFault::describe() const
{
    std::ostringstream os;
    os << (transient ? "transient" : "permanent") << " "
       << metaTargetName(target) << " stack=" << stack;
    switch (target) {
      case MetaTarget::RrtEntry:
        os << " unit=" << unit << " slot=" << slot;
        break;
      case MetaTarget::BrtEntry:
      case MetaTarget::ParityCacheLine:
        os << " slot=" << slot;
        break;
      case MetaTarget::TsvRegister:
        os << " channel=" << channel;
        break;
    }
    os << std::hex << " flip=0x" << flipMask;
    if (mirrorFlipMask != 0)
        os << " mirrorFlip=0x" << mirrorFlipMask;
    return os.str();
}

} // namespace citadel
