/**
 * @file
 * Synthetic workload generator standing in for the paper's SPEC
 * CPU2006, PARSEC and BioBench traces (Section III-B).
 *
 * Real traces are proprietary, so each of the 38 benchmarks the paper
 * names is characterized by the tuple that drives the memory-system
 * behaviour the evaluation depends on: LLC misses per kilo-instruction,
 * spatial run length (row-buffer locality), write fraction (dirty-line
 * probability) and footprint. The values follow published
 * characterization studies of these suites; see DESIGN.md for the
 * substitution rationale. Absolute IPC is not meaningful -- normalized
 * execution time and relative power are.
 */

#ifndef CITADEL_SIM_WORKLOAD_H
#define CITADEL_SIM_WORKLOAD_H

#include <string>
#include <vector>

#include "common/rng.h"
#include "stack/geometry.h"

namespace citadel {

/** Benchmark suite tags used by per-suite summaries (Figs 13 and 16). */
enum class Suite
{
    SpecFp,
    SpecInt,
    Parsec,
    BioBench,
};

const char *suiteName(Suite s);

/** Memory-behaviour characterization of one benchmark. */
struct BenchmarkProfile
{
    std::string name;
    Suite suite;
    double mpki;       ///< LLC read misses per 1000 instructions.
    double runLength;  ///< Mean consecutive 64B lines per access burst.
    double writeFrac;  ///< Probability a filled line becomes dirty.
    u64 footprintMB;   ///< Working-set size driving address reuse.
};

/** The 29 SPEC CPU2006 + 7 PARSEC + 2 BioBench benchmarks evaluated. */
const std::vector<BenchmarkProfile> &allBenchmarks();

/** Look up a profile by name; fatal() if unknown. */
const BenchmarkProfile &findBenchmark(const std::string &name);

/**
 * Generates the LLC-miss address stream for one core running a
 * benchmark in rate mode: bursts of sequential lines (geometric run
 * lengths) at random positions inside the core's private slice of the
 * address space.
 */
class AddressStream
{
  public:
    /**
     * @param profile Benchmark characterization.
     * @param core Core index (offsets the footprint so rate-mode copies
     *        do not share data, as in the paper's setup).
     * @param total_lines Number of cache lines in physical memory.
     * @param seed RNG seed.
     */
    AddressStream(const BenchmarkProfile &profile, u32 core,
                  u64 total_lines, u64 seed);

    /** Next missing line address (system-wide line index). */
    LineAddr nextLine();

  private:
    const BenchmarkProfile &profile_;
    Rng rng_;
    u64 regionBase_;  ///< First line of this core's footprint slice.
    u64 regionLines_; ///< Lines in the footprint.
    u64 cursor_ = 0;  ///< Current position within a sequential run.
    u64 runLeft_ = 0; ///< Lines remaining in the current run.
};

} // namespace citadel

#endif // CITADEL_SIM_WORKLOAD_H
