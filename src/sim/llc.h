/**
 * @file
 * Shared last-level cache model (8MB, 8-way, LRU; Table II).
 *
 * The simulator is LLC-miss driven: the workload generator emits the
 * miss stream directly, and every miss installs a line (dirty with the
 * benchmark's write fraction). The LLC's job in this model is the part
 * the paper evaluates: Dimension-1 parity lines cached on demand
 * (Section VI-C, Fig 12/13) contend with data fills, which determines
 * the parity-update hit rate and hence 3DP's performance overhead.
 */

#ifndef CITADEL_SIM_LLC_H
#define CITADEL_SIM_LLC_H

#include <vector>

#include "stack/geometry.h"

namespace citadel {

/** LLC occupancy/traffic statistics. */
struct LlcStats
{
    u64 dataFills = 0;
    u64 dirtyDataEvictions = 0;
    u64 parityProbes = 0;
    u64 parityHits = 0;
    u64 parityFills = 0;
    u64 dirtyParityEvictions = 0;

    double parityHitRate() const
    {
        return parityProbes
                   ? static_cast<double>(parityHits) /
                         static_cast<double>(parityProbes)
                   : 0.0;
    }
};

/** Set-associative LRU cache over line addresses. */
class Llc
{
  public:
    /** Information about a line displaced by a fill. */
    struct Victim
    {
        bool valid = false;
        LineAddr addr{};
        bool dirty = false;
        bool parity = false;
    };

    Llc(u64 capacity_bytes, u32 ways, u32 line_bytes = 64);

    /**
     * Parity-update probe (Fig 12 action 3): on hit the parity line is
     * updated in place (marked dirty, moved to MRU).
     */
    bool probeParity(LineAddr addr);

    /** Install a line; returns the displaced victim (LRU). */
    Victim fill(LineAddr addr, bool dirty, bool parity);

    const LlcStats &stats() const { return stats_; }
    u32 sets() const { return sets_; }

  private:
    struct Way
    {
        bool valid = false;
        u64 tag = 0;
        bool dirty = false;
        bool parity = false;
        u64 lastUse = 0;
    };

    u32 ways_;
    u32 sets_;
    std::vector<Way> lines_; ///< sets_ x ways_, row-major.
    u64 useClock_ = 0;
    LlcStats stats_;

    u32 setOf(LineAddr addr) const;
    Way *findLine(LineAddr addr);
};

} // namespace citadel

#endif // CITADEL_SIM_LLC_H
