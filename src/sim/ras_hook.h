/**
 * @file
 * Error-path hook between the timing simulator and a live RAS model.
 *
 * SystemSim knows nothing about fault mechanics; it only needs to ask,
 * for every completed demand read, "was this line clean, corrected, or
 * lost?" and to charge whatever extra memory traffic the answer cost.
 * The concrete implementation (ras/LiveRasDatapath) owns the bit-true
 * storage model, the fault schedule and the sparing state; this header
 * keeps the dependency pointing from ras -> sim, not the other way.
 */

#ifndef CITADEL_SIM_RAS_HOOK_H
#define CITADEL_SIM_RAS_HOOK_H

#include <limits>
#include <vector>

#include "common/strong_id.h"

namespace citadel {

class RetirementMap;

/** What happened to one demand read at the RAS layer. */
struct DemandOutcome
{
    enum class Kind
    {
        Clean,         ///< CRC matched (or the access was remapped).
        Corrected,     ///< CRC detect + successful 3DP reconstruction.
        Uncorrectable, ///< Reported as a DUE; data is poisoned.
    };

    Kind kind = Kind::Clean;

    /**
     * Correction traffic in logical line addresses (data lines, or D1
     * parity addresses at/above AddressMap::parityBase()). The sim
     * issues these as RAS reads; for a Corrected outcome the demanding
     * core stalls until the last of them completes (the paper's
     * demand-time correction latency, Section VI-B).
     */
    std::vector<LineAddr> extraReads;
};

/** Interface the timing simulator drives once attached. */
class RasHook
{
  public:
    virtual ~RasHook() = default;

    /** Advance time: materialize due faults, run scrubs. */
    virtual void tick(u64 cycle) = 0;

    /** A demand read of `line` just returned data to the controller. */
    virtual DemandOutcome onDemandRead(LineAddr line, u64 cycle) = 0;

    /**
     * Earliest cycle >= `now` at which tick() could do observable work
     * (materialize a fault, run a scrub). The event-stepping SystemSim
     * loop will not skip past this cycle; returning `now` (the
     * conservative default) means "tick me every cycle", which
     * disables skipping but is always correct. Hooks with no pending
     * work may return u64 max.
     */
    virtual u64 nextEventCycle(u64 now) const { return now; }

    /**
     * The hook's retired-region map (degradation ladder output), or
     * nullptr when the hook never retires capacity. SystemSim attaches
     * this to the MemorySystem so demand traffic steers around retired
     * rows/banks/channels; the map stays owned by the hook and later
     * ladder actions are visible immediately.
     */
    virtual const RetirementMap *retirementMap() const { return nullptr; }
};

} // namespace citadel

#endif // CITADEL_SIM_RAS_HOOK_H
