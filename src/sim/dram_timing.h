/**
 * @file
 * DRAM timing and simulator configuration (Table II): 800MHz memory
 * controller clock (DDR3-1600 data rate), tWTR-tCAS-tRCD-tRP-tRAS =
 * 7-9-9-9-36 in controller cycles.
 */

#ifndef CITADEL_SIM_DRAM_TIMING_H
#define CITADEL_SIM_DRAM_TIMING_H

#include "common/types.h"
#include "stack/address.h"

namespace citadel {

/** DRAM timing parameters in memory-controller cycles. */
struct DramTiming
{
    u32 tCAS = 9;  ///< Column access (read latency to first beat).
    u32 tRCD = 9;  ///< Row activate to column.
    u32 tRP = 9;   ///< Precharge.
    u32 tRAS = 36; ///< Activate to precharge (minimum row-open time).
    u32 tWTR = 7;  ///< Write-to-read turnaround.
    u32 tCCD = 4;  ///< Column-to-column within a bank.
    u32 tRRD = 4;  ///< Activate-to-activate across banks of a channel.
    u32 tBURST = 1; ///< 64B over 256 data TSVs at DDR = 2 beats = 1 cycle.

    u32 tRC() const { return tRAS + tRP; }
};

/** How much RAS-induced memory traffic the configuration generates. */
enum class RasTraffic
{
    None,           ///< Baseline / striped symbol code (inline ECC).
    ThreeDPCached,  ///< 3DP with D1 parity caching in the LLC.
    ThreeDPUncached ///< 3DP, parity read+write to DRAM per update.
};

/**
 * Clock-advance strategy for SystemSim::run(). Event stepping skips
 * cycles in which no component can change state and is bit-identical
 * to cycle stepping (DESIGN.md section 10); cycle stepping remains as
 * the differential oracle.
 */
enum class SimStepping
{
    EnvDefault, ///< CITADEL_SIM_STEPPING (cycle|event); default event.
    Cycle,      ///< Advance one cycle at a time.
    Event       ///< Jump to the next cycle anything can happen.
};

/** Full timing-simulation configuration. */
struct SimConfig
{
    StackGeometry geom;
    DramTiming timing;
    StripingMode striping = StripingMode::SameBank;
    RasTraffic ras = RasTraffic::None;
    SimStepping stepping = SimStepping::EnvDefault;

    u32 cores = 8;
    u64 insnsPerCore = 2'000'000;

    /** Retired instructions per memory cycle when unstalled: 3.2GHz
     *  core at IPC 2 against the 800MHz memory clock. */
    u32 insnsPerMemCycle = 8;

    /** Maximum outstanding read misses per core (MLP window). */
    u32 mlp = 8;

    /** Per-channel write queue capacity (backpressure threshold). */
    u32 writeQueueCap = 32;

    /** LLC geometry: 8MB, 8-way, 64B lines (Table II). */
    u64 llcBytes = 8ull << 20;
    u32 llcWays = 8;

    u64 seed = 7;
};

} // namespace citadel

#endif // CITADEL_SIM_DRAM_TIMING_H
