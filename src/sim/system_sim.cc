#include "sim/system_sim.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace citadel {

SystemSim::SystemSim(const SimConfig &cfg, const BenchmarkProfile &profile)
    : cfg_(cfg), profile_(profile), mem_(cfg),
      llc_(cfg.llcBytes, cfg.llcWays, cfg.geom.lineBytes)
{
    parityBase_ = LineAddr{cfg_.geom.totalLines()};
    for (u32 c = 0; c < cfg_.cores; ++c) {
        Rng rng(cfg_.seed ^ (0x8CB92BA72F3D8DD7ull * (c + 1)));
        cores_.emplace_back(
            AddressStream(profile_, c, cfg_.geom.totalLines(),
                          cfg_.seed + 31 * c),
            rng);
        sampleNextMiss(cores_.back());
    }

    // Warm the LLC so measurements start in steady state (the paper
    // simulates a 1B-instruction slice of a long-running program; our
    // scaled runs would otherwise spend most of their time filling a
    // cold 8MB cache and never produce writebacks). Fills only; no
    // timing, no stats-relevant parity traffic.
    const u64 warm_fills = 2 * (cfg_.llcBytes / cfg_.geom.lineBytes);
    for (u64 i = 0; i < warm_fills; ++i) {
        Core &core = cores_[i % cores_.size()];
        (void)llc_.fill(core.stream.nextLine(),
                        core.rng.chance(profile_.writeFrac), false);
    }
}

LineAddr
SystemSim::parityLineFor(LineAddr data_line) const
{
    return mem_.addressMap().d1ParityLine(data_line);
}

LineAddr
SystemSim::physicalFor(LineAddr line) const
{
    return mem_.addressMap().parityToPhysical(line);
}

void
SystemSim::sampleNextMiss(Core &core)
{
    // Geometric gap between LLC misses with mean 1000/MPKI.
    const double mean = 1000.0 / std::max(0.001, profile_.mpki);
    const double gap = core.rng.exponential(1.0 / mean);
    core.nextMissAt =
        core.retired + std::max<u64>(1, static_cast<u64>(gap + 0.5));
}

bool
SystemSim::processWriteback(LineAddr line, u64 cycle)
{
    if (!mem_.canAcceptWrite(line))
        return false;

    switch (cfg_.ras) {
      case RasTraffic::None:
        mem_.issueWrite(line, cycle);
        break;

      case RasTraffic::ThreeDPCached: {
        // Read-before-write to form the parity delta (Fig 12 action 2).
        mem_.issueRead(line, cycle, true); // system read, nobody waits
        mem_.issueWrite(line, cycle);
        const LineAddr parity = parityLineFor(line);
        if (!llc_.probeParity(parity)) {
            // Fig 12 action 4: fetch parity from memory, install in LLC.
            mem_.issueRead(physicalFor(parity), cycle, true);
            const Llc::Victim v = llc_.fill(parity, true, true);
            if (v.valid && v.dirty)
                pendingWritebacks_.push_back(v.addr);
        }
        break;
      }

      case RasTraffic::ThreeDPUncached: {
        mem_.issueRead(line, cycle, true);
        mem_.issueWrite(line, cycle);
        const LineAddr parity = parityLineFor(line);
        mem_.issueRead(physicalFor(parity), cycle, true);
        if (mem_.canAcceptWrite(physicalFor(parity)))
            mem_.issueWrite(physicalFor(parity), cycle);
        else
            pendingWritebacks_.push_back(parity);
        break;
      }
    }
    return true;
}

void
SystemSim::issueMiss(Core &core, u32 core_idx, u64 cycle)
{
    const LineAddr line = core.stream.nextLine();
    // Parity lines occupy a reserved tag space; a data line address is
    // always below parityBase_.
    const u64 token = mem_.issueRead(line, cycle);
    pendingReads_[token] = {core_idx, line, false};
    ++core.outstanding;

    const bool dirty = core.rng.chance(profile_.writeFrac);
    const Llc::Victim v = llc_.fill(line, dirty, false);
    if (v.valid && v.dirty) {
        if (v.parity) {
            // Evicted dirty parity line: write it back to the parity
            // bank (3DP-cached mode only).
            if (mem_.canAcceptWrite(physicalFor(v.addr)))
                mem_.issueWrite(physicalFor(v.addr), cycle);
            else
                pendingWritebacks_.push_back(v.addr);
        } else {
            pendingWritebacks_.push_back(v.addr);
        }
    }
}

void
SystemSim::handleDemandCompletion(u64 token, const PendingRead &pr,
                                  u64 cycle)
{
    (void)token;
    Core &core = cores_[pr.core];
    if (core.outstanding == 0)
        panic("system_sim: completion with no outstanding miss");

    // Replay completions are the tail of a correction chain: the data
    // was already verified, just release the core.
    if (!ras_ || pr.replay) {
        --core.outstanding;
        return;
    }

    const DemandOutcome out = ras_->onDemandRead(pr.line, cycle);
    if (out.extraReads.empty()) {
        --core.outstanding;
        return;
    }

    // Charge the correction traffic (read-retry + parity-group reads)
    // as real DRAM reads. For a corrected line the core keeps stalling
    // until the last of them completes -- that is the demand-time
    // correction latency of Section VI-B. A DUE releases the core
    // immediately (machine-check semantics: poisoned data delivered,
    // execution continues); its retry traffic still occupies the bus.
    u64 last_token = 0;
    for (const LineAddr addr : out.extraReads)
        last_token = mem_.issueRead(physicalFor(addr), cycle, true);

    if (out.kind == DemandOutcome::Kind::Corrected)
        pendingReads_[last_token] = {pr.core, pr.line, true};
    else
        --core.outstanding;
}

void
SystemSim::coreTick(u32 core_idx, u64 cycle)
{
    Core &core = cores_[core_idx];
    if (core.retired >= cfg_.insnsPerCore)
        return;

    u64 budget = cfg_.insnsPerMemCycle;
    while (budget > 0 && core.retired < cfg_.insnsPerCore) {
        if (core.retired < core.nextMissAt) {
            const u64 step = std::min<u64>(
                budget, core.nextMissAt - core.retired);
            core.retired += step;
            budget -= step;
            continue;
        }
        // At a miss point: need an MLP slot and writeback headroom.
        if (core.outstanding >= cfg_.mlp)
            break;
        if (pendingWritebacks_.size() > 2 * cfg_.writeQueueCap)
            break; // write-buffer backpressure stalls the front-end
        issueMiss(core, core_idx, cycle);
        sampleNextMiss(core);
    }
}

SimResult
SystemSim::run()
{
    u64 cycle = 0;
    const u64 total_insns =
        static_cast<u64>(cfg_.cores) * cfg_.insnsPerCore;

    auto all_done = [&] {
        for (const Core &c : cores_)
            if (c.retired < cfg_.insnsPerCore)
                return false;
        return true;
    };

    while (!all_done()) {
        if (ras_)
            ras_->tick(cycle);

        // Drain pending writebacks into the memory system.
        while (!pendingWritebacks_.empty()) {
            const LineAddr line = pendingWritebacks_.front();
            bool ok;
            if (line >= parityBase_) {
                // Deferred parity writes go straight to the parity bank.
                ok = mem_.canAcceptWrite(physicalFor(line));
                if (ok)
                    mem_.issueWrite(physicalFor(line), cycle);
            } else {
                ok = processWriteback(line, cycle);
            }
            if (!ok)
                break;
            pendingWritebacks_.pop_front();
        }

        for (u32 c = 0; c < cfg_.cores; ++c)
            coreTick(c, cycle);

        mem_.tick(cycle);
        for (u64 token : mem_.drainCompletedReads(cycle)) {
            auto it = pendingReads_.find(token);
            if (it == pendingReads_.end())
                continue; // system read (RBW / parity fetch)
            const PendingRead pr = it->second;
            pendingReads_.erase(it);
            handleDemandCompletion(token, pr, cycle);
        }
        ++cycle;

        if (cycle > (1ull << 40))
            panic("system_sim: runaway simulation");
    }

    SimResult res;
    res.cycles = cycle;
    res.insnsRetired = total_insns;
    res.mem = mem_.counters();
    res.llc = llc_.stats();
    res.power = computePower(res.mem, res.cycles);
    return res;
}

} // namespace citadel
