#include "sim/system_sim.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/env.h"
#include "common/log.h"
#include "sim/retirement.h"

namespace citadel {

namespace {

/** Resolve the configured stepping mode against CITADEL_SIM_STEPPING. */
SimStepping
resolveStepping(SimStepping configured)
{
    if (configured != SimStepping::EnvDefault)
        return configured;
    const std::string v = envString("CITADEL_SIM_STEPPING", "event");
    if (v == "cycle")
        return SimStepping::Cycle;
    if (v != "event")
        warn("env: CITADEL_SIM_STEPPING='%s' is not cycle|event; "
             "using event",
             v.c_str());
    return SimStepping::Event;
}

} // namespace

SystemSim::SystemSim(const SimConfig &cfg, const BenchmarkProfile &profile)
    : cfg_(cfg), profile_(profile), mem_(cfg),
      llc_(cfg.llcBytes, cfg.llcWays, cfg.geom.lineBytes)
{
    for (u32 c = 0; c < cfg_.cores; ++c) {
        Rng rng(cfg_.seed ^ (0x8CB92BA72F3D8DD7ull * (c + 1)));
        cores_.emplace_back(
            AddressStream(profile_, c, cfg_.geom.totalLines(),
                          cfg_.seed + 31 * c),
            rng);
        sampleNextMiss(cores_.back());
    }

    // Warm the LLC so measurements start in steady state (the paper
    // simulates a 1B-instruction slice of a long-running program; our
    // scaled runs would otherwise spend most of their time filling a
    // cold 8MB cache and never produce writebacks). Fills only; no
    // timing, no stats-relevant parity traffic.
    const u64 warm_fills = 2 * (cfg_.llcBytes / cfg_.geom.lineBytes);
    for (u64 i = 0; i < warm_fills; ++i) {
        Core &core = cores_[i % cores_.size()];
        (void)llc_.fill(core.stream.nextLine(),
                        core.rng.chance(profile_.writeFrac), false);
    }
}

LineAddr
SystemSim::parityLineFor(LineAddr data_line) const
{
    return mem_.addressMap().d1ParityLine(data_line);
}

LineAddr
SystemSim::physicalFor(LineAddr line) const
{
    return mem_.addressMap().parityToPhysical(line);
}

void
SystemSim::sampleNextMiss(Core &core)
{
    // Geometric gap between LLC misses with mean 1000/MPKI.
    const double mean = 1000.0 / std::max(0.001, profile_.mpki);
    const double gap = core.rng.exponential(1.0 / mean);
    core.nextMissAt =
        core.retired + std::max<u64>(1, static_cast<u64>(gap + 0.5));
}

void
SystemSim::trackRead(u64 token, u32 core_idx, LineAddr line, bool replay)
{
    const u32 slot = MemorySystem::tokenSlot(token);
    if (slot >= pendingReads_.size())
        pendingReads_.resize(mem_.tokenSlots());
    pendingReads_[slot] = {token, core_idx, line, replay};
}

void
SystemSim::queueRawWrite(LineAddr phys, u64 cycle)
{
    if (mem_.canAcceptWrite(phys))
        mem_.issueWrite(phys, cycle);
    else
        pendingWritebacks_.push_back({phys, true});
}

bool
SystemSim::processWriteback(LineAddr line, u64 cycle)
{
    if (!mem_.canAcceptWrite(line))
        return false;

    switch (cfg_.ras) {
      case RasTraffic::None:
        mem_.issueWrite(line, cycle);
        break;

      case RasTraffic::ThreeDPCached: {
        // Read-before-write to form the parity delta (Fig 12 action 2).
        mem_.issueRead(line, cycle, true); // system read, nobody waits
        mem_.issueWrite(line, cycle);
        const LineAddr parity = parityLineFor(line);
        if (!llc_.probeParity(parity)) {
            // Fig 12 action 4: fetch parity from memory, install in LLC.
            mem_.issueRead(physicalFor(parity), cycle, true);
            const Llc::Victim v = llc_.fill(parity, true, true);
            // The victim may itself be a dirty parity line; defer it
            // as a raw physical write so it is never re-processed as
            // data (no RBW / parity-of-parity traffic).
            if (v.valid && v.dirty)
                pendingWritebacks_.push_back(
                    v.parity ? PendingWb{physicalFor(v.addr), true}
                             : PendingWb{v.addr, false});
        }
        break;
      }

      case RasTraffic::ThreeDPUncached: {
        mem_.issueRead(line, cycle, true);
        mem_.issueWrite(line, cycle);
        // Parity update goes straight to DRAM: read-modify-write of
        // the parity line. The deferred write must NOT re-enter this
        // function, which would treat the parity line as data and
        // generate RBW + parity-of-parity traffic for it.
        const LineAddr parity = parityLineFor(line);
        mem_.issueRead(physicalFor(parity), cycle, true);
        queueRawWrite(physicalFor(parity), cycle);
        break;
      }
    }
    return true;
}

bool
SystemSim::tryWriteback(const PendingWb &wb, u64 cycle)
{
    if (!wb.raw)
        return processWriteback(wb.line, cycle);
    if (!mem_.canAcceptWrite(wb.line))
        return false;
    mem_.issueWrite(wb.line, cycle);
    return true;
}

void
SystemSim::issueMiss(Core &core, u32 core_idx, u64 cycle)
{
    const LineAddr line = core.stream.nextLine();
    const u64 token = mem_.issueRead(line, cycle);
    trackRead(token, core_idx, line, false);
    ++core.outstanding;

    const bool dirty = core.rng.chance(profile_.writeFrac);
    const Llc::Victim v = llc_.fill(line, dirty, false);
    if (v.valid && v.dirty) {
        if (v.parity) {
            // Evicted dirty parity line: write it back to the parity
            // bank (3DP-cached mode only). Its parity maintenance is
            // itself, so it bypasses the RAS writeback path.
            queueRawWrite(physicalFor(v.addr), cycle);
        } else {
            pendingWritebacks_.push_back({v.addr, false});
        }
    }
}

void
SystemSim::handleDemandCompletion(const PendingRead &pr, u64 cycle)
{
    Core &core = cores_[pr.core];
    if (core.outstanding == 0)
        panic("system_sim: completion with no outstanding miss");

    // Replay completions are the tail of a correction chain: the data
    // was already verified, just release the core.
    if (!ras_ || pr.replay) {
        --core.outstanding;
        return;
    }

    const DemandOutcome out = ras_->onDemandRead(pr.line, cycle);
    if (out.extraReads.empty()) {
        --core.outstanding;
        return;
    }

    // Charge the correction traffic (read-retry + parity-group reads)
    // as real DRAM reads. For a corrected line the core keeps stalling
    // until the last of them completes -- that is the demand-time
    // correction latency of Section VI-B. A DUE releases the core
    // immediately (machine-check semantics: poisoned data delivered,
    // execution continues); its retry traffic still occupies the bus.
    u64 last_token = 0;
    for (const LineAddr addr : out.extraReads)
        last_token = mem_.issueRead(physicalFor(addr), cycle, true);

    if (out.kind == DemandOutcome::Kind::Corrected)
        trackRead(last_token, pr.core, pr.line, true);
    else
        --core.outstanding;
}

void
SystemSim::coreTick(u32 core_idx, u64 cycle)
{
    Core &core = cores_[core_idx];
    if (core.retired >= cfg_.insnsPerCore)
        return;

    u64 budget = cfg_.insnsPerMemCycle;
    while (budget > 0 && core.retired < cfg_.insnsPerCore) {
        if (core.retired < core.nextMissAt) {
            const u64 step = std::min<u64>(
                budget, core.nextMissAt - core.retired);
            core.retired += step;
            budget -= step;
            continue;
        }
        // At a miss point: need an MLP slot and writeback headroom.
        if (core.outstanding >= cfg_.mlp)
            break;
        if (pendingWritebacks_.size() > 2 * cfg_.writeQueueCap)
            break; // write-buffer backpressure stalls the front-end
        issueMiss(core, core_idx, cycle);
        sampleNextMiss(core);
    }
}

void
SystemSim::stepCycle(u64 cycle)
{
    if (ras_)
        ras_->tick(cycle);

    // Drain pending writebacks into the memory system, oldest first;
    // a blocked head blocks the queue (ordering is part of the model).
    while (!pendingWritebacks_.empty()) {
        if (!tryWriteback(pendingWritebacks_.front(), cycle))
            break;
        pendingWritebacks_.pop_front();
    }

    for (u32 c = 0; c < cfg_.cores; ++c)
        coreTick(c, cycle);

    mem_.tick(cycle);
    for (const u64 token : mem_.drainCompletedReads()) {
        const u32 slot = MemorySystem::tokenSlot(token);
        if (slot >= pendingReads_.size() ||
            pendingReads_[slot].token != token)
            continue; // system read (RBW / parity / correction fetch)
        const PendingRead pr = pendingReads_[slot];
        pendingReads_[slot].token = 0;
        handleDemandCompletion(pr, cycle);
    }
}

u64
SystemSim::nextInterestingCycle(u64 now)
{
    u64 next = MemorySystem::kNoEvent;

    for (const Core &core : cores_) {
        if (core.retired >= cfg_.insnsPerCore)
            continue;
        const u64 stop = std::min(core.nextMissAt, cfg_.insnsPerCore);
        if (core.retired >= stop) {
            // Parked at a miss point. If it can issue, this very cycle
            // is interesting; otherwise it wakes on a completion or a
            // writeback drain, both covered by the memory events below.
            if (core.outstanding < cfg_.mlp &&
                pendingWritebacks_.size() <= 2 * cfg_.writeQueueCap)
                return now;
            continue;
        }
        // Retiring insnsPerMemCycle per cycle, the core reaches its
        // stop point (miss issue, or budget end flipping all_done)
        // within this many cycles; the cycle it does so is interesting.
        const u64 gap = stop - core.retired;
        const u64 cycles =
            (gap + cfg_.insnsPerMemCycle - 1) / cfg_.insnsPerMemCycle;
        next = std::min(next, now + cycles - 1);
    }

    // A drainable writeback head makes `now` interesting. A blocked
    // head stays blocked until a write group issues, which is a
    // memory event (canAcceptWrite depends only on queued write
    // slices, and those change only inside MemorySystem::tick).
    if (!pendingWritebacks_.empty() &&
        mem_.canAcceptWrite(pendingWritebacks_.front().line))
        return now;

    next = std::min(next, mem_.nextEventCycle(now));
    if (next <= now)
        return now;
    if (ras_)
        next = std::min(next, ras_->nextEventCycle(now));
    return next;
}

void
SystemSim::advanceIdle(u64 cycles)
{
    const u64 insns = cycles * cfg_.insnsPerMemCycle;
    for (Core &core : cores_) {
        if (core.retired >= cfg_.insnsPerCore)
            continue;
        const u64 stop = std::min(core.nextMissAt, cfg_.insnsPerCore);
        if (core.retired >= stop)
            continue; // parked at a miss point: retires nothing
        // nextInterestingCycle stops strictly before any core reaches
        // its stop point, so batched retirement cannot overshoot.
        if (insns >= stop - core.retired)
            panic("system_sim: idle skip crossed a core stop point");
        core.retired += insns;
    }
}

SimResult
SystemSim::run()
{
    const SimStepping stepping = resolveStepping(cfg_.stepping);
    u64 cycle = 0;
    const u64 total_insns =
        static_cast<u64>(cfg_.cores) * cfg_.insnsPerCore;

    auto all_done = [&] {
        for (const Core &c : cores_)
            if (c.retired < cfg_.insnsPerCore)
                return false;
        return true;
    };

    while (!all_done()) {
        stepCycle(cycle);
        ++cycle;

        if (cycle > (1ull << 40))
            panic("system_sim: runaway simulation");

        if (stepping == SimStepping::Event && !all_done()) {
            const u64 next = nextInterestingCycle(cycle);
            if (next == MemorySystem::kNoEvent)
                panic("system_sim: event loop stalled with live cores");
            if (next > cycle) {
                advanceIdle(next - cycle);
                cycle = next;
            }
        }
    }

    SimResult res;
    res.cycles = cycle;
    res.insnsRetired = total_insns;
    res.mem = mem_.counters();
    res.llc = llc_.stats();
    res.power = computePower(res.mem, res.cycles);
    if (ras_ != nullptr && ras_->retirementMap() != nullptr) {
        res.retiredLines = ras_->retirementMap()->retiredLines();
        res.capacityFraction = ras_->retirementMap()->capacityFraction();
    }
    return res;
}

} // namespace citadel
