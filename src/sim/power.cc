#include "sim/power.h"

namespace citadel {

PowerResult
computePower(const MemCounters &mem, u64 cycles, const PowerParams &p)
{
    PowerResult r;
    if (cycles == 0)
        return r;
    const double t = static_cast<double>(cycles) * p.cycleSeconds;
    r.activateW =
        static_cast<double>(mem.activates) * p.activateEnergyJ / t;
    r.readWriteW =
        (static_cast<double>(mem.bytesRead) * p.readEnergyPerByteJ +
         static_cast<double>(mem.bytesWritten) * p.writeEnergyPerByteJ) /
        t;
    r.refreshW = p.refreshPowerW;
    return r;
}

} // namespace citadel
