/**
 * @file
 * Cycle-approximate stacked-DRAM memory system: per-channel FR-FCFS
 * scheduling, open-page bank state machines with Table II timing, a
 * shared data TSV bus per channel, and striping-aware fan-out (one
 * logical line access becomes 1 / 8 sub-requests depending on the
 * mapping, Section II-D/E).
 *
 * Scheduler internals are organized for speed without changing any
 * decision the flat-queue implementation made (DESIGN.md section 10):
 *
 *  - one queued entry per (line, channel) *group* carrying its striped
 *    slices inline, so lockstep-sibling issue never rescans a queue;
 *  - per-bank sub-queues (slot references into a group pool) plus a
 *    ready-bank bitmask, so the FR-FCFS pick visits only banks that
 *    have work instead of walking the whole channel queue;
 *  - a token arena with generation-tagged slots, so completion
 *    tracking is a flat vector lookup rather than an unordered_map;
 *  - nextEventCycle(), the contract the event-driven SystemSim loop
 *    uses to skip cycles in which tick() would provably do nothing.
 *
 * Determinism audit (DESIGN.md section 13): this file holds no
 * std::unordered_* container — the token arena above removed the last
 * one — so nothing here iterates in hash order. The unordered-container
 * rule in tools/lint_determinism.py now guards that property for every
 * file under src/ and bench/; reintroducing one fails the lint gate
 * unless a blessing spells out why its iteration order can never reach
 * an observable result.
 */

#ifndef CITADEL_SIM_MEMORY_SYSTEM_H
#define CITADEL_SIM_MEMORY_SYSTEM_H

#include <deque>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "sim/dram_timing.h"

namespace citadel {

class RetirementMap;

/** Activity counters feeding the power model. */
struct MemCounters
{
    u64 activates = 0;
    u64 readBursts = 0;
    u64 writeBursts = 0;
    u64 rowHits = 0;
    u64 rowMisses = 0;
    u64 bytesRead = 0;
    u64 bytesWritten = 0;

    /** Sub-requests issued for RAS purposes (RBW, parity fetches,
     *  read-retry and reconstruction group reads) rather than demand
     *  traffic. Subset of readBursts. */
    u64 rasReads = 0;

    /** Line accesses steered around a retired region by the attached
     *  RetirementMap (degradation-ladder indirection cost). */
    u64 steeredReads = 0;
    u64 steeredWrites = 0;
};

/** The DRAM side of the simulator. */
class MemorySystem
{
  public:
    /** Sentinel for "no event pending" (nextEventCycle). */
    static constexpr u64 kNoEvent = std::numeric_limits<u64>::max();

    explicit MemorySystem(const SimConfig &cfg);

    /**
     * Enqueue a line read (fans out per the striping mode).
     * @param ras Tag the read as RAS traffic (counted separately).
     * @return a token reported by drainCompletedReads when all
     *         sub-requests finish.
     */
    u64 issueRead(LineAddr line, u64 cycle, bool ras = false);

    /** Is there write-queue space on every channel the line touches? */
    bool canAcceptWrite(LineAddr line) const;

    /** Enqueue a posted line write (no completion reporting). */
    void issueWrite(LineAddr line, u64 cycle);

    /** Advance one memory-controller cycle. */
    void tick(u64 cycle);

    /** Tokens of reads fully serviced by the last tick, in completion
     *  order. Slots of tokens handed out by the *previous* drain are
     *  recycled here, so callers may use a returned token until their
     *  next call. */
    std::vector<u64> drainCompletedReads();

    /**
     * Earliest cycle >= `now` at which tick() could change any state:
     * a pending completion matures, or some queued sub-request becomes
     * an FR-FCFS candidate (its bank's open row matches, or the bank
     * reaches nextActAt). Strictly between `now` and the returned
     * cycle, tick() is a no-op; kNoEvent when fully idle.
     */
    u64 nextEventCycle(u64 now);

    /** Requests still queued (not yet issued to a bank). */
    u64 pending() const { return pendingOps_; }

    /** Arena slot of a read token: a dense index < tokenSlots() usable
     *  as a key into caller-side flat tables. Slots are recycled one
     *  drainCompletedReads call after their token is reported. */
    static u32 tokenSlot(u64 token) { return static_cast<u32>(token); }

    /** Upper bound (exclusive) on live token slots. */
    u32 tokenSlots() const
    {
        return static_cast<u32>(tokens_.gen.size());
    }

    const MemCounters &counters() const { return counters_; }
    const AddressMap &addressMap() const { return map_; }

    /**
     * Steer subsequent accesses around the regions `map` marks as
     * retired (nullptr detaches). The map is owned by the RAS layer
     * and consulted, not copied, so ladder actions take effect on the
     * very next enqueue.
     */
    void attachRetirement(const RetirementMap *map) { retire_ = map; }

  private:
    static constexpr u32 kInvalidSlot = 0xFFFFFFFFu;

    /** One per-bank DRAM access of a queued group. */
    struct Slice
    {
        BankId bank{};
        RowId row{};
    };

    /**
     * One queued logical line access within a channel: all the slices
     * the striping mode places in this channel. Slices issue in
     * lockstep when the group is picked (one multicast command), so
     * the group is the scheduling unit; slice order is enqueue order,
     * which the pick logic uses to reproduce flat-queue decisions.
     */
    struct Group
    {
        u64 token = 0;   ///< 0 for writes (no completion tracking).
        u64 seq = 0;     ///< Channel-local arrival order (FCFS age).
        u64 arrival = 0; ///< Enqueue cycle (diagnostic).
        u32 bytes = 0;   ///< Bytes per slice (lineBytes / fanout).
        bool write = false;
        bool live = false; ///< False once issued; refs drain lazily.
        u32 refs = 0;      ///< Bank-queue references still present.
        std::vector<Slice> slices;
    };

    /** Reference to one slice of a pooled group, queued at its bank. */
    struct BankRef
    {
        u32 slot = 0;
        u32 slice = 0;
    };

    /** Per-channel, per-direction scheduler queue: a slot pool of
     *  groups, per-bank FIFO sub-queues of slice references, and a
     *  bitmask index of banks that may hold live work. */
    struct GroupQueue
    {
        std::vector<Group> pool;
        std::vector<u32> freeSlots;
        std::vector<std::deque<BankRef>> perBank;
        std::vector<u64> bankWords; ///< Ready-bank index (1 bit/bank).
        u64 liveSlices = 0;         ///< Queued sub-request count.
    };

    struct BankState
    {
        std::optional<RowId> openRow;
        u64 nextActAt = 0;
        u64 nextCasAt = 0;
        i64 lastWriteCas = -1'000'000; ///< For write->read turnaround.
    };

    struct Channel
    {
        GroupQueue reads;
        GroupQueue writes;
        std::vector<BankState> banks;
        /** Data-TSV bus horizon in cycles. Fractional: a striped
         *  sub-request only occupies its share of the 256 lanes. */
        double busUntil = 0.0;
        i64 lastActAt = -1'000'000; ///< Sentinel: no activation yet.
        u64 nextSeq = 0;
    };

    /** Read-token arena: flat per-slot state, generation-tagged so a
     *  recycled slot can never satisfy a stale token. */
    struct TokenArena
    {
        std::vector<u32> gen;       ///< Current generation per slot.
        std::vector<u32> remaining; ///< Sub-requests left per slot.
        std::vector<u64> allocSeq;  ///< Read allocation order per slot.
        std::vector<u32> freeSlots;
    };

    /** FR-FCFS pick: a group slot plus the slice the flat scan would
     *  have selected as the primary sub-request. */
    struct Pick
    {
        u32 slot = kInvalidSlot;
        u32 slice = 0;

        bool valid() const { return slot != kInvalidSlot; }
    };

    /** Completion-queue entry; `seq` is the read token's allocation
     *  order, which reproduces the legacy token-value-ascending
     *  tie-break on equal done cycles. */
    struct Completion
    {
        u64 done = 0;
        u64 seq = 0;
        u64 token = 0;

        bool operator>(const Completion &o) const
        {
            return done != o.done ? done > o.done : seq > o.seq;
        }
    };

    SimConfig cfg_;
    AddressMap map_;
    std::vector<Channel> channels_;
    MemCounters counters_;
    u64 writeCapSubs_ = 0; ///< Write-queue cap in sub-requests.
    const RetirementMap *retire_ = nullptr;

    TokenArena tokens_;
    u64 readAllocSeq_ = 0; ///< Monotonic read order for tie-breaks.
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<>>
        completions_;
    std::vector<u64> completedTokens_;
    std::vector<u64> drainedTokens_; ///< Freed on the next drain call.
    u64 pendingOps_ = 0;

    u32 channelIndex(const LineCoord &c) const;

    /** Apply retirement steering to a decoded coordinate (identity
     *  when no map is attached or nothing is retired). */
    LineCoord routeCoord(const LineCoord &coord) const;

    u64 allocToken();
    void releaseToken(u64 token);

    u32 acquireGroup(GroupQueue &q);
    void releaseRef(GroupQueue &q, u32 slot);
    void popDeadHeads(GroupQueue &q, std::deque<BankRef> &dq);

    void enqueue(const LineCoord &line, bool write, u64 token, u64 cycle,
                 bool ras);
    void serviceChannel(Channel &ch, u64 cycle);

    /** FR-FCFS candidate in `q` at `cycle`; invalid Pick if none. */
    Pick pickCandidate(Channel &ch, GroupQueue &q, u64 cycle);

    /** First slice of `g` satisfying the pick predicate (flat order). */
    u32 primarySlice(const Channel &ch, const Group &g, bool hit,
                     u64 cycle) const;

    /** Issue a picked group: primary slice first, then its lockstep
     *  siblings in slice order. */
    void issueGroup(Channel &ch, GroupQueue &q, const Pick &pick,
                    u64 cycle);

    /** Schedule one sub-request on its bank; returns data-done cycle.
     *  @param lockstep_sibling True for the 2nd..Nth sub-request of a
     *         striped line: activated together with the first (one
     *         multi-bank activate), so it skips the tRRD chain. */
    u64 schedule(Channel &ch, const Slice &slice, bool write, u32 bytes,
                 u64 cycle, bool lockstep_sibling = false);

    /** Earliest cycle >= now at which `q` has an FR-FCFS candidate. */
    u64 queueNextEvent(Channel &ch, GroupQueue &q, u64 now);
};

} // namespace citadel

#endif // CITADEL_SIM_MEMORY_SYSTEM_H
