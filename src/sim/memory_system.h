/**
 * @file
 * Cycle-approximate stacked-DRAM memory system: per-channel FR-FCFS
 * scheduling, open-page bank state machines with Table II timing, a
 * shared data TSV bus per channel, and striping-aware fan-out (one
 * logical line access becomes 1 / 8 sub-requests depending on the
 * mapping, Section II-D/E).
 */

#ifndef CITADEL_SIM_MEMORY_SYSTEM_H
#define CITADEL_SIM_MEMORY_SYSTEM_H

#include <deque>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/dram_timing.h"

namespace citadel {

/** Activity counters feeding the power model. */
struct MemCounters
{
    u64 activates = 0;
    u64 readBursts = 0;
    u64 writeBursts = 0;
    u64 rowHits = 0;
    u64 rowMisses = 0;
    u64 bytesRead = 0;
    u64 bytesWritten = 0;

    /** Sub-requests issued for RAS purposes (RBW, parity fetches,
     *  read-retry and reconstruction group reads) rather than demand
     *  traffic. Subset of readBursts. */
    u64 rasReads = 0;
};

/** The DRAM side of the simulator. */
class MemorySystem
{
  public:
    explicit MemorySystem(const SimConfig &cfg);

    /**
     * Enqueue a line read (fans out per the striping mode).
     * @param ras Tag the read as RAS traffic (counted separately).
     * @return a token reported by drainCompletedReads when all
     *         sub-requests finish.
     */
    u64 issueRead(LineAddr line, u64 cycle, bool ras = false);

    /** Is there write-queue space on every channel the line touches? */
    bool canAcceptWrite(LineAddr line) const;

    /** Enqueue a posted line write (no completion reporting). */
    void issueWrite(LineAddr line, u64 cycle);

    /** Advance one memory-controller cycle. */
    void tick(u64 cycle);

    /** Tokens of reads fully serviced by `cycle`. */
    std::vector<u64> drainCompletedReads(u64 cycle);

    /** Requests still queued or in flight. */
    u64 pending() const { return pendingOps_; }

    const MemCounters &counters() const { return counters_; }
    const AddressMap &addressMap() const { return map_; }

  private:
    struct SubReq
    {
        u64 token = 0;   ///< 0 for writes (no completion tracking).
        BankId bank{};
        RowId row{};
        bool write = false;
        u64 arrival = 0;
        u32 bytes = 0;
    };

    struct BankState
    {
        std::optional<RowId> openRow;
        u64 nextActAt = 0;
        u64 nextCasAt = 0;
        i64 lastWriteCas = -1'000'000; ///< For write->read turnaround.
    };

    struct Channel
    {
        std::deque<SubReq> readQueue;
        std::deque<SubReq> writeQueue;
        std::vector<BankState> banks;
        /** Data-TSV bus horizon in cycles. Fractional: a striped
         *  sub-request only occupies its share of the 256 lanes. */
        double busUntil = 0.0;
        i64 lastActAt = -1'000'000; ///< Sentinel: no activation yet.
    };

    SimConfig cfg_;
    AddressMap map_;
    std::vector<Channel> channels_;
    MemCounters counters_;
    u64 writeCapSubs_ = 0; ///< Write-queue cap in sub-requests.

    u64 nextToken_ = 1;
    std::unordered_map<u64, u32> remaining_; ///< token -> subreqs left
    using Completion = std::pair<u64, u64>;  ///< (done cycle, token)
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<>>
        completions_;
    std::vector<u64> completedTokens_;
    u64 pendingOps_ = 0;

    u32 channelIndex(const LineCoord &c) const;
    void enqueue(const LineCoord &line, bool write, u64 token, u64 cycle);
    void serviceChannel(Channel &ch, u64 cycle);
    /** Schedule one sub-request on its bank; returns data-done cycle.
     *  @param lockstep_sibling True for the 2nd..Nth sub-request of a
     *         striped line: activated together with the first (one
     *         multi-bank activate), so it skips the tRRD chain. */
    u64 schedule(Channel &ch, SubReq &req, u64 cycle,
                 bool lockstep_sibling = false);
    /** Pick the FR-FCFS candidate index in a queue; -1 if none ready. */
    int pickCandidate(const Channel &ch, const std::deque<SubReq> &q,
                      u64 cycle) const;
};

} // namespace citadel

#endif // CITADEL_SIM_MEMORY_SYSTEM_H
