#include "sim/llc.h"

#include "common/log.h"

namespace citadel {

Llc::Llc(u64 capacity_bytes, u32 ways, u32 line_bytes) : ways_(ways)
{
    const u64 lines = capacity_bytes / line_bytes;
    if (ways_ == 0 || lines == 0 || lines % ways_ != 0)
        fatal("Llc: bad geometry (capacity %llu, ways %u)",
              static_cast<unsigned long long>(capacity_bytes), ways_);
    sets_ = static_cast<u32>(lines / ways_);
    lines_.resize(lines);
}

u32
Llc::setOf(LineAddr addr) const
{
    return static_cast<u32>(addr.value() % sets_);
}

Llc::Way *
Llc::findLine(LineAddr addr)
{
    Way *base = &lines_[static_cast<u64>(setOf(addr)) * ways_];
    for (u32 w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].tag == addr.value())
            return &base[w];
    return nullptr;
}

bool
Llc::probeParity(LineAddr addr)
{
    ++stats_.parityProbes;
    Way *way = findLine(addr);
    if (!way)
        return false;
    ++stats_.parityHits;
    way->dirty = true;
    way->lastUse = ++useClock_;
    return true;
}

Llc::Victim
Llc::fill(LineAddr addr, bool dirty, bool parity)
{
    if (parity)
        ++stats_.parityFills;
    else
        ++stats_.dataFills;

    Way *base = &lines_[static_cast<u64>(setOf(addr)) * ways_];

    // Refill of a resident line just updates state.
    if (Way *hit = findLine(addr)) {
        hit->dirty = hit->dirty || dirty;
        hit->lastUse = ++useClock_;
        return {};
    }

    Way *victim = &base[0];
    for (u32 w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }

    Victim out;
    if (victim->valid) {
        out.valid = true;
        out.addr = LineAddr{victim->tag};
        out.dirty = victim->dirty;
        out.parity = victim->parity;
        if (victim->dirty) {
            if (victim->parity)
                ++stats_.dirtyParityEvictions;
            else
                ++stats_.dirtyDataEvictions;
        }
    }

    victim->valid = true;
    victim->tag = addr.value();
    victim->dirty = dirty;
    victim->parity = parity;
    victim->lastUse = ++useClock_;
    return out;
}

} // namespace citadel
