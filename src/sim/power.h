/**
 * @file
 * DRAM active-power model following the Micron memory-system power
 * technical notes (TN-41-01 methodology) adapted to an 8Gb stacked die
 * (Section III-B): activation energy per row cycle, read/write energy
 * per transferred byte, and refresh at the HBM 32ms interval. The
 * evaluation reports active power (activate + read + write + refresh),
 * as the paper does (Figs 5 and 16).
 */

#ifndef CITADEL_SIM_POWER_H
#define CITADEL_SIM_POWER_H

#include "sim/dram_timing.h"
#include "sim/memory_system.h"

namespace citadel {

/** Energy/power constants for an 8Gb die at 1.2V (HBM-class). */
struct PowerParams
{
    /** Joules per row activation+precharge cycle of a 2KB page
     *  ((IDD0 - IDD3N) * tRC * VDD, TN-41-01 eq. style). */
    double activateEnergyJ = 6.0e-9;

    /** Joules per byte moved on a read (array + TSV I/O). */
    double readEnergyPerByteJ = 1.5e-11;

    /** Joules per byte moved on a write. */
    double writeEnergyPerByteJ = 1.5e-11;

    /** Refresh power for the whole memory system at tREF = 32ms. */
    double refreshPowerW = 0.15;

    /** Memory-controller cycle time (800MHz). */
    double cycleSeconds = 1.25e-9;
};

/** Active-power breakdown for one simulation run. */
struct PowerResult
{
    double activateW = 0.0;
    double readWriteW = 0.0;
    double refreshW = 0.0;

    double totalW() const { return activateW + readWriteW + refreshW; }
};

/** Fold activity counters into average active power. */
PowerResult computePower(const MemCounters &mem, u64 cycles,
                         const PowerParams &p = {});

} // namespace citadel

#endif // CITADEL_SIM_POWER_H
