#include "sim/workload.h"

#include <algorithm>

#include "common/log.h"

namespace citadel {

const char *
suiteName(Suite s)
{
    switch (s) {
      case Suite::SpecFp: return "SPEC-FP";
      case Suite::SpecInt: return "SPEC-INT";
      case Suite::Parsec: return "PARSEC";
      case Suite::BioBench: return "BIOBENCH";
    }
    return "?";
}

const std::vector<BenchmarkProfile> &
allBenchmarks()
{
    // {name, suite, LLC MPKI, run length (lines), write fraction,
    //  footprint MB}. Values follow published characterizations of
    // SPEC CPU2006 (rate mode, ~8MB LLC), PARSEC (simlarge) and
    // BioBench; see DESIGN.md.
    static const std::vector<BenchmarkProfile> benchmarks = {
        // SPEC CPU2006 floating point (17). Streaming codes sustain
        // multi-KB sequential runs; run lengths are in 64B lines.
        {"bwaves", Suite::SpecFp, 16.0, 192.0, 0.30, 512},
        {"gamess", Suite::SpecFp, 0.3, 24.0, 0.25, 16},
        {"milc", Suite::SpecFp, 24.0, 64.0, 0.35, 512},
        {"zeusmp", Suite::SpecFp, 7.0, 96.0, 0.35, 256},
        {"gromacs", Suite::SpecFp, 1.0, 48.0, 0.30, 32},
        {"cactusADM", Suite::SpecFp, 6.0, 80.0, 0.40, 256},
        {"leslie3d", Suite::SpecFp, 18.0, 160.0, 0.35, 256},
        {"namd", Suite::SpecFp, 0.6, 48.0, 0.20, 32},
        {"dealII", Suite::SpecFp, 1.2, 48.0, 0.25, 64},
        {"soplex", Suite::SpecFp, 25.0, 48.0, 0.25, 256},
        {"povray", Suite::SpecFp, 0.3, 24.0, 0.20, 16},
        {"calculix", Suite::SpecFp, 0.7, 64.0, 0.25, 32},
        {"GemsFDTD", Suite::SpecFp, 22.0, 224.0, 0.45, 512},
        {"tonto", Suite::SpecFp, 0.8, 48.0, 0.25, 32},
        {"lbm", Suite::SpecFp, 30.0, 512.0, 0.45, 512},
        {"wrf", Suite::SpecFp, 8.0, 128.0, 0.30, 256},
        {"sphinx3", Suite::SpecFp, 15.0, 80.0, 0.15, 128},
        // SPEC CPU2006 integer (12)
        {"perlbench", Suite::SpecInt, 1.2, 32.0, 0.30, 64},
        {"bzip2", Suite::SpecInt, 4.0, 64.0, 0.35, 128},
        {"gcc", Suite::SpecInt, 8.0, 48.0, 0.35, 128},
        {"mcf", Suite::SpecInt, 35.0, 2.0, 0.20, 1024},
        {"gobmk", Suite::SpecInt, 1.0, 32.0, 0.25, 32},
        {"hmmer", Suite::SpecInt, 1.5, 64.0, 0.30, 32},
        {"sjeng", Suite::SpecInt, 0.8, 16.0, 0.25, 64},
        {"libquantum", Suite::SpecInt, 28.0, 512.0, 0.25, 256},
        {"h264ref", Suite::SpecInt, 1.5, 64.0, 0.30, 64},
        {"omnetpp", Suite::SpecInt, 20.0, 3.0, 0.30, 256},
        {"astar", Suite::SpecInt, 4.0, 8.0, 0.25, 128},
        {"xalancbmk", Suite::SpecInt, 6.0, 8.0, 0.25, 256},
        // PARSEC (7): black, face, ferret, fluid, freq, stream, swapt
        {"black", Suite::Parsec, 1.5, 64.0, 0.25, 64},
        {"face", Suite::Parsec, 4.0, 80.0, 0.30, 128},
        {"ferret", Suite::Parsec, 3.0, 48.0, 0.25, 128},
        {"fluid", Suite::Parsec, 3.0, 80.0, 0.30, 128},
        {"freq", Suite::Parsec, 2.0, 48.0, 0.30, 128},
        {"stream", Suite::Parsec, 10.0, 192.0, 0.35, 256},
        {"swapt", Suite::Parsec, 1.5, 48.0, 0.25, 64},
        // BioBench (2): read-dominated, near-random access
        {"tigr", Suite::BioBench, 25.0, 1.5, 0.05, 512},
        {"mummer", Suite::BioBench, 30.0, 1.5, 0.05, 512},
    };
    return benchmarks;
}

const BenchmarkProfile &
findBenchmark(const std::string &name)
{
    for (const auto &b : allBenchmarks())
        if (b.name == name)
            return b;
    fatal("unknown benchmark '%s'", name.c_str());
}

AddressStream::AddressStream(const BenchmarkProfile &profile, u32 core,
                             u64 total_lines, u64 seed)
    : profile_(profile),
      rng_(seed ^ (0x6C62272E07BB0142ull * (core + 1)))
{
    const u64 lines_per_mb = (1ull << 20) / 64;
    regionLines_ = std::max<u64>(profile.footprintMB * lines_per_mb, 64);
    // Rate mode: each core gets a disjoint slice of physical memory
    // (first-touch allocation of distinct copies).
    const u64 slice = total_lines / 8;
    regionLines_ = std::min(regionLines_, slice);
    regionBase_ = (core % 8) * slice;
    cursor_ = regionBase_;
}

LineAddr
AddressStream::nextLine()
{
    if (runLeft_ == 0) {
        // Start a new burst at a random line; geometric run length with
        // the profile's mean.
        cursor_ = regionBase_ + rng_.below(regionLines_);
        const double p = 1.0 / std::max(1.0, profile_.runLength);
        runLeft_ = 1;
        while (!rng_.chance(p) && runLeft_ < 4096)
            ++runLeft_;
    }
    --runLeft_;
    const u64 line = cursor_;
    cursor_ = regionBase_ + (cursor_ - regionBase_ + 1) % regionLines_;
    return LineAddr{line};
}

} // namespace citadel
