#include "sim/memory_system.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/log.h"
#include "sim/retirement.h"

namespace citadel {

namespace {

/** Token layout: generation in the high 32 bits, arena slot in the
 *  low 32. Generations start at 1 so no read token is ever 0 (0 is
 *  the "untracked write" convention). */
inline u64
makeToken(u32 gen, u32 slot)
{
    return (static_cast<u64>(gen) << 32) | slot;
}

inline u32
tokenGen(u64 token)
{
    return static_cast<u32>(token >> 32);
}

} // namespace

MemorySystem::MemorySystem(const SimConfig &cfg) : cfg_(cfg), map_(cfg.geom)
{
    const u32 nch = cfg_.geom.totalChannels();
    channels_.resize(nch);
    const std::size_t words = (cfg_.geom.banksPerChannel + 63) / 64;
    for (auto &ch : channels_) {
        ch.banks.resize(cfg_.geom.banksPerChannel);
        for (GroupQueue *q : {&ch.reads, &ch.writes}) {
            q->perBank.resize(cfg_.geom.banksPerChannel);
            q->bankWords.assign(words, 0);
        }
    }
    // The write queue holds whole-line writes; striped mappings enqueue
    // fanout sub-requests per line, so the sub-request cap scales.
    writeCapSubs_ = static_cast<u64>(cfg_.writeQueueCap) *
                    map_.fanout(cfg_.striping);
}

u32
MemorySystem::channelIndex(const LineCoord &c) const
{
    return c.stack.value() * cfg_.geom.channelsPerStack +
           c.channel.value();
}

u64
MemorySystem::allocToken()
{
    u32 slot;
    if (!tokens_.freeSlots.empty()) {
        slot = tokens_.freeSlots.back();
        tokens_.freeSlots.pop_back();
    } else {
        slot = static_cast<u32>(tokens_.gen.size());
        tokens_.gen.push_back(1);
        tokens_.remaining.push_back(0);
        tokens_.allocSeq.push_back(0);
    }
    tokens_.allocSeq[slot] = readAllocSeq_++;
    return makeToken(tokens_.gen[slot], slot);
}

void
MemorySystem::releaseToken(u64 token)
{
    const u32 slot = tokenSlot(token);
    ++tokens_.gen[slot];
    tokens_.freeSlots.push_back(slot);
}

u32
MemorySystem::acquireGroup(GroupQueue &q)
{
    if (!q.freeSlots.empty()) {
        const u32 slot = q.freeSlots.back();
        q.freeSlots.pop_back();
        return slot;
    }
    q.pool.emplace_back();
    return static_cast<u32>(q.pool.size() - 1);
}

void
MemorySystem::releaseRef(GroupQueue &q, u32 slot)
{
    Group &g = q.pool[slot];
    if (--g.refs == 0 && !g.live) {
        g.slices.clear();
        q.freeSlots.push_back(slot);
    }
}

void
MemorySystem::popDeadHeads(GroupQueue &q, std::deque<BankRef> &dq)
{
    while (!dq.empty() && !q.pool[dq.front().slot].live) {
        releaseRef(q, dq.front().slot);
        dq.pop_front();
    }
}

void
MemorySystem::enqueue(const LineCoord &line, bool write, u64 token,
                      u64 cycle, bool ras)
{
    const auto subs = map_.subRequests(line, cfg_.striping);
    const u32 bytes =
        cfg_.geom.lineBytes / static_cast<u32>(subs.size());
    if (ras)
        counters_.rasReads += subs.size();
    if (!write)
        tokens_.remaining[tokenSlot(token)] =
            static_cast<u32>(subs.size());

    // Bucket the sub-requests into one group per touched channel,
    // preserving sub-request order (the slices of a striped line in
    // one channel issue in lockstep and must keep their flat-queue
    // relative order for exact FR-FCFS tie-breaking).
    u32 openChannel = kInvalidSlot;
    u32 openSlot = kInvalidSlot;
    for (const LineCoord &s : subs) {
        const u32 chIdx = channelIndex(s);
        Channel &ch = channels_[chIdx];
        GroupQueue &q = write ? ch.writes : ch.reads;
        if (chIdx != openChannel) {
            openChannel = chIdx;
            openSlot = acquireGroup(q);
            Group &g = q.pool[openSlot];
            g.token = token;
            g.seq = ch.nextSeq++;
            g.arrival = cycle;
            g.bytes = bytes;
            g.write = write;
            g.live = true;
            g.refs = 0;
            g.slices.clear();
        }
        Group &g = q.pool[openSlot];
        const u32 sliceIdx = static_cast<u32>(g.slices.size());
        g.slices.push_back({s.bank, s.row});
        ++g.refs;
        const std::size_t b = s.bank.idx();
        q.perBank[b].push_back({openSlot, sliceIdx});
        q.bankWords[b / 64] |= 1ull << (b % 64);
        ++q.liveSlices;
        ++pendingOps_;
    }
}

u64
MemorySystem::issueRead(LineAddr line, u64 cycle, bool ras)
{
    const u64 token = allocToken();
    const LineCoord coord = map_.lineToCoord(line);
    const LineCoord routed = routeCoord(coord);
    if (!(routed == coord))
        ++counters_.steeredReads;
    enqueue(routed, false, token, cycle, ras);
    return token;
}

bool
MemorySystem::canAcceptWrite(LineAddr line) const
{
    const LineCoord coord = routeCoord(map_.lineToCoord(line));
    const auto subs = map_.subRequests(coord, cfg_.striping);
    for (const LineCoord &s : subs) {
        const Channel &ch = channels_[channelIndex(s)];
        if (ch.writes.liveSlices >= writeCapSubs_)
            return false;
    }
    return true;
}

void
MemorySystem::issueWrite(LineAddr line, u64 cycle)
{
    const LineCoord coord = map_.lineToCoord(line);
    const LineCoord routed = routeCoord(coord);
    if (!(routed == coord))
        ++counters_.steeredWrites;
    enqueue(routed, true, 0, cycle, false);
}

LineCoord
MemorySystem::routeCoord(const LineCoord &coord) const
{
    if (retire_ == nullptr || retire_->empty())
        return coord;
    return retire_->route(coord);
}

MemorySystem::Pick
MemorySystem::pickCandidate(Channel &ch, GroupQueue &q, u64 cycle)
{
    // FR-FCFS: oldest ready row-hit first, else the oldest whose bank
    // can start an activation (or whose open row will accept a later
    // CAS). Oldest = smallest channel-local group seq, which equals
    // the flat-queue position of the legacy scan.
    u64 hitSeq = kNoEvent;
    u64 candSeq = kNoEvent;
    u32 hitSlot = kInvalidSlot;
    u32 candSlot = kInvalidSlot;

    for (std::size_t w = 0; w < q.bankWords.size(); ++w) {
        u64 word = q.bankWords[w];
        while (word != 0) {
            const std::size_t b =
                w * 64 + static_cast<std::size_t>(std::countr_zero(word));
            word &= word - 1;
            auto &dq = q.perBank[b];
            popDeadHeads(q, dq);
            if (dq.empty()) {
                q.bankWords[w] &= ~(1ull << (b % 64));
                continue;
            }
            const BankState &bs = ch.banks[b];
            const bool act_ready = cycle >= bs.nextActAt;
            if (act_ready) {
                // Every queued row qualifies; the bank's oldest is its
                // head (refs are FIFO in seq order).
                const Group &hg = q.pool[dq.front().slot];
                if (hg.seq < candSeq) {
                    candSeq = hg.seq;
                    candSlot = dq.front().slot;
                }
            }
            if (!bs.openRow.has_value())
                continue;
            const bool cas_ready = cycle >= bs.nextCasAt;
            if (!cas_ready && act_ready)
                continue; // open-row entries add nothing here
            // Oldest queued reference matching the open row: a ready
            // row hit if the bank can take a CAS, and (when the bank
            // cannot activate) still a candidate waiting on tCCD.
            for (const BankRef &ref : dq) {
                const Group &g = q.pool[ref.slot];
                if (!g.live)
                    continue;
                const bool canHit = cas_ready && g.seq < hitSeq;
                const bool canCand = !act_ready && g.seq < candSeq;
                if (!canHit && !canCand)
                    break; // seq ascending: no later ref can improve
                if (g.slices[ref.slice].row == *bs.openRow) {
                    if (canHit) {
                        hitSeq = g.seq;
                        hitSlot = ref.slot;
                    }
                    if (canCand) {
                        candSeq = g.seq;
                        candSlot = ref.slot;
                    }
                    break;
                }
            }
        }
    }

    if (hitSlot != kInvalidSlot)
        return {hitSlot,
                primarySlice(ch, q.pool[hitSlot], /*hit=*/true, cycle)};
    if (candSlot != kInvalidSlot)
        return {candSlot,
                primarySlice(ch, q.pool[candSlot], /*hit=*/false, cycle)};
    return {};
}

u32
MemorySystem::primarySlice(const Channel &ch, const Group &g, bool hit,
                           u64 cycle) const
{
    for (u32 i = 0; i < g.slices.size(); ++i) {
        const BankState &bs = ch.banks[g.slices[i].bank.idx()];
        const bool row_open = bs.openRow == g.slices[i].row;
        if (hit ? (row_open && cycle >= bs.nextCasAt)
                : (row_open || cycle >= bs.nextActAt))
            return i;
    }
    panic("memory: picked group has no qualifying slice");
}

u64
MemorySystem::schedule(Channel &ch, const Slice &slice, bool write,
                       u32 bytes, u64 cycle, bool lockstep_sibling)
{
    const DramTiming &t = cfg_.timing;
    BankState &b = ch.banks[slice.bank.idx()];
    u64 done;

    // Column-to-column spacing scales with the burst: a striped
    // sub-request moves lineBytes/fanout bytes in a proportionally
    // shorter burst, so its bank can accept the next CAS sooner.
    const u32 ccd =
        std::max<u32>(1, t.tCCD * bytes / cfg_.geom.lineBytes);

    // Write-to-read turnaround is paid once per switch (writes batch
    // at tCCD), matching a write-buffering controller.
    auto wtr_floor = [&](u64 cas) {
        if (!write && b.lastWriteCas + static_cast<i64>(t.tWTR) >
                          static_cast<i64>(cas))
            return static_cast<u64>(b.lastWriteCas + t.tWTR);
        return cas;
    };

    if (b.openRow == slice.row) {
        // Row hit: column access only.
        const u64 t0 = wtr_floor(std::max(cycle, b.nextCasAt));
        done = t0 + t.tCAS + t.tBURST;
        b.nextCasAt = t0 + ccd;
        if (write)
            b.lastWriteCas = static_cast<i64>(t0);
        ++counters_.rowHits;
    } else {
        // Row miss: (precharge if open) + activate + column access.
        u64 act = std::max(cycle, b.nextActAt);
        if (b.openRow.has_value())
            act = std::max(act, cycle + t.tRP);
        // Striped sibling banks activate together (one multi-bank
        // activate command): the tRRD spacing applies per line group,
        // not per slice -- striping's cost is activation energy.
        if (!lockstep_sibling) {
            if (ch.lastActAt + static_cast<i64>(t.tRRD) >
                static_cast<i64>(act))
                act = static_cast<u64>(ch.lastActAt + t.tRRD);
            ch.lastActAt = static_cast<i64>(act);
        }
        const u64 cas = wtr_floor(act + t.tRCD);
        done = cas + t.tCAS + t.tBURST;
        b.nextCasAt = cas + ccd;
        if (write)
            b.lastWriteCas = static_cast<i64>(cas);
        b.nextActAt = act + t.tRAS + t.tRP;
        b.openRow = slice.row;
        ++counters_.activates;
        ++counters_.rowMisses;
    }

    // Shared data-TSV bus. A full line occupies tBURST cycles; a
    // striped sub-request drives only its slice of the lanes, so it
    // reserves a proportional share (the slices of one logical line
    // transfer in parallel, as on a conventional DIMM).
    const double slot = static_cast<double>(t.tBURST) *
                        static_cast<double>(bytes) /
                        static_cast<double>(cfg_.geom.lineBytes);
    const double start =
        std::max(ch.busUntil, static_cast<double>(done) - slot);
    const double end = start + slot;
    ch.busUntil = end;
    if (static_cast<double>(done) < end)
        done = static_cast<u64>(std::ceil(end));

    if (write) {
        ++counters_.writeBursts;
        counters_.bytesWritten += bytes;
    } else {
        ++counters_.readBursts;
        counters_.bytesRead += bytes;
    }
    return done;
}

void
MemorySystem::issueGroup(Channel &ch, GroupQueue &q, const Pick &pick,
                         u64 cycle)
{
    Group &g = q.pool[pick.slot];
    const u64 readSeq =
        g.write ? 0 : tokens_.allocSeq[tokenSlot(g.token)];

    // Primary slice first (it pays the tRRD chain), then its striped
    // siblings in slice order as one lockstep multi-bank command.
    const u64 done0 =
        schedule(ch, g.slices[pick.slice], g.write, g.bytes, cycle);
    if (!g.write)
        completions_.push({done0, readSeq, g.token});
    for (u32 i = 0; i < g.slices.size(); ++i) {
        if (i == pick.slice)
            continue;
        const u64 done = schedule(ch, g.slices[i], g.write, g.bytes,
                                  cycle, /*lockstep_sibling=*/true);
        if (!g.write)
            completions_.push({done, readSeq, g.token});
    }

    pendingOps_ -= g.slices.size();
    q.liveSlices -= g.slices.size();
    g.live = false; // bank-queue refs drain lazily
}

void
MemorySystem::serviceChannel(Channel &ch, u64 cycle)
{
    // Reads have priority; writes drain when no read is ready or the
    // write queue is past its high-water mark.
    const bool write_pressure =
        ch.writes.liveSlices >= writeCapSubs_ / 2;

    Pick pick;
    GroupQueue *q = nullptr;
    if (!write_pressure) {
        pick = pickCandidate(ch, ch.reads, cycle);
        q = &ch.reads;
        if (!pick.valid() && ch.writes.liveSlices > 0) {
            pick = pickCandidate(ch, ch.writes, cycle);
            q = &ch.writes;
        }
    } else {
        pick = pickCandidate(ch, ch.writes, cycle);
        q = &ch.writes;
        if (!pick.valid()) {
            pick = pickCandidate(ch, ch.reads, cycle);
            q = &ch.reads;
        }
    }
    if (!pick.valid())
        return;

    issueGroup(ch, *q, pick, cycle);
}

void
MemorySystem::tick(u64 cycle)
{
    for (auto &ch : channels_)
        serviceChannel(ch, cycle);

    while (!completions_.empty() && completions_.top().done <= cycle) {
        const u64 token = completions_.top().token;
        completions_.pop();
        const u32 slot = tokenSlot(token);
        if (slot >= tokens_.gen.size() ||
            tokens_.gen[slot] != tokenGen(token) ||
            tokens_.remaining[slot] == 0)
            panic("memory: completion for unknown token");
        if (--tokens_.remaining[slot] == 0)
            completedTokens_.push_back(token);
    }
}

std::vector<u64>
MemorySystem::drainCompletedReads()
{
    // Tokens reported by the previous drain are done with their
    // grace period; recycle their slots now.
    for (const u64 token : drainedTokens_)
        releaseToken(token);
    drainedTokens_ = completedTokens_;

    std::vector<u64> out;
    out.swap(completedTokens_);
    return out;
}

u64
MemorySystem::queueNextEvent(Channel &ch, GroupQueue &q, u64 now)
{
    u64 next = kNoEvent;
    for (std::size_t w = 0; w < q.bankWords.size(); ++w) {
        u64 word = q.bankWords[w];
        while (word != 0) {
            const std::size_t b =
                w * 64 + static_cast<std::size_t>(std::countr_zero(word));
            word &= word - 1;
            auto &dq = q.perBank[b];
            popDeadHeads(q, dq);
            if (dq.empty()) {
                q.bankWords[w] &= ~(1ull << (b % 64));
                continue;
            }
            const BankState &bs = ch.banks[b];
            if (bs.nextActAt <= now)
                return now; // the head is already a candidate
            if (bs.openRow.has_value()) {
                // An open-row match is a candidate every cycle.
                for (const BankRef &ref : dq) {
                    const Group &g = q.pool[ref.slot];
                    if (!g.live)
                        continue;
                    if (g.slices[ref.slice].row == *bs.openRow)
                        return now;
                }
            }
            next = std::min(next, bs.nextActAt);
        }
    }
    return next;
}

u64
MemorySystem::nextEventCycle(u64 now)
{
    u64 next = kNoEvent;
    if (!completions_.empty())
        next = std::max(now, completions_.top().done);
    for (auto &ch : channels_) {
        for (GroupQueue *q : {&ch.reads, &ch.writes}) {
            if (q->liveSlices == 0)
                continue;
            next = std::min(next, queueNextEvent(ch, *q, now));
            if (next <= now)
                return now;
        }
    }
    return next;
}

} // namespace citadel
