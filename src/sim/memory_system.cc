#include "sim/memory_system.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace citadel {

MemorySystem::MemorySystem(const SimConfig &cfg) : cfg_(cfg), map_(cfg.geom)
{
    const u32 nch = cfg_.geom.totalChannels();
    channels_.resize(nch);
    for (auto &ch : channels_)
        ch.banks.resize(cfg_.geom.banksPerChannel);
    // The write queue holds whole-line writes; striped mappings enqueue
    // fanout sub-requests per line, so the sub-request cap scales.
    writeCapSubs_ = static_cast<u64>(cfg_.writeQueueCap) *
                    map_.fanout(cfg_.striping);
}

u32
MemorySystem::channelIndex(const LineCoord &c) const
{
    return c.stack.value() * cfg_.geom.channelsPerStack +
           c.channel.value();
}

void
MemorySystem::enqueue(const LineCoord &line, bool write, u64 token,
                      u64 cycle)
{
    const auto subs = map_.subRequests(line, cfg_.striping);
    const u32 bytes =
        cfg_.geom.lineBytes / static_cast<u32>(subs.size());
    for (const LineCoord &s : subs) {
        Channel &ch = channels_[channelIndex(s)];
        SubReq r;
        r.token = token;
        r.bank = s.bank;
        r.row = s.row;
        r.write = write;
        r.arrival = cycle;
        r.bytes = bytes;
        (write ? ch.writeQueue : ch.readQueue).push_back(r);
        ++pendingOps_;
    }
    if (!write)
        remaining_[token] = static_cast<u32>(subs.size());
    (void)0;
}

u64
MemorySystem::issueRead(LineAddr line, u64 cycle, bool ras)
{
    const u64 token = nextToken_++;
    const LineCoord coord = map_.lineToCoord(line);
    if (ras)
        counters_.rasReads += map_.subRequests(coord, cfg_.striping).size();
    enqueue(coord, false, token, cycle);
    return token;
}

bool
MemorySystem::canAcceptWrite(LineAddr line) const
{
    const LineCoord coord = map_.lineToCoord(line);
    const auto subs = map_.subRequests(coord, cfg_.striping);
    for (const LineCoord &s : subs) {
        const Channel &ch = channels_[channelIndex(s)];
        if (ch.writeQueue.size() >= writeCapSubs_)
            return false;
    }
    return true;
}

void
MemorySystem::issueWrite(LineAddr line, u64 cycle)
{
    // Writes get a token too so striped sibling sub-writes issue in
    // lockstep, but no completion is reported for them.
    enqueue(map_.lineToCoord(line), true, nextToken_++, cycle);
}

int
MemorySystem::pickCandidate(const Channel &ch, const std::deque<SubReq> &q,
                            u64 cycle) const
{
    // FR-FCFS: oldest ready row-hit first, else the oldest whose bank
    // can start an activation.
    int oldest_ready = -1;
    for (std::size_t i = 0; i < q.size(); ++i) {
        const SubReq &r = q[i];
        const BankState &b = ch.banks[r.bank.idx()];
        const bool row_open = b.openRow == r.row;
        const bool hit = row_open && cycle >= b.nextCasAt;
        if (hit)
            return static_cast<int>(i);
        if (oldest_ready < 0) {
            const bool act_ready = !row_open && cycle >= b.nextActAt;
            const bool cas_later = row_open; // waiting on tCCD
            if (act_ready || cas_later)
                oldest_ready = static_cast<int>(i);
        }
    }
    return oldest_ready;
}

u64
MemorySystem::schedule(Channel &ch, SubReq &req, u64 cycle,
                       bool lockstep_sibling)
{
    const DramTiming &t = cfg_.timing;
    BankState &b = ch.banks[req.bank.idx()];
    u64 done;

    // Column-to-column spacing scales with the burst: a striped
    // sub-request moves lineBytes/fanout bytes in a proportionally
    // shorter burst, so its bank can accept the next CAS sooner.
    const u32 ccd = std::max<u32>(
        1, t.tCCD * req.bytes / cfg_.geom.lineBytes);

    // Write-to-read turnaround is paid once per switch (writes batch
    // at tCCD), matching a write-buffering controller.
    auto wtr_floor = [&](u64 cas) {
        if (!req.write &&
            b.lastWriteCas + static_cast<i64>(t.tWTR) >
                static_cast<i64>(cas))
            return static_cast<u64>(b.lastWriteCas + t.tWTR);
        return cas;
    };

    if (b.openRow == req.row) {
        // Row hit: column access only.
        const u64 t0 = wtr_floor(std::max(cycle, b.nextCasAt));
        done = t0 + t.tCAS + t.tBURST;
        b.nextCasAt = t0 + ccd;
        if (req.write)
            b.lastWriteCas = static_cast<i64>(t0);
        ++counters_.rowHits;
    } else {
        // Row miss: (precharge if open) + activate + column access.
        u64 act = std::max(cycle, b.nextActAt);
        if (b.openRow.has_value())
            act = std::max(act, cycle + t.tRP);
        // Striped sibling banks activate together (one multi-bank
        // activate command): the tRRD spacing applies per line group,
        // not per slice -- striping's cost is activation energy.
        if (!lockstep_sibling) {
            if (ch.lastActAt + static_cast<i64>(t.tRRD) >
                static_cast<i64>(act))
                act = static_cast<u64>(ch.lastActAt + t.tRRD);
            ch.lastActAt = static_cast<i64>(act);
        }
        const u64 cas = wtr_floor(act + t.tRCD);
        done = cas + t.tCAS + t.tBURST;
        b.nextCasAt = cas + ccd;
        if (req.write)
            b.lastWriteCas = static_cast<i64>(cas);
        b.nextActAt = act + t.tRAS + t.tRP;
        b.openRow = req.row;
        ++counters_.activates;
        ++counters_.rowMisses;
    }

    // Shared data-TSV bus. A full line occupies tBURST cycles; a
    // striped sub-request drives only its slice of the lanes, so it
    // reserves a proportional share (the slices of one logical line
    // transfer in parallel, as on a conventional DIMM).
    const double slot = static_cast<double>(t.tBURST) *
                        static_cast<double>(req.bytes) /
                        static_cast<double>(cfg_.geom.lineBytes);
    const double start =
        std::max(ch.busUntil, static_cast<double>(done) - slot);
    const double end = start + slot;
    ch.busUntil = end;
    if (static_cast<double>(done) < end)
        done = static_cast<u64>(std::ceil(end));

    if (req.write) {
        ++counters_.writeBursts;
        counters_.bytesWritten += req.bytes;
    } else {
        ++counters_.readBursts;
        counters_.bytesRead += req.bytes;
    }
    return done;
}

void
MemorySystem::serviceChannel(Channel &ch, u64 cycle)
{
    // Reads have priority; writes drain when no read is ready or the
    // write queue is past its high-water mark.
    const bool write_pressure = ch.writeQueue.size() >= writeCapSubs_ / 2;

    int idx = -1;
    bool is_write = false;
    if (!write_pressure) {
        idx = pickCandidate(ch, ch.readQueue, cycle);
        if (idx < 0 && !ch.writeQueue.empty()) {
            idx = pickCandidate(ch, ch.writeQueue, cycle);
            is_write = idx >= 0;
        }
    } else {
        idx = pickCandidate(ch, ch.writeQueue, cycle);
        is_write = idx >= 0;
        if (idx < 0) {
            idx = pickCandidate(ch, ch.readQueue, cycle);
            is_write = false;
        }
    }
    if (idx < 0)
        return;

    auto &q = is_write ? ch.writeQueue : ch.readQueue;
    SubReq req = q[static_cast<std::size_t>(idx)];
    q.erase(q.begin() + idx);

    const u64 done = schedule(ch, req, cycle);
    --pendingOps_;
    if (!req.write)
        completions_.push({done, req.token});

    // Striped mappings issue the sibling sub-requests of the same line
    // in lockstep (one multicast column command addresses all slices,
    // as on a ChipKill DIMM), so they do not serialize on the command
    // bus.
    for (std::size_t i = 0; i < q.size();) {
        if (q[i].token == req.token) {
            SubReq sib = q[i];
            q.erase(q.begin() + static_cast<long>(i));
            const u64 sib_done = schedule(ch, sib, cycle, true);
            --pendingOps_;
            if (!sib.write)
                completions_.push({sib_done, sib.token});
        } else {
            ++i;
        }
    }
}

void
MemorySystem::tick(u64 cycle)
{
    for (auto &ch : channels_)
        serviceChannel(ch, cycle);

    while (!completions_.empty() && completions_.top().first <= cycle) {
        const u64 token = completions_.top().second;
        completions_.pop();
        auto it = remaining_.find(token);
        if (it == remaining_.end())
            panic("memory: completion for unknown token");
        if (--it->second == 0) {
            completedTokens_.push_back(token);
            remaining_.erase(it);
        }
    }
}

std::vector<u64>
MemorySystem::drainCompletedReads(u64 cycle)
{
    (void)cycle;
    std::vector<u64> out;
    out.swap(completedTokens_);
    return out;
}

} // namespace citadel
