/**
 * @file
 * Top-level timing simulation: 8 cores in rate mode (all running the
 * same benchmark, Section III-B) over the shared LLC and the stacked
 * DRAM, with the RAS-traffic side effects of the configuration under
 * study:
 *
 *  - baseline / striped symbol code: plain reads and writebacks;
 *  - 3DP: every writeback performs a read-before-write (RBW, Fig 12)
 *    and a Dimension-1 parity update that hits in the LLC or fetches
 *    the parity line from DRAM (cached mode), or reads+writes parity
 *    in DRAM directly (uncached mode).
 *
 * An optional RasHook (see sim/ras_hook.h) adds the live error path:
 * every completed demand read is checked against the bit-true fault
 * state; detection/correction costs a read-retry plus the parity-group
 * reads, charged as real memory traffic the demanding core waits on.
 *
 * The clock advances either cycle-by-cycle or event-driven (skipping
 * stretches in which every component is provably idle); the two modes
 * produce bit-identical results (DESIGN.md section 10) and are
 * selected by SimConfig::stepping / CITADEL_SIM_STEPPING.
 */

#ifndef CITADEL_SIM_SYSTEM_SIM_H
#define CITADEL_SIM_SYSTEM_SIM_H

#include <deque>

#include "sim/llc.h"
#include "sim/memory_system.h"
#include "sim/power.h"
#include "sim/ras_hook.h"
#include "sim/workload.h"

namespace citadel {

/** Results of one timing-simulation run. */
struct SimResult
{
    u64 cycles = 0;
    u64 insnsRetired = 0;
    MemCounters mem;
    LlcStats llc;
    PowerResult power;

    /** Capacity lost to the degradation ladder by end of run, in
     *  cache lines, and the usable fraction remaining (1.0 when no
     *  RAS hook or nothing retired). */
    u64 retiredLines = 0;
    double capacityFraction = 1.0;

    double parityHitRate() const { return llc.parityHitRate(); }
};

/** One simulated system executing one benchmark in rate mode. */
class SystemSim
{
  public:
    SystemSim(const SimConfig &cfg, const BenchmarkProfile &profile);

    /**
     * Attach a live RAS datapath consulted on every completed demand
     * read. Not owned; must outlive run(). Pass nullptr to detach.
     */
    void attachRas(RasHook *hook)
    {
        ras_ = hook;
        mem_.attachRetirement(hook ? hook->retirementMap() : nullptr);
    }

    /** Run to completion (every core retires its instruction budget). */
    SimResult run();

  private:
    struct Core
    {
        u64 retired = 0;
        u64 nextMissAt = 0;
        u32 outstanding = 0;
        AddressStream stream;
        Rng rng;

        Core(AddressStream s, Rng r)
            : stream(std::move(s)), rng(r)
        {
        }
    };

    /** A read some core is waiting on, slot-addressed by its token.
     *  `token == 0` marks a free slot (read tokens are never 0). */
    struct PendingRead
    {
        u64 token = 0;
        u32 core = 0;
        LineAddr line{};     ///< Demanded data line.
        bool replay = false; ///< Correction replay: release, no re-check.
    };

    /** A deferred writeback. Raw entries carry a physical DRAM line
     *  that bypasses the RAS traffic path (deferred D1 parity writes:
     *  their parity maintenance already happened); the rest are data
     *  lines that run the full processWriteback treatment. */
    struct PendingWb
    {
        LineAddr line{};
        bool raw = false;
    };

    SimConfig cfg_;
    const BenchmarkProfile &profile_;
    MemorySystem mem_;
    Llc llc_;
    std::vector<Core> cores_;
    /** Demand reads in flight, indexed by MemorySystem::tokenSlot. */
    std::vector<PendingRead> pendingReads_;
    std::deque<PendingWb> pendingWritebacks_;
    RasHook *ras_ = nullptr;

    /** Dimension-1 parity line address for a data line (Section VI-C). */
    LineAddr parityLineFor(LineAddr data_line) const;

    /** Physical DRAM line backing a (possibly parity-space) address. */
    LineAddr physicalFor(LineAddr line) const;

    void coreTick(u32 core_idx, u64 cycle);
    void issueMiss(Core &core, u32 core_idx, u64 cycle);

    /** Track a demand read so its completion releases `core_idx`. */
    void trackRead(u64 token, u32 core_idx, LineAddr line, bool replay);

    /** Write `phys` now if the queue has room, else defer it as a raw
     *  writeback (no RAS side effects when it drains). */
    void queueRawWrite(LineAddr phys, u64 cycle);

    /** Run the RAS error path for one completed demand read. */
    void handleDemandCompletion(const PendingRead &pr, u64 cycle);

    /** Handle a dirty-line writeback including RAS side effects.
     *  @return false if the memory could not accept it (retry later). */
    bool processWriteback(LineAddr line, u64 cycle);

    /** Issue one deferred writeback (raw or full-treatment). */
    bool tryWriteback(const PendingWb &wb, u64 cycle);

    /** One full simulation cycle: RAS tick, writeback drain, core
     *  ticks, memory tick, completion drain. */
    void stepCycle(u64 cycle);

    /**
     * Earliest cycle >= `now` at which stepCycle could do anything
     * beyond idle instruction retirement: a core reaches a miss point
     * or its budget end, a parked core can issue again, a deferred
     * writeback can drain, the memory has an event, or the RAS hook
     * does. Strictly before it, stepCycle == advanceIdle(1).
     */
    u64 nextInterestingCycle(u64 now);

    /** Batch-retire `cycles` worth of provably idle cycles. */
    void advanceIdle(u64 cycles);

    void sampleNextMiss(Core &core);
};

} // namespace citadel

#endif // CITADEL_SIM_SYSTEM_SIM_H
