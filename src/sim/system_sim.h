/**
 * @file
 * Top-level timing simulation: 8 cores in rate mode (all running the
 * same benchmark, Section III-B) over the shared LLC and the stacked
 * DRAM, with the RAS-traffic side effects of the configuration under
 * study:
 *
 *  - baseline / striped symbol code: plain reads and writebacks;
 *  - 3DP: every writeback performs a read-before-write (RBW, Fig 12)
 *    and a Dimension-1 parity update that hits in the LLC or fetches
 *    the parity line from DRAM (cached mode), or reads+writes parity
 *    in DRAM directly (uncached mode).
 *
 * An optional RasHook (see sim/ras_hook.h) adds the live error path:
 * every completed demand read is checked against the bit-true fault
 * state; detection/correction costs a read-retry plus the parity-group
 * reads, charged as real memory traffic the demanding core waits on.
 */

#ifndef CITADEL_SIM_SYSTEM_SIM_H
#define CITADEL_SIM_SYSTEM_SIM_H

#include <deque>
#include <unordered_map>

#include "sim/llc.h"
#include "sim/memory_system.h"
#include "sim/power.h"
#include "sim/ras_hook.h"
#include "sim/workload.h"

namespace citadel {

/** Results of one timing-simulation run. */
struct SimResult
{
    u64 cycles = 0;
    u64 insnsRetired = 0;
    MemCounters mem;
    LlcStats llc;
    PowerResult power;

    double parityHitRate() const { return llc.parityHitRate(); }
};

/** One simulated system executing one benchmark in rate mode. */
class SystemSim
{
  public:
    SystemSim(const SimConfig &cfg, const BenchmarkProfile &profile);

    /**
     * Attach a live RAS datapath consulted on every completed demand
     * read. Not owned; must outlive run(). Pass nullptr to detach.
     */
    void attachRas(RasHook *hook) { ras_ = hook; }

    /** Run to completion (every core retires its instruction budget). */
    SimResult run();

  private:
    struct Core
    {
        u64 retired = 0;
        u64 nextMissAt = 0;
        u32 outstanding = 0;
        AddressStream stream;
        Rng rng;

        Core(AddressStream s, Rng r)
            : stream(std::move(s)), rng(r)
        {
        }
    };

    /** A read token some core is waiting on. */
    struct PendingRead
    {
        u32 core = 0;
        LineAddr line{};     ///< Demanded data line.
        bool replay = false; ///< Correction replay: release, no re-check.
    };

    SimConfig cfg_;
    const BenchmarkProfile &profile_;
    MemorySystem mem_;
    Llc llc_;
    std::vector<Core> cores_;
    std::unordered_map<u64, PendingRead> pendingReads_;
    /** Data lines awaiting WB issue. */
    std::deque<LineAddr> pendingWritebacks_;
    LineAddr parityBase_{};
    RasHook *ras_ = nullptr;

    /** Dimension-1 parity line address for a data line (Section VI-C). */
    LineAddr parityLineFor(LineAddr data_line) const;

    /** Physical DRAM line backing a (possibly parity-space) address. */
    LineAddr physicalFor(LineAddr line) const;

    void coreTick(u32 core_idx, u64 cycle);
    void issueMiss(Core &core, u32 core_idx, u64 cycle);

    /** Run the RAS error path for one completed demand read. */
    void handleDemandCompletion(u64 token, const PendingRead &pr,
                                u64 cycle);

    /** Handle a dirty-line writeback including RAS side effects.
     *  @return false if the memory could not accept it (retry later). */
    bool processWriteback(LineAddr line, u64 cycle);

    void sampleNextMiss(Core &core);
};

} // namespace citadel

#endif // CITADEL_SIM_SYSTEM_SIM_H
