/**
 * @file
 * Top-level timing simulation: 8 cores in rate mode (all running the
 * same benchmark, Section III-B) over the shared LLC and the stacked
 * DRAM, with the RAS-traffic side effects of the configuration under
 * study:
 *
 *  - baseline / striped symbol code: plain reads and writebacks;
 *  - 3DP: every writeback performs a read-before-write (RBW, Fig 12)
 *    and a Dimension-1 parity update that hits in the LLC or fetches
 *    the parity line from DRAM (cached mode), or reads+writes parity
 *    in DRAM directly (uncached mode).
 */

#ifndef CITADEL_SIM_SYSTEM_SIM_H
#define CITADEL_SIM_SYSTEM_SIM_H

#include <deque>

#include "sim/llc.h"
#include "sim/memory_system.h"
#include "sim/power.h"
#include "sim/workload.h"

namespace citadel {

/** Results of one timing-simulation run. */
struct SimResult
{
    u64 cycles = 0;
    u64 insnsRetired = 0;
    MemCounters mem;
    LlcStats llc;
    PowerResult power;

    double parityHitRate() const { return llc.parityHitRate(); }
};

/** One simulated system executing one benchmark in rate mode. */
class SystemSim
{
  public:
    SystemSim(const SimConfig &cfg, const BenchmarkProfile &profile);

    /** Run to completion (every core retires its instruction budget). */
    SimResult run();

  private:
    struct Core
    {
        u64 retired = 0;
        u64 nextMissAt = 0;
        u32 outstanding = 0;
        AddressStream stream;
        Rng rng;

        Core(AddressStream s, Rng r)
            : stream(std::move(s)), rng(r)
        {
        }
    };

    SimConfig cfg_;
    const BenchmarkProfile &profile_;
    MemorySystem mem_;
    Llc llc_;
    std::vector<Core> cores_;
    std::unordered_map<u64, u32> tokenToCore_;
    std::deque<u64> pendingWritebacks_; ///< Data lines awaiting WB issue.
    u64 parityBase_;

    /** Dimension-1 parity line address for a data line (Section VI-C):
     *  one parity line covers the same (stack, row, col) slot across
     *  every (die, bank) unit. */
    u64 parityLineFor(u64 data_line) const;

    /**
     * Physical DRAM line backing an address: data lines map through
     * unchanged; parity lines map into the distributed parity bank
     * (bank/channel bits derived from the row so no single physical
     * bank bottlenecks, Section VI-A footnote).
     */
    u64 physicalFor(u64 line) const;

    void coreTick(u32 core_idx, u64 cycle);
    void issueMiss(Core &core, u32 core_idx, u64 cycle);

    /** Handle a dirty-line writeback including RAS side effects.
     *  @return false if the memory could not accept it (retry later). */
    bool processWriteback(u64 line, u64 cycle);

    void sampleNextMiss(Core &core);
};

} // namespace citadel

#endif // CITADEL_SIM_SYSTEM_SIM_H
