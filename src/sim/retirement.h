/**
 * @file
 * Retired-region map: the sim-side face of the degradation ladder.
 *
 * When the RAS layer runs out of DDS spares (or a region keeps
 * re-faulting), it stops repairing and starts *retiring*: a row is
 * offlined (the OS-page-offline analogue), a bank is decommissioned
 * outright, a channel is degraded. The system keeps running at reduced
 * capacity; demand traffic that would land in a retired region is
 * steered to a deterministic healthy location by MemorySystem's
 * enqueue path.
 *
 * This class lives in src/sim (not src/ras) because MemorySystem must
 * consult it on every access and the dependency arrow points ras ->
 * sim. The RAS layer owns the only mutable instance and exposes it
 * via RasHook::retirementMap().
 *
 * Steering is a *timing and capacity* model: the replacement location
 * stands in for wherever the OS re-homed the page, chosen
 * deterministically so runs are reproducible. Data-level aliasing is
 * not modeled here -- bit-true storage stays in the ras layer, which
 * drops faults contained in retired regions from both the bit-true
 * and the analytic model before they can disagree.
 */

#ifndef CITADEL_SIM_RETIREMENT_H
#define CITADEL_SIM_RETIREMENT_H

#include <set>

#include "common/serialize.h"
#include "stack/geometry.h"

namespace citadel {

/** Which rows, banks and channels have been taken out of service. */
class RetirementMap
{
  public:
    explicit RetirementMap(const StackGeometry &geom);

    /** Offline one row (page). @return true if newly offlined. */
    bool offlineRow(StackId stack, ChannelId channel, BankId bank,
                    RowId row);

    /** Decommission one bank. @return true if newly retired. */
    bool retireBank(StackId stack, ChannelId channel, BankId bank);

    /** Degrade one whole channel. @return true if newly degraded. */
    bool degradeChannel(StackId stack, ChannelId channel);

    bool rowOffline(StackId stack, ChannelId channel, BankId bank,
                    RowId row) const;
    bool bankRetired(StackId stack, ChannelId channel, BankId bank) const;
    bool channelDegraded(StackId stack, ChannelId channel) const;

    /** Is this coordinate inside any retired region? */
    bool retired(const LineCoord &c) const;

    /**
     * Deterministic healthy stand-in for a retired coordinate: the
     * nearest non-retired bank in the same stack (banks first, then
     * channels, wrapping), then the nearest non-offlined row in it.
     * Returns `c` unchanged when it is healthy, and also when *every*
     * bank of the stack is retired (nowhere left to steer).
     */
    LineCoord route(const LineCoord &c) const;

    bool empty() const
    {
        return offlineRows_.empty() && retiredBanks_.empty() &&
               degradedChannels_.empty();
    }

    u64 offlinedRowCount() const { return offlineRows_.size(); }
    u64 retiredBankCount() const { return retiredBanks_.size(); }
    u64 degradedChannelCount() const { return degradedChannels_.size(); }

    /** Retired banks within one channel (ladder escalation input). */
    u32 retiredBanksIn(StackId stack, ChannelId channel) const;

    /** Offlined rows within one bank (page-cap escalation input). */
    u32 offlinedRowsIn(StackId stack, ChannelId channel,
                       BankId bank) const;

    /** Capacity lost, in cache lines (regions counted once: offlined
     *  rows inside retired banks, and retired banks inside degraded
     *  channels, do not double-count). */
    u64 retiredLines() const;

    /** Usable fraction of total capacity remaining, in [0, 1]. */
    double capacityFraction() const;

    void clear();

    void serialize(ByteSink &sink) const;
    void deserialize(ByteSource &src);

  private:
    StackGeometry geom_;

    // Ordered sets so iteration (serialization, fingerprints) is
    // deterministic. Keys pack (stack, channel, bank[, row]) with
    // byte-aligned fields; counts are small (ladder actions, not
    // per-line state).
    std::set<u64> offlineRows_;
    std::set<u64> retiredBanks_;
    std::set<u64> degradedChannels_;

    u64 rowKey(StackId s, ChannelId c, BankId b, RowId r) const;
    u64 bankKey(StackId s, ChannelId c, BankId b) const;
    u64 chanKey(StackId s, ChannelId c) const;
};

} // namespace citadel

#endif // CITADEL_SIM_RETIREMENT_H
