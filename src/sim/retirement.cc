#include "sim/retirement.h"

#include "common/log.h"

namespace citadel {

RetirementMap::RetirementMap(const StackGeometry &geom) : geom_(geom)
{
    geom_.validate();
}

u64
RetirementMap::rowKey(StackId s, ChannelId c, BankId b, RowId r) const
{
    return (static_cast<u64>(s.value()) << 48) |
           (static_cast<u64>(c.value()) << 40) |
           (static_cast<u64>(b.value()) << 32) | r.value();
}

u64
RetirementMap::bankKey(StackId s, ChannelId c, BankId b) const
{
    return (static_cast<u64>(s.value()) << 16) |
           (static_cast<u64>(c.value()) << 8) | b.value();
}

u64
RetirementMap::chanKey(StackId s, ChannelId c) const
{
    return (static_cast<u64>(s.value()) << 8) | c.value();
}

bool
RetirementMap::offlineRow(StackId stack, ChannelId channel, BankId bank,
                          RowId row)
{
    return offlineRows_.insert(rowKey(stack, channel, bank, row)).second;
}

bool
RetirementMap::retireBank(StackId stack, ChannelId channel, BankId bank)
{
    return retiredBanks_.insert(bankKey(stack, channel, bank)).second;
}

bool
RetirementMap::degradeChannel(StackId stack, ChannelId channel)
{
    return degradedChannels_.insert(chanKey(stack, channel)).second;
}

bool
RetirementMap::rowOffline(StackId stack, ChannelId channel, BankId bank,
                          RowId row) const
{
    return offlineRows_.count(rowKey(stack, channel, bank, row)) != 0;
}

bool
RetirementMap::bankRetired(StackId stack, ChannelId channel,
                           BankId bank) const
{
    return retiredBanks_.count(bankKey(stack, channel, bank)) != 0;
}

bool
RetirementMap::channelDegraded(StackId stack, ChannelId channel) const
{
    return degradedChannels_.count(chanKey(stack, channel)) != 0;
}

bool
RetirementMap::retired(const LineCoord &c) const
{
    return channelDegraded(c.stack, c.channel) ||
           bankRetired(c.stack, c.channel, c.bank) ||
           rowOffline(c.stack, c.channel, c.bank, c.row);
}

LineCoord
RetirementMap::route(const LineCoord &c) const
{
    if (!retired(c))
        return c;

    LineCoord r = c;
    const u32 banksPerStack = geom_.banksPerStack();
    const u32 flat =
        c.channel.value() * geom_.banksPerChannel + c.bank.value();

    // Nearest healthy bank in the same stack: same channel's banks
    // first, then wrap through the other channels.
    if (channelDegraded(r.stack, r.channel) ||
        bankRetired(r.stack, r.channel, r.bank)) {
        bool found = false;
        for (u32 k = 1; k < banksPerStack; ++k) {
            const u32 cand = (flat + k) % banksPerStack;
            const ChannelId ch{cand / geom_.banksPerChannel};
            const BankId bk{cand % geom_.banksPerChannel};
            if (channelDegraded(r.stack, ch) ||
                bankRetired(r.stack, ch, bk))
                continue;
            r.channel = ch;
            r.bank = bk;
            found = true;
            break;
        }
        if (!found)
            return c; // Every bank retired: nowhere left to steer.
    }

    // Nearest non-offlined row in the chosen bank.
    if (rowOffline(r.stack, r.channel, r.bank, r.row)) {
        for (u32 k = 1; k < geom_.rowsPerBank; ++k) {
            const RowId cand{(r.row.value() + k) % geom_.rowsPerBank};
            if (!rowOffline(r.stack, r.channel, r.bank, cand)) {
                r.row = cand;
                break;
            }
        }
    }
    return r;
}

u32
RetirementMap::retiredBanksIn(StackId stack, ChannelId channel) const
{
    u32 n = 0;
    for (u32 b = 0; b < geom_.banksPerChannel; ++b)
        n += bankRetired(stack, channel, BankId{b});
    return n;
}

u32
RetirementMap::offlinedRowsIn(StackId stack, ChannelId channel,
                              BankId bank) const
{
    const u64 lo = rowKey(stack, channel, bank, RowId{0});
    const u64 hi = lo + geom_.rowsPerBank;
    u32 n = 0;
    for (auto it = offlineRows_.lower_bound(lo);
         it != offlineRows_.end() && *it < hi; ++it)
        ++n;
    return n;
}

u64
RetirementMap::retiredLines() const
{
    u64 lines = 0;
    for (u64 key : degradedChannels_) {
        (void)key;
        lines += geom_.linesPerBank() * geom_.banksPerChannel;
    }
    for (u64 key : retiredBanks_) {
        const StackId s{static_cast<u32>(key >> 16)};
        const ChannelId c{static_cast<u32>((key >> 8) & 0xFF)};
        if (!channelDegraded(s, c))
            lines += geom_.linesPerBank();
    }
    for (u64 key : offlineRows_) {
        const StackId s{static_cast<u32>(key >> 48)};
        const ChannelId c{static_cast<u32>((key >> 40) & 0xFF)};
        const BankId b{static_cast<u32>((key >> 32) & 0xFF)};
        if (!channelDegraded(s, c) && !bankRetired(s, c, b))
            lines += geom_.linesPerRow();
    }
    return lines;
}

double
RetirementMap::capacityFraction() const
{
    const u64 total = geom_.totalLines();
    const u64 lost = retiredLines();
    return total == 0 ? 0.0
                      : static_cast<double>(total - lost) /
                            static_cast<double>(total);
}

void
RetirementMap::clear()
{
    offlineRows_.clear();
    retiredBanks_.clear();
    degradedChannels_.clear();
}

void
RetirementMap::serialize(ByteSink &sink) const
{
    sink.putU64(offlineRows_.size());
    for (u64 k : offlineRows_)
        sink.putU64(k);
    sink.putU64(retiredBanks_.size());
    for (u64 k : retiredBanks_)
        sink.putU64(k);
    sink.putU64(degradedChannels_.size());
    for (u64 k : degradedChannels_)
        sink.putU64(k);
}

void
RetirementMap::deserialize(ByteSource &src)
{
    clear();
    u64 n = src.getCount(sizeof(u64));
    for (u64 i = 0; i < n; ++i)
        offlineRows_.insert(src.getU64());
    n = src.getCount(sizeof(u64));
    for (u64 i = 0; i < n; ++i)
        retiredBanks_.insert(src.getU64());
    n = src.getCount(sizeof(u64));
    for (u64 i = 0; i < n; ++i)
        degradedChannels_.insert(src.getU64());
}

} // namespace citadel
