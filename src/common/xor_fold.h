/**
 * @file
 * XOR accumulation kernels: the single hot byte-level operation of the
 * bit-true parity engine (every D1/D2/D3 build, rebuild, and
 * demand-time correction is a chain of line-sized XOR folds).
 *
 * Two implementation families, selected at runtime via
 * common/kernels.h (DESIGN.md section 14):
 *
 *  - scalar: u64 chunks through memcpy (alignment- and
 *    strict-aliasing-safe), byte tail. This is the proof baseline the
 *    tests pin everything else against.
 *  - vector: 32-byte lanes via the portable GCC/Clang vector extension
 *    (`__attribute__((vector_size(32)))`), also loaded/stored through
 *    memcpy. The compiler lowers the lane XOR to AVX/NEON/SSE where
 *    available and to plain word ops elsewhere, so the path is
 *    portable and byte-exact by construction (XOR has no carries,
 *    rounding, or lane interaction).
 *
 * xorFoldN folds k source lines into dst in ONE pass over dst —
 * group-read correction previously re-walked the destination line k
 * times; the multi-source variant keeps the accumulator in registers
 * and touches memory n + k*n bytes instead of 2*k*n.
 */

#ifndef CITADEL_COMMON_XOR_FOLD_H
#define CITADEL_COMMON_XOR_FOLD_H

#include <cstddef>
#include <cstring>

#include "common/kernels.h"
#include "common/types.h"

namespace citadel {

/** Scalar proof baseline: dst[i] ^= src[i] for i in [0, n). */
inline void
xorFoldScalar(u8 *dst, const u8 *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + sizeof(u64) <= n; i += sizeof(u64)) {
        u64 a;
        u64 b;
        std::memcpy(&a, dst + i, sizeof(u64));
        std::memcpy(&b, src + i, sizeof(u64));
        a ^= b;
        std::memcpy(dst + i, &a, sizeof(u64));
    }
    for (; i < n; ++i)
        dst[i] ^= src[i];
}

/** Scalar proof baseline for the multi-source fold: equivalent to
 *  xorFoldScalar(dst, srcs[j], n) for j in [0, k) — the definition the
 *  property tests hold every other variant to. */
inline void
xorFoldNScalar(u8 *dst, const u8 *const *srcs, std::size_t k,
               std::size_t n)
{
    std::size_t i = 0;
    for (; i + sizeof(u64) <= n; i += sizeof(u64)) {
        u64 a;
        std::memcpy(&a, dst + i, sizeof(u64));
        for (std::size_t j = 0; j < k; ++j) {
            u64 b;
            std::memcpy(&b, srcs[j] + i, sizeof(u64));
            a ^= b;
        }
        std::memcpy(dst + i, &a, sizeof(u64));
    }
    for (; i < n; ++i) {
        u8 a = dst[i];
        for (std::size_t j = 0; j < k; ++j)
            a ^= srcs[j][i];
        dst[i] = a;
    }
}

namespace detail {

/** 32 bytes of XOR-able lanes; GCC/Clang synthesize wider-than-native
 *  operations from narrower ones, so this is legal on every target.
 *  XorVec values never cross a function-call boundary — loads/stores
 *  are written inline via memcpy — so the type imposes no vector ABI
 *  (GCC's -Wpsabi warning about 32-byte parameters never applies). */
typedef u8 XorVec __attribute__((vector_size(32)));

} // namespace detail

/** Wide-vector fold; byte-identical to xorFoldScalar on all inputs. */
inline void
xorFoldVector(u8 *dst, const u8 *src, std::size_t n)
{
    using detail::XorVec;
    std::size_t i = 0;
    for (; i + 2 * sizeof(XorVec) <= n; i += 2 * sizeof(XorVec)) {
        XorVec a0;
        XorVec a1;
        XorVec b0;
        XorVec b1;
        std::memcpy(&a0, dst + i, sizeof(XorVec));
        std::memcpy(&a1, dst + i + sizeof(XorVec), sizeof(XorVec));
        std::memcpy(&b0, src + i, sizeof(XorVec));
        std::memcpy(&b1, src + i + sizeof(XorVec), sizeof(XorVec));
        a0 ^= b0;
        a1 ^= b1;
        std::memcpy(dst + i, &a0, sizeof(XorVec));
        std::memcpy(dst + i + sizeof(XorVec), &a1, sizeof(XorVec));
    }
    for (; i + sizeof(XorVec) <= n; i += sizeof(XorVec)) {
        XorVec a;
        XorVec b;
        std::memcpy(&a, dst + i, sizeof(XorVec));
        std::memcpy(&b, src + i, sizeof(XorVec));
        a ^= b;
        std::memcpy(dst + i, &a, sizeof(XorVec));
    }
    xorFoldScalar(dst + i, src + i, n - i);
}

/** Wide-vector multi-source fold; the accumulator lane stays in
 *  registers across all k sources, so dst is read and written once. */
inline void
xorFoldNVector(u8 *dst, const u8 *const *srcs, std::size_t k,
               std::size_t n)
{
    using detail::XorVec;
    std::size_t i = 0;
    for (; i + sizeof(XorVec) <= n; i += sizeof(XorVec)) {
        XorVec a;
        std::memcpy(&a, dst + i, sizeof(XorVec));
        for (std::size_t j = 0; j < k; ++j) {
            XorVec b;
            std::memcpy(&b, srcs[j] + i, sizeof(XorVec));
            a ^= b;
        }
        std::memcpy(dst + i, &a, sizeof(XorVec));
    }
    if (i < n) {
        u8 *tail = dst + i;
        const std::size_t rem = n - i;
        for (std::size_t b = 0; b < rem; ++b) {
            u8 a = tail[b];
            for (std::size_t j = 0; j < k; ++j)
                a ^= srcs[j][i + b];
            tail[b] = a;
        }
    }
}

/** dst[i] ^= src[i] for i in [0, n); dispatched. Ranges must not
 *  overlap. */
inline void
xorFold(u8 *dst, const u8 *src, std::size_t n)
{
    xorKernelOps().fold(dst, src, n);
}

/** Fold all k lines in srcs into dst in one pass; dispatched. Sources
 *  must not overlap dst (sources may alias each other — each is read
 *  only). */
inline void
xorFoldN(u8 *dst, const u8 *const *srcs, std::size_t k, std::size_t n)
{
    xorKernelOps().foldN(dst, srcs, k, n);
}

} // namespace citadel

#endif // CITADEL_COMMON_XOR_FOLD_H
