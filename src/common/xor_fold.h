/**
 * @file
 * Word-wide XOR accumulation: the single hot kernel of the bit-true
 * parity engine (every D1/D2/D3 build, rebuild, and demand-time
 * correction is a chain of line-sized XOR folds). Processes u64 chunks
 * through memcpy so it is alignment- and strict-aliasing-safe, with a
 * byte tail for residues; tests pin it against a byte-loop oracle.
 */

#ifndef CITADEL_COMMON_XOR_FOLD_H
#define CITADEL_COMMON_XOR_FOLD_H

#include <cstddef>
#include <cstring>

#include "common/types.h"

namespace citadel {

/** dst[i] ^= src[i] for i in [0, n). Ranges must not overlap. */
inline void
xorFold(u8 *dst, const u8 *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + sizeof(u64) <= n; i += sizeof(u64)) {
        u64 a;
        u64 b;
        std::memcpy(&a, dst + i, sizeof(u64));
        std::memcpy(&b, src + i, sizeof(u64));
        a ^= b;
        std::memcpy(dst + i, &a, sizeof(u64));
    }
    for (; i < n; ++i)
        dst[i] ^= src[i];
}

} // namespace citadel

#endif // CITADEL_COMMON_XOR_FOLD_H
