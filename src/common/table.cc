#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/log.h"

namespace citadel {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("Table row arity %zu != header arity %zu",
              cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    const double a = std::fabs(v);
    if (v != 0.0 && (a < 1e-3 || a >= 1e7))
        std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    else
        std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::prob(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3e", v);
    return buf;
}

std::string
Table::pct(double fraction)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
    return buf;
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n' << "== " << title << " ==" << '\n';
}

} // namespace citadel
