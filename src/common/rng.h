/**
 * @file
 * Deterministic pseudo-random number generation and the samplers the
 * Monte Carlo fault engine needs (uniform, exponential, Poisson,
 * geometric and discrete distributions).
 *
 * We use xoshiro256** rather than std::mt19937_64: it is ~4x faster,
 * has a tiny state, and gives us bit-for-bit reproducible streams across
 * standard-library implementations, which matters because every benchmark
 * in bench/ reports seeded, reproducible numbers.
 */

#ifndef CITADEL_COMMON_RNG_H
#define CITADEL_COMMON_RNG_H

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace citadel {

/**
 * splitmix64 finalizer: the stateless counter-hash every deterministic
 * subsystem derives per-item randomness from (soak probe addresses,
 * fleet request routing, chaos coin flips). Bit-stable across
 * platforms; hashing a counter with a subsystem-specific salt yields a
 * stream that is independent of execution order and thread count.
 */
constexpr u64
mix64(u64 x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/**
 * xoshiro256** generator (Blackman & Vigna). Seeded through splitmix64 so
 * that any 64-bit seed, including 0, produces a well-mixed state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; all state derived via splitmix64. */
    explicit Rng(u64 seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64 random bits. */
    u64 next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n) for n > 0, without modulo bias. */
    u64 below(u64 n);

    /** Uniform integer in [lo, hi] inclusive. */
    u64 inRange(u64 lo, u64 hi);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Exponential variate with the given rate (mean 1/rate). */
    double exponential(double rate);

    /**
     * Poisson variate with mean lambda. Uses Knuth multiplication for
     * small lambda and a normal approximation w/ rejection touch-up for
     * large lambda; fault rates in this codebase keep lambda << 10, so
     * the small-lambda path dominates.
     */
    u64 poisson(double lambda);

    /**
     * Small-lambda Poisson draw from a precomputed limit =
     * exp(-lambda), for 0 < lambda < 30: draw-for-draw identical to
     * poisson(lambda) on its Knuth path (poisson() itself delegates
     * here), so hot samplers can hoist the std::exp out of their
     * per-trial loop without perturbing the stream. Caller guarantees
     * the lambda range; limit must be exp(-lambda) exactly.
     */
    u64 poissonKnuth(double exp_neg_lambda);

    /**
     * Sample an index from an unnormalized weight vector.
     * @param weights Non-negative weights; at least one must be positive.
     */
    std::size_t discrete(const std::vector<double> &weights);

    /** Split off an independently seeded child stream. */
    Rng split();

    /**
     * The full 256-bit generator state, for checkpointing: a stream
     * restored via restoreState() continues bit-identically from the
     * saved point.
     */
    std::array<u64, 4> saveState() const;

    /** Resume from a saveState() snapshot. */
    void restoreState(const std::array<u64, 4> &state);

  private:
    u64 s_[4];

    static u64 splitmix64(u64 &x);
    static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
};

/**
 * Precomputed Zipf(theta) CDF over ranks [0, n): the skewed key
 * popularity the fleet traffic model replays (theta ~0.99 matches the
 * YCSB-style hot-key skew; theta = 0 is exactly uniform and takes a
 * CDF-free fast path). Sampling maps a unit double — derived from a
 * counter hash, never from generator state — through a binary search
 * of the CDF, so it composes with the fleet's order-independent
 * determinism: rank(u) is a pure function.
 */
class ZipfCdf
{
  public:
    /** Build the CDF for `n` ranks with exponent `theta` >= 0. */
    ZipfCdf(u64 n, double theta);

    /** Rank for a unit sample u in [0, 1): lower ranks are hotter. */
    u64 rank(double u) const;

    u64 size() const { return n_; }
    double theta() const { return theta_; }

  private:
    u64 n_;
    double theta_;
    std::vector<double> cdf_; ///< Empty when theta == 0 (uniform).
};

} // namespace citadel

#endif // CITADEL_COMMON_RNG_H
