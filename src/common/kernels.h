/**
 * @file
 * Runtime kernel dispatch (DESIGN.md section 14). The three byte-level
 * hot kernels (xorFold, xorFoldN, CRC-32 bulk update) each have a
 * scalar proof implementation and one or more wide implementations
 * (GCC/Clang vector extensions, PCLMULQDQ, ARMv8 CRC). Every variant
 * is value-pure over the same bytes — a pure function of its input
 * buffer — so which one runs can never change a seeded result; the
 * dispatch layer here only picks the fastest available one.
 *
 * Selection happens once at startup from the CITADEL_KERNEL env knob
 * (scalar | vector | auto; invalid text is rejected to auto with a
 * warning) plus a CPU capability probe, into plain function pointers.
 * Tests force specific paths via setKernelMode(); consumers that cache
 * a resolved pointer revalidate against kernelModeEpoch(), so a forced
 * switch takes effect on the next call.
 */

#ifndef CITADEL_COMMON_KERNELS_H
#define CITADEL_COMMON_KERNELS_H

#include <cstddef>
#include <optional>
#include <string_view>

#include "common/types.h"

namespace citadel {

/** Which implementation family the dispatched kernels use. */
enum class KernelMode
{
    Scalar, ///< Force the scalar proof baselines (u64 xorFold, slice8 CRC).
    Vector, ///< Force the wide paths (vector xorFold; hw CRC if present).
    Auto,   ///< Best available: vector xorFold, hw CRC when the CPU has it.
};

/** Display name ("scalar" / "vector" / "auto"). */
const char *kernelModeName(KernelMode mode);

/**
 * Parse a CITADEL_KERNEL value. Exact lowercase spellings only;
 * anything else is std::nullopt (the env reader warns and falls back
 * to Auto — see test_env.cc rejection tests).
 */
std::optional<KernelMode> parseKernelMode(std::string_view text);

/** Mode requested by CITADEL_KERNEL (invalid/unset resolves to Auto). */
KernelMode requestedKernelMode();

/** Currently active mode (startup: requestedKernelMode()). */
KernelMode activeKernelMode();

/**
 * Force a dispatch mode at runtime. Test hook for the kernel
 * equivalence suites; call from a single thread with no concurrent
 * kernel users (kernels themselves stay value-pure, so even a racy
 * switch could only change speed, never bytes).
 */
void setKernelMode(KernelMode mode);

/**
 * Bumped by every setKernelMode() call. Consumers caching a resolved
 * function pointer compare this before use and re-resolve on change.
 */
u64 kernelModeEpoch();

/** dst[i] ^= src[i] over [0, n); signature of every xorFold variant. */
using XorFoldFn = void (*)(u8 *dst, const u8 *src, std::size_t n);

/** Fold k source lines into dst in one pass; xorFoldN variants. */
using XorFoldNFn = void (*)(u8 *dst, const u8 *const *srcs, std::size_t k,
                            std::size_t n);

/** Resolved XOR kernel entry points for the active mode. */
struct XorKernelOps
{
    XorFoldFn fold;
    XorFoldNFn foldN;
    const char *path; ///< "scalar-u64" or "vector32", for bench reporting.
};

/** Active XOR kernels; revalidated against kernelModeEpoch() per call. */
const XorKernelOps &xorKernelOps();

} // namespace citadel

#endif // CITADEL_COMMON_KERNELS_H
