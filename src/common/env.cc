#include "common/env.h"

#include <cstdlib>
#include <string>

#include "common/log.h"

namespace citadel {

u64
envU64(const char *name, u64 fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0') {
        warn("env: %s='%s' is not a valid unsigned integer; using %llu",
             name, v, static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return static_cast<u64>(parsed);
}

std::string
envString(const char *name, const char *fallback)
{
    const char *v = std::getenv(name);
    return (v && *v) ? std::string(v) : std::string(fallback);
}

double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0') {
        warn("env: %s='%s' is not a valid number; using %g", name, v,
             fallback);
        return fallback;
    }
    return parsed;
}

u64
envU64InRange(const char *name, u64 fallback, u64 lo, u64 hi)
{
    if (fallback < lo || fallback > hi)
        fatal("env: %s fallback %llu outside its own legal range "
              "[%llu, %llu]",
              name, static_cast<unsigned long long>(fallback),
              static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(hi));
    const u64 v = envU64(name, fallback);
    if (v < lo || v > hi) {
        warn("env: %s=%llu outside [%llu, %llu]; using %llu", name,
             static_cast<unsigned long long>(v),
             static_cast<unsigned long long>(lo),
             static_cast<unsigned long long>(hi),
             static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return v;
}

double
envDoubleInRange(const char *name, double fallback, double lo, double hi)
{
    if (!(fallback >= lo && fallback <= hi))
        fatal("env: %s fallback %g outside its own legal range [%g, %g]",
              name, fallback, lo, hi);
    const double v = envDouble(name, fallback);
    // Negated comparison also rejects NaN.
    if (!(v >= lo && v <= hi)) {
        warn("env: %s=%g outside [%g, %g]; using %g", name, v, lo, hi,
             fallback);
        return fallback;
    }
    return v;
}

u64
benchTrials(u64 fallback)
{
    return envU64("CITADEL_TRIALS", fallback);
}

u64
benchInsns(u64 fallback)
{
    return envU64("CITADEL_INSNS", fallback);
}

} // namespace citadel
