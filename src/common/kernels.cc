#include "common/kernels.h"

#include <atomic>

#include "common/env.h"
#include "common/log.h"
#include "common/xor_fold.h"

namespace citadel {

namespace {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

/**
 * Same portable vector-extension bodies, recompiled with AVX2 codegen:
 * without -mavx2 the 32-byte XorVec is emulated as two SSE2 halves,
 * which GCC's auto-vectorized u64 loop already matches; compiling the
 * identical source under target("avx2") lowers each lane to one
 * vpxor/vmovdqu and roughly doubles L1-resident throughput. Selected
 * at runtime via __builtin_cpu_supports — same bytes in, same bytes
 * out, only the instruction encoding differs.
 */
__attribute__((target("avx2"))) void
xorFoldVectorAvx2(u8 *dst, const u8 *src, std::size_t n)
{
    xorFoldVector(dst, src, n);
}

__attribute__((target("avx2"))) void
xorFoldNVectorAvx2(u8 *dst, const u8 *const *srcs, std::size_t k,
                   std::size_t n)
{
    xorFoldNVector(dst, srcs, k, n);
}

bool
haveAvx2()
{
    static const bool avail = __builtin_cpu_supports("avx2") != 0;
    return avail;
}

#else

bool
haveAvx2()
{
    return false;
}

#endif

std::atomic<u64> gEpoch{0};

KernelMode &
modeStorage()
{
    static KernelMode mode = requestedKernelMode();
    return mode;
}

} // namespace

const char *
kernelModeName(KernelMode mode)
{
    switch (mode) {
    case KernelMode::Scalar: return "scalar";
    case KernelMode::Vector: return "vector";
    case KernelMode::Auto: return "auto";
    }
    panic("unreachable KernelMode %d", static_cast<int>(mode));
}

std::optional<KernelMode>
parseKernelMode(std::string_view text)
{
    if (text == "scalar")
        return KernelMode::Scalar;
    if (text == "vector")
        return KernelMode::Vector;
    if (text == "auto")
        return KernelMode::Auto;
    return std::nullopt;
}

KernelMode
requestedKernelMode()
{
    const std::string text = envString("CITADEL_KERNEL", "auto");
    if (auto mode = parseKernelMode(text))
        return *mode;
    warn("CITADEL_KERNEL=%s invalid (want scalar|vector|auto); "
         "using auto",
         text.c_str());
    return KernelMode::Auto;
}

KernelMode
activeKernelMode()
{
    return modeStorage();
}

void
setKernelMode(KernelMode mode)
{
    modeStorage() = mode;
    gEpoch.fetch_add(1, std::memory_order_release);
}

u64
kernelModeEpoch()
{
    return gEpoch.load(std::memory_order_acquire);
}

const XorKernelOps &
xorKernelOps()
{
    static constexpr XorKernelOps kScalar{&xorFoldScalar, &xorFoldNScalar,
                                          "scalar-u64"};
    static constexpr XorKernelOps kVector{&xorFoldVector, &xorFoldNVector,
                                          "vector32"};
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    static constexpr XorKernelOps kVectorAvx2{
        &xorFoldVectorAvx2, &xorFoldNVectorAvx2, "vector32-avx2"};
#else
    static constexpr const XorKernelOps &kVectorAvx2 = kVector;
#endif
    // Vector and Auto both prefer the widest safe lowering: the AVX2
    // recompile where the CPU has it, otherwise the portable vector
    // extension (which degrades to plain word ops on SIMD-less
    // targets, so it is never worse than the scalar proof).
    // The cache is thread_local so MC workers re-resolve without racing.
    thread_local const XorKernelOps *resolved = nullptr;
    thread_local u64 resolvedEpoch = ~u64{0};
    const u64 epoch = kernelModeEpoch();
    if (resolved == nullptr || resolvedEpoch != epoch) {
        if (activeKernelMode() == KernelMode::Scalar)
            resolved = &kScalar;
        else
            resolved = haveAvx2() ? &kVectorAvx2 : &kVector;
        resolvedEpoch = epoch;
    }
    return *resolved;
}

} // namespace citadel
