/**
 * @file
 * Reusable std::thread worker pool for the embarrassingly parallel
 * loops in this codebase (Monte Carlo trial fan-out first of all).
 *
 * Design constraints, in order:
 *
 *  1. Determinism lives with the caller. The pool only distributes
 *     index ranges; any work whose result must be bit-identical across
 *     thread counts has to derive its randomness from the index (the
 *     Monte Carlo engine's counter-derived per-trial seeds) and merge
 *     shards with an associative, order-independent reduce.
 *  2. No global state. A pool is an ordinary object; the Monte Carlo
 *     engine constructs one per run (thread startup is microseconds
 *     against the seconds a 100K-trial sweep takes).
 *  3. Workers never throw across the pool boundary: jobs are expected
 *     to report failure through their own shard state. An escaping
 *     exception terminates, which is the right behavior for panic()-
 *     style invariant violations.
 */

#ifndef CITADEL_COMMON_THREAD_POOL_H
#define CITADEL_COMMON_THREAD_POOL_H

#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/types.h"

namespace citadel {

/**
 * Worker threads resolved from the environment: CITADEL_THREADS if set
 * (1 selects the legacy single-threaded path everywhere), otherwise
 * std::thread::hardware_concurrency() (minimum 1).
 */
unsigned citadelThreads();

/** Fixed-size pool of worker threads with a blocking fork/join API. */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 resolves via citadelThreads(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads in the pool. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Run `fn(worker_index)` once on every worker concurrently and
     * block until all have returned. The per-worker index is stable
     * ([0, size())), so callers can give each worker its own shard.
     * May be called repeatedly; calls do not overlap.
     */
    void runOnWorkers(const std::function<void(unsigned)> &fn);

    /**
     * Dynamically chunked parallel loop over [0, items): workers grab
     * chunks of at least `min_chunk` indices from a shared counter and
     * call `fn(begin, end, worker_index)` per chunk. Blocks until the
     * whole range is processed. Chunk-to-worker assignment is
     * nondeterministic; results must be merged order-independently.
     */
    void parallelFor(u64 items, u64 min_chunk,
                     const std::function<void(u64, u64, unsigned)> &fn);

  private:
    void workerLoop(unsigned index);

    std::vector<std::thread> workers_;

    /** Guards the job-handoff state below (DESIGN.md section 13: the
     *  only lock in the codebase; everything else shares by phase
     *  discipline or disjoint per-worker slots). */
    Mutex mutex_;
    CondVar wake_;
    CondVar done_;
    const std::function<void(unsigned)> *job_
        CITADEL_GUARDED_BY(mutex_) = nullptr;
    /** Bumped per runOnWorkers call. */
    u64 generation_ CITADEL_GUARDED_BY(mutex_) = 0;
    /** Workers still running the current job. */
    unsigned pending_ CITADEL_GUARDED_BY(mutex_) = 0;
    bool stop_ CITADEL_GUARDED_BY(mutex_) = false;
};

} // namespace citadel

#endif // CITADEL_COMMON_THREAD_POOL_H
