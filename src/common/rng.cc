#include "common/rng.h"

#include <cassert>
#include <stdexcept>

namespace citadel {

u64
Rng::splitmix64(u64 &x)
{
    x += 0x9E3779B97F4A7C15ull;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

Rng::Rng(u64 seed)
{
    u64 x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

u64
Rng::next()
{
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1); 53 bits fit a double exactly.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

u64
Rng::below(u64 n)
{
    assert(n > 0);
    // Lemire-style rejection to avoid modulo bias.
    u64 x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    u64 l = static_cast<u64>(m);
    if (l < n) {
        u64 t = -n % n;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            l = static_cast<u64>(m);
        }
    }
    return static_cast<u64>(m >> 64);
}

u64
Rng::inRange(u64 lo, u64 hi)
{
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double rate)
{
    assert(rate > 0.0);
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - uniform()) / rate;
}

u64
Rng::poisson(double lambda)
{
    assert(lambda >= 0.0);
    if (lambda == 0.0)
        return 0;
    if (lambda < 30.0)
        return poissonKnuth(std::exp(-lambda));
    // Normal approximation with continuity correction; adequate for the
    // rare large-lambda cases (e.g., stress tests), clamped at zero.
    const double mu = lambda;
    const double sigma = std::sqrt(lambda);
    // Box-Muller.
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    double v = mu + sigma * z + 0.5;
    return v <= 0.0 ? 0 : static_cast<u64>(v);
}

u64
Rng::poissonKnuth(double exp_neg_lambda)
{
    // Knuth: multiply uniforms until the product drops below e^-lambda.
    u64 k = 0;
    double p = 1.0;
    do {
        ++k;
        p *= uniform();
    } while (p > exp_neg_lambda);
    return k - 1;
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        assert(w >= 0.0);
        total += w;
    }
    if (total <= 0.0)
        throw std::invalid_argument("discrete(): all weights are zero");
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xD2B74407B1CE6E93ull);
}

std::array<u64, 4>
Rng::saveState() const
{
    return {s_[0], s_[1], s_[2], s_[3]};
}

void
Rng::restoreState(const std::array<u64, 4> &state)
{
    for (std::size_t i = 0; i < 4; ++i)
        s_[i] = state[i];
}

ZipfCdf::ZipfCdf(u64 n, double theta) : n_(n), theta_(theta)
{
    if (n == 0)
        throw std::invalid_argument("ZipfCdf: n must be positive");
    if (!(theta >= 0.0))
        throw std::invalid_argument("ZipfCdf: theta must be >= 0");
    if (theta == 0.0)
        return; // uniform fast path, no table
    cdf_.resize(n);
    double total = 0.0;
    for (u64 r = 0; r < n; ++r) {
        total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
        cdf_[r] = total;
    }
    for (u64 r = 0; r < n; ++r)
        cdf_[r] /= total;
    cdf_[n - 1] = 1.0; // guard against rounding shortfall
}

u64
ZipfCdf::rank(double u) const
{
    assert(u >= 0.0 && u < 1.0);
    if (cdf_.empty()) {
        const u64 r = static_cast<u64>(u * static_cast<double>(n_));
        return r < n_ ? r : n_ - 1;
    }
    // First rank whose CDF exceeds u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (cdf_[mid] > u)
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

} // namespace citadel
