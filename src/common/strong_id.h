/**
 * @file
 * Typed address domain: zero-cost strong integer wrappers for the many
 * coordinate spaces of the stacked-memory system.
 *
 * The paper's algorithms juggle at least ten integer spaces — stack,
 * channel, die, bank, row, column-slot, flattened (die, bank) unit,
 * linear line address, Dimension-1 parity group, TSV lane — and a
 * swapped argument between any two of them compiles silently as plain
 * u32/u64 and only (maybe) surfaces as a Monte Carlo anomaly.
 * StrongId<Tag, T> makes every such mix-up a compile error:
 *
 *  - construction from a raw integer is explicit;
 *  - there is no conversion between ids with different tags, and no
 *    implicit conversion back to the underlying integer;
 *  - comparison, hashing and streaming work per tag, so ids can key
 *    maps/sets and print in diagnostics;
 *  - idx()/at() are the audited escape hatches: idx() yields the raw
 *    value as std::size_t for container subscripting, at() adds a
 *    bounds check. Both count as "unwrapping" for the index-safety
 *    lint (tools/lint_index_safety.py), which confines unwrap sites
 *    to the blessed mapper/mechanism files listed in DESIGN.md §8.
 *
 * The one sanctioned cross-space identity — HBM-style "channel doubles
 * as die index" (geometry.h) — is spelled dieOf()/channelOf() so the
 * conversion is grep-able instead of a silent copy.
 */

#ifndef CITADEL_COMMON_STRONG_ID_H
#define CITADEL_COMMON_STRONG_ID_H

#include <cstddef>
#include <functional>
#include <ostream>
#include <type_traits>

#include "common/types.h"

namespace citadel {

/**
 * A tagged integer. Tag is an empty struct naming the coordinate
 * space; T is the underlying unsigned representation.
 */
template <class Tag, class T>
class StrongId final
{
    static_assert(std::is_unsigned_v<T>,
                  "coordinate spaces are unsigned integer domains");

  public:
    using tag_type = Tag;
    using value_type = T;

    constexpr StrongId() = default;
    constexpr explicit StrongId(T v) : v_(v) {}

    /** The raw coordinate. Unwrap sites are policed by the lint. */
    constexpr T value() const { return v_; }

    /** Raw value widened for container subscripting (unwrap). */
    constexpr std::size_t idx() const
    {
        return static_cast<std::size_t>(v_);
    }

    constexpr auto operator<=>(const StrongId &) const = default;

    /** Step to the next coordinate of the same space. */
    constexpr StrongId &operator++()
    {
        ++v_;
        return *this;
    }

  private:
    T v_ = 0;
};

template <class Tag, class T>
std::ostream &
operator<<(std::ostream &os, StrongId<Tag, T> id)
{
    return os << +id.value();
}

/**
 * Bounds-checked typed subscript: container[id] with the id's space as
 * the index domain. Out-of-range access is a hard error in every build
 * type (the containers indexed this way — bank arrays, remap tables,
 * per-stack engines — are small, so the check is free in practice).
 */
template <class Container, class Tag, class T>
constexpr decltype(auto)
at(Container &c, StrongId<Tag, T> id)
{
    return c.at(id.idx());
}

// --- The coordinate-space taxonomy (PAPER.md address mapping) -------

struct StackTag;       ///< 3D stack within the system.
struct ChannelTag;     ///< Channel within a stack (HBM: one per die).
struct DieTag;         ///< DRAM die; channelsPerStack is the ECC die.
struct BankTag;        ///< Bank within a channel/die.
struct RowTag;         ///< Row within a bank.
struct ColTag;         ///< 64B line slot within a row (CAS address).
struct UnitTag;        ///< Flattened (die, bank) unit within a stack.
struct LineTag;        ///< System-wide linear cache-line address.
struct ParityGroupTag; ///< Dimension-1 parity group / parity-store line.
struct TsvLaneTag;     ///< Physical TSV lane within a channel bundle.
struct MetaSlotTag;    ///< Entry/register slot within a control-plane
                       ///< structure (RRT/BRT entry, TSV redirection
                       ///< register, parity-cache way).

using StackId = StrongId<StackTag, u32>;
using ChannelId = StrongId<ChannelTag, u32>;
using DieId = StrongId<DieTag, u32>;
using BankId = StrongId<BankTag, u32>;
using RowId = StrongId<RowTag, u32>;
using ColId = StrongId<ColTag, u32>;
using UnitId = StrongId<UnitTag, u32>;
using LineAddr = StrongId<LineTag, u64>;
using ParityGroupId = StrongId<ParityGroupTag, u64>;
using TsvLane = StrongId<TsvLaneTag, u32>;
using MetaSlotId = StrongId<MetaSlotTag, u32>;

/**
 * The HBM identity (geometry.h): each channel is fully contained in
 * one DRAM die, so the channel index *is* the data-die index. The
 * ECC/metadata die has no channel; it is DieId{channelsPerStack}.
 */
constexpr DieId
dieOf(ChannelId ch)
{
    return DieId{ch.value()};
}

/** Inverse of dieOf() for data dies. Never call it on the ECC die. */
constexpr ChannelId
channelOf(DieId die)
{
    return ChannelId{die.value()};
}

} // namespace citadel

// Hashing, so typed ids can key unordered containers directly.
template <class Tag, class T>
struct std::hash<citadel::StrongId<Tag, T>>
{
    std::size_t operator()(citadel::StrongId<Tag, T> id) const noexcept
    {
        return std::hash<T>{}(id.value());
    }
};

#endif // CITADEL_COMMON_STRONG_ID_H
