/**
 * @file
 * Environment-variable helpers. Benches honor CITADEL_TRIALS and
 * CITADEL_INSNS so a user can trade runtime for accuracy without
 * recompiling (the paper uses 1e5-1e6 Monte Carlo trials).
 */

#ifndef CITADEL_COMMON_ENV_H
#define CITADEL_COMMON_ENV_H

#include <string>

#include "common/types.h"

namespace citadel {

/** Read an unsigned env var, returning fallback if unset/invalid. */
u64 envU64(const char *name, u64 fallback);

/** Read a string env var, returning fallback if unset/empty. */
std::string envString(const char *name, const char *fallback);

/** Read a double env var, returning fallback if unset/invalid. */
double envDouble(const char *name, double fallback);

/**
 * Range-validated unsigned env var: malformed text OR a value outside
 * [lo, hi] rejects the input with a warning and returns the fallback.
 * Every new knob (soak durations, checkpoint intervals, retry/backoff
 * caps) must state its legal range here rather than letting a typo'd
 * "1e9" scrub interval or a 0 backoff silently wedge a campaign.
 * The fallback itself must lie in [lo, hi]; violating that is fatal
 * (it is a programming error, not user input).
 */
u64 envU64InRange(const char *name, u64 fallback, u64 lo, u64 hi);

/** Range-validated double env var; same rejection rules, and
 *  non-finite values (nan/inf) are always rejected. */
double envDoubleInRange(const char *name, double fallback, double lo,
                        double hi);

/**
 * Monte Carlo trial count for bench binaries: CITADEL_TRIALS if set,
 * otherwise the supplied default.
 */
u64 benchTrials(u64 fallback);

/** Per-core instruction budget for timing benches (CITADEL_INSNS). */
u64 benchInsns(u64 fallback);

} // namespace citadel

#endif // CITADEL_COMMON_ENV_H
