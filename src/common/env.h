/**
 * @file
 * Environment-variable helpers. Benches honor CITADEL_TRIALS and
 * CITADEL_INSNS so a user can trade runtime for accuracy without
 * recompiling (the paper uses 1e5-1e6 Monte Carlo trials).
 */

#ifndef CITADEL_COMMON_ENV_H
#define CITADEL_COMMON_ENV_H

#include <string>

#include "common/types.h"

namespace citadel {

/** Read an unsigned env var, returning fallback if unset/invalid. */
u64 envU64(const char *name, u64 fallback);

/** Read a string env var, returning fallback if unset/empty. */
std::string envString(const char *name, const char *fallback);

/** Read a double env var, returning fallback if unset/invalid. */
double envDouble(const char *name, double fallback);

/**
 * Monte Carlo trial count for bench binaries: CITADEL_TRIALS if set,
 * otherwise the supplied default.
 */
u64 benchTrials(u64 fallback);

/** Per-core instruction budget for timing benches (CITADEL_INSNS). */
u64 benchInsns(u64 fallback);

} // namespace citadel

#endif // CITADEL_COMMON_ENV_H
