/**
 * @file
 * Minimal deterministic binary serialization for checkpoint/resume.
 *
 * The soak campaigns (src/ras/soak.h) periodically freeze the live RAS
 * datapath -- fault sets, remap tables, swap registers, poison state --
 * and must restore it bit-identically, so the encoding has to be
 * platform-stable: fixed-width little-endian integers, doubles as their
 * IEEE-754 bit pattern, explicit lengths on every container. No
 * varints, no endianness surprises, no implementation-defined layout.
 *
 * ByteSource treats every malformed read (truncation, overlong
 * container) as fatal: a checkpoint is either exactly right or useless,
 * and continuing from half-parsed RAS state would silently invalidate
 * the determinism proof the checkpoint exists to provide.
 */

#ifndef CITADEL_COMMON_SERIALIZE_H
#define CITADEL_COMMON_SERIALIZE_H

#include <bit>
#include <cstring>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace citadel {

/** Append-only little-endian byte stream. */
class ByteSink
{
  public:
    void putU8(u8 v) { bytes_.push_back(v); }

    void putU32(u32 v)
    {
        for (int i = 0; i < 4; ++i)
            bytes_.push_back(static_cast<u8>(v >> (8 * i)));
    }

    void putU64(u64 v)
    {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(static_cast<u8>(v >> (8 * i)));
    }

    void putBool(bool v) { putU8(v ? 1 : 0); }

    /** IEEE-754 bit pattern; bit-exact round trip. */
    void putDouble(double v) { putU64(std::bit_cast<u64>(v)); }

    const std::vector<u8> &bytes() const { return bytes_; }

  private:
    std::vector<u8> bytes_;
};

/** Sequential reader over a ByteSink's output; truncation is fatal. */
class ByteSource
{
  public:
    explicit ByteSource(const std::vector<u8> &bytes) : bytes_(bytes) {}

    u8 getU8()
    {
        need(1);
        return bytes_[pos_++];
    }

    u32 getU32()
    {
        need(4);
        u32 v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<u32>(bytes_[pos_++]) << (8 * i);
        return v;
    }

    u64 getU64()
    {
        need(8);
        u64 v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<u64>(bytes_[pos_++]) << (8 * i);
        return v;
    }

    bool getBool() { return getU8() != 0; }

    double getDouble() { return std::bit_cast<double>(getU64()); }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return bytes_.size() - pos_; }

    /**
     * Container length guard: a corrupt length field must fail here,
     * not as a multi-gigabyte allocation. Each element needs at least
     * `elem_bytes` bytes still in the stream.
     */
    u64 getCount(std::size_t elem_bytes)
    {
        const u64 n = getU64();
        if (elem_bytes != 0 && n > remaining() / elem_bytes)
            fatal("checkpoint: container count %llu exceeds remaining "
                  "%zu bytes",
                  static_cast<unsigned long long>(n), remaining());
        return n;
    }

  private:
    void need(std::size_t n) const
    {
        if (pos_ + n > bytes_.size())
            fatal("checkpoint: truncated stream (want %zu bytes at "
                  "offset %zu of %zu)",
                  n, pos_, bytes_.size());
    }

    const std::vector<u8> &bytes_;
    std::size_t pos_ = 0;
};

/** FNV-1a 64-bit, the checkpoint/stats fingerprint hash. */
inline u64
fnv1a(const u8 *data, std::size_t len, u64 seed = 0xCBF29CE484222325ull)
{
    u64 h = seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

inline u64
fnv1a(const std::vector<u8> &bytes, u64 seed = 0xCBF29CE484222325ull)
{
    return fnv1a(bytes.data(), bytes.size(), seed);
}

} // namespace citadel

#endif // CITADEL_COMMON_SERIALIZE_H
