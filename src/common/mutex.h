/**
 * @file
 * Annotated synchronization primitives (DESIGN.md section 13).
 *
 * libstdc++'s std::mutex carries no thread-safety attributes, so Clang
 * Thread Safety Analysis cannot see through std::lock_guard /
 * std::unique_lock. These thin wrappers restore visibility:
 *
 *  - Mutex / MutexLock / CondVar: a std::mutex, its RAII guard, and a
 *    condition variable whose wait() *requires* the mutex — all
 *    annotated, all zero-overhead (CondVar adopts the native handle
 *    rather than switching to condition_variable_any).
 *  - ThreadRole / ThreadRoleGrant / assertRoleHeld: zero-state
 *    capability tokens for *phase disciplines* — invariants of the
 *    form "this method runs only in the campaign's serial phase".
 *    There is nothing to lock at runtime; the capability exists purely
 *    so the analysis can prove that parallel-phase code (a ThreadPool
 *    worker lambda, which starts with an empty capability set) cannot
 *    call a serial-phase-only method.
 *
 * Everything here must stay header-only and trivially cheap: the
 * ThreadPool hot path takes Mutex on every job handoff.
 */

#ifndef CITADEL_COMMON_MUTEX_H
#define CITADEL_COMMON_MUTEX_H

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace citadel {

/** std::mutex with TSA capability attributes. */
class CITADEL_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    // The lock primitives themselves are the one place the analysis is
    // turned off: they *implement* the capability transition the
    // attributes describe.
    void lock() CITADEL_ACQUIRE() CITADEL_NO_THREAD_SAFETY_ANALYSIS
    {
        m_.lock();
    }
    void unlock() CITADEL_RELEASE() CITADEL_NO_THREAD_SAFETY_ANALYSIS
    {
        m_.unlock();
    }
    bool tryLock() CITADEL_TRY_ACQUIRE(true)
        CITADEL_NO_THREAD_SAFETY_ANALYSIS
    {
        return m_.try_lock();
    }

    /** Native handle for CondVar's adopt-and-release wait. */
    std::mutex &native() { return m_; }

  private:
    std::mutex m_;
};

/** RAII lock guard for Mutex (std::lock_guard with attributes). */
class CITADEL_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) CITADEL_ACQUIRE(mu) : mu_(mu)
    {
        mu.lock();
    }
    ~MutexLock() CITADEL_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable bound to Mutex. wait() requires the mutex held
 * (enforced at compile time, where std::condition_variable relies on
 * convention) and holds it again when it returns. Callers keep the
 * usual predicate loop:
 *
 *     MutexLock lock(mutex_);
 *     while (!predicate)
 *         cv_.wait(mutex_);
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void wait(Mutex &mu) CITADEL_REQUIRES(mu)
    {
        // Adopt the already-held native mutex for the duration of the
        // wait; release() afterwards so the unique_lock destructor
        // does not drop a lock the MutexLock scope still owns.
        std::unique_lock<std::mutex> native(mu.native(),
                                            std::adopt_lock);
        cv_.wait(native);
        native.release();
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

/**
 * A zero-state phase-role capability (clang TSA "thread role" idiom).
 * Declare one per phase discipline, e.g.
 *
 *     inline ThreadRole kSerialPhase;
 *
 * and annotate phase-confined methods CITADEL_REQUIRES(kSerialPhase).
 * The single-threaded owner of the phase takes the role with a scoped
 * ThreadRoleGrant; worker lambdas are analyzed with an empty
 * capability set, so any call from parallel code into a serial-phase
 * method is a compile error under -Wthread-safety.
 */
class CITADEL_CAPABILITY("role") ThreadRole
{
  public:
    ThreadRole() = default;
    ThreadRole(const ThreadRole &) = delete;
    ThreadRole &operator=(const ThreadRole &) = delete;
};

/** Scoped grant of a ThreadRole. Purely an annotation: there is no
 *  runtime state, because a role is a structural property of the
 *  campaign loop, not a lock that could be contended. */
class CITADEL_SCOPED_CAPABILITY ThreadRoleGrant
{
  public:
    explicit ThreadRoleGrant(ThreadRole &role)
        CITADEL_ACQUIRE(role) CITADEL_NO_THREAD_SAFETY_ANALYSIS
    {
        (void)role;
    }
    ~ThreadRoleGrant() CITADEL_RELEASE() CITADEL_NO_THREAD_SAFETY_ANALYSIS
    {
    }

    ThreadRoleGrant(const ThreadRoleGrant &) = delete;
    ThreadRoleGrant &operator=(const ThreadRoleGrant &) = delete;
};

/**
 * Assert (to the analysis) that `role` is held. This is the bridge
 * across type-erased callback boundaries: a std::function invoked only
 * from role-holding code states that contract at the top of its body,
 * because the analysis cannot propagate capabilities through erased
 * call sites.
 */
inline void
assertRoleHeld(ThreadRole &role) CITADEL_ASSERT_CAPABILITY(role)
{
    (void)role;
}

} // namespace citadel

#endif // CITADEL_COMMON_MUTEX_H
