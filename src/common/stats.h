/**
 * @file
 * Small statistics toolkit: streaming moments, binomial proportion
 * confidence intervals for Monte Carlo failure probabilities, and the
 * geometric mean used for normalized execution-time summaries.
 */

#ifndef CITADEL_COMMON_STATS_H
#define CITADEL_COMMON_STATS_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace citadel {

/**
 * Streaming mean/variance accumulator (Welford's algorithm), so long
 * Monte Carlo runs never need to buffer samples.
 */
class StreamingStats
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 for fewer than two samples. */
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Result of a binomial proportion estimate: the Monte Carlo engine
 * reports failure probabilities with a 95% Wilson score interval so
 * benches can print error bars.
 */
struct Proportion
{
    u64 successes = 0;
    u64 trials = 0;
    double estimate = 0.0;
    double lo95 = 0.0;
    double hi95 = 0.0;
};

/** Wilson score interval at 95% confidence. */
Proportion wilson(u64 successes, u64 trials);

/** Geometric mean of strictly positive values. */
double geomean(const std::vector<double> &xs);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

} // namespace citadel

#endif // CITADEL_COMMON_STATS_H
