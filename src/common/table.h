/**
 * @file
 * ASCII table printer used by every bench binary to emit the rows/series
 * of the paper's tables and figures in a uniform, diffable format.
 */

#ifndef CITADEL_COMMON_TABLE_H
#define CITADEL_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace citadel {

/**
 * Column-aligned table. Cells are strings; helpers format doubles with
 * sensible precision (scientific for tiny probabilities).
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a fully formed row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render with a rule under the header. */
    void print(std::ostream &os) const;

    /** Format a double: fixed for "normal" magnitudes, scientific else. */
    static std::string num(double v, int precision = 4);

    /** Format a probability in scientific notation (e.g. 1.23e-05). */
    static std::string prob(double v);

    /** Format a percentage with two decimals. */
    static std::string pct(double fraction);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner (used between experiment phases in benches). */
void printBanner(std::ostream &os, const std::string &title);

} // namespace citadel

#endif // CITADEL_COMMON_TABLE_H
