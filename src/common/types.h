/**
 * @file
 * Fundamental integer aliases and physical constants used across the
 * Citadel libraries.
 */

#ifndef CITADEL_COMMON_TYPES_H
#define CITADEL_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace citadel {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Hours in the standard seven-year device lifetime used by the paper. */
constexpr double kHoursPerYear = 24.0 * 365.0;

/** The paper evaluates a seven-year lifetime (Section III-B). */
constexpr double kLifetimeYears = 7.0;

/** Lifetime in hours: 61,320 h. */
constexpr double kLifetimeHours = kLifetimeYears * kHoursPerYear;

/** Scrubbing interval configured in FaultSim runs (Section III-B). */
constexpr double kScrubIntervalHours = 12.0;

/**
 * FIT = failures per billion (1e9) device-hours. Converts a FIT rate to a
 * per-hour Poisson rate.
 */
constexpr double
fitToPerHour(double fit)
{
    return fit * 1e-9;
}

/** Bits per byte, named to avoid magic numbers in geometry math. */
constexpr u64 kBitsPerByte = 8;

} // namespace citadel

#endif // CITADEL_COMMON_TYPES_H
