/**
 * @file
 * gem5-style status/error reporting: panic() for internal invariant
 * violations, fatal() for unrecoverable user/configuration errors,
 * warn()/inform() for advisories. All are printf-style free functions.
 */

#ifndef CITADEL_COMMON_LOG_H
#define CITADEL_COMMON_LOG_H

#include <cstdarg>

namespace citadel {

/**
 * Report an internal simulator bug and abort(). Use for conditions that
 * can never happen regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-facing error (bad configuration, invalid
 * arguments) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Advisory: something is approximated or suspicious but survivable. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Plain status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace citadel

#endif // CITADEL_COMMON_LOG_H
