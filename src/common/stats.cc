#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace citadel {

void
StreamingStats::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
StreamingStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
StreamingStats::stddev() const
{
    return std::sqrt(variance());
}

Proportion
wilson(u64 successes, u64 trials)
{
    Proportion p;
    p.successes = successes;
    p.trials = trials;
    if (trials == 0)
        return p;

    const double z = 1.959963984540054; // 97.5th percentile of N(0,1)
    const double n = static_cast<double>(trials);
    const double phat = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (phat + z2 / (2.0 * n)) / denom;
    const double half =
        (z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n))) / denom;

    p.estimate = phat;
    p.lo95 = std::max(0.0, center - half);
    p.hi95 = std::min(1.0, center + half);
    return p;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        assert(x > 0.0);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

} // namespace citadel
