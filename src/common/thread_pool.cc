#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/env.h"

namespace citadel {

unsigned
citadelThreads()
{
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const u64 n = envU64("CITADEL_THREADS", hw);
    return n == 0 ? hw : static_cast<unsigned>(std::min<u64>(n, 1024));
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = threads == 0 ? citadelThreads() : threads;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop(unsigned index)
{
    u64 seen = 0;
    for (;;) {
        const std::function<void(unsigned)> *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
        }
        (*job)(index);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::runOnWorkers(const std::function<void(unsigned)> &fn)
{
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = &fn;
    pending_ = size();
    ++generation_;
    wake_.notify_all();
    done_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
}

void
ThreadPool::parallelFor(u64 items, u64 min_chunk,
                        const std::function<void(u64, u64, unsigned)> &fn)
{
    if (items == 0)
        return;
    // Aim for several chunks per worker so uneven work self-balances,
    // but never below the caller's floor (tiny chunks would serialize
    // on the shared counter).
    const u64 target = items / (static_cast<u64>(size()) * 8 + 1) + 1;
    const u64 chunk = std::max<u64>(1, std::max(min_chunk, target));
    std::atomic<u64> next{0};
    runOnWorkers([&](unsigned worker) {
        for (;;) {
            const u64 begin =
                next.fetch_add(chunk, std::memory_order_relaxed);
            if (begin >= items)
                break;
            fn(begin, std::min(begin + chunk, items), worker);
        }
    });
}

} // namespace citadel
