#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/env.h"

namespace citadel {

unsigned
citadelThreads()
{
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const u64 n = envU64("CITADEL_THREADS", hw);
    return n == 0 ? hw : static_cast<unsigned>(std::min<u64>(n, 1024));
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = threads == 0 ? citadelThreads() : threads;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    wake_.notifyAll();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop(unsigned index)
{
    u64 seen = 0;
    for (;;) {
        const std::function<void(unsigned)> *job = nullptr;
        {
            MutexLock lock(mutex_);
            while (!stop_ && generation_ == seen)
                wake_.wait(mutex_);
            if (stop_)
                return;
            seen = generation_;
            job = job_;
        }
        // The job runs with no lock held: jobs are free to take their
        // own locks or block without serializing the pool.
        (*job)(index);
        bool last = false;
        {
            MutexLock lock(mutex_);
            last = --pending_ == 0;
        }
        // Notify after dropping the lock so the joining thread wakes
        // straight into a free mutex instead of blocking on ours.
        if (last)
            done_.notifyAll();
    }
}

void
ThreadPool::runOnWorkers(const std::function<void(unsigned)> &fn)
{
    MutexLock lock(mutex_);
    job_ = &fn;
    pending_ = size();
    ++generation_;
    wake_.notifyAll();
    while (pending_ != 0)
        done_.wait(mutex_);
    job_ = nullptr;
}

void
ThreadPool::parallelFor(u64 items, u64 min_chunk,
                        const std::function<void(u64, u64, unsigned)> &fn)
{
    if (items == 0)
        return;
    // Aim for several chunks per worker so uneven work self-balances,
    // but never below the caller's floor (tiny chunks would serialize
    // on the shared counter).
    const u64 target = items / (static_cast<u64>(size()) * 8 + 1) + 1;
    const u64 chunk = std::max<u64>(1, std::max(min_chunk, target));
    std::atomic<u64> next{0};
    runOnWorkers([&](unsigned worker) {
        for (;;) {
            const u64 begin =
                next.fetch_add(chunk, std::memory_order_relaxed);
            if (begin >= items)
                break;
            fn(begin, std::min(begin + chunk, items), worker);
        }
    });
}

} // namespace citadel
