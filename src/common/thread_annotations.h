/**
 * @file
 * Clang Thread Safety Analysis attribute macros (DESIGN.md section 13).
 *
 * Every mutex, condition variable, and phase-role capability in this
 * codebase is annotated through these macros so that the invariant
 * "who may touch this state, holding what" is machine-checked at
 * compile time instead of merely asserted in comments. The gate is the
 * CITADEL_THREAD_SAFETY CMake option, which turns on
 * `-Wthread-safety -Werror` under clang; under any other compiler (or
 * a clang without the capability attributes) the macros expand to
 * nothing, so annotated code stays portable.
 *
 * Vocabulary (mirrors the attribute names in the clang documentation):
 *
 *  - CITADEL_CAPABILITY(name): this class is a capability (a mutex, or
 *    a phase role such as the fleet's serial-phase token).
 *  - CITADEL_GUARDED_BY(cap): this field may only be read or written
 *    while `cap` is held.
 *  - CITADEL_REQUIRES(cap): callers must hold `cap` before calling.
 *  - CITADEL_ACQUIRE / CITADEL_RELEASE / CITADEL_TRY_ACQUIRE: this
 *    function takes / drops / conditionally takes the capability.
 *  - CITADEL_EXCLUDES(cap): callers must NOT hold `cap` (used to keep
 *    parallel-phase entry points out of serial-phase scopes).
 *  - CITADEL_ASSERT_CAPABILITY(cap): runtime boundary assertion; the
 *    analysis assumes `cap` is held afterwards. Used inside the
 *    type-erased callbacks (std::function) that the analysis cannot
 *    see through.
 *  - CITADEL_SCOPED_CAPABILITY: RAII guard class whose constructor
 *    acquires and destructor releases.
 *  - CITADEL_NO_THREAD_SAFETY_ANALYSIS: body-level opt-out, reserved
 *    for the functions that *implement* locking primitives.
 */

#ifndef CITADEL_COMMON_THREAD_ANNOTATIONS_H
#define CITADEL_COMMON_THREAD_ANNOTATIONS_H

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CITADEL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef CITADEL_THREAD_ANNOTATION
#define CITADEL_THREAD_ANNOTATION(x) // no-op: compiler lacks TSA
#endif

#define CITADEL_CAPABILITY(x) CITADEL_THREAD_ANNOTATION(capability(x))

#define CITADEL_SCOPED_CAPABILITY CITADEL_THREAD_ANNOTATION(scoped_lockable)

#define CITADEL_GUARDED_BY(x) CITADEL_THREAD_ANNOTATION(guarded_by(x))

#define CITADEL_PT_GUARDED_BY(x) CITADEL_THREAD_ANNOTATION(pt_guarded_by(x))

#define CITADEL_REQUIRES(...) \
    CITADEL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define CITADEL_REQUIRES_SHARED(...) \
    CITADEL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define CITADEL_ACQUIRE(...) \
    CITADEL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define CITADEL_RELEASE(...) \
    CITADEL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define CITADEL_TRY_ACQUIRE(...) \
    CITADEL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define CITADEL_EXCLUDES(...) \
    CITADEL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define CITADEL_ASSERT_CAPABILITY(x) \
    CITADEL_THREAD_ANNOTATION(assert_capability(x))

#define CITADEL_RETURN_CAPABILITY(x) \
    CITADEL_THREAD_ANNOTATION(lock_returned(x))

#define CITADEL_NO_THREAD_SAFETY_ANALYSIS \
    CITADEL_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // CITADEL_COMMON_THREAD_ANNOTATIONS_H
