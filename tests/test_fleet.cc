/**
 * @file
 * Fleet service tests: consistent-hash placement, the chaos e2e
 * acceptance (kill any single stack server mid-campaign — no
 * acknowledged write may be lost, the differential no-overclaim
 * invariant must hold, and the service must finish at reduced
 * capacity), capacity-driven migration, a negative control proving
 * the durability audit actually detects loss, and thread-count
 * invariance of the campaign fingerprint.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "fleet/fleet_sim.h"
#include "fleet/hash_ring.h"
#include "fleet/traffic.h"

using namespace citadel;
using namespace citadel::fleet;

namespace {

// ---- HashRing ------------------------------------------------------

TEST(HashRing, PlacementIsDeterministicAndDistinct)
{
    HashRing a(8, 64, 42);
    HashRing b(8, 64, 42);
    std::vector<ServerIdx> pa, pb;
    for (u64 key = 0; key < 200; ++key) {
        a.placement(key, 3, pa);
        b.placement(key, 3, pb);
        ASSERT_EQ(pa.size(), 3u);
        EXPECT_EQ(pa, pb);
        EXPECT_NE(pa[0], pa[1]);
        EXPECT_NE(pa[0], pa[2]);
        EXPECT_NE(pa[1], pa[2]);
    }
}

TEST(HashRing, DifferentSeedsGiveDifferentLayouts)
{
    HashRing a(8, 64, 1);
    HashRing b(8, 64, 2);
    u32 same = 0;
    for (u64 key = 0; key < 200; ++key)
        same += a.primary(key) == b.primary(key) ? 1 : 0;
    EXPECT_LT(same, 200u);
}

TEST(HashRing, RemovalMovesOnlyTheFailedServersKeys)
{
    HashRing before(8, 64, 7);
    HashRing after(8, 64, 7);
    const ServerIdx failed = 3;
    after.remove(failed);
    EXPECT_FALSE(after.contains(failed));
    EXPECT_EQ(after.liveCount(), 7u);

    std::vector<ServerIdx> pb, pa;
    for (u64 key = 0; key < 500; ++key) {
        before.placement(key, 2, pb);
        after.placement(key, 2, pa);
        ASSERT_EQ(pb.size(), 2u);
        ASSERT_EQ(pa.size(), 2u);
        if (pb[0] != failed) {
            // Keys not owned by the failed server keep their primary.
            EXPECT_EQ(pa[0], pb[0]) << "key " << key;
        } else {
            // Failed primaries fail over to their old secondary --
            // exactly the server that already held the replica.
            EXPECT_EQ(pa[0], pb[1]) << "key " << key;
        }
    }
}

TEST(HashRing, PlacementShrinksWhenFewServersRemain)
{
    HashRing ring(4, 32, 9);
    ring.remove(0);
    ring.remove(1);
    ring.remove(2);
    std::vector<ServerIdx> p;
    ring.placement(123, 3, p);
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p[0], 3u);
    ring.remove(3);
    ring.placement(123, 3, p);
    EXPECT_TRUE(p.empty());
}

TEST(HashRing, KeysHashingPastTheLastPointWrapToTheRingMinimum)
{
    // With vnodes=1 the point set is exactly mix64(seed ^ (s << 32)),
    // so the test can locate the ring's extremes independently. Any
    // key hashing clockwise-past the maximum point must wrap around to
    // the minimum point's owner — the lower_bound walk restarting at
    // begin(), not falling off the end.
    const u64 seed = 5;
    const u32 servers = 8;
    u64 maxHash = 0;
    u64 minHash = ~u64{0};
    ServerIdx minOwner = kNoServer;
    for (u32 s = 0; s < servers; ++s) {
        const u64 h = mix64(seed ^ (static_cast<u64>(s) << 32));
        maxHash = std::max(maxHash, h);
        if (h < minHash) {
            minHash = h;
            minOwner = s;
        }
    }
    ASSERT_NE(minOwner, kNoServer);

    HashRing ring(servers, 1, seed);
    u32 wrapped = 0;
    u32 below = 0;
    for (u64 key = 0; key < 20000 && (wrapped < 16 || below < 16);
         ++key) {
        const u64 h = mix64(key ^ seed);
        if (h > maxHash) {
            ++wrapped;
            EXPECT_EQ(ring.primary(key), minOwner) << "key " << key;
        } else if (h <= minHash) {
            // Keys before the first point belong to it directly.
            ++below;
            EXPECT_EQ(ring.primary(key), minOwner) << "key " << key;
        }
    }
    // The max of 8 uniform 64-bit points leaves ~1/9 of the ring past
    // it; 20k keys find such hashes with overwhelming probability.
    EXPECT_GT(wrapped, 0u);
}

TEST(HashRing, SingleServerRingOwnsEverythingUntilRemoved)
{
    HashRing ring(1, 16, 99);
    EXPECT_EQ(ring.liveCount(), 1u);
    std::vector<ServerIdx> p;
    for (u64 key = 0; key < 200; ++key) {
        ring.placement(key, 3, p);
        ASSERT_EQ(p.size(), 1u);
        EXPECT_EQ(p[0], 0u);
    }
    ring.remove(0);
    EXPECT_EQ(ring.liveCount(), 0u);
    ring.placement(7, 1, p);
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(ring.primary(7), kNoServer);
    ring.remove(0); // Idempotent on an already-empty ring.
    EXPECT_EQ(ring.liveCount(), 0u);
}

TEST(HashRing, ReplicationBeyondLiveClampsWithoutDuplicates)
{
    HashRing ring(4, 32, 13);
    std::vector<ServerIdx> p;
    for (u64 key = 0; key < 100; ++key) {
        ring.placement(key, 8, p);
        ASSERT_EQ(p.size(), 4u) << "key " << key;
        std::vector<ServerIdx> sorted = p;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
                  sorted.end())
            << "key " << key;
    }
    ring.remove(1);
    ring.remove(3);
    for (u64 key = 0; key < 100; ++key) {
        ring.placement(key, 8, p);
        ASSERT_EQ(p.size(), 2u) << "key " << key;
        EXPECT_NE(p[0], p[1]);
        for (const ServerIdx s : p)
            EXPECT_TRUE(s == 0 || s == 2) << "key " << key;
    }
}

// Elasticity property: remove-then-add of the same server restores
// bit-identical ownership for every key, at the same epoch parity
// (+2), across fleet sizes including the single-server ring and the
// wraparound region past the last ring point.
TEST(HashRing, RemoveThenAddRestoresOwnershipAtSameEpochParity)
{
    for (const u32 servers : {1u, 2u, 3u, 8u, 17u}) {
        HashRing ring(servers, 16, 99);
        HashRing pristine(servers, 16, 99);
        const u32 replicas = std::min(servers, 3u);

        std::vector<u64> keys;
        for (u64 key = 0; key < 400; ++key)
            keys.push_back(key);
        // Force the wraparound edge: keys hashing past the ring
        // maximum wrap to its minimum, and remove+add must round-trip
        // those too. A spread of raw values lands some past the last
        // point whatever the layout.
        for (u64 i = 1; i <= 64; ++i)
            keys.push_back(~0ull - i * 0x1000193ull);

        for (const ServerIdx victim :
             {ServerIdx{0}, ServerIdx{servers - 1}}) {
            const u64 epochBefore = ring.epoch();
            std::vector<std::vector<ServerIdx>> before;
            std::vector<ServerIdx> p;
            for (const u64 key : keys) {
                ring.placement(key, replicas, p);
                before.push_back(p);
            }

            ring.remove(victim);
            EXPECT_FALSE(ring.contains(victim));
            EXPECT_EQ(ring.epoch(), epochBefore + 1);
            ring.add(victim);
            EXPECT_TRUE(ring.contains(victim));
            EXPECT_EQ(ring.epoch(), epochBefore + 2);
            EXPECT_EQ(ring.epoch() % 2, epochBefore % 2);
            EXPECT_EQ(ring.liveCount(), servers);

            std::vector<ServerIdx> q;
            for (std::size_t i = 0; i < keys.size(); ++i) {
                ring.placement(keys[i], replicas, p);
                EXPECT_EQ(p, before[i])
                    << "servers " << servers << " victim " << victim
                    << " key " << keys[i];
                // And the round-tripped ring still matches a pristine
                // ring of the same seed point for point.
                pristine.placement(keys[i], replicas, q);
                EXPECT_EQ(p, q);
            }
        }

        // Idempotence: re-adding a present server is a no-op (no
        // epoch bump, no duplicate points).
        const u64 e = ring.epoch();
        ring.add(0);
        EXPECT_EQ(ring.epoch(), e);
    }
}

// placementPlus must predict exactly what placement() returns once
// the candidate is admitted — the warm scan's shard filter and the
// post-admission ownership must agree, or a warm fill would stream
// the wrong keys.
TEST(HashRing, PlacementPlusPredictsPostAdmissionOwnership)
{
    for (const u32 servers : {2u, 5u, 8u}) {
        HashRing ring(servers, 32, 7);
        const ServerIdx candidate = servers / 2;
        ring.remove(candidate);

        std::vector<ServerIdx> predicted, actual;
        std::vector<std::vector<ServerIdx>> plus;
        for (u64 key = 0; key < 600; ++key) {
            ring.placementPlus(candidate, key, 2, predicted);
            plus.push_back(predicted);
        }
        ring.add(candidate);
        for (u64 key = 0; key < 600; ++key) {
            ring.placement(key, 2, actual);
            EXPECT_EQ(plus[key], actual)
                << "servers " << servers << " key " << key;
        }
        // For a member, placementPlus degenerates to placement().
        for (u64 key = 0; key < 100; ++key) {
            ring.placementPlus(candidate, key, 2, predicted);
            ring.placement(key, 2, actual);
            EXPECT_EQ(predicted, actual);
        }
    }
}

// ---- FleetCounters tripwire ----------------------------------------

// Catches a counter added to the struct but missed in add() or the
// putU64 serialization: fill the struct with distinct non-zero values
// via its flat-u64 layout (the static_asserts in fleet_types.h pin
// it), then demand that serialize() emits exactly those values in
// declaration order and that add() doubles every one of them.
TEST(FleetCounters, TripwireEveryFieldSerializedAndMerged)
{
    static_assert(sizeof(FleetCounters) ==
                  kFleetCounterFields * sizeof(u64));

    u64 fill[kFleetCounterFields];
    for (std::size_t i = 0; i < kFleetCounterFields; ++i)
        fill[i] = i + 1;
    FleetCounters c;
    std::memcpy(&c, fill, sizeof(c));

    ByteSink sink;
    c.serialize(sink);
    ASSERT_EQ(sink.bytes().size(), sizeof(FleetCounters))
        << "serialize() writes a different number of fields than the "
           "struct declares";
    ByteSource src(sink.bytes());
    for (std::size_t i = 0; i < kFleetCounterFields; ++i)
        EXPECT_EQ(src.getU64(), i + 1)
            << "field " << i
            << " serialized out of declaration order or skipped";

    // add() must cover the same field set.
    FleetCounters sum = c;
    sum.add(c);
    ByteSink sink2;
    sum.serialize(sink2);
    ByteSource src2(sink2.bytes());
    for (std::size_t i = 0; i < kFleetCounterFields; ++i)
        EXPECT_EQ(src2.getU64(), 2 * (i + 1))
            << "field " << i << " missed by add()";

    // deserialize() is the exact inverse.
    FleetCounters back;
    ByteSource src3(sink.bytes());
    back.deserialize(src3);
    EXPECT_EQ(src3.remaining(), 0u);
    ByteSink sink4;
    back.serialize(sink4);
    EXPECT_EQ(sink4.bytes(), sink.bytes());
}

// ---- Traffic model -------------------------------------------------

TEST(TrafficModel, ParsesPhaseScheduleAndRejectsMalformedSpecs)
{
    TrafficModel m;
    std::string err;
    ASSERT_TRUE(TrafficModel::parse(
        "ticks=100,rate=8,write=0.25,zipf=0.9;"
        "ticks=50,rate=2,burst=4,every=10,len=3",
        m, &err))
        << err;
    ASSERT_EQ(m.phases().size(), 2u);
    EXPECT_EQ(m.totalTicks(), 150u);
    EXPECT_EQ(m.phases()[0].rate, 8u);
    EXPECT_DOUBLE_EQ(m.phases()[0].writeFraction, 0.25);
    EXPECT_DOUBLE_EQ(m.phases()[0].zipfTheta, 0.9);
    EXPECT_EQ(m.phases()[1].burstMult, 4u);
    EXPECT_EQ(m.phases()[1].burstEvery, 10u);
    EXPECT_EQ(m.phases()[1].burstLen, 3u);
    EXPECT_EQ(m.phaseAt(0), 0u);
    EXPECT_EQ(m.phaseAt(99), 0u);
    EXPECT_EQ(m.phaseAt(100), 1u);
    EXPECT_EQ(m.phaseAt(149), 1u);

    const char *bad[] = {
        "",                               // empty spec
        "rate=4",                         // missing required ticks
        "ticks=0",                        // zero-length phase
        "ticks=10,rate=100000",           // rate out of range
        "ticks=10,write=1.5",             // write out of range
        "ticks=10,zipf=9",                // zipf out of range
        "ticks=10,burst=4",               // burst without a window
        "ticks=10,burst=4,every=5,len=9", // len > every
        "ticks=10,bogus=1",               // unknown key
        "ticks=ten",                      // non-numeric
        "ticks=10;;ticks=10",             // empty phase
        "ticks=10,rate",                  // not key=value
    };
    for (const char *spec : bad) {
        TrafficModel t;
        std::string e;
        EXPECT_FALSE(TrafficModel::parse(spec, t, &e)) << spec;
        EXPECT_FALSE(e.empty()) << spec;
    }
}

TEST(TrafficModel, BurstWindowsMultiplyThePhaseRate)
{
    TrafficModel m;
    std::string err;
    ASSERT_TRUE(TrafficModel::parse(
        "ticks=8,rate=2;ticks=40,rate=3,burst=5,every=10,len=2", m,
        &err))
        << err;
    m.prepare(64);
    for (u64 t = 0; t < 8; ++t)
        EXPECT_EQ(m.arrivalsAt(t), 2u) << "tick " << t;
    // Bursts are phase-relative: the window opens at the phase start,
    // not at a global tick multiple.
    for (u64 t = 8; t < 48; ++t) {
        const u64 rel = t - 8;
        const u32 expect = rel % 10 < 2 ? 15u : 3u;
        EXPECT_EQ(m.arrivalsAt(t), expect) << "tick " << t;
    }
}

TEST(TrafficModel, ZipfSkewsKeyPopularityTowardRankZero)
{
    TrafficModel m;
    std::string err;
    ASSERT_TRUE(
        TrafficModel::parse("ticks=10,zipf=1.2;ticks=10", m, &err))
        << err;
    m.prepare(100);
    u32 hotSkewed = 0;
    u32 hotUniform = 0;
    for (u64 i = 0; i < 1000; ++i) {
        const double u = (static_cast<double>(i) + 0.5) / 1000.0;
        hotSkewed += m.keyAt(0, u) == 0 ? 1 : 0;   // theta = 1.2
        hotUniform += m.keyAt(10, u) == 0 ? 1 : 0; // theta = 0
    }
    // Uniform gives rank 0 ~1% of the mass; theta=1.2 concentrates a
    // large multiple of that on the hottest key.
    EXPECT_LE(hotUniform, 20u);
    EXPECT_GT(hotSkewed, 5 * hotUniform);
    // Every sample stays inside the key space.
    for (u64 i = 0; i < 1000; ++i) {
        const double u = (static_cast<double>(i) + 0.5) / 1000.0;
        EXPECT_LT(m.keyAt(0, u), 100u);
    }
}

// ---- Campaign fixtures ---------------------------------------------

FleetConfig
smallConfig()
{
    FleetConfig cfg = FleetConfig::demo();
    cfg.servers = 4;
    cfg.ticks = 192;
    cfg.users = 1000;
    cfg.keySpace = 96;
    cfg.arrivalsPerTick = 3;
    cfg.retry.attemptTimeout = 24;
    cfg.retry.opDeadline = 320;
    cfg.retry.hedgeAfter = 8;
    cfg.retry.maxAttempts = 6;
    cfg.coord.healthEvery = 8;
    cfg.coord.failThreshold = 2;
    cfg.server.defaultServiceUnits = 24;
    cfg.server.calibrationInsns = 0;
    cfg.threads = 1;
    return cfg;
}

// ---- Chaos e2e: the acceptance criteria ----------------------------

TEST(FleetChaosE2E, KillingAnySingleServerLosesNoAckedWrite)
{
    // Kill each server in turn, mid-campaign, with replication 2 /
    // quorum 2. Every acknowledged write must survive on some
    // in-service replica after failover + re-replication, and every
    // surviving datapath must still agree with its differential model.
    for (u32 victim = 0; victim < 4; ++victim) {
        FleetConfig cfg = smallConfig();
        cfg.chaos.enabled = false; // Scripted kill only.
        FleetCampaign campaign(cfg);

        ChaosEvent kill;
        kill.kind = ChaosEvent::Kind::Crash;
        kill.server = victim;
        kill.tick = 96;
        campaign.injectChaosEvent(kill);

        const FleetResult res = campaign.run();
        SCOPED_TRACE("victim " + std::to_string(victim));
        EXPECT_EQ(res.totals.serverCrashes, 1u);
        EXPECT_EQ(res.lostAckedWrites, 0u);
        EXPECT_EQ(res.corruptAckedWrites, 0u);
        EXPECT_GT(res.auditedWrites, 0u);
        EXPECT_EQ(res.divergences, 0u);

        // Service completed at reduced capacity.
        EXPECT_EQ(res.liveServers, 3u);
        EXPECT_GE(res.totals.failovers, 1u);
        EXPECT_GT(res.totals.repairPushes, 0u);
        EXPECT_GT(res.totals.opsAcked, 0u);
        ASSERT_EQ(res.servers.size(), 4u);
        EXPECT_EQ(res.servers[victim].state, ServerState::Crashed);
        EXPECT_EQ(res.servers[victim].capacityFraction, 0.0);
        for (u32 s = 0; s < 4; ++s) {
            if (s != victim) {
                EXPECT_GT(res.servers[s].capacityFraction, 0.0);
            }
        }
    }
}

TEST(FleetChaosE2E, AuditDetectsLossWithoutReplication)
{
    // Negative control: with replication 1 there is no second copy,
    // so crashing a server MUST surface lost acked writes -- proving
    // the audit is not vacuously green.
    FleetConfig cfg = smallConfig();
    cfg.chaos.enabled = false;
    cfg.replication = 1;
    cfg.ackQuorum = 1;
    FleetCampaign campaign(cfg);

    ChaosEvent kill;
    kill.kind = ChaosEvent::Kind::Crash;
    kill.server = 1;
    kill.tick = 96;
    campaign.injectChaosEvent(kill);

    const FleetResult res = campaign.run();
    EXPECT_GT(res.lostAckedWrites, 0u);
}

TEST(FleetChaosE2E, CapacityCollapseTriggersMigration)
{
    // Fault rates 30x beyond demo()'s already-boosted table exhaust
    // spares and retire lines fast enough that stacks fall through the
    // default capacity floor mid-campaign; the fleet must migrate
    // their shards and still audit clean, because fenced stacks remain
    // repair sources.
    FleetConfig cfg = smallConfig();
    cfg.chaos.enabled = false;
    cfg.retry.maxAttempts = 3; // Keep the doomed-op tail cheap.
    const auto boost = [](FitPair p) {
        p.transientFit *= 30.0;
        p.permanentFit *= 30.0;
        return p;
    };
    FitTable &t = cfg.server.faults.rates;
    t.bit = boost(t.bit);
    t.word = boost(t.word);
    t.column = boost(t.column);
    t.row = boost(t.row);
    t.bank = boost(t.bank);
    FleetCampaign campaign(cfg);
    const FleetResult res = campaign.run();
    EXPECT_GE(res.totals.capacityMigrations, 1u);
    EXPECT_GE(res.liveServers, 1u);
    EXPECT_EQ(res.lostAckedWrites, 0u);
    EXPECT_EQ(res.corruptAckedWrites, 0u);
    EXPECT_EQ(res.divergences, 0u);
}

// ---- Determinism: the tentpole contract ----------------------------

TEST(FleetDeterminism, FingerprintInvariantAcrossThreadCounts)
{
    // Full chaos on (crashes, stalls, slowdowns, drops, dups): the
    // campaign fingerprint -- counters, ring, acked set, per-server KV
    // and device state -- must be bit-identical for 1, 2, and 5
    // worker threads.
    FleetResult ref;
    bool have_ref = false;
    for (const unsigned threads : {1u, 2u, 5u}) {
        FleetConfig cfg = smallConfig();
        cfg.threads = threads;
        cfg.seed = 3;
        FleetCampaign campaign(cfg);
        const FleetResult res = campaign.run();
        if (!have_ref) {
            ref = res;
            have_ref = true;
            // The baseline must be a meaningful campaign.
            EXPECT_GT(res.totals.opsAcked, 0u);
            EXPECT_GT(res.totals.requestsDropped, 0u);
            continue;
        }
        SCOPED_TRACE("threads " + std::to_string(threads));
        EXPECT_EQ(res.fingerprint, ref.fingerprint);
        EXPECT_EQ(res.totals.opsAcked, ref.totals.opsAcked);
        EXPECT_EQ(res.totals.opsFailed, ref.totals.opsFailed);
        EXPECT_EQ(res.totals.repairPushes, ref.totals.repairPushes);
        EXPECT_EQ(res.totals.requestsServed,
                  ref.totals.requestsServed);
        EXPECT_EQ(res.lostAckedWrites, ref.lostAckedWrites);
    }
}

TEST(FleetDeterminism, SameSeedSameFingerprintTwice)
{
    FleetConfig cfg = smallConfig();
    cfg.seed = 11;
    FleetCampaign a(cfg);
    FleetCampaign b(cfg);
    const FleetResult ra = a.run();
    const FleetResult rb = b.run();
    EXPECT_EQ(ra.fingerprint, rb.fingerprint);
    EXPECT_NE(ra.fingerprint, 0u);
}

TEST(FleetDeterminism, DifferentSeedsDiverge)
{
    FleetConfig cfg = smallConfig();
    cfg.seed = 11;
    FleetCampaign a(cfg);
    cfg.seed = 12;
    FleetCampaign b(cfg);
    EXPECT_NE(a.run().fingerprint, b.run().fingerprint);
}

TEST(FleetDeterminism, FingerprintInvariantAcrossTransportBatchThreads)
{
    // The wire path (framed batching, flat state engines, response
    // wheel) must be a pure transport change: Direct, loopback, and
    // real socketpairs, at any batch size and thread count, land on
    // the same campaign down to the fingerprint.
    struct Cell
    {
        TransportMode mode;
        u32 batch;
        unsigned threads;
    };
    const Cell cells[] = {
        {TransportMode::Direct, 1, 1},
        {TransportMode::Loopback, 1, 1},
        {TransportMode::Loopback, 5, 3},
        {TransportMode::Socket, 5, 1},
        {TransportMode::Socket, 1, 3},
    };
    FleetResult ref;
    bool haveRef = false;
    for (const Cell &cell : cells) {
        FleetConfig cfg = smallConfig();
        cfg.seed = 17;
        cfg.transport = cell.mode;
        cfg.batch = cell.batch;
        cfg.threads = cell.threads;
        FleetCampaign campaign(cfg);
        const FleetResult res = campaign.run();
        SCOPED_TRACE(std::string(transportModeName(cell.mode)) + " b" +
                     std::to_string(cell.batch) + " t" +
                     std::to_string(cell.threads));
        if (!haveRef) {
            ref = res;
            haveRef = true;
            EXPECT_GT(res.totals.opsAcked, 0u);
            continue;
        }
        EXPECT_EQ(res.fingerprint, ref.fingerprint);
        EXPECT_EQ(res.totals.opsAcked, ref.totals.opsAcked);
        EXPECT_EQ(res.totals.opsFailed, ref.totals.opsFailed);
        EXPECT_EQ(res.totals.requestsServed,
                  ref.totals.requestsServed);
        EXPECT_EQ(res.p50LatencyTicks, ref.p50LatencyTicks);
        EXPECT_EQ(res.p99LatencyTicks, ref.p99LatencyTicks);
    }
}

TEST(FleetDeterminism, TraceReplayIsTransportInvariant)
{
    // A bursty, zipf-skewed trace drives the same offered load over
    // every transport; the trace also overrides the configured tick
    // count with its own total length.
    FleetConfig base = smallConfig();
    base.ticks = 1; // Overridden by the trace (96 + 64 ticks).
    base.traffic = "ticks=96,rate=3,write=0.5,zipf=0.8;"
                   "ticks=64,rate=5,burst=3,every=16,len=4";
    FleetResult ref;
    bool haveRef = false;
    for (const TransportMode mode :
         {TransportMode::Direct, TransportMode::Loopback,
          TransportMode::Socket}) {
        FleetConfig cfg = base;
        cfg.transport = mode;
        cfg.batch = mode == TransportMode::Direct ? 1 : 7;
        FleetCampaign campaign(cfg);
        const FleetResult res = campaign.run();
        SCOPED_TRACE(transportModeName(mode));
        if (!haveRef) {
            ref = res;
            haveRef = true;
            EXPECT_GT(res.totals.opsAcked, 0u);
            continue;
        }
        EXPECT_EQ(res.fingerprint, ref.fingerprint);
        EXPECT_EQ(res.totals.opsAcked, ref.totals.opsAcked);
    }
}

TEST(FleetDeterminism, LatencyPercentilesAreSaneAndReported)
{
    FleetConfig cfg = smallConfig();
    FleetCampaign campaign(cfg);
    const FleetResult res = campaign.run();
    ASSERT_GT(res.totals.opsAcked, 0u);
    EXPECT_LE(res.p50LatencyTicks, res.p99LatencyTicks);
    // An ack takes at least the response delay; no op outlives its
    // deadline (the deadline wakeup completes it).
    EXPECT_GE(res.p50LatencyTicks, cfg.responseDelay);
    EXPECT_LE(res.p99LatencyTicks, cfg.retry.opDeadline + 1);
    EXPECT_NE(res.summary().find("latency"), std::string::npos);
}

// ---- StackServer chaos-state transitions ---------------------------

// Regression test for a leak the thread-safety review surfaced: a
// stall landing on a Slowed server (legal — stall() accepts any
// serving state) used to lift straight to Up, skipping the
// Slowed-expiry reset, so slowDivisor_ stayed > 1 and the server's
// service budget was permanently divided. The stall must restore the
// slowdown while its window is open and the full rate after it ends.
TEST(StackServerChaos, StallOverSlowdownRestoresServiceRate)
{
    const ServerConfig scfg = smallConfig().server; // 24 units/tick.
    StackServer srv(0, scfg, /*seed=*/1, /*campaign_ticks=*/64);

    u64 next_op = 1;
    const auto fill_to = [&](u64 target) {
        ThreadRoleGrant serial(kSerialPhase);
        for (u64 i = 0; i < target; ++i) {
            Request r;
            r.op = next_op++;
            r.kind = OpKind::Read;
            r.key = i;
            srv.enqueue(r);
        }
    };

    {
        ThreadRoleGrant serial(kSerialPhase);
        srv.slowdown(/*until_tick=*/8, /*divisor=*/4);
        srv.stall(/*until_tick=*/5);
        EXPECT_EQ(srv.state(), ServerState::Stalled);
    }
    fill_to(32);

    // Frozen: no service while the stall window is open.
    srv.step(1);
    {
        ThreadRoleGrant serial(kSerialPhase);
        EXPECT_TRUE(srv.outbox().empty());
    }
    EXPECT_EQ(srv.state(), ServerState::Stalled);

    // Stall lifts inside the slowdown window: the slowdown must come
    // back (budget 24 / 4 = 6), not full speed and not a leak.
    srv.step(5);
    EXPECT_EQ(srv.state(), ServerState::Slowed);
    {
        ThreadRoleGrant serial(kSerialPhase);
        EXPECT_FALSE(srv.outbox().empty());
        EXPECT_LE(srv.outbox().size(), 6u);
    }

    // Slowdown expires: the full service budget must return. With the
    // leak, slowDivisor_ stayed 4 and this tick served at most 6.
    fill_to(32);
    srv.step(8);
    EXPECT_EQ(srv.state(), ServerState::Up);
    {
        ThreadRoleGrant serial(kSerialPhase);
        EXPECT_GT(srv.outbox().size(), 6u);
    }
}

} // namespace
