/**
 * @file
 * The parallel Monte Carlo determinism contract (DESIGN.md section 9):
 * for any thread count, MonteCarlo::run must produce a bit-identical
 * McResult — every field, including the per-class attribution map —
 * because per-trial seeds are counter-derived and shard merging is
 * integer-exact. Also unit-tests the worker pool itself and the
 * RasScheme::clone() semantics the engine relies on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "citadel/citadel.h"
#include "common/kernels.h"
#include "common/thread_pool.h"
#include "faults/monte_carlo.h"

namespace citadel {
namespace {

void
expectIdentical(const McResult &a, const McResult &b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.failuresByYear, b.failuresByYear);
    EXPECT_EQ(a.failuresByClass, b.failuresByClass);
    EXPECT_DOUBLE_EQ(a.meanFaultsPerTrial, b.meanFaultsPerTrial);
}

std::vector<unsigned>
threadCountsUnderTest()
{
    // 1 exercises the serial path, 2 and 7 force uneven sharding (7 is
    // deliberately coprime to typical chunk sizes), plus whatever the
    // host really has.
    return {1u, 2u, 7u,
            std::max(1u, std::thread::hardware_concurrency())};
}

TEST(MonteCarloParallel, NoProtectionBitIdenticalAcrossThreadCounts)
{
    SystemConfig cfg;
    MonteCarlo mc(cfg);
    NoProtection scheme;
    for (u64 seed : {1ull, 42ull, 0xFEEDull}) {
        const McResult serial = mc.run(scheme, 3000, seed, 1);
        for (unsigned t : threadCountsUnderTest())
            expectIdentical(serial, mc.run(scheme, 3000, seed, t));
    }
}

TEST(MonteCarloParallel, FullCitadelBitIdenticalAcrossThreadCounts)
{
    // The stateful path: TSV-SWAP budgets + DDS remap tables + 3DP,
    // with TSV faults enabled so absorb()/onScrub() state matters.
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    MonteCarlo mc(cfg);
    auto scheme = makeCitadel();
    const McResult serial = mc.run(*scheme, 1500, 9, 1);
    for (unsigned t : threadCountsUnderTest())
        expectIdentical(serial, mc.run(*scheme, 1500, 9, t));
}

TEST(MonteCarloParallel, BaselineSchemesBitIdenticalAtSevenThreads)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = 140.0;
    MonteCarlo mc(cfg);
    const SchemePtr schemes[] = {
        makeParityOnly(3),
        makeSymbolBaseline(StripingMode::SameBank),
        makeBchBaseline(),
        makeRaid5Baseline(),
    };
    for (const SchemePtr &s : schemes) {
        const McResult serial = mc.run(*s, 1200, 5, 1);
        expectIdentical(serial, mc.run(*s, 1200, 5, 7));
    }
}

TEST(MonteCarloParallel, EnvDefaultMatchesExplicitSerial)
{
    // threads=0 resolves CITADEL_THREADS/hardware; whatever it picks
    // must not change the numbers.
    SystemConfig cfg;
    MonteCarlo mc(cfg);
    NoProtection scheme;
    expectIdentical(mc.run(scheme, 2000, 99, 1),
                    mc.run(scheme, 2000, 99, 0));
}

TEST(MonteCarloParallel, MoreThreadsThanTrials)
{
    SystemConfig cfg;
    MonteCarlo mc(cfg);
    NoProtection scheme;
    const McResult serial = mc.run(scheme, 3, 17, 1);
    expectIdentical(serial, mc.run(scheme, 3, 17, 64));
    const McResult empty = mc.run(scheme, 0, 17, 4);
    EXPECT_EQ(empty.trials, 0u);
    EXPECT_EQ(empty.failures, 0u);
    EXPECT_DOUBLE_EQ(empty.meanFaultsPerTrial, 0.0);
}

TEST(MonteCarloParallel, CloneBehavesLikeOriginal)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    MonteCarlo mc(cfg);
    const SchemePtr originals[] = {
        makeCitadel(),
        makeParityOnly(2, /*tsv_swap=*/true),
        makeSymbolBaseline(StripingMode::AcrossChannels),
    };
    for (const SchemePtr &s : originals) {
        const SchemePtr copy = s->clone();
        EXPECT_EQ(copy->name(), s->name());
        expectIdentical(mc.run(*s, 800, 3, 1), mc.run(*copy, 800, 3, 1));
    }
}

TEST(MonteCarloParallel, RepeatedParallelRunsAreStable)
{
    SystemConfig cfg;
    MonteCarlo mc(cfg);
    NoProtection scheme;
    const McResult first = mc.run(scheme, 2500, 11, 4);
    for (int i = 0; i < 3; ++i)
        expectIdentical(first, mc.run(scheme, 2500, 11, 4));
}

TEST(MonteCarloParallel, BitIdenticalAcrossForcedKernelModes)
{
    // The dispatch contract (DESIGN.md section 14): kernels are
    // value-pure over the same bytes, so forcing any dispatch path —
    // crossed with any thread count — must leave every McResult field
    // untouched. This is the end-to-end proof backing the per-kernel
    // byte-equivalence suite in test_kernels.cc.
    const KernelMode saved = activeKernelMode();
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    MonteCarlo mc(cfg);
    auto scheme = makeCitadel();

    setKernelMode(KernelMode::Scalar);
    const McResult reference = mc.run(*scheme, 1500, 13, 1);
    for (const KernelMode mode :
         {KernelMode::Scalar, KernelMode::Vector, KernelMode::Auto}) {
        setKernelMode(mode);
        for (unsigned t : {1u, 4u})
            expectIdentical(reference, mc.run(*scheme, 1500, 13, t));
    }
    setKernelMode(saved);
}

// ---- ThreadPool unit tests -----------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    constexpr u64 kItems = 10007; // prime: never divides evenly
    std::vector<std::atomic<u32>> hits(kItems);
    pool.parallelFor(kItems, 1, [&](u64 begin, u64 end, unsigned) {
        for (u64 i = begin; i < end; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (u64 i = 0; i < kItems; ++i)
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ThreadPoolTest, RunOnWorkersRunsEachWorkerOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<u32>> ran(3);
    pool.runOnWorkers([&](unsigned w) {
        ASSERT_LT(w, 3u);
        ran[w].fetch_add(1);
    });
    for (unsigned w = 0; w < 3; ++w)
        EXPECT_EQ(ran[w].load(), 1u);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs)
{
    ThreadPool pool(2);
    std::atomic<u64> sum{0};
    for (int round = 0; round < 5; ++round)
        pool.parallelFor(100, 10, [&](u64 begin, u64 end, unsigned) {
            for (u64 i = begin; i < end; ++i)
                sum.fetch_add(i, std::memory_order_relaxed);
        });
    EXPECT_EQ(sum.load(), 5ull * (99ull * 100ull / 2));
}

TEST(ThreadPoolTest, SingleWorkerAndEmptyRangeAreFine)
{
    ThreadPool pool(1);
    std::atomic<u64> count{0};
    pool.parallelFor(0, 1, [&](u64, u64, unsigned) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 0u);
    pool.parallelFor(5, 100, [&](u64 begin, u64 end, unsigned) {
        count.fetch_add(end - begin);
    });
    EXPECT_EQ(count.load(), 5u);
}

TEST(ThreadPoolTest, CitadelThreadsIsPositive)
{
    EXPECT_GE(citadelThreads(), 1u);
}

} // namespace
} // namespace citadel
