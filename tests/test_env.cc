/**
 * @file
 * Hardened env-parser tests: every new knob flows through
 * envU64InRange / envDoubleInRange, so malformed or out-of-range text
 * must be *rejected back to the fallback*, never half-parsed into a
 * wedged campaign, and a fallback that itself violates the stated
 * range is a programming error (fatal).
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/kernels.h"
#include "fleet/wire.h"

namespace citadel {
namespace {

class EnvRangeTest : public ::testing::Test
{
  protected:
    static constexpr const char *kVar = "CITADEL_TEST_RANGE_VAR";

    void SetUp() override { unsetenv(kVar); }
    void TearDown() override { unsetenv(kVar); }

    void set(const char *text) { setenv(kVar, text, 1); }
};

TEST_F(EnvRangeTest, UnsetReturnsFallback)
{
    EXPECT_EQ(envU64InRange(kVar, 7, 1, 100), 7u);
    EXPECT_DOUBLE_EQ(envDoubleInRange(kVar, 2.5, 0.0, 10.0), 2.5);
}

TEST_F(EnvRangeTest, InRangeValueAccepted)
{
    set("42");
    EXPECT_EQ(envU64InRange(kVar, 7, 1, 100), 42u);
    set("3.125");
    EXPECT_DOUBLE_EQ(envDoubleInRange(kVar, 2.5, 0.0, 10.0), 3.125);
}

TEST_F(EnvRangeTest, BoundariesAreInclusive)
{
    set("1");
    EXPECT_EQ(envU64InRange(kVar, 7, 1, 100), 1u);
    set("100");
    EXPECT_EQ(envU64InRange(kVar, 7, 1, 100), 100u);
    set("0.0");
    EXPECT_DOUBLE_EQ(envDoubleInRange(kVar, 2.5, 0.0, 10.0), 0.0);
    set("10.0");
    EXPECT_DOUBLE_EQ(envDoubleInRange(kVar, 2.5, 0.0, 10.0), 10.0);
}

TEST_F(EnvRangeTest, MalformedTextRejectedToFallback)
{
    for (const char *bad : {"bogus", "", " ", "12abc", "--3"}) {
        set(bad);
        EXPECT_EQ(envU64InRange(kVar, 7, 1, 100), 7u) << bad;
        EXPECT_DOUBLE_EQ(envDoubleInRange(kVar, 2.5, 0.0, 10.0), 2.5)
            << bad;
    }
}

TEST_F(EnvRangeTest, OutOfRangeRejectedToFallback)
{
    set("0");
    EXPECT_EQ(envU64InRange(kVar, 7, 1, 100), 7u);
    set("101");
    EXPECT_EQ(envU64InRange(kVar, 7, 1, 100), 7u);
    set("-1.0");
    EXPECT_DOUBLE_EQ(envDoubleInRange(kVar, 2.5, 0.0, 10.0), 2.5);
    set("1e9");
    EXPECT_DOUBLE_EQ(envDoubleInRange(kVar, 2.5, 0.0, 10.0), 2.5);
}

TEST_F(EnvRangeTest, NonFiniteAlwaysRejected)
{
    for (const char *bad : {"nan", "inf", "-inf", "NAN", "Infinity"}) {
        set(bad);
        EXPECT_DOUBLE_EQ(envDoubleInRange(kVar, 2.5, 0.0, 10.0), 2.5)
            << bad;
    }
}

TEST_F(EnvRangeTest, FallbackOutsideRangeIsFatal)
{
    // A fallback violating its own stated range is a programming
    // error, not user input: it must die loudly even when unset.
    EXPECT_DEATH(envU64InRange(kVar, 0, 1, 100), "fallback");
    EXPECT_DEATH(envDoubleInRange(kVar, 11.0, 0.0, 10.0), "fallback");
}

TEST_F(EnvRangeTest, SoakKnobRangesMatchDriver)
{
    // The exact knob/range pairs the soak driver publishes; a typo'd
    // "1e9" scrub or a 0 backoff must come back as the default.
    setenv("CITADEL_SOAK_YEARS", "1e9", 1);
    EXPECT_DOUBLE_EQ(
        envDoubleInRange("CITADEL_SOAK_YEARS", 2.0, 0.01, 100.0), 2.0);
    unsetenv("CITADEL_SOAK_YEARS");

    setenv("CITADEL_META_BACKOFF_CYCLES", "0", 1);
    EXPECT_EQ(envU64InRange("CITADEL_META_BACKOFF_CYCLES", 16, 1,
                            1'000'000),
              16u);
    unsetenv("CITADEL_META_BACKOFF_CYCLES");

    setenv("CITADEL_SOAK_SHARDS", "99999", 1);
    EXPECT_EQ(envU64InRange("CITADEL_SOAK_SHARDS", 4, 1, 256), 4u);
    unsetenv("CITADEL_SOAK_SHARDS");
}

TEST_F(EnvRangeTest, FleetKnobRangesMatchDriver)
{
    // The exact knob/range pairs the fleet load driver publishes
    // (bench/fleet_load_driver.cc). A fleet of 1 cannot replicate, a
    // fleet of 65 overflows the write-ack bitmask, and a probability
    // above 1 is nonsense -- each must come back as the default.
    setenv("CITADEL_FLEET_SERVERS", "1", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_SERVERS", 8, 2, 64), 8u);
    setenv("CITADEL_FLEET_SERVERS", "65", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_SERVERS", 8, 2, 64), 8u);
    unsetenv("CITADEL_FLEET_SERVERS");

    setenv("CITADEL_FLEET_TICKS", "10", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_TICKS", 2048, 64, 1'000'000),
              2048u);
    unsetenv("CITADEL_FLEET_TICKS");

    setenv("CITADEL_FLEET_REPLICATION", "9", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_REPLICATION", 2, 1, 8), 2u);
    unsetenv("CITADEL_FLEET_REPLICATION");

    setenv("CITADEL_FLEET_QUORUM", "0", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_QUORUM", 2, 1, 8), 2u);
    unsetenv("CITADEL_FLEET_QUORUM");

    setenv("CITADEL_FLEET_WRITE_FRAC", "1.5", 1);
    EXPECT_DOUBLE_EQ(
        envDoubleInRange("CITADEL_FLEET_WRITE_FRAC", 0.5, 0.0, 1.0),
        0.5);
    unsetenv("CITADEL_FLEET_WRITE_FRAC");

    setenv("CITADEL_FLEET_DROP_PROB", "2", 1);
    EXPECT_DOUBLE_EQ(
        envDoubleInRange("CITADEL_FLEET_DROP_PROB", 0.01, 0.0, 1.0),
        0.01);
    unsetenv("CITADEL_FLEET_DROP_PROB");

    setenv("CITADEL_FLEET_QUEUE_CAP", "0", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_QUEUE_CAP", 256, 1, 65536),
              256u);
    unsetenv("CITADEL_FLEET_QUEUE_CAP");

    setenv("CITADEL_FLEET_CALIB_INSNS", "999999999", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_CALIB_INSNS", 20'000, 0,
                            10'000'000),
              20'000u);
    unsetenv("CITADEL_FLEET_CALIB_INSNS");

    // Wire batch: a frame must carry at least one record and at most
    // kMaxFrameRecords (4096, the decoder's hard cap).
    setenv("CITADEL_FLEET_BATCH", "0", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_BATCH", 32, 1, 4096), 32u);
    setenv("CITADEL_FLEET_BATCH", "4097", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_BATCH", 32, 1, 4096), 32u);
    setenv("CITADEL_FLEET_BATCH", "4096", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_BATCH", 32, 1, 4096),
              4096u);
    unsetenv("CITADEL_FLEET_BATCH");

    // Elasticity knobs: the on/off switches reject anything but 0/1,
    // and the checkpoint cut tick rejects values past the range cap —
    // each falls back to its (off) default with a warning.
    setenv("CITADEL_FLEET_JOIN", "2", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_JOIN", 0, 0, 1), 0u);
    setenv("CITADEL_FLEET_JOIN", "1", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_JOIN", 0, 0, 1), 1u);
    unsetenv("CITADEL_FLEET_JOIN");

    setenv("CITADEL_FLEET_REBALANCE", "7", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_REBALANCE", 0, 0, 1), 0u);
    setenv("CITADEL_FLEET_REBALANCE", "1", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_REBALANCE", 0, 0, 1), 1u);
    unsetenv("CITADEL_FLEET_REBALANCE");

    setenv("CITADEL_FLEET_CHECKPOINT", "1000001", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_CHECKPOINT", 0, 0,
                            1'000'000),
              0u);
    setenv("CITADEL_FLEET_CHECKPOINT", "-5", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_CHECKPOINT", 0, 0,
                            1'000'000),
              0u);
    setenv("CITADEL_FLEET_CHECKPOINT", "512", 1);
    EXPECT_EQ(envU64InRange("CITADEL_FLEET_CHECKPOINT", 0, 0,
                            1'000'000),
              512u);
    unsetenv("CITADEL_FLEET_CHECKPOINT");
}

class KernelEnvTest : public ::testing::Test
{
  protected:
    void SetUp() override { unsetenv("CITADEL_KERNEL"); }
    void TearDown() override { unsetenv("CITADEL_KERNEL"); }
};

TEST_F(KernelEnvTest, UnsetResolvesToAuto)
{
    EXPECT_EQ(requestedKernelMode(), KernelMode::Auto);
}

TEST_F(KernelEnvTest, ExactLowercaseSpellingsAccepted)
{
    setenv("CITADEL_KERNEL", "scalar", 1);
    EXPECT_EQ(requestedKernelMode(), KernelMode::Scalar);
    setenv("CITADEL_KERNEL", "vector", 1);
    EXPECT_EQ(requestedKernelMode(), KernelMode::Vector);
    setenv("CITADEL_KERNEL", "auto", 1);
    EXPECT_EQ(requestedKernelMode(), KernelMode::Auto);
}

TEST_F(KernelEnvTest, InvalidValuesRejectedToAuto)
{
    // The knob selects among bit-identical implementations, so the
    // safe fallback for malformed text is Auto (fastest available),
    // with a warning — never a half-parsed or wedged mode.
    for (const char *bad : {"Scalar", "VECTOR", "simd", "avx2", "",
                            " auto", "auto ", "scalar|vector", "2"}) {
        setenv("CITADEL_KERNEL", bad, 1);
        EXPECT_EQ(requestedKernelMode(), KernelMode::Auto) << bad;
    }
}

class TransportEnvTest : public ::testing::Test
{
  protected:
    void SetUp() override { unsetenv("CITADEL_FLEET_TRANSPORT"); }
    void TearDown() override { unsetenv("CITADEL_FLEET_TRANSPORT"); }
};

TEST_F(TransportEnvTest, UnsetResolvesToLoopback)
{
    EXPECT_EQ(fleet::requestedTransportMode(),
              fleet::TransportMode::Loopback);
}

TEST_F(TransportEnvTest, ExactLowercaseSpellingsAccepted)
{
    setenv("CITADEL_FLEET_TRANSPORT", "direct", 1);
    EXPECT_EQ(fleet::requestedTransportMode(),
              fleet::TransportMode::Direct);
    setenv("CITADEL_FLEET_TRANSPORT", "loopback", 1);
    EXPECT_EQ(fleet::requestedTransportMode(),
              fleet::TransportMode::Loopback);
    setenv("CITADEL_FLEET_TRANSPORT", "socket", 1);
    EXPECT_EQ(fleet::requestedTransportMode(),
              fleet::TransportMode::Socket);
}

TEST_F(TransportEnvTest, InvalidValuesRejectedToLoopback)
{
    // All three transports produce the same fingerprint, so the safe
    // fallback for malformed text is the default wire path (loopback),
    // with a warning — never a half-parsed mode.
    for (const char *bad :
         {"Direct", "SOCKET", "tcp", "", " socket", "socket ",
          "loopback|socket", "3"}) {
        setenv("CITADEL_FLEET_TRANSPORT", bad, 1);
        EXPECT_EQ(fleet::requestedTransportMode(),
                  fleet::TransportMode::Loopback)
            << bad;
    }
}

} // namespace
} // namespace citadel
