/**
 * @file
 * Tests for the typed address domain (common/strong_id.h): StrongId
 * semantics, the sanctioned die/channel identity, and the property that
 * AddressMap encode/decode is a bijection in typed coordinates across a
 * sampled geometry sweep.
 */

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "stack/address.h"

namespace citadel {
namespace {

// ---- Compile-time contract of the wrapper --------------------------

// Construction from a raw integer must be explicit...
static_assert(!std::is_convertible_v<u32, BankId>);
static_assert(!std::is_convertible_v<u64, LineAddr>);
static_assert(std::is_constructible_v<BankId, u32>);
// ...ids from different spaces must never interconvert...
static_assert(!std::is_constructible_v<BankId, RowId>);
static_assert(!std::is_constructible_v<RowId, BankId>);
static_assert(!std::is_constructible_v<DieId, ChannelId>);
static_assert(!std::is_constructible_v<LineAddr, ParityGroupId>);
static_assert(!std::is_assignable_v<BankId &, RowId>);
// ...and nothing converts silently back to a raw integer.
static_assert(!std::is_convertible_v<RowId, u32>);
static_assert(!std::is_convertible_v<LineAddr, u64>);
// Zero-cost: same size and triviality as the underlying integer.
static_assert(sizeof(RowId) == sizeof(u32));
static_assert(sizeof(LineAddr) == sizeof(u64));
static_assert(std::is_trivially_copyable_v<RowId>);
static_assert(std::is_trivially_copyable_v<LineAddr>);

TEST(StrongId, ValueAndIdxUnwrap)
{
    const RowId r{41};
    EXPECT_EQ(r.value(), 41u);
    EXPECT_EQ(r.idx(), std::size_t{41});
    EXPECT_EQ(RowId{}.value(), 0u);
}

TEST(StrongId, ComparisonAndIncrementWithinOneSpace)
{
    RowId a{3};
    const RowId b{5};
    EXPECT_LT(a, b);
    EXPECT_NE(a, b);
    ++a;
    ++a;
    EXPECT_EQ(a, b);
    EXPECT_LE(a, b);
    EXPECT_GE(b, a);
}

TEST(StrongId, OrderedAndUnorderedContainerKeys)
{
    std::set<BankId> ordered;
    std::unordered_map<LineAddr, int> hashed;
    for (u32 i = 8; i > 0; --i) {
        ordered.insert(BankId{i});
        hashed[LineAddr{i}] = static_cast<int>(i);
    }
    EXPECT_EQ(ordered.size(), 8u);
    EXPECT_EQ(*ordered.begin(), BankId{1});
    EXPECT_EQ(hashed.at(LineAddr{5}), 5);
}

TEST(StrongId, StreamsAsPlainNumber)
{
    std::ostringstream os;
    os << ColId{17} << ' ' << LineAddr{1234567};
    EXPECT_EQ(os.str(), "17 1234567");
}

TEST(StrongId, BoundsCheckedAt)
{
    std::vector<int> v{10, 20, 30};
    EXPECT_EQ(at(v, BankId{2}), 30);
    at(v, BankId{0}) = 99;
    EXPECT_EQ(v[0], 99);
    EXPECT_THROW(at(v, BankId{3}), std::out_of_range);
}

TEST(StrongId, DieChannelIdentityIsExplicitAndInvertible)
{
    // The only sanctioned cross-space conversion (HBM: channel == die).
    for (u32 c = 0; c < 8; ++c) {
        const DieId die = dieOf(ChannelId{c});
        EXPECT_EQ(die.value(), c);
        EXPECT_EQ(channelOf(die), ChannelId{c});
    }
}

// ---- AddressMap bijection over a sampled geometry sweep ------------

std::vector<StackGeometry>
sweptGeometries()
{
    std::vector<StackGeometry> out = {
        StackGeometry::tiny(),
        StackGeometry::hbm(),
        StackGeometry::hmcLike(),
        StackGeometry::tezzaronLike(),
    };
    // Parameter sweep around the baseline: every power-of-two knob the
    // mapper folds into the line address.
    for (u32 stacks : {1u, 4u})
        for (u32 chans : {2u, 8u})
            for (u32 banks : {4u, 16u}) {
                StackGeometry g;
                g.stacks = stacks;
                g.channelsPerStack = chans;
                g.banksPerChannel = banks;
                g.rowsPerBank = 256;
                out.push_back(g);
            }
    return out;
}

TEST(TypedAddressMap, EncodeDecodeIsBijectionOnSampledSweep)
{
    Rng rng(2014);
    for (const StackGeometry &g : sweptGeometries()) {
        g.validate();
        AddressMap map(g);
        std::set<std::tuple<StackId, ChannelId, BankId, RowId, ColId>>
            images;
        std::set<LineAddr> lines;
        for (int i = 0; i < 4000; ++i) {
            const LineAddr line{rng.below(g.totalLines())};
            if (!lines.insert(line).second)
                continue;
            const LineCoord c = map.lineToCoord(line);
            // Injective: distinct lines map to distinct coordinates.
            EXPECT_TRUE(
                images.insert({c.stack, c.channel, c.bank, c.row, c.col})
                    .second)
                << "collision at line " << line << " in " << g.describe();
            // Left inverse: decode then encode returns the line.
            EXPECT_EQ(map.coordToLine(c), line) << g.describe();
            // Every typed field stays inside its space.
            EXPECT_LT(c.stack.value(), g.stacks);
            EXPECT_LT(c.channel.value(), g.channelsPerStack);
            EXPECT_LT(c.bank.value(), g.banksPerChannel);
            EXPECT_LT(c.row.value(), g.rowsPerBank);
            EXPECT_LT(c.col.value(), g.linesPerRow());
        }
    }
}

TEST(TypedAddressMap, ExhaustiveBijectionOnTinyGeometry)
{
    // On the tiny geometry the full domain is enumerable: encode every
    // coordinate and check the image covers every line exactly once.
    const StackGeometry g = StackGeometry::tiny();
    AddressMap map(g);
    std::set<LineAddr> image;
    for (u32 s = 0; s < g.stacks; ++s)
        for (u32 ch = 0; ch < g.channelsPerStack; ++ch)
            for (u32 b = 0; b < g.banksPerChannel; ++b)
                for (u32 r = 0; r < g.rowsPerBank; ++r)
                    for (u32 col = 0; col < g.linesPerRow(); ++col) {
                        const LineCoord c{StackId{s}, ChannelId{ch},
                                          BankId{b}, RowId{r},
                                          ColId{col}};
                        const LineAddr line = map.coordToLine(c);
                        EXPECT_LT(line.value(), g.totalLines());
                        EXPECT_TRUE(image.insert(line).second)
                            << "coordToLine not injective at " << line;
                        EXPECT_EQ(map.lineToCoord(line), c);
                    }
    EXPECT_EQ(image.size(), g.totalLines());
}

} // namespace
} // namespace citadel
